#include "wrht/topo/torus.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::topo {
namespace {

TEST(Torus, CoordinatesRoundTrip) {
  const Torus t(4, 6);
  EXPECT_EQ(t.size(), 24u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 6; ++c) {
      const NodeId id = t.node_at(r, c);
      EXPECT_EQ(t.row_of(id), r);
      EXPECT_EQ(t.col_of(id), c);
    }
  }
}

TEST(Torus, RowMajorLayout) {
  const Torus t(3, 5);
  EXPECT_EQ(t.node_at(0, 0), 0u);
  EXPECT_EQ(t.node_at(0, 4), 4u);
  EXPECT_EQ(t.node_at(1, 0), 5u);
  EXPECT_EQ(t.node_at(2, 4), 14u);
}

TEST(Torus, RingViews) {
  const Torus t(4, 6);
  EXPECT_EQ(t.row_ring().size(), 6u);
  EXPECT_EQ(t.col_ring().size(), 4u);
}

TEST(Torus, Validation) {
  EXPECT_THROW(Torus(1, 4), InvalidArgument);
  EXPECT_THROW(Torus(4, 1), InvalidArgument);
  const Torus t(2, 2);
  EXPECT_THROW(t.node_at(2, 0), InvalidArgument);
  EXPECT_THROW(t.row_of(4), InvalidArgument);
}

}  // namespace
}  // namespace wrht::topo
