#include "wrht/common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace wrht {
namespace {

constexpr const char* kVar = "WRHT_TEST_THREADS";

/// Sets kVar for one test and restores the pristine (unset) state after.
class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv(kVar); }

  static void set(const std::string& value) {
    setenv(kVar, value.c_str(), /*overwrite=*/1);
  }
};

TEST_F(EnvTest, UnsetReturnsFallback) {
  unsetenv(kVar);
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

TEST_F(EnvTest, ValidPositiveIntegerParses) {
  set("12");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 12u);
  set("1");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 1u);
  set(std::to_string(kMaxEnvThreads));
  EXPECT_EQ(thread_count_from_env(kVar, 7), kMaxEnvThreads);
}

TEST_F(EnvTest, ZeroFallsBack) {
  // 0 workers would deadlock a pool; never accepted.
  set("0");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

TEST_F(EnvTest, NegativeFallsBack) {
  // A negative cast to unsigned would spawn billions of workers.
  set("-3");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

TEST_F(EnvTest, TrailingGarbageFallsBack) {
  set("8x");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
  set("8 ");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
  set("abc");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
  set("");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

TEST_F(EnvTest, AboveCeilingFallsBack) {
  set(std::to_string(kMaxEnvThreads + 1));
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

TEST_F(EnvTest, LongOverflowFallsBack) {
  // Larger than any long: strtol sets errno = ERANGE.
  set("99999999999999999999999999");
  EXPECT_EQ(thread_count_from_env(kVar, 7), 7u);
}

}  // namespace
}  // namespace wrht
