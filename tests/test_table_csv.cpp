#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/table.hpp"

namespace wrht {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"algo", "steps"});
  t.add_row({"ring", "2046"});
  t.add_row({"wrht", "3"});
  std::ostringstream os;
  os << t;
  const std::string out = os.str();
  EXPECT_NE(out.find("| algo | steps |"), std::string::npos);
  EXPECT_NE(out.find("| ring | 2046  |"), std::string::npos);
  EXPECT_NE(out.find("| wrht | 3     |"), std::string::npos);
  EXPECT_NE(out.find("|------|"), std::string::npos);
}

TEST(Table, WidensToLongestCell) {
  Table t({"x"});
  t.add_row({"a-very-long-cell"});
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("| a-very-long-cell |"), std::string::npos);
}

TEST(Table, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/wrht_test.csv";
  {
    CsvWriter csv(path, {"n", "time"});
    csv.add_row({"1024", "0.5"});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "n,time");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1024,0.5");
  std::remove(path.c_str());
}

TEST(Csv, ArityChecked) {
  const std::string path = testing::TempDir() + "/wrht_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), InvalidArgument);
}

}  // namespace
}  // namespace wrht
