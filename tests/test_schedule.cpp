#include "wrht/collectives/schedule.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(Schedule, BasicAccessors) {
  Schedule s("test", 4, 100);
  EXPECT_EQ(s.algorithm(), "test");
  EXPECT_EQ(s.num_nodes(), 4u);
  EXPECT_EQ(s.elements(), 100u);
  EXPECT_EQ(s.num_steps(), 0u);
}

TEST(Schedule, AddStepAndTraffic) {
  Schedule s("test", 4, 100);
  Step& a = s.add_step("first");
  a.transfers.push_back(Transfer{0, 1, 0, 50, TransferKind::kReduce, {}});
  a.transfers.push_back(Transfer{2, 3, 50, 50, TransferKind::kCopy, {}});
  Step& b = s.add_step("second");
  b.transfers.push_back(Transfer{1, 2, 0, 100, TransferKind::kReduce, {}});
  EXPECT_EQ(s.num_steps(), 2u);
  EXPECT_EQ(s.total_traffic_elements(), 200u);
  EXPECT_EQ(s.max_transfer_elements(0), 50u);
  EXPECT_EQ(s.max_transfer_elements(1), 100u);
  EXPECT_EQ(s.steps()[0].label, "first");
  s.validate();
}

TEST(Schedule, ValidateRejectsBadNodeIds) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 5, 0, 10, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsSelfTransfer) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{1, 1, 0, 10, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsOutOfRangeElements) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 8, 5, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsEmptyTransfer) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 0, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ConstructionValidation) {
  EXPECT_THROW(Schedule("x", 0, 10), InvalidArgument);
  EXPECT_THROW(Schedule("x", 2, 0), InvalidArgument);
  Schedule s("x", 2, 1);
  EXPECT_THROW(s.max_transfer_elements(0), InvalidArgument);
}

TEST(ChunkRange, PartitionsExactly) {
  // Chunks must tile [0, elements) without gaps or overlaps.
  for (std::size_t elements : {1u, 7u, 16u, 100u, 1023u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 5u, 16u}) {
      std::size_t expect_offset = 0;
      std::size_t total = 0;
      for (std::size_t i = 0; i < chunks; ++i) {
        const ChunkRange r = chunk_range(elements, chunks, i);
        EXPECT_EQ(r.offset, expect_offset);
        expect_offset += r.count;
        total += r.count;
      }
      EXPECT_EQ(total, elements);
    }
  }
}

TEST(ChunkRange, Balanced) {
  // Any two chunks differ by at most one element.
  const std::size_t elements = 103, chunks = 10;
  std::size_t min_c = elements, max_c = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const ChunkRange r = chunk_range(elements, chunks, i);
    min_c = std::min(min_c, r.count);
    max_c = std::max(max_c, r.count);
  }
  EXPECT_LE(max_c - min_c, 1u);
}

TEST(ChunkRange, MoreChunksThanElements) {
  // Trailing chunks are empty but still validly placed.
  const ChunkRange r = chunk_range(3, 5, 4);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.offset, 3u);
}

TEST(ChunkRange, Validation) {
  EXPECT_THROW(chunk_range(10, 0, 0), InvalidArgument);
  EXPECT_THROW(chunk_range(10, 3, 3), InvalidArgument);
}

TEST(ReconfigDeltas, ColdStartAddsEverything) {
  Schedule s("test", 4, 16);
  Step& step = s.add_step();
  step.transfers.push_back({0, 1, 0, 8, TransferKind::kReduce, {}});
  step.transfers.push_back({2, 3, 8, 8, TransferKind::kReduce, {}});
  const auto deltas = reconfig_deltas(s);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].added.size(), 2u);
  EXPECT_TRUE(deltas[0].removed.empty());
  EXPECT_EQ(deltas[0].kept, 0u);
  EXPECT_FALSE(deltas[0].reconfig_free());
}

TEST(ReconfigDeltas, RepeatedCircuitsAreFree) {
  // Same (src, dst, direction) circuits step after step: only step 0
  // retunes, even when offsets/counts/kinds differ (Ring All-reduce).
  Schedule s("test", 4, 16);
  for (int i = 0; i < 3; ++i) {
    Step& step = s.add_step();
    step.transfers.push_back(
        {0, 1, static_cast<std::size_t>(4 * i), 4,
         i < 2 ? TransferKind::kReduce : TransferKind::kCopy, {}});
  }
  const auto deltas = reconfig_deltas(s);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_FALSE(deltas[0].reconfig_free());
  EXPECT_TRUE(deltas[1].reconfig_free());
  EXPECT_EQ(deltas[1].kept, 1u);
  EXPECT_TRUE(deltas[2].reconfig_free());
  EXPECT_TRUE(is_reconfig_free(s));
}

TEST(ReconfigDeltas, DirectionChangeRetunes) {
  // Pinning the same (src, dst) pair to a different ring direction is a
  // different circuit: the micro-rings on the other arc must be tuned.
  Schedule s("test", 4, 16);
  s.add_step().transfers.push_back(
      {0, 1, 0, 8, TransferKind::kReduce, topo::Direction::kClockwise});
  s.add_step().transfers.push_back(
      {0, 1, 0, 8, TransferKind::kReduce,
       topo::Direction::kCounterClockwise});
  const auto deltas = reconfig_deltas(s);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[1].added.size(), 1u);
  EXPECT_EQ(deltas[1].removed.size(), 1u);
  EXPECT_EQ(deltas[1].kept, 0u);
  EXPECT_FALSE(is_reconfig_free(s));
}

TEST(ReconfigDeltas, PartialOverlapCountsKept) {
  Schedule s("test", 6, 16);
  Step& a = s.add_step();
  a.transfers.push_back({0, 1, 0, 8, TransferKind::kReduce, {}});
  a.transfers.push_back({2, 3, 0, 8, TransferKind::kReduce, {}});
  Step& b = s.add_step();
  b.transfers.push_back({2, 3, 8, 8, TransferKind::kReduce, {}});
  b.transfers.push_back({4, 5, 8, 8, TransferKind::kReduce, {}});
  const auto deltas = reconfig_deltas(s);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[1].kept, 1u);
  EXPECT_EQ(deltas[1].added.size(), 1u);
  EXPECT_EQ(deltas[1].removed.size(), 1u);
}

TEST(ReconfigDeltas, DuplicateTransfersShareOneCircuit) {
  // Two transfers over the same circuit in one step light it once.
  Schedule s("test", 4, 16);
  Step& step = s.add_step();
  step.transfers.push_back({0, 1, 0, 4, TransferKind::kReduce, {}});
  step.transfers.push_back({0, 1, 8, 4, TransferKind::kCopy, {}});
  const auto deltas = reconfig_deltas(s);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].added.size(), 1u);
}

}  // namespace
}  // namespace wrht::coll
