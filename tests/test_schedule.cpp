#include "wrht/collectives/schedule.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(Schedule, BasicAccessors) {
  Schedule s("test", 4, 100);
  EXPECT_EQ(s.algorithm(), "test");
  EXPECT_EQ(s.num_nodes(), 4u);
  EXPECT_EQ(s.elements(), 100u);
  EXPECT_EQ(s.num_steps(), 0u);
}

TEST(Schedule, AddStepAndTraffic) {
  Schedule s("test", 4, 100);
  Step& a = s.add_step("first");
  a.transfers.push_back(Transfer{0, 1, 0, 50, TransferKind::kReduce, {}});
  a.transfers.push_back(Transfer{2, 3, 50, 50, TransferKind::kCopy, {}});
  Step& b = s.add_step("second");
  b.transfers.push_back(Transfer{1, 2, 0, 100, TransferKind::kReduce, {}});
  EXPECT_EQ(s.num_steps(), 2u);
  EXPECT_EQ(s.total_traffic_elements(), 200u);
  EXPECT_EQ(s.max_transfer_elements(0), 50u);
  EXPECT_EQ(s.max_transfer_elements(1), 100u);
  EXPECT_EQ(s.steps()[0].label, "first");
  s.validate();
}

TEST(Schedule, ValidateRejectsBadNodeIds) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 5, 0, 10, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsSelfTransfer) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{1, 1, 0, 10, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsOutOfRangeElements) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 8, 5, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ValidateRejectsEmptyTransfer) {
  Schedule s("test", 2, 10);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 0, TransferKind::kReduce, {}});
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(Schedule, ConstructionValidation) {
  EXPECT_THROW(Schedule("x", 0, 10), InvalidArgument);
  EXPECT_THROW(Schedule("x", 2, 0), InvalidArgument);
  Schedule s("x", 2, 1);
  EXPECT_THROW(s.max_transfer_elements(0), InvalidArgument);
}

TEST(ChunkRange, PartitionsExactly) {
  // Chunks must tile [0, elements) without gaps or overlaps.
  for (std::size_t elements : {1u, 7u, 16u, 100u, 1023u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 5u, 16u}) {
      std::size_t expect_offset = 0;
      std::size_t total = 0;
      for (std::size_t i = 0; i < chunks; ++i) {
        const ChunkRange r = chunk_range(elements, chunks, i);
        EXPECT_EQ(r.offset, expect_offset);
        expect_offset += r.count;
        total += r.count;
      }
      EXPECT_EQ(total, elements);
    }
  }
}

TEST(ChunkRange, Balanced) {
  // Any two chunks differ by at most one element.
  const std::size_t elements = 103, chunks = 10;
  std::size_t min_c = elements, max_c = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const ChunkRange r = chunk_range(elements, chunks, i);
    min_c = std::min(min_c, r.count);
    max_c = std::max(max_c, r.count);
  }
  EXPECT_LE(max_c - min_c, 1u);
}

TEST(ChunkRange, MoreChunksThanElements) {
  // Trailing chunks are empty but still validly placed.
  const ChunkRange r = chunk_range(3, 5, 4);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.offset, 3u);
}

TEST(ChunkRange, Validation) {
  EXPECT_THROW(chunk_range(10, 0, 0), InvalidArgument);
  EXPECT_THROW(chunk_range(10, 3, 3), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
