#include "wrht/common/units.hpp"

#include <gtest/gtest.h>

namespace wrht {
namespace {

TEST(Bytes, LiteralsAndArithmetic) {
  EXPECT_EQ((1_KiB).count(), 1024u);
  EXPECT_EQ((2_MiB).count(), 2u << 20);
  EXPECT_EQ((1_GiB).count(), 1u << 30);
  EXPECT_EQ((3_B + 4_B).count(), 7u);
  EXPECT_EQ((10_B - 4_B).count(), 6u);
  EXPECT_EQ((3_B * 4).count(), 12u);
  EXPECT_EQ((4 * 3_B).count(), 12u);
}

TEST(Bytes, BitsConversion) {
  EXPECT_DOUBLE_EQ((1_B).bits(), 8.0);
  EXPECT_DOUBLE_EQ((1_KiB).bits(), 8192.0);
}

TEST(Bytes, CeilDiv) {
  EXPECT_EQ(Bytes(10).ceil_div(3).count(), 4u);
  EXPECT_EQ(Bytes(9).ceil_div(3).count(), 3u);
  EXPECT_EQ(Bytes(1).ceil_div(100).count(), 1u);
}

TEST(Bytes, Comparison) {
  EXPECT_LT(1_KiB, 1_MiB);
  EXPECT_EQ(1024_B, 1_KiB);
  EXPECT_GT(2_GiB, 2_MiB);
}

TEST(Bytes, CompoundAssign) {
  Bytes b(5);
  b += Bytes(7);
  EXPECT_EQ(b.count(), 12u);
}

TEST(Seconds, LiteralsScale) {
  EXPECT_DOUBLE_EQ((1.0_s).count(), 1.0);
  EXPECT_DOUBLE_EQ((1.0_ms).count(), 1e-3);
  EXPECT_DOUBLE_EQ((25.0_us).count(), 25e-6);
  EXPECT_DOUBLE_EQ((497.0_fs).count(), 497e-15);
  EXPECT_DOUBLE_EQ((1.0_ns).count(), 1e-9);
}

TEST(Seconds, Arithmetic) {
  EXPECT_DOUBLE_EQ((1.0_ms + 1.0_us).count(), 1.001e-3);
  EXPECT_DOUBLE_EQ((2.0_s - 0.5_s).count(), 1.5);
  EXPECT_DOUBLE_EQ((2.0_s * 3.0).count(), 6.0);
  EXPECT_DOUBLE_EQ((4.0_s / 2.0_s), 2.0);
  EXPECT_DOUBLE_EQ((1.0_s).micros(), 1e6);
  EXPECT_DOUBLE_EQ((1.0_s).millis(), 1e3);
}

TEST(BitsPerSecond, LiteralsAndHelpers) {
  EXPECT_DOUBLE_EQ((40.0_Gbps).count(), 40e9);
  EXPECT_DOUBLE_EQ((40.0_Gbps).gbps(), 40.0);
  EXPECT_DOUBLE_EQ((100.0_Mbps).count(), 1e8);
}

TEST(BitsPerSecond, TransferTime) {
  // 40 Gbit/s drains 5 GB in 1 second.
  const Seconds t = transfer_time(Bytes(5'000'000'000ull), 40.0_Gbps);
  EXPECT_DOUBLE_EQ(t.count(), 1.0);
}

TEST(Decibels, LinearConversion) {
  EXPECT_DOUBLE_EQ((10.0_dB).linear(), 10.0);
  EXPECT_DOUBLE_EQ((3.0_dB + 7.0_dB).count(), 10.0);
  EXPECT_DOUBLE_EQ((10.0_dB - 4.0_dB).count(), 6.0);
  EXPECT_NEAR((3.0103_dB).linear(), 2.0, 1e-3);
  EXPECT_DOUBLE_EQ((2.0 * 5.0_dB).count(), 10.0);
}

TEST(PowerDbm, MilliwattsRoundTrip) {
  EXPECT_DOUBLE_EQ((0.0_dBm).milliwatts(), 1.0);
  EXPECT_DOUBLE_EQ((10.0_dBm).milliwatts(), 10.0);
  EXPECT_NEAR(PowerDbm::from_milliwatts(2.0).count(), 3.0103, 1e-3);
}

TEST(PowerDbm, LossAndGain) {
  const PowerDbm after = 10.0_dBm - 3.0_dB;
  EXPECT_DOUBLE_EQ(after.count(), 7.0);
  EXPECT_DOUBLE_EQ((after + 3.0_dB).count(), 10.0);
  EXPECT_DOUBLE_EQ((10.0_dBm - 4.0_dBm).count(), 6.0);
}

TEST(PowerDbm, PowerSumIsLinear) {
  // 0 dBm + 0 dBm = 2 mW = ~3.01 dBm, not 0 dBm.
  EXPECT_NEAR(power_sum(0.0_dBm, 0.0_dBm).count(), 3.0103, 1e-3);
  // Summing something 30 dB weaker barely moves the total.
  EXPECT_NEAR(power_sum(0.0_dBm, -30.0_dBm).count(), 0.00432, 1e-4);
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ(to_string(Bytes(512)), "512 B");
  EXPECT_NE(to_string(2_MiB).find("MiB"), std::string::npos);
  EXPECT_NE(to_string(25.0_us).find("us"), std::string::npos);
  EXPECT_NE(to_string(1.5_s).find("s"), std::string::npos);
  EXPECT_NE(to_string(40.0_Gbps).find("Gbit/s"), std::string::npos);
}

}  // namespace
}  // namespace wrht
