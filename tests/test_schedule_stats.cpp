#include "wrht/collectives/schedule_stats.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht::coll {
namespace {

TEST(ScheduleStats, RingIsPerfectlyBalanced) {
  const ScheduleStats stats = analyze(ring_allreduce(8, 64));
  EXPECT_EQ(stats.steps, 14u);
  EXPECT_EQ(stats.transfers, 14u * 8u);
  EXPECT_DOUBLE_EQ(stats.tx_imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(stats.rx_imbalance(), 1.0);
  // 2(N-1) chunks of d/N per node.
  EXPECT_EQ(stats.max_node_tx, 14u * 8u);
  EXPECT_EQ(stats.max_transfer_elements, 8u);
  EXPECT_EQ(stats.max_step_transfers, 8u);
}

TEST(ScheduleStats, BtreeConcentratesLoadOnRoot) {
  const ScheduleStats stats = analyze(btree_allreduce(8, 64));
  // Node 0 receives in every reduce level (3 x 64 elements) against a mean
  // of 14*64/8 = 112: imbalance 12/7.
  EXPECT_NEAR(stats.rx_imbalance(), 12.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.tx_imbalance(), 12.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.max_node_rx, 3u * 64u);
}

TEST(ScheduleStats, WrhtTradesTrafficForSteps) {
  const std::size_t elements = 64;
  const std::uint32_t n = 27;
  const ScheduleStats wrht =
      analyze(core::wrht_allreduce(n, elements, core::WrhtOptions{3, 8}));
  const ScheduleStats ring = analyze(ring_allreduce(n, elements));
  EXPECT_LT(wrht.steps, ring.steps);
  EXPECT_GT(wrht.total_traffic_elements, ring.total_traffic_elements);
}

TEST(ScheduleStats, TotalsMatchScheduleHelpers) {
  const auto sched = btree_allreduce(13, 26);
  const ScheduleStats stats = analyze(sched);
  EXPECT_EQ(stats.total_traffic_elements, sched.total_traffic_elements());
  EXPECT_EQ(stats.steps, sched.num_steps());
}

TEST(ScheduleStats, EmptyScheduleIsNeutral) {
  const Schedule s("empty", 4, 8);
  const ScheduleStats stats = analyze(s);
  EXPECT_EQ(stats.transfers, 0u);
  EXPECT_DOUBLE_EQ(stats.tx_imbalance(), 1.0);
}

}  // namespace
}  // namespace wrht::coll
