// Consistency property: whenever the wavelength budget carries every step
// in a single round, the simulated optical time equals the closed-form
// Eq. (6) arithmetic (sum over steps of a + max_payload/B) — for EVERY
// registered algorithm. This pins the simulator to the paper's analytical
// model on the configurations the paper evaluates.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wrht/collectives/registry.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

using Case = std::tuple<std::string, std::uint32_t, std::size_t>;

class ClosedFormConsistency : public testing::TestWithParam<Case> {};

TEST_P(ClosedFormConsistency, SimulatorMatchesEq6WhenNoSplitting) {
  const auto& [name, n, elements] = GetParam();
  core::register_wrht_algorithm();

  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  p.group_size = name == "hring" ? 5u : 0u;
  p.wavelengths = 64;
  const coll::Schedule sched = coll::Registry::instance().build(name, p);

  optics::OpticalConfig cfg;
  cfg.wavelengths = 64;
  const optics::RingNetwork net(n, cfg);
  const auto res = net.execute(sched);

  if (res.total_rounds != res.steps) {
    GTEST_SKIP() << "budget forced multi-round steps";
  }
  EXPECT_NEAR(res.total_time.count(),
              net.single_round_estimate(sched).count(),
              1e-12 * res.total_time.count() + 1e-15)
      << name << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormConsistency,
    testing::Combine(testing::Values("ring", "hring", "btree",
                                     "recursive_doubling", "halving_doubling",
                                     "wrht"),
                     testing::Values(16u, 33u, 64u, 128u),
                     testing::Values(512u, 100'000u)),
    [](const testing::TestParamInfo<Case>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ClosedFormConsistency, EstimateCountsEmptyStepsAsFree) {
  coll::Schedule s("manual", 4, 8);
  s.add_step();  // empty
  s.add_step().transfers.push_back(
      coll::Transfer{0, 1, 0, 8, coll::TransferKind::kReduce, {}});
  optics::OpticalConfig cfg;
  const optics::RingNetwork net(4, cfg);
  EXPECT_DOUBLE_EQ(net.single_round_estimate(s).count(),
                   net.round_time(8).count());
  EXPECT_DOUBLE_EQ(net.execute(s).total_time.count(),
                   net.round_time(8).count());
}

}  // namespace
}  // namespace wrht
