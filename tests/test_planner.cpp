#include "wrht/core/planner.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

TEST(Planner, Figure5WavelengthSweep) {
  // The paper's Fig. 5 setup: N = 1024, w in {4, 16, 64, 256}. The planner
  // lands on m = 2w+1 (capped) and the step counts 7 / 4 / 3 / 3.
  const WrhtPlan p4 = plan_wrht(1024, 4);
  EXPECT_EQ(p4.group_size, 9u);
  EXPECT_EQ(p4.steps.total_steps, 7u);

  const WrhtPlan p16 = plan_wrht(1024, 16);
  EXPECT_EQ(p16.group_size, 33u);
  EXPECT_EQ(p16.steps.total_steps, 4u);

  const WrhtPlan p64 = plan_wrht(1024, 64);
  EXPECT_EQ(p64.group_size, 129u);
  EXPECT_EQ(p64.steps.total_steps, 3u);

  const WrhtPlan p256 = plan_wrht(1024, 256);
  EXPECT_EQ(p256.group_size, 513u);
  EXPECT_EQ(p256.steps.total_steps, 3u);
}

TEST(Planner, GroupSizeNeverExceedsLemma1Cap) {
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    for (std::uint32_t w : {1u, 2u, 8u, 32u}) {
      const WrhtPlan p = plan_wrht(n, w);
      EXPECT_LE(p.group_size, 2 * w + 1);
      EXPECT_LE(p.group_size, n);
    }
  }
}

TEST(Planner, MinimisesStepsOverCap) {
  for (std::uint32_t n : {64u, 100u, 256u}) {
    for (std::uint32_t w : {2u, 8u, 16u}) {
      const WrhtPlan best = plan_wrht(n, w);
      for (std::uint32_t m = 2; m <= std::min(n, 2 * w + 1); ++m) {
        EXPECT_LE(best.steps.total_steps, wrht_plan(n, m, w).total_steps)
            << "n=" << n << " w=" << w << " m=" << m;
      }
    }
  }
}

TEST(Planner, TiesPreferLargerGroups) {
  // At N=1024, w=64 both m=65 and m=129 give 3 steps; the planner picks 129
  // (the paper's choice).
  const WrhtPlan p = plan_wrht(1024, 64);
  EXPECT_EQ(p.group_size, 129u);
}

TEST(Planner, ConstraintsCapGroupSize) {
  OpticalConstraints c;
  c.power.laser_power = PowerDbm(6.5);  // reach 40 hops -> m' = 40
  const WrhtPlan p = plan_wrht(1024, 64, c);
  EXPECT_LE(p.group_size, 40u);
  EXPECT_TRUE(group_size_feasible(1024, p.group_size, c));
  // The unconstrained plan would have chosen a larger group.
  EXPECT_GT(plan_wrht(1024, 64).group_size, p.group_size);
}

TEST(Planner, ConstrainedPlanTakesMoreSteps) {
  OpticalConstraints c;
  c.power.laser_power = PowerDbm(6.5);
  EXPECT_GE(plan_wrht(1024, 64, c).steps.total_steps,
            plan_wrht(1024, 64).steps.total_steps);
}

TEST(Planner, ImpossibleConstraintsThrow) {
  OpticalConstraints c;
  c.power.laser_power = PowerDbm(-20.0);
  EXPECT_THROW(plan_wrht(64, 8, c), ConstraintViolation);
}

TEST(Planner, Validation) {
  EXPECT_THROW(plan_wrht(1, 8), InvalidArgument);
  EXPECT_THROW(plan_wrht(8, 0), InvalidArgument);
}

TEST(Planner, SmallRingsPlanDirectExchange) {
  // 8 nodes, 64 wavelengths: immediate all-to-all, a single step.
  const WrhtPlan p = plan_wrht(8, 64);
  EXPECT_EQ(p.steps.total_steps, 1u);
  EXPECT_TRUE(p.steps.final_all_to_all);
}

}  // namespace
}  // namespace wrht::core
