// wrht::diag blame attribution tests: the accounting identity on all four
// backends, what-if soundness against a real re-simulation, wrht-blame-1
// byte determinism, the cross-run differ, and the planner
// predicted-vs-realized gate.
#include "wrht/diag/blame.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/diag/blame_json.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/torus_network.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/verify/blame.hpp"

namespace wrht::diag {
namespace {

optics::OpticalConfig ring_cfg(std::uint32_t w = 8) {
  optics::OpticalConfig cfg;
  cfg.wavelengths = w;
  return cfg;
}

/// Runs `schedule` on the ring with a blame probe and returns the log.
obs::TransferLog observe_ring(const coll::Schedule& schedule,
                              const optics::OpticalConfig& cfg,
                              std::uint32_t nodes, Seconds* total = nullptr) {
  const optics::RingNetwork net(nodes, cfg);
  obs::TransferLog log;
  obs::Probe probe;
  probe.transfers = &log;
  const auto res = net.execute(schedule, probe);
  if (total != nullptr) *total = res.total_time;
  return log;
}

void expect_identity(const obs::TransferLog& log, Seconds engine_total,
                     const std::string& label) {
  const BlameReport report = build_blame(log);
  const verify::CheckResult check = verify::check_blame_identity(report);
  EXPECT_TRUE(check.ok()) << label << ": " << check.summary();
  // The blame total must be the engine's makespan, not a reconstruction
  // that merely balances internally.
  EXPECT_NEAR(report.total_time.count(), engine_total.count(),
              1e-9 * engine_total.count() + 1e-12)
      << label;
  EXPECT_FALSE(report.critical_path.empty()) << label;
}

TEST(Blame, IdentityHoldsOnOpticalRing) {
  const std::uint32_t n = 32;
  for (const auto policy :
       {net::ReconfigPolicy::kEveryRound, net::ReconfigPolicy::kOnRetune,
        net::ReconfigPolicy::kOverlapped}) {
    optics::OpticalConfig cfg = ring_cfg();
    cfg.reconfig_policy = policy;
    Seconds total;
    const obs::TransferLog log = observe_ring(
        core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8}), cfg, n,
        &total);
    expect_identity(log, total, "ring/" + net::to_string(policy));
  }
}

TEST(Blame, IdentityHoldsOnOpticalTorus) {
  const topo::Torus torus(4, 8);
  const optics::TorusNetwork net(torus, ring_cfg());
  obs::TransferLog log;
  obs::Probe probe;
  probe.transfers = &log;
  const auto res = net.execute(
      core::torus_wrht_allreduce(torus, 1000, core::WrhtOptions{3, 8}),
      probe);
  expect_identity(log, res.total_time, "torus");
  EXPECT_EQ(build_blame(log).backend, "optical-torus");
}

TEST(Blame, IdentityHoldsOnElectricalFlow) {
  const elec::FatTreeNetwork net(32, elec::ElectricalConfig{});
  obs::TransferLog log;
  obs::Probe probe;
  probe.transfers = &log;
  const auto res = net.execute(coll::ring_allreduce(32, 6400), probe);
  expect_identity(log, res.total_time, "flow");
  EXPECT_EQ(build_blame(log).backend, "electrical-flow");
}

TEST(Blame, IdentityHoldsOnElectricalPacket) {
  const elec::PacketLevelNetwork net(16, elec::ElectricalConfig{});
  obs::TransferLog log;
  obs::Probe probe;
  probe.transfers = &log;
  const auto res = net.execute(coll::ring_allreduce(16, 256), probe);
  expect_identity(log, res.total_time, "packet");
  EXPECT_EQ(build_blame(log).backend, "electrical-packet");
}

TEST(Blame, TorusLanesAreSeparated) {
  const topo::Torus torus(4, 8);
  const optics::TorusNetwork net(torus, ring_cfg());
  obs::TransferLog log;
  obs::Probe probe;
  probe.transfers = &log;
  (void)net.execute(
      core::torus_wrht_allreduce(torus, 1000, core::WrhtOptions{3, 8}),
      probe);
  const BlameReport report = build_blame(log);
  bool row = false;
  bool col = false;
  for (const LaneBlame& lane : report.lanes) {
    row = row || lane.lane.rfind("row", 0) == 0;
    col = col || lane.lane.rfind("col", 0) == 0;
  }
  EXPECT_TRUE(row);
  EXPECT_TRUE(col);
}

// The what-if re-pricing for kOnRetune must be a sound upper bound on the
// speedup an actual kOnRetune re-simulation realizes — and, on the ring,
// within 10% of it (the ablation_overlap acceptance gate). The formula
// replays the engine's own retune walk, so the two agree to fp noise.
TEST(Blame, WhatIfOnRetuneMatchesReSimulationOnRing) {
  const std::uint32_t n = 64;
  for (const auto& schedule :
       {coll::ring_allreduce(n, 64), coll::ring_allreduce(n, 100000),
        core::wrht_allreduce(n, 64, core::WrhtOptions{9, 8}),
        core::wrht_allreduce(n, 100000, core::WrhtOptions{9, 8})}) {
    Seconds every_total;
    const obs::TransferLog log =
        observe_ring(schedule, ring_cfg(), n, &every_total);
    const double predicted = what_if_on_retune(log).count();

    optics::OpticalConfig retune = ring_cfg();
    retune.reconfig_policy = net::ReconfigPolicy::kOnRetune;
    const optics::RingNetwork net(n, retune);
    const double actual = net.execute(schedule).total_time.count();

    const double predicted_speedup = every_total.count() / predicted;
    const double actual_speedup = every_total.count() / actual;
    EXPECT_GE(predicted_speedup, actual_speedup * (1.0 - 1e-9))
        << schedule.algorithm();
    EXPECT_LE(predicted_speedup, actual_speedup * 1.10)
        << schedule.algorithm();
    EXPECT_NEAR(predicted, actual, 1e-9 * actual) << schedule.algorithm();
  }
}

TEST(Blame, WhatIfZeroNeverExceedsTotal) {
  const std::uint32_t n = 32;
  const obs::TransferLog log = observe_ring(
      core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8}), ring_cfg(), n);
  const BlameReport report = build_blame(log);
  for (const BlameCategory category : all_blame_categories()) {
    const double hypothetical = what_if_zero(log, category).count();
    EXPECT_LE(hypothetical, report.total_time.count() * (1.0 + 1e-9))
        << to_string(category);
    // Removing a category can save at most what was attributed to it
    // (the DAG bound is sound, never optimistic beyond the attribution).
    EXPECT_GE(hypothetical,
              report.total_time.count() - report.categories[category] -
                  1e-12)
        << to_string(category);
  }
}

TEST(Blame, JsonIsByteDeterministic) {
  const std::uint32_t n = 32;
  const auto schedule = core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8});
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    const obs::TransferLog log = observe_ring(schedule, ring_cfg(), n);
    const BlameReport report = build_blame(log);
    const std::vector<std::pair<std::string, double>> what_if = {
        {"policy_on_retune", what_if_on_retune(log).count()}};
    std::ostringstream stream;
    write_blame_json(report, what_if, stream);
    *out = stream.str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\": \"wrht-blame-1\""), std::string::npos);
}

TEST(Blame, JsonRoundTripsThroughTheReader) {
  const std::uint32_t n = 32;
  const obs::TransferLog log = observe_ring(
      core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8}), ring_cfg(), n);
  const BlameReport report = build_blame(log);
  std::ostringstream stream;
  write_blame_json(report, {{"policy_on_retune", 1.25e-3}}, stream);
  std::istringstream in(stream.str());
  const ParsedBlame parsed = read_blame_json(in);
  EXPECT_EQ(parsed.kind, "run");
  EXPECT_EQ(parsed.source, "optical-ring");
  EXPECT_DOUBLE_EQ(parsed.total_time, report.total_time.count());
  EXPECT_DOUBLE_EQ(parsed.attributed_time, report.attributed());
  EXPECT_EQ(parsed.categories.size(), kNumBlameCategories);
  EXPECT_DOUBLE_EQ(parsed.categories.at("reconfiguration"),
                   report.categories[BlameCategory::kReconfiguration]);
  EXPECT_DOUBLE_EQ(parsed.what_if.at("policy_on_retune"), 1.25e-3);
  EXPECT_EQ(parsed.lanes.size(), report.lanes.size());
}

TEST(Blame, ReaderRejectsMalformedInput) {
  {
    std::istringstream in("{\n  \"kind\": \"run\"\n}\n");
    EXPECT_THROW((void)read_blame_json(in), Error);  // no schema marker
  }
  {
    std::istringstream in("{\n  \"schema\": \"wrht-blame-9\"\n}\n");
    EXPECT_THROW((void)read_blame_json(in), Error);  // wrong version
  }
  {
    std::istringstream in(
        "{\n  \"schema\": \"wrht-blame-1\",\n  \"categories\": {\n"
        "    garbage here\n  }\n}\n");
    try {
      (void)read_blame_json(in);
      FAIL() << "malformed category accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Blame, DifferIsCleanOnIdenticalRunsAndFlagsInjectedRegression) {
  const std::uint32_t n = 32;
  const auto schedule = core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8});

  const auto to_parsed = [&](const optics::OpticalConfig& cfg) {
    const obs::TransferLog log = observe_ring(schedule, cfg, n);
    std::ostringstream stream;
    write_blame_json(build_blame(log), {}, stream);
    std::istringstream in(stream.str());
    return read_blame_json(in);
  };

  const ParsedBlame base = to_parsed(ring_cfg());
  const BlameDiff same = diff_blame(base, to_parsed(ring_cfg()));
  EXPECT_TRUE(same.clean()) << same.to_string();

  // Inject a 2x reconfiguration-cost regression; the differ must localize
  // the movement to the reconfiguration category and flag the run.
  optics::OpticalConfig slow = ring_cfg();
  slow.mrr_reconfig_delay = Seconds(50e-6);
  const BlameDiff diff = diff_blame(base, to_parsed(slow));
  EXPECT_TRUE(diff.regressed) << diff.to_string();
  ASSERT_FALSE(diff.categories.empty());
  EXPECT_EQ(diff.categories.front().name, "reconfiguration")
      << diff.to_string();
  EXPECT_GT(diff.categories.front().delta(), 0.0);
}

// Predicted-vs-realized gate: the planner's closed forms and the realized
// blame must tell the same story for a candidate the engine executes
// exactly (static ring, kEveryRound — no cache or retune subtleties).
TEST(Blame, PlannerPredictionMatchesRealizedBlame) {
  const std::uint32_t n = 32;
  const std::size_t elements = 6400;
  plan::PlannerOptions options;
  options.wavelengths = 8;
  const plan::Candidate candidate = plan::predict(
      plan::CandidateKind::kStaticRing, n, elements, options);
  ASSERT_TRUE(candidate.feasible) << candidate.note;

  const auto schedule = plan::build_candidate(
      plan::CandidateKind::kStaticRing, n, elements, options);
  Seconds total;
  const obs::TransferLog log = observe_ring(schedule, ring_cfg(), n, &total);
  const BlameReport realized = build_blame(log);

  EXPECT_NEAR(candidate.predicted_time.count(), total.count(),
              1e-9 * total.count());
  EXPECT_EQ(realized.rounds, candidate.rounds);
  EXPECT_NEAR(realized.categories[BlameCategory::kReconfiguration],
              static_cast<double>(candidate.reconfig_charges) *
                  options.mrr_reconfig_delay.count(),
              1e-12);
  EXPECT_NEAR(realized.categories[BlameCategory::kConversion],
              static_cast<double>(candidate.rounds) *
                  options.oeo_delay.count(),
              1e-12);
}

TEST(Blame, CriticalPathExportsSpansAndFlowArrows) {
  const std::uint32_t n = 32;
  const obs::TransferLog log = observe_ring(
      core::wrht_allreduce(n, 4096, core::WrhtOptions{5, 8}), ring_cfg(), n);
  const BlameReport report = build_blame(log);
  obs::ChromeTraceSink sink("blame-test");
  export_critical_path(report, sink);
  EXPECT_EQ(sink.size(), report.critical_path.size());
  ASSERT_GT(report.critical_path.size(), 1u);
  EXPECT_EQ(sink.flow_count(), report.critical_path.size() - 1);
  std::ostringstream stream;
  sink.write(stream);
  const std::string json = stream.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Blame, UnobservedLogIsRejected) {
  const obs::TransferLog empty;
  EXPECT_THROW((void)build_blame(empty), Error);
}

}  // namespace
}  // namespace wrht::diag
