#include "wrht/dnn/bucketing.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"
#include "wrht/dnn/zoo.hpp"

namespace wrht::dnn {
namespace {

TEST(Bucketize, CoversEveryParameterExactlyOnce) {
  for (const auto& model : paper_workloads()) {
    const BucketPlan plan = bucketize(model, 25'000'000 / 4);
    EXPECT_EQ(plan.total_params(), model.parameter_count()) << model.name();
  }
}

TEST(Bucketize, RespectsCapExceptSingleHugeLayers) {
  const Model model = vgg16();
  const std::uint64_t cap = 5'000'000;
  const BucketPlan plan = bucketize(model, cap);
  std::uint64_t largest_layer = 0;
  for (const auto& l : model.layers()) {
    largest_layer = std::max(largest_layer, l.parameters);
  }
  for (const std::uint64_t b : plan.bucket_params) {
    EXPECT_LE(b, std::max(cap, largest_layer));
  }
}

TEST(Bucketize, SmallerCapMeansMoreBuckets) {
  const Model model = resnet50();
  EXPECT_GT(bucketize(model, 1'000'000).buckets(),
            bucketize(model, 10'000'000).buckets());
}

TEST(Bucketize, HugeCapYieldsSingleBucket) {
  const Model model = alexnet();
  const BucketPlan plan = bucketize(model, model.parameter_count());
  EXPECT_EQ(plan.buckets(), 1u);
  EXPECT_EQ(plan.bucket_params[0], model.parameter_count());
}

TEST(Bucketize, FirstBucketHoldsLastLayers) {
  // Reverse order: the classifier head lands in the first bucket.
  const Model model = vgg16();
  const BucketPlan plan = bucketize(model, 5'000'000);
  // fc3 is ~4.1M params; it fits the first bucket alone under a 5M cap.
  EXPECT_EQ(plan.bucket_params.front(), 4'097'000u);
}

TEST(Bucketize, Validation) {
  EXPECT_THROW(bucketize(resnet50(), 0), InvalidArgument);
}

TEST(Overlap, FullyHiddenWhenComputeDominates) {
  const Model model = beit_large();  // heavy compute
  TrainingConfig cfg;
  cfg.batch_per_worker = 64;
  const BucketPlan plan = bucketize(model, 10'000'000);
  // Tiny communication: 1 us per bucket.
  std::vector<Seconds> comm(plan.buckets(), Seconds(1e-6));
  const OverlapResult r = overlapped_iteration(model, cfg, plan, comm);
  EXPECT_GT(r.overlap_efficiency(), 0.95);
  EXPECT_NEAR(r.iteration.count(), compute_time(model, cfg).count(), 1e-4);
}

TEST(Overlap, FullyExposedWhenCommDominates) {
  const Model model = resnet50();
  TrainingConfig cfg;
  cfg.batch_per_worker = 1;
  const BucketPlan plan = bucketize(model, model.parameter_count());
  std::vector<Seconds> comm{Seconds(10.0)};
  const OverlapResult r = overlapped_iteration(model, cfg, plan, comm);
  // One bucket only becomes ready at the END of backward: zero overlap.
  EXPECT_NEAR(r.exposed_comm.count(), 10.0, 1e-9);
  EXPECT_LT(r.overlap_efficiency(), 0.01);
}

TEST(Overlap, MoreBucketsHideMoreCommunication) {
  const Model model = vgg16();
  TrainingConfig cfg;
  cfg.batch_per_worker = 32;
  const BucketPlan one = bucketize(model, model.parameter_count());
  const BucketPlan many = bucketize(model, 5'000'000);
  // Same total communication either way.
  const double total_comm = 0.05;
  std::vector<Seconds> comm_one{Seconds(total_comm)};
  std::vector<Seconds> comm_many(
      many.buckets(), Seconds(total_comm / many.buckets()));
  const OverlapResult r_one = overlapped_iteration(model, cfg, one, comm_one);
  const OverlapResult r_many =
      overlapped_iteration(model, cfg, many, comm_many);
  EXPECT_LT(r_many.exposed_comm.count(), r_one.exposed_comm.count());
  EXPECT_LE(r_many.iteration.count(), r_one.iteration.count());
}

TEST(Overlap, IterationNeverBeatsComputeOrComm) {
  const Model model = alexnet();
  TrainingConfig cfg;
  const BucketPlan plan = bucketize(model, 10'000'000);
  std::vector<Seconds> comm(plan.buckets(), Seconds(0.002));
  const OverlapResult r = overlapped_iteration(model, cfg, plan, comm);
  EXPECT_GE(r.iteration.count(), compute_time(model, cfg).count());
  EXPECT_GE(r.iteration.count(), r.total_comm.count());
}

TEST(Overlap, Validation) {
  const Model model = resnet50();
  TrainingConfig cfg;
  const BucketPlan plan = bucketize(model, 1'000'000);
  std::vector<Seconds> wrong(plan.buckets() + 1, Seconds(0.0));
  EXPECT_THROW(overlapped_iteration(model, cfg, plan, wrong),
               InvalidArgument);
  BucketPlan bad = plan;
  bad.bucket_params.back() += 1;
  std::vector<Seconds> comm(bad.buckets(), Seconds(0.0));
  EXPECT_THROW(overlapped_iteration(model, cfg, bad, comm), InvalidArgument);
}

}  // namespace
}  // namespace wrht::dnn
