// Thread-safety tests for obs::Counters. These run meaningfully under any
// sanitizer, but are written for ThreadSanitizer in particular (the CI
// tsan job runs this binary): concurrent add / observe_max / merge /
// snapshot on one shared instance must be race-free, and the kind-aware
// merge must behave as if one combined run had been observed.
#include "wrht/obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::obs {
namespace {

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kIterations = 2000;

TEST(CountersThreaded, ConcurrentAddsSumExactly) {
  Counters counters;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counters] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        counters.add("shared", 1);
        counters.add("weighted", 3);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(counters.value("shared"), kThreads * kIterations);
  EXPECT_EQ(counters.value("weighted"), 3 * kThreads * kIterations);
}

TEST(CountersThreaded, ConcurrentObserveMaxKeepsGlobalMaximum) {
  Counters counters;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counters, t] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        // Every thread's sequence peaks at a different value; the global
        // watermark is the largest peak over all threads.
        counters.observe_max("peak", t * kIterations + i);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(counters.value("peak"), kThreads * kIterations - 1);
}

TEST(CountersThreaded, ConcurrentReadersSeeConsistentSnapshots) {
  Counters counters;
  std::vector<std::thread> pool;
  // Writers...
  for (unsigned t = 0; t < kThreads / 2; ++t) {
    pool.emplace_back([&counters] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        counters.add("writes");
        counters.observe_max("high", i);
      }
    });
  }
  // ...racing readers. Snapshots return copies, so iterating one while
  // writers mutate the registry must be safe.
  for (unsigned t = 0; t < kThreads / 2; ++t) {
    pool.emplace_back([&counters] {
      std::uint64_t last = 0;
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        const auto snap = counters.snapshot();
        const auto it = snap.find("writes");
        const std::uint64_t now = it == snap.end() ? 0 : it->second;
        EXPECT_GE(now, last);  // additive counters never go backwards
        last = now;
        static_cast<void>(counters.contains("high"));
        static_cast<void>(counters.size());
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(counters.value("writes"), (kThreads / 2) * kIterations);
}

TEST(CountersThreaded, ConcurrentMergesMatchOneCombinedRun) {
  // The exp::SweepRunner pattern: every worker observes its own run into a
  // local registry, then merges into the shared one. Additive counters must
  // sum across runs; watermark counters must keep the global max.
  Counters shared;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shared, t] {
      for (std::uint64_t i = 0; i < 100; ++i) {
        Counters local;
        local.add("runs");
        local.add("steps", 10);
        local.observe_max("max_wavelengths", t + 1);
        shared.merge(local);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(shared.value("runs"), kThreads * 100);
  EXPECT_EQ(shared.value("steps"), kThreads * 1000);
  EXPECT_EQ(shared.value("max_wavelengths"), kThreads);
}

TEST(CountersThreaded, MergePreservesKindsAcrossRegistries) {
  Counters a;
  a.add("adds", 5);
  a.observe_max("maxes", 7);

  Counters b;
  b.add("adds", 6);
  b.observe_max("maxes", 3);

  a.merge(b);
  EXPECT_EQ(a.value("adds"), 11u);   // additive: sums
  EXPECT_EQ(a.value("maxes"), 7u);   // watermark: keeps the larger

  // A second merge into a fresh registry inherits the kinds, so chained
  // merges (worker -> bench metrics -> process summary) stay correct.
  Counters c;
  c.merge(a);
  c.merge(b);
  EXPECT_EQ(c.value("adds"), 17u);
  EXPECT_EQ(c.value("maxes"), 7u);
}

TEST(CountersThreaded, ConcurrentObserveBuildsOneCombinedDistribution) {
  // Sweep workers recording latency samples into one shared histogram
  // entry: the final distribution must hold every observation, as if one
  // thread had observed them all.
  Counters counters;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counters, t] {
      for (std::uint64_t i = 0; i < kIterations; ++i) {
        // Spread observations over several decades so many buckets fill.
        counters.observe("latency_s",
                         1e-5 * static_cast<double>(t * kIterations + i + 1));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(counters.value("latency_s"), kThreads * kIterations);
  const auto dist = counters.distribution("latency_s");
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->count(), kThreads * kIterations);
  EXPECT_GT(dist->quantile(0.99), dist->quantile(0.5));
}

TEST(CountersThreaded, ConcurrentHistogramMergesMatchOneCombinedRun) {
  Counters shared;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&shared] {
      for (std::uint64_t i = 0; i < 100; ++i) {
        Counters local;
        local.observe("jct_s", 0.01 * static_cast<double>(i + 1));
        local.add("runs");
        shared.merge(local);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(shared.value("runs"), kThreads * 100);
  const auto dist = shared.distribution("jct_s");
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->count(), kThreads * 100);
}

TEST(CountersThreaded, HistogramEntriesRejectScalarAccess) {
  Counters counters;
  counters.observe("hist", 1.0);
  EXPECT_THROW(counters.observe("hist", 1.0, HistogramSpec{1e-3, 4.0, 8}),
               Error);  // spec must match on every call
  counters.add("adds", 1);
  EXPECT_THROW(counters.observe("adds", 1.0), Error);

  Counters other;
  other.add("hist", 1);  // scalar under the histogram's name
  EXPECT_THROW(counters.merge(other), Error);
  // distribution() on non-histograms answers nullopt, not a throw.
  EXPECT_FALSE(counters.distribution("adds").has_value());
  EXPECT_FALSE(counters.distribution("absent").has_value());
}

TEST(CountersThreaded, SelfMergeIsANoOp) {
  Counters counters;
  counters.add("adds", 4);
  counters.observe_max("maxes", 9);
  counters.merge(counters);
  EXPECT_EQ(counters.value("adds"), 4u);
  EXPECT_EQ(counters.value("maxes"), 9u);
}

TEST(CountersThreaded, ClearResetsEverything) {
  Counters counters;
  counters.add("adds", 4);
  counters.observe_max("maxes", 9);
  counters.clear();
  EXPECT_EQ(counters.size(), 0u);
  EXPECT_EQ(counters.value("adds"), 0u);
  EXPECT_FALSE(counters.contains("maxes"));
}

}  // namespace
}  // namespace wrht::obs
