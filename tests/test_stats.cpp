#include "wrht/common/stats.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_THROW(s.variance(), InvalidArgument);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.min(), InvalidArgument);
  EXPECT_THROW(s.max(), InvalidArgument);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({1.0, 10.0, 100.0}), 10.0, 1e-12);
  EXPECT_THROW(geometric_mean({}), InvalidArgument);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), InvalidArgument);
}

TEST(ArithmeticMean, Basics) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(arithmetic_mean({}), InvalidArgument);
}

TEST(MeanReduction, MatchesPaperAggregation) {
  // ours half of baseline everywhere -> 50% reduction.
  EXPECT_DOUBLE_EQ(mean_reduction_percent({1.0, 2.0}, {2.0, 4.0}), 50.0);
  // Mixed: 75% and 25% -> 50% average.
  EXPECT_DOUBLE_EQ(mean_reduction_percent({1.0, 3.0}, {4.0, 4.0}), 50.0);
  // Slower than baseline yields a negative reduction.
  EXPECT_LT(mean_reduction_percent({3.0}, {2.0}), 0.0);
}

TEST(MeanReduction, Validation) {
  EXPECT_THROW(mean_reduction_percent({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(mean_reduction_percent({}, {}), InvalidArgument);
  EXPECT_THROW(mean_reduction_percent({1.0}, {0.0}), InvalidArgument);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v{3.0, 1.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(v[0], 3.0);  // input not mutated
}

TEST(Percentile, LinearInterpolationMatchesR7) {
  // numpy.percentile([1, 2, 3, 4], 25) == 1.75 under the default (R-7)
  // definition: h = 0.25 * 3 = 0.75 -> 1 + 0.75 * (2 - 1).
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 3.7);
}

TEST(Percentile, SingleValueIsEveryQuantile) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.37), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.1), InvalidArgument);
}

}  // namespace
}  // namespace wrht
