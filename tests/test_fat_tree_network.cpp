#include "wrht/electrical/fat_tree_network.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"

namespace wrht::elec {
namespace {

using coll::Schedule;
using coll::Step;
using coll::Transfer;
using coll::TransferKind;

ElectricalConfig test_config() {
  ElectricalConfig c;
  c.link_rate = BitsPerSecond(40e9);
  c.router_delay = Seconds(25e-6);
  return c;
}

Schedule one_transfer(std::uint32_t n, topo::NodeId src, topo::NodeId dst,
                      std::size_t elements) {
  Schedule s("manual", n, elements);
  s.add_step().transfers.push_back(
      Transfer{src, dst, 0, elements, TransferKind::kReduce, {}});
  return s;
}

TEST(FatTreeNetwork, IntraRackTransferTime) {
  const FatTreeNetwork net(64, test_config());
  // 1M elements * 4 B at the paper-convention 40e9 B/s + one router delay.
  const auto res = net.execute(one_transfer(64, 0, 1, 1'000'000));
  EXPECT_NEAR(res.total_time.count(), 4e6 / 40e9 + 25e-6, 1e-12);
}

TEST(FatTreeNetwork, InterRackPaysThreeRouterDelays) {
  const FatTreeNetwork net(64, test_config());
  const auto res = net.execute(one_transfer(64, 0, 40, 1'000'000));
  EXPECT_NEAR(res.total_time.count(), 4e6 / 40e9 + 3 * 25e-6, 1e-12);
}

TEST(FatTreeNetwork, StrictBitsConventionIsEightTimesSlower) {
  const ElectricalConfig strict =
      test_config().with_convention(net::RateConvention::kStrictBits);
  const FatTreeNetwork paper(64, test_config());
  const FatTreeNetwork bits(64, strict);
  const Schedule s = one_transfer(64, 0, 1, 10'000'000);
  const double serialization_paper =
      paper.execute(s).total_time.count() - 25e-6;
  const double serialization_bits =
      bits.execute(s).total_time.count() - 25e-6;
  EXPECT_NEAR(serialization_bits / serialization_paper, 8.0, 1e-6);
}

TEST(FatTreeNetwork, UplinkContentionSlowsFanIn) {
  // 15 hosts of rack 0 all send to the same host in rack 1: the receiver's
  // edge->host link is shared 15 ways.
  const FatTreeNetwork net(64, test_config());
  Schedule s("fan-in", 64, 1'000'000);
  Step& step = s.add_step();
  for (topo::NodeId src = 1; src < 16; ++src) {
    step.transfers.push_back(
        Transfer{src, 20, 0, 1'000'000, TransferKind::kReduce, {}});
  }
  const auto res = net.execute(s);
  EXPECT_EQ(res.max_link_load, 15u);
  // Serialization is ~15x a lone transfer's.
  EXPECT_GT(res.total_time.count(), 15.0 * 4e6 / 40e9);
}

TEST(FatTreeNetwork, ParallelDisjointPairsDontContend) {
  const FatTreeNetwork net(64, test_config());
  Schedule s("pairs", 64, 1'000'000);
  Step& step = s.add_step();
  for (topo::NodeId i = 0; i < 8; ++i) {
    step.transfers.push_back(Transfer{static_cast<topo::NodeId>(2 * i),
                                      static_cast<topo::NodeId>(2 * i + 1), 0,
                                      1'000'000, TransferKind::kReduce, {}});
  }
  const auto res = net.execute(s);
  EXPECT_EQ(res.max_link_load, 1u);
  EXPECT_NEAR(res.total_time.count(), 4e6 / 40e9 + 25e-6, 1e-12);
}

TEST(FatTreeNetwork, StepsAccumulateSequentially) {
  const FatTreeNetwork net(64, test_config());
  Schedule s("two-steps", 64, 1000);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 1000, TransferKind::kReduce, {}});
  s.add_step().transfers.push_back(
      Transfer{1, 0, 0, 1000, TransferKind::kCopy, {}});
  const auto res = net.execute(s);
  ASSERT_EQ(res.step_times.size(), 2u);
  EXPECT_NEAR(res.total_time.count(),
              res.step_times[0].count() + res.step_times[1].count(), 1e-15);
}

TEST(FatTreeNetwork, RingAllreduceRunsAndCountsFlows) {
  const FatTreeNetwork net(32, test_config());
  const Schedule s = coll::ring_allreduce(32, 64);
  const auto res = net.execute(s);
  EXPECT_EQ(res.steps, 62u);
  EXPECT_EQ(res.total_flows, 62u * 32u);
  EXPECT_GT(res.total_time.count(), 0.0);
}

TEST(FatTreeNetwork, RecursiveDoublingFasterThanRingForSmallPayloads) {
  // Latency-bound regime: RD's log2(N) steps beat Ring's 2(N-1).
  const FatTreeNetwork net(64, test_config());
  const auto ring = net.execute(coll::ring_allreduce(64, 64));
  const auto rd = net.execute(coll::recursive_doubling_allreduce(64, 64));
  EXPECT_LT(rd.total_time.count(), ring.total_time.count());
}

TEST(FatTreeNetwork, EmptyStepCostsNothing) {
  const FatTreeNetwork net(16, test_config());
  Schedule s("empty", 16, 10);
  s.add_step();
  const auto res = net.execute(s);
  EXPECT_DOUBLE_EQ(res.total_time.count(), 0.0);
}

TEST(FatTreeNetwork, RejectsOversizedSchedules) {
  const FatTreeNetwork net(16, test_config());
  EXPECT_THROW(net.execute(one_transfer(32, 0, 20, 100)), InvalidArgument);
}

}  // namespace
}  // namespace wrht::elec
