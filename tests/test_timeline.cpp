#include "wrht/optical/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/common/error.hpp"

namespace wrht::optics {
namespace {

OpticalRunResult small_run() {
  OpticalConfig cfg;
  const RingNetwork net(8, cfg);
  return net.execute(coll::btree_allreduce(8, 800));
}

TEST(Timeline, StepStartsAreCumulative) {
  const OpticalRunResult res = small_run();
  ASSERT_EQ(res.step_costs.size(), 6u);
  double expect = 0.0;
  for (const StepCost& c : res.step_costs) {
    EXPECT_NEAR(c.start.count(), expect, 1e-15);
    expect += c.duration.count();
  }
  EXPECT_NEAR(expect, res.total_time.count(), 1e-15);
}

TEST(Timeline, CsvHasOneRowPerStep) {
  const OpticalRunResult res = small_run();
  const std::string path = testing::TempDir() + "/timeline_test.csv";
  write_timeline_csv(res, path);
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_EQ(line,
            "step,start_s,duration_s,rounds,wavelengths,"
            "max_transfer_elements");
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, res.step_costs.size());
  std::remove(path.c_str());
}

TEST(Timeline, AsciiRendersOneBarPerStep) {
  const OpticalRunResult res = small_run();
  std::ostringstream os;
  print_timeline(res, os, 40);
  std::size_t bars = 0;
  std::istringstream in(os.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.find('#') != std::string::npos) ++bars;
  }
  EXPECT_EQ(bars, res.step_costs.size());
}

TEST(Timeline, EmptyRunRendersPlaceholder) {
  OpticalRunResult empty;
  std::ostringstream os;
  print_timeline(empty, os);
  EXPECT_NE(os.str().find("empty timeline"), std::string::npos);
}

TEST(Timeline, WidthValidated) {
  OpticalRunResult empty;
  std::ostringstream os;
  EXPECT_THROW(print_timeline(empty, os, 2), InvalidArgument);
}

}  // namespace
}  // namespace wrht::optics
