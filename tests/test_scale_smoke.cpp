// Large-scale smoke tests (ctest label `large`, excluded from tier-1):
// build WRHT schedules at the N = 10^5 / 256x256-torus scale the arena and
// incremental work targets, verify them with the cheap oracles (structural
// invariants plus a sampled data-level proof on a 1-element vector — WRHT
// schedules are full-vector, so the element axis is structure-free and one
// element proves the same linear combination), and hold the whole run
// under a hard peak-RSS budget read from prof::peak_rss_bytes.
//
// These run as their own single-shard Release CI job: they are memory- and
// minutes-scale, not unit-test-scale.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/prof/prof.hpp"
#include "wrht/topo/torus.hpp"
#include "wrht/verify/invariants.hpp"
#include "wrht/verify/oracle.hpp"

namespace wrht {
namespace {

constexpr std::uint32_t kRingNodes = 100000;
constexpr std::uint32_t kTorusSide = 256;
constexpr std::uint32_t kWavelengths = 64;

/// Hard budget for the whole binary (both schedules and their verifiers):
/// the N = 10^5 ring schedule holds ~10^5-scale transfer lists on its
/// arena, the 256x256 torus one is of comparable size, and the sampled
/// oracle keeps one double per node. Measured peak is ~38 MB; the
/// headroom absorbs allocator and libc variance across runners without
/// letting an accidental O(N^2) path slip through.
constexpr std::size_t kPeakRssBudgetBytes = 256ull * 1024 * 1024;

TEST(ScaleSmoke, Ring100kWrhtScheduleBuildsAndVerifies) {
  const core::WrhtPlan plan = core::plan_wrht(kRingNodes, kWavelengths);
  core::WrhtOptions options;
  options.group_size = plan.group_size;
  options.wavelengths = kWavelengths;

  // Element axis sampled at 1: rescale_elements (what the sweep cache
  // does) proves structure is element-independent for full-vector
  // schedules, so verifying at 1 element verifies them all.
  const coll::Schedule schedule =
      core::wrht_allreduce(kRingNodes, 1, options);
  EXPECT_EQ(schedule.storage(), coll::ScheduleStorage::kArena);
  EXPECT_TRUE(schedule.full_vector());
  ASSERT_NE(schedule.arena(), nullptr);
  // The arena must hold the transfer payload in O(few) chunks, not one
  // malloc per transfer list.
  EXPECT_LE(schedule.arena()->chunks(),
            schedule.arena()->bytes_allocated() / (64 * 1024) + 8);

  const verify::CheckResult structure =
      verify::check_schedule_structure(schedule);
  EXPECT_TRUE(structure.ok()) << structure.summary();

  const verify::CheckResult steps = verify::check_wrht_step_count(
      schedule, kRingNodes, plan.group_size, kWavelengths);
  EXPECT_TRUE(steps.ok()) << steps.summary();

  const verify::OracleReport oracle = verify::check_allreduce(schedule);
  EXPECT_TRUE(oracle.ok()) << oracle.result.summary();
  // N^2 cells puts the exact provenance proof far over its cap; the
  // numeric proof is the sampled oracle here.
  EXPECT_FALSE(oracle.provenance_checked);

  EXPECT_LE(prof::peak_rss_bytes(), kPeakRssBudgetBytes);
}

TEST(ScaleSmoke, Torus256x256WrhtScheduleBuildsAndVerifies) {
  const topo::Torus torus(kTorusSide, kTorusSide);
  core::WrhtOptions options;
  options.group_size = core::plan_wrht(kTorusSide, kWavelengths).group_size;
  options.wavelengths = kWavelengths;

  const coll::Schedule schedule =
      core::torus_wrht_allreduce(torus, 1, options);
  EXPECT_EQ(schedule.storage(), coll::ScheduleStorage::kArena);
  EXPECT_EQ(schedule.num_nodes(), kTorusSide * kTorusSide);

  const verify::CheckResult structure =
      verify::check_schedule_structure(schedule);
  EXPECT_TRUE(structure.ok()) << structure.summary();

  const verify::OracleReport oracle = verify::check_allreduce(schedule);
  EXPECT_TRUE(oracle.ok()) << oracle.result.summary();

  EXPECT_LE(prof::peak_rss_bytes(), kPeakRssBudgetBytes);
}

/// The element-rescale patch at scale: re-targeting the 10^5-node build at
/// a paper-sized vector must not touch the step structure or the RSS
/// budget (counts mutate in place — no new storage).
TEST(ScaleSmoke, Ring100kRescaleStaysInBudget) {
  const core::WrhtPlan plan = core::plan_wrht(kRingNodes, kWavelengths);
  core::WrhtOptions options;
  options.group_size = plan.group_size;
  options.wavelengths = kWavelengths;

  coll::Schedule schedule = core::wrht_allreduce(kRingNodes, 1, options);
  const std::size_t steps_before = schedule.num_steps();
  schedule.rescale_elements(25557032);  // ResNet50 parameters
  EXPECT_EQ(schedule.num_steps(), steps_before);
  EXPECT_EQ(schedule.elements(), 25557032u);
  EXPECT_TRUE(schedule.full_vector());
  EXPECT_LE(prof::peak_rss_bytes(), kPeakRssBudgetBytes);
}

}  // namespace
}  // namespace wrht
