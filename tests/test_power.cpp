#include "wrht/optical/power.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::optics {
namespace {

TEST(InsertionLoss, Eq8IsLinearInHops) {
  PowerParams p;
  p.modulator_loss = Decibels(1.0);
  p.pass_loss = Decibels(0.05);
  EXPECT_DOUBLE_EQ(insertion_loss(0, p).count(), 1.0);
  EXPECT_DOUBLE_EQ(insertion_loss(10, p).count(), 1.5);
  EXPECT_DOUBLE_EQ(insertion_loss(100, p).count(), 6.0);
}

TEST(PowerFeasible, Eq9Threshold) {
  PowerParams p;
  p.laser_power = PowerDbm(10.0);
  p.modulator_loss = Decibels(1.0);
  p.pass_loss = Decibels(0.1);
  p.extinction_penalty = Decibels(5.0);
  // Budget headroom: 10 - 1 - 5 = 4 dB -> 40 hops.
  EXPECT_TRUE(power_feasible(40, p));
  EXPECT_FALSE(power_feasible(41, p));
  EXPECT_EQ(max_reach_hops(p), 40u);
}

TEST(MaxReach, ZeroWhenBudgetNegative) {
  PowerParams p;
  p.laser_power = PowerDbm(1.0);
  p.modulator_loss = Decibels(2.0);
  p.extinction_penalty = Decibels(5.0);
  EXPECT_EQ(max_reach_hops(p), 0u);
  EXPECT_FALSE(power_feasible(1, p));
}

TEST(MaxReach, UnboundedWithoutPassLoss) {
  PowerParams p;
  p.pass_loss = Decibels(0.0);
  EXPECT_EQ(max_reach_hops(p), UINT64_MAX);
}

TEST(MaxReach, MonotoneInLaserPower) {
  PowerParams p;
  std::uint64_t prev = 0;
  for (double laser = 6.0; laser <= 14.0; laser += 1.0) {
    p.laser_power = PowerDbm(laser);
    const std::uint64_t reach = max_reach_hops(p);
    EXPECT_GE(reach, prev);
    prev = reach;
  }
}

TEST(WrhtMaxCommLength, Eq7SingleLevel) {
  // N <= m: one level, longest path floor(m/2).
  EXPECT_EQ(wrht_max_comm_length(8, 9), 4u);
  EXPECT_EQ(wrht_max_comm_length(8, 8), 4u);
  EXPECT_EQ(wrht_max_comm_length(15, 15), 7u);
}

TEST(WrhtMaxCommLength, Eq7MultiLevel) {
  // L = ceil(log_m N) >= 2: longest path m^(L-1).
  EXPECT_EQ(wrht_max_comm_length(1024, 129), 129u);   // L = 2
  EXPECT_EQ(wrht_max_comm_length(1024, 17), 289u);    // L = 3 -> 17^2
  EXPECT_EQ(wrht_max_comm_length(1024, 4), 256u);     // L = 5 -> 4^4
}

TEST(WrhtMaxCommLength, Validation) {
  EXPECT_THROW(wrht_max_comm_length(1, 4), InvalidArgument);
  EXPECT_THROW(wrht_max_comm_length(8, 1), InvalidArgument);
}

TEST(MaxGroupSizeByPower, RespectsReach) {
  PowerParams p;
  p.laser_power = PowerDbm(10.0);
  p.modulator_loss = Decibels(1.3);
  p.pass_loss = Decibels(0.02);
  p.extinction_penalty = Decibels(4.8);
  // reach = floor((10 - 1.3 - 4.8) / 0.02) = 195 hops.
  ASSERT_EQ(max_reach_hops(p), 195u);
  const std::uint32_t m = max_group_size_by_power(1024, p);
  ASSERT_GE(m, 2u);
  EXPECT_LE(wrht_max_comm_length(1024, m), 195u);
  // And the result is maximal: no larger m is feasible.
  for (std::uint32_t larger = m + 1; larger <= 1024; ++larger) {
    EXPECT_GT(wrht_max_comm_length(1024, larger), 195u);
  }
}

TEST(MaxGroupSizeByPower, ZeroWhenNothingFits) {
  PowerParams p;
  p.laser_power = PowerDbm(0.0);
  p.modulator_loss = Decibels(2.0);
  p.extinction_penalty = Decibels(5.0);
  EXPECT_EQ(max_group_size_by_power(64, p), 0u);
}

TEST(MaxGroupSizeByPower, GenerousBudgetAllowsFullRing) {
  PowerParams p;
  p.laser_power = PowerDbm(30.0);
  EXPECT_EQ(max_group_size_by_power(64, p), 64u);
}

}  // namespace
}  // namespace wrht::optics
