#include "wrht/electrical/flow_sim.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::elec {
namespace {

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  const FlowLevelSimulator sim({100.0});
  const auto rates = sim.max_min_rates({FlowSpec{10.0, {0}, 0.0}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMin, TwoFlowsShareEqually) {
  const FlowLevelSimulator sim({100.0});
  const auto rates = sim.max_min_rates(
      {FlowSpec{10.0, {0}, 0.0}, FlowSpec{10.0, {0}, 0.0}});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMin, ClassicTriangleExample) {
  // Links A(cap 10) and B(cap 8). Flow 0 uses A+B, flow 1 uses A, flow 2
  // uses B. Max-min: bottleneck B gives 4 to flows 0 and 2; flow 1 then
  // gets the A remainder, 6.
  const FlowLevelSimulator sim({10.0, 8.0});
  const auto rates = sim.max_min_rates({FlowSpec{1.0, {0, 1}, 0.0},
                                        FlowSpec{1.0, {0}, 0.0},
                                        FlowSpec{1.0, {1}, 0.0}});
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 6.0);
  EXPECT_DOUBLE_EQ(rates[2], 4.0);
}

TEST(MaxMin, UnloadedLinkIgnored) {
  const FlowLevelSimulator sim({5.0, 1000.0});
  const auto rates = sim.max_min_rates({FlowSpec{1.0, {0}, 0.0}});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
}

TEST(FlowRun, SingleFlowDrainTime) {
  const FlowLevelSimulator sim({100.0});
  const FlowResult r = sim.run({FlowSpec{500.0, {0}, 0.0}});
  EXPECT_NEAR(r.makespan, 5.0, 1e-9);
}

TEST(FlowRun, LatencyAddsToCompletion) {
  const FlowLevelSimulator sim({100.0});
  const FlowResult r = sim.run({FlowSpec{500.0, {0}, 2.5}});
  EXPECT_NEAR(r.makespan, 7.5, 1e-9);
}

TEST(FlowRun, DepartureSpeedsUpSurvivors) {
  // Two flows share a 10 B/s link; the small one (10 B) finishes at t=2,
  // then the big one (50 B) drains its remaining 40 B at full rate:
  // 2 + 4 = 6, instead of 10 under static halving.
  const FlowLevelSimulator sim({10.0});
  const FlowResult r =
      sim.run({FlowSpec{10.0, {0}, 0.0}, FlowSpec{50.0, {0}, 0.0}});
  EXPECT_NEAR(r.completion[0], 2.0, 1e-9);
  EXPECT_NEAR(r.completion[1], 6.0, 1e-9);
  EXPECT_NEAR(r.makespan, 6.0, 1e-9);
  EXPECT_GE(r.rate_recomputations, 2u);
}

TEST(FlowRun, EqualFlowsFinishTogether) {
  const FlowLevelSimulator sim({8.0});
  const FlowResult r = sim.run({FlowSpec{16.0, {0}, 0.0},
                                FlowSpec{16.0, {0}, 0.0},
                                FlowSpec{16.0, {0}, 0.0},
                                FlowSpec{16.0, {0}, 0.0}});
  for (const double c : r.completion) EXPECT_NEAR(c, 8.0, 1e-9);
}

TEST(FlowRun, MultiHopBottleneck) {
  // Flow crosses two links; the slower one governs.
  const FlowLevelSimulator sim({100.0, 10.0});
  const FlowResult r = sim.run({FlowSpec{50.0, {0, 1}, 0.0}});
  EXPECT_NEAR(r.makespan, 5.0, 1e-9);
}

TEST(FlowRun, DisjointFlowsDontInteract) {
  const FlowLevelSimulator sim({10.0, 10.0});
  const FlowResult r =
      sim.run({FlowSpec{20.0, {0}, 0.0}, FlowSpec{40.0, {1}, 0.0}});
  EXPECT_NEAR(r.completion[0], 2.0, 1e-9);
  EXPECT_NEAR(r.completion[1], 4.0, 1e-9);
}

TEST(FlowRun, Validation) {
  EXPECT_THROW(FlowLevelSimulator({0.0}), InvalidArgument);
  const FlowLevelSimulator sim({10.0});
  EXPECT_THROW(sim.run({FlowSpec{0.0, {0}, 0.0}}), InvalidArgument);
  EXPECT_THROW(sim.run({FlowSpec{1.0, {}, 0.0}}), InvalidArgument);
  EXPECT_THROW(sim.run({FlowSpec{1.0, {5}, 0.0}}), InvalidArgument);
}

}  // namespace
}  // namespace wrht::elec
