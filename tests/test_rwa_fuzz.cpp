// Randomized property tests for the RWA engine and conflict detection:
// whatever random transfer sets we throw at it, every assignment it
// returns must be conflict-free, honour hints, and stay within the budget;
// deliberately corrupted assignments must be caught by count_conflicts.
#include <gtest/gtest.h>

#include "wrht/common/rng.hpp"
#include "wrht/optical/rwa.hpp"

namespace wrht::optics {
namespace {

using coll::Transfer;
using coll::TransferKind;
using topo::Direction;
using topo::Ring;

std::vector<Transfer> random_transfers(Rng& rng, std::uint32_t n,
                                       std::size_t count) {
  std::vector<Transfer> transfers;
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.uniform_int(0, n - 1));
    auto dst = static_cast<topo::NodeId>(rng.uniform_int(0, n - 1));
    if (dst == src) dst = (dst + 1) % n;
    std::optional<Direction> dir;
    switch (rng.uniform_int(0, 2)) {
      case 0: dir = Direction::kClockwise; break;
      case 1: dir = Direction::kCounterClockwise; break;
      default: break;
    }
    transfers.push_back(
        Transfer{src, dst, 0, 1 + rng.uniform_int(0, 99),
                 TransferKind::kReduce, dir});
  }
  return transfers;
}

class RwaFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RwaFuzz, SingleRoundAssignmentsAreAlwaysConflictFree) {
  Rng rng(GetParam());
  const std::uint32_t n = 16 + static_cast<std::uint32_t>(
                                   rng.uniform_int(0, 48));
  const Ring ring(n);
  const auto transfers = random_transfers(rng, n, 2 * n);
  const RwaResult res =
      assign_wavelengths(ring, transfers, RwaOptions{4 * n});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(count_conflicts(res.paths, n), 0u);
  EXPECT_LE(res.wavelengths_used, 4 * n);
}

TEST_P(RwaFuzz, HintsAlwaysHonoured) {
  Rng rng(GetParam() + 1000);
  const std::uint32_t n = 24;
  const Ring ring(n);
  const auto transfers = random_transfers(rng, n, n);
  const RwaResult res =
      assign_wavelengths(ring, transfers, RwaOptions{4 * n});
  ASSERT_TRUE(res.ok);
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    if (transfers[i].direction) {
      EXPECT_EQ(res.paths[i].direction, *transfers[i].direction);
    }
  }
}

TEST_P(RwaFuzz, RoundsPartitionAndStayConflictFree) {
  Rng rng(GetParam() + 2000);
  const std::uint32_t n = 20;
  const Ring ring(n);
  const auto transfers = random_transfers(rng, n, 3 * n);
  const std::uint32_t budget =
      2 + static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  const RoundsResult res =
      assign_rounds(ring, transfers, RwaOptions{budget});
  std::vector<int> seen(transfers.size(), 0);
  for (std::size_t r = 0; r < res.rounds.size(); ++r) {
    EXPECT_EQ(count_conflicts(res.paths[r], n), 0u) << "round " << r;
    for (const std::size_t idx : res.rounds[r]) ++seen[idx];
    for (const auto& path : res.paths[r]) {
      EXPECT_LT(path.wavelength, budget);
    }
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST_P(RwaFuzz, CorruptedAssignmentsAreDetected) {
  Rng rng(GetParam() + 3000);
  const std::uint32_t n = 16;
  const Ring ring(n);
  // Two overlapping transfers forced onto one wavelength by hand.
  const auto a = segment_span(ring, 0, 5, Direction::kClockwise);
  const auto b = segment_span(ring, 3, 8, Direction::kClockwise);
  std::vector<Lightpath> paths = {
      Lightpath{0, 5, Direction::kClockwise, 0, 0, a.first, a.hops},
      Lightpath{3, 8, Direction::kClockwise, 0, 0, b.first, b.hops}};
  EXPECT_EQ(count_conflicts(paths, n), 1u);
  // Separating wavelengths clears the conflict.
  paths[1].wavelength = 1;
  EXPECT_EQ(count_conflicts(paths, n), 0u);
  // Opposite fibers clear it too.
  paths[1].wavelength = 0;
  paths[1].fiber = 1;
  EXPECT_EQ(count_conflicts(paths, n), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwaFuzz,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                         55u, 89u));

}  // namespace
}  // namespace wrht::optics
