#include "wrht/core/torus_wrht.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

using topo::Torus;

TEST(TorusWrht, CorrectOnSquareTorus) {
  Rng rng;
  const Torus torus(4, 4);
  const coll::Schedule s =
      torus_wrht_allreduce(torus, 8, WrhtOptions{2, 4});
  EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(TorusWrht, CorrectnessSweep) {
  Rng rng;
  for (std::uint32_t rows : {2u, 3u, 5u}) {
    for (std::uint32_t cols : {4u, 6u, 9u}) {
      for (std::uint32_t m : {2u, 3u}) {
        const Torus torus(rows, cols);
        const coll::Schedule s =
            torus_wrht_allreduce(torus, 6, WrhtOptions{m, 8});
        EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9)
            << rows << "x" << cols << " m=" << m;
      }
    }
  }
}

TEST(TorusWrht, StepCountMatchesPlan) {
  for (std::uint32_t rows : {3u, 4u}) {
    for (std::uint32_t cols : {6u, 8u}) {
      const Torus torus(rows, cols);
      const WrhtOptions opt{3, 8};
      const TorusWrhtPlan plan = torus_wrht_plan(torus, opt);
      const coll::Schedule s = torus_wrht_allreduce(torus, 4, opt);
      EXPECT_EQ(s.num_steps(), plan.total())
          << rows << "x" << cols;
    }
  }
}

TEST(TorusWrht, RowPhaseStaysInRows) {
  const Torus torus(3, 9);
  const coll::Schedule s = torus_wrht_allreduce(torus, 4, WrhtOptions{3, 8});
  const TorusWrhtPlan plan = torus_wrht_plan(torus, WrhtOptions{3, 8});
  for (std::uint32_t i = 0; i < plan.row_reduce_steps; ++i) {
    for (const coll::Transfer& t : s.steps()[i].transfers) {
      EXPECT_EQ(torus.row_of(t.src), torus.row_of(t.dst));
    }
  }
}

TEST(TorusWrht, ColumnPhaseStaysInRootColumn) {
  const Torus torus(3, 9);
  const WrhtOptions opt{3, 8};
  const coll::Schedule s = torus_wrht_allreduce(torus, 4, opt);
  const TorusWrhtPlan plan = torus_wrht_plan(torus, opt);
  std::uint32_t root_col = UINT32_MAX;
  for (std::uint32_t i = plan.row_reduce_steps;
       i < plan.row_reduce_steps + plan.column_steps; ++i) {
    for (const coll::Transfer& t : s.steps()[i].transfers) {
      EXPECT_EQ(torus.col_of(t.src), torus.col_of(t.dst));
      if (root_col == UINT32_MAX) root_col = torus.col_of(t.src);
      EXPECT_EQ(torus.col_of(t.src), root_col);
    }
  }
}

TEST(TorusWrht, FasterThanFlatRingInSteps) {
  // A 32x32 torus: WRHT rows+column beats a flat 1024-ring hierarchy of the
  // same group size in total steps? Not necessarily — but it must beat the
  // 2(N-1) Ring All-reduce dramatically.
  const Torus torus(32, 32);
  const TorusWrhtPlan plan = torus_wrht_plan(torus, WrhtOptions{9, 4});
  EXPECT_LT(plan.total(), 2u * (1024 - 1));
  EXPECT_LE(plan.total(), 20u);
}

TEST(TorusWrht, Validation) {
  const Torus torus(3, 3);
  EXPECT_THROW(torus_wrht_allreduce(torus, 4, WrhtOptions{1, 4}),
               InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
