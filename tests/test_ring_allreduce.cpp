#include "wrht/collectives/ring_allreduce.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(RingAllreduce, StepCountFormula) {
  EXPECT_EQ(ring_allreduce_steps(2), 2u);
  EXPECT_EQ(ring_allreduce_steps(16), 30u);
  EXPECT_EQ(ring_allreduce_steps(1024), 2046u);  // Table 1
  EXPECT_EQ(ring_allreduce(8, 64).num_steps(), ring_allreduce_steps(8));
}

TEST(RingAllreduce, CorrectForSmallSizes) {
  Rng rng;
  for (std::uint32_t n : {2u, 3u, 4u, 5u, 8u, 13u}) {
    const Schedule s = ring_allreduce(n, 4 * n + 3);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9)
        << "ring failed for n=" << n;
  }
}

TEST(RingAllreduce, PerStepPayloadIsOneChunk) {
  const std::uint32_t n = 8;
  const std::size_t elements = 64;
  const Schedule s = ring_allreduce(n, elements);
  for (std::size_t step = 0; step < s.num_steps(); ++step) {
    EXPECT_EQ(s.max_transfer_elements(step), elements / n);
  }
}

TEST(RingAllreduce, EveryStepHasNTransfers) {
  const Schedule s = ring_allreduce(6, 36);
  for (const Step& step : s.steps()) {
    EXPECT_EQ(step.transfers.size(), 6u);
  }
}

TEST(RingAllreduce, AllTransfersGoToClockwiseNeighbour) {
  const std::uint32_t n = 7;
  const Schedule s = ring_allreduce(n, 14);
  for (const Step& step : s.steps()) {
    for (const Transfer& t : step.transfers) {
      EXPECT_EQ(t.dst, (t.src + 1) % n);
      ASSERT_TRUE(t.direction.has_value());
      EXPECT_EQ(*t.direction, topo::Direction::kClockwise);
    }
  }
}

TEST(RingAllreduce, TotalTrafficIsTwiceVectorPerNode) {
  // Reduce-scatter + all-gather each move (n-1)/n of the vector per node.
  const std::uint32_t n = 8;
  const std::size_t elements = 64;
  const Schedule s = ring_allreduce(n, elements);
  EXPECT_EQ(s.total_traffic_elements(), 2ull * (n - 1) * (elements / n) * n);
}

TEST(RingAllreduce, FirstHalfReducesSecondHalfCopies) {
  const Schedule s = ring_allreduce(4, 16);
  for (std::size_t i = 0; i < s.num_steps(); ++i) {
    const auto expected = i < s.num_steps() / 2 ? TransferKind::kReduce
                                                : TransferKind::kCopy;
    for (const Transfer& t : s.steps()[i].transfers) {
      EXPECT_EQ(t.kind, expected);
    }
  }
}

TEST(RingAllreduce, UnevenElementsStillCorrect) {
  Rng rng;
  // elements not divisible by n exercises the remainder chunking.
  const Schedule s = ring_allreduce(5, 23);
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(RingAllreduce, Validation) {
  EXPECT_THROW(ring_allreduce(1, 10), InvalidArgument);
  EXPECT_THROW(ring_allreduce(8, 7), InvalidArgument);
  EXPECT_THROW(ring_allreduce_steps(0), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
