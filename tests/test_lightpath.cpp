#include "wrht/optical/lightpath.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::optics {
namespace {

using topo::Direction;
using topo::Ring;

TEST(SegmentSpan, ClockwiseGeometry) {
  const Ring ring(10);
  const SegmentSpan s = segment_span(ring, 2, 5, Direction::kClockwise);
  EXPECT_EQ(s.first, 2u);
  EXPECT_EQ(s.hops, 3u);
}

TEST(SegmentSpan, CounterClockwiseGeometry) {
  const Ring ring(10);
  // 5 -> 2 counterclockwise crosses segments 4, 3, 2: ascending span [2, 3).
  const SegmentSpan s = segment_span(ring, 5, 2, Direction::kCounterClockwise);
  EXPECT_EQ(s.first, 2u);
  EXPECT_EQ(s.hops, 3u);
}

TEST(SegmentSpan, WrappingSpan) {
  const Ring ring(10);
  const SegmentSpan s = segment_span(ring, 8, 1, Direction::kClockwise);
  EXPECT_EQ(s.first, 8u);
  EXPECT_EQ(s.hops, 3u);  // segments 8, 9, 0
}

TEST(SegmentSpan, MatchesRingSegmentsList) {
  const Ring ring(12);
  for (topo::NodeId a = 0; a < 12; ++a) {
    for (topo::NodeId b = 0; b < 12; ++b) {
      if (a == b) continue;
      for (const auto dir :
           {Direction::kClockwise, Direction::kCounterClockwise}) {
        const SegmentSpan span = segment_span(ring, a, b, dir);
        const auto segs = ring.segments(a, b, dir);
        ASSERT_EQ(span.hops, segs.size());
        for (const std::uint32_t seg : segs) {
          const std::uint32_t off = (seg + 12 - span.first) % 12;
          EXPECT_LT(off, span.hops);
        }
      }
    }
  }
}

TEST(SegmentSpan, SelfRejected) {
  const Ring ring(4);
  EXPECT_THROW(segment_span(ring, 1, 1, Direction::kClockwise),
               InvalidArgument);
}

TEST(SpansOverlap, DisjointSpans) {
  EXPECT_FALSE(spans_overlap({0, 2}, {2, 2}, 10));
  EXPECT_FALSE(spans_overlap({5, 1}, {7, 2}, 10));
}

TEST(SpansOverlap, TouchingSpans) {
  EXPECT_TRUE(spans_overlap({0, 3}, {2, 2}, 10));
  EXPECT_TRUE(spans_overlap({2, 2}, {0, 3}, 10));  // symmetric
}

TEST(SpansOverlap, ContainedSpan) {
  EXPECT_TRUE(spans_overlap({0, 8}, {3, 2}, 10));
  EXPECT_TRUE(spans_overlap({3, 2}, {0, 8}, 10));
}

TEST(SpansOverlap, WrapAroundSpans) {
  // [8, 8+4) wraps to segments 8,9,0,1.
  EXPECT_TRUE(spans_overlap({8, 4}, {0, 1}, 10));
  EXPECT_TRUE(spans_overlap({8, 4}, {9, 1}, 10));
  EXPECT_FALSE(spans_overlap({8, 4}, {2, 3}, 10));
  EXPECT_TRUE(spans_overlap({8, 4}, {5, 4}, 10));  // 5,6,7,8 meets 8
}

TEST(SpansOverlap, ZeroLengthNeverOverlaps) {
  EXPECT_FALSE(spans_overlap({0, 0}, {0, 5}, 10));
  EXPECT_FALSE(spans_overlap({3, 5}, {4, 0}, 10));
}

TEST(SpansOverlap, FullRingOverlapsEverything) {
  for (std::uint32_t f = 0; f < 10; ++f) {
    EXPECT_TRUE(spans_overlap({0, 10}, {f, 1}, 10));
  }
}

TEST(SpansOverlap, TooLongRejected) {
  EXPECT_THROW(spans_overlap({0, 11}, {0, 1}, 10), InvalidArgument);
}

}  // namespace
}  // namespace wrht::optics
