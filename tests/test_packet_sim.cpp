#include "wrht/electrical/packet_sim.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"

namespace wrht::elec {
namespace {

using coll::Schedule;
using coll::Transfer;
using coll::TransferKind;

ElectricalConfig cfg() {
  ElectricalConfig c;
  c.link_rate = BitsPerSecond(40e9);
  c.router_delay = Seconds(25e-6);
  c.packet_size = Bytes(72);
  return c;
}

Schedule one_transfer(std::uint32_t n, topo::NodeId src, topo::NodeId dst,
                      std::size_t elements) {
  Schedule s("manual", n, elements);
  s.add_step().transfers.push_back(
      Transfer{src, dst, 0, elements, TransferKind::kReduce, {}});
  return s;
}

TEST(PacketSim, SinglePacketIntraRack) {
  const PacketLevelNetwork net(64, cfg());
  // 18 elements * 4 B = 72 B = exactly one packet; two links + one router.
  const auto res = net.execute(one_transfer(64, 0, 1, 18));
  EXPECT_EQ(res.total_packets, 1u);
  const double tx = 72.0 / 40e9;
  EXPECT_NEAR(res.total_time.count(), 2 * tx + 25e-6, 1e-12);
}

TEST(PacketSim, PacketCountCeils) {
  const PacketLevelNetwork net(64, cfg());
  // 100 elements * 4 = 400 B -> 6 packets (5 full + 40 B tail).
  const auto res = net.execute(one_transfer(64, 0, 1, 100));
  EXPECT_EQ(res.total_packets, 6u);
}

TEST(PacketSim, PipeliningApproachesFlowModel) {
  // For a long transfer the store-and-forward pipeline time converges to
  // serialization + per-hop latency: the flow model's estimate.
  const ElectricalConfig c = cfg();
  const PacketLevelNetwork packet(64, c);
  const FatTreeNetwork flow(64, c);
  const auto sched = one_transfer(64, 0, 40, 250'000);  // 1 MB, inter-rack
  const double tp = packet.execute(sched).total_time.count();
  const double tf = flow.execute(sched).total_time.count();
  EXPECT_NEAR(tp / tf, 1.0, 0.05);
  EXPECT_GT(tp, tf);  // store-and-forward pipeline fill is strictly extra
}

TEST(PacketSim, ContentionMatchesFlowModelForEqualFlows) {
  // 4 hosts of rack 0 send to the same destination: the shared edge->host
  // link quarters the throughput in both models.
  const ElectricalConfig c = cfg();
  const PacketLevelNetwork packet(64, c);
  const FatTreeNetwork flow(64, c);
  Schedule s("fan-in", 64, 50'000);
  coll::Step& step = s.add_step();
  for (topo::NodeId src = 1; src <= 4; ++src) {
    step.transfers.push_back(
        Transfer{src, 9, 0, 50'000, TransferKind::kReduce, {}});
  }
  const double tp = packet.execute(s).total_time.count();
  const double tf = flow.execute(s).total_time.count();
  EXPECT_NEAR(tp / tf, 1.0, 0.10);
}

TEST(PacketSim, FifoInterleavingIsFair) {
  // Two equal flows through one bottleneck finish (nearly) together.
  const PacketLevelNetwork net(64, cfg());
  Schedule s("pair", 64, 10'000);
  coll::Step& step = s.add_step();
  step.transfers.push_back(Transfer{1, 9, 0, 10'000, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{2, 9, 0, 10'000, TransferKind::kReduce, {}});
  const auto res = net.execute(s);
  // Completion ~= 2x serialization of one flow + latency.
  const double serialization = 2.0 * 40'000.0 / 40e9;
  EXPECT_NEAR(res.total_time.count(), serialization + 25e-6, serialization);
}

TEST(PacketSim, StepsAreSequentialBarriers) {
  const PacketLevelNetwork net(16, cfg());
  Schedule s("two", 16, 18);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 18, TransferKind::kReduce, {}});
  s.add_step().transfers.push_back(
      Transfer{1, 2, 0, 18, TransferKind::kCopy, {}});
  const auto res = net.execute(s);
  ASSERT_EQ(res.step_times.size(), 2u);
  EXPECT_NEAR(res.total_time.count(),
              res.step_times[0].count() + res.step_times[1].count(), 1e-15);
}

TEST(PacketSim, AgreesWithFlowModelOnSmallRingAllreduce) {
  const ElectricalConfig c = cfg();
  const PacketLevelNetwork packet(16, c);
  const FatTreeNetwork flow(16, c);
  const auto sched = coll::ring_allreduce(16, 16 * 200);
  const double tp = packet.execute(sched).total_time.count();
  const double tf = flow.execute(sched).total_time.count();
  EXPECT_NEAR(tp / tf, 1.0, 0.15);
}

TEST(PacketSim, Validation) {
  const PacketLevelNetwork net(16, cfg());
  EXPECT_THROW(net.execute(one_transfer(32, 0, 20, 10)), InvalidArgument);
  ElectricalConfig bad = cfg();
  bad.packet_size = Bytes(0);
  EXPECT_THROW(PacketLevelNetwork(16, bad), InvalidArgument);
}

}  // namespace
}  // namespace wrht::elec
