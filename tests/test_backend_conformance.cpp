// Backend conformance suite: every backend in net::BackendRegistry must
// honour the same RunReport contract, whatever its internal model. The
// suite is table-driven off the registry — registering a new backend
// automatically subjects it to every invariant here — and picks canonical
// schedules by capability (torus-style backends get dimension-local
// traffic, everything else gets the full Ring All-reduce).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/collectives/schedule.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"

namespace wrht {
namespace {

constexpr std::uint32_t kNodes = 16;      // 4 x 4 under the torus default
constexpr std::uint32_t kWavelengths = 8;
constexpr std::size_t kElements = 1024;

net::BackendConfig test_config() {
  net::BackendConfig config;
  config.num_nodes = kNodes;
  config.wavelengths = kWavelengths;
  return config;
}

/// Neighbour exchange along torus rows, then along torus columns — legal
/// on every backend including dimension-local ones (4 x 4 layout: node
/// r * 4 + c).
coll::Schedule dimension_local_schedule() {
  coll::Schedule sched("dim-local-exchange", kNodes, kElements);
  coll::Step& rows = sched.add_step("row exchange");
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      coll::Transfer t;
      t.src = r * 4 + c;
      t.dst = r * 4 + (c + 1) % 4;
      t.count = kElements / 4;
      rows.transfers.push_back(t);
    }
  }
  coll::Step& cols = sched.add_step("column exchange");
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      coll::Transfer t;
      t.src = r * 4 + c;
      t.dst = ((r + 1) % 4) * 4 + c;
      t.count = kElements / 4;
      t.kind = coll::TransferKind::kCopy;
      cols.transfers.push_back(t);
    }
  }
  return sched;
}

/// Canonical schedules for a backend: the dimension-local exchange always
/// applies; backends that route arbitrary pairs also get the full Ring
/// All-reduce (2(N-1) steps, every step crossing torus rows).
std::vector<coll::Schedule> canonical_schedules(
    const net::BackendCapabilities& caps) {
  std::vector<coll::Schedule> out;
  out.push_back(dimension_local_schedule());
  if (!caps.dimension_local_transfers_only) {
    out.push_back(coll::ring_allreduce(kNodes, kElements));
  }
  return out;
}

class BackendConformance : public testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { net::register_builtin_backends(); }

  static std::unique_ptr<net::Backend> make_backend() {
    return net::BackendRegistry::instance().create(GetParam(), test_config());
  }

  static std::unique_ptr<net::Backend> make_observed_backend() {
    net::BackendConfig config = test_config();
    config.collect_utilization = true;
    return net::BackendRegistry::instance().create(GetParam(), config);
  }
};

TEST_P(BackendConformance, NameAndDescriptionAreStable) {
  const auto backend = make_backend();
  EXPECT_EQ(backend->name(), GetParam());
  EXPECT_FALSE(backend->describe().empty());
  // The registry's description is recorded independently, but must exist.
  EXPECT_FALSE(net::BackendRegistry::instance().describe(GetParam()).empty());
}

TEST_P(BackendConformance, ReportMirrorsScheduleStructure) {
  const auto backend = make_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    const RunReport report = backend->execute(sched);
    EXPECT_EQ(report.backend, backend->name()) << sched.algorithm();
    EXPECT_EQ(report.steps, sched.num_steps()) << sched.algorithm();
    ASSERT_EQ(report.step_reports.size(), sched.num_steps())
        << sched.algorithm();
    EXPECT_GE(report.rounds, report.steps) << sched.algorithm();
  }
}

TEST_P(BackendConformance, StepTimelineIsMonotoneAndSumsToTotal) {
  const auto backend = make_backend();
  const bool prices_time = backend->capabilities().prices_time;
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    const RunReport report = backend->execute(sched);

    Seconds cursor(0.0);
    Seconds sum(0.0);
    for (const StepReport& step : report.step_reports) {
      // Steps are barriers: each starts exactly where the previous ended.
      EXPECT_NEAR(step.start.count(), cursor.count(),
                  1e-12 * (1.0 + cursor.count()))
          << sched.algorithm() << " @ " << step.label;
      EXPECT_GE(step.duration.count(), 0.0);
      cursor += step.duration;
      sum += step.duration;
    }
    EXPECT_NEAR(sum.count(), report.total_time.count(),
                1e-9 * (1.0 + report.total_time.count()))
        << sched.algorithm();
    if (prices_time) {
      EXPECT_GT(report.total_time.count(), 0.0) << sched.algorithm();
    } else {
      EXPECT_EQ(report.total_time.count(), 0.0) << sched.algorithm();
    }
  }
}

TEST_P(BackendConformance, TrafficCountersMatchSchedule) {
  const auto backend = make_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    obs::Counters counters;
    static_cast<void>(backend->execute(sched, obs::Probe{nullptr, &counters}));
    EXPECT_EQ(counters.value("net.executions"), 1u) << sched.algorithm();
    EXPECT_EQ(counters.value("net.steps"), sched.num_steps())
        << sched.algorithm();
    EXPECT_EQ(counters.value("net.traffic_elements"),
              sched.total_traffic_elements())
        << sched.algorithm();
  }
}

TEST_P(BackendConformance, EmitsAtLeastOneSpanPerStep) {
  const auto backend = make_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    obs::MemoryTraceSink sink;
    obs::Probe probe;
    probe.trace = &sink;
    probe.track = 7;
    static_cast<void>(backend->execute(sched, probe));
    EXPECT_GE(sink.spans().size(), sched.num_steps()) << sched.algorithm();
    for (const obs::TraceSpan& span : sink.spans()) {
      EXPECT_EQ(span.track, 7u);
      EXPECT_FALSE(span.category.empty());
    }
  }
}

TEST_P(BackendConformance, WavelengthReportingMatchesCapability) {
  const auto backend = make_backend();
  const bool reports = backend->capabilities().reports_wavelengths;
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    const RunReport report = backend->execute(sched);
    if (reports) {
      EXPECT_GT(report.max_wavelengths_used(), 0u) << sched.algorithm();
      EXPECT_LE(report.max_wavelengths_used(), kWavelengths)
          << sched.algorithm();
    } else {
      EXPECT_EQ(report.max_wavelengths_used(), 0u) << sched.algorithm();
    }
  }
}

TEST_P(BackendConformance, UtilizationReportingMatchesCapability) {
  const auto backend = make_observed_backend();
  const auto caps = backend->capabilities();
  for (const coll::Schedule& sched : canonical_schedules(caps)) {
    const RunReport report = backend->execute(sched);
    if (!caps.reports_utilization) {
      EXPECT_EQ(report.utilization, 0.0) << sched.algorithm();
      EXPECT_EQ(report.resources_observed, 0u) << sched.algorithm();
      EXPECT_EQ(report.breakdown.total().count(), 0.0) << sched.algorithm();
      continue;
    }
    EXPECT_GT(report.resources_observed, 0u) << sched.algorithm();
    EXPECT_GE(report.utilization, 0.0) << sched.algorithm();
    EXPECT_LE(report.utilization, 1.0) << sched.algorithm();
    // Accounting identity: the run breakdown and every step breakdown tile
    // their interval exactly.
    EXPECT_NEAR(report.breakdown.total().count(), report.total_time.count(),
                1e-9 * (1.0 + report.total_time.count()))
        << sched.algorithm();
    for (const StepReport& step : report.step_reports) {
      EXPECT_NEAR(step.breakdown.total().count(), step.duration.count(),
                  1e-9 * (1.0 + step.duration.count()))
          << sched.algorithm() << " @ " << step.label;
    }
  }
}

TEST_P(BackendConformance, UnobservedRunsKeepUtilizationFieldsZero) {
  const auto backend = make_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    const RunReport report = backend->execute(sched);
    EXPECT_EQ(report.utilization, 0.0) << sched.algorithm();
    EXPECT_EQ(report.resources_observed, 0u) << sched.algorithm();
    EXPECT_EQ(report.breakdown.total().count(), 0.0) << sched.algorithm();
  }
}

TEST_P(BackendConformance, UtilizationCollectionDoesNotPerturbTiming) {
  const auto plain = make_backend();
  const auto observed = make_observed_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           plain->capabilities())) {
    const RunReport a = plain->execute(sched);
    const RunReport b = observed->execute(sched);
    EXPECT_EQ(a.total_time.count(), b.total_time.count())
        << sched.algorithm();
    EXPECT_EQ(a.rounds, b.rounds) << sched.algorithm();
    EXPECT_EQ(a.events_fired, b.events_fired) << sched.algorithm();
  }
}

TEST_P(BackendConformance, OverlappedPolicyMatchesCapability) {
  const auto serial = make_backend();
  net::BackendConfig config = test_config();
  config.reconfig_policy = net::ReconfigPolicy::kOverlapped;
  const auto overlapped =
      net::BackendRegistry::instance().create(GetParam(), config);
  const bool supported = serial->capabilities().supports_reconfig_overlap;
  for (const coll::Schedule& sched : canonical_schedules(
           serial->capabilities())) {
    const RunReport a = serial->execute(sched);
    const RunReport b = overlapped->execute(sched);
    // Re-pricing only: the schedule structure is untouched either way.
    EXPECT_EQ(a.steps, b.steps) << sched.algorithm();
    EXPECT_EQ(a.rounds, b.rounds) << sched.algorithm();
    if (supported) {
      // Hiding reconfiguration delay can only help, and on these canonical
      // schedules (every round retunes-or-not aside, kEveryRound charges
      // fully) it must strictly help.
      EXPECT_LE(b.total_time.count(),
                a.total_time.count() + 1e-12 * (1.0 + a.total_time.count()))
          << sched.algorithm();
      EXPECT_LT(b.total_time.count(), a.total_time.count())
          << sched.algorithm();
    } else {
      // Backends without an overlap notion must price all policies
      // identically — never silently diverge.
      EXPECT_EQ(a.total_time.count(), b.total_time.count())
          << sched.algorithm();
    }
  }
}

TEST_P(BackendConformance, RepeatedExecutionIsDeterministic) {
  const auto backend = make_backend();
  for (const coll::Schedule& sched : canonical_schedules(
           backend->capabilities())) {
    const RunReport first = backend->execute(sched);
    const RunReport second = backend->execute(sched);
    EXPECT_EQ(first.total_time.count(), second.total_time.count())
        << sched.algorithm();
    EXPECT_EQ(first.rounds, second.rounds) << sched.algorithm();
    EXPECT_EQ(first.events_fired, second.events_fired) << sched.algorithm();
  }
}

std::vector<std::string> all_backend_names() {
  net::register_builtin_backends();
  return net::BackendRegistry::instance().names();
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredBackends, BackendConformance,
                         testing::ValuesIn(all_backend_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The registry must ship every engine the library documents.
TEST(BackendRegistryContents, AllFourEnginesPlusScheduleOnlyRegistered) {
  net::register_builtin_backends();
  const auto& registry = net::BackendRegistry::instance();
  for (const char* name :
       {"optical-ring", "optical-torus", "electrical-flow",
        "electrical-packet", "schedule-only"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

}  // namespace
}  // namespace wrht
