#include "wrht/topo/fat_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "wrht/common/error.hpp"

namespace wrht::topo {
namespace {

TEST(FatTree, SizingMatchesPaperParameters) {
  // Table 2: two-level cluster with 32-port routers.
  const FatTree ft(1024, 32);
  EXPECT_EQ(ft.hosts_per_edge(), 16u);
  EXPECT_EQ(ft.num_edges(), 64u);
  EXPECT_EQ(ft.num_cores(), 16u);
  EXPECT_EQ(ft.num_hosts(), 1024u);
}

TEST(FatTree, SizingSmall) {
  const FatTree ft(128, 32);
  EXPECT_EQ(ft.num_edges(), 8u);
  EXPECT_EQ(ft.num_cores(), 16u);
}

TEST(FatTree, PartialEdge) {
  const FatTree ft(20, 8);
  EXPECT_EQ(ft.hosts_per_edge(), 4u);
  EXPECT_EQ(ft.num_edges(), 5u);  // 20 / 4
}

TEST(FatTree, EdgeOf) {
  const FatTree ft(64, 32);
  EXPECT_EQ(ft.edge_of(0), 0u);
  EXPECT_EQ(ft.edge_of(15), 0u);
  EXPECT_EQ(ft.edge_of(16), 1u);
  EXPECT_EQ(ft.edge_of(63), 3u);
}

TEST(FatTree, LinkIdsAreUnique) {
  const FatTree ft(64, 32);
  std::set<LinkId> ids;
  for (HostId h = 0; h < 64; ++h) {
    ids.insert(ft.host_to_edge(h));
    ids.insert(ft.edge_to_host(h));
  }
  for (std::uint32_t e = 0; e < ft.num_edges(); ++e) {
    for (std::uint32_t c = 0; c < ft.num_cores(); ++c) {
      ids.insert(ft.edge_to_core(e, c));
      ids.insert(ft.core_to_edge(c, e));
    }
  }
  EXPECT_EQ(ids.size(), ft.num_links());
  EXPECT_EQ(*ids.rbegin(), ft.num_links() - 1);
}

TEST(FatTree, IntraRackRouteHasOneRouter) {
  const FatTree ft(64, 32);
  const auto r = ft.route(1, 7);
  EXPECT_EQ(r.routers, 1u);
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_EQ(r.links[0], ft.host_to_edge(1));
  EXPECT_EQ(r.links[1], ft.edge_to_host(7));
}

TEST(FatTree, InterRackRouteHasThreeRouters) {
  const FatTree ft(64, 32);
  const auto r = ft.route(1, 40);  // edge 0 -> edge 2
  EXPECT_EQ(r.routers, 3u);
  ASSERT_EQ(r.links.size(), 4u);
  EXPECT_EQ(r.links[0], ft.host_to_edge(1));
  const std::uint32_t core = 40 % ft.num_cores();  // D-mod-k
  EXPECT_EQ(r.links[1], ft.edge_to_core(0, core));
  EXPECT_EQ(r.links[2], ft.core_to_edge(core, 2));
  EXPECT_EQ(r.links[3], ft.edge_to_host(40));
}

TEST(FatTree, DModKSpreadsFanInOverDistinctCores) {
  // Flows from one rack to the 16 distinct hosts of another rack must use
  // 16 distinct cores (no shared uplink) under D-mod-k routing.
  const FatTree ft(64, 32);
  std::set<LinkId> uplinks;
  for (HostId dst = 16; dst < 32; ++dst) {
    const auto r = ft.route(0, dst);
    uplinks.insert(r.links[1]);
  }
  EXPECT_EQ(uplinks.size(), 16u);
}

TEST(FatTree, DModKIsDestinationDeterministic) {
  const FatTree ft(128, 32);
  const auto a = ft.route(0, 100);
  const auto c = ft.route(5, 100);
  // Same destination, sources in the same rack: same core column.
  EXPECT_EQ(a.links[2], c.links[2]);
}

TEST(FatTree, Validation) {
  EXPECT_THROW(FatTree(1, 32), InvalidArgument);
  EXPECT_THROW(FatTree(16, 3), InvalidArgument);
  EXPECT_THROW(FatTree(16, 2), InvalidArgument);
  const FatTree ft(16, 8);
  EXPECT_THROW(ft.route(0, 0), InvalidArgument);
  EXPECT_THROW(ft.route(0, 99), InvalidArgument);
  EXPECT_THROW(ft.edge_to_core(99, 0), InvalidArgument);
}

}  // namespace
}  // namespace wrht::topo
