// Tests for the host-side profiling subsystem (wrht::prof): the
// off-by-default contract, timer accounting, merge determinism across
// thread counts, the nesting invariant, the PerfReport JSON golden, and
// the baseline comparison (including the injected-slowdown regression
// path wrht_perf relies on).
#include "wrht/prof/prof.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/prof/baseline.hpp"
#include "wrht/prof/perf_report.hpp"

namespace wrht {
namespace {

/// Burns a little deterministic work so a timed phase has nonzero width.
void spin(int iters = 1000) {
  volatile int sink = 0;
  for (int i = 0; i < iters; ++i) sink = sink + i;
}

TEST(Prof, OffByDefaultNothingIsCurrentAndTimersRecordNothing) {
  ASSERT_EQ(prof::ProfRegistry::current(), nullptr);
  {
    // Timers and labels outside any ScopedProfiling must be no-ops.
    const prof::ScopedTimer timer("phase.unwatched");
    prof::set_thread_label("nobody");
    spin();
  }
  prof::ProfRegistry registry;
  EXPECT_TRUE(registry.phase_totals().empty());
  EXPECT_TRUE(registry.thread_totals().empty());
  EXPECT_EQ(registry.allocation_count(), 0u);
}

TEST(Prof, ScopedProfilingInstallsAndRestores) {
  prof::ProfRegistry outer;
  prof::ProfRegistry inner;
  ASSERT_EQ(prof::ProfRegistry::current(), nullptr);
  {
    const prof::ScopedProfiling a(outer);
    EXPECT_EQ(prof::ProfRegistry::current(), &outer);
    {
      const prof::ScopedProfiling b(inner);
      EXPECT_EQ(prof::ProfRegistry::current(), &inner);
    }
    EXPECT_EQ(prof::ProfRegistry::current(), &outer);
  }
  EXPECT_EQ(prof::ProfRegistry::current(), nullptr);
}

TEST(Prof, TimersAccumulateExactCallCounts) {
  prof::ProfRegistry registry;
  {
    const prof::ScopedProfiling on(registry);
    for (int i = 0; i < 17; ++i) {
      const prof::ScopedTimer timer("phase.a");
      spin();
    }
    for (int i = 0; i < 5; ++i) {
      const prof::ScopedTimer timer("phase.b");
      spin();
    }
  }
  const auto totals = registry.phase_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("phase.a").calls, 17u);
  EXPECT_EQ(totals.at("phase.b").calls, 5u);
  EXPECT_GE(totals.at("phase.a").seconds, 0.0);
}

// The merged totals are a function of the work done, not of how it was
// spread across threads: 60 calls of each phase give the same call counts
// whether 1, 2 or 6 threads ran them.
TEST(Prof, MergedTotalsAreDeterministicAcrossThreadCounts) {
  constexpr int kTotalCalls = 60;
  for (const int threads : {1, 2, 6}) {
    prof::ProfRegistry registry;
    {
      const prof::ScopedProfiling on(registry);
      std::vector<std::thread> pool;
      const int per_thread = kTotalCalls / threads;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([per_thread] {
          for (int i = 0; i < per_thread; ++i) {
            const prof::ScopedTimer a("phase.shared");
            const prof::ScopedTimer b("phase.nested");
            spin();
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
    const auto totals = registry.phase_totals();
    ASSERT_EQ(totals.size(), 2u) << threads << " threads";
    EXPECT_EQ(totals.at("phase.shared").calls,
              static_cast<std::uint64_t>(kTotalCalls))
        << threads << " threads";
    EXPECT_EQ(totals.at("phase.nested").calls,
              static_cast<std::uint64_t>(kTotalCalls))
        << threads << " threads";
  }
}

// Nested timers are inclusive: a child phase that runs entirely inside its
// parent can never accumulate more wall time than the parent.
TEST(Prof, NestingInvariantChildNeverExceedsParent) {
  prof::ProfRegistry registry;
  {
    const prof::ScopedProfiling on(registry);
    for (int i = 0; i < 50; ++i) {
      const prof::ScopedTimer parent("phase.parent");
      spin();
      {
        const prof::ScopedTimer child("phase.child");
        spin();
      }
      spin();
    }
  }
  const auto totals = registry.phase_totals();
  EXPECT_EQ(totals.at("phase.parent").calls, 50u);
  EXPECT_EQ(totals.at("phase.child").calls, 50u);
  EXPECT_LE(totals.at("phase.child").seconds,
            totals.at("phase.parent").seconds);
}

TEST(Prof, ThreadTotalsCarryLabels) {
  prof::ProfRegistry registry;
  {
    const prof::ScopedProfiling on(registry);
    prof::set_thread_label("main-thread");
    const prof::ScopedTimer timer("phase.main");
    std::thread worker([] {
      prof::set_thread_label("worker-7");
      const prof::ScopedTimer worker_timer("phase.worker");
      spin();
    });
    worker.join();
  }
  const auto threads = registry.thread_totals();
  ASSERT_EQ(threads.size(), 2u);
  bool saw_main = false, saw_worker = false;
  for (const auto& t : threads) {
    if (t.label == "main-thread") {
      saw_main = true;
      EXPECT_EQ(t.phases.count("phase.main"), 1u);
    }
    if (t.label == "worker-7") {
      saw_worker = true;
      EXPECT_EQ(t.phases.count("phase.worker"), 1u);
    }
  }
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_worker);
}

TEST(Prof, AllocationHookAccumulates) {
  prof::ProfRegistry registry;
  registry.note_allocation(128);
  registry.note_allocation(64);
  EXPECT_EQ(registry.allocation_count(), 2u);
  EXPECT_EQ(registry.allocated_bytes(), 192u);
}

TEST(Prof, PeakRssIsReportedOnThisPlatform) {
  // Linux exposes VmHWM; any live process has resident pages.
  EXPECT_GT(prof::peak_rss_bytes(), 0u);
}

// The JSON emitter is deterministic: fixed key order, name-sorted metric
// map, %.9g numbers. A fixed report must serialize byte-identically.
TEST(PerfReport, GoldenJsonIsByteStable) {
  prof::PerfReport report;
  report.name = "golden";
  report.repetitions = 3;
  report.threads = 2;
  report.wall_time_s = 1.5;
  report.thread_efficiency = 0.75;
  report.peak_rss_bytes = 1048576;
  report.add_metric("z.wall_s", 0.25, "s");
  report.add_metric("a.events_per_s", 2000000.0, "/s");
  report.phases["phase.a"] = prof::PhaseTotals{4, 0.125};

  std::ostringstream out;
  report.write_json(out);
  const std::string expected =
      "{\n"
      "  \"schema\": \"wrht-perf-1\",\n"
      "  \"name\": \"golden\",\n"
      "  \"repetitions\": 3,\n"
      "  \"threads\": 2,\n"
      "  \"wall_time_s\": 1.5,\n"
      "  \"thread_efficiency\": 0.75,\n"
      "  \"peak_rss_bytes\": 1048576,\n"
      "  \"metrics\": {\n"
      "    \"a.events_per_s\": {\"value\": 2000000, \"unit\": \"/s\"},\n"
      "    \"z.wall_s\": {\"value\": 0.25, \"unit\": \"s\"}\n"
      "  },\n"
      "  \"phases\": {\n"
      "    \"phase.a\": {\"calls\": 4, \"seconds\": 0.125}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(PerfReport, SampleMetricsAddMedianAndP90) {
  prof::PerfReport report;
  report.add_sample_metrics("m", {4.0, 1.0, 2.0, 3.0, 5.0}, "s");
  const prof::PerfMetric* median = report.find_metric("m.median");
  const prof::PerfMetric* p90 = report.find_metric("m.p90");
  ASSERT_NE(median, nullptr);
  ASSERT_NE(p90, nullptr);
  EXPECT_DOUBLE_EQ(median->value, 3.0);
  EXPECT_GE(p90->value, median->value);
  EXPECT_THROW(report.add_sample_metrics("empty", {}, "s"), Error);
}

TEST(PerfReport, CaptureComputesThreadEfficiencyFromWorkerPhases) {
  prof::ProfRegistry registry;
  {
    const prof::ScopedProfiling on(registry);
    const prof::ScopedTimer wall("sweep.worker.wall");
    const prof::ScopedTimer busy("sweep.worker.busy");
    spin(20000);
  }
  prof::PerfReport report;
  report.capture(registry);
  EXPECT_GT(report.thread_efficiency, 0.0);
  EXPECT_LE(report.thread_efficiency, 1.0);
  EXPECT_EQ(report.phases.count("sweep.worker.wall"), 1u);
}

TEST(Baseline, InfersDirectionFromNameAndUnit) {
  EXPECT_EQ(prof::infer_direction("sweep.wall_s.median", "s"),
            prof::Direction::kLowerIsBetter);
  EXPECT_EQ(prof::infer_direction("event_kernel.events_per_s.median", "/s"),
            prof::Direction::kHigherIsBetter);
}

TEST(Baseline, SaveLoadRoundTripsAndFreshReportPasses) {
  prof::PerfReport report;
  report.name = "roundtrip";
  report.add_metric("a.wall_s", 0.5, "s");
  report.add_metric("b.events_per_s", 1e6, "/s");

  const prof::Baseline baseline = prof::Baseline::from_report(report, 0.5);
  const std::string path =
      testing::TempDir() + "/wrht_prof_roundtrip.baseline";
  baseline.save(path);
  const prof::Baseline loaded = prof::Baseline::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.entries.size(), 2u);
  const prof::CompareReport compared = prof::compare(report, loaded);
  EXPECT_TRUE(compared.ok());
  for (const auto& r : compared.results) EXPECT_FALSE(r.regressed);
}

// The acceptance path: a measurement 2x slower than baseline (or at half
// the baseline throughput) must regress under a 0.5 drift threshold.
TEST(Baseline, InjectedTwoTimesSlowdownRegresses) {
  prof::PerfReport fast;
  fast.add_metric("suite.wall_s", 0.1, "s");
  fast.add_metric("suite.events_per_s", 1e6, "/s");
  const prof::Baseline baseline = prof::Baseline::from_report(fast, 0.5);

  prof::PerfReport slow;
  slow.add_metric("suite.wall_s", 0.2, "s");          // 2x slower
  slow.add_metric("suite.events_per_s", 0.5e6, "/s");  // half the rate
  const prof::CompareReport compared = prof::compare(slow, baseline);
  EXPECT_FALSE(compared.ok());
  for (const auto& r : compared.results) {
    EXPECT_TRUE(r.regressed) << r.metric;
  }
}

// Metrics present in the baseline but missing from the report are schema
// drift and must fail; metrics only in the report are additions and must
// not.
TEST(Baseline, SchemaDriftFailsAdditionsDoNot) {
  prof::PerfReport report;
  report.add_metric("kept.wall_s", 1.0, "s");
  report.add_metric("added.wall_s", 1.0, "s");

  prof::Baseline baseline;
  baseline.entries.push_back(
      prof::BaselineEntry{"kept.wall_s", 1.0, 0.5,
                          prof::Direction::kLowerIsBetter});
  baseline.entries.push_back(
      prof::BaselineEntry{"gone.wall_s", 1.0, 0.5,
                          prof::Direction::kLowerIsBetter});
  const prof::CompareReport compared = prof::compare(report, baseline);
  EXPECT_FALSE(compared.ok());
  bool saw_missing = false;
  for (const auto& r : compared.results) {
    if (r.metric == "gone.wall_s") {
      saw_missing = true;
      EXPECT_TRUE(r.missing);
    }
    if (r.metric == "kept.wall_s") {
      EXPECT_FALSE(r.regressed);
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST(Baseline, HigherIsBetterThresholdUsesReciprocalBound) {
  prof::PerfReport report;
  report.add_metric("rate.events_per_s", 1e6, "/s");
  // drift 3.0 on a throughput becomes 3/(1+3) = 0.75: the same 4x factor
  // that trips a wall-time metric trips the rate when it falls 75%.
  const prof::Baseline baseline = prof::Baseline::from_report(report, 3.0);
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].direction,
            prof::Direction::kHigherIsBetter);
  EXPECT_NEAR(baseline.entries[0].max_rel_drift, 0.75, 1e-12);

  prof::PerfReport at_quarter;
  at_quarter.add_metric("rate.events_per_s", 0.24e6, "/s");
  EXPECT_FALSE(prof::compare(at_quarter, baseline).ok());
  prof::PerfReport at_third;
  at_third.add_metric("rate.events_per_s", 0.34e6, "/s");
  EXPECT_TRUE(prof::compare(at_third, baseline).ok());
}

}  // namespace
}  // namespace wrht
