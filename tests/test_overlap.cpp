// Overlapped reconfiguration (ReconfigPolicy::kOverlapped): timing
// identities, structural invariance, conflict freedom and the data-level
// oracle, on both optical engines.
#include <gtest/gtest.h>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/obs/analysis.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/torus_network.hpp"
#include "wrht/verify/oracle.hpp"
#include "wrht/verify/overlap.hpp"

namespace wrht::optics {
namespace {

OpticalConfig cfg(net::ReconfigPolicy policy, std::uint32_t w = 8) {
  OpticalConfig c;
  c.wavelengths = w;
  c.validate_node_capacity = false;
  c.reconfig_policy = policy;
  return c;
}

std::vector<coll::Schedule> ring_schedules(std::uint32_t n,
                                           std::size_t elements) {
  return {coll::ring_allreduce(n, elements),
          coll::btree_allreduce(n, elements),
          core::wrht_allreduce(n, elements, core::WrhtOptions{5, 8})};
}

TEST(Overlap, NeverSlowerThanSerialOnRing) {
  const std::uint32_t n = 30;
  for (const auto& sched : ring_schedules(n, 4096)) {
    const RingNetwork serial(n, cfg(net::ReconfigPolicy::kEveryRound));
    const RingNetwork overlapped(n, cfg(net::ReconfigPolicy::kOverlapped));
    const auto s = serial.execute(sched);
    const auto o = overlapped.execute(sched);
    EXPECT_LT(o.total_time.count(), s.total_time.count())
        << sched.algorithm();
  }
}

TEST(Overlap, HiddenTimeIdentityOnRing) {
  // overlapped total + hidden == serial total, exactly: every round still
  // retunes, the delay just moves off the critical path.
  const std::uint32_t n = 30;
  for (const auto& sched : ring_schedules(n, 4096)) {
    const RingNetwork serial(n, cfg(net::ReconfigPolicy::kEveryRound));
    const RingNetwork overlapped(n, cfg(net::ReconfigPolicy::kOverlapped));
    const auto s = serial.execute(sched);
    const auto o = overlapped.execute(sched);
    EXPECT_NEAR(o.total_time.count() + o.overlap_hidden.count(),
                s.total_time.count(), 1e-12 * (1.0 + s.total_time.count()))
        << sched.algorithm();
    EXPECT_GT(o.overlap_hidden.count(), 0.0) << sched.algorithm();
  }
}

TEST(Overlap, StructureUnchanged) {
  const std::uint32_t n = 30;
  for (const auto& sched : ring_schedules(n, 4096)) {
    const RingNetwork serial(n, cfg(net::ReconfigPolicy::kEveryRound));
    const RingNetwork overlapped(n, cfg(net::ReconfigPolicy::kOverlapped));
    const auto s = serial.execute(sched);
    const auto o = overlapped.execute(sched);
    EXPECT_EQ(o.steps, s.steps);
    EXPECT_EQ(o.total_rounds, s.total_rounds);
    EXPECT_EQ(o.max_wavelengths_used, s.max_wavelengths_used);
    EXPECT_EQ(o.longest_lightpath_hops, s.longest_lightpath_hops);
  }
}

TEST(Overlap, FirstRoundPaysInFull) {
  // Nothing precedes round 0, so its reconfiguration cannot be hidden: on
  // a latency-dominated payload the first step is strictly longer than the
  // later (fully hidden) ones.
  const std::uint32_t n = 16;
  const RingNetwork net(n, cfg(net::ReconfigPolicy::kOverlapped, 64));
  const auto res = net.execute(coll::ring_allreduce(n, n));
  ASSERT_GE(res.step_costs.size(), 2u);
  EXPECT_GT(res.step_costs[0].duration.count(),
            res.step_costs[1].duration.count());
}

TEST(Overlap, LargePayloadHidesReconfigurationEntirely) {
  // Serialization of ~8 MB dwarfs the 25 us retune: every round after the
  // first charges zero residual, so reconfigurations counts exactly 1.
  const std::uint32_t n = 8;
  const RingNetwork net(n, cfg(net::ReconfigPolicy::kOverlapped, 64));
  const auto res = net.execute(coll::ring_allreduce(n, 1u << 21));
  EXPECT_EQ(res.reconfigurations, 1u);
  EXPECT_NEAR(res.overlap_hidden.count(),
              25e-6 * static_cast<double>(res.total_rounds - 1),
              1e-12 * res.total_rounds);
}

TEST(Overlap, TinyPayloadStillPaysMostOfTheDelay) {
  // A latency-dominated run cannot hide much: every round pays a residual
  // and the overlapped time stays close to serial.
  const std::uint32_t n = 16;
  const RingNetwork serial(n, cfg(net::ReconfigPolicy::kEveryRound, 64));
  const RingNetwork overlapped(n, cfg(net::ReconfigPolicy::kOverlapped, 64));
  const auto sched = coll::ring_allreduce(n, n);
  const auto s = serial.execute(sched);
  const auto o = overlapped.execute(sched);
  EXPECT_EQ(o.reconfigurations, o.total_rounds);
  EXPECT_GT(o.total_time.count(), 0.9 * s.total_time.count());
}

TEST(Overlap, CheckerPassesOnCanonicalSchedules) {
  const std::uint32_t n = 30;
  for (const auto& sched : ring_schedules(n, 4096)) {
    verify::OverlapOptions options;
    options.wavelengths = 8;
    const auto result = verify::check_overlap_consistency(sched, n, options);
    EXPECT_TRUE(result.ok()) << sched.algorithm() << "\n"
                             << result.summary();
  }
}

TEST(Overlap, CheckerCoversMultiRoundSteps) {
  // Starve the wavelength budget so steps split into rounds; the overlap
  // identities must hold per round, not just per step.
  const auto sched = core::wrht_allreduce(24, 512, core::WrhtOptions{12, 2});
  verify::OverlapOptions options;
  options.wavelengths = 2;
  const auto result = verify::check_overlap_consistency(sched, 24, options);
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(Overlap, OracleProvesDataUnchanged) {
  // The policy is pure re-pricing; the schedule still computes the global
  // sum (proved numerically and by provenance).
  const std::uint32_t n = 16;
  for (const auto& sched : ring_schedules(n, 256)) {
    const auto report = verify::check_allreduce(sched);
    EXPECT_TRUE(report.result.ok()) << sched.algorithm() << "\n"
                                    << report.result.summary();
  }
}

TEST(Overlap, TorusNeverSlowerAndIdentityHolds) {
  // Bandwidth-dominated payload: every retune after step 0's first round
  // hides completely, so only one reconfiguration lands on the clock.
  const topo::Torus torus(4, 4);
  const auto sched = core::torus_wrht_allreduce(torus, 1u << 21,
                                                core::WrhtOptions{3, 8});
  const TorusNetwork serial(torus, cfg(net::ReconfigPolicy::kEveryRound));
  const TorusNetwork overlapped(torus,
                                cfg(net::ReconfigPolicy::kOverlapped));
  const auto s = serial.execute(sched);
  const auto o = overlapped.execute(sched);
  EXPECT_LT(o.total_time.count(), s.total_time.count());
  EXPECT_EQ(o.steps, s.steps);
  EXPECT_EQ(o.total_rounds, s.total_rounds);
  EXPECT_NEAR(o.total_time.count() + o.overlap_hidden.count(),
              s.total_time.count(), 1e-12 * (1.0 + s.total_time.count()));
  EXPECT_LT(o.reconfigurations, s.reconfigurations);
}

TEST(Overlap, TorusOccupancyIdentityHolds) {
  const topo::Torus torus(4, 4);
  const auto sched = core::torus_wrht_allreduce(torus, 2048,
                                                core::WrhtOptions{3, 8});
  const TorusNetwork net(torus, cfg(net::ReconfigPolicy::kOverlapped));
  obs::OccupancySampler sampler;
  obs::Probe probe;
  probe.occupancy = &sampler;
  const auto run = net.execute(sched, probe);
  RunReport report = run.to_report();
  const auto analysis = obs::analyze_utilization(report, sampler);
  EXPECT_NEAR(analysis.breakdown.total().count(), run.total_time.count(),
              1e-9 * (1.0 + run.total_time.count()));
}

TEST(Overlap, OnRetuneStillBeatsOverlapForStaticCircuits) {
  // Ring All-reduce never retunes after round 0: retune-aware accounting
  // removes the delay entirely while overlap still pays residuals on a
  // latency-bound payload. The two refinements are genuinely different.
  const std::uint32_t n = 32;
  const auto sched = coll::ring_allreduce(n, n);
  const RingNetwork retune(n, cfg(net::ReconfigPolicy::kOnRetune, 64));
  const RingNetwork overlapped(n, cfg(net::ReconfigPolicy::kOverlapped, 64));
  EXPECT_LT(retune.execute(sched).total_time.count(),
            overlapped.execute(sched).total_time.count());
}

TEST(Overlap, RingScheduleIsReconfigFreeWrhtIsNot) {
  // The Schedule IR metadata agrees with what the engines observe.
  EXPECT_TRUE(coll::is_reconfig_free(coll::ring_allreduce(16, 64)));
  EXPECT_FALSE(coll::is_reconfig_free(
      core::wrht_allreduce(16, 64, core::WrhtOptions{4, 8})));
}

}  // namespace
}  // namespace wrht::optics
