#include "wrht/verify/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/ring_allreduce.hpp"

#ifndef WRHT_FUZZ_ITERATIONS
#define WRHT_FUZZ_ITERATIONS 50
#endif

namespace wrht {
namespace {

using verify::FuzzOptions;
using verify::FuzzReport;

// The CI-facing sweep: WRHT_FUZZ_ITERATIONS random configurations across
// every registered algorithm must produce zero findings. Dial the CMake
// cache variable up for local soak runs.
TEST(VerifyFuzz, RandomConfigurationSweepIsClean) {
  FuzzOptions options;
  options.iterations = WRHT_FUZZ_ITERATIONS;
  const FuzzReport report = verify::run_fuzz(options);

  EXPECT_EQ(report.iterations_run, options.iterations);
  ASSERT_TRUE(report.ok())
      << report.failures.size() << " failing configuration(s); first: "
      << report.failures.front().config.to_string() << "\n"
      << report.failures.front().result.summary()
      << (report.minimal_failure
              ? "\nminimal: " + report.minimal_failure->config.to_string()
              : std::string{});

  std::size_t total = 0;
  for (const auto& [name, count] : report.cases_per_algorithm) {
    // Planner candidates are pseudo-algorithms built via
    // plan::build_candidate, not Registry entries.
    if (name.rfind("plan:", 0) != 0) {
      EXPECT_TRUE(coll::Registry::instance().contains(name)) << name;
    }
    total += count;
  }
  EXPECT_EQ(total, report.iterations_run);
  // WRHT itself must be exercised (deterministic for the default seed).
  EXPECT_GT(report.cases_per_algorithm.count("wrht"), 0u);
}

TEST(VerifyFuzz, DeterministicInSeed) {
  FuzzOptions options;
  options.iterations = 20;
  options.seed = 1234;
  const FuzzReport a = verify::run_fuzz(options);
  const FuzzReport b = verify::run_fuzz(options);
  EXPECT_EQ(a.cases_per_algorithm, b.cases_per_algorithm);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(VerifyFuzz, SingleAlgorithmFilterIsHonoured) {
  FuzzOptions options;
  options.iterations = 10;
  options.algorithms = {"wrht"};
  const FuzzReport report = verify::run_fuzz(options);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.cases_per_algorithm.size(), 1u);
  EXPECT_EQ(report.cases_per_algorithm.begin()->first, "wrht");
  EXPECT_EQ(report.cases_per_algorithm.begin()->second, 10u);
}

// A deliberately broken builder must be caught by the oracle and shrunk to
// the smallest configuration that still fails.
TEST(VerifyFuzz, BrokenBuilderIsCaughtAndShrunk) {
  coll::Registry::instance().register_algorithm(
      "broken_for_test", [](const coll::AllreduceParams& p) {
        // A Ring All-reduce with one extra reduce delivery: some node
        // double-counts a neighbour's contribution.
        const coll::Schedule good =
            coll::ring_allreduce(p.num_nodes,
                                 std::max<std::size_t>(p.elements, p.num_nodes));
        coll::Schedule bad(good.algorithm(), good.num_nodes(),
                           good.elements());
        for (const coll::Step& step : good.steps()) {
          coll::Step& copy = bad.add_step(step.label);
          copy.transfers = step.transfers;
        }
        coll::Step& extra = bad.add_step("duplicate");
        extra.transfers.push_back(good.steps().front().transfers.front());
        return bad;
      });

  FuzzOptions options;
  options.iterations = 5;
  options.algorithms = {"broken_for_test"};
  const FuzzReport report = verify::run_fuzz(options);

  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.minimal_failure.has_value());
  const verify::FuzzCase& minimal = report.minimal_failure->config;
  // The defect is independent of every dimension, so shrinking must reach
  // the floor of the search space.
  EXPECT_EQ(minimal.num_nodes, 2u);
  EXPECT_FALSE(report.minimal_failure->result.ok());
  EXPECT_LE(minimal.num_nodes, report.failures.front().config.num_nodes);
  EXPECT_LE(minimal.elements, report.failures.front().config.elements);
}

}  // namespace
}  // namespace wrht
