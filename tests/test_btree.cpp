#include "wrht/collectives/btree_allreduce.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_THROW(ceil_log2(0), InvalidArgument);
}

TEST(BtreeAllreduce, StepCountFormula) {
  EXPECT_EQ(btree_allreduce_steps(1024), 20u);  // Table 1
  EXPECT_EQ(btree_allreduce_steps(15), 8u);     // motivating example, Fig 2a
  EXPECT_EQ(btree_allreduce_steps(2), 2u);
  for (std::uint32_t n : {2u, 3u, 7u, 15u, 16u, 33u}) {
    EXPECT_EQ(btree_allreduce(n, 8).num_steps(), btree_allreduce_steps(n));
  }
}

TEST(BtreeAllreduce, CorrectForSmallSizes) {
  Rng rng;
  for (std::uint32_t n : {2u, 3u, 4u, 7u, 8u, 15u, 16u, 21u}) {
    const Schedule s = btree_allreduce(n, 5);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9)
        << "btree failed for n=" << n;
  }
}

TEST(BtreeAllreduce, EveryTransferMovesFullVector) {
  const std::size_t elements = 17;
  const Schedule s = btree_allreduce(8, elements);
  for (const Step& step : s.steps()) {
    for (const Transfer& t : step.transfers) {
      EXPECT_EQ(t.offset, 0u);
      EXPECT_EQ(t.count, elements);
    }
  }
}

TEST(BtreeAllreduce, ReduceFoldsTowardNodeZero) {
  const Schedule s = btree_allreduce(8, 4);
  // Last reduce step: node 4 -> node 0.
  const Step& last_reduce = s.steps()[2];
  ASSERT_EQ(last_reduce.transfers.size(), 1u);
  EXPECT_EQ(last_reduce.transfers[0].src, 4u);
  EXPECT_EQ(last_reduce.transfers[0].dst, 0u);
  EXPECT_EQ(last_reduce.transfers[0].kind, TransferKind::kReduce);
}

TEST(BtreeAllreduce, BroadcastMirrorsReduce) {
  const Schedule s = btree_allreduce(16, 4);
  const std::size_t half = s.num_steps() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const Step& reduce = s.steps()[i];
    const Step& bcast = s.steps()[s.num_steps() - 1 - i];
    ASSERT_EQ(reduce.transfers.size(), bcast.transfers.size());
    for (std::size_t t = 0; t < reduce.transfers.size(); ++t) {
      EXPECT_EQ(reduce.transfers[t].src, bcast.transfers[t].dst);
      EXPECT_EQ(reduce.transfers[t].dst, bcast.transfers[t].src);
      EXPECT_EQ(bcast.transfers[t].kind, TransferKind::kCopy);
    }
  }
}

TEST(BtreeAllreduce, IncompleteTreeSkipsMissingPartners) {
  // n=5: reduce level 1 pairs (1->0),(3->2); level 2 (2->0); level 3 (4->0).
  const Schedule s = btree_allreduce(5, 4);
  EXPECT_EQ(s.steps()[0].transfers.size(), 2u);
  EXPECT_EQ(s.steps()[1].transfers.size(), 1u);
  EXPECT_EQ(s.steps()[2].transfers.size(), 1u);
  EXPECT_EQ(s.steps()[2].transfers[0].src, 4u);
}

TEST(BtreeAllreduce, Validation) {
  EXPECT_THROW(btree_allreduce(1, 10), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
