#include "wrht/collectives/ring_primitives.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(RingReduceScatter, CorrectAcrossSizes) {
  Rng rng;
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 13u, 16u}) {
    const Schedule s = ring_reduce_scatter(n, 3 * n + 1);
    EXPECT_LE(Executor::verify_reduce_scatter(s, n, rng), 1e-9)
        << "n=" << n;
  }
}

TEST(RingReduceScatter, HasNMinusOneSteps) {
  EXPECT_EQ(ring_reduce_scatter(8, 16).num_steps(), 7u);
  EXPECT_EQ(ring_reduce_scatter(2, 4).num_steps(), 1u);
}

TEST(RingReduceScatter, PayloadIsOneChunkPerStep) {
  const Schedule s = ring_reduce_scatter(8, 64);
  for (std::size_t i = 0; i < s.num_steps(); ++i) {
    EXPECT_EQ(s.max_transfer_elements(i), 8u);
  }
}

TEST(RingReduceScatter, AllTransfersReduce) {
  const Schedule s = ring_reduce_scatter(5, 10);
  for (const auto& step : s.steps()) {
    for (const auto& t : step.transfers) {
      EXPECT_EQ(t.kind, TransferKind::kReduce);
      EXPECT_EQ(t.dst, (t.src + 1) % 5);
    }
  }
}

TEST(RingAllgather, CorrectAcrossSizes) {
  Rng rng;
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 13u, 16u}) {
    const Schedule s = ring_allgather(n, 3 * n + 1);
    EXPECT_LE(Executor::verify_allgather(s, n, rng), 1e-9) << "n=" << n;
  }
}

TEST(RingAllgather, AllTransfersCopy) {
  const Schedule s = ring_allgather(5, 10);
  EXPECT_EQ(s.num_steps(), 4u);
  for (const auto& step : s.steps()) {
    for (const auto& t : step.transfers) {
      EXPECT_EQ(t.kind, TransferKind::kCopy);
    }
  }
}

TEST(RingPrimitives, ComposeIntoAllreduce) {
  // reduce-scatter followed by all-gather must be a full All-reduce.
  const std::uint32_t n = 6;
  const std::size_t elements = 18;
  Schedule composed("rs+ag", n, elements);
  const Schedule rs = ring_reduce_scatter(n, elements);
  const Schedule ag = ring_allgather(n, elements);
  for (const auto& step : rs.steps()) {
    composed.add_step(step.label).transfers = step.transfers;
  }
  for (const auto& step : ag.steps()) {
    composed.add_step(step.label).transfers = step.transfers;
  }
  Rng rng;
  EXPECT_LE(Executor::verify_allreduce(composed, rng), 1e-9);
}

TEST(RingPrimitives, Validation) {
  EXPECT_THROW(ring_reduce_scatter(1, 4), InvalidArgument);
  EXPECT_THROW(ring_reduce_scatter(8, 4), InvalidArgument);
  EXPECT_THROW(ring_allgather(1, 4), InvalidArgument);
  EXPECT_THROW(ring_allgather(8, 4), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
