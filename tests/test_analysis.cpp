#include "wrht/core/analysis.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

TEST(CeilLog, Values) {
  EXPECT_EQ(ceil_log(2, 1), 1u);
  EXPECT_EQ(ceil_log(2, 2), 1u);
  EXPECT_EQ(ceil_log(2, 3), 2u);
  EXPECT_EQ(ceil_log(2, 1024), 10u);
  EXPECT_EQ(ceil_log(129, 1024), 2u);
  EXPECT_EQ(ceil_log(17, 1024), 3u);
  EXPECT_EQ(ceil_log(33, 1024), 2u);
  EXPECT_EQ(ceil_log(1024, 1024), 1u);
  EXPECT_THROW(ceil_log(1, 8), InvalidArgument);
  EXPECT_THROW(ceil_log(2, 0), InvalidArgument);
}

TEST(WrhtPlan, Table1Headline) {
  // Table 1 row: N=1024, w=64, m=129 -> 3 steps.
  const WrhtStepPlan p = wrht_plan(1024, 129, 64);
  EXPECT_EQ(p.total_steps, 3u);
  EXPECT_TRUE(p.final_all_to_all);
  EXPECT_EQ(p.final_reps, 8u);  // m* = ceil(1024/129)
  EXPECT_EQ(p.grouping_levels, 1u);
  EXPECT_EQ(p.reduce_steps, 2u);
  EXPECT_EQ(p.broadcast_steps, 1u);
  EXPECT_EQ(p.wavelengths_required, 64u);  // floor(129/2)
}

TEST(WrhtPlan, Figure4GroupSizeSweep) {
  // Paper Fig. 4 configurations on 1024 nodes with w = 64.
  EXPECT_EQ(wrht_plan(1024, 17, 64).total_steps, 5u);   // WRHT_0
  EXPECT_EQ(wrht_plan(1024, 33, 64).total_steps, 4u);   // WRHT_1
  EXPECT_EQ(wrht_plan(1024, 65, 64).total_steps, 3u);   // WRHT_2
  EXPECT_EQ(wrht_plan(1024, 129, 64).total_steps, 3u);  // WRHT_3
}

TEST(WrhtPlan, StepsNeverExceedPaperUpperBound) {
  for (std::uint32_t n : {8u, 16u, 100u, 1024u}) {
    for (std::uint32_t m : {2u, 5u, 17u, 129u}) {
      for (std::uint32_t w : {1u, 4u, 64u, 256u}) {
        const WrhtStepPlan p = wrht_plan(n, m, w);
        EXPECT_LE(p.total_steps, wrht_steps_upper(n, m))
            << "n=" << n << " m=" << m << " w=" << w;
        // With the all-to-all ending the paper's 2L-1 form is met exactly.
        if (p.final_all_to_all && p.grouping_levels + 1 == ceil_log(m, n)) {
          EXPECT_EQ(p.total_steps, wrht_steps_upper(n, m) - 1);
        }
      }
    }
  }
}

TEST(WrhtPlan, WavelengthRequirementTracksGroupAndExchange) {
  // m=5 on 15 nodes with w=2: floor(5/2)=2 group lambdas and
  // ceil(3^2/8)=2 for the exchange.
  const WrhtStepPlan p = wrht_plan(15, 5, 2);
  EXPECT_EQ(p.wavelengths_required, 2u);
  // m=33 on 1024 nodes, w=64: group needs 16, exchange impossible ->
  // requirement is the group bound.
  EXPECT_EQ(wrht_plan(1024, 33, 64).wavelengths_required, 16u);
}

TEST(Lemma1, LowerBoundFormula) {
  // 2 * ceil(log_{2w+1} N).
  EXPECT_EQ(wrht_min_steps(1024, 64), 4u);   // log_129(1024) -> 2 levels
  EXPECT_EQ(wrht_min_steps(1024, 2), 10u);   // log_5(1024) -> 5
  EXPECT_EQ(wrht_min_steps(15, 2), 4u);
  EXPECT_EQ(wrht_min_steps(2, 1), 2u);
  EXPECT_THROW(wrht_min_steps(8, 0), InvalidArgument);
}

TEST(Lemma1, BoundsEveryPlanWithinBudget) {
  // No plan with m <= 2w+1 beats the Lemma 1 bound by more than the
  // all-to-all saving of one step.
  for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    for (std::uint32_t w : {1u, 2u, 8u, 64u}) {
      const std::uint64_t bound = wrht_min_steps(n, w);
      for (std::uint32_t m = 2; m <= std::min(n, 2 * w + 1); ++m) {
        const WrhtStepPlan p = wrht_plan(n, m, w);
        EXPECT_GE(p.total_steps + 1, bound)
            << "n=" << n << " w=" << w << " m=" << m;
      }
    }
  }
}

TEST(Eq6, CommTime) {
  TimeModel model;
  model.per_step_overhead = Seconds(25e-6);
  model.bytes_per_second = 40e9;
  // 3 steps, 40 GB payload: data 3 s + overhead 75 us.
  const Seconds t = comm_time(3, Bytes(40'000'000'000ull), model);
  EXPECT_NEAR(t.count(), 3.0 + 75e-6, 1e-12);
}

TEST(Eq6, ZeroPayloadIsPureOverhead) {
  TimeModel model;
  model.per_step_overhead = Seconds(1e-3);
  const Seconds t = comm_time(5, Bytes(0), model);
  EXPECT_DOUBLE_EQ(t.count(), 5e-3);
}

TEST(Theorem1, OptimalTimeUsesLemma1Steps) {
  TimeModel model;
  model.per_step_overhead = Seconds(25e-6);
  model.bytes_per_second = 40e9;
  const Bytes d(100'000'000);
  const Seconds opt = wrht_optimal_time(1024, 64, d, model);
  EXPECT_DOUBLE_EQ(opt.count(),
                   comm_time(wrht_min_steps(1024, 64), d, model).count());
}

TEST(Theorem1, LowerBoundsRealisedPlans) {
  TimeModel model;
  const Bytes d(1'000'000);
  for (std::uint32_t w : {2u, 8u, 64u}) {
    const Seconds bound = wrht_optimal_time(1024, w, d, model);
    for (std::uint32_t m = 2; m <= 2 * w + 1; m += 3) {
      const WrhtStepPlan p = wrht_plan(1024, m, w);
      // Plans may save one step via the all-to-all; allow that margin.
      const Seconds t = comm_time(p.total_steps + 1, d, model);
      EXPECT_GE(t.count(), bound.count()) << "w=" << w << " m=" << m;
    }
  }
}

TEST(Eq6, Validation) {
  TimeModel model;
  model.bytes_per_second = 0.0;
  EXPECT_THROW(comm_time(1, Bytes(1), model), InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
