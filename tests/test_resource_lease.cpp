// Multi-tenant resource leases: accessor/validation edge cases, the
// slice-equivalence property on both optical engines (a leased run prices
// like a full run on a fabric the width of the slice), the electrical
// bandwidth-share mapping, and byte-identity of an explicit full-width
// slice with the default lease.
#include "wrht/net/resource_lease.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "wrht/common/error.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/optical/optical_backend.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/torus_network.hpp"

namespace wrht {
namespace {

using net::ResourceLease;
using net::slice_lease;

TEST(ResourceLease, DefaultIsFullFabric) {
  const ResourceLease lease;
  EXPECT_TRUE(lease.full());
  EXPECT_EQ(lease.width(64), 64u);
  EXPECT_EQ(lease.clamp_hi(64), 64u);
  EXPECT_DOUBLE_EQ(lease.share(64), 1.0);
  EXPECT_EQ(lease.to_string(), "full");
  EXPECT_NO_THROW(lease.validate(0));
  EXPECT_NO_THROW(lease.validate(64));
}

TEST(ResourceLease, SliceAccessors) {
  const ResourceLease lease = slice_lease(8, 4, 7);
  EXPECT_FALSE(lease.full());
  EXPECT_EQ(lease.w_lo, 8u);
  EXPECT_EQ(lease.w_hi, 12u);
  EXPECT_EQ(lease.tenant, 7u);
  EXPECT_EQ(lease.width(64), 4u);
  EXPECT_EQ(lease.clamp_hi(64), 12u);
  EXPECT_DOUBLE_EQ(lease.share(64), 4.0 / 64.0);
  EXPECT_DOUBLE_EQ(lease.share(0), 1.0);  // unknown fabric width
  EXPECT_EQ(lease.to_string(), "[8, 12)@t7");
}

TEST(ResourceLease, Validation) {
  EXPECT_THROW((void)slice_lease(3, 0), InvalidArgument);
  EXPECT_THROW((ResourceLease{5, 5, 0}).validate(8), InvalidArgument);
  EXPECT_THROW((ResourceLease{6, 4, 0}).validate(8), InvalidArgument);
  EXPECT_THROW(slice_lease(6, 4).validate(8), InvalidArgument);  // [6, 10)
  EXPECT_NO_THROW(slice_lease(4, 4).validate(8));  // [4, 8) exactly fits
}

optics::OpticalConfig optical_cfg(std::uint32_t wavelengths) {
  optics::OpticalConfig c;
  c.wavelengths = wavelengths;
  return c;
}

// A leased run must price exactly like a full-fabric run on a fiber the
// width of the slice, with every wavelength index shifted up by w_lo.
// This is the invariant the verify fuzzer draws random slices against.
TEST(ResourceLease, RingSliceEquivalence) {
  // m = 9 needs floor(9/2) = 4 wavelengths: the schedule fills the slice.
  const auto sched = core::wrht_allreduce(64, 4096, core::WrhtOptions{9, 4});

  optics::OpticalConfig leased_cfg = optical_cfg(16);
  leased_cfg.lease = slice_lease(5, 4);
  const optics::RingNetwork leased(64, leased_cfg);
  const optics::RingNetwork narrow(64, optical_cfg(4));

  const auto a = leased.execute(sched);
  const auto b = narrow.execute(sched);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.steps, b.steps);
  // wavelengths_used is highest index + 1, and leased indices stay
  // absolute, so the slice offset shows up here.
  EXPECT_EQ(a.max_wavelengths_used, b.max_wavelengths_used + 5);
}

TEST(ResourceLease, RingSliceEquivalenceWithMultiRoundSplitting) {
  // The schedule wants 4 wavelengths but the slice grants 2: every wide
  // step splits into rounds, identically on both fabrics.
  const auto sched = core::wrht_allreduce(64, 4096, core::WrhtOptions{9, 4});

  optics::OpticalConfig leased_cfg = optical_cfg(16);
  leased_cfg.lease = slice_lease(7, 2);
  const optics::RingNetwork leased(64, leased_cfg);
  const optics::RingNetwork narrow(64, optical_cfg(2));

  const auto a = leased.execute(sched);
  const auto b = narrow.execute(sched);
  EXPECT_GT(a.total_rounds, a.steps);  // splitting actually happened
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.max_wavelengths_used, b.max_wavelengths_used + 7);
}

TEST(ResourceLease, RingSliceEquivalenceRandomFit) {
  // Random-fit draws a permutation of the slice; the draw sequence depends
  // only on the slice width, so equivalence holds seed-for-seed.
  const auto sched = core::wrht_allreduce(64, 4096, core::WrhtOptions{9, 4});

  optics::OpticalConfig leased_cfg = optical_cfg(16);
  leased_cfg.rwa_policy = optics::RwaPolicy::kRandomFit;
  leased_cfg.lease = slice_lease(5, 4);
  const optics::RingNetwork leased(64, leased_cfg);

  optics::OpticalConfig narrow_cfg = optical_cfg(4);
  narrow_cfg.rwa_policy = optics::RwaPolicy::kRandomFit;
  const optics::RingNetwork narrow(64, narrow_cfg);

  Rng rng_a(2023);
  Rng rng_b(2023);
  const auto a = leased.execute(sched, &rng_a);
  const auto b = narrow.execute(sched, &rng_b);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.max_wavelengths_used, b.max_wavelengths_used + 5);
}

TEST(ResourceLease, TorusSliceEquivalence) {
  const topo::Torus torus(4, 8);
  const auto sched =
      core::torus_wrht_allreduce(torus, 1000, core::WrhtOptions{3, 2});

  optics::OpticalConfig leased_cfg = optical_cfg(8);
  leased_cfg.lease = slice_lease(3, 2);
  const optics::TorusNetwork leased(torus, leased_cfg);
  const optics::TorusNetwork narrow(torus, optical_cfg(2));

  const auto a = leased.execute(sched);
  const auto b = narrow.execute(sched);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.max_wavelengths_used, b.max_wavelengths_used + 3);
}

TEST(ResourceLease, EngineConstructorsValidateLease) {
  optics::OpticalConfig bad = optical_cfg(8);
  bad.lease = slice_lease(6, 4);  // [6, 10) exceeds 8 wavelengths
  EXPECT_THROW(optics::RingNetwork(16, bad), InvalidArgument);
  EXPECT_THROW(optics::TorusNetwork(topo::Torus(4, 4), bad), InvalidArgument);

  elec::ElectricalConfig elec_bad;
  elec_bad.lease = slice_lease(0, 4);  // slice without a fabric width
  EXPECT_THROW(elec::FatTreeNetwork(16, elec_bad), InvalidArgument);
  elec_bad.lease_fabric_width = 2;  // [0, 4) exceeds a width-2 fabric
  EXPECT_THROW(elec::FatTreeNetwork(16, elec_bad), InvalidArgument);
}

TEST(ResourceLease, ElectricalShareScalesBandwidth) {
  elec::ElectricalConfig full;
  elec::ElectricalConfig quarter;
  quarter.with_lease(slice_lease(16, 16), 64);  // 16 of 64 wavelengths
  EXPECT_DOUBLE_EQ(quarter.bytes_per_second(), full.bytes_per_second() / 4.0);

  // A leased fat tree prices a schedule strictly slower than a full one
  // (same steps, scaled link rate).
  const auto sched = core::wrht_allreduce(16, 4096, core::WrhtOptions{5, 2});
  const elec::FatTreeNetwork fast(16, full);
  const elec::FatTreeNetwork slow(16, quarter);
  const auto a = fast.execute(sched);
  const auto b = slow.execute(sched);
  EXPECT_EQ(a.to_report().steps, b.to_report().steps);
  EXPECT_GT(b.total_time.count(), a.total_time.count());
}

TEST(ResourceLease, ExplicitFullWidthSliceIsByteIdentical) {
  // A [0, W) slice is not the sentinel but must price byte-identically to
  // the default full lease, down to the serialized report.
  const auto sched = core::wrht_allreduce(64, 4096, core::WrhtOptions{9, 4});
  const optics::RingBackend plain(64, optical_cfg(16));
  optics::OpticalConfig sliced_cfg = optical_cfg(16);
  sliced_cfg.lease = slice_lease(0, 16);
  const optics::RingBackend sliced(64, sliced_cfg);

  std::ostringstream a;
  std::ostringstream b;
  plain.execute(sched).write_json(a);
  sliced.execute(sched).write_json(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace wrht
