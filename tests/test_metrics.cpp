// MetricsRegistry / Histogram / TimeSeries unit tests: typed instrument
// contracts (monotonic counters, free-moving gauges, log-bucket
// histograms), ring-buffer sampling semantics, deterministic merge, and
// byte-stable CSV/JSON export.
#include "wrht/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wrht/common/error.hpp"

namespace wrht::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Histogram, BucketsCoverLogScaleRanges) {
  Histogram h(HistogramSpec{1.0, 2.0, 8});
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 16.0);

  h.observe(1.5);    // bucket 0
  h.observe(10.0);   // bucket 3: [8, 16)
  h.observe(0.001);  // below lo -> bucket 0
  h.observe(1e9);    // overflow -> last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.5 + 10.0 + 0.001 + 1e9);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.bucket_counts()[7], 1u);
}

TEST(Histogram, QuantileIsBucketUpperBound) {
  Histogram h(HistogramSpec{1.0, 2.0, 8});
  for (int i = 0; i < 99; ++i) h.observe(1.5);  // bucket 0
  h.observe(100.0);                             // bucket 6: [64, 128)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 128.0);
}

TEST(Histogram, MergeAddsCountsElementwise) {
  Histogram a(HistogramSpec{1.0, 2.0, 4});
  Histogram b(HistogramSpec{1.0, 2.0, 4});
  a.observe(1.0);
  b.observe(1.0);
  b.observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_counts()[0], 2u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);

  Histogram c(HistogramSpec{2.0, 2.0, 4});
  EXPECT_THROW(a.merge(c), Error);  // spec mismatch
}

TEST(Histogram, RejectsBadSpecsAndEmptyQuantiles) {
  EXPECT_THROW(Histogram(HistogramSpec{0.0, 2.0, 4}), Error);
  EXPECT_THROW(Histogram(HistogramSpec{1.0, 1.0, 4}), Error);
  EXPECT_THROW(Histogram(HistogramSpec{1.0, 2.0, 0}), Error);
  Histogram h;
  EXPECT_THROW((void)h.quantile(0.5), Error);   // empty
  h.observe(1.0);
  EXPECT_THROW((void)h.quantile(1.5), Error);   // out of [0, 1]
}

TEST(TimeSeries, RingOverwritesOldestWhenFull) {
  TimeSeries series(3);
  series.push(Seconds(0.0), 10.0);
  series.push(Seconds(1.0), 11.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.dropped(), 0u);

  series.push(Seconds(2.0), 12.0);
  series.push(Seconds(3.0), 13.0);  // evicts t=0
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.dropped(), 1u);
  EXPECT_DOUBLE_EQ(series[0].time.count(), 1.0);  // oldest retained
  EXPECT_DOUBLE_EQ(series[2].value, 13.0);
  EXPECT_THROW((void)series[3], Error);

  const auto points = series.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.front().value, 11.0);
  EXPECT_DOUBLE_EQ(points.back().value, 13.0);
}

TEST(MetricsRegistry, TypedInstrumentsEnforceTheirContracts) {
  MetricsRegistry registry;
  const auto jobs = registry.counter("svc.jobs");
  const auto depth = registry.gauge("svc.depth");
  const auto jct = registry.histogram("svc.jct", HistogramSpec{1e-3, 2.0, 32});

  registry.add(jobs, 2.0);
  registry.add(jobs);
  EXPECT_DOUBLE_EQ(registry.value(jobs), 3.0);
  EXPECT_THROW(registry.add(jobs, -1.0), Error);  // monotonic

  registry.set(depth, 5.0);
  registry.set(depth, 2.0);  // gauges move down freely
  EXPECT_DOUBLE_EQ(registry.value(depth), 2.0);

  registry.observe(jct, 0.25);
  registry.observe(jct, 0.5);
  EXPECT_DOUBLE_EQ(registry.value(jct), 2.0);  // histograms read as count
  EXPECT_EQ(registry.histogram_at(jct).count(), 2u);

  // Wrong-kind operations throw rather than corrupt.
  EXPECT_THROW(registry.set(jobs, 1.0), Error);
  EXPECT_THROW(registry.add(depth), Error);
  EXPECT_THROW(registry.observe(jobs, 1.0), Error);
  EXPECT_THROW((void)registry.histogram_at(depth), Error);
}

TEST(MetricsRegistry, InternReturnsExistingIdAndRejectsKindClashes) {
  MetricsRegistry registry;
  const auto a = registry.counter("x");
  EXPECT_EQ(registry.counter("x"), a);
  EXPECT_THROW((void)registry.gauge("x"), Error);
  EXPECT_THROW((void)registry.counter(""), Error);

  const auto h = registry.histogram("h", HistogramSpec{1.0, 2.0, 8});
  EXPECT_EQ(registry.histogram("h", HistogramSpec{1.0, 2.0, 8}), h);
  EXPECT_THROW((void)registry.histogram("h", HistogramSpec{2.0, 2.0, 8}),
               Error);

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.name(a), "x");
  EXPECT_EQ(registry.kind(h), InstrumentKind::kHistogram);
  EXPECT_TRUE(registry.find("h").has_value());
  EXPECT_FALSE(registry.find("absent").has_value());
}

TEST(MetricsRegistry, SampleSnapshotsEveryInstrument) {
  MetricsRegistry registry(MetricsRegistry::Options{4});
  const auto jobs = registry.counter("jobs");
  const auto depth = registry.gauge("depth");

  registry.add(jobs);
  registry.set(depth, 3.0);
  registry.sample(Seconds(0.5));
  registry.add(jobs);
  registry.sample(Seconds(1.0));

  const TimeSeries& series = registry.series(jobs);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series[1].value, 2.0);
  EXPECT_DOUBLE_EQ(series[1].time.count(), 1.0);
  EXPECT_DOUBLE_EQ(registry.series(depth)[0].value, 3.0);
}

TEST(MetricsRegistry, MergeFoldsByKind) {
  MetricsRegistry a;
  a.add(a.counter("n"), 2.0);
  a.set(a.gauge("peak"), 5.0);
  a.observe(a.histogram("h"), 1.0);

  MetricsRegistry b;
  b.add(b.counter("n"), 3.0);
  b.set(b.gauge("peak"), 4.0);
  b.observe(b.histogram("h"), 2.0);
  b.add(b.counter("only_b"), 1.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(*a.find("n")), 5.0);     // counters sum
  EXPECT_DOUBLE_EQ(a.value(*a.find("peak")), 5.0);  // gauges high-watermark
  EXPECT_EQ(a.histogram_at(*a.find("h")).count(), 2u);
  EXPECT_DOUBLE_EQ(a.value(*a.find("only_b")), 1.0);

  a.merge(a);  // self-merge is a no-op
  EXPECT_DOUBLE_EQ(a.value(*a.find("n")), 5.0);
}

TEST(MetricsRegistry, ExportsAreDeterministicAndNameOrdered) {
  const auto build = [] {
    MetricsRegistry registry;
    const auto z = registry.counter("z.last");
    const auto a = registry.gauge("a.first");
    registry.add(z, 2.0);
    registry.set(a, 1.5);
    registry.sample(Seconds(0.25));
    return registry;
  };

  const std::string csv1 = "metrics_test_1.csv";
  const std::string csv2 = "metrics_test_2.csv";
  build().write_series_csv(csv1);
  build().write_series_csv(csv2);
  const std::string text = slurp(csv1);
  EXPECT_EQ(text, slurp(csv2));  // byte-identical across identical runs
  EXPECT_EQ(text.find("metric,kind,t_s,value"), 0u);
  // Name order: the gauge "a.first" precedes the counter "z.last".
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
  std::remove(csv1.c_str());
  std::remove(csv2.c_str());

  std::ostringstream json1, json2;
  build().write_json(json1);
  build().write_json(json2);
  EXPECT_EQ(json1.str(), json2.str());
  EXPECT_NE(json1.str().find("\"schema\": \"wrht-metrics-1\""),
            std::string::npos);
}

}  // namespace
}  // namespace wrht::obs
