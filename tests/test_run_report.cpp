#include "wrht/obs/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

coll::Schedule small_ring() { return coll::ring_allreduce(8, 800); }

// ------------------------------------------------ to_report() round trips

TEST(RunReport, OpticalRoundTrip) {
  const optics::RingNetwork net(8, optics::OpticalConfig{}.with_wavelengths(8));
  const optics::OpticalRunResult result = net.execute(small_ring());
  const RunReport report = result.to_report();

  EXPECT_EQ(report.backend, "optical-ring");
  EXPECT_EQ(report.total_time.count(), result.total_time.count());
  EXPECT_EQ(report.steps, result.steps);
  EXPECT_EQ(report.rounds, result.total_rounds);
  EXPECT_EQ(report.events_fired, result.events_fired);
  EXPECT_EQ(report.max_wavelengths_used(), result.max_wavelengths_used);
  ASSERT_EQ(report.step_reports.size(), result.step_costs.size());

  Seconds sum(0.0);
  for (std::size_t i = 0; i < report.step_reports.size(); ++i) {
    const StepReport& step = report.step_reports[i];
    EXPECT_EQ(step.label, result.step_costs[i].label);
    EXPECT_EQ(step.start.count(), result.step_costs[i].start.count());
    EXPECT_EQ(step.rounds, result.step_costs[i].rounds);
    sum += step.duration;
  }
  EXPECT_NEAR(sum.count(), report.total_time.count(),
              1e-12 * report.total_time.count());
  EXPECT_GT(report.max_step_duration().count(), 0.0);
}

TEST(RunReport, ElectricalFlowRoundTrip) {
  const elec::FatTreeNetwork net(8, elec::ElectricalConfig{});
  const elec::ElectricalRunResult result = net.execute(small_ring());
  const RunReport report = result.to_report();

  EXPECT_EQ(report.backend, "electrical-flow");
  EXPECT_EQ(report.total_time.count(), result.total_time.count());
  EXPECT_EQ(report.steps, result.steps);
  ASSERT_EQ(report.step_reports.size(), result.step_times.size());
  EXPECT_EQ(report.max_wavelengths_used(), 0u);  // not an optical concept

  Seconds cursor(0.0);
  for (std::size_t i = 0; i < report.step_reports.size(); ++i) {
    EXPECT_EQ(report.step_reports[i].start.count(), cursor.count());
    EXPECT_EQ(report.step_reports[i].duration.count(),
              result.step_times[i].count());
    cursor += result.step_times[i];
  }
}

TEST(RunReport, PacketRoundTrip) {
  const elec::PacketLevelNetwork net(8, elec::ElectricalConfig{});
  const elec::PacketRunResult result = net.execute(small_ring());
  const RunReport report = result.to_report();

  EXPECT_EQ(report.backend, "electrical-packet");
  EXPECT_EQ(report.total_time.count(), result.total_time.count());
  EXPECT_EQ(report.steps, result.steps);
  EXPECT_EQ(report.events_fired, result.events_fired);
  ASSERT_EQ(report.step_reports.size(), result.step_times.size());
}

// --------------------------------------------------- report-level helpers

TEST(RunReport, AddCountersMergesSnapshot) {
  obs::Counters counters;
  counters.add("optical.rounds", 14);
  counters.observe_max("optical.max_wavelengths_used", 8);

  RunReport report;
  report.add_counters(counters);
  EXPECT_EQ(report.counters.at("optical.rounds"), 14u);
  EXPECT_EQ(report.counters.at("optical.max_wavelengths_used"), 8u);
}

TEST(RunReport, StepCsvHasOneRowPerStep) {
  RunReport report;
  StepReport a;
  a.label = "reduce-scatter";
  a.duration = Seconds(2e-6);
  a.rounds = 2;
  a.wavelengths_used = 4;
  report.step_reports.push_back(a);
  StepReport b;
  b.label = "broadcast";
  b.start = Seconds(2e-6);
  b.duration = Seconds(1e-6);
  report.step_reports.push_back(b);

  const std::string path = testing::TempDir() + "run_report_steps.csv";
  report.write_step_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "step,label,start_s,duration_s,rounds,wavelengths_used");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------- write_json() golden

/// Hand-fed report with clean values: the JSON must match byte for byte
/// (fixed key order, %.9g seconds). Anything that consumes these files —
/// plotting scripts, diffing tools — relies on this determinism.
TEST(RunReport, WriteJsonGolden) {
  RunReport report;
  report.backend = "golden";
  report.total_time = Seconds(5e-6);
  report.steps = 1;
  report.rounds = 2;
  report.events_fired = 3;
  report.utilization = 0.5;
  report.resources_observed = 2;
  report.breakdown = {Seconds(2.5e-6), Seconds(1e-6), Seconds(0.0),
                      Seconds(0.0),    Seconds(5e-7), Seconds(1e-6)};
  StepReport step;
  step.label = "exchange";
  step.duration = Seconds(5e-6);
  step.rounds = 2;
  step.wavelengths_used = 1;
  step.breakdown = report.breakdown;
  report.step_reports.push_back(step);
  report.counters["optical.rounds"] = 2;

  std::ostringstream out;
  report.write_json(out);
  const std::string expected =
      "{\n"
      "  \"backend\": \"golden\",\n"
      "  \"total_time_s\": 5e-06,\n"
      "  \"steps\": 1,\n"
      "  \"rounds\": 2,\n"
      "  \"events_fired\": 3,\n"
      "  \"utilization\": 0.5,\n"
      "  \"resources_observed\": 2,\n"
      "  \"breakdown\": {\"transmission_s\":2.5e-06,"
      "\"reconfiguration_s\":1e-06,\"conversion_s\":0,\"processing_s\":0,"
      "\"straggler_wait_s\":5e-07,\"idle_s\":1e-06},\n"
      "  \"step_reports\": [\n"
      "    {\"step\":0,\"label\":\"exchange\",\"start_s\":0,"
      "\"duration_s\":5e-06,\"rounds\":2,\"wavelengths_used\":1,"
      "\"breakdown\":{\"transmission_s\":2.5e-06,\"reconfiguration_s\":1e-06,"
      "\"conversion_s\":0,\"processing_s\":0,\"straggler_wait_s\":5e-07,"
      "\"idle_s\":1e-06}}\n"
      "  ],\n"
      "  \"counters\": {\n"
      "    \"optical.rounds\": 2\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(RunReport, WriteJsonEmptyReportIsStillValid) {
  std::ostringstream out;
  RunReport{}.write_json(out);
  const std::string got = out.str();
  EXPECT_NE(got.find("\"step_reports\": []"), std::string::npos) << got;
  EXPECT_NE(got.find("\"counters\": {}"), std::string::npos) << got;
}

TEST(RunReport, WriteJsonFileRoundTripsAndBadPathThrows) {
  RunReport report;
  report.backend = "file \"quoted\"";  // exercises escaping on disk
  const std::string path = testing::TempDir() + "run_report.json";
  report.write_json_file(path);
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  std::ostringstream direct;
  report.write_json(direct);
  EXPECT_EQ(got.str(), direct.str());
  std::remove(path.c_str());

  EXPECT_THROW(report.write_json_file("/no/such/dir/report.json"), Error);
}

// -------------------------------------- observed == unobserved execution

TEST(Observability, EmptyProbeMatchesUnobservedExecute) {
  const coll::Schedule sched = small_ring();

  const optics::RingNetwork optical(8,
                                    optics::OpticalConfig{}.with_wavelengths(8));
  const auto plain = optical.execute(sched);
  const auto observed = optical.execute(sched, obs::Probe{});
  EXPECT_EQ(plain.total_time.count(), observed.total_time.count());
  EXPECT_EQ(plain.total_rounds, observed.total_rounds);
  EXPECT_EQ(plain.events_fired, observed.events_fired);

  const elec::FatTreeNetwork electrical(8, elec::ElectricalConfig{});
  EXPECT_EQ(electrical.execute(sched).total_time.count(),
            electrical.execute(sched, obs::Probe{}).total_time.count());

  const elec::PacketLevelNetwork packet(8, elec::ElectricalConfig{});
  EXPECT_EQ(packet.execute(sched).total_time.count(),
            packet.execute(sched, obs::Probe{}).total_time.count());
}

TEST(Observability, CountersAgreeWithResultFields) {
  const coll::Schedule sched = small_ring();
  const optics::RingNetwork net(8, optics::OpticalConfig{}.with_wavelengths(8));

  obs::Counters counters;
  const auto result = net.execute(sched, obs::Probe{nullptr, &counters, 0});
  EXPECT_EQ(counters.value("optical.steps"), result.steps);
  EXPECT_EQ(counters.value("optical.rounds"), result.total_rounds);
  EXPECT_EQ(counters.value("optical.max_wavelengths_used"),
            result.max_wavelengths_used);
  EXPECT_EQ(counters.value("optical.reconfig_charges"),
            result.reconfigurations);
  EXPECT_EQ(counters.value("sim.events_fired"), result.events_fired);
}

// ------------------------------------------------------- fluent builders

TEST(FluentConfig, OpticalSettersMatchAggregateInit) {
  optics::OpticalConfig aggregate;
  aggregate.wavelengths = 16;
  aggregate.mrr_reconfig_delay = Seconds(1e-6);
  aggregate.convention = optics::OpticalConfig::RateConvention::kStrictBits;
  aggregate.validate_node_capacity = false;

  const optics::OpticalConfig fluent =
      optics::OpticalConfig{}
          .with_wavelengths(16)
          .with_mrr_reconfig_delay(Seconds(1e-6))
          .with_convention(optics::OpticalConfig::RateConvention::kStrictBits)
          .with_validate_node_capacity(false);

  EXPECT_EQ(fluent.wavelengths, aggregate.wavelengths);
  EXPECT_EQ(fluent.mrr_reconfig_delay.count(),
            aggregate.mrr_reconfig_delay.count());
  EXPECT_EQ(fluent.convention, aggregate.convention);
  EXPECT_EQ(fluent.validate_node_capacity, aggregate.validate_node_capacity);
  // Untouched fields keep their defaults.
  EXPECT_EQ(fluent.fibers_per_direction, 1u);
  EXPECT_EQ(fluent.bytes_per_element, 4u);
}

TEST(FluentConfig, AggregateInitStillWorks) {
  // The ISSUE contract: adding fluent setters must not break aggregate
  // initialization of the config structs.
  const optics::OpticalConfig optical{32};
  EXPECT_EQ(optical.wavelengths, 32u);
  const elec::ElectricalConfig electrical{BitsPerSecond(10e9)};
  EXPECT_EQ(electrical.link_rate.count(), 10e9);
}

TEST(FluentConfig, ElectricalSettersCompose) {
  const elec::ElectricalConfig cfg = elec::ElectricalConfig{}
                                         .with_link_rate(BitsPerSecond(10e9))
                                         .with_router_delay(Seconds(5e-6))
                                         .with_router_ports(16)
                                         .with_convention(
                                             net::RateConvention::kStrictBits);
  EXPECT_EQ(cfg.link_rate.count(), 10e9);
  EXPECT_EQ(cfg.router_delay.count(), 5e-6);
  EXPECT_EQ(cfg.router_ports, 16u);
  EXPECT_EQ(cfg.bytes_per_second(), 10e9 / 8.0);
}

// --------------------------------------------------- registry hardening

TEST(RegistryHardening, ZeroNodesThrows) {
  coll::AllreduceParams p;
  p.num_nodes = 0;
  p.elements = 100;
  EXPECT_THROW(static_cast<void>(coll::Registry::instance().build("ring", p)),
               InvalidArgument);
}

TEST(RegistryHardening, ZeroElementsThrows) {
  coll::AllreduceParams p;
  p.num_nodes = 8;
  p.elements = 0;
  EXPECT_THROW(static_cast<void>(coll::Registry::instance().build("ring", p)),
               InvalidArgument);
}

TEST(RegistryHardening, UnknownNameListsRegisteredAlgorithms) {
  coll::AllreduceParams p;
  p.num_nodes = 8;
  p.elements = 100;
  try {
    static_cast<void>(
        coll::Registry::instance().build("no-such-algorithm", p));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-algorithm"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    EXPECT_NE(what.find("ring"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace wrht
