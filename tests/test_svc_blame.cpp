// Per-tenant JCT blame tests: the accounting identity on a bursty
// multi-tenant workload, the queueing/fragmentation wait split, the
// event-log replay path, "service"-kind wrht-blame-1 serialization, and
// cross-policy diffing.
#include "wrht/diag/svc_blame.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "wrht/diag/blame_json.hpp"
#include "wrht/svc/replay.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"
#include "wrht/verify/blame.hpp"

namespace wrht::diag {
namespace {

std::vector<svc::Job> bursty_jobs(std::uint64_t seed,
                                  std::uint32_t num_jobs = 32) {
  svc::WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.num_nodes = 8;
  workload.fabric_wavelengths = 8;
  workload.mean_interarrival = Seconds(0.005);  // oversubscribed: real queue
  workload.burstiness = 0.5;
  workload.seed = seed;
  return svc::generate_workload(workload);
}

svc::ServiceConfig service_config(svc::PolicyKind policy) {
  svc::ServiceConfig config;
  config.fabric_wavelengths = 8;
  config.policy = policy;
  return config;
}

TEST(SvcBlame, IdentityHoldsOnBurstyWorkloadAcrossPolicies) {
  const std::vector<svc::Job> jobs = bursty_jobs(11);
  for (const svc::PolicyKind policy : svc::all_policies()) {
    const svc::ServiceConfig config = service_config(policy);
    svc::FabricService service(config);
    const svc::ServiceReport report = service.run(jobs);
    const ServiceBlame blame = build_service_blame(
        report, config.planner, config.fabric_wavelengths);
    const verify::CheckResult check = verify::check_blame_identity(blame);
    EXPECT_TRUE(check.ok())
        << svc::to_string(policy) << ": " << check.summary();
    EXPECT_EQ(blame.jobs, report.records.size());

    // The blame total is the sum of JCTs, computed independently here.
    double jct_sum = 0.0;
    double wait_sum = 0.0;
    for (const svc::JobRecord& r : report.records) {
      jct_sum += r.jct().count();
      wait_sum += r.queue_wait().count();
    }
    EXPECT_NEAR(blame.total_jct.count(), jct_sum, 1e-9 * jct_sum + 1e-12);
    // Queueing + fragmentation partition exactly the time spent waiting.
    EXPECT_NEAR(blame.categories[BlameCategory::kQueueing] +
                    blame.categories[BlameCategory::kFragmentation],
                wait_sum, 1e-9 * jct_sum + 1e-12)
        << svc::to_string(policy);
  }
}

TEST(SvcBlame, TenantsPartitionTheTotal) {
  const svc::ServiceConfig config = service_config(svc::PolicyKind::kFifo);
  svc::FabricService service(config);
  const svc::ServiceReport report = service.run(bursty_jobs(3));
  const ServiceBlame blame = build_service_blame(
      report, config.planner, config.fabric_wavelengths);
  ASSERT_GT(blame.tenants.size(), 1u);
  BlameTotals from_tenants;
  double jct = 0.0;
  for (const TenantBlame& tenant : blame.tenants) {
    from_tenants += tenant.totals;
    jct += tenant.jct.count();
  }
  EXPECT_NEAR(jct, blame.total_jct.count(), 1e-9 * jct);
  for (const BlameCategory category : all_blame_categories()) {
    EXPECT_NEAR(from_tenants[category], blame.categories[category],
                1e-9 * blame.total_jct.count() + 1e-12)
        << to_string(category);
  }
  // Tenant order is the deterministic part of the JSON surface.
  for (std::size_t i = 1; i < blame.tenants.size(); ++i) {
    EXPECT_LT(blame.tenants[i - 1].tenant, blame.tenants[i].tenant);
  }
}

TEST(SvcBlame, ReplayedEventLogKeepsTheIdentity) {
  svc::ServiceConfig config = service_config(svc::PolicyKind::kBackfill);
  config.telemetry.events = true;
  svc::FabricService service(config);
  const svc::ServiceReport live = service.run(bursty_jobs(5));
  ASSERT_NE(service.event_log(), nullptr);

  std::istringstream round_trip(service.event_log()->to_jsonl());
  const obs::EventLog log = obs::EventLog::read_jsonl(round_trip);
  const svc::ReplaySummary replay = svc::replay_events(log);

  const ServiceBlame from_replay = build_service_blame(
      replay.report, config.planner, config.fabric_wavelengths);
  const verify::CheckResult check = verify::check_blame_identity(from_replay);
  EXPECT_TRUE(check.ok()) << check.summary();

  // The wait split depends only on the grant/release timeline, which the
  // log reproduces exactly — so it matches the live attribution.
  const ServiceBlame from_live = build_service_blame(
      live, config.planner, config.fabric_wavelengths);
  EXPECT_NEAR(from_replay.categories[BlameCategory::kQueueing],
              from_live.categories[BlameCategory::kQueueing],
              1e-9 * from_live.total_jct.count() + 1e-12);
  EXPECT_NEAR(from_replay.categories[BlameCategory::kFragmentation],
              from_live.categories[BlameCategory::kFragmentation],
              1e-9 * from_live.total_jct.count() + 1e-12);
  EXPECT_NEAR(from_replay.total_jct.count(), from_live.total_jct.count(),
              1e-9 * from_live.total_jct.count() + 1e-12);
}

TEST(SvcBlame, JsonIsByteDeterministicAndServiceKind) {
  const svc::ServiceConfig config = service_config(svc::PolicyKind::kFifo);
  const std::vector<svc::Job> jobs = bursty_jobs(9);
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    svc::FabricService service(config);
    const ServiceBlame blame = build_service_blame(
        service.run(jobs), config.planner, config.fabric_wavelengths);
    std::ostringstream stream;
    write_service_blame_json(blame, stream);
    *out = stream.str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  std::istringstream in(first);
  const ParsedBlame parsed = read_blame_json(in);
  EXPECT_EQ(parsed.kind, "service");
  EXPECT_EQ(parsed.source, "fifo");
  EXPECT_FALSE(parsed.tenants.empty());
  EXPECT_EQ(parsed.categories.size(), kNumBlameCategories);
  EXPECT_NEAR(parsed.attributed_time, parsed.total_time,
              1e-9 * parsed.total_time);
}

TEST(SvcBlame, DifferLocalizesPolicyChangesToTenants) {
  const std::vector<svc::Job> jobs = bursty_jobs(13);
  const auto to_parsed = [&](svc::PolicyKind policy) {
    const svc::ServiceConfig config = service_config(policy);
    svc::FabricService service(config);
    const ServiceBlame blame = build_service_blame(
        service.run(jobs), config.planner, config.fabric_wavelengths);
    std::ostringstream stream;
    write_service_blame_json(blame, stream);
    std::istringstream in(stream.str());
    return read_blame_json(in);
  };

  const ParsedBlame fifo = to_parsed(svc::PolicyKind::kFifo);
  const BlameDiff same = diff_blame(fifo, to_parsed(svc::PolicyKind::kFifo));
  EXPECT_TRUE(same.clean()) << same.to_string();

  // A different admission order moves per-tenant JCT; when anything moves
  // beyond threshold the differ must say where.
  const BlameDiff diff =
      diff_blame(fifo, to_parsed(svc::PolicyKind::kPriority));
  if (!diff.clean()) {
    EXPECT_FALSE(diff.categories.empty() && diff.tenants.empty() &&
                 diff.lanes.empty())
        << diff.to_string();
  }
}

}  // namespace
}  // namespace wrht::diag
