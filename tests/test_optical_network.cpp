#include "wrht/optical/ring_network.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht::optics {
namespace {

OpticalConfig paper_config() { return OpticalConfig{}; }

TEST(OpticalConfig, RateConventions) {
  OpticalConfig c;
  EXPECT_DOUBLE_EQ(c.bytes_per_second(), 40e9);  // paper convention
  c.convention = OpticalConfig::RateConvention::kStrictBits;
  EXPECT_DOUBLE_EQ(c.bytes_per_second(), 5e9);
}

TEST(RingNetwork, RoundTimeIsEq6PerStepTerm) {
  const RingNetwork net(16, paper_config());
  // a + d/B with a = 25 us + 497 fs and d = 4e6 bytes.
  const Seconds t = net.round_time(1'000'000);
  EXPECT_NEAR(t.count(), 25e-6 + 497e-15 + 4e6 / 40e9, 1e-15);
}

TEST(RingNetwork, RingAllreduceUsesOneWavelength) {
  const RingNetwork net(16, paper_config());
  const auto res = net.execute(coll::ring_allreduce(16, 32));
  EXPECT_EQ(res.max_wavelengths_used, 1u);
  EXPECT_EQ(res.total_rounds, res.steps);  // never split
  EXPECT_EQ(res.steps, 30u);
}

TEST(RingNetwork, BtreeUsesOneWavelength) {
  const RingNetwork net(16, paper_config());
  const auto res = net.execute(coll::btree_allreduce(16, 8));
  EXPECT_EQ(res.max_wavelengths_used, 1u);
  EXPECT_EQ(res.total_rounds, res.steps);
}

TEST(RingNetwork, WrhtWavelengthUsageMatchesRequirement) {
  // m=129 on 1024 nodes needs exactly floor(129/2) = 64 wavelengths.
  OpticalConfig cfg = paper_config();
  const RingNetwork net(1024, cfg);
  const auto sched = core::wrht_allreduce(1024, 64, core::WrhtOptions{129, 64});
  const auto res = net.execute(sched);
  EXPECT_EQ(res.max_wavelengths_used, 64u);
  EXPECT_EQ(res.total_rounds, res.steps);  // fits the budget, no splitting
}

TEST(RingNetwork, WrhtTimeMatchesClosedForm) {
  // Simulated time must equal Eq. (6) exactly for WRHT (single-round steps,
  // constant payload d).
  OpticalConfig cfg = paper_config();
  const std::size_t elements = 1'000'000;
  const RingNetwork net(1024, cfg);
  const auto sched =
      core::wrht_allreduce(1024, elements, core::WrhtOptions{129, 64});
  const auto res = net.execute(sched);

  core::TimeModel model;
  model.per_step_overhead = cfg.mrr_reconfig_delay + cfg.oeo_delay;
  model.bytes_per_second = cfg.bytes_per_second();
  const Seconds expected = core::comm_time(
      res.steps, Bytes(elements * cfg.bytes_per_element), model);
  EXPECT_NEAR(res.total_time.count(), expected.count(), 1e-12);
}

TEST(RingNetwork, RingTimeMatchesClosedForm) {
  OpticalConfig cfg = paper_config();
  const std::uint32_t n = 64;
  const std::size_t elements = 64 * 1000;
  const RingNetwork net(n, cfg);
  const auto res = net.execute(coll::ring_allreduce(n, elements));
  // 2(n-1) steps, each a + (d/n)/B.
  const double per_step = cfg.mrr_reconfig_delay.count() +
                          cfg.oeo_delay.count() +
                          (elements / n * 4.0) / cfg.bytes_per_second();
  EXPECT_NEAR(res.total_time.count(), 2.0 * (n - 1) * per_step, 1e-9);
}

TEST(RingNetwork, StarvedStepsSplitIntoRounds) {
  // A WRHT group step with floor(m/2) = 4 required wavelengths on a 2-lambda
  // fiber must split into 2 rounds, doubling the per-step overhead.
  OpticalConfig cfg = paper_config();
  cfg.wavelengths = 2;
  const RingNetwork net(27, cfg);
  const auto sched = core::wrht_allreduce(27, 8, core::WrhtOptions{9, 2});
  const auto res = net.execute(sched);
  EXPECT_GT(res.total_rounds, res.steps);
  EXPECT_LE(res.max_wavelengths_used, 2u);
}

TEST(RingNetwork, SplittingDisabledThrows) {
  OpticalConfig cfg = paper_config();
  cfg.wavelengths = 2;
  cfg.allow_multi_round_steps = false;
  const RingNetwork net(27, cfg);
  const auto sched = core::wrht_allreduce(27, 8, core::WrhtOptions{9, 2});
  EXPECT_THROW(net.execute(sched), InfeasibleSchedule);
}

TEST(RingNetwork, StrictBitsSlowsSerializationOnly) {
  OpticalConfig paper = paper_config();
  OpticalConfig strict = paper_config();
  strict.convention = OpticalConfig::RateConvention::kStrictBits;
  const std::size_t elements = 10'000'000;
  const auto sched = core::wrht_allreduce(16, elements, core::WrhtOptions{5, 8});
  const RingNetwork net_p(16, paper);
  const RingNetwork net_s(16, strict);
  const double tp = net_p.execute(sched).total_time.count();
  const double ts = net_s.execute(sched).total_time.count();
  const double overhead = static_cast<double>(sched.num_steps()) *
                          (paper.mrr_reconfig_delay.count() +
                           paper.oeo_delay.count());
  EXPECT_NEAR((ts - overhead) / (tp - overhead), 8.0, 1e-6);
}

TEST(RingNetwork, LongestLightpathReported) {
  const RingNetwork net(15, paper_config());
  const auto sched = core::wrht_allreduce(15, 4, core::WrhtOptions{5, 2});
  const auto res = net.execute(sched);
  // Group members are <= 2 hops from the rep; the all-to-all between reps
  // 2, 7, 12 travels 5 hops.
  EXPECT_EQ(res.longest_lightpath_hops, 5u);
}

TEST(RingNetwork, PatternCacheDoesNotChangeResults) {
  // Execute twice; cached second run must agree exactly.
  const RingNetwork net(32, paper_config());
  const auto sched = coll::ring_allreduce(32, 320);
  const auto a = net.execute(sched);
  const auto b = net.execute(sched);
  EXPECT_DOUBLE_EQ(a.total_time.count(), b.total_time.count());
  EXPECT_EQ(a.max_wavelengths_used, b.max_wavelengths_used);
}

TEST(RingNetwork, EventKernelDrivesSteps) {
  const RingNetwork net(16, paper_config());
  const auto res = net.execute(coll::btree_allreduce(16, 8));
  // One launch event per step plus the initial kick-off.
  EXPECT_EQ(res.events_fired, res.steps + 1);
}

TEST(RingNetwork, HringRunsWithinBudget) {
  const RingNetwork net(20, paper_config());
  const auto res = net.execute(coll::hring_allreduce(20, 40, 5));
  EXPECT_LE(res.max_wavelengths_used, 4u);
  EXPECT_EQ(res.steps, coll::hring_builder_steps(20, 5));
}

TEST(RingNetwork, Validation) {
  OpticalConfig cfg;
  cfg.wavelengths = 0;
  EXPECT_THROW(RingNetwork(8, cfg), InvalidArgument);
  const RingNetwork net(8, paper_config());
  EXPECT_THROW(net.execute(coll::ring_allreduce(16, 32)), InvalidArgument);
}

}  // namespace
}  // namespace wrht::optics
