#include "wrht/collectives/hring_allreduce.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(HRing, PaperFormulaTable1) {
  // Table 1: N=1024, m=5, w=64 -> 417 steps.
  EXPECT_EQ(hring_steps(1024, 5, 64), 417u);
  // Wavelength-starved branch (m > w).
  EXPECT_EQ(hring_steps(1024, 5, 4), 424u);
}

TEST(HRing, BuilderMatchesPaperFormulaWhenDivisible) {
  // With m | N and m <= w the builder's 2(m-1) + 2(N/m - 1) + 1 equals
  // the paper's 2(m^2+N)/m - 3.
  for (std::uint32_t m : {2u, 4u, 8u, 16u}) {
    const std::uint32_t n = 64;
    EXPECT_EQ(hring_builder_steps(n, m), hring_steps(n, m, 64))
        << "m=" << m;
    EXPECT_EQ(hring_allreduce(n, 2 * n, m).num_steps(),
              hring_builder_steps(n, m));
  }
}

TEST(HRing, BuilderMatchesFormulaForPaperConfig) {
  // N=1024, m=5 has a 4-node trailing group; builder still lands on 417.
  EXPECT_EQ(hring_builder_steps(1024, 5), 417u);
}

TEST(HRing, CorrectForDivisibleGroups) {
  Rng rng;
  const Schedule s = hring_allreduce(12, 24, 4);
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(HRing, CorrectForRaggedGroups) {
  Rng rng;
  for (std::uint32_t n : {10u, 11u, 13u, 17u}) {
    const Schedule s = hring_allreduce(n, 2 * n + 1, 4);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9)
        << "hring failed for n=" << n;
  }
}

TEST(HRing, CorrectWithGroupOfOne) {
  Rng rng;
  // n=9, m=4 -> groups 4,4,1.
  const Schedule s = hring_allreduce(9, 18, 4);
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(HRing, SingleGroupDegeneratesToRing) {
  // m >= N: only the intra stage, 2(N-1) steps (exactly Ring All-reduce).
  const Schedule s = hring_allreduce(6, 12, 8);
  EXPECT_EQ(s.num_steps(), 10u);
  Rng rng;
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(HRing, BroadcastIsFinalSingleStep) {
  const Schedule s = hring_allreduce(12, 24, 4);
  const Step& last = s.steps().back();
  EXPECT_EQ(last.label, "leader broadcast");
  // 3 groups x 3 non-leader members.
  EXPECT_EQ(last.transfers.size(), 9u);
  for (const Transfer& t : last.transfers) {
    EXPECT_EQ(t.kind, TransferKind::kCopy);
    EXPECT_EQ(t.count, 24u);
  }
}

TEST(HRing, LeadersAreGroupMiddles) {
  const Schedule s = hring_allreduce(12, 24, 4);
  // Groups [0..3],[4..7],[8..11] -> leaders 2, 6, 10 appear as broadcast
  // sources.
  const Step& last = s.steps().back();
  for (const Transfer& t : last.transfers) {
    EXPECT_TRUE(t.src == 2 || t.src == 6 || t.src == 10) << t.src;
  }
}

TEST(HRing, IntraPayloadIsGroupChunk) {
  const Schedule s = hring_allreduce(12, 24, 4);
  // Intra steps move elements/m = 6-element chunks.
  EXPECT_EQ(s.max_transfer_elements(0), 6u);
  // Inter steps (after 2(m-1) = 6 intra steps) move elements/(N/m) = 8.
  EXPECT_EQ(s.max_transfer_elements(6), 8u);
}

TEST(HRing, Validation) {
  EXPECT_THROW(hring_allreduce(1, 10, 2), InvalidArgument);
  EXPECT_THROW(hring_allreduce(8, 16, 1), InvalidArgument);
  EXPECT_THROW(hring_allreduce(8, 4, 2), InvalidArgument);
  EXPECT_THROW(hring_steps(8, 2, 0), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
