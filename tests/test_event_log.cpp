// EventLog (svc-events-1) unit tests: kind round-trips, JSONL write/read
// round-trips (including exact double timestamps and escaped causes), and
// schema-marker rejection of foreign files.
#include "wrht/obs/event_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "wrht/common/error.hpp"

namespace wrht::obs {
namespace {

EventLog sample_log() {
  EventLog log;
  log.set_context(EventLog::Context{16, "backfill", 2023});
  log.record(ServiceEvent{ServiceEvent::Kind::kSubmit, Seconds(0.0), 1, 0, 0,
                          0, "arrival"});
  log.record(ServiceEvent{ServiceEvent::Kind::kAdmit, Seconds(0.0), 1, 0, 0,
                          0, "policy=backfill"});
  log.record(ServiceEvent{ServiceEvent::Kind::kGrant,
                          Seconds(0.1000000000000001), 1, 0, 4, 12,
                          "alg=wrht"});
  log.record(ServiceEvent{ServiceEvent::Kind::kComplete, Seconds(1.0 / 3.0),
                          1, 0, 4, 12, "release"});
  return log;
}

TEST(EventLog, KindNamesRoundTrip) {
  for (const auto kind :
       {ServiceEvent::Kind::kSubmit, ServiceEvent::Kind::kAdmit,
        ServiceEvent::Kind::kPreempt, ServiceEvent::Kind::kGrant,
        ServiceEvent::Kind::kStart, ServiceEvent::Kind::kComplete,
        ServiceEvent::Kind::kRetune}) {
    EXPECT_EQ(event_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)event_kind_from_string("nonsense"), Error);
}

TEST(EventLog, JsonlRoundTripsExactly) {
  const EventLog log = sample_log();
  std::istringstream in(log.to_jsonl());
  const EventLog parsed = EventLog::read_jsonl(in);

  EXPECT_EQ(parsed.context(), log.context());
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed.events()[i], log.events()[i]) << "event " << i;
    // The %.17g timestamps must reconstruct the exact double — the replay
    // identity in bench_svc_telemetry depends on this.
    EXPECT_EQ(parsed.events()[i].time.count(), log.events()[i].time.count());
  }
  // Re-serializing the parsed log reproduces the bytes.
  EXPECT_EQ(parsed.to_jsonl(), log.to_jsonl());
}

TEST(EventLog, FileRoundTrip) {
  const std::string path = "event_log_test.jsonl";
  sample_log().write_file(path);
  const EventLog parsed = EventLog::read_file(path);
  EXPECT_EQ(parsed.to_jsonl(), sample_log().to_jsonl());
  std::remove(path.c_str());
  EXPECT_THROW((void)EventLog::read_file(path), Error);  // gone
}

TEST(EventLog, CausesWithSpecialCharactersSurvive) {
  EventLog log;
  log.set_context(EventLog::Context{4, "fifo", 1});
  log.record(ServiceEvent{ServiceEvent::Kind::kSubmit, Seconds(0.0), 7, 2, 0,
                          0, "quote \" backslash \\ tab \t newline \n"});
  std::istringstream in(log.to_jsonl());
  const EventLog parsed = EventLog::read_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].cause,
            "quote \" backslash \\ tab \t newline \n");
}

TEST(EventLog, RejectsForeignOrMalformedStreams) {
  {
    std::istringstream in("");
    EXPECT_THROW((void)EventLog::read_jsonl(in), Error);  // no header
  }
  {
    std::istringstream in(
        "{\"schema\": \"other-schema-9\", \"fabric_wavelengths\": 4, "
        "\"policy\": \"fifo\", \"seed\": 1, \"events\": 0}\n");
    EXPECT_THROW((void)EventLog::read_jsonl(in), Error);  // wrong schema
  }
  {
    std::istringstream in(
        "{\"schema\": \"svc-events-1\", \"fabric_wavelengths\": 4, "
        "\"policy\": \"fifo\", \"seed\": 1, \"events\": 1}\n"
        "{\"kind\": \"submit\"}\n");
    EXPECT_THROW((void)EventLog::read_jsonl(in), Error);  // missing fields
  }
}

// Every malformed-input diagnostic must name the offending line and the
// reader must never crash or silently mis-replay a damaged log.
TEST(EventLog, TruncatedStreamNamesTheLastLine) {
  // Drop the final event: the header still declares 4, so the count check
  // has to flag the file as truncated.
  std::string jsonl = sample_log().to_jsonl();
  jsonl.erase(jsonl.rfind("{\"kind\": \"complete\""));
  std::istringstream in(jsonl);
  try {
    (void)EventLog::read_jsonl(in);
    FAIL() << "truncated stream accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(EventLog, MalformedEventNamesItsLine) {
  std::istringstream in(
      "{\"schema\": \"svc-events-1\", \"fabric_wavelengths\": 4, "
      "\"policy\": \"fifo\", \"seed\": 1, \"events\": 2}\n"
      "{\"kind\": \"submit\", \"t\": 0, \"job\": 1, \"tenant\": 0, "
      "\"w_lo\": 0, \"w_hi\": 0, \"cause\": \"arrival\"}\n"
      "{\"kind\": \"grant\", \"t\": 0.5}\n");
  try {
    (void)EventLog::read_jsonl(in);
    FAIL() << "malformed event accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(EventLog, WrongSchemaVersionNamesLineOne) {
  std::istringstream in(
      "{\"schema\": \"svc-events-2\", \"fabric_wavelengths\": 4, "
      "\"policy\": \"fifo\", \"seed\": 1, \"events\": 0}\n");
  try {
    (void)EventLog::read_jsonl(in);
    FAIL() << "wrong schema accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

TEST(EventLog, OutOfOrderTimestampsAreRejected) {
  std::istringstream in(
      "{\"schema\": \"svc-events-1\", \"fabric_wavelengths\": 4, "
      "\"policy\": \"fifo\", \"seed\": 1, \"events\": 2}\n"
      "{\"kind\": \"submit\", \"t\": 1.5, \"job\": 1, \"tenant\": 0, "
      "\"w_lo\": 0, \"w_hi\": 0, \"cause\": \"arrival\"}\n"
      "{\"kind\": \"submit\", \"t\": 0.5, \"job\": 2, \"tenant\": 0, "
      "\"w_lo\": 0, \"w_hi\": 0, \"cause\": \"arrival\"}\n");
  try {
    (void)EventLog::read_jsonl(in);
    FAIL() << "time-reversed stream accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("out-of-order"), std::string::npos)
        << e.what();
  }
}

TEST(EventLog, ExtraEventsBeyondHeaderCountAreRejected) {
  std::string jsonl = sample_log().to_jsonl();  // header declares 4
  jsonl +=
      "{\"kind\": \"retune\", \"t\": 2.0, \"job\": 9, \"tenant\": 0, "
      "\"w_lo\": 0, \"w_hi\": 0, \"cause\": \"stray\"}\n";
  std::istringstream in(jsonl);
  EXPECT_THROW((void)EventLog::read_jsonl(in), Error);
}

TEST(EventLog, ClearDropsEventsButKeepsContext) {
  EventLog log = sample_log();
  EXPECT_FALSE(log.empty());
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.context().policy, "backfill");
}

}  // namespace
}  // namespace wrht::obs
