// Tests for the declarative sweep engine (exp::SweepSpec / SweepRunner):
// grid expansion order, thread-count-independent results, schedule
// memoization, per-series knobs, error handling and counter merging.
#include "wrht/exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"
#include "wrht/obs/trace_json.hpp"

namespace wrht {
namespace {

/// Two workloads x two node counts x one budget x two series = 8 points,
/// small enough that even the threaded runs stay fast.
exp::SweepSpec small_spec() {
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"a", 256}, exp::Workload{"b", 512}};
  spec.nodes = {4, 8};
  spec.wavelengths = {4};
  spec.series = {exp::Series{.name = "ring", .algorithm = "ring"},
                 exp::Series{.name = "btree", .algorithm = "btree"}};
  return spec;
}

TEST(Sweep, RowsComeBackInGridOrder) {
  const exp::SweepSpec spec = small_spec();
  const auto rows = exp::SweepRunner(1).run(spec);
  ASSERT_EQ(rows.size(), 8u);

  // workloads (outer) x nodes x wavelengths x series (inner).
  std::size_t i = 0;
  for (const exp::Workload& workload : spec.workloads) {
    for (const std::uint32_t nodes : spec.nodes) {
      for (const exp::Series& series : spec.series) {
        const exp::SweepPoint& point = rows[i].point;
        EXPECT_EQ(point.workload.name, workload.name) << i;
        EXPECT_EQ(point.nodes, nodes) << i;
        EXPECT_EQ(point.wavelengths, 4u) << i;
        EXPECT_EQ(point.series, series.name) << i;
        EXPECT_EQ(rows[i].report.backend, "optical-ring") << i;
        ++i;
      }
    }
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  exp::SweepSpec spec = small_spec();
  // Random-fit RWA makes the comparison sensitive to seed handling: the
  // per-point seeds must not depend on which worker runs a point.
  spec.series.push_back(exp::Series{
      .name = "ring_rf", .algorithm = "ring",
      .configure = [](const exp::SweepPoint&, net::BackendConfig& c) {
        c.random_fit_rwa = true;
      }});

  const auto serial = exp::SweepRunner(1).run(spec);
  const auto threaded = exp::SweepRunner(4).run(spec);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].point.series, threaded[i].point.series) << i;
    EXPECT_EQ(serial[i].point.nodes, threaded[i].point.nodes) << i;
    EXPECT_EQ(serial[i].report.total_time.count(),
              threaded[i].report.total_time.count())
        << i;
    EXPECT_EQ(serial[i].report.rounds, threaded[i].report.rounds) << i;
    EXPECT_EQ(serial[i].report.counters, threaded[i].report.counters) << i;
  }
}

TEST(Sweep, SchedulesAreMemoizedAcrossSeries) {
  // Two series share one algorithm; the schedule must be built once per
  // distinct (algorithm, workload, N, m, w) key, not once per point.
  std::atomic<int> builds{0};
  coll::Registry::instance().register_algorithm(
      "test-counting-ring", [&builds](const coll::AllreduceParams& p) {
        builds.fetch_add(1);
        return coll::ring_allreduce(p.num_nodes, p.elements);
      });

  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"a", 256}};
  spec.nodes = {4, 8};
  spec.wavelengths = {4};
  spec.series = {
      exp::Series{.name = "paper", .algorithm = "test-counting-ring"},
      exp::Series{.name = "strict", .algorithm = "test-counting-ring",
                  .configure =
                      [](const exp::SweepPoint&, net::BackendConfig& c) {
                        c.convention = net::RateConvention::kStrictBits;
                      }}};

  const auto rows = exp::SweepRunner(2).run(spec);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(builds.load(), 2);  // one build per node count, shared by series

  // The configure hook really did run per series: strict prices slower.
  EXPECT_GT(rows[1].report.total_time.count(),
            rows[0].report.total_time.count());
}

TEST(Sweep, GroupSizeFnOverridesStaticGroupSize) {
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"a", 256}};
  spec.nodes = {4, 8};
  spec.wavelengths = {4};
  spec.series = {exp::Series{
      .name = "hring", .algorithm = "hring", .group_size = 99,
      .group_size_fn = [](const exp::SweepPoint& p) { return p.nodes / 2; }}};

  const auto rows = exp::SweepRunner(1).run(spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].point.group_size, 2u);
  EXPECT_EQ(rows[1].point.group_size, 4u);
}

TEST(Sweep, BuilderSeriesBypassesAlgorithmRegistry) {
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"a", 64}};
  spec.nodes = {4};
  spec.wavelengths = {4};
  spec.series = {exp::Series{
      .name = "custom", .backend = "schedule-only",
      .builder = [](const exp::SweepPoint& p) {
        coll::Schedule sched("custom", p.nodes, p.workload.elements);
        coll::Step& step = sched.add_step("only step");
        coll::Transfer t;
        t.src = 0;
        t.dst = 1;
        t.count = p.workload.elements;
        step.transfers.push_back(t);
        return sched;
      }}};

  const auto rows = exp::SweepRunner(1).run(spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].report.backend, "schedule-only");
  EXPECT_EQ(rows[0].report.steps, 1u);
  EXPECT_EQ(rows[0].report.step_reports.at(0).label, "only step");
}

TEST(Sweep, EmptyAxesAreRejected) {
  const exp::SweepRunner runner(1);
  exp::SweepSpec spec = small_spec();
  spec.workloads.clear();
  EXPECT_THROW(static_cast<void>(runner.run(spec)), InvalidArgument);

  spec = small_spec();
  spec.nodes.clear();
  EXPECT_THROW(static_cast<void>(runner.run(spec)), InvalidArgument);

  spec = small_spec();
  spec.wavelengths.clear();
  EXPECT_THROW(static_cast<void>(runner.run(spec)), InvalidArgument);

  spec = small_spec();
  spec.series.clear();
  EXPECT_THROW(static_cast<void>(runner.run(spec)), InvalidArgument);
}

TEST(Sweep, WorkerExceptionsPropagate) {
  exp::SweepSpec spec = small_spec();
  spec.series = {exp::Series{
      .name = "boom", .builder = [](const exp::SweepPoint&) -> coll::Schedule {
        throw InvalidArgument("schedule construction failed on purpose");
      }}};
  EXPECT_THROW(static_cast<void>(exp::SweepRunner(1).run(spec)),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(exp::SweepRunner(4).run(spec)),
               InvalidArgument);
}

TEST(Sweep, UnknownBackendOrAlgorithmPropagates) {
  exp::SweepSpec spec = small_spec();
  spec.series[0].backend = "no-such-backend";
  EXPECT_THROW(static_cast<void>(exp::SweepRunner(2).run(spec)),
               InvalidArgument);

  spec = small_spec();
  spec.series[0].algorithm = "no-such-algorithm";
  EXPECT_THROW(static_cast<void>(exp::SweepRunner(2).run(spec)),
               InvalidArgument);
}

TEST(Sweep, CountersAttachToRowsAndMergeIntoSpec) {
  obs::Counters merged;
  exp::SweepSpec spec = small_spec();
  spec.counters = &merged;

  const auto rows = exp::SweepRunner(2).run(spec);
  std::uint64_t row_executions = 0;
  for (const exp::SweepRow& row : rows) {
    // Every row carries its own run's counters...
    EXPECT_EQ(row.report.counters.at("net.executions"), 1u);
    EXPECT_EQ(row.report.counters.at("optical.steps"), row.report.steps);
    row_executions += row.report.counters.at("net.executions");
  }
  // ...and the shared registry saw the additive sum of all of them.
  EXPECT_EQ(merged.value("net.executions"), row_executions);
  EXPECT_EQ(merged.value("net.executions"), rows.size());
}

TEST(Sweep, ExplicitThreadsWinOverEnvironment) {
  EXPECT_EQ(exp::SweepRunner(3).threads(), 3u);
  EXPECT_GE(exp::SweepRunner(0).threads(), 1u);
}

/// Sets WRHT_SWEEP_THREADS for one scope and restores the prior state.
class ScopedSweepThreadsEnv {
 public:
  explicit ScopedSweepThreadsEnv(const char* value) {
    const char* prev = std::getenv("WRHT_SWEEP_THREADS");
    if (prev != nullptr) previous_ = prev;
    had_previous_ = prev != nullptr;
    ::setenv("WRHT_SWEEP_THREADS", value, 1);
  }
  ~ScopedSweepThreadsEnv() {
    if (had_previous_) {
      ::setenv("WRHT_SWEEP_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("WRHT_SWEEP_THREADS");
    }
  }

 private:
  std::string previous_;
  bool had_previous_ = false;
};

TEST(Sweep, ValidThreadsEnvIsHonoured) {
  const ScopedSweepThreadsEnv env("7");
  EXPECT_EQ(exp::SweepRunner(0).threads(), 7u);
}

// Hardening: zero, negative, non-numeric, trailing-garbage and absurd
// values must not poison the pool (0 would deadlock it; a negative cast
// to unsigned would ask for billions of threads). All fall back to
// hardware concurrency, which this host reports as >= 1.
TEST(Sweep, MalformedThreadsEnvFallsBackToHardwareConcurrency) {
  ::unsetenv("WRHT_SWEEP_THREADS");
  const unsigned fallback = exp::SweepRunner(0).threads();
  for (const char* bad : {"0", "-3", "abc", "8x", "", "1e3", "999999999"}) {
    const ScopedSweepThreadsEnv env(bad);
    EXPECT_EQ(exp::SweepRunner(0).threads(), fallback)
        << "WRHT_SWEEP_THREADS='" << bad << "'";
  }
}

// The spec's trace sink receives every run's spans, and worker tracks are
// labelled "sweep-worker-<k>" when the sink is a ChromeTraceSink.
TEST(Sweep, TraceSinkCollectsSpansWithLabelledWorkerTracks) {
  obs::ChromeTraceSink sink;
  exp::SweepSpec spec = small_spec();
  spec.trace = &sink;

  const auto rows = exp::SweepRunner(2).run(spec);
  EXPECT_EQ(rows.size(), 8u);
  EXPECT_GT(sink.size(), 0u);

  std::ostringstream out;
  sink.write(out);
  EXPECT_NE(out.str().find("thread_name"), std::string::npos);
  EXPECT_NE(out.str().find("sweep-worker-0"), std::string::npos);
}

}  // namespace
}  // namespace wrht
