#include "wrht/core/constraints.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

TEST(Constraints, ReportFieldsConsistent) {
  OpticalConstraints c;
  const ConstraintReport r = evaluate_constraints(1024, 65, c);
  EXPECT_EQ(r.longest_path_hops, optics::wrht_max_comm_length(1024, 65));
  EXPECT_DOUBLE_EQ(
      r.insertion_loss.count(),
      optics::insertion_loss(r.longest_path_hops, c.power).count());
  EXPECT_EQ(r.power_ok,
            optics::power_feasible(r.longest_path_hops, c.power));
  EXPECT_EQ(r.ber_ok, r.ber < c.target_ber);
}

TEST(Constraints, DefaultsAdmitModerateGroups) {
  OpticalConstraints c;
  EXPECT_TRUE(group_size_feasible(1024, 65, c));
  const std::uint32_t m = max_feasible_group_size(1024, c);
  EXPECT_GE(m, 65u);
  EXPECT_TRUE(group_size_feasible(1024, m, c));
}

TEST(Constraints, MaxIsMaximal) {
  OpticalConstraints c;
  const std::uint32_t m = max_feasible_group_size(1024, c);
  ASSERT_GE(m, 2u);
  for (std::uint32_t larger = m + 1; larger <= 1024; ++larger) {
    EXPECT_FALSE(group_size_feasible(1024, larger, c)) << larger;
  }
}

TEST(Constraints, PowerBindsWhenLaserWeak) {
  OpticalConstraints c;
  c.power.laser_power = PowerDbm(6.5);
  // Headroom (6.5 - 1.3 - 4.8) = 0.4 dB -> 40 hops at 0.01 dB/hop.
  ASSERT_EQ(optics::max_reach_hops(c.power), 40u);
  const std::uint32_t m = max_feasible_group_size(1024, c);
  EXPECT_LE(optics::wrht_max_comm_length(1024, m), 40u);
  EXPECT_EQ(m, 40u);  // L=2 regime: longest path == m
}

TEST(Constraints, CrosstalkBindsWhenNoisy) {
  OpticalConstraints c;
  c.crosstalk.per_hop_crosstalk = PowerDbm(-35.0);  // leaky MRRs
  const std::uint32_t m = max_feasible_group_size(1024, c);
  const std::uint64_t reach = optics::max_hops_for_ber(c.crosstalk, 1e-9);
  EXPECT_LE(optics::wrht_max_comm_length(1024, m), reach);
  EXPECT_LT(m, 65u);
}

TEST(Constraints, InfeasibleEverywhereReturnsZero) {
  OpticalConstraints c;
  c.power.laser_power = PowerDbm(-20.0);
  EXPECT_EQ(max_feasible_group_size(64, c), 0u);
}

TEST(Constraints, TightBerTargetShrinksGroups) {
  OpticalConstraints loose, tight;
  tight.target_ber = 1e-15;
  EXPECT_LE(max_feasible_group_size(1024, tight),
            max_feasible_group_size(1024, loose));
}

TEST(Constraints, Validation) {
  OpticalConstraints c;
  EXPECT_THROW(max_feasible_group_size(1, c), InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
