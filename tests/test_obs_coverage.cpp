// Focused coverage for the observability layer: JSON escaping corner
// cases, counter ordering guarantees, and RunReport round-trip invariants
// for all three simulator backends.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

// ------------------------------------------------ JSON string escaping

TEST(ObsCoverage, EscapeHandlesQuotesAndBackslashes) {
  EXPECT_EQ(obs::ChromeTraceSink::escape("plain"), "plain");
  EXPECT_EQ(obs::ChromeTraceSink::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::ChromeTraceSink::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::ChromeTraceSink::escape("\\\""), "\\\\\\\"");
}

TEST(ObsCoverage, EscapeHandlesWhitespaceControls) {
  EXPECT_EQ(obs::ChromeTraceSink::escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(obs::ChromeTraceSink::escape("col1\tcol2"), "col1\\tcol2");
  EXPECT_EQ(obs::ChromeTraceSink::escape("cr\rlf\n"), "cr\\rlf\\n");
}

TEST(ObsCoverage, EscapeEncodesOtherControlBytes) {
  EXPECT_EQ(obs::ChromeTraceSink::escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::ChromeTraceSink::escape(std::string("\x1f", 1)), "\\u001f");
  // 0x20 and above pass through untouched (including UTF-8 multibyte).
  EXPECT_EQ(obs::ChromeTraceSink::escape(" ~"), " ~");
  EXPECT_EQ(obs::ChromeTraceSink::escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(ObsCoverage, EscapedSpanSurvivesSerialization) {
  obs::ChromeTraceSink sink("proc \"quoted\"\n");
  obs::TraceSpan span;
  span.name = "step\t0";
  span.category = "a\\b";
  span.args.push_back({"key\n", "value\""});
  sink.span(span);

  std::ostringstream out;
  sink.write(out);
  const std::string json = out.str();
  // No raw control bytes or unescaped quotes may survive inside strings.
  EXPECT_EQ(json.find("step\t0"), std::string::npos);
  EXPECT_NE(json.find("step\\t0"), std::string::npos);
  EXPECT_NE(json.find("proc \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"key\\n\":\"value\\\"\""), std::string::npos);
}

// -------------------------------------------------- counter guarantees

TEST(ObsCoverage, SnapshotIsNameOrderedRegardlessOfInsertion) {
  obs::Counters counters;
  counters.add("zeta", 1);
  counters.add("alpha", 2);
  counters.add("mid.dle", 3);
  counters.add("alpha.sub", 4);

  std::vector<std::string> names;
  for (const auto& [name, value] : counters.snapshot()) names.push_back(name);
  const std::vector<std::string> want{"alpha", "alpha.sub", "mid.dle", "zeta"};
  EXPECT_EQ(names, want);
}

TEST(ObsCoverage, ObserveMaxIsAHighWatermark) {
  obs::Counters counters;
  counters.observe_max("peak", 5);
  counters.observe_max("peak", 3);
  EXPECT_EQ(counters.value("peak"), 5u);
  counters.observe_max("peak", 9);
  EXPECT_EQ(counters.value("peak"), 9u);
}

TEST(ObsCoverage, MergePreservesOrderingAndSums) {
  obs::Counters a;
  a.add("shared", 2);
  a.add("only_a", 1);
  obs::Counters b;
  b.add("shared", 3);
  b.add("aaa_first", 7);
  a.merge(b);

  EXPECT_EQ(a.value("shared"), 5u);
  EXPECT_EQ(a.value("aaa_first"), 7u);
  EXPECT_EQ(a.snapshot().begin()->first, "aaa_first");
  EXPECT_EQ(a.size(), 3u);
}

// ---------------------------- RunReport round trips, all three backends

TEST(ObsCoverage, OpticalReportStepDurationsSumToTotal) {
  const optics::RingNetwork net(8, optics::OpticalConfig{}.with_wavelengths(4));
  const RunReport report = net.execute(coll::ring_allreduce(8, 64)).to_report();
  ASSERT_EQ(report.backend, "optical-ring");
  Seconds sum(0.0);
  for (const StepReport& s : report.step_reports) sum += s.duration;
  EXPECT_NEAR(sum.count(), report.total_time.count(),
              1e-12 * report.total_time.count());
  EXPECT_GE(report.rounds, report.steps);
}

TEST(ObsCoverage, FlowReportStartsAreContiguous) {
  const elec::FatTreeNetwork net(8, elec::ElectricalConfig{});
  const RunReport report = net.execute(coll::ring_allreduce(8, 64)).to_report();
  ASSERT_EQ(report.backend, "electrical-flow");
  Seconds cursor(0.0);
  for (const StepReport& s : report.step_reports) {
    EXPECT_EQ(s.start.count(), cursor.count());
    EXPECT_EQ(s.rounds, 1u);           // electrical steps never split
    EXPECT_EQ(s.wavelengths_used, 0u); // not an optical concept
    cursor += s.duration;
  }
  EXPECT_EQ(cursor.count(), report.total_time.count());
}

TEST(ObsCoverage, PacketReportKeepsEventCount) {
  const elec::PacketLevelNetwork net(8, elec::ElectricalConfig{});
  const elec::PacketRunResult result = net.execute(coll::ring_allreduce(8, 64));
  const RunReport report = result.to_report();
  ASSERT_EQ(report.backend, "electrical-packet");
  EXPECT_EQ(report.events_fired, result.events_fired);
  EXPECT_GT(report.events_fired, 0u);
  EXPECT_EQ(report.steps, result.steps);
  EXPECT_EQ(report.step_reports.size(), result.step_times.size());
}

TEST(ObsCoverage, ReportsFromAllBackendsShareTheSchedule) {
  const coll::Schedule sched = coll::ring_allreduce(8, 64);
  const optics::RingNetwork optical(8, optics::OpticalConfig{});
  const elec::FatTreeNetwork flow(8, elec::ElectricalConfig{});
  const elec::PacketLevelNetwork packet(8, elec::ElectricalConfig{});

  const RunReport a = optical.execute(sched).to_report();
  const RunReport b = flow.execute(sched).to_report();
  const RunReport c = packet.execute(sched).to_report();
  EXPECT_EQ(a.steps, sched.num_steps());
  EXPECT_EQ(b.steps, sched.num_steps());
  EXPECT_EQ(c.steps, sched.num_steps());
  // The optical backend carries the schedule's own labels; the electrical
  // backends synthesize positional ones.
  for (std::size_t i = 0; i < sched.num_steps(); ++i) {
    EXPECT_EQ(a.step_reports[i].label, sched.steps()[i].label);
    EXPECT_EQ(b.step_reports[i].label, "step " + std::to_string(i));
    EXPECT_EQ(c.step_reports[i].label, "step " + std::to_string(i));
  }
}

}  // namespace
}  // namespace wrht
