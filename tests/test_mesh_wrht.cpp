#include "wrht/core/mesh_wrht.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

using topo::Mesh;

TEST(MeshWrht, CorrectWithLineAllToAll) {
  Rng rng;
  const Mesh mesh(4, 8);  // line all-to-all over 4 roots needs 4 lambdas
  const coll::Schedule s = mesh_wrht_allreduce(mesh, 8, WrhtOptions{3, 8});
  EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(MeshWrht, CorrectWithRootedColumnFallback) {
  Rng rng;
  // 8 rows: line all-to-all needs 16 lambdas > 2 -> rooted fallback.
  const Mesh mesh(8, 6);
  const coll::Schedule s = mesh_wrht_allreduce(mesh, 8, WrhtOptions{3, 2});
  EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(MeshWrht, CorrectnessSweep) {
  Rng rng;
  for (std::uint32_t rows : {2u, 3u, 5u, 8u}) {
    for (std::uint32_t cols : {4u, 7u, 9u}) {
      for (std::uint32_t w : {2u, 8u, 64u}) {
        const Mesh mesh(rows, cols);
        const coll::Schedule s =
            mesh_wrht_allreduce(mesh, 6, WrhtOptions{3, w});
        EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9)
            << rows << "x" << cols << " w=" << w;
      }
    }
  }
}

TEST(MeshWrht, PlanMatchesSchedule) {
  for (std::uint32_t rows : {3u, 6u}) {
    for (std::uint32_t w : {2u, 8u, 64u}) {
      const Mesh mesh(rows, 9);
      const WrhtOptions opt{3, w};
      EXPECT_EQ(mesh_wrht_allreduce(mesh, 4, opt).num_steps(),
                mesh_wrht_plan(mesh, opt).total())
          << rows << " w=" << w;
    }
  }
}

TEST(MeshWrht, PlanUsesLineBoundForColumnCutoff) {
  // 6 rows: line all-to-all needs floor(6/2)*ceil(6/2) = 9 lambdas.
  const Mesh mesh(6, 9);
  EXPECT_TRUE(mesh_wrht_plan(mesh, WrhtOptions{3, 9}).column_all_to_all);
  EXPECT_FALSE(mesh_wrht_plan(mesh, WrhtOptions{3, 8}).column_all_to_all);
  // The ring bound ceil(36/8) = 5 would wrongly admit w = 8.
  EXPECT_LE(all_to_all_wavelengths(6), 8u);
}

TEST(MeshWrht, RowPhaseStaysInRows) {
  const Mesh mesh(3, 9);
  const WrhtOptions opt{3, 8};
  const coll::Schedule s = mesh_wrht_allreduce(mesh, 4, opt);
  const MeshWrhtPlan plan = mesh_wrht_plan(mesh, opt);
  for (std::uint32_t i = 0; i < plan.row_reduce_steps; ++i) {
    for (const auto& t : s.steps()[i].transfers) {
      EXPECT_EQ(mesh.row_of(t.src), mesh.row_of(t.dst));
    }
  }
}

TEST(MeshWrht, ColumnTransfersNeverWrap) {
  // Mesh lines have no wraparound: every column transfer stays between the
  // two row indices (trivially true for point-to-point transfers, but the
  // schedule must only ever pair nodes of the root column).
  const Mesh mesh(5, 9);
  const WrhtOptions opt{3, 64};
  const coll::Schedule s = mesh_wrht_allreduce(mesh, 4, opt);
  const MeshWrhtPlan plan = mesh_wrht_plan(mesh, opt);
  std::uint32_t root_col = UINT32_MAX;
  for (std::uint32_t i = plan.row_reduce_steps;
       i < plan.row_reduce_steps + plan.column_steps; ++i) {
    for (const auto& t : s.steps()[i].transfers) {
      EXPECT_EQ(mesh.col_of(t.src), mesh.col_of(t.dst));
      if (root_col == UINT32_MAX) root_col = mesh.col_of(t.src);
      EXPECT_EQ(mesh.col_of(t.src), root_col);
    }
  }
}

TEST(MeshWrht, Validation) {
  const Mesh mesh(3, 3);
  EXPECT_THROW(mesh_wrht_allreduce(mesh, 4, WrhtOptions{1, 4}),
               InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
