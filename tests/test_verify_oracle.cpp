#include "wrht/verify/oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/error.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht {
namespace {

using verify::OracleOptions;
using verify::OracleReport;

coll::AllreduceParams params_for(const std::string& algorithm,
                                 std::uint32_t n, std::size_t elements) {
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  p.group_size = 4;
  p.wavelengths = 64;
  if (algorithm == "ring" || algorithm == "hring" ||
      algorithm == "halving_doubling") {
    p.elements = std::max<std::size_t>(p.elements, n);
  }
  return p;
}

// --------------------------------------- every registered builder passes

TEST(VerifyOracle, ProvesEveryRegisteredAlgorithm) {
  core::register_wrht_algorithm();
  auto& registry = coll::Registry::instance();
  for (const std::string& name : registry.names()) {
    for (const std::uint32_t n : {2u, 8u, 13u, 32u}) {
      const coll::Schedule sched =
          registry.build(name, params_for(name, n, 96));
      const OracleReport report = verify::check_allreduce(sched);
      EXPECT_TRUE(report.ok())
          << name << " N=" << n << ":\n" << report.result.summary();
      EXPECT_TRUE(report.provenance_checked) << name << " N=" << n;
    }
  }
}

// ------------------------------------------------- corruption detection

/// Copies `src` with a hook that may edit each step's transfer list.
template <typename EditFn>
coll::Schedule mutate(const coll::Schedule& src, EditFn edit) {
  coll::Schedule out(src.algorithm(), src.num_nodes(), src.elements());
  for (std::size_t s = 0; s < src.num_steps(); ++s) {
    coll::Step& step = out.add_step(src.steps()[s].label);
    step.transfers = src.steps()[s].transfers;
    edit(s, step.transfers);
  }
  return out;
}

TEST(VerifyOracle, CatchesDroppedTransfer) {
  const coll::Schedule good = coll::ring_allreduce(8, 64);
  const coll::Schedule bad =
      mutate(good, [](std::size_t s, coll::TransferList& ts) {
        if (s == 2) ts.pop_back();
      });
  const OracleReport report = verify::check_allreduce(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.max_abs_error, 1e-9);
}

TEST(VerifyOracle, CatchesDuplicatedReduce) {
  const coll::Schedule good = coll::ring_allreduce(8, 64);
  const coll::Schedule bad =
      mutate(good, [](std::size_t s, coll::TransferList& ts) {
        // Re-delivering a reduce double-counts its contributions; with
        // snapshot semantics the duplicate lands in the same step.
        if (s == 0) ts.push_back(ts.front());
      });
  const OracleReport report = verify::check_allreduce(bad);
  EXPECT_FALSE(report.ok());
  // The exact provenance proof names the over-counted contribution.
  bool provenance_finding = false;
  for (const verify::Finding& f : report.result.findings()) {
    provenance_finding |= f.check == "oracle.allreduce.provenance";
  }
  EXPECT_TRUE(provenance_finding) << report.result.summary();
}

TEST(VerifyOracle, CatchesReduceTurnedIntoCopy) {
  const coll::Schedule good = coll::ring_allreduce(8, 64);
  const coll::Schedule bad =
      mutate(good, [](std::size_t s, coll::TransferList& ts) {
        if (s == 0) ts.front().kind = coll::TransferKind::kCopy;
      });
  EXPECT_FALSE(verify::check_allreduce(bad).ok());
}

// ------------------------------------- reduce / broadcast discrimination

TEST(VerifyOracle, ReduceScheduleIsNotAnAllreduce) {
  const core::WrhtRootedSchedule reduce =
      core::wrht_reduce(16, 64, core::WrhtOptions{4, 64});
  EXPECT_FALSE(verify::check_allreduce(reduce.schedule).ok());
  EXPECT_TRUE(
      verify::check_reduce(reduce.schedule, reduce.root).ok());
  // Only the hierarchy root holds the sum.
  for (std::uint32_t node = 0; node < 16; ++node) {
    if (node == reduce.root) continue;
    EXPECT_FALSE(verify::check_reduce(reduce.schedule, node).ok())
        << "node " << node << " should not hold the global sum";
  }
}

TEST(VerifyOracle, BroadcastScheduleProvesBroadcast) {
  const core::WrhtRootedSchedule bcast =
      core::wrht_broadcast(16, 64, core::WrhtOptions{4, 64});
  EXPECT_TRUE(verify::check_broadcast(bcast.schedule, bcast.root).ok());
  EXPECT_FALSE(verify::check_allreduce(bcast.schedule).ok());
}

TEST(VerifyOracle, RootOutOfRangeThrows) {
  const core::WrhtRootedSchedule reduce =
      core::wrht_reduce(8, 16, core::WrhtOptions{2, 64});
  EXPECT_THROW(static_cast<void>(verify::check_reduce(reduce.schedule, 8)),
               InvalidArgument);
}

// -------------------------------------------------- provenance gating

TEST(VerifyOracle, CellLimitDisablesProvenanceButKeepsNumeric) {
  const coll::Schedule sched = coll::ring_allreduce(8, 64);
  OracleOptions options;
  options.provenance_cell_limit = 8;  // 8 * 8 * 64 cells blow way past this
  const OracleReport report = verify::check_allreduce(sched, options);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.provenance_checked);
}

TEST(VerifyOracle, DeterministicInSeed) {
  const coll::Schedule good = coll::ring_allreduce(8, 64);
  const coll::Schedule bad =
      mutate(good, [](std::size_t s, coll::TransferList& ts) {
        if (s == 1) ts.pop_back();
      });
  const OracleReport a = verify::check_allreduce(bad);
  const OracleReport b = verify::check_allreduce(bad);
  EXPECT_EQ(a.max_abs_error, b.max_abs_error);
  EXPECT_EQ(a.worst_node, b.worst_node);
  EXPECT_EQ(a.worst_element, b.worst_element);
}

}  // namespace
}  // namespace wrht
