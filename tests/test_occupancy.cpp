// Invariants of the occupancy sampler and of what the four engines record
// into it: per-resource timelines never overlap, busy time never exceeds
// the run's wall clock, and the derived per-step breakdown tiles each
// step's duration exactly. The thread-count test pins the determinism
// contract: utilization analytics through exp::SweepRunner are identical
// regardless of WRHT_SWEEP_THREADS.
#include "wrht/obs/occupancy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/obs/analysis.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/torus_network.hpp"

namespace wrht::obs {
namespace {

constexpr OccCategory kTx = OccCategory::kTransmission;
constexpr OccCategory kRetune = OccCategory::kReconfiguration;

// ------------------------------------------------------- sampler basics

TEST(OccupancySampler, ResourceHandlesAreDenseAndDeduplicated) {
  OccupancySampler s;
  const auto a = s.resource("cw/w0");
  const auto b = s.resource("ccw/w0");
  EXPECT_EQ(s.resource("cw/w0"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(s.num_resources(), 2u);
  EXPECT_EQ(s.name(a), "cw/w0");
  EXPECT_EQ(s.name(b), "ccw/w0");
}

TEST(OccupancySampler, DropsNonPositiveDurations) {
  OccupancySampler s;
  const auto r = s.resource("r");
  s.record(r, 0, Seconds(1.0), Seconds(0.0), kTx);
  s.record(r, 0, Seconds(1.0), Seconds(-1e-9), kTx);
  EXPECT_TRUE(s.intervals(r).empty());
}

TEST(OccupancySampler, CoalescesBackToBackSlices) {
  OccupancySampler s;
  const auto r = s.resource("r");
  // Back-to-back same step/category/concurrency: one interval.
  s.record(r, 0, Seconds(0.0), Seconds(1e-6), kTx);
  s.record(r, 0, Seconds(1e-6), Seconds(2e-6), kTx);
  ASSERT_EQ(s.intervals(r).size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals(r)[0].duration.count(), 3e-6);
  // Category change breaks the merge even when contiguous.
  s.record(r, 0, Seconds(3e-6), Seconds(1e-6), kRetune);
  EXPECT_EQ(s.intervals(r).size(), 2u);
  // A gap breaks it too.
  s.record(r, 0, Seconds(5e-6), Seconds(1e-6), kRetune);
  EXPECT_EQ(s.intervals(r).size(), 3u);
}

TEST(OccupancySampler, RecordedSumsPerCategory) {
  OccupancySampler s;
  const auto r = s.resource("r");
  s.record(r, 0, Seconds(0.0), Seconds(1e-6), kTx);
  s.record(r, 1, Seconds(2e-6), Seconds(3e-6), kRetune);
  EXPECT_DOUBLE_EQ(s.recorded(r, kTx).count(), 1e-6);
  EXPECT_DOUBLE_EQ(s.recorded(r, kRetune).count(), 3e-6);
  EXPECT_DOUBLE_EQ(s.recorded(r).count(), 4e-6);
  s.clear();
  EXPECT_EQ(s.num_resources(), 0u);
}

// ------------------------------------------- engine-recorded invariants

/// Sorted-by-start intervals of `ref` must tile without overlap, and the
/// busy total cannot exceed the run's wall clock (a resource is one
/// physical channel; spatial reuse raises `concurrency`, not busy time).
void expect_valid_timelines(const OccupancySampler& sampler,
                            double total_time) {
  ASSERT_GT(sampler.num_resources(), 0u);
  const double eps = 1e-12 * (1.0 + total_time);
  for (OccupancySampler::ResourceRef ref = 0; ref < sampler.num_resources();
       ++ref) {
    std::vector<OccInterval> sorted = sampler.intervals(ref);
    std::sort(sorted.begin(), sorted.end(),
              [](const OccInterval& a, const OccInterval& b) {
                return a.start.count() < b.start.count();
              });
    double cursor = 0.0;
    double busy = 0.0;
    for (const OccInterval& iv : sorted) {
      EXPECT_GE(iv.start.count(), cursor - eps)
          << sampler.name(ref) << ": overlapping intervals";
      EXPECT_GT(iv.duration.count(), 0.0);
      EXPECT_GE(iv.concurrency, 1u);
      cursor = iv.start.count() + iv.duration.count();
      busy += iv.duration.count();
    }
    EXPECT_LE(cursor, total_time + eps) << sampler.name(ref);
    EXPECT_LE(busy, total_time + eps)
        << sampler.name(ref) << ": busier than the wall clock";
  }
}

/// The analysis identities: every step's breakdown sums to the step's
/// duration, the run breakdown sums to total_time, and the critical path
/// tiles the run.
void expect_accounting_identities(const RunReport& report,
                                  const UtilizationAnalysis& analysis) {
  const double eps = 1e-9;
  for (const StepReport& step : report.step_reports) {
    EXPECT_NEAR(step.breakdown.total().count(), step.duration.count(), eps)
        << step.label;
  }
  EXPECT_NEAR(report.breakdown.total().count(), report.total_time.count(),
              eps);
  EXPECT_NEAR(analysis.critical_path_length.count(),
              report.total_time.count(), eps);
  EXPECT_GE(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0);
  EXPECT_EQ(report.resources_observed, analysis.resources.size());
}

TEST(EngineOccupancy, OpticalRingRecordsValidTimelines) {
  const coll::Schedule sched = coll::ring_allreduce(8, 800);
  const optics::RingNetwork net(8,
                                optics::OpticalConfig{}.with_wavelengths(8));
  OccupancySampler sampler;
  Probe probe;
  probe.occupancy = &sampler;
  RunReport report = net.execute(sched, probe).to_report();
  expect_valid_timelines(sampler, report.total_time.count());
  expect_accounting_identities(report, attach_utilization(report, sampler));
}

TEST(EngineOccupancy, OpticalRingMultiRoundWrht) {
  // Few wavelengths force multi-round splitting, so the sampler sees
  // reconfiguration, O/E/O and straggler intervals, not just payload.
  const auto plan = core::plan_wrht(32, 4);
  const coll::Schedule sched =
      core::wrht_allreduce(32, 6400, core::WrhtOptions{plan.group_size, 4});
  const optics::RingNetwork net(
      32, optics::OpticalConfig{}.with_wavelengths(4).with_validate_node_capacity(
              false));
  OccupancySampler sampler;
  Probe probe;
  probe.occupancy = &sampler;
  RunReport report = net.execute(sched, probe).to_report();
  expect_valid_timelines(sampler, report.total_time.count());
  expect_accounting_identities(report, attach_utilization(report, sampler));
}

TEST(EngineOccupancy, OpticalTorusRecordsValidTimelines) {
  const topo::Torus torus(4, 8);
  const auto sched =
      core::torus_wrht_allreduce(torus, 1000, core::WrhtOptions{3, 8});
  const optics::TorusNetwork net(torus,
                                 optics::OpticalConfig{}.with_wavelengths(8));
  OccupancySampler sampler;
  Probe probe;
  probe.occupancy = &sampler;
  RunReport report = net.execute(sched, probe).to_report();
  expect_valid_timelines(sampler, report.total_time.count());
  expect_accounting_identities(report, attach_utilization(report, sampler));
}

TEST(EngineOccupancy, ElectricalFlowRecordsValidTimelines) {
  const coll::Schedule sched = coll::ring_allreduce(8, 800);
  const elec::FatTreeNetwork net(8, elec::ElectricalConfig{});
  OccupancySampler sampler;
  Probe probe;
  probe.occupancy = &sampler;
  RunReport report = net.execute(sched, probe).to_report();
  expect_valid_timelines(sampler, report.total_time.count());
  expect_accounting_identities(report, attach_utilization(report, sampler));
}

TEST(EngineOccupancy, ElectricalPacketRecordsValidTimelines) {
  const coll::Schedule sched = coll::ring_allreduce(8, 800);
  const elec::PacketLevelNetwork net(8, elec::ElectricalConfig{});
  OccupancySampler sampler;
  Probe probe;
  probe.occupancy = &sampler;
  RunReport report = net.execute(sched, probe).to_report();
  expect_valid_timelines(sampler, report.total_time.count());
  expect_accounting_identities(report, attach_utilization(report, sampler));
}

// --------------------------------------------- sweep-level determinism

TEST(EngineOccupancy, UtilizationIdenticalAcrossSweepThreadCounts) {
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"tiny", 4096}};
  spec.nodes = {16};
  spec.wavelengths = {4};
  spec.series = {exp::Series{.name = "ring", .algorithm = "ring"},
                 exp::Series{.name = "wrht", .algorithm = "wrht"},
                 exp::Series{.name = "flow", .algorithm = "ring",
                             .backend = "electrical-flow"}};
  spec.config.validate_node_capacity = false;
  spec.config.collect_utilization = true;

  const auto serial = exp::SweepRunner(1).run(spec);
  const auto parallel = exp::SweepRunner(4).run(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const RunReport& a = serial[i].report;
    const RunReport& b = parallel[i].report;
    EXPECT_GT(a.resources_observed, 0u) << serial[i].point.series;
    EXPECT_EQ(a.utilization, b.utilization) << serial[i].point.series;
    EXPECT_EQ(a.resources_observed, b.resources_observed);
    EXPECT_EQ(a.breakdown.transmission.count(),
              b.breakdown.transmission.count());
    EXPECT_EQ(a.breakdown.reconfiguration.count(),
              b.breakdown.reconfiguration.count());
    EXPECT_EQ(a.breakdown.idle.count(), b.breakdown.idle.count());
  }
}

}  // namespace
}  // namespace wrht::obs
