#include "wrht/obs/trace_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wrht/common/error.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht::obs {
namespace {

// ---------------------------------------------------------------- Counters

TEST(Counters, AddCreatesAtZeroAndAccumulates) {
  Counters c;
  EXPECT_EQ(c.value("x"), 0u);
  EXPECT_FALSE(c.contains("x"));
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.value("x"), 5u);
  EXPECT_TRUE(c.contains("x"));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Counters, ObserveMaxIsHighWatermark) {
  Counters c;
  c.observe_max("peak", 3);
  c.observe_max("peak", 7);
  c.observe_max("peak", 5);
  EXPECT_EQ(c.value("peak"), 7u);
}

TEST(Counters, MergeAddsEveryCounter) {
  Counters a, b;
  a.add("shared", 2);
  a.add("only_a", 1);
  b.add("shared", 3);
  b.add("only_b", 9);
  a.merge(b);
  EXPECT_EQ(a.value("shared"), 5u);
  EXPECT_EQ(a.value("only_a"), 1u);
  EXPECT_EQ(a.value("only_b"), 9u);
}

TEST(Counters, SnapshotIsNameOrdered) {
  Counters c;
  c.add("zebra");
  c.add("apple");
  c.add("mango");
  std::string prev;
  for (const auto& [name, value] : c.snapshot()) {
    EXPECT_LT(prev, name);
    prev = name;
  }
  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

TEST(Counters, WriteCsv) {
  Counters c;
  c.add("b.second", 2);
  c.add("a.first", 1);
  const std::string path = testing::TempDir() + "counters_test.csv";
  c.write_csv(path);
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "counter,value\na.first,1\nb.second,2\n");
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- Probe

TEST(Probe, EmptyProbeIsInactiveAndSafe) {
  const Probe probe;
  EXPECT_FALSE(probe.active());
  // All emission paths must be no-ops, not crashes.
  probe.count("nope");
  probe.count_max("nope", 3);
  probe.span(TraceSpan{});
}

TEST(Probe, RoutesToSinkAndStampsTrack) {
  MemoryTraceSink sink;
  Counters counters;
  const Probe probe{&sink, &counters, 7};
  EXPECT_TRUE(probe.active());

  TraceSpan s;
  s.name = "work";
  s.track = 99;  // probe overrides with its own track
  probe.span(s);
  probe.count("n", 2);

  ASSERT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.spans()[0].name, "work");
  EXPECT_EQ(sink.spans()[0].track, 7u);
  EXPECT_EQ(counters.value("n"), 2u);
}

TEST(Probe, CountersOnlyProbeEmitsNoSpans) {
  Counters counters;
  const Probe probe{nullptr, &counters, 0};
  EXPECT_TRUE(probe.active());
  probe.span(TraceSpan{});  // dropped
  probe.count("k");
  EXPECT_EQ(counters.value("k"), 1u);
}

// ------------------------------------------------------- JSON string escape

TEST(ChromeTrace, EscapesJsonMetacharacters) {
  EXPECT_EQ(ChromeTraceSink::escape("plain"), "plain");
  EXPECT_EQ(ChromeTraceSink::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ChromeTraceSink::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(ChromeTraceSink::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(ChromeTraceSink::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ------------------------------------------------- golden Chrome trace JSON

/// Hand-fed spans with clean times: the emitted JSON must match this golden
/// byte for byte (fixed key order, %.6f microsecond timestamps, metadata
/// before spans). chrome://tracing and Perfetto both accept this shape.
TEST(ChromeTrace, GoldenOutputForHandFedSpans) {
  ChromeTraceSink sink("golden");
  sink.set_track_name(0, "optical ring");

  TraceSpan step;
  step.name = "exchange";
  step.category = "step";
  step.start = Seconds(0.0);
  step.duration = Seconds(5e-6);
  step.args = {{"rounds", "1"}};
  sink.span(step);

  TraceSpan round;
  round.name = "round 0";
  round.category = "round";
  round.start = Seconds(1e-6);
  round.duration = Seconds(4e-6);
  round.track = 0;
  sink.span(round);

  // Counter samples render as "C" events after the spans; whole values
  // print as integers, fractional ones via %g.
  sink.counter(CounterSample{"wavelengths in use", Seconds(1e-6), 2.0, 0});
  sink.counter(CounterSample{"load", Seconds(2e-6), 0.5, 0});

  std::ostringstream out;
  sink.write(out);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"golden\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"optical ring\"}},\n"
      "{\"name\":\"exchange\",\"cat\":\"step\",\"ph\":\"X\",\"ts\":0.000000,"
      "\"dur\":5.000000,\"pid\":0,\"tid\":0,\"args\":{\"rounds\":\"1\"}},\n"
      "{\"name\":\"round 0\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":1.000000,"
      "\"dur\":4.000000,\"pid\":0,\"tid\":0,\"args\":{}},\n"
      "{\"name\":\"wavelengths in use\",\"ph\":\"C\",\"ts\":1.000000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":2}},\n"
      "{\"name\":\"load\",\"ph\":\"C\",\"ts\":2.000000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":0.5}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.counter_count(), 2u);
}

/// End-to-end golden: a deterministic 2-node exchange through the optical
/// simulator with round numbers (1 GB/s lane, 1 us reconfiguration, zero
/// O/E/O) so every timestamp is exact. This is the same pipeline the
/// trace_viewer example runs.
TEST(ChromeTrace, GoldenOutputForOpticalRun) {
  coll::Schedule sched("pair", 2, 1000);
  coll::Step& step = sched.add_step("exchange");
  step.transfers.push_back({0, 1, 0, 1000, coll::TransferKind::kReduce, {}});
  step.transfers.push_back({1, 0, 0, 1000, coll::TransferKind::kReduce, {}});

  const optics::RingNetwork net(2, optics::OpticalConfig{}
                                       .with_wavelengths(4)
                                       .with_wavelength_rate(BitsPerSecond(1e9))
                                       .with_mrr_reconfig_delay(Seconds(1e-6))
                                       .with_oeo_delay(Seconds(0.0)));

  ChromeTraceSink sink("wrht");
  sink.set_track_name(0, "optical");
  const auto result = net.execute(sched, Probe{&sink, nullptr, 0});
  EXPECT_DOUBLE_EQ(result.total_time.count(), 5e-6);

  std::ostringstream out;
  sink.write(out);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"wrht\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"optical\"}},\n"
      "{\"name\":\"exchange\",\"cat\":\"step\",\"ph\":\"X\",\"ts\":0.000000,"
      "\"dur\":5.000000,\"pid\":0,\"tid\":0,\"args\":{\"rounds\":\"1\","
      "\"wavelengths\":\"1\",\"max_transfer_elements\":\"1000\"}},\n"
      "{\"name\":\"round 0\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":0.000000,"
      "\"dur\":5.000000,\"pid\":0,\"tid\":0,\"args\":{"
      "\"serialization_us\":\"4.000000\",\"wavelengths\":\"1\"}},\n"
      "{\"name\":\"wavelengths in use\",\"ph\":\"C\",\"ts\":0.000000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":1}},\n"
      "{\"name\":\"wavelengths in use\",\"ph\":\"C\",\"ts\":5.000000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"value\":0}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(ChromeTrace, WriteFileRoundTripsAndBadPathThrows) {
  ChromeTraceSink sink("file-test");
  TraceSpan s;
  s.name = "only";
  s.category = "c";
  sink.span(s);

  const std::string path = testing::TempDir() + "trace_test.trace.json";
  sink.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream got;
  got << in.rdbuf();
  std::ostringstream direct;
  sink.write(direct);
  EXPECT_EQ(got.str(), direct.str());
  std::remove(path.c_str());

  EXPECT_THROW(sink.write_file("/no/such/dir/x.json"), Error);
}

/// Step spans must contain their round child spans in time, on the same
/// track — that containment is what chrome://tracing renders as nesting.
TEST(ChromeTrace, RoundSpansNestInsideStepSpans) {
  // 8 transfers from distinct sources into node 0: a 4-wavelength fiber
  // must split the step into rounds.
  coll::Schedule sched("fan-in", 16, 1600);
  coll::Step& step = sched.add_step("fan-in");
  for (std::uint32_t src = 1; src <= 8; ++src) {
    step.transfers.push_back(
        {src, 0, 0, 100, coll::TransferKind::kReduce, {}});
  }

  const optics::RingNetwork net(
      16, optics::OpticalConfig{}.with_wavelengths(4).with_validate_node_capacity(
              false));
  MemoryTraceSink sink;
  const auto result = net.execute(sched, Probe{&sink, nullptr, 0});
  ASSERT_GT(result.total_rounds, 1u);

  const TraceSpan* parent = nullptr;
  std::size_t rounds_seen = 0;
  for (const TraceSpan& s : sink.spans()) {
    if (s.category == "step") {
      parent = &s;
      continue;
    }
    ASSERT_NE(parent, nullptr);
    ASSERT_EQ(s.category, "round");
    ++rounds_seen;
    const double eps = 1e-15;
    EXPECT_GE(s.start.count(), parent->start.count() - eps);
    EXPECT_LE(s.start.count() + s.duration.count(),
              parent->start.count() + parent->duration.count() + eps);
    EXPECT_EQ(s.track, parent->track);
  }
  EXPECT_EQ(rounds_seen, result.total_rounds);
}

}  // namespace
}  // namespace wrht::obs
