// Regression tests for the grouping edge cases the fuzzer motivated:
// ragged node counts (N not divisible by m) must produce balanced groups so
// representatives stay near-equally spaced, and the degenerate m* = 2
// all-to-all ending must still prove correct and fit its wavelength bound.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "wrht/core/grouping.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/verify/verify.hpp"

namespace wrht {
namespace {

std::vector<std::size_t> level_sizes(const core::Level& level) {
  std::vector<std::size_t> sizes;
  for (const core::Group& g : level.groups) sizes.push_back(g.members.size());
  return sizes;
}

// ------------------------------------------------ ragged N, balanced split

TEST(GroupingEdgeCases, RaggedCountsSplitBalanced) {
  // 10 nodes in groups of up to 4: ceil(10/4) = 3 groups. A fixed-stride
  // split would produce {4, 4, 2} and leave the last representative badly
  // off-centre; the balanced split spreads the slack.
  const core::Hierarchy h = core::build_hierarchy(10, 4, 1, false);
  ASSERT_FALSE(h.levels.empty());
  EXPECT_EQ(level_sizes(h.levels.front()), (std::vector<std::size_t>{4, 3, 3}));

  // 11 nodes keep the documented {4, 4, 3} shape (only one group short).
  const core::Hierarchy h11 = core::build_hierarchy(11, 4, 1, false);
  EXPECT_EQ(level_sizes(h11.levels.front()),
            (std::vector<std::size_t>{4, 4, 3}));
}

TEST(GroupingEdgeCases, BalancePropertyHoldsAcrossSweep) {
  for (std::uint32_t n = 2; n <= 97; ++n) {
    for (const std::uint32_t m : {2u, 3u, 4u, 7u, 11u}) {
      const verify::CheckResult result = verify::check_wrht_hierarchy(n, m, 4);
      EXPECT_TRUE(result.ok())
          << "N=" << n << " m=" << m << ":\n" << result.summary();
    }
  }
}

TEST(GroupingEdgeCases, RaggedConfigsStillProveAllreduce) {
  for (const auto& [n, m] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {7, 3}, {10, 4}, {11, 4}, {13, 5}, {23, 6}, {46, 7}}) {
    const coll::Schedule sched =
        core::wrht_allreduce(n, 32, core::WrhtOptions{m, 64});
    const verify::OracleReport oracle = verify::check_allreduce(sched);
    EXPECT_TRUE(oracle.ok())
        << "N=" << n << " m=" << m << ":\n" << oracle.result.summary();
    EXPECT_TRUE(oracle.provenance_checked);
  }
}

// --------------------------------------------- degenerate m* = 2 ending

TEST(GroupingEdgeCases, TwoRepresentativeAllToAllEnding) {
  // N=4, m=2, w=1: one grouping level leaves two representatives and
  // ceil(2^2/8) = 1 <= w, so the reduce stage ends in a two-party exchange.
  const core::Hierarchy h = core::build_hierarchy(4, 2, 1);
  EXPECT_TRUE(h.final_all_to_all);
  ASSERT_EQ(h.final_reps.size(), 2u);

  const coll::Schedule sched =
      core::wrht_allreduce(4, 16, core::WrhtOptions{2, 1});
  const verify::OracleReport oracle = verify::check_allreduce(sched);
  EXPECT_TRUE(oracle.ok()) << oracle.result.summary();

  const verify::CheckResult all = verify::check_wrht_configuration(4, 2, 1, 16);
  EXPECT_TRUE(all.ok()) << all.summary();
}

TEST(GroupingEdgeCases, AntipodalRepresentativesFitTheBound) {
  // N=8, m=2 leaves 4 equally spaced representatives whose all-to-all
  // includes antipodal pairs; the complementary-arc routing must carry the
  // step in a single round within ceil(4^2/8) = 2 wavelengths.
  for (const std::uint32_t w : {2u, 8u, 64u}) {
    const core::WrhtStepPlan plan = core::wrht_plan(8, 2, w);
    const coll::Schedule sched =
        core::wrht_allreduce(8, 16, core::WrhtOptions{2, w});
    const verify::CheckResult result =
        verify::check_wrht_wavelength_discipline(sched, 8, 2, w);
    EXPECT_TRUE(result.ok()) << "w=" << w << ":\n" << result.summary();
    // The analytic requirement never exceeds the budget that chose the
    // ending (w=2 folds to 4 reps needing ceil(16/8)=2; larger budgets
    // take the immediate 8-node all-to-all needing ceil(64/8)=8).
    EXPECT_LE(plan.wavelengths_required, w) << "w=" << w;
  }
}

TEST(GroupingEdgeCases, DegenerateEndingsAcrossWavelengthBudgets) {
  // Sweep budgets that flip configurations between root-collapse and
  // all-to-all endings; every variant must prove correct.
  for (const std::uint32_t n : {4u, 6u, 8u, 12u, 18u}) {
    for (const std::uint32_t w : {1u, 2u, 3u, 8u}) {
      const verify::CheckResult result =
          verify::check_wrht_configuration(n, 2, w, 24);
      EXPECT_TRUE(result.ok())
          << "N=" << n << " w=" << w << ":\n" << result.summary();
    }
  }
}

}  // namespace
}  // namespace wrht
