#include "wrht/topo/ring.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::topo {
namespace {

TEST(Ring, Distances) {
  const Ring ring(10);
  EXPECT_EQ(ring.cw_distance(0, 3), 3u);
  EXPECT_EQ(ring.cw_distance(3, 0), 7u);
  EXPECT_EQ(ring.ccw_distance(0, 3), 7u);
  EXPECT_EQ(ring.ccw_distance(3, 0), 3u);
  EXPECT_EQ(ring.cw_distance(5, 5), 0u);
  EXPECT_EQ(ring.distance(0, 3), 3u);
  EXPECT_EQ(ring.distance(0, 7), 3u);
  EXPECT_EQ(ring.distance(0, 5), 5u);
}

TEST(Ring, ShortestDirectionAndTies) {
  const Ring ring(10);
  EXPECT_EQ(ring.shortest_direction(0, 3), Direction::kClockwise);
  EXPECT_EQ(ring.shortest_direction(0, 7), Direction::kCounterClockwise);
  // Antipodal tie goes clockwise.
  EXPECT_EQ(ring.shortest_direction(0, 5), Direction::kClockwise);
}

TEST(Ring, DistanceAlong) {
  const Ring ring(8);
  EXPECT_EQ(ring.distance_along(1, 5, Direction::kClockwise), 4u);
  EXPECT_EQ(ring.distance_along(1, 5, Direction::kCounterClockwise), 4u);
  EXPECT_EQ(ring.distance_along(7, 1, Direction::kClockwise), 2u);
  EXPECT_EQ(ring.distance_along(7, 1, Direction::kCounterClockwise), 6u);
}

TEST(Ring, Advance) {
  const Ring ring(6);
  EXPECT_EQ(ring.advance(4, 3, Direction::kClockwise), 1u);
  EXPECT_EQ(ring.advance(1, 3, Direction::kCounterClockwise), 4u);
  EXPECT_EQ(ring.advance(2, 0, Direction::kClockwise), 2u);
  EXPECT_EQ(ring.advance(2, 12, Direction::kClockwise), 2u);  // wraps
}

TEST(Ring, ClockwiseSegments) {
  const Ring ring(6);
  // 4 -> 1 clockwise crosses segments 4, 5, 0.
  EXPECT_EQ(ring.segments(4, 1, Direction::kClockwise),
            (std::vector<std::uint32_t>{4, 5, 0}));
  EXPECT_EQ(ring.segments(0, 2, Direction::kClockwise),
            (std::vector<std::uint32_t>{0, 1}));
}

TEST(Ring, CounterClockwiseSegments) {
  const Ring ring(6);
  // 1 -> 4 counterclockwise crosses segments 0, 5, 4 (in travel order).
  EXPECT_EQ(ring.segments(1, 4, Direction::kCounterClockwise),
            (std::vector<std::uint32_t>{0, 5, 4}));
  // CW and CCW between the same endpoints use complementary segments.
  EXPECT_EQ(ring.segments(2, 0, Direction::kCounterClockwise),
            (std::vector<std::uint32_t>{1, 0}));
}

TEST(Ring, SegmentsEmptyForSelf) {
  const Ring ring(5);
  EXPECT_TRUE(ring.segments(3, 3, Direction::kClockwise).empty());
}

TEST(Ring, DistanceSymmetryProperty) {
  const Ring ring(17);
  for (NodeId a = 0; a < 17; ++a) {
    for (NodeId b = 0; b < 17; ++b) {
      EXPECT_EQ(ring.cw_distance(a, b), ring.ccw_distance(b, a));
      EXPECT_EQ((ring.cw_distance(a, b) + ring.ccw_distance(a, b)) % 17, 0u);
    }
  }
}

TEST(Ring, Validation) {
  EXPECT_THROW(Ring(1), InvalidArgument);
  const Ring ring(4);
  EXPECT_THROW(ring.cw_distance(0, 4), InvalidArgument);
  EXPECT_THROW(ring.advance(4, 1, Direction::kClockwise), InvalidArgument);
}

TEST(Ring, Opposite) {
  EXPECT_EQ(opposite(Direction::kClockwise), Direction::kCounterClockwise);
  EXPECT_EQ(opposite(Direction::kCounterClockwise), Direction::kClockwise);
}

}  // namespace
}  // namespace wrht::topo
