#include "wrht/optical/rwa.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"
#include "wrht/core/grouping.hpp"

namespace wrht::optics {
namespace {

using coll::Transfer;
using coll::TransferKind;
using topo::Direction;
using topo::Ring;

Transfer t(topo::NodeId src, topo::NodeId dst,
           std::optional<Direction> dir = std::nullopt) {
  return Transfer{src, dst, 0, 1, TransferKind::kReduce, dir};
}

/// Asserts the assignment is conflict-free: same (direction, fiber,
/// wavelength) lightpaths must not overlap.
void expect_conflict_free(const Ring& ring, const std::vector<Lightpath>& ps) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = i + 1; j < ps.size(); ++j) {
      const auto& a = ps[i];
      const auto& b = ps[j];
      if (a.direction != b.direction || a.fiber != b.fiber ||
          a.wavelength != b.wavelength) {
        continue;
      }
      EXPECT_FALSE(spans_overlap({a.first_segment, a.hops},
                                 {b.first_segment, b.hops}, ring.size()))
          << "lightpaths " << i << " and " << j << " conflict";
    }
  }
}

TEST(Rwa, DisjointNeighbourTransfersShareOneWavelength) {
  // Ring All-reduce step: every node to its clockwise neighbour.
  const Ring ring(8);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 8; ++i) {
    step.push_back(t(i, (i + 1) % 8, Direction::kClockwise));
  }
  const RwaResult res = assign_wavelengths(ring, step, RwaOptions{64});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.wavelengths_used, 1u);
  expect_conflict_free(ring, res.paths);
}

TEST(Rwa, NestedPathsNeedDistinctWavelengths) {
  // 0->4, 1->4, 2->4, 3->4 clockwise: all overlap near node 4.
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 4; ++i) {
    step.push_back(t(i, 4, Direction::kClockwise));
  }
  const RwaResult res = assign_wavelengths(ring, step, RwaOptions{64});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.wavelengths_used, 4u);
  expect_conflict_free(ring, res.paths);
}

TEST(Rwa, TwoDirectionsReuseWavelengths) {
  // WRHT group: members both sides of rep 4, same wavelengths per side.
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i : {2u, 3u}) step.push_back(t(i, 4, Direction::kClockwise));
  for (topo::NodeId i : {5u, 6u}) {
    step.push_back(t(i, 4, Direction::kCounterClockwise));
  }
  const RwaResult res = assign_wavelengths(ring, step, RwaOptions{64});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.wavelengths_used, 2u);  // floor(m/2) with m=5
  expect_conflict_free(ring, res.paths);
}

TEST(Rwa, HintRespected) {
  const Ring ring(10);
  const std::vector<Transfer> step = {t(0, 3, Direction::kCounterClockwise)};
  const RwaResult res = assign_wavelengths(ring, step, RwaOptions{4});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.paths[0].direction, Direction::kCounterClockwise);
  EXPECT_EQ(res.paths[0].hops, 7u);
}

TEST(Rwa, ShortestDirectionChosenWithoutHint) {
  const Ring ring(10);
  const RwaResult cw = assign_wavelengths(ring, std::vector<Transfer>{t(0, 3)}, RwaOptions{4});
  ASSERT_TRUE(cw.ok);
  EXPECT_EQ(cw.paths[0].direction, Direction::kClockwise);
  const RwaResult ccw = assign_wavelengths(ring, std::vector<Transfer>{t(0, 8)}, RwaOptions{4});
  ASSERT_TRUE(ccw.ok);
  EXPECT_EQ(ccw.paths[0].direction, Direction::kCounterClockwise);
}

TEST(Rwa, FailsWhenBudgetExceeded) {
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 4; ++i) {
    step.push_back(t(i, 4, Direction::kClockwise));
  }
  const RwaResult res = assign_wavelengths(ring, step, RwaOptions{3});
  EXPECT_FALSE(res.ok);
}

TEST(Rwa, SecondFiberDoublesCapacity) {
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 4; ++i) {
    step.push_back(t(i, 4, Direction::kClockwise));
  }
  RwaOptions opt{2, 2, RwaPolicy::kFirstFit};
  const RwaResult res = assign_wavelengths(ring, step, opt);
  ASSERT_TRUE(res.ok);
  EXPECT_LE(res.wavelengths_used, 2u);
}

TEST(Rwa, RandomFitIsConflictFreeAndSeedStable) {
  const Ring ring(32);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 8; ++i) {
    step.push_back(t(i, 8, Direction::kClockwise));
  }
  RwaOptions opt{64, 1, RwaPolicy::kRandomFit};
  Rng rng_a(7), rng_b(7);
  const RwaResult a = assign_wavelengths(ring, step, opt, &rng_a);
  const RwaResult b = assign_wavelengths(ring, step, opt, &rng_b);
  ASSERT_TRUE(a.ok);
  expect_conflict_free(ring, a.paths);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].wavelength, b.paths[i].wavelength);
  }
}

TEST(Rwa, RandomFitRequiresRng) {
  const Ring ring(8);
  RwaOptions opt{4, 1, RwaPolicy::kRandomFit};
  EXPECT_THROW(assign_wavelengths(ring, std::vector<Transfer>{t(0, 1)}, opt), InvalidArgument);
}

TEST(Rwa, AllToAllStaysNearLiangShenBound) {
  // k equally spaced reps on a ring: the per-segment load (and hence the
  // wavelength minimum) is ceil(k^2/8) [Liang & Shen]. Greedy first-fit
  // colouring carries a bounded overhead: <= 1.5x the bound across the
  // sweep, approaching 1.1x for large k (see DESIGN.md).
  for (const std::uint32_t k : {3u, 4u, 5u, 8u, 16u, 32u}) {
    const std::uint32_t n = 8 * k;
    const Ring ring(n);
    std::vector<Transfer> step;
    for (std::uint32_t a = 0; a < k; ++a) {
      for (std::uint32_t b = 0; b < k; ++b) {
        if (a == b) continue;
        const topo::NodeId sa = a * (n / k);
        const topo::NodeId sb = b * (n / k);
        // Split antipodal ties across the fibers like the WRHT builder.
        const std::uint32_t cw = ring.cw_distance(sa, sb);
        const std::uint32_t ccw = ring.ccw_distance(sa, sb);
        std::optional<Direction> dir;
        if (cw < ccw) {
          dir = Direction::kClockwise;
        } else if (ccw < cw) {
          dir = Direction::kCounterClockwise;
        } else {
          dir = sa < sb ? Direction::kClockwise : Direction::kCounterClockwise;
        }
        step.push_back(t(sa, sb, dir));
      }
    }
    const std::uint32_t bound =
        static_cast<std::uint32_t>(core::all_to_all_wavelengths(k));
    const RwaResult res = assign_wavelengths(ring, step, RwaOptions{4 * bound});
    ASSERT_TRUE(res.ok) << "k=" << k;
    expect_conflict_free(ring, res.paths);
    EXPECT_LE(res.wavelengths_used, (3 * bound + 1) / 2) << "k=" << k;
  }
}

TEST(RwaRounds, SingleRoundWhenBudgetSuffices) {
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 4; ++i) {
    step.push_back(t(i, 4, Direction::kClockwise));
  }
  const RoundsResult res = assign_rounds(ring, step, RwaOptions{4});
  EXPECT_EQ(res.rounds.size(), 1u);
  EXPECT_EQ(res.rounds[0].size(), 4u);
}

TEST(RwaRounds, SplitsWhenStarved) {
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 4; ++i) {
    step.push_back(t(i, 4, Direction::kClockwise));
  }
  const RoundsResult res = assign_rounds(ring, step, RwaOptions{2});
  EXPECT_EQ(res.rounds.size(), 2u);
  std::size_t total = 0;
  for (const auto& r : res.rounds) total += r.size();
  EXPECT_EQ(total, 4u);
  EXPECT_LE(res.wavelengths_used, 2u);
}

TEST(RwaRounds, EveryTransferAssignedExactlyOnce) {
  const Ring ring(16);
  std::vector<Transfer> step;
  for (topo::NodeId i = 0; i < 8; ++i) {
    if (i != 4) step.push_back(t(i, 4));
  }
  const RoundsResult res = assign_rounds(ring, step, RwaOptions{1});
  std::vector<int> seen(step.size(), 0);
  for (const auto& round : res.rounds) {
    for (const std::size_t idx : round) ++seen[idx];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(Rwa, Validation) {
  const Ring ring(8);
  EXPECT_THROW(assign_wavelengths(ring, {}, RwaOptions{0}), InvalidArgument);
}

}  // namespace
}  // namespace wrht::optics
