#include "wrht/verify/differential.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/optical_backend.hpp"

namespace wrht {
namespace {

using verify::DifferentialOptions;
using verify::DifferentialReport;

/// The paper's sweeps assume no per-node MRR constraint (§5.4), exactly as
/// the bench binaries configure their networks.
DifferentialOptions paper_options(std::uint32_t wavelengths) {
  DifferentialOptions options;
  options.config.wavelengths = wavelengths;
  options.config.validate_node_capacity = false;
  return options;
}

// --------------------------- Fig. 4 regime: N=1024, m sweep, w=64

TEST(VerifyDifferential, Fig4GroupSizeSweepWithinOnePercent) {
  for (const std::uint32_t m : {17u, 33u, 65u, 129u}) {
    const coll::Schedule sched =
        core::wrht_allreduce(1024, 4096, core::WrhtOptions{m, 64});
    const DifferentialReport report =
        verify::check_differential(sched, paper_options(64));
    EXPECT_TRUE(report.ok()) << "m=" << m << ":\n" << report.result.summary();
    EXPECT_TRUE(report.single_round) << "m=" << m;
    EXPECT_LE(report.rel_error, 0.01) << "m=" << m;
  }
}

// --------------------------- Fig. 5 regime: wavelength sweep, planner m

TEST(VerifyDifferential, Fig5WavelengthSweepWithinOnePercent) {
  for (const std::uint32_t w : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const core::WrhtPlan plan = core::plan_wrht(1024, w);
    const coll::Schedule sched = core::wrht_allreduce(
        1024, 4096, core::WrhtOptions{plan.group_size, w});
    // Carry the operational first-fit budget (1.5x the analytic
    // requirement, DESIGN.md) so every step stays single-round — the
    // regime the paper's Fig. 5 numbers assume.
    const std::uint32_t carried = static_cast<std::uint32_t>(
        (3 * std::max<std::uint64_t>(plan.steps.wavelengths_required, w) + 1) /
        2);
    const DifferentialReport report =
        verify::check_differential(sched, paper_options(carried));
    EXPECT_TRUE(report.ok()) << "w=" << w << ":\n" << report.result.summary();
    EXPECT_TRUE(report.single_round) << "w=" << w;
    EXPECT_LE(report.rel_error, 0.01) << "w=" << w;
  }
}

// --------------------------- Fig. 6 regime: scaling N at w=64

TEST(VerifyDifferential, Fig6ScalingSweepWithinOnePercent) {
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const core::WrhtPlan plan = core::plan_wrht(n, 64);
    const coll::Schedule sched = core::wrht_allreduce(
        n, 4096, core::WrhtOptions{plan.group_size, 64});
    const DifferentialReport report =
        verify::check_differential(sched, paper_options(64));
    EXPECT_TRUE(report.ok()) << "N=" << n << ":\n" << report.result.summary();
    EXPECT_LE(report.rel_error, 0.01) << "N=" << n;
  }
}

// ----------------------------------------------------------- baselines

TEST(VerifyDifferential, BaselinesAgreeToo) {
  const DifferentialReport ring = verify::check_differential(
      coll::ring_allreduce(64, 640), paper_options(64));
  EXPECT_TRUE(ring.ok()) << ring.result.summary();
  EXPECT_TRUE(ring.single_round);

  const DifferentialReport bt = verify::check_differential(
      coll::btree_allreduce(64, 640), paper_options(64));
  EXPECT_TRUE(bt.ok()) << bt.result.summary();
}

// --------------------------------------------- multi-round lower bound

TEST(VerifyDifferential, MultiRoundRunsNeverBeatTheAnalyticalBound) {
  // Two clockwise transfers sharing segment 1 cannot coexist on one
  // wavelength, so the step splits into two rounds; the simulator must
  // charge at least the single-round Eq. (6) estimate.
  coll::Schedule sched("overlap", 6, 8);
  coll::Step& step = sched.add_step("clash");
  step.transfers.push_back(coll::Transfer{
      0, 2, 0, 8, coll::TransferKind::kReduce, topo::Direction::kClockwise});
  step.transfers.push_back(coll::Transfer{
      1, 3, 0, 8, coll::TransferKind::kReduce, topo::Direction::kClockwise});

  const DifferentialReport report =
      verify::check_differential(sched, paper_options(1));
  EXPECT_TRUE(report.ok()) << report.result.summary();
  EXPECT_FALSE(report.single_round);
  EXPECT_GE(report.simulated_seconds, report.analytical_seconds);
}

TEST(VerifyDifferential, ReportCarriesBothPrices) {
  const DifferentialReport report = verify::check_differential(
      coll::ring_allreduce(16, 160), paper_options(64));
  EXPECT_GT(report.simulated_seconds, 0.0);
  EXPECT_GT(report.analytical_seconds, 0.0);
}

// ------------------------------------------- explicit backend injection

TEST(VerifyDifferential, InjectedBackendMatchesDefaultPath) {
  // Passing an optics::RingBackend built from the same config must price
  // identically to the nullptr default (which constructs one internally).
  const coll::Schedule sched = coll::ring_allreduce(16, 160);
  DifferentialOptions options = paper_options(64);
  const DifferentialReport via_default =
      verify::check_differential(sched, options);

  const optics::RingBackend backend(
      sched.num_nodes(), options.config);
  options.backend = &backend;
  const DifferentialReport via_backend =
      verify::check_differential(sched, options);

  EXPECT_TRUE(via_backend.ok()) << via_backend.result.summary();
  EXPECT_EQ(via_backend.simulated_seconds, via_default.simulated_seconds);
  EXPECT_EQ(via_backend.single_round, via_default.single_round);
}

}  // namespace
}  // namespace wrht
