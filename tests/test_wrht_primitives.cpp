#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht::core {
namespace {

TEST(WrhtReduce, RootHoldsGlobalSum) {
  Rng rng;
  for (std::uint32_t n : {4u, 9u, 15u, 27u, 40u}) {
    const WrhtRootedSchedule r = wrht_reduce(n, 8, WrhtOptions{3, 8});
    EXPECT_LE(coll::Executor::verify_reduce(r.schedule, r.root, rng), 1e-9)
        << "n=" << n;
  }
}

TEST(WrhtReduce, StepCountIsHierarchyDepth) {
  const WrhtRootedSchedule r = wrht_reduce(1024, 4, WrhtOptions{129, 64});
  EXPECT_EQ(r.schedule.num_steps(), 2u);  // 1024 -> 8 -> 1
  const WrhtRootedSchedule r2 = wrht_reduce(64, 4, WrhtOptions{4, 64});
  EXPECT_EQ(r2.schedule.num_steps(), 3u);  // 64 -> 16 -> 4 -> 1
}

TEST(WrhtReduce, RootIsRecursiveMiddle) {
  const WrhtRootedSchedule r = wrht_reduce(15, 4, WrhtOptions{5, 2});
  // Groups [0..4][5..9][10..14] -> reps 2,7,12 -> middle rep 7.
  EXPECT_EQ(r.root, 7u);
}

TEST(WrhtBroadcast, EveryoneGetsRootVector) {
  Rng rng;
  for (std::uint32_t n : {4u, 9u, 15u, 27u, 40u}) {
    const WrhtRootedSchedule b = wrht_broadcast(n, 8, WrhtOptions{3, 8});
    EXPECT_LE(coll::Executor::verify_broadcast(b.schedule, b.root, rng),
              1e-9)
        << "n=" << n;
  }
}

TEST(WrhtBroadcast, MirrorsReduce) {
  const WrhtOptions opt{5, 8};
  const WrhtRootedSchedule red = wrht_reduce(30, 4, opt);
  const WrhtRootedSchedule bc = wrht_broadcast(30, 4, opt);
  EXPECT_EQ(red.root, bc.root);
  ASSERT_EQ(red.schedule.num_steps(), bc.schedule.num_steps());
  const std::size_t steps = red.schedule.num_steps();
  for (std::size_t i = 0; i < steps; ++i) {
    const auto& r = red.schedule.steps()[i].transfers;
    const auto& b = bc.schedule.steps()[steps - 1 - i].transfers;
    ASSERT_EQ(r.size(), b.size());
    for (std::size_t t = 0; t < r.size(); ++t) {
      EXPECT_EQ(r[t].src, b[t].dst);
      EXPECT_EQ(r[t].dst, b[t].src);
    }
  }
}

TEST(WrhtPrimitives, ReduceThenBroadcastIsAllreduce) {
  const std::uint32_t n = 27;
  const std::size_t elements = 9;
  const WrhtOptions opt{4, 8};
  const WrhtRootedSchedule red = wrht_reduce(n, elements, opt);
  const WrhtRootedSchedule bc = wrht_broadcast(n, elements, opt);
  coll::Schedule composed("wrht_reduce+broadcast", n, elements);
  for (const auto& step : red.schedule.steps()) {
    composed.add_step(step.label).transfers = step.transfers;
  }
  for (const auto& step : bc.schedule.steps()) {
    composed.add_step(step.label).transfers = step.transfers;
  }
  Rng rng;
  EXPECT_LE(coll::Executor::verify_allreduce(composed, rng), 1e-9);
}

TEST(WrhtPrimitives, Validation) {
  EXPECT_THROW(wrht_reduce(1, 4, WrhtOptions{2, 4}), InvalidArgument);
  EXPECT_THROW(wrht_reduce(8, 4, WrhtOptions{1, 4}), InvalidArgument);
  EXPECT_THROW(wrht_broadcast(1, 4, WrhtOptions{2, 4}), InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
