#include "wrht/core/grouping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "wrht/common/error.hpp"

namespace wrht::core {
namespace {

TEST(Wavelengths, AllToAllBound) {
  // ceil(k^2/8), Liang & Shen.
  EXPECT_EQ(all_to_all_wavelengths(2), 1u);
  EXPECT_EQ(all_to_all_wavelengths(3), 2u);  // motivating example: 2 lambdas
  EXPECT_EQ(all_to_all_wavelengths(8), 8u);
  EXPECT_EQ(all_to_all_wavelengths(32), 128u);
}

TEST(Wavelengths, GroupBound) {
  EXPECT_EQ(group_wavelengths(5), 2u);
  EXPECT_EQ(group_wavelengths(129), 64u);
  EXPECT_EQ(group_wavelengths(2), 1u);
}

TEST(Hierarchy, MotivatingExample15Nodes2Wavelengths) {
  // Paper Fig. 2(b): 15 nodes, 2 wavelengths, groups of 5 -> 3 reps ->
  // all-to-all.
  const Hierarchy h = build_hierarchy(15, 5, 2);
  ASSERT_EQ(h.levels.size(), 1u);
  ASSERT_EQ(h.levels[0].groups.size(), 3u);
  EXPECT_TRUE(h.final_all_to_all);
  ASSERT_EQ(h.final_reps.size(), 3u);
  // Middle nodes of [0..4], [5..9], [10..14].
  EXPECT_EQ(h.final_reps[0], 2u);
  EXPECT_EQ(h.final_reps[1], 7u);
  EXPECT_EQ(h.final_reps[2], 12u);
}

TEST(Hierarchy, PaperTable1Config) {
  // N=1024, m=129, w=64: one grouping level, 8 reps, all-to-all.
  const Hierarchy h = build_hierarchy(1024, 129, 64);
  EXPECT_EQ(h.levels.size(), 1u);
  EXPECT_EQ(h.final_reps.size(), 8u);
  EXPECT_TRUE(h.final_all_to_all);
}

TEST(Hierarchy, AllToAllInfeasibleCollapsesToRoot) {
  // N=1024, m=33, w=64: 32 reps need 128 lambdas > 64, so a second level
  // groups them into one root.
  const Hierarchy h = build_hierarchy(1024, 33, 64);
  EXPECT_EQ(h.levels.size(), 2u);
  EXPECT_FALSE(h.final_all_to_all);
  ASSERT_EQ(h.final_reps.size(), 1u);
}

TEST(Hierarchy, GroupsPartitionInput) {
  const Hierarchy h = build_hierarchy(100, 7, 1);
  std::set<NodeId> seen;
  for (const Group& g : h.levels[0].groups) {
    for (const NodeId n : g.members) {
      EXPECT_TRUE(seen.insert(n).second) << "duplicate node " << n;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Hierarchy, RepsAreGroupMiddles) {
  const Hierarchy h = build_hierarchy(20, 5, 1);
  for (const Group& g : h.levels[0].groups) {
    EXPECT_EQ(g.rep_index, g.members.size() / 2);
    EXPECT_EQ(g.rep(), g.members[g.members.size() / 2]);
  }
  EXPECT_EQ(h.levels[0].groups[0].rep(), 2u);
  EXPECT_EQ(h.levels[0].groups[1].rep(), 7u);
}

TEST(Hierarchy, NextLevelGroupsPreviousReps) {
  const Hierarchy h = build_hierarchy(64, 4, 1);
  // Level 0: 16 groups of 4; level 1 groups the 16 reps into 4 groups...
  ASSERT_GE(h.levels.size(), 2u);
  EXPECT_EQ(h.levels[0].groups.size(), 16u);
  EXPECT_EQ(h.levels[1].groups.size(), 4u);
  std::set<NodeId> level0_reps;
  for (const Group& g : h.levels[0].groups) level0_reps.insert(g.rep());
  for (const Group& g : h.levels[1].groups) {
    for (const NodeId n : g.members) {
      EXPECT_TRUE(level0_reps.count(n)) << n;
    }
  }
}

TEST(Hierarchy, TerminatesAtSingleRootWithoutAllToAll) {
  const Hierarchy h =
      build_hierarchy(64, 4, 64, /*allow_all_to_all=*/false);
  EXPECT_FALSE(h.final_all_to_all);
  ASSERT_EQ(h.final_reps.size(), 1u);
  EXPECT_EQ(h.levels.size(), 3u);  // 64 -> 16 -> 4 -> 1
}

TEST(Hierarchy, ImmediateAllToAllForSmallRings) {
  // 4 nodes, plenty of wavelengths: no grouping at all.
  const Hierarchy h = build_hierarchy(4, 3, 64);
  EXPECT_TRUE(h.levels.empty());
  EXPECT_TRUE(h.final_all_to_all);
  EXPECT_EQ(h.final_reps.size(), 4u);
}

TEST(Hierarchy, RaggedLastGroup) {
  const Hierarchy h = build_hierarchy(11, 4, 1);
  ASSERT_EQ(h.levels[0].groups.size(), 3u);
  EXPECT_EQ(h.levels[0].groups[2].members.size(), 3u);
  EXPECT_EQ(h.levels[0].groups[2].rep(), 9u);  // middle of {8, 9, 10}
}

TEST(Hierarchy, ExplicitNodeList) {
  const std::vector<NodeId> nodes = {3, 7, 11, 15, 19};
  const Hierarchy h = build_hierarchy(nodes, 5, 1);
  ASSERT_EQ(h.levels.size(), 1u);
  EXPECT_EQ(h.levels[0].groups[0].rep(), 11u);
}

TEST(Hierarchy, Validation) {
  EXPECT_THROW(build_hierarchy(1, 4, 8), InvalidArgument);
  EXPECT_THROW(build_hierarchy(8, 1, 8), InvalidArgument);
  EXPECT_THROW(build_hierarchy(8, 4, 0), InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
