#include "wrht/optical/torus_network.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/torus_wrht.hpp"

namespace wrht::optics {
namespace {

using topo::Torus;

OpticalConfig cfg(std::uint32_t w = 8) {
  OpticalConfig c;
  c.wavelengths = w;
  return c;
}

TEST(TorusNetwork, ExecutesTorusWrht) {
  const Torus torus(4, 8);
  const TorusNetwork net(torus, cfg());
  const auto sched =
      core::torus_wrht_allreduce(torus, 1000, core::WrhtOptions{3, 8});
  const auto res = net.execute(sched);
  EXPECT_EQ(res.steps, sched.num_steps());
  EXPECT_GT(res.total_time.count(), 0.0);
  EXPECT_GE(res.total_rounds, res.steps);
}

TEST(TorusNetwork, RowsRunConcurrently) {
  // Two transfers in different rows cost the same as one: the rings are
  // independent.
  const Torus torus(4, 8);
  const TorusNetwork net(torus, cfg());
  coll::Schedule one("one", torus.size(), 100);
  one.add_step().transfers.push_back(coll::Transfer{
      torus.node_at(0, 0), torus.node_at(0, 3), 0, 100,
      coll::TransferKind::kReduce, {}});
  coll::Schedule two("two", torus.size(), 100);
  auto& step = two.add_step();
  step.transfers.push_back(coll::Transfer{
      torus.node_at(0, 0), torus.node_at(0, 3), 0, 100,
      coll::TransferKind::kReduce, {}});
  step.transfers.push_back(coll::Transfer{
      torus.node_at(2, 0), torus.node_at(2, 3), 0, 100,
      coll::TransferKind::kReduce, {}});
  EXPECT_DOUBLE_EQ(net.execute(one).total_time.count(),
                   net.execute(two).total_time.count());
}

TEST(TorusNetwork, ColumnTransfersUseColumnRing) {
  const Torus torus(4, 8);
  const TorusNetwork net(torus, cfg());
  coll::Schedule s("col", torus.size(), 100);
  // Column hop 0->3 on a 4-ring: shortest path is 1 hop (wraparound).
  s.add_step().transfers.push_back(coll::Transfer{
      torus.node_at(0, 5), torus.node_at(3, 5), 0, 100,
      coll::TransferKind::kReduce, {}});
  const auto res = net.execute(s);
  EXPECT_EQ(res.longest_lightpath_hops, 1u);
}

TEST(TorusNetwork, RejectsDiagonalTransfers) {
  const Torus torus(4, 4);
  const TorusNetwork net(torus, cfg());
  coll::Schedule s("diag", torus.size(), 10);
  s.add_step().transfers.push_back(coll::Transfer{
      torus.node_at(0, 0), torus.node_at(1, 1), 0, 10,
      coll::TransferKind::kReduce, {}});
  EXPECT_THROW(net.execute(s), InfeasibleSchedule);
}

TEST(TorusNetwork, TimeMatchesStepArithmetic) {
  // One row transfer: reconfig + oeo + serialization.
  const Torus torus(3, 6);
  const TorusNetwork net(torus, cfg());
  coll::Schedule s("one", torus.size(), 1'000'000);
  s.add_step().transfers.push_back(coll::Transfer{
      torus.node_at(1, 0), torus.node_at(1, 2), 0, 1'000'000,
      coll::TransferKind::kReduce, {}});
  const auto res = net.execute(s);
  EXPECT_NEAR(res.total_time.count(), 25e-6 + 497e-15 + 4e6 / 40e9, 1e-12);
}

TEST(TorusNetwork, StarvedRingSplitsIntoRounds) {
  const Torus torus(2, 16);
  const TorusNetwork net(torus, cfg(1));
  // Three nested lightpaths toward one node in a row need 3 lambdas; with
  // one, the ring serializes into rounds.
  coll::Schedule s("nested", torus.size(), 10);
  auto& step = s.add_step();
  for (std::uint32_t c = 1; c <= 3; ++c) {
    step.transfers.push_back(coll::Transfer{
        torus.node_at(0, 8 - c), torus.node_at(0, 8), 0, 10,
        coll::TransferKind::kReduce, {}});
  }
  const auto res = net.execute(s);
  EXPECT_GT(res.total_rounds, 1u);
}

TEST(TorusNetwork, TorusBeatsFlatRingForSameNodeCount) {
  // 8x8 torus vs flat 64-ring, WRHT both, small wavelength budget.
  const std::uint32_t w = 4;
  const Torus torus(8, 8);
  const TorusNetwork tnet(torus, cfg(w));
  const auto tsched =
      core::torus_wrht_allreduce(torus, 1'000'000, core::WrhtOptions{3, w});

  optics::OpticalConfig rc;
  rc.wavelengths = w;
  const RingNetwork rnet(64, rc);
  const auto plan = core::plan_wrht(64, w);
  const auto rsched = core::wrht_allreduce(
      64, 1'000'000, core::WrhtOptions{plan.group_size, w});

  const double t_torus = tnet.execute(tsched).total_time.count();
  const double t_ring = rnet.execute(rsched).total_time.count();
  // Step counts are comparable (log_m(rows) + log_m(cols) ~ log_m(N));
  // the torus trades a couple of extra steps for per-dimension wavelength
  // locality. It must stay within 2x of the flat ring.
  EXPECT_LE(t_torus, t_ring * 2.0);
  // And it crushes the non-hierarchical flat Ring All-reduce.
  EXPECT_LT(t_torus, 2.0 * (64 - 1) * 25e-6);
}

TEST(TorusNetwork, Validation) {
  const Torus torus(3, 3);
  OpticalConfig bad;
  bad.wavelengths = 0;
  EXPECT_THROW(TorusNetwork(torus, bad), InvalidArgument);
}

}  // namespace
}  // namespace wrht::optics
