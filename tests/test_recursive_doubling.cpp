#include "wrht/collectives/recursive_doubling.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(RecursiveDoubling, StepCountPowerOfTwo) {
  EXPECT_EQ(recursive_doubling_steps(2), 1u);
  EXPECT_EQ(recursive_doubling_steps(8), 3u);
  EXPECT_EQ(recursive_doubling_steps(1024), 10u);
  EXPECT_EQ(recursive_doubling_allreduce(16, 4).num_steps(),
            recursive_doubling_steps(16));
}

TEST(RecursiveDoubling, StepCountNonPowerOfTwo) {
  // floor(log2) + pre-fold + post-copy.
  EXPECT_EQ(recursive_doubling_steps(5), 4u);
  EXPECT_EQ(recursive_doubling_steps(6), 4u);
  EXPECT_EQ(recursive_doubling_steps(1000), 11u);
  EXPECT_EQ(recursive_doubling_allreduce(6, 4).num_steps(),
            recursive_doubling_steps(6));
}

TEST(RecursiveDoubling, CorrectPowerOfTwo) {
  Rng rng;
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    const Schedule s = recursive_doubling_allreduce(n, 6);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9)
        << "rd failed for n=" << n;
  }
}

TEST(RecursiveDoubling, CorrectNonPowerOfTwo) {
  Rng rng;
  for (std::uint32_t n : {3u, 5u, 6u, 7u, 9u, 12u, 21u}) {
    const Schedule s = recursive_doubling_allreduce(n, 6);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9)
        << "rd failed for n=" << n;
  }
}

TEST(RecursiveDoubling, ExchangeStepsAreSymmetric) {
  const Schedule s = recursive_doubling_allreduce(8, 4);
  for (const Step& step : s.steps()) {
    for (const Transfer& t : step.transfers) {
      bool has_reverse = false;
      for (const Transfer& u : step.transfers) {
        if (u.src == t.dst && u.dst == t.src) has_reverse = true;
      }
      EXPECT_TRUE(has_reverse) << t.src << "->" << t.dst;
    }
  }
}

TEST(RecursiveDoubling, EveryTransferMovesFullVector) {
  const std::size_t elements = 9;
  const Schedule s = recursive_doubling_allreduce(16, elements);
  for (const Step& step : s.steps()) {
    for (const Transfer& t : step.transfers) {
      EXPECT_EQ(t.count, elements);
    }
  }
}

TEST(RecursiveDoubling, PowerOfTwoHasNoFoldSteps) {
  const Schedule s = recursive_doubling_allreduce(8, 4);
  EXPECT_EQ(s.steps().front().label, "exchange 2^0");
  for (const Step& step : s.steps()) {
    // All 8 nodes participate in every step.
    EXPECT_EQ(step.transfers.size(), 8u);
  }
}

TEST(RecursiveDoubling, Validation) {
  EXPECT_THROW(recursive_doubling_allreduce(1, 4), InvalidArgument);
  EXPECT_THROW(recursive_doubling_steps(1), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
