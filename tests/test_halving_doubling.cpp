#include "wrht/collectives/halving_doubling.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(HalvingDoubling, StepCounts) {
  EXPECT_EQ(halving_doubling_steps(2), 2u);
  EXPECT_EQ(halving_doubling_steps(8), 6u);
  EXPECT_EQ(halving_doubling_steps(1024), 20u);
  EXPECT_EQ(halving_doubling_steps(6), 6u);  // 2*2 + fold + copy
  for (std::uint32_t n : {2u, 4u, 6u, 8u, 12u, 16u, 32u}) {
    EXPECT_EQ(halving_doubling_allreduce(n, 2 * n).num_steps(),
              halving_doubling_steps(n))
        << "n=" << n;
  }
}

TEST(HalvingDoubling, CorrectPowerOfTwo) {
  Rng rng;
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const Schedule s = halving_doubling_allreduce(n, 3 * n + 1);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9) << "n=" << n;
  }
}

TEST(HalvingDoubling, CorrectNonPowerOfTwo) {
  Rng rng;
  for (std::uint32_t n : {3u, 5u, 6u, 7u, 11u, 20u, 33u}) {
    const Schedule s = halving_doubling_allreduce(n, 3 * n + 1);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9) << "n=" << n;
  }
}

TEST(HalvingDoubling, TrafficIsBandwidthOptimal) {
  // Rabenseifner total traffic ~ 2d(1 - 1/N) per node; full-vector RD
  // would be d*log2(N) per node. Check the aggregate across all nodes.
  const std::uint32_t n = 16;
  const std::size_t elements = 1600;
  const Schedule s = halving_doubling_allreduce(n, elements);
  const std::uint64_t traffic = s.total_traffic_elements();
  const std::uint64_t optimal = 2ull * (n - 1) * (elements / n) * n;
  EXPECT_EQ(traffic, optimal);
  // Strictly less than the ring's equal total? Equal — both optimal.
  EXPECT_EQ(traffic, ring_allreduce(n, elements).total_traffic_elements());
}

TEST(HalvingDoubling, PayloadHalvesEachStep) {
  const Schedule s = halving_doubling_allreduce(8, 64);
  EXPECT_EQ(s.max_transfer_elements(0), 32u);
  EXPECT_EQ(s.max_transfer_elements(1), 16u);
  EXPECT_EQ(s.max_transfer_elements(2), 8u);
  EXPECT_EQ(s.max_transfer_elements(3), 8u);
  EXPECT_EQ(s.max_transfer_elements(4), 16u);
  EXPECT_EQ(s.max_transfer_elements(5), 32u);
}

TEST(HalvingDoubling, MuchCheaperThanFullVectorRdForLargePayloads) {
  const std::uint32_t n = 64;
  const std::size_t elements = 6400;
  const Schedule hd = halving_doubling_allreduce(n, elements);
  // Full-vector RD: log2(64) * d * n elements of traffic.
  const std::uint64_t rd_traffic = 6ull * elements * n;
  EXPECT_LT(hd.total_traffic_elements(), rd_traffic / 2);
}

TEST(HalvingDoubling, ExchangePairsAreSymmetric) {
  const Schedule s = halving_doubling_allreduce(8, 64);
  for (const auto& step : s.steps()) {
    for (const auto& t : step.transfers) {
      bool reverse = false;
      for (const auto& u : step.transfers) {
        if (u.src == t.dst && u.dst == t.src) reverse = true;
      }
      EXPECT_TRUE(reverse);
    }
  }
}

TEST(HalvingDoubling, Validation) {
  EXPECT_THROW(halving_doubling_allreduce(1, 8), InvalidArgument);
  EXPECT_THROW(halving_doubling_allreduce(8, 4), InvalidArgument);
  EXPECT_THROW(halving_doubling_steps(1), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
