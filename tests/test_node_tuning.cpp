#include "wrht/optical/node.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::optics {
namespace {

Lightpath lp(topo::NodeId src, topo::NodeId dst, std::uint32_t lambda,
             topo::Direction dir = topo::Direction::kClockwise) {
  return Lightpath{src, dst, dir, 0, lambda, src, 1};
}

TEST(TuningState, DerivesTxAndRxPerLightpath) {
  const auto state =
      TuningState::from_lightpaths({lp(0, 1, 3)}, NodeHardware{});
  ASSERT_EQ(state.size(), 2u);
  const Tuning tx{0, topo::Direction::kClockwise, 0, 3, true};
  const Tuning rx{1, topo::Direction::kClockwise, 0, 3, false};
  EXPECT_TRUE(state.tunings().count(tx));
  EXPECT_TRUE(state.tunings().count(rx));
}

TEST(TuningState, SharedWavelengthCountedOnce) {
  // A node transmitting the same lambda to two different receivers cannot
  // exist conflict-free, but re-tuning bookkeeping must still dedupe.
  const auto state = TuningState::from_lightpaths(
      {lp(0, 1, 3), lp(0, 2, 3)}, NodeHardware{});
  EXPECT_EQ(state.size(), 3u);  // tx(0,3), rx(1,3), rx(2,3)
}

TEST(TuningState, RetuneCountIsSymmetricDifference) {
  const auto a = TuningState::from_lightpaths({lp(0, 1, 0), lp(2, 3, 1)},
                                              NodeHardware{});
  const auto b = TuningState::from_lightpaths({lp(0, 1, 0), lp(2, 3, 2)},
                                              NodeHardware{});
  // lp(2,3) moved from lambda 1 to lambda 2: 2 old tunings out, 2 new in.
  EXPECT_EQ(a.retune_count(b), 4u);
  EXPECT_EQ(b.retune_count(a), 4u);
}

TEST(TuningState, IdenticalRoundsNeedNoRetune) {
  const auto a = TuningState::from_lightpaths({lp(0, 1, 0), lp(4, 2, 7)},
                                              NodeHardware{});
  const auto b = TuningState::from_lightpaths({lp(4, 2, 7), lp(0, 1, 0)},
                                              NodeHardware{});
  EXPECT_EQ(a.retune_count(b), 0u);
}

TEST(TuningState, EmptyToLoadedRetunesEverything) {
  const TuningState empty;
  const auto loaded = TuningState::from_lightpaths(
      {lp(0, 1, 0), lp(2, 3, 1)}, NodeHardware{});
  EXPECT_EQ(empty.retune_count(loaded), 4u);
  EXPECT_EQ(loaded.retune_count(empty), 4u);
}

TEST(TuningState, DirectionsAreIndependent) {
  const auto state = TuningState::from_lightpaths(
      {lp(0, 1, 5, topo::Direction::kClockwise),
       lp(0, 3, 5, topo::Direction::kCounterClockwise)},
      NodeHardware{});
  EXPECT_EQ(state.size(), 4u);
}

TEST(TuningState, CapacityEnforced) {
  NodeHardware tiny;
  tiny.interfaces_per_direction = 1;
  tiny.mrrs_per_interface = 2;
  // Node 9 receives 3 distinct wavelengths in one direction: exceeds 2.
  std::vector<Lightpath> paths = {lp(0, 9, 0), lp(1, 9, 1), lp(2, 9, 2)};
  EXPECT_THROW(TuningState::from_lightpaths(paths, tiny),
               InfeasibleSchedule);
  // Two wavelengths fit.
  paths.pop_back();
  EXPECT_NO_THROW(TuningState::from_lightpaths(paths, tiny));
}

TEST(TuningState, TxCapacityEnforcedIndependently) {
  NodeHardware tiny;
  tiny.interfaces_per_direction = 1;
  tiny.mrrs_per_interface = 2;
  std::vector<Lightpath> paths = {lp(9, 0, 0), lp(9, 1, 1), lp(9, 2, 2)};
  EXPECT_THROW(TuningState::from_lightpaths(paths, tiny),
               InfeasibleSchedule);
}

TEST(NodeHardware, TeraRackDefaults) {
  const NodeHardware hw;
  EXPECT_EQ(hw.tx_capacity(), 128u);  // 2 interfaces x 64 MRRs
  EXPECT_EQ(hw.rx_capacity(), 128u);
}

}  // namespace
}  // namespace wrht::optics
