// Service telemetry conformance tests: off-by-default is byte-identical
// and costs nothing, the svc-events-1 log is a deterministic function of
// (config, seed) — pinned over a 2-seed x 2-policy grid — event-log
// replay reproduces the live report exactly, Chrome-trace lanes split by
// tenant, retunes fire on lane handoffs, and SLO burn is tracked per
// tenant.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "wrht/obs/event_log.hpp"
#include "wrht/obs/metrics.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/svc/replay.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"

namespace wrht::svc {
namespace {

std::vector<Job> bursty_jobs(std::uint64_t seed, std::uint32_t num_jobs = 24) {
  WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.num_nodes = 8;
  workload.fabric_wavelengths = 8;
  workload.mean_interarrival = Seconds(0.02);
  workload.burstiness = 0.4;
  workload.seed = seed;
  return generate_workload(workload);
}

ServiceConfig telemetry_config(PolicyKind policy, std::uint64_t seed) {
  ServiceConfig config;
  config.fabric_wavelengths = 8;
  config.policy = policy;
  config.telemetry.metrics = true;
  config.telemetry.events = true;
  config.telemetry.trace = true;
  config.telemetry.seed = seed;
  return config;
}

TEST(SvcTelemetry, DisabledTelemetryLeavesServiceUntouched) {
  const std::vector<Job> jobs = bursty_jobs(7);

  ServiceConfig config;
  config.fabric_wavelengths = 8;
  config.policy = PolicyKind::kBackfill;
  FabricService off(config);
  const ServiceReport report_off = off.run(jobs);
  EXPECT_EQ(off.metrics(), nullptr);
  EXPECT_EQ(off.event_log(), nullptr);
  EXPECT_EQ(off.trace(), nullptr);

  FabricService on(telemetry_config(PolicyKind::kBackfill, 7));
  const ServiceReport report_on = on.run(jobs);

  // The enabled run must not perturb a single double of the report.
  ASSERT_EQ(report_off.records.size(), report_on.records.size());
  EXPECT_EQ(report_off.makespan.count(), report_on.makespan.count());
  EXPECT_EQ(report_off.utilization, report_on.utilization);
  EXPECT_EQ(report_off.p50_jct.count(), report_on.p50_jct.count());
  EXPECT_EQ(report_off.p99_jct.count(), report_on.p99_jct.count());
  EXPECT_EQ(report_off.mean_queue_wait.count(),
            report_on.mean_queue_wait.count());
  for (std::size_t i = 0; i < report_off.records.size(); ++i) {
    EXPECT_EQ(report_off.records[i].job.id, report_on.records[i].job.id);
    EXPECT_EQ(report_off.records[i].grant.count(),
              report_on.records[i].grant.count());
    EXPECT_EQ(report_off.records[i].completion.count(),
              report_on.records[i].completion.count());
    EXPECT_EQ(report_off.records[i].lease.w_lo,
              report_on.records[i].lease.w_lo);
  }
  // And the report itself renders identically (no new columns sneak in).
  EXPECT_EQ(report_off.to_string(), report_on.to_string());
}

TEST(SvcTelemetry, EventLogIsDeterministicAcrossSeedAndPolicyGrid) {
  // The replay-determinism grid: 2 seeds x 2 policies, each run twice;
  // the two JSONL serializations must be byte-identical.
  for (const std::uint64_t seed : {11ull, 2023ull}) {
    for (const PolicyKind policy :
         {PolicyKind::kFifo, PolicyKind::kWeightedFair}) {
      const std::vector<Job> jobs = bursty_jobs(seed);
      const ServiceConfig config = telemetry_config(policy, seed);

      FabricService first(config);
      (void)first.run(jobs);
      FabricService second(config);
      (void)second.run(jobs);

      ASSERT_NE(first.event_log(), nullptr);
      ASSERT_NE(second.event_log(), nullptr);
      EXPECT_EQ(first.event_log()->to_jsonl(), second.event_log()->to_jsonl())
          << "seed=" << seed << " policy=" << to_string(policy);
      EXPECT_GT(first.event_log()->size(), 0u);
    }
  }
}

TEST(SvcTelemetry, EventLogRecordsEveryTransitionWithLease) {
  const std::vector<Job> jobs = bursty_jobs(3);
  FabricService service(telemetry_config(PolicyKind::kFifo, 3));
  const ServiceReport report = service.run(jobs);

  const obs::EventLog& log = *service.event_log();
  EXPECT_EQ(log.context().policy, "fifo");
  EXPECT_EQ(log.context().fabric_wavelengths, 8u);
  EXPECT_EQ(log.context().seed, 3u);

  std::map<obs::ServiceEvent::Kind, std::size_t> counts;
  for (const obs::ServiceEvent& e : log.events()) ++counts[e.kind];
  EXPECT_EQ(counts[obs::ServiceEvent::Kind::kSubmit], jobs.size());
  EXPECT_EQ(counts[obs::ServiceEvent::Kind::kAdmit], jobs.size());
  EXPECT_EQ(counts[obs::ServiceEvent::Kind::kGrant], jobs.size());
  EXPECT_EQ(counts[obs::ServiceEvent::Kind::kStart], jobs.size());
  EXPECT_EQ(counts[obs::ServiceEvent::Kind::kComplete], report.records.size());

  // Grants and completes carry the lease; the slice is non-empty and
  // inside the fabric.
  for (const obs::ServiceEvent& e : log.events()) {
    if (e.kind == obs::ServiceEvent::Kind::kGrant ||
        e.kind == obs::ServiceEvent::Kind::kComplete) {
      EXPECT_LT(e.w_lo, e.w_hi);
      EXPECT_LE(e.w_hi, 8u);
    }
  }
}

TEST(SvcTelemetry, ReplayReproducesTheLiveReportExactly) {
  const std::vector<Job> jobs = bursty_jobs(42);
  FabricService service(telemetry_config(PolicyKind::kBackfill, 42));
  const ServiceReport live = service.run(jobs);

  // Through the serialized text, as wrht_analyze --service would read it.
  std::istringstream in(service.event_log()->to_jsonl());
  const ReplaySummary replay =
      replay_events(obs::EventLog::read_jsonl(in));

  ASSERT_EQ(replay.report.records.size(), live.records.size());
  EXPECT_EQ(replay.report.policy, live.policy);
  EXPECT_EQ(replay.report.makespan.count(), live.makespan.count());
  EXPECT_EQ(replay.report.utilization, live.utilization);
  EXPECT_EQ(replay.report.p50_jct.count(), live.p50_jct.count());
  EXPECT_EQ(replay.report.p99_jct.count(), live.p99_jct.count());
  EXPECT_EQ(replay.report.mean_queue_wait.count(),
            live.mean_queue_wait.count());
  ASSERT_EQ(replay.report.tenants.size(), live.tenants.size());
  for (std::size_t i = 0; i < live.tenants.size(); ++i) {
    EXPECT_EQ(replay.report.tenants[i].tenant, live.tenants[i].tenant);
    EXPECT_EQ(replay.report.tenants[i].jobs, live.tenants[i].jobs);
    EXPECT_EQ(replay.report.tenants[i].wavelength_seconds,
              live.tenants[i].wavelength_seconds);
    EXPECT_EQ(replay.report.tenants[i].p99_jct.count(),
              live.tenants[i].p99_jct.count());
  }
  EXPECT_GT(replay.queue_depth.size(), 0u);
  EXPECT_FALSE(replay.verdict.empty());
  EXPECT_NE(replay.to_string().find("verdict"), std::string::npos);
}

TEST(SvcTelemetry, ReplayRejectsInconsistentLogs) {
  obs::EventLog log;
  log.set_context(obs::EventLog::Context{8, "fifo", 1});
  log.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kComplete,
                               Seconds(1.0), 1, 0, 0, 4, "release"});
  EXPECT_THROW((void)replay_events(log), Error);  // complete without grant

  obs::EventLog unfinished;
  unfinished.set_context(obs::EventLog::Context{8, "fifo", 1});
  unfinished.record(obs::ServiceEvent{obs::ServiceEvent::Kind::kSubmit,
                                      Seconds(0.0), 1, 0, 0, 0, "arrival"});
  EXPECT_THROW((void)replay_events(unfinished), Error);  // never completes
}

TEST(SvcTelemetry, TraceLanesSplitByTenantWithCounterTracks) {
  const std::vector<Job> jobs = bursty_jobs(5);
  FabricService service(telemetry_config(PolicyKind::kFifo, 5));
  const ServiceReport report = service.run(jobs);

  const obs::ChromeTraceSink& trace = *service.trace();
  EXPECT_EQ(trace.size(), report.records.size());  // one span per job
  EXPECT_GT(trace.counter_count(), 0u);

  std::ostringstream out;
  trace.write(out);
  const std::string json = out.str();
  // Tenant lanes are named, and all three counter tracks appear.
  EXPECT_NE(json.find("tenant 0"), std::string::npos);
  EXPECT_NE(json.find("queue depth"), std::string::npos);
  EXPECT_NE(json.find("wavelengths in use"), std::string::npos);
  EXPECT_NE(json.find("fragmentation"), std::string::npos);
}

TEST(SvcTelemetry, MetricsSampleOnTheVirtualTimeCadence) {
  const std::vector<Job> jobs = bursty_jobs(9);
  ServiceConfig config = telemetry_config(PolicyKind::kFifo, 9);
  config.telemetry.sample_cadence = Seconds(0.005);
  FabricService service(config);
  const ServiceReport report = service.run(jobs);

  const obs::MetricsRegistry& metrics = *service.metrics();
  const auto depth = metrics.find("svc.queue_depth");
  ASSERT_TRUE(depth.has_value());
  const obs::TimeSeries& series = metrics.series(*depth);
  // The sampler covers [0, makespan] at the cadence: at least
  // makespan/cadence points (ring capacity permitting).
  EXPECT_GE(series.size(),
            static_cast<std::size_t>(report.makespan.count() / 0.005));
  // Samples are stamped on the virtual clock, monotonically.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].time.count(), series[i - 1].time.count());
  }
  // Counter totals agree with the run.
  EXPECT_DOUBLE_EQ(metrics.value(*metrics.find("svc.submitted")),
                   static_cast<double>(jobs.size()));
  EXPECT_DOUBLE_EQ(metrics.value(*metrics.find("svc.completed")),
                   static_cast<double>(report.records.size()));
  // Fragmentation gauge lives in (0, 1].
  const auto frag = metrics.find("svc.fragmentation");
  ASSERT_TRUE(frag.has_value());
  EXPECT_GT(metrics.value(*frag), 0.0);
  EXPECT_LE(metrics.value(*frag), 1.0);
}

TEST(SvcTelemetry, RetunesFireOnLaneHandoffsBetweenTenants) {
  // A contended narrow fabric forces slices to change tenant hands.
  const std::vector<Job> jobs = bursty_jobs(13, 32);
  FabricService service(telemetry_config(PolicyKind::kBackfill, 13));
  (void)service.run(jobs);

  const obs::MetricsRegistry& metrics = *service.metrics();
  EXPECT_GT(metrics.value(*metrics.find("svc.retuned_lanes")), 0.0);
  bool saw_retune = false;
  for (const obs::ServiceEvent& e : service.event_log()->events()) {
    if (e.kind != obs::ServiceEvent::Kind::kRetune) continue;
    saw_retune = true;
    EXPECT_NE(e.cause.find("lanes="), std::string::npos);
    EXPECT_LT(e.w_lo, e.w_hi);
  }
  EXPECT_TRUE(saw_retune);
}

TEST(SvcTelemetry, SloBurnTracksMissedTargets) {
  const std::vector<Job> jobs = bursty_jobs(21, 32);
  ServiceConfig config = telemetry_config(PolicyKind::kFifo, 21);
  // An impossible target burns at 100%; a generous one never burns.
  config.slo_targets[0] = Seconds(1e-9);
  config.slo_targets[1] = Seconds(1e9);
  FabricService service(config);
  const ServiceReport report = service.run(jobs);

  const TenantStats* strict = nullptr;
  const TenantStats* loose = nullptr;
  for (const TenantStats& t : report.tenants) {
    if (t.tenant == 0) strict = &t;
    if (t.tenant == 1) loose = &t;
  }
  ASSERT_NE(strict, nullptr);
  ASSERT_NE(loose, nullptr);
  EXPECT_EQ(strict->slo_violations, strict->jobs);
  EXPECT_DOUBLE_EQ(strict->slo_burn, 1.0);
  EXPECT_EQ(loose->slo_violations, 0u);
  EXPECT_DOUBLE_EQ(loose->slo_burn, 0.0);

  // The rolling gauges saw the same story.
  const obs::MetricsRegistry& metrics = *service.metrics();
  EXPECT_DOUBLE_EQ(metrics.value(*metrics.find("svc.tenant0.slo_burn")), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value(*metrics.find("svc.tenant1.slo_burn")), 0.0);

  const std::string slo = slo_report(report);
  EXPECT_NE(slo.find("burning"), std::string::npos);
  EXPECT_NE(slo.find("SLO attainment"), std::string::npos);

  // Tenants without targets keep zeroed SLO fields.
  for (const TenantStats& t : report.tenants) {
    if (t.tenant > 1) {
      EXPECT_EQ(t.slo_target.count(), 0.0);
      EXPECT_EQ(t.slo_violations, 0u);
    }
  }
}

TEST(SvcTelemetry, LargestFreeTracksContiguousSlices) {
  WavelengthAllocator allocator(16);
  EXPECT_EQ(allocator.largest_free(), 16u);
  const auto a = allocator.allocate(4);   // [0,4)
  const auto b = allocator.allocate(4);   // [4,8)
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(allocator.largest_free(), 8u);
  allocator.release(*a, 4);               // free: [0,4) + [8,16)
  EXPECT_EQ(allocator.largest_free(), 8u);
  EXPECT_EQ(allocator.free_width(), 12u);
  allocator.release(*b, 4);               // coalesces back to [0,16)
  EXPECT_EQ(allocator.largest_free(), 16u);
}

}  // namespace
}  // namespace wrht::svc
