#include "wrht/topo/mesh.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::topo {
namespace {

TEST(Mesh, CoordinatesRoundTrip) {
  const Mesh m(3, 5);
  EXPECT_EQ(m.size(), 15u);
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t c = 0; c < 5; ++c) {
      const NodeId id = m.node_at(r, c);
      EXPECT_EQ(m.row_of(id), r);
      EXPECT_EQ(m.col_of(id), c);
    }
  }
}

TEST(Mesh, LineDistanceWithinRow) {
  const Mesh m(4, 6);
  EXPECT_EQ(m.line_distance(m.node_at(1, 0), m.node_at(1, 5)), 5u);
  EXPECT_EQ(m.line_distance(m.node_at(1, 5), m.node_at(1, 0)), 5u);
  EXPECT_EQ(m.line_distance(m.node_at(2, 3), m.node_at(2, 3)), 0u);
}

TEST(Mesh, LineDistanceWithinColumn) {
  const Mesh m(4, 6);
  EXPECT_EQ(m.line_distance(m.node_at(0, 2), m.node_at(3, 2)), 3u);
}

TEST(Mesh, LineDistanceRejectsDiagonal) {
  const Mesh m(4, 6);
  EXPECT_THROW(m.line_distance(m.node_at(0, 0), m.node_at(1, 1)),
               InvalidArgument);
}

TEST(Mesh, LineAllToAllWavelengths) {
  // Middle segment load floor(k/2)*ceil(k/2): 1, 2, 4, 6, 9, ...
  EXPECT_EQ(line_all_to_all_wavelengths(2), 1u);
  EXPECT_EQ(line_all_to_all_wavelengths(3), 2u);
  EXPECT_EQ(line_all_to_all_wavelengths(4), 4u);
  EXPECT_EQ(line_all_to_all_wavelengths(5), 6u);
  EXPECT_EQ(line_all_to_all_wavelengths(6), 9u);
  EXPECT_EQ(line_all_to_all_wavelengths(8), 16u);
}

TEST(Mesh, LineBoundIsTwiceTheRingBoundAsymptotically) {
  // The ring halves the load by wrapping: ceil(k^2/8) vs ~k^2/4.
  for (std::uint64_t k = 4; k <= 64; k *= 2) {
    EXPECT_GE(line_all_to_all_wavelengths(k),
              2 * ((k * k + 7) / 8) - k);
  }
}

TEST(Mesh, Validation) {
  EXPECT_THROW(Mesh(1, 4), InvalidArgument);
  const Mesh m(2, 2);
  EXPECT_THROW(m.node_at(0, 2), InvalidArgument);
}

}  // namespace
}  // namespace wrht::topo
