// Unit tests for the wrht::net layer itself: registry lookup/error
// behaviour, the shared adapter helpers (count_schedule,
// uniform_step_reports), the schedule-only backend's semantics and the
// unified rate convention.
#include "wrht/net/registry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/net/rate_convention.hpp"
#include "wrht/net/schedule_only.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

net::BackendConfig config_for(std::uint32_t nodes) {
  net::BackendConfig config;
  config.num_nodes = nodes;
  config.wavelengths = 8;
  return config;
}

// ------------------------------------------------------------- registry

TEST(BackendRegistry, UnknownNameListsRegisteredBackends) {
  net::register_builtin_backends();
  try {
    static_cast<void>(net::BackendRegistry::instance().create(
        "no-such-backend", config_for(8)));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos) << what;
    EXPECT_NE(what.find("optical-ring"), std::string::npos) << what;
    EXPECT_NE(what.find("schedule-only"), std::string::npos) << what;
  }
}

TEST(BackendRegistry, ZeroNodesRejected) {
  net::register_builtin_backends();
  EXPECT_THROW(static_cast<void>(net::BackendRegistry::instance().create(
                   "optical-ring", config_for(0))),
               InvalidArgument);
}

TEST(BackendRegistry, RegistrationIsIdempotent) {
  net::register_builtin_backends();
  const auto before = net::BackendRegistry::instance().names();
  net::register_builtin_backends();
  EXPECT_EQ(net::BackendRegistry::instance().names(), before);
}

TEST(BackendRegistry, DescribeUnknownIsEmpty) {
  EXPECT_EQ(net::BackendRegistry::instance().describe("no-such-backend"), "");
}

TEST(BackendRegistry, TorusShapeMustFactorNodeCount) {
  net::register_builtin_backends();
  net::BackendConfig config = config_for(12);
  config.torus_rows = 5;  // 5 * 0 != 12
  EXPECT_THROW(static_cast<void>(net::BackendRegistry::instance().create(
                   "optical-torus", config)),
               InvalidArgument);
  config.torus_rows = 3;
  config.torus_cols = 4;
  EXPECT_EQ(net::BackendRegistry::instance()
                .create("optical-torus", config)
                ->name(),
            "optical-torus");
}

// ------------------------------------------------------ shared helpers

TEST(NetHelpers, CountScheduleIsNoOpWithoutCounters) {
  const coll::Schedule sched = coll::ring_allreduce(8, 64);
  net::count_schedule(obs::Probe{}, sched);  // must not crash
}

TEST(NetHelpers, CountScheduleRecordsTraffic) {
  const coll::Schedule sched = coll::ring_allreduce(8, 64);
  obs::Counters counters;
  net::count_schedule(obs::Probe{nullptr, &counters}, sched);
  net::count_schedule(obs::Probe{nullptr, &counters}, sched);
  EXPECT_EQ(counters.value("net.executions"), 2u);
  EXPECT_EQ(counters.value("net.steps"), 2 * sched.num_steps());
  EXPECT_EQ(counters.value("net.traffic_elements"),
            2 * sched.total_traffic_elements());
}

TEST(NetHelpers, UniformStepReportsAreCumulative) {
  const std::vector<Seconds> times = {Seconds(1e-6), Seconds(3e-6),
                                      Seconds(2e-6)};
  const auto steps = net::uniform_step_reports(times);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].label, "step 0");
  EXPECT_EQ(steps[0].start.count(), 0.0);
  EXPECT_EQ(steps[1].start.count(), 1e-6);
  EXPECT_EQ(steps[2].start.count(), 4e-6);
  EXPECT_EQ(steps[2].duration.count(), 2e-6);
  EXPECT_EQ(steps[2].rounds, 1u);
}

// ------------------------------------------------- schedule-only backend

TEST(ScheduleOnly, CountsStepsWithoutPricingTime) {
  const net::ScheduleOnlyBackend backend(8);
  coll::Schedule sched("mixed", 8, 100);
  coll::Step& first = sched.add_step("exchange");
  coll::Transfer t;
  t.src = 0;
  t.dst = 1;
  t.count = 100;
  first.transfers.push_back(t);
  sched.add_step();  // empty barrier step: zero rounds

  const RunReport report = backend.execute(sched);
  EXPECT_EQ(report.backend, "schedule-only");
  EXPECT_EQ(report.steps, 2u);
  EXPECT_EQ(report.rounds, 1u);  // only the non-empty step counts a round
  EXPECT_EQ(report.total_time.count(), 0.0);
  ASSERT_EQ(report.step_reports.size(), 2u);
  EXPECT_EQ(report.step_reports[0].label, "exchange");
  EXPECT_EQ(report.step_reports[1].label, "step 1");  // fallback label
  EXPECT_FALSE(backend.capabilities().prices_time);
}

TEST(ScheduleOnly, RejectsOversizedSchedules) {
  const net::ScheduleOnlyBackend backend(4);
  EXPECT_THROW(static_cast<void>(backend.execute(coll::ring_allreduce(8, 64))),
               InvalidArgument);
}

// ------------------------------------------------------ rate convention

TEST(RateConvention, SharedEnumDrivesBothConfigs) {
  // One net::RateConvention feeds both engine configs; strict bits is 8x
  // slower per byte under both.
  EXPECT_EQ(net::effective_bytes_per_second(
                40e9, net::RateConvention::kPaperConvention),
            40e9);
  EXPECT_EQ(
      net::effective_bytes_per_second(40e9, net::RateConvention::kStrictBits),
      40e9 / 8.0);

  const optics::OpticalConfig optical =
      optics::OpticalConfig{}.with_convention(
          net::RateConvention::kStrictBits);
  EXPECT_EQ(optical.convention, net::RateConvention::kStrictBits);

  const elec::ElectricalConfig electrical =
      elec::ElectricalConfig{}.with_convention(
          net::RateConvention::kStrictBits);
  EXPECT_EQ(electrical.convention, net::RateConvention::kStrictBits);
  EXPECT_EQ(electrical.bytes_per_second(),
            electrical.link_rate.count() / 8.0);
}

TEST(RateConvention, ElectricalConventionBuilderRoundTrips) {
  const elec::ElectricalConfig cfg = elec::ElectricalConfig{}.with_convention(
      net::RateConvention::kStrictBits);
  EXPECT_EQ(cfg.convention, net::RateConvention::kStrictBits);
  EXPECT_EQ(elec::ElectricalConfig{}
                .with_convention(net::RateConvention::kPaperConvention)
                .convention,
            net::RateConvention::kPaperConvention);
}

TEST(RateConvention, ConventionChangesBackendPricing) {
  net::register_builtin_backends();
  const coll::Schedule sched = coll::ring_allreduce(8, 4096);
  for (const char* name : {"optical-ring", "electrical-flow"}) {
    net::BackendConfig config = config_for(8);
    const double paper = net::BackendRegistry::instance()
                             .create(name, config)
                             ->execute(sched)
                             .total_time.count();
    config.convention = net::RateConvention::kStrictBits;
    const double strict = net::BackendRegistry::instance()
                              .create(name, config)
                              ->execute(sched)
                              .total_time.count();
    EXPECT_GT(strict, paper) << name;
  }
}

}  // namespace
}  // namespace wrht
