// Differential equivalence harness for the scale work: every fast-path
// introduced for the 10^5..10^6-node regime (arena-backed Schedule storage,
// incremental sweep-cache patching, batched parallel RWA, flat
// step-signature keys, pooled DES inner loops) must change *nothing* but
// speed. The reference path is pinned as: heap schedule storage
// (ScheduleStorageScope), ScheduleCacheMode::kOff, rwa_threads = 1,
// single sweep worker. The new path enables everything at once. Reports
// are compared as serialized JSON — byte-for-byte — and sweeps as rendered
// figure-style CSV text, across all four executing backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/schedule.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/topo/torus.hpp"
#include "wrht/verify/overlap.hpp"

namespace wrht {
namespace {

std::string report_json(const RunReport& report) {
  std::ostringstream out;
  report.write_json(out);
  return out.str();
}

/// Figure-bench style CSV rendering of a sweep (same cell formatting the
/// bench_fig* binaries use), so "CSV rows identical" means the text a
/// paper figure is plotted from, not some looser numeric comparison.
std::string sweep_csv(const std::vector<exp::SweepRow>& rows) {
  std::ostringstream out;
  out << "workload,nodes,wavelengths,series,time_s,rounds,wavelengths_used\n";
  for (const exp::SweepRow& row : rows) {
    out << row.point.workload.name << ',' << row.point.nodes << ','
        << row.point.wavelengths << ',' << row.point.series << ','
        << Table::num(row.report.total_time.count(), 6) << ','
        << row.report.rounds << ',' << row.report.max_wavelengths_used()
        << '\n';
  }
  return out.str();
}

/// Mirror of the optical-torus factory's default factorization, so the
/// torus series' builder and backend agree on the grid shape.
std::pair<std::uint32_t, std::uint32_t> near_square(std::uint32_t n) {
  std::uint32_t rows = 1;
  for (std::uint32_t r = 1; static_cast<std::uint64_t>(r) * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  return {rows, n / rows};
}

void expect_transfers_equal(const coll::TransferList& a,
                            const coll::TransferList& b,
                            const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src) << where << " transfer " << i;
    EXPECT_EQ(a[i].dst, b[i].dst) << where << " transfer " << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << where << " transfer " << i;
    EXPECT_EQ(a[i].count, b[i].count) << where << " transfer " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << where << " transfer " << i;
    EXPECT_EQ(a[i].direction, b[i].direction) << where << " transfer " << i;
  }
}

void expect_schedules_equal(const coll::Schedule& a, const coll::Schedule& b,
                            const std::string& where) {
  EXPECT_EQ(a.algorithm(), b.algorithm()) << where;
  EXPECT_EQ(a.num_nodes(), b.num_nodes()) << where;
  EXPECT_EQ(a.elements(), b.elements()) << where;
  ASSERT_EQ(a.num_steps(), b.num_steps()) << where;
  for (std::size_t s = 0; s < a.num_steps(); ++s) {
    EXPECT_EQ(a.steps()[s].label, b.steps()[s].label) << where << " step "
                                                      << s;
    expect_transfers_equal(a.steps()[s].transfers, b.steps()[s].transfers,
                           where + " step " + std::to_string(s));
  }
}

void expect_deltas_equal(const coll::Schedule& a, const coll::Schedule& b,
                         const std::string& where) {
  EXPECT_EQ(coll::is_reconfig_free(a), coll::is_reconfig_free(b)) << where;
  const auto da = coll::reconfig_deltas(a);
  const auto db = coll::reconfig_deltas(b);
  ASSERT_EQ(da.size(), db.size()) << where;
  for (std::size_t s = 0; s < da.size(); ++s) {
    EXPECT_TRUE(da[s].added == db[s].added) << where << " step " << s;
    EXPECT_TRUE(da[s].removed == db[s].removed) << where << " step " << s;
    EXPECT_EQ(da[s].kept, db[s].kept) << where << " step " << s;
  }
}

/// The seeded grid every old-vs-new comparison runs over: three element
/// sizes (exercising the incremental cache's rescale tier on the
/// full-vector series), two node counts, two wavelength budgets, and six
/// series spanning all four executing backends plus random-fit RWA.
exp::SweepSpec grid_spec() {
  exp::ensure_initialized();
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"w1", 1024}, exp::Workload{"w2", 2048},
                    exp::Workload{"w3", 3072}};
  spec.nodes = {8, 16};
  spec.wavelengths = {4, 8};
  spec.series = {
      // Full-vector schedules on the optical ring: the incremental cache
      // serves w2/w3 by patching w1's build.
      exp::Series{.name = "wrht", .algorithm = "wrht"},
      exp::Series{.name = "btree", .algorithm = "btree"},
      // Chunked schedule: the cache must rebuild, never patch.
      exp::Series{.name = "ring_flow", .algorithm = "ring",
                  .backend = "electrical-flow"},
      exp::Series{.name = "wrht_packet", .algorithm = "wrht",
                  .backend = "electrical-packet"},
      // Random-fit RWA: the per-transfer Fisher-Yates rng draw sequence
      // must survive the first-fit fast-path split untouched.
      exp::Series{.name = "wrht_rf", .algorithm = "wrht",
                  .configure = [](const exp::SweepPoint&,
                                  net::BackendConfig& c) {
                    c.random_fit_rwa = true;
                  }},
      // Dimension-local torus WRHT through a custom builder (the cache's
      // always-rebuild tier for builder series).
      exp::Series{.name = "torus_wrht", .backend = "optical-torus",
                  .builder = [](const exp::SweepPoint& point) {
                    const auto [rows, cols] = near_square(point.nodes);
                    core::WrhtOptions options;
                    options.wavelengths = point.wavelengths;
                    options.group_size =
                        core::plan_wrht(rows, point.wavelengths).group_size;
                    return core::torus_wrht_allreduce(
                        topo::Torus(rows, cols), point.workload.elements,
                        options);
                  }},
  };
  spec.config.validate_node_capacity = false;
  return spec;
}

/// The tentpole gate: reference path (heap storage, no cache, one RWA
/// worker, one sweep worker) versus everything-on (arena storage,
/// incremental cache, forced 4-way RWA batch, 3 sweep workers) across the
/// seeded grid — every RunReport must serialize to byte-identical JSON and
/// the figure CSV text must match exactly.
TEST(ScaleEquivalence, OldPathAndNewPathAreByteIdentical) {
  std::vector<exp::SweepRow> reference;
  {
    coll::ScheduleStorageScope heap(coll::ScheduleStorage::kHeap);
    exp::SweepSpec spec = grid_spec();
    spec.schedule_cache = exp::ScheduleCacheMode::kOff;
    spec.config.rwa_threads = 1;
    reference = exp::SweepRunner(1).run(spec);
  }

  obs::Counters counters;
  exp::SweepSpec spec = grid_spec();
  spec.schedule_cache = exp::ScheduleCacheMode::kIncremental;
  spec.config.rwa_threads = 4;
  spec.counters = &counters;
  const auto fast = exp::SweepRunner(3).run(spec);

  ASSERT_EQ(reference.size(), fast.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(report_json(reference[i].report), report_json(fast[i].report))
        << reference[i].point.series << " @ workload "
        << reference[i].point.workload.name << " N "
        << reference[i].point.nodes << " w " << reference[i].point.wavelengths;
  }
  EXPECT_EQ(sweep_csv(reference), sweep_csv(fast));

  // The fast path must actually have taken the fast path: the full-vector
  // series' extra element sizes are served by rescale patches.
  EXPECT_GT(counters.value("sweep.schedule.patches"), 0u);
  EXPECT_LT(counters.value("sweep.schedule.builds"),
            reference.size());
}

TEST(ScaleEquivalence, CacheModesProduceIdenticalCsvRows) {
  const auto render = [](exp::ScheduleCacheMode mode) {
    exp::SweepSpec spec = grid_spec();
    spec.schedule_cache = mode;
    return sweep_csv(exp::SweepRunner(1).run(spec));
  };
  const std::string off = render(exp::ScheduleCacheMode::kOff);
  EXPECT_EQ(off, render(exp::ScheduleCacheMode::kExact));
  EXPECT_EQ(off, render(exp::ScheduleCacheMode::kIncremental));
}

/// Batched first-fit RWA is a pure function of its input: any worker count
/// (including the sequential w=1 path) must produce byte-identical reports
/// on both optical engines.
TEST(ScaleEquivalence, RwaWorkerCountNeverChangesReports) {
  exp::ensure_initialized();
  const auto& registry = net::BackendRegistry::instance();

  core::WrhtOptions options;
  options.wavelengths = 8;
  options.group_size = core::plan_wrht(64, 8).group_size;
  const coll::Schedule ring_sched = core::wrht_allreduce(64, 4096, options);
  core::WrhtOptions row_options = options;
  row_options.group_size = core::plan_wrht(8, 8).group_size;
  const coll::Schedule torus_sched =
      core::torus_wrht_allreduce(topo::Torus(8, 8), 4096, row_options);

  for (const char* backend : {"optical-ring", "optical-torus"}) {
    const coll::Schedule& sched =
        backend == std::string("optical-ring") ? ring_sched : torus_sched;
    std::string baseline;
    for (const unsigned threads : {1u, 2u, 8u}) {
      net::BackendConfig config;
      config.num_nodes = 64;
      config.wavelengths = 8;
      config.validate_node_capacity = false;
      config.rwa_threads = threads;
      const std::string json =
          report_json(registry.create(backend, config)->execute(sched));
      if (baseline.empty()) {
        baseline = json;
      } else {
        EXPECT_EQ(baseline, json) << backend << " threads=" << threads;
      }
    }
  }
}

/// Satellite property test: arena-backed and heap-backed builds are value
/// identical — steps, labels, transfers, reconfig deltas and
/// is_reconfig_free — across 200 seeded configurations of every registered
/// algorithm. Infeasible configurations must fail identically on both
/// paths.
TEST(ScaleEquivalence, ArenaAndHeapSchedulesMatchAcross200Configs) {
  exp::ensure_initialized();
  const std::vector<std::string> algorithms = {
      "ring", "hring", "btree", "recursive_doubling", "halving_doubling",
      "wrht"};
  const std::vector<std::uint32_t> node_choices = {2,  3,  4,  6,  8, 12,
                                                   16, 17, 24, 32, 33, 64};

  std::mt19937 rng(20230707);
  int built = 0;
  for (int config_index = 0; config_index < 200; ++config_index) {
    coll::AllreduceParams params;
    params.num_nodes = node_choices[rng() % node_choices.size()];
    params.elements = 1 + rng() % 4096;
    params.wavelengths = 1u << static_cast<unsigned>(1 + rng() % 5);
    const std::string& algorithm = algorithms[rng() % algorithms.size()];
    if (algorithm == "hring" || algorithm == "wrht") {
      // Draw m in [2, N]; builders reject infeasible combinations and the
      // rejection itself must be storage-independent.
      params.group_size =
          2 + static_cast<std::uint32_t>(rng() % params.num_nodes);
    }
    const std::string where = algorithm + " N=" +
                              std::to_string(params.num_nodes) + " m=" +
                              std::to_string(params.group_size) + " w=" +
                              std::to_string(params.wavelengths);

    std::optional<coll::Schedule> heap_sched;
    std::string heap_error;
    try {
      coll::ScheduleStorageScope scope(coll::ScheduleStorage::kHeap);
      heap_sched = coll::Registry::instance().build(algorithm, params);
    } catch (const std::exception& e) {
      heap_error = e.what();
    }

    std::optional<coll::Schedule> arena_sched;
    std::string arena_error;
    try {
      coll::ScheduleStorageScope scope(coll::ScheduleStorage::kArena);
      arena_sched = coll::Registry::instance().build(algorithm, params);
    } catch (const std::exception& e) {
      arena_error = e.what();
    }

    ASSERT_EQ(heap_sched.has_value(), arena_sched.has_value())
        << where << " heap error: " << heap_error
        << " arena error: " << arena_error;
    if (!heap_sched) {
      EXPECT_EQ(heap_error, arena_error) << where;
      continue;
    }
    ++built;
    EXPECT_EQ(heap_sched->storage(), coll::ScheduleStorage::kHeap) << where;
    EXPECT_EQ(arena_sched->storage(), coll::ScheduleStorage::kArena) << where;
    expect_schedules_equal(*heap_sched, *arena_sched, where);
    expect_deltas_equal(*heap_sched, *arena_sched, where);
  }
  // The draw must not degenerate into rejections only.
  EXPECT_GE(built, 100) << "seeded draw produced too few feasible configs";
}

/// The incremental cache's patch tier (copy + rescale_elements) must be
/// indistinguishable from a direct build, and its outputs must still pass
/// the overlapped-reconfiguration consistency checker.
TEST(ScaleEquivalence, RescalePatchEqualsDirectBuildAndStaysConsistent) {
  exp::ensure_initialized();
  core::WrhtOptions options;
  options.wavelengths = 8;
  options.group_size = core::plan_wrht(32, 8).group_size;

  const coll::Schedule base = core::wrht_allreduce(32, 1024, options);
  ASSERT_TRUE(base.full_vector());

  coll::Schedule patched(base);
  patched.rescale_elements(4096);
  const coll::Schedule direct = core::wrht_allreduce(32, 4096, options);
  expect_schedules_equal(patched, direct, "wrht N=32 rescale 1024->4096");
  expect_deltas_equal(patched, direct, "wrht N=32 rescale 1024->4096");

  verify::OverlapOptions overlap;
  overlap.wavelengths = 8;
  const verify::CheckResult result =
      verify::check_overlap_consistency(patched, 32, overlap);
  EXPECT_TRUE(result.ok()) << result.summary();
}

}  // namespace
}  // namespace wrht
