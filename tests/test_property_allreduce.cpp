// Parameterized property suites: every algorithm, over sweeps of node
// counts and parameters, must (1) implement exact All-reduce semantics,
// (2) match its closed-form step count, and (3) for WRHT, stay within its
// declared wavelength requirement on the optical ring.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

// ---------------------------------------------------------------------------
// Property 1: All-reduce semantics for every (algorithm, N).

using AlgoCase = std::tuple<std::string, std::uint32_t>;

class AllAlgorithmsCorrect : public testing::TestWithParam<AlgoCase> {};

TEST_P(AllAlgorithmsCorrect, ProducesExactGlobalSum) {
  const auto& [name, n] = GetParam();
  core::register_wrht_algorithm();
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = 2 * n + 3;
  p.group_size = name == "hring" ? 4u : (name == "wrht" ? 3u : 0u);
  p.wavelengths = 8;
  const coll::Schedule s = coll::Registry::instance().build(name, p);
  Rng rng(1234 + n);
  EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithmsCorrect,
    testing::Combine(testing::Values("ring", "hring", "btree",
                                     "recursive_doubling", "halving_doubling",
                                     "wrht"),
                     testing::Values(2u, 3u, 4u, 5u, 8u, 12u, 16u, 27u, 32u,
                                     45u, 64u)),
    [](const testing::TestParamInfo<AlgoCase>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 2: generated schedule lengths equal the closed forms.

class StepFormulas : public testing::TestWithParam<std::uint32_t> {};

TEST_P(StepFormulas, RingMatches) {
  const std::uint32_t n = GetParam();
  EXPECT_EQ(coll::ring_allreduce(n, 2 * n).num_steps(),
            coll::ring_allreduce_steps(n));
}

TEST_P(StepFormulas, BtreeMatches) {
  const std::uint32_t n = GetParam();
  EXPECT_EQ(coll::btree_allreduce(n, 4).num_steps(),
            coll::btree_allreduce_steps(n));
}

TEST_P(StepFormulas, RecursiveDoublingMatches) {
  const std::uint32_t n = GetParam();
  EXPECT_EQ(coll::recursive_doubling_allreduce(n, 4).num_steps(),
            coll::recursive_doubling_steps(n));
}

TEST_P(StepFormulas, HringMatchesBuilderFormula) {
  const std::uint32_t n = GetParam();
  for (std::uint32_t m : {2u, 3u, 5u}) {
    if (m >= n) continue;
    EXPECT_EQ(coll::hring_allreduce(n, 2 * n, m).num_steps(),
              coll::hring_builder_steps(n, m))
        << "n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StepFormulas,
                         testing::Values(2u, 3u, 5u, 8u, 13u, 16u, 21u, 32u,
                                         50u, 64u, 100u));

// ---------------------------------------------------------------------------
// Property 3: WRHT wavelength discipline on the optical ring.

using WrhtCase = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class WrhtOptical : public testing::TestWithParam<WrhtCase> {};

TEST_P(WrhtOptical, StaysWithinDeclaredWavelengths) {
  const auto& [n, m, w] = GetParam();
  if (m >= n) GTEST_SKIP() << "group covers whole ring";
  const core::WrhtStepPlan plan = core::wrht_plan(n, m, w);
  // The declared requirement is the analytic (load) bound; first-fit
  // colouring of the final all-to-all can need up to 1.5x it (DESIGN.md).
  const std::uint64_t operational_bound =
      plan.final_all_to_all ? (3 * plan.wavelengths_required + 1) / 2
                            : plan.wavelengths_required;
  if (operational_bound > w) {
    GTEST_SKIP() << "configuration declared infeasible";
  }
  optics::OpticalConfig cfg;
  cfg.wavelengths = w;
  cfg.allow_multi_round_steps = false;  // must fit in single rounds
  const optics::RingNetwork net(n, cfg);
  const auto sched = core::wrht_allreduce(n, 4, core::WrhtOptions{m, w});
  const auto res = net.execute(sched);
  EXPECT_LE(res.max_wavelengths_used, operational_bound);
  EXPECT_EQ(res.steps, plan.total_steps);
  EXPECT_EQ(res.total_rounds, res.steps);
}

TEST_P(WrhtOptical, StepsMatchPlanEvenWhenStarved) {
  const auto& [n, m, w] = GetParam();
  if (m >= n) GTEST_SKIP();
  optics::OpticalConfig cfg;
  cfg.wavelengths = w;
  const optics::RingNetwork net(n, cfg);
  const auto sched = core::wrht_allreduce(n, 4, core::WrhtOptions{m, w});
  const auto res = net.execute(sched);
  EXPECT_EQ(res.steps, core::wrht_plan(n, m, w).total_steps);
  EXPECT_GE(res.total_rounds, res.steps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WrhtOptical,
    testing::Combine(testing::Values(16u, 33u, 64u, 100u),
                     testing::Values(3u, 5u, 9u, 17u),
                     testing::Values(2u, 4u, 8u, 64u)),
    [](const testing::TestParamInfo<WrhtCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Property 4: the optical executor and the data executor agree on step
// structure for every registered algorithm (steps with transfers are
// conflict-checkable and non-empty).

class ScheduleShape : public testing::TestWithParam<std::string> {};

TEST_P(ScheduleShape, NoEmptyStepsAndValidates) {
  core::register_wrht_algorithm();
  coll::AllreduceParams p;
  p.num_nodes = 24;
  p.elements = 48;
  p.group_size = 4;
  p.wavelengths = 8;
  const coll::Schedule s =
      coll::Registry::instance().build(GetParam(), p);
  s.validate();
  EXPECT_GT(s.num_steps(), 0u);
  for (const auto& step : s.steps()) {
    EXPECT_FALSE(step.transfers.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleShape,
                         testing::Values("ring", "hring", "btree",
                                         "recursive_doubling",
                                         "halving_doubling", "wrht"));

}  // namespace
}  // namespace wrht
