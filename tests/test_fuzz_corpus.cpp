// Tier-1 replay of the checked-in fuzz regression corpus.
//
// Every line of tests/corpus/fuzz_regressions.txt is a FuzzCase that once
// failed (and was shrunk) or pins a boundary the fuzzer's new draw
// dimensions (reconfig policy, planner candidates) must keep covering.
// Replaying them here means a reintroduced bug fails fast in tier-1
// instead of waiting for the seeded fuzz sweep to re-draw it.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/verify/fuzz.hpp"

namespace wrht {
namespace {

std::vector<verify::FuzzCase> load_corpus() {
  const std::string path =
      std::string(WRHT_REPO_ROOT) + "/tests/corpus/fuzz_regressions.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<verify::FuzzCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    cases.push_back(verify::FuzzCase::parse(line));
  }
  return cases;
}

TEST(FuzzCorpus, EveryRegressionCasePasses) {
  const std::vector<verify::FuzzCase> cases = load_corpus();
  ASSERT_FALSE(cases.empty());
  for (const verify::FuzzCase& c : cases) {
    const verify::CheckResult result = verify::check_case(c);
    EXPECT_TRUE(result.ok()) << c.to_string() << "\n" << result.summary();
  }
}

TEST(FuzzCorpus, CorpusCoversNewDrawDimensions) {
  const std::vector<verify::FuzzCase> cases = load_corpus();
  bool planner = false;
  bool on_retune = false;
  bool overlapped = false;
  for (const verify::FuzzCase& c : cases) {
    planner |= c.algorithm.rfind("plan:", 0) == 0;
    on_retune |= c.reconfig_policy == net::ReconfigPolicy::kOnRetune;
    overlapped |= c.reconfig_policy == net::ReconfigPolicy::kOverlapped;
  }
  EXPECT_TRUE(planner) << "corpus lost its planner-candidate entries";
  EXPECT_TRUE(on_retune && overlapped)
      << "corpus lost its non-default reconfig-policy entries";

  bool leased = false;
  bool leased_offset = false;
  for (const verify::FuzzCase& c : cases) {
    leased |= c.leased();
    leased_offset |= c.leased() && c.w_lo > 0;
  }
  EXPECT_TRUE(leased) << "corpus lost its leased-slice entries";
  EXPECT_TRUE(leased_offset)
      << "corpus lost its offset (w_lo > 0) leased-slice entries";
}

TEST(FuzzCorpus, SerializeParseRoundTrips) {
  for (const verify::FuzzCase& c : load_corpus()) {
    const verify::FuzzCase again = verify::FuzzCase::parse(c.serialize());
    EXPECT_EQ(again.algorithm, c.algorithm);
    EXPECT_EQ(again.num_nodes, c.num_nodes);
    EXPECT_EQ(again.elements, c.elements);
    EXPECT_EQ(again.group_size, c.group_size);
    EXPECT_EQ(again.wavelengths, c.wavelengths);
    EXPECT_EQ(again.reconfig_policy, c.reconfig_policy);
    EXPECT_EQ(again.w_lo, c.w_lo);
    EXPECT_EQ(again.w_hi, c.w_hi);
  }
}

TEST(FuzzCorpus, ParseRejectsMalformedLines) {
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2"), InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 warp_speed"),
               InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 every_round extra"),
               InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 0 1 2 1 every_round"),
               InvalidArgument);
  // Lease tokens come in pairs, name a non-empty slice, and end the line.
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 every_round 3"),
               InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 every_round 5 3"),
               InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 every_round 0 0"),
               InvalidArgument);
  EXPECT_THROW(verify::FuzzCase::parse("wrht 5 1 2 1 every_round 3 5 9"),
               InvalidArgument);
}

/// A leased draw and a sentinel (no-lease) case must both round-trip.
TEST(FuzzCorpus, LeasedCaseSerializeRoundTrips) {
  verify::FuzzCase c;
  c.algorithm = "ring";
  c.num_nodes = 8;
  c.elements = 8;
  c.wavelengths = 2;
  c.w_lo = 3;
  c.w_hi = 5;
  EXPECT_EQ(c.serialize(), "ring 8 8 2 2 every_round 3 5");
  const verify::FuzzCase again = verify::FuzzCase::parse(c.serialize());
  EXPECT_EQ(again.w_lo, 3u);
  EXPECT_EQ(again.w_hi, 5u);
  EXPECT_TRUE(again.leased());

  c.w_lo = 0;
  c.w_hi = 0;
  EXPECT_EQ(c.serialize(), "ring 8 8 2 2 every_round");
  EXPECT_FALSE(verify::FuzzCase::parse(c.serialize()).leased());
}

/// The extended sampler must actually emit the new dimensions.
TEST(FuzzCorpus, SamplerDrawsPlannerCandidatesAndPolicies) {
  verify::FuzzOptions options;
  options.iterations = 60;
  options.max_nodes = 12;
  options.max_elements = 16;
  const verify::FuzzReport report = verify::run_fuzz(options);
  EXPECT_TRUE(report.ok()) << (report.minimal_failure
                                   ? report.minimal_failure->config.to_string()
                                   : "");
  bool planner = false;
  for (const auto& [algorithm, count] : report.cases_per_algorithm) {
    planner |= algorithm.rfind("plan:", 0) == 0 && count > 0;
  }
  EXPECT_TRUE(planner) << "60 draws never sampled a planner candidate";
}

}  // namespace
}  // namespace wrht
