#include <gtest/gtest.h>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht::optics {
namespace {

OpticalConfig retune_cfg(std::uint32_t w = 64) {
  OpticalConfig cfg;
  cfg.wavelengths = w;
  cfg.reconfig_policy = net::ReconfigPolicy::kOnRetune;
  return cfg;
}

TEST(ReconfigAccounting, RingPaysReconfigurationOnce) {
  // Every Ring All-reduce step reuses the identical neighbour circuits, so
  // retune-aware accounting charges a single reconfiguration.
  const std::uint32_t n = 32;
  const RingNetwork net(n, retune_cfg());
  const auto res = net.execute(coll::ring_allreduce(n, 64));
  EXPECT_EQ(res.reconfigurations, 1u);
  EXPECT_GT(res.retuned_mrrs, 0u);
}

TEST(ReconfigAccounting, EveryRoundModeCountsAllRounds) {
  const std::uint32_t n = 32;
  OpticalConfig cfg;  // default kEveryRound
  const RingNetwork net(n, cfg);
  const auto res = net.execute(coll::ring_allreduce(n, 64));
  EXPECT_EQ(res.reconfigurations, res.total_rounds);
  EXPECT_EQ(res.retuned_mrrs, 0u);  // not tracked in Eq.6 mode
}

TEST(ReconfigAccounting, RetuneModeNeverSlower) {
  const std::uint32_t n = 30;
  for (const auto& sched :
       {coll::ring_allreduce(n, 60), coll::btree_allreduce(n, 60),
        core::wrht_allreduce(n, 60, core::WrhtOptions{5, 8})}) {
    OpticalConfig cfg;
    cfg.wavelengths = 8;
    const RingNetwork every(n, cfg);
    const RingNetwork retune(n, retune_cfg(8));
    EXPECT_LE(retune.execute(sched).total_time.count(),
              every.execute(sched).total_time.count() + 1e-15)
        << sched.algorithm();
  }
}

TEST(ReconfigAccounting, RingGainsMoreThanWrht) {
  // WRHT's steps all differ (group fold, exchange, broadcast), so it keeps
  // paying; Ring collapses to one reconfiguration.
  const std::uint32_t n = 64;
  const std::size_t elements = 64;  // latency-dominated payload
  OpticalConfig cfg;
  cfg.wavelengths = 8;
  const RingNetwork every(n, cfg);
  const RingNetwork retune(n, retune_cfg(8));

  const auto ring = coll::ring_allreduce(n, elements);
  const auto wrht = core::wrht_allreduce(n, elements, core::WrhtOptions{9, 8});

  const double ring_gain = every.execute(ring).total_time.count() /
                           retune.execute(ring).total_time.count();
  const double wrht_gain = every.execute(wrht).total_time.count() /
                           retune.execute(wrht).total_time.count();
  EXPECT_GT(ring_gain, 10.0);
  EXPECT_LT(wrht_gain, 2.0);
}

TEST(ReconfigAccounting, WrhtStillPaysPerStep) {
  const std::uint32_t n = 27;
  const RingNetwork net(n, retune_cfg(8));
  const auto sched = core::wrht_allreduce(n, 32, core::WrhtOptions{3, 8});
  const auto res = net.execute(sched);
  // Each WRHT step retunes (different lightpath sets).
  EXPECT_EQ(res.reconfigurations, res.total_rounds);
}

TEST(ReconfigAccounting, NodeCapacityValidatedInBothModes) {
  OpticalConfig cfg;
  cfg.wavelengths = 64;
  cfg.node_hardware.interfaces_per_direction = 1;
  cfg.node_hardware.mrrs_per_interface = 2;
  const RingNetwork net(16, cfg);
  // A rep collecting from 3 members on one side needs 3 RX rings.
  const auto sched = core::wrht_allreduce(16, 8, core::WrhtOptions{8, 64});
  EXPECT_THROW(net.execute(sched), InfeasibleSchedule);
}

TEST(ReconfigAccounting, CapacityCheckCanBeDisabled) {
  OpticalConfig cfg;
  cfg.wavelengths = 64;
  cfg.node_hardware.interfaces_per_direction = 1;
  cfg.node_hardware.mrrs_per_interface = 2;
  cfg.validate_node_capacity = false;
  const RingNetwork net(16, cfg);
  const auto sched = core::wrht_allreduce(16, 8, core::WrhtOptions{8, 64});
  EXPECT_NO_THROW(net.execute(sched));
}

}  // namespace
}  // namespace wrht::optics
