#include "wrht/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Seconds(3.0), [&] { fired.push_back(3); });
  q.schedule(Seconds(1.0), [&] { fired.push_back(1); });
  q.schedule(Seconds(2.0), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Seconds(1.0), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  q.schedule(Seconds(5.0), [] {});
  q.schedule(Seconds(2.0), [] {});
  EXPECT_DOUBLE_EQ(q.next_time().count(), 2.0);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Seconds(1.0), [&] { fired.push_back(1); });
  const EventId id = q.schedule(Seconds(2.0), [&] { fired.push_back(2); });
  q.schedule(Seconds(3.0), [&] { fired.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.schedule(Seconds(1.0), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  EventQueue q;
  const EventId a = q.schedule(Seconds(1.0), [] {});
  const EventId b = q.schedule(Seconds(2.0), [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopCarriesFireTime) {
  EventQueue q;
  q.schedule(Seconds(1.5), [] {});
  const auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time.count(), 1.5);
}

TEST(EventQueue, Validation) {
  EventQueue q;
  EXPECT_THROW(q.schedule(Seconds(1.0), EventFn{}), InvalidArgument);
  EXPECT_THROW(q.cancel(99), InvalidArgument);
  EXPECT_THROW(q.pop(), InvalidArgument);
  EXPECT_THROW(q.next_time(), InvalidArgument);
}

TEST(EventQueue, CancelOfFiredEventIsNoOp) {
  EventQueue q;
  const EventId fired = q.schedule(Seconds(1.0), [] {});
  const EventId live = q.schedule(Seconds(2.0), [] {});
  q.pop().fn();
  EXPECT_EQ(q.size(), 1u);
  // Cancelling the already-fired id must not decrement the live count (a
  // double-decrement here used to corrupt size() and could underflow it).
  q.cancel(fired);
  EXPECT_EQ(q.size(), 1u);
  q.cancel(fired);
  EXPECT_EQ(q.size(), 1u);
  q.cancel(live);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelEveryFiredEventKeepsSizeConsistent) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.schedule(Seconds(i), [] {}));
  }
  while (!q.empty()) q.pop().fn();
  for (const EventId id : ids) q.cancel(id);  // all no-ops
  EXPECT_EQ(q.size(), 0u);
  q.schedule(Seconds(9.0), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(Seconds(1.0), [] {});
  q.schedule(Seconds(2.0), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // Ids restart from zero; the queue is fully reusable.
  const EventId id = q.schedule(Seconds(3.0), [] {});
  EXPECT_EQ(id, 0u);
  EXPECT_DOUBLE_EQ(q.next_time().count(), 3.0);
}

TEST(EventQueue, ManyEventsStaySorted) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule(Seconds(t), [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop().fn();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace wrht::sim
