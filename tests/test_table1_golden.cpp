// Golden regression for the committed Table 1 artifact: every step count in
// table1_steps.csv is recomputed from the closed forms and the generated
// schedules, so silent drift in either the builders or the analysis module
// fails this test before it reaches a published figure.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/wrht_schedule.hpp"

#ifndef WRHT_REPO_ROOT
#error "WRHT_REPO_ROOT must point at the repository root"
#endif

namespace wrht {
namespace {

// Table 1's fixed experimental setup (paper §5.2).
constexpr std::uint32_t kNodes = 1024;
constexpr std::uint32_t kWavelengths = 64;
constexpr std::uint32_t kHringGroup = 5;
constexpr std::uint32_t kWrhtGroup = 129;
constexpr std::size_t kElements = 4096;

struct GoldenRow {
  std::uint64_t closed_form = 0;
  std::uint64_t generated = 0;
  std::uint64_t paper = 0;
};

std::map<std::string, GoldenRow> load_golden() {
  const std::string path = std::string(WRHT_REPO_ROOT) + "/table1_steps.csv";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;

  std::map<std::string, GoldenRow> rows;
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "algorithm,closed_form,generated,paper");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string algorithm, cell;
    GoldenRow row;
    std::getline(ss, algorithm, ',');
    std::getline(ss, cell, ',');
    row.closed_form = std::stoull(cell);
    std::getline(ss, cell, ',');
    row.generated = std::stoull(cell);
    std::getline(ss, cell, ',');
    row.paper = std::stoull(cell);
    rows[algorithm] = row;
  }
  return rows;
}

TEST(Table1Golden, CsvListsAllFourAlgorithms) {
  const auto rows = load_golden();
  ASSERT_EQ(rows.size(), 4u);
  for (const char* name : {"ring", "hring", "btree", "wrht"}) {
    EXPECT_TRUE(rows.count(name)) << name;
  }
}

TEST(Table1Golden, StepCountsMatchRecomputedClosedForms) {
  const auto rows = load_golden();
  ASSERT_TRUE(rows.count("ring") && rows.count("hring") &&
              rows.count("btree") && rows.count("wrht"));

  EXPECT_EQ(rows.at("ring").closed_form,
            coll::ring_allreduce_steps(kNodes));
  EXPECT_EQ(rows.at("hring").closed_form,
            coll::hring_steps(kNodes, kHringGroup, kWavelengths));
  EXPECT_EQ(rows.at("btree").closed_form,
            coll::btree_allreduce_steps(kNodes));
  EXPECT_EQ(rows.at("wrht").closed_form,
            core::wrht_plan(kNodes, kWrhtGroup, kWavelengths).total_steps);
}

TEST(Table1Golden, StepCountsMatchRegeneratedSchedules) {
  const auto rows = load_golden();
  EXPECT_EQ(rows.at("ring").generated,
            coll::ring_allreduce(kNodes, kElements).num_steps());
  EXPECT_EQ(rows.at("hring").generated,
            coll::hring_allreduce(kNodes, kElements, kHringGroup).num_steps());
  EXPECT_EQ(rows.at("btree").generated,
            coll::btree_allreduce(kNodes, kElements).num_steps());
  EXPECT_EQ(rows.at("wrht").generated,
            core::wrht_allreduce(kNodes, kElements,
                                 core::WrhtOptions{kWrhtGroup, kWavelengths})
                .num_steps());
}

TEST(Table1Golden, PaperColumnsAreTheIcppNumbers) {
  const auto rows = load_golden();
  EXPECT_EQ(rows.at("ring").paper, 2046u);
  EXPECT_EQ(rows.at("hring").paper, 417u);
  EXPECT_EQ(rows.at("btree").paper, 20u);
  EXPECT_EQ(rows.at("wrht").paper, 3u);
}

TEST(Table1Golden, ClosedFormAgreesWithGeneratedEverywhere) {
  for (const auto& [name, row] : load_golden()) {
    EXPECT_EQ(row.closed_form, row.generated) << name;
    EXPECT_EQ(row.closed_form, row.paper) << name;
  }
}

}  // namespace
}  // namespace wrht
