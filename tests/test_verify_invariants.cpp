#include "wrht/verify/invariants.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht {
namespace {

using verify::InvariantOptions;

coll::Schedule wrht_sched(std::uint32_t n, std::uint32_t m, std::uint32_t w,
                          std::size_t elements = 64) {
  return core::wrht_allreduce(n, elements, core::WrhtOptions{m, w});
}

// ----------------------------------------------------- schedule structure

TEST(VerifyInvariants, StructureAcceptsGeneratedSchedules) {
  EXPECT_TRUE(
      verify::check_schedule_structure(coll::ring_allreduce(8, 64)).ok());
  EXPECT_TRUE(verify::check_schedule_structure(wrht_sched(30, 5, 64)).ok());
}

TEST(VerifyInvariants, StructureFlagsHandMadeViolations) {
  coll::Schedule bad("bad", 4, 8);
  bad.add_step("empty");
  coll::Step& s = bad.add_step("broken");
  using coll::TransferKind;
  s.transfers.push_back(
      coll::Transfer{0, 0, 0, 4, TransferKind::kReduce, {}});  // self transfer
  s.transfers.push_back(
      coll::Transfer{1, 9, 0, 4, TransferKind::kReduce, {}});  // node range
  s.transfers.push_back(
      coll::Transfer{2, 3, 6, 4, TransferKind::kReduce, {}});  // overflow
  s.transfers.push_back(
      coll::Transfer{3, 2, 0, 0, TransferKind::kReduce, {}});  // empty

  const verify::CheckResult result = verify::check_schedule_structure(bad);
  ASSERT_FALSE(result.ok());
  std::size_t empty = 0, self = 0, node = 0, range = 0;
  for (const verify::Finding& f : result.findings()) {
    empty += f.check == "invariant.structure.empty_step";
    self += f.check == "invariant.structure.self_transfer";
    node += f.check == "invariant.structure.node_range";
    range += f.check == "invariant.structure.element_range";
  }
  EXPECT_EQ(empty, 1u);
  EXPECT_EQ(self, 1u);
  EXPECT_EQ(node, 1u);
  EXPECT_EQ(range, 2u) << result.summary();
}

// ------------------------------------------------------ conflict freedom

TEST(VerifyInvariants, ConflictFreedomHoldsForAllBuilders) {
  InvariantOptions options;
  options.wavelengths = 8;
  EXPECT_TRUE(
      verify::check_conflict_freedom(coll::ring_allreduce(16, 64), 16, options)
          .ok());
  EXPECT_TRUE(
      verify::check_conflict_freedom(wrht_sched(30, 5, 8), 30, options).ok());
}

TEST(VerifyInvariants, ConflictFreedomSurvivesMultiRoundSplitting) {
  // One wavelength forces heavy splitting; every round must still verify.
  InvariantOptions options;
  options.wavelengths = 1;
  const verify::CheckResult result =
      verify::check_conflict_freedom(wrht_sched(24, 6, 64), 24, options);
  EXPECT_TRUE(result.ok()) << result.summary();
}

TEST(VerifyInvariants, ConflictFreedomWorksWithRandomFit) {
  InvariantOptions options;
  options.wavelengths = 8;
  options.rwa_policy = optics::RwaPolicy::kRandomFit;
  const verify::CheckResult result =
      verify::check_conflict_freedom(wrht_sched(30, 5, 8), 30, options);
  EXPECT_TRUE(result.ok()) << result.summary();
}

// ----------------------------------------------------- hierarchy checks

TEST(VerifyInvariants, HierarchySweepHolds) {
  for (std::uint32_t n = 2; n <= 64; ++n) {
    for (const std::uint32_t m : {2u, 3u, 4u, 5u, 8u, 13u}) {
      for (const std::uint32_t w : {1u, 2u, 8u, 64u}) {
        const verify::CheckResult result =
            verify::check_wrht_hierarchy(n, m, w);
        EXPECT_TRUE(result.ok())
            << "N=" << n << " m=" << m << " w=" << w << ":\n"
            << result.summary();
      }
    }
  }
}

// ------------------------------------------------------ step-count checks

TEST(VerifyInvariants, StepCountMatchesClosedFormAcrossSweep) {
  for (const std::uint32_t n : {4u, 11u, 16u, 30u, 47u, 64u}) {
    for (const std::uint32_t m : {2u, 3u, 5u, 8u}) {
      for (const std::uint32_t w : {2u, 8u, 64u}) {
        const verify::CheckResult result =
            verify::check_wrht_step_count(wrht_sched(n, m, w), n, m, w);
        EXPECT_TRUE(result.ok())
            << "N=" << n << " m=" << m << " w=" << w << ":\n"
            << result.summary();
      }
    }
  }
}

TEST(VerifyInvariants, StepCountFlagsForeignSchedule) {
  // A Ring schedule does not obey the WRHT closed form.
  const verify::CheckResult result = verify::check_wrht_step_count(
      coll::ring_allreduce(16, 64), 16, 4, 64);
  EXPECT_FALSE(result.ok());
}

// -------------------------------------------------- wavelength discipline

TEST(VerifyInvariants, WavelengthDisciplineHolds) {
  for (const std::uint32_t n : {8u, 16u, 30u, 47u}) {
    for (const std::uint32_t m : {2u, 4u, 7u}) {
      const verify::CheckResult result = verify::check_wrht_wavelength_discipline(
          wrht_sched(n, m, 64), n, m, 64);
      EXPECT_TRUE(result.ok())
          << "N=" << n << " m=" << m << ":\n" << result.summary();
    }
  }
}

// ------------------------------------------------------- composite check

TEST(VerifyInvariants, FullConfigurationCheckPasses) {
  for (const std::uint32_t n : {5u, 12u, 30u, 50u}) {
    for (const std::uint32_t m : {2u, 4u, 9u}) {
      for (const std::uint32_t w : {2u, 64u}) {
        const verify::CheckResult result =
            verify::check_wrht_configuration(n, m, w, 48);
        EXPECT_TRUE(result.ok())
            << "N=" << n << " m=" << m << " w=" << w << ":\n"
            << result.summary();
      }
    }
  }
}

}  // namespace
}  // namespace wrht
