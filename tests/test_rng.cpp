#include "wrht/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wrht {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng;
  EXPECT_EQ(rng.uniform_int(7, 7), 7u);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng;
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng;
  const auto perm = rng.permutation(257);
  EXPECT_EQ(perm.size(), 257u);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng;
  const auto perm = rng.permutation(100);
  std::vector<std::size_t> identity(100);
  for (std::size_t i = 0; i < 100; ++i) identity[i] = i;
  EXPECT_NE(perm, identity);
}

TEST(Rng, UniformVectorShapeAndRange) {
  Rng rng;
  const auto v = rng.uniform_vector(50, -2.0, 3.0);
  EXPECT_EQ(v.size(), 50u);
  for (const double x : v) {
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

}  // namespace
}  // namespace wrht
