// End-to-end integration: plan -> schedule -> verify semantics -> simulate
// on both interconnects, asserting the paper's qualitative results (who
// wins where) on reduced-scale configurations.
#include <gtest/gtest.h>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/dnn/training.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht {
namespace {

optics::OpticalConfig optical_cfg(std::uint32_t w = 64) {
  optics::OpticalConfig cfg;
  cfg.wavelengths = w;
  return cfg;
}

TEST(Integration, PlanScheduleVerifySimulate) {
  const std::uint32_t n = 128;
  const core::WrhtPlan plan = core::plan_wrht(n, 16);
  const auto sched = core::wrht_allreduce(
      n, 256, core::WrhtOptions{plan.group_size, 16});
  Rng rng;
  EXPECT_LE(coll::Executor::verify_allreduce(sched, rng), 1e-9);
  const optics::RingNetwork net(n, optical_cfg(16));
  const auto res = net.execute(sched);
  EXPECT_EQ(res.steps, plan.steps.total_steps);
  EXPECT_GT(res.total_time.count(), 0.0);
}

TEST(Integration, WrhtBeatsAllOpticalBaselinesForResNet50) {
  // Fig. 6 regime at reduced scale: N=256, w=64, ResNet50 payload.
  const std::uint32_t n = 256;
  const std::size_t elements = dnn::resnet50().parameter_count();
  const optics::RingNetwork net(n, optical_cfg());
  const core::WrhtPlan plan = core::plan_wrht(n, 64);

  const double t_wrht =
      net.execute(core::wrht_allreduce(n, elements,
                                       core::WrhtOptions{plan.group_size, 64}))
          .total_time.count();
  const double t_ring =
      net.execute(coll::ring_allreduce(n, elements)).total_time.count();
  const double t_bt =
      net.execute(coll::btree_allreduce(n, elements)).total_time.count();

  EXPECT_LT(t_wrht, t_ring);
  EXPECT_LT(t_wrht, t_bt);
}

TEST(Integration, RingBeatsWrhtAtFewWavelengthsForLargeModels) {
  // The paper's Fig. 5(b) observation: with w=4 and BEiT-sized payloads the
  // Ring's d/N per-step payload wins over WRHT's full-d steps.
  const std::uint32_t n = 256;
  const std::size_t elements = dnn::beit_large().parameter_count();
  const optics::RingNetwork net(n, optical_cfg(4));
  const core::WrhtPlan plan = core::plan_wrht(n, 4);
  const double t_wrht =
      net.execute(core::wrht_allreduce(n, elements,
                                       core::WrhtOptions{plan.group_size, 4}))
          .total_time.count();
  const double t_ring =
      net.execute(coll::ring_allreduce(n, elements)).total_time.count();
  EXPECT_GT(t_wrht, t_ring);
}

TEST(Integration, WrhtTimeFlatInNodeCount) {
  // Fig. 6: WRHT communication time stays nearly constant as N grows.
  const std::size_t elements = dnn::alexnet().parameter_count();
  std::vector<double> times;
  for (const std::uint32_t n : {256u, 512u, 1024u}) {
    const optics::RingNetwork net(n, optical_cfg());
    const core::WrhtPlan plan = core::plan_wrht(n, 64);
    times.push_back(
        net.execute(core::wrht_allreduce(
                        n, elements, core::WrhtOptions{plan.group_size, 64}))
            .total_time.count());
  }
  EXPECT_LT(times.back() / times.front(), 1.5);
}

TEST(Integration, RingTimeGrowsLinearlyInNodeCount) {
  const std::size_t elements = 1'000'000;
  const optics::RingNetwork net256(256, optical_cfg());
  const optics::RingNetwork net512(512, optical_cfg());
  const double t256 =
      net256.execute(coll::ring_allreduce(256, elements)).total_time.count();
  const double t512 =
      net512.execute(coll::ring_allreduce(512, elements)).total_time.count();
  // Step-overhead dominated at this payload: ~2x.
  EXPECT_GT(t512 / t256, 1.5);
}

TEST(Integration, OpticalRingBeatsElectricalRing) {
  // Fig. 7: O-Ring vs E-Ring on the same payload and node count.
  const std::uint32_t n = 128;
  const std::size_t elements = dnn::resnet50().parameter_count();
  const auto sched = coll::ring_allreduce(n, elements);
  const optics::RingNetwork optical(n, optical_cfg());
  const elec::FatTreeNetwork electrical(n, elec::ElectricalConfig{});
  const double t_o = optical.execute(sched).total_time.count();
  const double t_e = electrical.execute(sched).total_time.count();
  EXPECT_LT(t_o, t_e);
}

TEST(Integration, WrhtBeatsElectricalBaselines) {
  const std::uint32_t n = 128;
  const std::size_t elements = dnn::resnet50().parameter_count();
  const optics::RingNetwork optical(n, optical_cfg());
  const elec::FatTreeNetwork electrical(n, elec::ElectricalConfig{});
  const core::WrhtPlan plan = core::plan_wrht(n, 64);
  const double t_wrht =
      optical
          .execute(core::wrht_allreduce(n, elements,
                                        core::WrhtOptions{plan.group_size, 64}))
          .total_time.count();
  const double t_ering =
      electrical.execute(coll::ring_allreduce(n, elements))
          .total_time.count();
  const double t_erd =
      electrical.execute(coll::recursive_doubling_allreduce(n, elements))
          .total_time.count();
  EXPECT_LT(t_wrht, t_ering);
  EXPECT_LT(t_wrht, t_erd);
}

TEST(Integration, TrainingPipelineEndToEnd) {
  // Model zoo -> gradient payload -> optical WRHT -> iteration breakdown.
  const dnn::Model model = dnn::resnet50();
  const std::uint32_t n = 64;
  dnn::TrainingConfig cfg;
  cfg.num_workers = n;
  const core::WrhtPlan plan = core::plan_wrht(n, 64);
  const optics::RingNetwork net(n, optical_cfg());
  const auto res = net.execute(core::wrht_allreduce(
      n, model.parameter_count(), core::WrhtOptions{plan.group_size, 64}));
  const auto iter = dnn::iteration_breakdown(model, cfg, res.total_time);
  EXPECT_GT(iter.compute.count(), 0.0);
  EXPECT_GT(iter.communication.count(), 0.0);
  EXPECT_GT(iter.total().count(), iter.compute.count());
  EXPECT_GT(dnn::epoch_time(model, cfg, res.total_time).count(),
            iter.total().count());
}

TEST(Integration, ConstraintAwarePlanStillCorrectAndFeasible) {
  core::OpticalConstraints constraints;
  constraints.power.laser_power = PowerDbm(7.0);
  const std::uint32_t n = 200;
  const core::WrhtPlan plan = core::plan_wrht(n, 32, constraints);
  const auto sched = core::wrht_allreduce(
      n, 64, core::WrhtOptions{plan.group_size, 32});
  Rng rng;
  EXPECT_LE(coll::Executor::verify_allreduce(sched, rng), 1e-9);
  optics::OpticalConfig cfg = optical_cfg(32);
  const optics::RingNetwork net(n, cfg);
  const auto res = net.execute(sched);
  // Grouping lightpaths stay within the Eq. 7 analytic bound; the final
  // all-to-all may span up to half the ring (Eq. 7 approximates the
  // hierarchy paths only, see DESIGN.md), so the operational bound is the
  // max of both.
  EXPECT_LE(res.longest_lightpath_hops,
            std::max<std::uint64_t>(
                optics::wrht_max_comm_length(n, plan.group_size), n / 2));
}

}  // namespace
}  // namespace wrht
