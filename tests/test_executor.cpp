#include "wrht/collectives/executor.hpp"

#include <gtest/gtest.h>

#include "wrht/common/error.hpp"

namespace wrht::coll {
namespace {

TEST(Executor, ReduceAccumulates) {
  Schedule s("manual", 2, 3);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 3, TransferKind::kReduce, {}});
  std::vector<std::vector<double>> buf = {{1, 2, 3}, {10, 20, 30}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[1], (std::vector<double>{11, 22, 33}));
  EXPECT_EQ(buf[0], (std::vector<double>{1, 2, 3}));  // sender unchanged
}

TEST(Executor, CopyOverwrites) {
  Schedule s("manual", 2, 2);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 2, TransferKind::kCopy, {}});
  std::vector<std::vector<double>> buf = {{5, 6}, {0, 0}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[1], (std::vector<double>{5, 6}));
}

TEST(Executor, RangedTransferTouchesOnlyRange) {
  Schedule s("manual", 2, 4);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 1, 2, TransferKind::kCopy, {}});
  std::vector<std::vector<double>> buf = {{1, 2, 3, 4}, {9, 9, 9, 9}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[1], (std::vector<double>{9, 2, 3, 9}));
}

TEST(Executor, SnapshotSemanticsForConcurrentExchange) {
  // Both nodes send and reduce in the same step; each must observe the
  // other's *pre-step* value (recursive-doubling relies on this).
  Schedule s("manual", 2, 1);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{0, 1, 0, 1, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{1, 0, 0, 1, TransferKind::kReduce, {}});
  std::vector<std::vector<double>> buf = {{3}, {4}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[0][0], 7.0);
  EXPECT_EQ(buf[1][0], 7.0);
}

TEST(Executor, SnapshotAcrossStepsIsSequential) {
  // Step 2 must observe step 1's result.
  Schedule s("manual", 3, 1);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 1, TransferKind::kReduce, {}});
  s.add_step().transfers.push_back(
      Transfer{1, 2, 0, 1, TransferKind::kReduce, {}});
  std::vector<std::vector<double>> buf = {{1}, {2}, {4}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[2][0], 7.0);  // 4 + (2 + 1)
}

TEST(Executor, ChainInOneStepUsesSnapshots) {
  // 0 -> 1 and 1 -> 2 concurrently: node 2 gets node 1's OLD value.
  Schedule s("manual", 3, 1);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{0, 1, 0, 1, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{1, 2, 0, 1, TransferKind::kReduce, {}});
  std::vector<std::vector<double>> buf = {{1}, {2}, {4}};
  Executor::run(s, buf);
  EXPECT_EQ(buf[1][0], 3.0);
  EXPECT_EQ(buf[2][0], 6.0);  // 4 + old 2, NOT 4 + 3
}

TEST(Executor, BufferShapeValidated) {
  Schedule s("manual", 2, 2);
  std::vector<std::vector<double>> wrong_count = {{1, 2}};
  EXPECT_THROW(Executor::run(s, wrong_count), InvalidArgument);
  std::vector<std::vector<double>> wrong_len = {{1}, {1}};
  EXPECT_THROW(Executor::run(s, wrong_len), InvalidArgument);
}

TEST(Executor, VerifyDetectsNonAllreduce) {
  // A schedule that does nothing is not an All-reduce (for n >= 2).
  Schedule s("broken", 3, 4);
  Rng rng;
  EXPECT_THROW(Executor::verify_allreduce(s, rng), Error);
}

TEST(Executor, VerifyDetectsPartialAllreduce) {
  // Only node 1 ends with the sum; nodes 0 and 2 do not.
  Schedule s("partial", 3, 2);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{0, 1, 0, 2, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{2, 1, 0, 2, TransferKind::kReduce, {}});
  Rng rng;
  EXPECT_THROW(Executor::verify_allreduce(s, rng), Error);
}

TEST(Executor, VerifyReduceAcceptsGatherAndRejectsWrongRoot) {
  Schedule s("gather", 3, 4);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{1, 0, 0, 4, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{2, 0, 0, 4, TransferKind::kReduce, {}});
  Rng rng;
  EXPECT_LE(Executor::verify_reduce(s, 0, rng), 1e-9);
  EXPECT_THROW(Executor::verify_reduce(s, 1, rng), Error);
  EXPECT_THROW(Executor::verify_reduce(s, 5, rng), InvalidArgument);
}

TEST(Executor, VerifyBroadcastAcceptsFanOutAndRejectsPartial) {
  Schedule s("fanout", 3, 4);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{0, 1, 0, 4, TransferKind::kCopy, {}});
  step.transfers.push_back(Transfer{0, 2, 0, 4, TransferKind::kCopy, {}});
  Rng rng;
  EXPECT_LE(Executor::verify_broadcast(s, 0, rng), 1e-9);

  Schedule partial("partial", 3, 4);
  partial.add_step().transfers.push_back(
      Transfer{0, 1, 0, 4, TransferKind::kCopy, {}});
  EXPECT_THROW(Executor::verify_broadcast(partial, 0, rng), Error);
}

TEST(Executor, VerifyReduceScatterRejectsWrongChunkOwner) {
  // Node 0 gets chunk 1's sum instead of chunk 0's: must be caught.
  Schedule s("bad-rs", 2, 4);
  Step& step = s.add_step();
  step.transfers.push_back(Transfer{1, 0, 2, 2, TransferKind::kReduce, {}});
  step.transfers.push_back(Transfer{0, 1, 0, 2, TransferKind::kReduce, {}});
  Rng rng;
  EXPECT_THROW(Executor::verify_reduce_scatter(s, 2, rng), Error);

  // The correct orientation passes.
  Schedule good("good-rs", 2, 4);
  Step& gstep = good.add_step();
  gstep.transfers.push_back(Transfer{1, 0, 0, 2, TransferKind::kReduce, {}});
  gstep.transfers.push_back(Transfer{0, 1, 2, 2, TransferKind::kReduce, {}});
  EXPECT_LE(Executor::verify_reduce_scatter(good, 2, rng), 1e-9);
}

TEST(Executor, VerifyAllgatherRejectsMissingChunk) {
  Schedule s("bad-ag", 2, 4);
  s.add_step().transfers.push_back(
      Transfer{0, 1, 0, 2, TransferKind::kCopy, {}});
  Rng rng;
  // Node 0 never receives node 1's chunk.
  EXPECT_THROW(Executor::verify_allgather(s, 2, rng), Error);

  Schedule good("good-ag", 2, 4);
  Step& gstep = good.add_step();
  gstep.transfers.push_back(Transfer{0, 1, 0, 2, TransferKind::kCopy, {}});
  gstep.transfers.push_back(Transfer{1, 0, 2, 2, TransferKind::kCopy, {}});
  EXPECT_LE(Executor::verify_allgather(good, 2, rng), 1e-9);
}

TEST(Executor, VerifyAcceptsHandWrittenAllreduce) {
  // Gather to node 0 then broadcast: a correct 2-step All-reduce on 3 nodes.
  Schedule s("manual", 3, 5);
  Step& gather = s.add_step();
  gather.transfers.push_back(Transfer{1, 0, 0, 5, TransferKind::kReduce, {}});
  gather.transfers.push_back(Transfer{2, 0, 0, 5, TransferKind::kReduce, {}});
  Step& bcast = s.add_step();
  bcast.transfers.push_back(Transfer{0, 1, 0, 5, TransferKind::kCopy, {}});
  bcast.transfers.push_back(Transfer{0, 2, 0, 5, TransferKind::kCopy, {}});
  Rng rng;
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

}  // namespace
}  // namespace wrht::coll
