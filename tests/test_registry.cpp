#include "wrht/collectives/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace wrht::coll {
namespace {

TEST(Registry, BaselinesPreRegistered) {
  auto& reg = Registry::instance();
  for (const char* name : {"ring", "hring", "btree", "recursive_doubling"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_FALSE(reg.contains("no-such-algorithm"));
}

TEST(Registry, NamesAreSorted) {
  const auto names = Registry::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 4u);
}

TEST(Registry, BuildsWorkingSchedules) {
  auto& reg = Registry::instance();
  Rng rng;
  AllreduceParams p;
  p.num_nodes = 12;
  p.elements = 24;
  p.group_size = 4;
  for (const char* name : {"ring", "hring", "btree", "recursive_doubling"}) {
    const Schedule s = reg.build(name, p);
    EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  AllreduceParams p;
  p.num_nodes = 4;
  p.elements = 8;
  EXPECT_THROW(Registry::instance().build("nope", p), InvalidArgument);
}

TEST(Registry, HringRequiresGroupSize) {
  AllreduceParams p;
  p.num_nodes = 8;
  p.elements = 16;
  p.group_size = 0;
  EXPECT_THROW(Registry::instance().build("hring", p), InvalidArgument);
}

TEST(Registry, WrhtRegistrationIsIdempotent) {
  core::register_wrht_algorithm();
  core::register_wrht_algorithm();
  auto& reg = Registry::instance();
  ASSERT_TRUE(reg.contains("wrht"));
  Rng rng;
  AllreduceParams p;
  p.num_nodes = 20;
  p.elements = 20;
  p.group_size = 5;
  p.wavelengths = 8;
  const Schedule s = reg.build("wrht", p);
  EXPECT_EQ(s.algorithm(), "wrht");
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(Registry, WrhtAutoPlansGroupSize) {
  core::register_wrht_algorithm();
  AllreduceParams p;
  p.num_nodes = 64;
  p.elements = 64;
  p.group_size = 0;  // ask the planner
  p.wavelengths = 8;
  const Schedule s = Registry::instance().build("wrht", p);
  Rng rng;
  EXPECT_LE(Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(Registry, CustomRegistrationAndReplacement) {
  auto& reg = Registry::instance();
  reg.register_algorithm("custom_test", [](const AllreduceParams& p) {
    return Schedule("custom_test", p.num_nodes, p.elements);
  });
  EXPECT_TRUE(reg.contains("custom_test"));
  AllreduceParams p;
  p.num_nodes = 2;
  p.elements = 2;
  EXPECT_EQ(reg.build("custom_test", p).num_steps(), 0u);
  EXPECT_THROW(reg.register_algorithm("x", BuilderFn{}), InvalidArgument);
}

}  // namespace
}  // namespace wrht::coll
