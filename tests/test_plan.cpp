// wrht::plan schedule planner: closed-form predictions vs the optical ring
// simulator (differential, on a pinned grid), winner selection, candidate
// feasibility and the flat all-to-all builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/verify/oracle.hpp"

namespace wrht::plan {
namespace {

/// Relative tolerance of closed-form predictions vs the simulator. WRHT
/// and ring predictions are exact; the flat all-to-all's round count rests
/// on the analytic ~N^2/8 load bound, which first-fit colouring can exceed
/// slightly (DESIGN.md documents 1.5x as the operational budget).
constexpr double kPredictionTolerance = 0.35;
/// A chosen candidate must simulate within this factor of the true fastest
/// (ties between near-equal candidates are fine either way).
constexpr double kWinnerTolerance = 0.05;

optics::OpticalConfig sim_config(const PlannerOptions& options) {
  optics::OpticalConfig cfg;
  cfg.wavelengths = options.wavelengths;
  cfg.reconfig_policy = options.policy;
  cfg.validate_node_capacity = false;  // the paper's sweep assumption
  return cfg;
}

double simulate(CandidateKind kind, std::uint32_t n, std::size_t elements,
                const PlannerOptions& options) {
  const coll::Schedule sched = build_candidate(kind, n, elements, options);
  const optics::RingNetwork net(n, sim_config(options));
  return net.execute(sched).total_time.count();
}

TEST(Plan, PredictionsMatchSimulatorOnPinnedGrid) {
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    for (const std::uint32_t w : {4u, 64u}) {
      for (const std::size_t elements :
           {std::size_t{256}, std::size_t{4096}, std::size_t{1} << 18}) {
        for (const net::ReconfigPolicy policy :
             {net::ReconfigPolicy::kEveryRound,
              net::ReconfigPolicy::kOnRetune,
              net::ReconfigPolicy::kOverlapped}) {
          PlannerOptions options;
          options.wavelengths = w;
          options.policy = policy;
          for (const CandidateKind kind :
               {CandidateKind::kWrht, CandidateKind::kFlatAllToAll,
                CandidateKind::kStaticRing}) {
            const Candidate c = predict(kind, n, elements, options);
            if (!c.feasible) continue;
            const double sim = simulate(kind, n, elements, options);
            EXPECT_NEAR(c.predicted_time.count(), sim,
                        kPredictionTolerance * sim)
                << to_string(kind) << " N=" << n << " w=" << w
                << " d=" << elements << " policy="
                << net::to_string(policy);
          }
        }
      }
    }
  }
}

TEST(Plan, ChoosesTheSimulatedFastestOnPinnedGrid) {
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    for (const std::uint32_t w : {4u, 64u}) {
      for (const std::size_t elements :
           {std::size_t{256}, std::size_t{4096}, std::size_t{1} << 18}) {
        for (const net::ReconfigPolicy policy :
             {net::ReconfigPolicy::kEveryRound,
              net::ReconfigPolicy::kOnRetune,
              net::ReconfigPolicy::kOverlapped}) {
          PlannerOptions options;
          options.wavelengths = w;
          options.policy = policy;
          const PlanResult plan = plan_allreduce(n, elements, options);
          double fastest = std::numeric_limits<double>::infinity();
          for (const Candidate& c : plan.candidates) {
            if (!c.feasible) continue;
            fastest = std::min(
                fastest, simulate(c.kind, n, elements, options));
          }
          const double chosen_sim =
              simulate(plan.chosen.kind, n, elements, options);
          EXPECT_LE(chosen_sim, fastest * (1.0 + kWinnerTolerance))
              << to_string(plan.chosen.kind) << " N=" << n << " w=" << w
              << " d=" << elements << " policy=" << net::to_string(policy);
        }
      }
    }
  }
}

TEST(Plan, FrontierHasAllThreeRegions) {
  // Latency-bound payloads favour WRHT's O(log N) steps; bandwidth-bound
  // payloads favour d/N chunks — via the flat all-to-all when wavelengths
  // are plentiful (2 ceil(N^2/8w) rounds beat the ring's 2(N-1)), via the
  // reconfig-free ring when they are scarce and the all-to-all splits into
  // more rounds than the ring has steps.
  PlannerOptions rich;
  rich.wavelengths = 64;
  EXPECT_EQ(plan_allreduce(64, 64, rich).chosen.kind, CandidateKind::kWrht);
  EXPECT_EQ(plan_allreduce(64, 1u << 22, rich).chosen.kind,
            CandidateKind::kFlatAllToAll);

  PlannerOptions scarce;
  scarce.wavelengths = 4;
  EXPECT_EQ(plan_allreduce(64, 64, scarce).chosen.kind,
            CandidateKind::kWrht);
  EXPECT_EQ(plan_allreduce(64, 1u << 25, scarce).chosen.kind,
            CandidateKind::kStaticRing);
}

TEST(Plan, PlannedScheduleMatchesChosenKind) {
  PlannerOptions options;
  const PlanResult result = plan_allreduce(16, 1024, options);
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_TRUE(result.chosen.feasible);
  // The returned schedule is the chosen candidate's, ready to run.
  EXPECT_GT(result.schedule.num_steps(), 0u);
  EXPECT_EQ(result.schedule.num_nodes(), 16u);
  EXPECT_EQ(result.schedule.elements(), 1024u);
  result.schedule.validate();
}

TEST(Plan, RingInfeasibleBelowOneElementPerChunk) {
  PlannerOptions options;
  const Candidate ring =
      predict(CandidateKind::kStaticRing, 32, 8, options);
  EXPECT_FALSE(ring.feasible);
  EXPECT_FALSE(ring.note.empty());
  // The planner still finds a winner among the others.
  const PlanResult result = plan_allreduce(32, 8, options);
  EXPECT_NE(result.chosen.kind, CandidateKind::kStaticRing);
}

TEST(Plan, OverlapNeverPredictsSlowerThanSerial) {
  for (const std::uint32_t n : {8u, 32u}) {
    for (const std::size_t elements : {std::size_t{256}, std::size_t{1}
                                       << 18}) {
      for (const CandidateKind kind :
           {CandidateKind::kWrht, CandidateKind::kFlatAllToAll,
            CandidateKind::kStaticRing}) {
        PlannerOptions serial;
        PlannerOptions overlapped;
        overlapped.policy = net::ReconfigPolicy::kOverlapped;
        const Candidate a = predict(kind, n, elements, serial);
        const Candidate b = predict(kind, n, elements, overlapped);
        if (!a.feasible) continue;
        EXPECT_LE(b.predicted_time.count(), a.predicted_time.count())
            << to_string(kind);
        // Identity mirrored from the engines: hidden time accounts for
        // the whole difference.
        EXPECT_NEAR(b.predicted_time.count() + b.overlap_hidden.count(),
                    a.predicted_time.count(),
                    1e-12 * (1.0 + a.predicted_time.count()))
            << to_string(kind);
      }
    }
  }
}

TEST(FlatAllToAll, ComputesTheGlobalSum) {
  for (const std::uint32_t n : {2u, 5u, 16u}) {
    for (const std::size_t elements : {std::size_t{3}, std::size_t{64}}) {
      const auto sched = flat_alltoall_allreduce(n, elements);
      const auto report = verify::check_allreduce(sched);
      EXPECT_TRUE(report.result.ok())
          << "N=" << n << " d=" << elements << "\n"
          << report.result.summary();
    }
  }
}

TEST(FlatAllToAll, TwoStepsAndSecondReusesCircuits) {
  const auto sched = flat_alltoall_allreduce(12, 144);
  ASSERT_EQ(sched.num_steps(), 2u);
  const auto deltas = coll::reconfig_deltas(sched);
  // The all-gather lights the identical circuit set the reduce-scatter
  // already tuned.
  EXPECT_TRUE(deltas[1].reconfig_free());
  EXPECT_EQ(deltas[1].kept, deltas[0].added.size());
}

TEST(FlatAllToAll, StaysNearTheAnalyticWavelengthBound) {
  // The builder's direction hints keep first-fit within the documented
  // 1.5x operational budget of the ~N^2/8 analytic load.
  for (const std::uint32_t n : {5u, 8u, 13u, 16u}) {
    const auto sched = flat_alltoall_allreduce(n, 4 * n);
    optics::OpticalConfig cfg;
    cfg.wavelengths = 4096;  // never split: observe the true demand
    const optics::RingNetwork net(n, cfg);
    const auto res = net.execute(sched);
    const auto analytic = static_cast<double>(
        n % 2 == 0 ? (n * n + 7) / 8 : (n * n - 1) / 8);
    EXPECT_LE(res.max_wavelengths_used, std::max(1.0, 1.5 * analytic))
        << "N=" << n;
  }
}

}  // namespace
}  // namespace wrht::plan
