#include "wrht/optical/crosstalk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wrht/common/error.hpp"
#include "wrht/optical/power.hpp"

namespace wrht::optics {
namespace {

TEST(Crosstalk, Eq12AccumulatesLinearly) {
  CrosstalkParams p;
  p.per_hop_crosstalk = PowerDbm(-30.0);  // 1 uW per hop
  p.tx_crosstalk = PowerDbm(-30.0);
  // 9 hops + tx = 10 uW = -20 dBm.
  EXPECT_NEAR(worst_case_crosstalk(9, p).count(), -20.0, 1e-9);
}

TEST(Crosstalk, SnrMatchesHandComputation) {
  CrosstalkParams p;
  p.signal_power = PowerDbm(0.0);         // 1 mW
  p.per_hop_crosstalk = PowerDbm(-30.0);  // 1 uW
  p.tx_crosstalk = PowerDbm(-40.0);       // 0.1 uW
  p.other_noise = PowerDbm(-40.0);        // 0.1 uW
  // noise = 8*1 + 0.1 + 0.1 = 8.2 uW; snr = 1000/8.2.
  EXPECT_NEAR(snr_linear(8, p), 1000.0 / 8.2, 1e-9);
  EXPECT_NEAR(snr_db(8, p), 10.0 * std::log10(1000.0 / 8.2), 1e-9);
}

TEST(Crosstalk, SnrDecreasesWithHops) {
  CrosstalkParams p;
  double prev = snr_linear(1, p);
  for (std::uint64_t hops = 2; hops <= 512; hops *= 2) {
    const double snr = snr_linear(hops, p);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(Ber, Eq13Formula) {
  EXPECT_DOUBLE_EQ(ber_from_snr(0.0), 0.5);
  EXPECT_NEAR(ber_from_snr(4.0), 0.5 * std::exp(-1.0), 1e-12);
  // SNR for BER = 1e-9: -4 ln(2e-9) ~ 80.1.
  const double snr_min = -4.0 * std::log(2e-9);
  EXPECT_NEAR(ber_from_snr(snr_min), 1e-9, 1e-15);
  EXPECT_THROW(ber_from_snr(-1.0), InvalidArgument);
}

TEST(Ber, MonotoneInHops) {
  CrosstalkParams p;
  double prev = ber(1, p);
  for (std::uint64_t hops = 2; hops <= 1024; hops *= 2) {
    const double b = ber(hops, p);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(MaxHopsForBer, ThresholdIsExact) {
  CrosstalkParams p;  // defaults: 0 dBm signal, -40 dB/hop crosstalk
  const std::uint64_t hops = max_hops_for_ber(p, 1e-9);
  ASSERT_GT(hops, 0u);
  EXPECT_LT(ber(hops, p), 1e-9);
  EXPECT_GE(ber(hops + 1, p), 1e-9);
}

TEST(MaxHopsForBer, StricterTargetShrinksReach) {
  CrosstalkParams p;
  EXPECT_LE(max_hops_for_ber(p, 1e-12), max_hops_for_ber(p, 1e-9));
  EXPECT_LE(max_hops_for_ber(p, 1e-9), max_hops_for_ber(p, 1e-6));
}

TEST(MaxHopsForBer, StrongerSignalExtendsReach) {
  CrosstalkParams weak, strong;
  weak.signal_power = PowerDbm(-3.0);
  strong.signal_power = PowerDbm(3.0);
  EXPECT_LT(max_hops_for_ber(weak), max_hops_for_ber(strong));
}

TEST(MaxHopsForBer, ZeroWhenFixedNoiseTooHigh) {
  CrosstalkParams p;
  p.signal_power = PowerDbm(-30.0);
  p.other_noise = PowerDbm(-30.0);  // SNR <= 1 even with zero hops
  EXPECT_EQ(max_hops_for_ber(p, 1e-9), 0u);
}

TEST(MaxHopsForBer, Validation) {
  CrosstalkParams p;
  EXPECT_THROW(max_hops_for_ber(p, 0.0), InvalidArgument);
  EXPECT_THROW(max_hops_for_ber(p, 0.7), InvalidArgument);
}

TEST(MaxGroupSizeByCrosstalk, ConsistentWithEq7) {
  CrosstalkParams p;  // defaults allow a few hundred hops
  const std::uint64_t reach = max_hops_for_ber(p, 1e-9);
  const std::uint32_t m = max_group_size_by_crosstalk(1024, p, 1e-9);
  ASSERT_GE(m, 2u);
  EXPECT_LE(wrht_max_comm_length(1024, m), reach);
}

}  // namespace
}  // namespace wrht::optics
