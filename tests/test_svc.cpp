// Service layer: wavelength allocator, admission policies, workload
// generation, and end-to-end FabricService runs on crafted job sets where
// the policy rankings are known by construction.
#include "wrht/svc/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "wrht/common/error.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/svc/workload.hpp"

namespace wrht::svc {
namespace {

TEST(WavelengthAllocator, FirstFitAndCoalescing) {
  WavelengthAllocator alloc(16);
  EXPECT_EQ(alloc.free_width(), 16u);
  const auto a = alloc.allocate(4);
  const auto b = alloc.allocate(8);
  const auto c = alloc.allocate(4);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 4u);
  EXPECT_EQ(*c, 12u);
  EXPECT_EQ(alloc.free_width(), 0u);
  EXPECT_FALSE(alloc.allocate(1).has_value());

  // Free the middle: 8 contiguous wavelengths fit again, at the hole.
  alloc.release(4, 8);
  EXPECT_TRUE(alloc.fits(8));
  EXPECT_FALSE(alloc.fits(9));
  // Free the front; the two holes coalesce into [0, 12).
  alloc.release(0, 4);
  EXPECT_TRUE(alloc.fits(12));
  const auto d = alloc.allocate(12);
  ASSERT_TRUE(d);
  EXPECT_EQ(*d, 0u);
}

TEST(WavelengthAllocator, ReleaseValidation) {
  WavelengthAllocator alloc(8);
  const auto a = alloc.allocate(4);
  ASSERT_TRUE(a);
  EXPECT_THROW(alloc.release(6, 4), InvalidArgument);   // outside fabric
  alloc.release(*a, 4);
  EXPECT_THROW(alloc.release(*a, 4), InvalidArgument);  // double free
  EXPECT_THROW(alloc.release(2, 2), InvalidArgument);   // inside free space
}

AdmissionContext context_fitting_up_to(std::uint32_t max_width) {
  AdmissionContext ctx;
  ctx.fits = [max_width](std::uint32_t width) { return width <= max_width; };
  ctx.weighted_consumption = [](std::uint32_t) { return 0.0; };
  return ctx;
}

Job job_of(std::uint64_t id, std::uint32_t width, std::uint32_t priority = 0,
           std::uint32_t tenant = 0) {
  Job job;
  job.id = id;
  job.width = width;
  job.priority = priority;
  job.tenant = tenant;
  job.num_nodes = 8;
  job.elements = 4096;
  return job;
}

TEST(AdmissionPolicy, FifoBlocksBehindWideHead) {
  const auto policy = make_policy(PolicyKind::kFifo);
  const std::vector<Job> queue = {job_of(0, 8), job_of(1, 2)};
  // Head fits: picked. Head too wide: everyone blocks.
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(8)), 0u);
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(4)),
            AdmissionPolicy::kNone);
  EXPECT_EQ(policy->select({}, context_fitting_up_to(8)),
            AdmissionPolicy::kNone);
}

TEST(AdmissionPolicy, BackfillSkipsBlockedHead) {
  const auto policy = make_policy(PolicyKind::kBackfill);
  const std::vector<Job> queue = {job_of(0, 8), job_of(1, 2), job_of(2, 1)};
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(4)), 1u);
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(1)), 2u);
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(0)),
            AdmissionPolicy::kNone);
}

TEST(AdmissionPolicy, PriorityPicksHighestThenFifo) {
  const auto policy = make_policy(PolicyKind::kPriority);
  const std::vector<Job> queue = {job_of(0, 2, 1), job_of(1, 2, 3),
                                  job_of(2, 2, 3)};
  // Highest priority wins; FIFO among equals (index 1, not 2).
  EXPECT_EQ(policy->select(queue, context_fitting_up_to(8)), 1u);
  // Strict: if the chosen job does not fit, nobody runs.
  const std::vector<Job> blocked = {job_of(0, 2, 1), job_of(1, 8, 3)};
  EXPECT_EQ(policy->select(blocked, context_fitting_up_to(4)),
            AdmissionPolicy::kNone);
}

TEST(AdmissionPolicy, WeightedFairPrefersStarvedTenant) {
  const auto policy = make_policy(PolicyKind::kWeightedFair);
  const std::vector<Job> queue = {job_of(0, 2, 0, /*tenant=*/0),
                                  job_of(1, 2, 0, /*tenant=*/1)};
  AdmissionContext ctx = context_fitting_up_to(8);
  ctx.weighted_consumption = [](std::uint32_t tenant) {
    return tenant == 0 ? 100.0 : 1.0;  // tenant 0 has hogged the fabric
  };
  EXPECT_EQ(policy->select(queue, ctx), 1u);
  // Among fitting jobs only: the starved tenant's too-wide job is skipped
  // once only 4 wavelengths remain free.
  const std::vector<Job> mixed = {job_of(0, 2, 0, 0), job_of(1, 8, 0, 1)};
  AdmissionContext tight = context_fitting_up_to(4);
  tight.weighted_consumption = ctx.weighted_consumption;
  EXPECT_EQ(policy->select(mixed, tight), 0u);
}

TEST(AdmissionPolicy, NamesRoundTrip) {
  for (const PolicyKind kind : all_policies()) {
    EXPECT_EQ(policy_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)policy_from_string("lifo"), InvalidArgument);
}

TEST(Workload, DeterministicAndWellFormed) {
  WorkloadConfig config;
  config.num_jobs = 40;
  config.burstiness = 0.3;
  const std::vector<Job> a = generate_workload(config);
  const std::vector<Job> b = generate_workload(config);
  ASSERT_EQ(a.size(), 40u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].model, b[i].model);
    if (i > 0) {
      EXPECT_GE(a[i].arrival.count(), a[i - 1].arrival.count());
    }
    EXPECT_LT(a[i].tenant, config.num_tenants);
    EXPECT_GE(a[i].width, config.fabric_wavelengths / 8);
    EXPECT_LE(a[i].width, config.fabric_wavelengths);
    EXPECT_GT(a[i].elements, 0u);
    EXPECT_GE(a[i].iterations, config.min_iterations);
    EXPECT_LE(a[i].iterations, config.max_iterations);
  }
  // A different seed moves the arrivals.
  config.seed = 7;
  const std::vector<Job> c = generate_workload(config);
  EXPECT_NE(a.back().arrival, c.back().arrival);
}

ServiceConfig fabric8(PolicyKind policy) {
  ServiceConfig config;
  config.fabric_wavelengths = 8;
  config.policy = policy;
  return config;
}

/// Head-of-line construction: a narrow long job holds half the fabric, a
/// full-width job queues behind it, and a narrow short job arrives last.
std::vector<Job> head_blocking_jobs() {
  std::vector<Job> jobs;
  jobs.push_back(job_of(0, 4));             // admitted at t=0, runs a while
  jobs[0].iterations = 8;
  Job wide = job_of(1, 8);                  // cannot start until 0 finishes
  wide.arrival = Seconds(1e-6);
  jobs.push_back(wide);
  Job narrow = job_of(2, 2);                // fits beside job 0 right now
  narrow.arrival = Seconds(2e-6);
  jobs.push_back(narrow);
  return jobs;
}

const JobRecord& record_of(const ServiceReport& report, std::uint64_t id) {
  const auto it =
      std::find_if(report.records.begin(), report.records.end(),
                   [id](const JobRecord& r) { return r.job.id == id; });
  EXPECT_NE(it, report.records.end());
  return *it;
}

TEST(FabricService, BackfillBeatsFifoUnderHeadBlocking) {
  FabricService fifo(fabric8(PolicyKind::kFifo));
  FabricService backfill(fabric8(PolicyKind::kBackfill));
  const std::vector<Job> jobs = head_blocking_jobs();
  const ServiceReport a = fifo.run(jobs);
  const ServiceReport b = backfill.run(jobs);
  ASSERT_EQ(a.records.size(), 3u);
  ASSERT_EQ(b.records.size(), 3u);

  // FIFO: the narrow job waits for the wide head; backfill slips it past.
  EXPECT_GT(record_of(a, 2).queue_wait().count(), 0.0);
  EXPECT_DOUBLE_EQ(record_of(b, 2).queue_wait().count(), 0.0);
  EXPECT_LT(record_of(b, 2).jct().count(), record_of(a, 2).jct().count());
  // The wide job is never worse off under backfill here (same grant time).
  EXPECT_EQ(record_of(b, 1).grant, record_of(a, 1).grant);
}

TEST(FabricService, RecordsAreConsistent) {
  FabricService service(fabric8(PolicyKind::kBackfill));
  const ServiceReport report = service.run(head_blocking_jobs());
  for (const JobRecord& r : report.records) {
    EXPECT_GE(r.grant.count(), r.job.arrival.count());
    EXPECT_GT(r.service_time().count(), 0.0);
    EXPECT_NEAR(r.jct().count(),
                r.queue_wait().count() + r.service_time().count(), 1e-12);
    EXPECT_EQ(r.lease.width(report.fabric_wavelengths), r.job.width);
    EXPECT_LE(r.lease.clamp_hi(report.fabric_wavelengths),
              report.fabric_wavelengths);
    EXPECT_LE(r.completion.count(), report.makespan.count());
  }
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0);
  EXPECT_FALSE(report.to_string().empty());
  EXPECT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].jobs, 3u);
}

TEST(FabricService, WeightedFairFavoursHighWeightTenant) {
  // Tenant 0 floods the queue; tenant 1 has 8x the weight, so once both
  // are waiting, tenant 1's jobs go first.
  ServiceConfig config = fabric8(PolicyKind::kWeightedFair);
  config.tenant_weights[1] = 8.0;
  FabricService fair(config);
  FabricService fifo(fabric8(PolicyKind::kFifo));

  std::vector<Job> jobs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Job j = job_of(i, 8, 0, /*tenant=*/0);
    j.iterations = 4;
    jobs.push_back(j);
  }
  Job vip = job_of(6, 8, 0, /*tenant=*/1);
  vip.arrival = Seconds(1e-6);
  jobs.push_back(vip);

  const ServiceReport a = fair.run(jobs);
  const ServiceReport b = fifo.run(jobs);
  EXPECT_LT(record_of(a, 6).jct().count(), record_of(b, 6).jct().count());
}

TEST(FabricService, LongLivedSimulatorResetsBetweenRuns) {
  FabricService service(fabric8(PolicyKind::kFifo));
  const std::vector<Job> jobs = head_blocking_jobs();
  const ServiceReport first = service.run(jobs);
  const std::uint64_t fired_once = service.simulator().events_fired();
  const ServiceReport second = service.run(jobs);
  // Identical reports run-to-run: the reset()-based reuse leaks nothing.
  ASSERT_EQ(first.records.size(), second.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].job.id, second.records[i].job.id);
    EXPECT_EQ(first.records[i].grant, second.records[i].grant);
    EXPECT_EQ(first.records[i].completion, second.records[i].completion);
  }
  // The lifetime event counter kept counting across the reset.
  EXPECT_EQ(service.simulator().events_fired(), 2 * fired_once);
}

TEST(FabricService, CountersAndValidation) {
  obs::Counters counters;
  ServiceConfig config = fabric8(PolicyKind::kFifo);
  config.counters = &counters;
  FabricService service(config);
  (void)service.run(head_blocking_jobs());
  EXPECT_EQ(counters.value("svc.arrivals"), 3u);
  EXPECT_EQ(counters.value("svc.grants"), 3u);
  EXPECT_EQ(counters.value("svc.completions"), 3u);
  EXPECT_GT(counters.value("sim.events_fired"), 0u);

  Job too_wide = job_of(0, 16);  // 16 > the 8-wavelength fabric
  EXPECT_THROW((void)service.run({too_wide}), InvalidArgument);
}

TEST(FabricService, EndToEndGeneratedWorkload) {
  WorkloadConfig workload;
  workload.num_jobs = 32;
  workload.num_nodes = 16;
  workload.fabric_wavelengths = 16;
  workload.burstiness = 0.25;
  workload.mean_interarrival = Seconds(0.01);
  const std::vector<Job> jobs = generate_workload(workload);

  for (const PolicyKind kind : all_policies()) {
    ServiceConfig config;
    config.fabric_wavelengths = 16;
    config.policy = kind;
    FabricService service(config);
    const ServiceReport report = service.run(jobs);
    ASSERT_EQ(report.records.size(), jobs.size()) << to_string(kind);
    EXPECT_GT(report.p99_jct.count(), 0.0);
    EXPECT_GE(report.p99_jct.count(), report.p50_jct.count());
    std::uint64_t tenant_jobs = 0;
    for (const TenantStats& t : report.tenants) tenant_jobs += t.jobs;
    EXPECT_EQ(tenant_jobs, jobs.size());
  }
}

}  // namespace
}  // namespace wrht::svc
