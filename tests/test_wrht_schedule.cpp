#include "wrht/core/wrht_schedule.hpp"

#include <gtest/gtest.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/analysis.hpp"

namespace wrht::core {
namespace {

TEST(WrhtSchedule, MotivatingExampleHasThreeSteps) {
  // Paper Fig. 2(b): 15 nodes, 2 wavelengths -> 3 steps vs BT's 8.
  const coll::Schedule s = wrht_allreduce(15, 15, WrhtOptions{5, 2});
  EXPECT_EQ(s.num_steps(), 3u);
  Rng rng;
  EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9);
}

TEST(WrhtSchedule, Table1ConfigHasThreeSteps) {
  const coll::Schedule s = wrht_allreduce(1024, 1024, WrhtOptions{129, 64});
  EXPECT_EQ(s.num_steps(), 3u);
}

TEST(WrhtSchedule, StepsAlwaysMatchPlan) {
  for (std::uint32_t n : {8u, 15u, 33u, 64u, 100u, 256u}) {
    for (std::uint32_t m : {2u, 3u, 5u, 9u, 17u}) {
      for (std::uint32_t w : {1u, 2u, 8u, 64u}) {
        const WrhtStepPlan plan = wrht_plan(n, m, w);
        const coll::Schedule s = wrht_allreduce(n, n, WrhtOptions{m, w});
        EXPECT_EQ(s.num_steps(), plan.total_steps)
            << "n=" << n << " m=" << m << " w=" << w;
      }
    }
  }
}

TEST(WrhtSchedule, CorrectnessSweep) {
  Rng rng;
  for (std::uint32_t n : {4u, 7u, 15u, 16u, 30u, 33u, 64u}) {
    for (std::uint32_t m : {2u, 3u, 5u, 8u}) {
      for (std::uint32_t w : {1u, 4u, 64u}) {
        const coll::Schedule s = wrht_allreduce(n, 8, WrhtOptions{m, w});
        EXPECT_LE(coll::Executor::verify_allreduce(s, rng), 1e-9)
            << "n=" << n << " m=" << m << " w=" << w;
      }
    }
  }
}

TEST(WrhtSchedule, EveryTransferMovesFullVector) {
  const std::size_t elements = 11;
  const coll::Schedule s = wrht_allreduce(30, elements, WrhtOptions{5, 4});
  for (const coll::Step& step : s.steps()) {
    for (const coll::Transfer& t : step.transfers) {
      EXPECT_EQ(t.offset, 0u);
      EXPECT_EQ(t.count, elements);
    }
  }
}

TEST(WrhtSchedule, GroupTransfersCarryDirectionHints) {
  const coll::Schedule s = wrht_allreduce(15, 15, WrhtOptions{5, 2});
  // Step 0 is the grouping step: all transfers hinted toward the rep.
  for (const coll::Transfer& t : s.steps()[0].transfers) {
    ASSERT_TRUE(t.direction.has_value());
    const auto expect = t.src < t.dst ? topo::Direction::kClockwise
                                      : topo::Direction::kCounterClockwise;
    EXPECT_EQ(*t.direction, expect);
  }
  // The all-to-all step routes shortest-path with antipodal ties split
  // between the fibers.
  const topo::Ring ring(15);
  for (const coll::Transfer& t : s.steps()[1].transfers) {
    ASSERT_TRUE(t.direction.has_value());
    const std::uint32_t cw = ring.cw_distance(t.src, t.dst);
    const std::uint32_t ccw = ring.ccw_distance(t.src, t.dst);
    if (cw < ccw) {
      EXPECT_EQ(*t.direction, topo::Direction::kClockwise);
    } else if (ccw < cw) {
      EXPECT_EQ(*t.direction, topo::Direction::kCounterClockwise);
    }
  }
}

TEST(WrhtSchedule, BroadcastMirrorsReduce) {
  const coll::Schedule s = wrht_allreduce(30, 8, WrhtOptions{5, 1});
  // Without all-to-all (w=1), steps = 2L; broadcast step i mirrors reduce
  // step 2L-1-i with src/dst swapped.
  const std::size_t n_steps = s.num_steps();
  for (std::size_t i = 0; i < n_steps / 2; ++i) {
    const auto& reduce = s.steps()[i].transfers;
    const auto& bcast = s.steps()[n_steps - 1 - i].transfers;
    ASSERT_EQ(reduce.size(), bcast.size());
    for (std::size_t t = 0; t < reduce.size(); ++t) {
      EXPECT_EQ(reduce[t].src, bcast[t].dst);
      EXPECT_EQ(reduce[t].dst, bcast[t].src);
      EXPECT_EQ(reduce[t].kind, coll::TransferKind::kReduce);
      EXPECT_EQ(bcast[t].kind, coll::TransferKind::kCopy);
    }
  }
}

TEST(WrhtSchedule, AllToAllStepIsCompleteExchange) {
  const coll::Schedule s = wrht_allreduce(15, 15, WrhtOptions{5, 2});
  const auto& a2a = s.steps()[1].transfers;
  EXPECT_EQ(a2a.size(), 6u);  // 3 reps, ordered pairs
  for (const coll::Transfer& t : a2a) {
    EXPECT_TRUE(t.src == 2 || t.src == 7 || t.src == 12);
    EXPECT_TRUE(t.dst == 2 || t.dst == 7 || t.dst == 12);
    EXPECT_EQ(t.kind, coll::TransferKind::kReduce);
  }
}

TEST(WrhtSchedule, SubRingNodeList) {
  // WRHT over an explicit subset of a larger ring (torus row usage).
  const std::vector<NodeId> nodes = {10, 11, 12, 13, 14, 15};
  const coll::Schedule s = wrht_allreduce(nodes, 100, 6, WrhtOptions{3, 1});
  s.validate();
  for (const coll::Step& step : s.steps()) {
    for (const coll::Transfer& t : step.transfers) {
      EXPECT_GE(t.src, 10u);
      EXPECT_LE(t.src, 15u);
    }
  }
}

TEST(WrhtSchedule, Validation) {
  EXPECT_THROW(wrht_allreduce(8, 8, WrhtOptions{1, 4}), InvalidArgument);
  EXPECT_THROW(wrht_allreduce(1, 8, WrhtOptions{2, 4}), InvalidArgument);
  EXPECT_THROW(
      wrht_allreduce({5, 6}, 4, 8, WrhtOptions{2, 4}),  // ids exceed ring
      InvalidArgument);
}

}  // namespace
}  // namespace wrht::core
