#include <gtest/gtest.h>

#include "wrht/common/error.hpp"
#include "wrht/dnn/model.hpp"
#include "wrht/dnn/training.hpp"
#include "wrht/dnn/zoo.hpp"

namespace wrht::dnn {
namespace {

TEST(Model, LayerHelpersCountParameters) {
  Model m("toy", 1.0);
  EXPECT_EQ(m.add_conv("c", 3, 8, 16), 3u * 3 * 8 * 16 + 16);
  EXPECT_EQ(m.add_conv("c2", 1, 8, 16, /*bias=*/false), 8u * 16);
  EXPECT_EQ(m.add_fc("f", 100, 10), 1010u);
  EXPECT_EQ(m.add_norm("n", 32), 64u);
  EXPECT_EQ(m.parameter_count(), 3u * 3 * 8 * 16 + 16 + 128 + 1010 + 64);
}

TEST(Model, GradientBytesAreFourPerParam) {
  Model m("toy", 1.0);
  m.add_fc("f", 10, 10);
  EXPECT_EQ(m.gradient_bytes().count(), 110u * 4);
  EXPECT_EQ(m.gradient_bytes(2).count(), 110u * 2);
}

TEST(Zoo, AlexNetMatchesPublishedCount) {
  // Single-tower AlexNet: 62,378,344 parameters ("62.3M" in the paper).
  EXPECT_EQ(alexnet().parameter_count(), 62'378'344u);
}

TEST(Zoo, Vgg16MatchesPublishedCount) {
  // 138,357,544 parameters ("138M" in the paper).
  EXPECT_EQ(vgg16().parameter_count(), 138'357'544u);
}

TEST(Zoo, ResNet50MatchesPublishedCount) {
  // 25,557,032 trainable parameters ("25M" in the paper).
  EXPECT_EQ(resnet50().parameter_count(), 25'557'032u);
}

TEST(Zoo, BeitLargeIsAbout307M) {
  // The paper cites 307M; our layer-accurate build lands within 3%.
  const std::uint64_t params = beit_large().parameter_count();
  EXPECT_GT(params, 297'000'000u);
  EXPECT_LT(params, 317'000'000u);
}

TEST(Zoo, BertLargeIsAbout335M) {
  const std::uint64_t params = bert_large().parameter_count();
  EXPECT_GT(params, 330'000'000u);
  EXPECT_LT(params, 345'000'000u);
}

TEST(Zoo, PaperWorkloadsOrderedAsInFigures) {
  const auto models = paper_workloads();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0].name(), "BEiT-L");
  EXPECT_EQ(models[1].name(), "VGG16");
  EXPECT_EQ(models[2].name(), "AlexNet");
  EXPECT_EQ(models[3].name(), "ResNet50");
  // Descending parameter counts, as the paper lists them.
  for (std::size_t i = 1; i < models.size(); ++i) {
    EXPECT_GT(models[i - 1].parameter_count(), models[i].parameter_count());
  }
}

TEST(Zoo, EveryLayerNamedAndCounted) {
  for (const auto& model : paper_workloads()) {
    EXPECT_FALSE(model.layers().empty());
    for (const auto& layer : model.layers()) {
      EXPECT_FALSE(layer.name.empty());
    }
  }
}

TEST(Training, ComputeTimeScalesWithBatch) {
  const Model m = resnet50();
  TrainingConfig small, big;
  small.batch_per_worker = 16;
  big.batch_per_worker = 32;
  EXPECT_NEAR(compute_time(m, big).count() / compute_time(m, small).count(),
              2.0, 1e-9);
}

TEST(Training, ComputeTimeFormula) {
  Model m("toy", 10.0);  // 10 GFLOPs forward per sample
  TrainingConfig cfg;
  cfg.batch_per_worker = 4;
  cfg.gpu.sustained_gflops = 1000.0;
  cfg.gpu.backward_multiplier = 2.0;
  // (10 * 4) * 3 / 1000 = 0.12 s.
  EXPECT_NEAR(compute_time(m, cfg).count(), 0.12, 1e-12);
}

TEST(Training, IterationBreakdownCommFraction) {
  const Model m = resnet50();
  TrainingConfig cfg;
  const auto iter = iteration_breakdown(m, cfg, Seconds(1.0));
  EXPECT_GT(iter.comm_fraction(), 0.9);  // 1 s comm vs ms-scale compute
  const auto compute_only = iteration_breakdown(m, cfg, Seconds(0.0));
  EXPECT_DOUBLE_EQ(compute_only.comm_fraction(), 0.0);
}

TEST(Training, IterationsPerEpoch) {
  TrainingConfig cfg;
  cfg.batch_per_worker = 32;
  cfg.num_workers = 8;
  cfg.dataset_samples = 2560;
  EXPECT_EQ(iterations_per_epoch(cfg), 10u);
  cfg.dataset_samples = 2561;  // partial final batch rounds up
  EXPECT_EQ(iterations_per_epoch(cfg), 11u);
}

TEST(Training, EpochTimeComposes) {
  const Model m = alexnet();
  TrainingConfig cfg;
  cfg.num_workers = 64;
  cfg.dataset_samples = 64 * 32 * 5;  // exactly 5 iterations
  const Seconds comm(0.01);
  const auto iter = iteration_breakdown(m, cfg, comm);
  EXPECT_NEAR(epoch_time(m, cfg, comm).count(), 5.0 * iter.total().count(),
              1e-12);
}

TEST(Training, Validation) {
  const Model m = resnet50();
  TrainingConfig cfg;
  cfg.batch_per_worker = 0;
  EXPECT_THROW(compute_time(m, cfg), InvalidArgument);
  TrainingConfig cfg2;
  EXPECT_THROW(iteration_breakdown(m, cfg2, Seconds(-1.0)), InvalidArgument);
  EXPECT_THROW(Model("bad", 0.0), InvalidArgument);
}

}  // namespace
}  // namespace wrht::dnn
