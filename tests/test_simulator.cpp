#include "wrht/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "wrht/common/error.hpp"

namespace wrht::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(Seconds(1.0), [&] { times.push_back(sim.now().count()); });
  sim.schedule_in(Seconds(2.5), [&] { times.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now().count(), 2.5);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    ++chain;
    if (chain < 5) sim.schedule_in(Seconds(1.0), next);
  };
  sim.schedule_in(Seconds(1.0), next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now().count(), 5.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(Seconds(4.0), [&] { fired_at = sim.now().count(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_in(Seconds(2.0), [&] {
    EXPECT_THROW(sim.schedule_at(Seconds(1.0), [] {}), InvalidArgument);
  });
  sim.run();
  EXPECT_THROW(sim.schedule_in(Seconds(-1.0), [] {}), InvalidArgument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_in(Seconds(t), [&fired, t] { fired.push_back(t); });
  }
  const auto n = sim.run_until(Seconds(2.0));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now().count(), 2.0);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(Seconds(10.0));
  EXPECT_DOUBLE_EQ(sim.now().count(), 10.0);
}

TEST(Simulator, CountsEventsFired) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(Seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(Seconds(1.0), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilFiresEventExactlyAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(Seconds(2.0), [&] { fired.push_back(2.0); });
  sim.schedule_at(Seconds(2.0 + 1e-9), [&] { fired.push_back(2.000000001); });
  // The event at exactly the deadline fires; the one epsilon past survives.
  EXPECT_EQ(sim.run_until(Seconds(2.0)), 1u);
  EXPECT_EQ(fired, (std::vector<double>{2.0}));
  EXPECT_FALSE(sim.idle());
  // A second call with the same deadline is a no-op: nothing is due.
  EXPECT_EQ(sim.run_until(Seconds(2.0)), 0u);
  // The survivor fires on the next window.
  EXPECT_EQ(sim.run_until(Seconds(3.0)), 1u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now().count(), 3.0);
}

TEST(Simulator, RunUntilDeadlineSpawnsAtDeadlineStillFire) {
  Simulator sim;
  int fired = 0;
  // An event at the deadline that schedules another zero-delay event: the
  // child lands exactly at the deadline too, so it fires in the same call.
  sim.schedule_at(Seconds(5.0), [&] {
    ++fired;
    sim.schedule_in(Seconds(0.0), [&] { ++fired; });
  });
  EXPECT_EQ(sim.run_until(Seconds(5.0)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CancelAfterFireIsSafe) {
  Simulator sim;
  const EventId id = sim.schedule_in(Seconds(1.0), [] {});
  sim.schedule_in(Seconds(2.0), [] {});
  sim.run_until(Seconds(1.0));
  sim.cancel(id);  // already fired: must be a no-op
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, ResetRewindsClockAndDropsEvents) {
  Simulator sim;
  bool stale = false;
  sim.schedule_in(Seconds(1.0), [] {});
  sim.run();
  sim.schedule_in(Seconds(5.0), [&] { stale = true; });
  EXPECT_DOUBLE_EQ(sim.now().count(), 1.0);

  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now().count(), 0.0);
  EXPECT_TRUE(sim.idle());
  // The lifetime counter survives a reset; the pending event does not.
  EXPECT_EQ(sim.events_fired(), 1u);
  sim.run();
  EXPECT_FALSE(stale);

  // Reuse after reset behaves like a fresh simulator.
  std::vector<double> times;
  sim.schedule_in(Seconds(2.0), [&] { times.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{2.0}));
  EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulator, ResetToNonZeroStart) {
  Simulator sim;
  sim.schedule_in(Seconds(1.0), [] {});
  sim.run();
  sim.reset(Seconds(100.0));
  EXPECT_DOUBLE_EQ(sim.now().count(), 100.0);
  // The new epoch enforces its own past: earlier times are rejected.
  EXPECT_THROW(sim.schedule_at(Seconds(99.0), [] {}), InvalidArgument);
  double fired_at = -1.0;
  sim.schedule_in(Seconds(1.5), [&] { fired_at = sim.now().count(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 101.5);
}

TEST(Simulator, StartOffsetConstructor) {
  Simulator sim(Seconds(10.0));
  EXPECT_DOUBLE_EQ(sim.now().count(), 10.0);
  double fired_at = -1.0;
  sim.schedule_in(Seconds(0.5), [&] { fired_at = sim.now().count(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.5);
}

TEST(Simulator, ZeroDelaySameTimeOrdering) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(Seconds(0.0), [&] {
    order.push_back(1);
    sim.schedule_in(Seconds(0.0), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace wrht::sim
