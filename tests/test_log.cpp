#include "wrht/common/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace wrht {
namespace {

/// Captures std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public testing::Test {
 protected:
  void SetUp() override { previous_ = set_log_level(LogLevel::kWarn); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_{};
};

TEST_F(LogTest, BelowThresholdIsSuppressed) {
  ClogCapture capture;
  set_log_level(LogLevel::kWarn);
  WRHT_LOG_INFO << "hidden";
  EXPECT_EQ(capture.text(), "");
}

TEST_F(LogTest, AtThresholdIsEmitted) {
  ClogCapture capture;
  set_log_level(LogLevel::kInfo);
  WRHT_LOG_INFO << "visible " << 42;
  EXPECT_NE(capture.text().find("[wrht:INFO] visible 42"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveDefault) {
  ClogCapture capture;
  WRHT_LOG_ERROR << "bad";
  EXPECT_NE(capture.text().find("[wrht:ERROR] bad"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  ClogCapture capture;
  set_log_level(LogLevel::kOff);
  WRHT_LOG_ERROR << "silent";
  EXPECT_EQ(capture.text(), "");
}

TEST_F(LogTest, SetReturnsPrevious) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(set_log_level(LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace wrht
