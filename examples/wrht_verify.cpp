// Schedule verification CLI: differential fuzzing over every registered
// All-reduce algorithm.
//
//   $ ./wrht_verify [iterations] [seed] [algorithm]
//
// Each iteration samples a random (algorithm, N, elements, m, w)
// configuration, builds the schedule through the registry, and runs the
// full verification stack: the data-level oracle (numeric + exact
// provenance proof of the global sum), the structural and RWA invariants,
// the WRHT hierarchy/step-count/wavelength checks, and the simulator vs
// Eq. (6) differential. Exits 1 on the first report with failures and
// prints the greedily shrunk minimal reproducer.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "wrht/verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace wrht;

  verify::FuzzOptions options;
  options.iterations =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 500;
  if (argc > 2) options.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  if (argc > 3) options.algorithms = {argv[3]};

  std::printf("wrht_verify: %zu iterations, seed 0x%llx%s\n\n",
              options.iterations,
              static_cast<unsigned long long>(options.seed),
              options.algorithms.empty()
                  ? ", all registered algorithms"
                  : (", algorithm " + options.algorithms.front()).c_str());

  const verify::FuzzReport report = verify::run_fuzz(options);

  std::printf("configurations checked per algorithm:\n");
  for (const auto& [name, count] : report.cases_per_algorithm) {
    std::printf("  %-20s %zu\n", name.c_str(), count);
  }

  if (report.ok()) {
    std::printf("\nall %zu configurations passed: oracle proved the global "
                "sum, all invariants held, simulator matched Eq. (6).\n",
                report.iterations_run);
    return 0;
  }

  std::printf("\n%zu of %zu configurations FAILED.\n", report.failures.size(),
              report.iterations_run);
  const verify::FuzzFailure& first = report.failures.front();
  std::printf("\nfirst failure: %s\n%s\n", first.config.to_string().c_str(),
              first.result.summary().c_str());
  if (report.minimal_failure) {
    std::printf("\nminimal reproducer: %s\n%s\n",
                report.minimal_failure->config.to_string().c_str(),
                report.minimal_failure->result.summary().c_str());
  }
  return 1;
}
