// Distributed data-parallel DNN training scenario (the paper's motivating
// workload): trains the four paper models on simulated clusters and breaks
// one epoch into compute vs All-reduce communication, comparing WRHT on the
// optical ring against Ring All-reduce on both interconnects.
//
//   $ ./dnn_training [nodes]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/dnn/training.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/optical/ring_network.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  constexpr std::uint32_t kWavelengths = 64;

  std::printf(
      "Data-parallel training on %u workers (batch 32/worker, ImageNet "
      "epoch)\n\n", nodes);

  dnn::TrainingConfig cfg;
  cfg.num_workers = nodes;
  cfg.batch_per_worker = 32;

  const optics::RingNetwork optical(nodes, [] {
    optics::OpticalConfig c;
    c.wavelengths = kWavelengths;
    return c;
  }());
  const elec::FatTreeNetwork electrical(nodes, elec::ElectricalConfig{});
  const core::WrhtPlan plan = core::plan_wrht(nodes, kWavelengths);

  Table table({"Model", "Params", "Compute/iter", "WRHT comm", "comm frac",
               "O-Ring comm", "E-Ring comm", "WRHT epoch"});

  for (const auto& model : dnn::paper_workloads()) {
    const std::size_t elements = model.parameter_count();

    const Seconds t_wrht =
        optical
            .execute(core::wrht_allreduce(
                nodes, elements,
                core::WrhtOptions{plan.group_size, kWavelengths}))
            .total_time;
    const auto ring_sched = coll::ring_allreduce(nodes, elements);
    const Seconds t_oring = optical.execute(ring_sched).total_time;
    const Seconds t_ering = electrical.execute(ring_sched).total_time;

    const auto iter = dnn::iteration_breakdown(model, cfg, t_wrht);
    const Seconds epoch = dnn::epoch_time(model, cfg, t_wrht);

    char params[32], frac[16];
    std::snprintf(params, sizeof params, "%.1fM",
                  model.parameter_count() / 1e6);
    std::snprintf(frac, sizeof frac, "%.0f%%", iter.comm_fraction() * 100.0);
    table.add_row({model.name(), params, to_string(iter.compute),
                   to_string(t_wrht), frac, to_string(t_oring),
                   to_string(t_ering), to_string(epoch)});
  }
  std::cout << table;

  std::printf(
      "\nThe communication fraction under plain Ring on the electrical\n"
      "fat-tree is what motivates the paper (50-90%% of iteration time at\n"
      "scale); WRHT on the optical ring brings it down to a few percent.\n");
  return 0;
}
