// Torus extension (paper §6.1): runs WRHT on an n x n optical torus —
// per-row reduce, column All-reduce among the row roots, per-row broadcast
// — verifies the semantics, and compares the step count against WRHT and
// Ring All-reduce on a flat ring of the same total size.
//
//   $ ./torus_allreduce [rows] [cols]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/torus_wrht.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t rows =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint32_t cols =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 16;
  constexpr std::uint32_t kWavelengths = 8;

  const topo::Torus torus(rows, cols);
  const core::WrhtOptions row_options{
      std::min(2 * kWavelengths + 1, cols), kWavelengths};

  std::printf("WRHT on a %ux%u optical torus (w = %u, row groups m = %u)\n\n",
              rows, cols, kWavelengths, row_options.group_size);

  // Build and verify.
  const coll::Schedule sched =
      core::torus_wrht_allreduce(torus, 64, row_options);
  Rng rng;
  const double err = coll::Executor::verify_allreduce(sched, rng);
  std::printf("verified: all %u nodes hold the global sum (max error "
              "%.2e)\n\n", torus.size(), err);

  const core::TorusWrhtPlan plan = core::torus_wrht_plan(torus, row_options);
  std::printf("phases: %u row-reduce + %u column + %u row-broadcast steps\n\n",
              plan.row_reduce_steps, plan.column_steps,
              plan.row_broadcast_steps);

  for (std::size_t i = 0; i < sched.num_steps(); ++i) {
    std::printf("  step %2zu: %-26s %5zu transfers\n", i,
                sched.steps()[i].label.c_str(),
                sched.steps()[i].transfers.size());
  }

  // Step-count comparison against flat-ring alternatives of equal size.
  const std::uint32_t n = torus.size();
  const core::WrhtPlan flat = core::plan_wrht(n, kWavelengths);
  Table table({"Topology / algorithm", "Steps"});
  table.add_row({"Torus WRHT (this run)", std::to_string(plan.total())});
  table.add_row({"Flat-ring WRHT (m=" + std::to_string(flat.group_size) + ")",
                 std::to_string(flat.steps.total_steps)});
  table.add_row({"Flat-ring Ring All-reduce", std::to_string(2 * (n - 1))});
  std::printf("\n");
  std::cout << table;

  std::printf(
      "\nThe torus runs all rows concurrently, so its step count depends\n"
      "on the row/column lengths (sqrt(N)), not N — the §6.1 observation\n"
      "that the All-reduce process is considerably simpler on a torus.\n");
  return 0;
}
