// Trace viewer: run one All-reduce on every simulator with full
// observability attached and write a Chrome trace-event file.
//
//   $ ./trace_viewer [nodes] [elements] [wavelengths] [out_prefix]
//
// Produces `<out_prefix>.trace.json` — open it at chrome://tracing or
// https://ui.perfetto.dev ("Open trace file"). Each simulator gets its own
// track: the optical ring shows one span per communication step with child
// spans per RWA round, the electrical fat tree one span per fair-sharing
// step, and the data-level executor a logical-time lane. The engines also
// emit Perfetto counter tracks ("C" events) under each lane — wavelengths
// in use on the optical rings, active flows / max link load on the fat
// tree, packets per step on the packet model — so utilization dips line up
// visually with the spans that caused them. A counter summary and a
// per-step cost table (from the unified RunReport) print to stdout.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/electrical/packet_sim.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/optical/ring_network.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1'000'000;
  const std::uint32_t wavelengths =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8;
  const std::string prefix = argc > 4 ? argv[4] : "wrht";

  std::printf("Tracing %u nodes, %zu elements, %u wavelengths\n\n", nodes,
              elements, wavelengths);

  const std::uint32_t m = core::plan_wrht(nodes, wavelengths).group_size;
  const coll::Schedule wrht_sched =
      core::wrht_allreduce(nodes, elements, core::WrhtOptions{m, wavelengths});
  const coll::Schedule ring_sched = coll::ring_allreduce(nodes, elements);

  obs::ChromeTraceSink trace("wrht trace_viewer");
  obs::Counters counters;

  // Track 0: WRHT on the optical ring (step spans + RWA round spans).
  trace.set_track_name(0, "optical ring / WRHT");
  const optics::RingNetwork optical(
      nodes, optics::OpticalConfig{}.with_wavelengths(wavelengths));
  const RunReport wrht_report =
      optical.execute(wrht_sched, obs::Probe{&trace, &counters, 0})
          .to_report();

  // Track 1: Ring All-reduce on the same optical hardware.
  trace.set_track_name(1, "optical ring / Ring");
  const RunReport ring_report =
      optical.execute(ring_sched, obs::Probe{&trace, &counters, 1})
          .to_report();

  // Track 2: Ring on the electrical fat tree (fair-share flow model).
  trace.set_track_name(2, "electrical fat tree / Ring");
  const elec::FatTreeNetwork electrical(nodes, elec::ElectricalConfig{});
  const RunReport elec_report =
      electrical.execute(ring_sched, obs::Probe{&trace, &counters, 2})
          .to_report();

  // Tracks 3-4, at validation scale (256 elements): the packet-level
  // ground truth, and the data-level executor (logical step time) proving
  // the WRHT schedule is an All-reduce while tracing what it moves.
  const coll::Schedule small =
      core::wrht_allreduce(nodes, 256, core::WrhtOptions{m, wavelengths});
  trace.set_track_name(3, "electrical packet / Ring (256 elems)");
  const elec::PacketLevelNetwork packet(nodes, elec::ElectricalConfig{});
  const RunReport packet_report =
      packet.execute(coll::ring_allreduce(nodes, 256),
                     obs::Probe{&trace, &counters, 3})
          .to_report();

  trace.set_track_name(4, "executor / WRHT (logical time)");
  {
    std::vector<std::vector<double>> buffers(nodes,
                                             std::vector<double>(256, 1.0));
    coll::Executor::run(small, buffers, obs::Probe{&trace, &counters, 4});
  }

  const std::string trace_path = prefix + ".trace.json";
  trace.write_file(trace_path);

  Table table({"Backend", "Algorithm", "Steps", "Rounds", "Time"});
  table.add_row({wrht_report.backend, "wrht",
                 std::to_string(wrht_report.steps),
                 std::to_string(wrht_report.rounds),
                 to_string(wrht_report.total_time)});
  table.add_row({ring_report.backend, "ring",
                 std::to_string(ring_report.steps),
                 std::to_string(ring_report.rounds),
                 to_string(ring_report.total_time)});
  table.add_row({elec_report.backend, "ring",
                 std::to_string(elec_report.steps),
                 std::to_string(elec_report.rounds),
                 to_string(elec_report.total_time)});
  table.add_row({packet_report.backend, "ring (256)",
                 std::to_string(packet_report.steps),
                 std::to_string(packet_report.rounds),
                 to_string(packet_report.total_time)});
  std::cout << table << "\n";

  std::printf("counters:\n");
  for (const auto& [name, value] : counters.snapshot()) {
    std::printf("  %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  std::printf(
      "\n%zu spans + %zu counter samples -> %s\n"
      "(load in chrome://tracing or Perfetto; counter tracks render as\n"
      " per-lane line charts under the spans)\n",
      trace.size(), trace.counter_count(), trace_path.c_str());
  return 0;
}
