// wrht_svc: run a seeded multi-tenant workload through the shared-fabric
// service and print the per-tenant SLO / bottleneck report.
//
//   $ ./wrht_svc [jobs] [wavelengths] [policy|all] [interarrival_ms] [burstiness]
//
// Defaults: 64 jobs, 64 wavelengths, every policy, 20 ms mean gap, 0.3
// burstiness. `policy` is one of fifo, priority, backfill, weighted-fair,
// or `all` to sweep them on the same trace. The report tells each tenant
// whether their SLO is queue-bound (admission is the bottleneck — change
// policy or buy width) or service-bound (the all-reduce itself dominates —
// wider slices or a better schedule).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"

int main(int argc, char** argv) {
  using namespace wrht;

  svc::WorkloadConfig workload;
  workload.num_jobs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  workload.fabric_wavelengths =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;
  const std::string policy_arg = argc > 3 ? argv[3] : "all";
  workload.mean_interarrival =
      Seconds((argc > 4 ? std::atof(argv[4]) : 20.0) * 1e-3);
  workload.burstiness = argc > 5 ? std::atof(argv[5]) : 0.3;

  std::vector<svc::PolicyKind> policies;
  if (policy_arg == "all") {
    policies = svc::all_policies();
  } else {
    policies = {svc::policy_from_string(policy_arg)};  // throws on typos
  }

  std::printf(
      "wrht_svc: %u jobs over a %u-wavelength fabric (%u-node all-reduces, "
      "mean gap %.1f ms, burstiness %.2f, seed %llu)\n",
      workload.num_jobs, workload.fabric_wavelengths, workload.num_nodes,
      workload.mean_interarrival.count() * 1e3, workload.burstiness,
      static_cast<unsigned long long>(workload.seed));

  const std::vector<svc::Job> jobs = svc::generate_workload(workload);

  // One long-lived service per policy sweep would also work; a fresh one
  // per policy keeps the printed reports independent.
  for (const svc::PolicyKind kind : policies) {
    svc::ServiceConfig config;
    config.fabric_wavelengths = workload.fabric_wavelengths;
    config.policy = kind;
    svc::FabricService service(config);
    const svc::ServiceReport report = service.run(jobs);
    std::printf("\n");
    std::cout << report.to_string();
  }
  return 0;
}
