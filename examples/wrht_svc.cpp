// wrht_svc: run a seeded multi-tenant workload through the shared-fabric
// service and print the per-tenant SLO / bottleneck report.
//
//   $ ./wrht_svc [jobs] [wavelengths] [policy|all] [interarrival_ms]
//                [burstiness] [--trace PATH] [--metrics PATH]
//                [--events PATH] [--slo TENANT=SECONDS ...]
//
// Defaults: 64 jobs, 64 wavelengths, every policy, 20 ms mean gap, 0.3
// burstiness. `policy` is one of fifo, priority, backfill, weighted-fair,
// or `all` to sweep them on the same trace. The report tells each tenant
// whether their SLO is queue-bound (admission is the bottleneck — change
// policy or buy width) or service-bound (the all-reduce itself dominates —
// wider slices or a better schedule).
//
// Telemetry flags opt into the wrht::obs service instruments (off by
// default, and the report is byte-identical either way):
//   --trace PATH    Chrome-trace timeline: one lane per tenant plus queue
//                   depth / wavelengths-in-use / fragmentation counter
//                   tracks. Load in chrome://tracing or Perfetto.
//   --metrics PATH  long-format CSV of every instrument's time series,
//                   sampled on a virtual-time cadence.
//   --events PATH   svc-events-1 JSONL event log (replayable with
//                   `wrht_analyze --service PATH`).
//   --blame PATH    per-tenant JCT blame (queueing / fragmentation /
//                   reconfiguration / conversion / transmission) as a
//                   "service"-kind wrht-blame-1 JSON; the accounting
//                   identity is checked and a violation fails the run.
//   --slo T=S       give tenant T a JCT target of S seconds (repeatable);
//                   prints the SLO attainment table.
// With `all`, each policy overwrites the same files; the last policy's
// telemetry survives.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "wrht/diag/svc_blame.hpp"
#include "wrht/obs/event_log.hpp"
#include "wrht/obs/metrics.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"
#include "wrht/verify/blame.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [jobs] [wavelengths] [policy|all] [interarrival_ms] "
               "[burstiness] [--trace PATH] [--metrics PATH] [--events PATH] "
               "[--blame PATH] [--slo TENANT=SECONDS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrht;

  std::string trace_path;
  std::string metrics_path;
  std::string events_path;
  std::string blame_path;
  std::map<std::uint32_t, Seconds> slo_targets;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg == "--metrics" || arg == "--events" ||
        arg == "--blame" || arg == "--slo") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string value = argv[++i];
      if (arg == "--trace") {
        trace_path = value;
      } else if (arg == "--metrics") {
        metrics_path = value;
      } else if (arg == "--events") {
        events_path = value;
      } else if (arg == "--blame") {
        blame_path = value;
      } else {
        const std::size_t eq = value.find('=');
        if (eq == std::string::npos) return usage(argv[0]);
        slo_targets[static_cast<std::uint32_t>(
            std::atoi(value.substr(0, eq).c_str()))] =
            Seconds(std::atof(value.substr(eq + 1).c_str()));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      pos.push_back(arg);
    }
  }

  svc::WorkloadConfig workload;
  workload.num_jobs =
      !pos.empty() ? static_cast<std::uint32_t>(std::atoi(pos[0].c_str())) : 64;
  workload.fabric_wavelengths =
      pos.size() > 1 ? static_cast<std::uint32_t>(std::atoi(pos[1].c_str()))
                     : 64;
  const std::string policy_arg = pos.size() > 2 ? pos[2] : "all";
  workload.mean_interarrival =
      Seconds((pos.size() > 3 ? std::atof(pos[3].c_str()) : 20.0) * 1e-3);
  workload.burstiness = pos.size() > 4 ? std::atof(pos[4].c_str()) : 0.3;

  std::vector<svc::PolicyKind> policies;
  if (policy_arg == "all") {
    policies = svc::all_policies();
  } else {
    policies = {svc::policy_from_string(policy_arg)};  // throws on typos
  }

  std::printf(
      "wrht_svc: %u jobs over a %u-wavelength fabric (%u-node all-reduces, "
      "mean gap %.1f ms, burstiness %.2f, seed %llu)\n",
      workload.num_jobs, workload.fabric_wavelengths, workload.num_nodes,
      workload.mean_interarrival.count() * 1e3, workload.burstiness,
      static_cast<unsigned long long>(workload.seed));

  const std::vector<svc::Job> jobs = svc::generate_workload(workload);

  // One long-lived service per policy sweep would also work; a fresh one
  // per policy keeps the printed reports independent.
  for (const svc::PolicyKind kind : policies) {
    svc::ServiceConfig config;
    config.fabric_wavelengths = workload.fabric_wavelengths;
    config.policy = kind;
    config.slo_targets = slo_targets;
    config.telemetry.trace = !trace_path.empty();
    config.telemetry.metrics = !metrics_path.empty();
    config.telemetry.events = !events_path.empty();
    config.telemetry.seed = workload.seed;
    svc::FabricService service(config);
    const svc::ServiceReport report = service.run(jobs);
    std::printf("\n");
    std::cout << report.to_string();
    if (!slo_targets.empty()) svc::print_slo_report(report);

    if (service.trace() != nullptr) {
      service.trace()->write_file(trace_path);
      std::printf("trace written to %s (load in chrome://tracing)\n",
                  trace_path.c_str());
    }
    if (service.metrics() != nullptr) {
      service.metrics()->write_series_csv(metrics_path);
      std::printf("metric time series written to %s\n", metrics_path.c_str());
    }
    if (service.event_log() != nullptr) {
      service.event_log()->write_file(events_path);
      std::printf("event log written to %s (replay with wrht_analyze "
                  "--service)\n",
                  events_path.c_str());
    }
    if (!blame_path.empty()) {
      const diag::ServiceBlame blame = diag::build_service_blame(
          report, config.planner, config.fabric_wavelengths);
      std::printf("\n%s", blame.to_string().c_str());
      const verify::CheckResult identity =
          verify::check_blame_identity(blame);
      if (!identity.ok()) {
        std::fprintf(stderr, "%s\n", identity.summary().c_str());
        return 1;
      }
      diag::write_service_blame_file(blame, blame_path);
      std::printf("blame report written to %s (diff with wrht_analyze "
                  "--diff)\n",
                  blame_path.c_str());
    }
  }
  return 0;
}
