// Optical-constraint explorer (paper §4.4): sweeps the laser power budget
// and the MRR crosstalk figure, solves the maximum feasible group size m'
// under the insertion-loss (Eqs. 7-9) and BER (Eqs. 11-13) constraints, and
// shows how the constrained WRHT plan degrades.
//
//   $ ./constraint_explorer [nodes] [wavelengths]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
  const std::uint32_t wavelengths =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;

  std::printf(
      "Optical-communication constraints on WRHT (N = %u, w = %u)\n"
      "unconstrained plan: m = %u, %u steps\n\n",
      nodes, wavelengths, core::plan_wrht(nodes, wavelengths).group_size,
      core::plan_wrht(nodes, wavelengths).steps.total_steps);

  {
    std::printf("--- Sweep 1: laser power (insertion-loss bound, Eq. 9) ---\n");
    Table table({"P_laser (dBm)", "reach (hops)", "m'", "planned m", "steps",
                 "BER @ reach"});
    for (const double laser : {6.3, 6.7, 7.5, 9.0, 10.0, 12.0}) {
      core::OpticalConstraints c;
      c.power.laser_power = PowerDbm(laser);
      const std::uint64_t reach = optics::max_reach_hops(c.power);
      const std::uint32_t m_prime = core::max_feasible_group_size(nodes, c);
      std::string planned = "-", steps = "-", ber = "-";
      if (m_prime >= 2) {
        const core::WrhtPlan plan = core::plan_wrht(nodes, wavelengths, c);
        planned = std::to_string(plan.group_size);
        steps = std::to_string(plan.steps.total_steps);
        const auto report =
            core::evaluate_constraints(nodes, plan.group_size, c);
        ber = Table::num(report.ber, 15);
      }
      table.add_row({Table::num(laser, 1), std::to_string(reach),
                     std::to_string(m_prime), planned, steps, ber});
    }
    std::cout << table << "\n";
  }

  {
    std::printf(
        "--- Sweep 2: per-interface crosstalk (BER < 1e-9, Eq. 13) ---\n");
    Table table({"P_Rx (dBm)", "BER reach (hops)", "m'", "planned m",
                 "steps"});
    for (const double xtalk : {-30.0, -33.0, -36.0, -40.0, -45.0}) {
      core::OpticalConstraints c;
      c.crosstalk.per_hop_crosstalk = PowerDbm(xtalk);
      const std::uint64_t reach =
          optics::max_hops_for_ber(c.crosstalk, c.target_ber);
      const std::uint32_t m_prime = core::max_feasible_group_size(nodes, c);
      std::string planned = "-", steps = "-";
      if (m_prime >= 2) {
        const core::WrhtPlan plan = core::plan_wrht(nodes, wavelengths, c);
        planned = std::to_string(plan.group_size);
        steps = std::to_string(plan.steps.total_steps);
      }
      table.add_row({Table::num(xtalk, 1), std::to_string(reach),
                     std::to_string(m_prime), planned, steps});
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Reading the tables: a tighter power budget or leakier MRRs shrink\n"
      "the feasible group size m' (Eq. 10), which stretches the hierarchy\n"
      "and adds communication steps — the quantitative version of the\n"
      "paper's observation that better optical integration will improve\n"
      "WRHT further.\n");
  return 0;
}
