// wrht_analyze: run one All-reduce configuration and print the resource
// bottleneck report — per-resource utilization, the idle-time breakdown
// (MRR reconfiguration / O/E/O / transmission / straggler wait / idle),
// the critical path through the step timeline, and the top idle resources.
//
//   $ ./wrht_analyze [nodes] [elements] [wavelengths] [algorithm] [backend]
//                    [--json PATH]
//   $ ./wrht_analyze --service EVENTS.jsonl
//
// Defaults reproduce a Fig. 5 configuration (N = 1024, w = 64, WRHT on the
// optical ring). The tool double-checks the accounting identities the
// analysis layer guarantees — breakdown sums to total_time and the
// critical path tiles the run — and fails loudly if either drifts, so the
// example smoke test doubles as an acceptance check. --json additionally
// dumps the machine-readable RunReport (steps, counters, utilization) to
// PATH for downstream tooling.
//
// --service switches to post-hoc service analysis: it replays a
// svc-events-1 JSONL event log (written by `wrht_svc --events` or the
// telemetry bench), rebuilds the queue-depth and utilization time series
// plus the full per-tenant report from the events alone, and prints the
// bottleneck verdict. Replay runs through the same summarize_records()
// arithmetic as the live service, so the numbers match the original run
// exactly.
//
// --blame PATH attaches the transfer-level probe to the run, extracts the
// critical path, attributes the makespan to blame categories
// (reconfiguration / conversion / transmission / processing / straggler
// wait), runs the what-if re-pricings, and writes the byte-deterministic
// wrht-blame-1 JSON to PATH. The accounting identity (sum of categories ==
// makespan) is checked by verify::check_blame_identity and a violation
// fails the run. --blame-trace PATH additionally exports the critical
// path as a Chrome trace whose rounds are chained with flow arrows.
//
// --diff BASE OTHER compares two wrht-blame-1 files (run- or
// service-kind) and localizes any movement to categories, lanes, and
// tenants; exit 1 when OTHER regressed against BASE.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/diag/blame.hpp"
#include "wrht/diag/blame_json.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/analysis.hpp"
#include "wrht/obs/event_log.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/svc/replay.hpp"
#include "wrht/verify/blame.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [nodes] [elements] [wavelengths] [algorithm] "
               "[backend] [--json PATH] [--blame PATH] [--blame-trace PATH] "
               "| --service EVENTS.jsonl | --diff BASE.json OTHER.json\n",
               argv0);
  return 2;
}

int diff_blame_files(const std::string& base_path,
                     const std::string& other_path) {
  using namespace wrht;
  const diag::ParsedBlame base = diag::read_blame_file(base_path);
  const diag::ParsedBlame other = diag::read_blame_file(other_path);
  const diag::BlameDiff diff = diag::diff_blame(base, other);
  std::printf("base:  %s (%s)\nother: %s (%s)\n", base_path.c_str(),
              base.source.c_str(), other_path.c_str(), other.source.c_str());
  std::cout << diff.to_string();
  return diff.regressed ? 1 : 0;
}

int analyze_service(const std::string& events_path) {
  using namespace wrht;
  const obs::EventLog log = obs::EventLog::read_file(events_path);
  std::printf("replaying %s: %zu events, policy=%s, fabric=%uλ\n\n",
              events_path.c_str(), log.size(), log.context().policy.c_str(),
              log.context().fabric_wavelengths);
  const svc::ReplaySummary summary = svc::replay_events(log);
  std::cout << summary.to_string();

  // A few time-series samples so the signal shape is visible in a
  // terminal (the full series is in the summary for tooling).
  const std::size_t n = summary.queue_depth.size();
  if (n > 0) {
    std::printf("\nqueue depth over time (%zu transitions, every %zu-th):\n",
                n, std::max<std::size_t>(1, n / 8));
    for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 8)) {
      std::printf("  t=%8.4fs  depth=%-4.0f in_use=%.0f\n",
                  summary.queue_depth[i].time.count(),
                  summary.queue_depth[i].value,
                  summary.wavelengths_in_use[i].value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrht;
  // Flags may appear anywhere; everything else is positional. Anything
  // dash-prefixed that is not a known flag is an error, not a positional.
  std::string json_path;
  std::string service_path;
  std::string blame_path;
  std::string blame_trace_path;
  std::string diff_base;
  std::string diff_other;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--service" || arg == "--blame" ||
        arg == "--blame-trace") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string value = argv[++i];
      if (arg == "--json") {
        json_path = value;
      } else if (arg == "--service") {
        service_path = value;
      } else if (arg == "--blame") {
        blame_path = value;
      } else {
        blame_trace_path = value;
      }
    } else if (arg == "--diff") {
      if (i + 2 >= argc) return usage(argv[0]);
      diff_base = argv[++i];
      diff_other = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (!diff_base.empty()) return diff_blame_files(diff_base, diff_other);
  if (!service_path.empty()) return analyze_service(service_path);
  const std::uint32_t nodes =
      !pos.empty() ? static_cast<std::uint32_t>(std::atoi(pos[0].c_str()))
                   : 1024;
  const std::size_t elements =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                     : 1'000'000;
  const std::uint32_t wavelengths =
      pos.size() > 2 ? static_cast<std::uint32_t>(std::atoi(pos[2].c_str()))
                     : 64;
  const std::string algorithm = pos.size() > 3 ? pos[3] : "wrht";
  const std::string backend_name = pos.size() > 4 ? pos[4] : "optical-ring";

  exp::ensure_initialized();  // WRHT algorithm + builtin backends

  coll::AllreduceParams params;
  params.num_nodes = nodes;
  params.elements = elements;
  params.wavelengths = wavelengths;
  if (algorithm == "wrht") {
    params.group_size = core::plan_wrht(nodes, wavelengths).group_size;
  }
  const coll::Schedule schedule =
      coll::Registry::instance().build(algorithm, params);

  net::BackendConfig config;
  config.num_nodes = nodes;
  config.wavelengths = wavelengths;
  // The paper's sweeps assume no per-node MRR constraint (§5.4).
  config.validate_node_capacity = false;
  const std::unique_ptr<net::Backend> backend =
      net::BackendRegistry::instance().create(backend_name, config);

  std::printf("analyzing %s on %s: N=%u, %zu elements, w=%u\n\n",
              algorithm.c_str(), backend_name.c_str(), nodes, elements,
              wavelengths);

  // Bring our own sampler so the full analysis (per-resource accounts,
  // critical path) is available, not just the RunReport summary fields.
  obs::OccupancySampler sampler;
  obs::TransferLog transfers;
  obs::Probe probe;
  probe.occupancy = &sampler;
  if (!blame_path.empty() || !blame_trace_path.empty()) {
    probe.transfers = &transfers;
  }
  RunReport report = backend->execute(schedule, probe);

  const obs::UtilizationAnalysis analysis =
      obs::analyze_utilization(report, sampler);
  obs::print_bottleneck_report(std::cout, report, analysis, 5);

  if (!json_path.empty()) {
    report.write_json_file(json_path);
    std::printf("\nrun report written to %s\n", json_path.c_str());
  }

  if (!blame_path.empty() || !blame_trace_path.empty()) {
    const diag::BlameReport blame = diag::build_blame(transfers);
    std::printf("\n%s", blame.to_string().c_str());

    // What-if re-pricings: a sound upper bound on the speedup from
    // removing one category (the DAG is re-longest-pathed, so cross-lane
    // slack is honoured), plus the policy counterfactual.
    std::vector<std::pair<std::string, double>> what_if;
    for (const diag::BlameCategory category :
         {diag::BlameCategory::kReconfiguration,
          diag::BlameCategory::kConversion,
          diag::BlameCategory::kTransmission,
          diag::BlameCategory::kStragglerWait}) {
      what_if.emplace_back("zero_" + diag::to_string(category),
                           diag::what_if_zero(transfers, category).count());
    }
    what_if.emplace_back("policy_on_retune",
                         diag::what_if_on_retune(transfers).count());
    std::printf("what-if makespans:\n");
    for (const auto& [label, seconds] : what_if) {
      std::printf("  %-24s %12.6e s (%+.1f%%)\n", label.c_str(), seconds,
                  blame.total_time.count() > 0.0
                      ? 100.0 * (seconds - blame.total_time.count()) /
                            blame.total_time.count()
                      : 0.0);
    }

    const verify::CheckResult identity = verify::check_blame_identity(blame);
    if (!identity.ok()) {
      std::fprintf(stderr, "%s\n", identity.summary().c_str());
      return 1;
    }
    if (!blame_path.empty()) {
      diag::write_blame_file(blame, what_if, blame_path);
      std::printf("blame report written to %s\n", blame_path.c_str());
    }
    if (!blame_trace_path.empty()) {
      obs::ChromeTraceSink sink("wrht-blame");
      diag::export_critical_path(blame, sink);
      sink.write_file(blame_trace_path);
      std::printf("critical-path trace written to %s "
                  "(load in chrome://tracing)\n",
                  blame_trace_path.c_str());
    }
  }

  // Accounting identities (the acceptance criteria for the analysis
  // layer); drift here means an engine recorded overlapping or misplaced
  // occupancy intervals.
  const double breakdown_err =
      std::fabs(analysis.breakdown.total().count() - report.total_time.count());
  const double path_err = std::fabs(analysis.critical_path_length.count() -
                                    report.total_time.count());
  std::printf("\nchecks: |breakdown - total| = %.3g s, "
              "|critical path - total| = %.3g s\n",
              breakdown_err, path_err);
  if (breakdown_err > 1e-9 || path_err > 1e-9) {
    std::fprintf(stderr, "accounting identity violated\n");
    return 1;
  }
  return 0;
}
