// wrht_analyze: run one All-reduce configuration and print the resource
// bottleneck report — per-resource utilization, the idle-time breakdown
// (MRR reconfiguration / O/E/O / transmission / straggler wait / idle),
// the critical path through the step timeline, and the top idle resources.
//
//   $ ./wrht_analyze [nodes] [elements] [wavelengths] [algorithm] [backend]
//                    [--json PATH]
//
// Defaults reproduce a Fig. 5 configuration (N = 1024, w = 64, WRHT on the
// optical ring). The tool double-checks the accounting identities the
// analysis layer guarantees — breakdown sums to total_time and the
// critical path tiles the run — and fails loudly if either drifts, so the
// example smoke test doubles as an acceptance check. --json additionally
// dumps the machine-readable RunReport (steps, counters, utilization) to
// PATH for downstream tooling.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/analysis.hpp"
#include "wrht/obs/occupancy.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  // --json PATH may appear anywhere; everything else is positional.
  std::string json_path;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [nodes] [elements] [wavelengths] "
                             "[algorithm] [backend] [--json PATH]\n", argv[0]);
        return 2;
      }
      json_path = argv[++i];
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  const std::uint32_t nodes =
      !pos.empty() ? static_cast<std::uint32_t>(std::atoi(pos[0].c_str()))
                   : 1024;
  const std::size_t elements =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                     : 1'000'000;
  const std::uint32_t wavelengths =
      pos.size() > 2 ? static_cast<std::uint32_t>(std::atoi(pos[2].c_str()))
                     : 64;
  const std::string algorithm = pos.size() > 3 ? pos[3] : "wrht";
  const std::string backend_name = pos.size() > 4 ? pos[4] : "optical-ring";

  exp::ensure_initialized();  // WRHT algorithm + builtin backends

  coll::AllreduceParams params;
  params.num_nodes = nodes;
  params.elements = elements;
  params.wavelengths = wavelengths;
  if (algorithm == "wrht") {
    params.group_size = core::plan_wrht(nodes, wavelengths).group_size;
  }
  const coll::Schedule schedule =
      coll::Registry::instance().build(algorithm, params);

  net::BackendConfig config;
  config.num_nodes = nodes;
  config.wavelengths = wavelengths;
  // The paper's sweeps assume no per-node MRR constraint (§5.4).
  config.validate_node_capacity = false;
  const std::unique_ptr<net::Backend> backend =
      net::BackendRegistry::instance().create(backend_name, config);

  std::printf("analyzing %s on %s: N=%u, %zu elements, w=%u\n\n",
              algorithm.c_str(), backend_name.c_str(), nodes, elements,
              wavelengths);

  // Bring our own sampler so the full analysis (per-resource accounts,
  // critical path) is available, not just the RunReport summary fields.
  obs::OccupancySampler sampler;
  obs::Probe probe;
  probe.occupancy = &sampler;
  RunReport report = backend->execute(schedule, probe);

  const obs::UtilizationAnalysis analysis =
      obs::analyze_utilization(report, sampler);
  obs::print_bottleneck_report(std::cout, report, analysis, 5);

  if (!json_path.empty()) {
    report.write_json_file(json_path);
    std::printf("\nrun report written to %s\n", json_path.c_str());
  }

  // Accounting identities (the acceptance criteria for the analysis
  // layer); drift here means an engine recorded overlapping or misplaced
  // occupancy intervals.
  const double breakdown_err =
      std::fabs(analysis.breakdown.total().count() - report.total_time.count());
  const double path_err = std::fabs(analysis.critical_path_length.count() -
                                    report.total_time.count());
  std::printf("\nchecks: |breakdown - total| = %.3g s, "
              "|critical path - total| = %.3g s\n",
              breakdown_err, path_err);
  if (breakdown_err > 1e-9 || path_err > 1e-9) {
    std::fprintf(stderr, "accounting identity violated\n");
    return 1;
  }
  return 0;
}
