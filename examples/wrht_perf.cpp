// wrht_perf: the host-side performance harness. Runs a pinned micro-suite
// (the same hot paths bench_micro exercises: schedule construction, RWA,
// all four execution backends, the verification oracle, the event kernel
// and a small parallel sweep), aggregates repetitions into median/p90
// metrics, and writes the machine-readable BENCH_micro.json that the
// baseline tooling consumes.
//
//   $ wrht_perf [--scale] [--tiny] [--reps N] [--out PATH]
//               [--baseline PATH] [--write-baseline PATH] [--drift X]
//
// --scale swaps in the scale-suite (BENCH_scale.json): a 10^5-node WRHT
// schedule build, its element-rescale patch, large-step RWA, and a sweep
// whose grid volume (points x max N) must be at least 10x the micro-suite
// sweep's — the arena + incremental-cache work is what keeps it at
// micro-sweep wall-clock, and the harness exits 1 if the volume floor is
// not met (bench/baselines/scale{,-tiny}.baseline ratchet the wall times).
// --tiny shrinks every workload to CI-smoke scale (same metric names, so
// tiny runs compare against tiny baselines — bench/baselines/
// micro-tiny.baseline — and full runs against micro.baseline).
// --baseline compares the fresh measurement against a checked-in baseline
// with per-metric relative-drift thresholds and exits 1 on regression;
// --write-baseline snapshots the measurement as a new baseline with a
// uniform --drift threshold (default 3.0: a 4x slowdown regresses; see
// EXPERIMENTS.md for the refresh workflow).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/diag/blame.hpp"
#include "wrht/core/torus_wrht.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/optical/rwa.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/prof/baseline.hpp"
#include "wrht/prof/perf_report.hpp"
#include "wrht/prof/prof.hpp"
#include "wrht/sim/simulator.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"
#include "wrht/topo/ring.hpp"
#include "wrht/verify/oracle.hpp"

namespace {

using namespace wrht;

struct Options {
  bool tiny = false;
  bool scale = false;
  std::uint32_t reps = 0;   // 0 = default (5 full / 3 tiny)
  std::string out;          // empty = BENCH_{micro,scale}.json by mode
  std::string baseline;
  std::string write_baseline;
  double drift = 3.0;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scale] [--tiny] [--reps N] [--out PATH]\n"
      "          [--baseline PATH] [--write-baseline PATH] [--drift X]\n",
      argv0);
  return 2;
}

double time_once(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  return wall.count();
}

// Shared tail for both suites: RSS + phase capture, JSON emission, the
// human-readable metric table, and the baseline write/compare gates.
int finalize_report(const Options& opt, prof::ProfRegistry& registry,
                    prof::PerfReport& report, double suite_wall_s) {
  report.wall_time_s = suite_wall_s;
  report.peak_rss_bytes = prof::peak_rss_bytes();
  report.add_metric("peak_rss_mb",
                    static_cast<double>(report.peak_rss_bytes) / 1e6, "MB");
  report.capture(registry);

  report.write_json_file(opt.out);
  std::printf("wrht_perf: %s %s suite, %u reps, %u sweep threads, %.3f s wall\n",
              opt.tiny ? "tiny" : "full", report.name.c_str(), opt.reps,
              report.threads, report.wall_time_s);
  std::printf("perf report written to %s\n", opt.out.c_str());
  std::printf("\n%-34s %14s\n", "metric", "value");
  for (const prof::PerfMetric& m : report.metrics) {
    std::printf("  %-32s %12.6g %s\n", m.name.c_str(), m.value,
                m.unit.c_str());
  }

  if (!opt.write_baseline.empty()) {
    prof::Baseline::from_report(report, opt.drift).save(opt.write_baseline);
    std::printf("\nbaseline written to %s (drift %.2f)\n",
                opt.write_baseline.c_str(), opt.drift);
  }

  if (!opt.baseline.empty()) {
    const prof::Baseline baseline = prof::Baseline::load(opt.baseline);
    const prof::CompareReport compared = prof::compare(report, baseline);
    std::printf("\ncomparison vs %s:\n", opt.baseline.c_str());
    compared.print(std::cout);
    if (!compared.ok()) {
      std::fprintf(stderr, "wrht_perf: PERFORMANCE REGRESSION vs %s\n",
                   opt.baseline.c_str());
      return 1;
    }
    std::printf("wrht_perf: within baseline thresholds\n");
  }
  return 0;
}

// The scale suite: the N~10^5 regime the arena + incremental-cache work
// targets. Measures the big-build / patch / RWA hot paths directly, then
// runs a schedule-only sweep whose grid volume (points x max N) must be
// >= 10x the micro-suite sweep's pinned volume — the volume floor is a
// hard gate (exit 1), the wall-clock ratchet lives in
// bench/baselines/scale{,-tiny}.baseline.
int run_scale(const Options& opt) {
  // Pinned sizes, identical on every machine per mode.
  const std::uint32_t big_n = opt.tiny ? 20000 : 100000;
  const std::uint32_t big_w = 64;
  const std::uint32_t rwa_n = opt.tiny ? 1024 : 4096;
  // The micro-suite sweep's grid volume: 1 workload x 2 node counts x 3
  // series at max N 64 (full) / 16 (tiny) = 6 points -> 384 / 96.
  const std::size_t micro_sweep_volume = opt.tiny ? 96 : 384;

  const core::WrhtPlan big_plan = core::plan_wrht(big_n, big_w);
  const core::WrhtPlan rwa_plan = core::plan_wrht(rwa_n, big_w);
  const coll::Schedule rwa_sched = core::wrht_allreduce(
      rwa_n, 1, core::WrhtOptions{rwa_plan.group_size, big_w});
  const topo::Ring rwa_ring(rwa_n);

  prof::ProfRegistry registry;
  prof::PerfReport report;
  report.name = "scale";
  report.repetitions = opt.reps;
  report.threads = exp::SweepRunner().threads();

  const auto suite_start = std::chrono::steady_clock::now();
  std::size_t sweep_volume = 0;
  {
    const prof::ScopedProfiling profiling(registry);
    prof::set_thread_label("main");

    // Full schedule build at N~10^5 (the arena path; elements=1 because
    // full-vector structure is element-independent).
    {
      std::vector<double> samples;
      samples.reserve(opt.reps);
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.schedule_build_large");
        samples.push_back(time_once([&] {
          (void)core::wrht_allreduce(
              big_n, 1, core::WrhtOptions{big_plan.group_size, big_w});
        }));
      }
      report.add_sample_metrics("schedule_build_large.wall_s", samples, "s");
    }

    // Element-rescale patch of the big build: the incremental-cache hot
    // path (copy + rescale to ResNet-50's 25.5M parameters).
    {
      const coll::Schedule big = core::wrht_allreduce(
          big_n, 1, core::WrhtOptions{big_plan.group_size, big_w});
      std::vector<double> samples;
      samples.reserve(opt.reps);
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.rescale_patch_large");
        samples.push_back(time_once([&] {
          coll::Schedule patched = big;
          patched.rescale_elements(25557032);
        }));
      }
      report.add_sample_metrics("rescale_patch_large.wall_s", samples, "s");
    }

    // First-fit RWA over one step of a large WRHT schedule.
    {
      optics::RwaOptions rwa;
      rwa.wavelengths = big_w;
      std::vector<double> samples;
      samples.reserve(opt.reps);
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.rwa_assign_large");
        samples.push_back(time_once([&] {
          (void)optics::assign_wavelengths(
              rwa_ring, rwa_sched.steps().front().transfers, rwa);
        }));
      }
      report.add_sample_metrics("rwa_assign_large.wall_s", samples, "s");
    }

    // The headline sweep: elements x nodes x {wrht, btree} on the
    // schedule-only backend. Every point that differs from a cached
    // sibling only in elements is served by an incremental rescale patch,
    // so the grid carries 10x+ the micro sweep's volume at comparable
    // wall-clock.
    {
      exp::SweepSpec spec;
      const std::size_t workload_count = opt.tiny ? 4 : 8;
      for (std::size_t i = 0; i < workload_count; ++i) {
        const std::size_t elements = std::size_t{1024} << i;
        spec.workloads.push_back(
            exp::Workload{"s" + std::to_string(elements), elements});
      }
      spec.nodes = opt.tiny ? std::vector<std::uint32_t>{40, 80, 160}
                            : std::vector<std::uint32_t>{160, 320, 640};
      spec.wavelengths = {8};
      spec.series.resize(2);
      spec.series[0].name = "wrht";
      spec.series[0].algorithm = "wrht";
      spec.series[0].backend = "schedule-only";
      spec.series[1].name = "btree";
      spec.series[1].algorithm = "btree";
      spec.series[1].backend = "schedule-only";
      spec.config.validate_node_capacity = false;
      spec.schedule_cache = exp::ScheduleCacheMode::kIncremental;

      const exp::SweepRunner runner;
      std::vector<double> walls, rates;
      std::size_t points = 0;
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.scale_sweep");
        const double wall = time_once([&] {
          points = runner.run(spec).size();
        });
        walls.push_back(wall);
        rates.push_back(static_cast<double>(points) /
                        (wall > 0.0 ? wall : 1e-12));
      }
      sweep_volume = points * spec.nodes.back();
      report.add_sample_metrics("scale_sweep.wall_s", walls, "s");
      report.add_sample_metrics("scale_sweep.grid_points_per_s", rates, "/s");
      report.add_metric("scale_sweep.points_x_max_n",
                        static_cast<double>(sweep_volume), "ptsN");
    }
  }
  const std::chrono::duration<double> suite_wall =
      std::chrono::steady_clock::now() - suite_start;

  if (sweep_volume < 10 * micro_sweep_volume) {
    std::fprintf(stderr,
                 "wrht_perf: scale sweep volume %zu is below the 10x floor "
                 "(%zu)\n",
                 sweep_volume, 10 * micro_sweep_volume);
    return 1;
  }

  return finalize_report(opt, registry, report, suite_wall.count());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--tiny") {
      opt.tiny = true;
    } else if (arg == "--scale") {
      opt.scale = true;
    } else if (arg == "--reps") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return usage(argv[0]);
      opt.reps = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.out = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.baseline = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.write_baseline = v;
    } else if (arg == "--drift") {
      const char* v = value();
      if (v == nullptr || std::atof(v) <= 0.0) return usage(argv[0]);
      opt.drift = std::atof(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.reps == 0) opt.reps = opt.tiny ? 3 : 5;
  if (opt.out.empty()) {
    opt.out = opt.scale ? "BENCH_scale.json" : "BENCH_micro.json";
  }

  exp::ensure_initialized();

  if (opt.scale) return run_scale(opt);

  // Pinned workload sizes: identical on every machine so a BENCH_micro.json
  // is comparable across runs of the same mode.
  const std::uint32_t sched_n = opt.tiny ? 64 : 1024;
  const std::uint32_t sched_w = opt.tiny ? 8 : 64;
  const std::uint32_t optical_n = opt.tiny ? 16 : 256;
  const std::uint32_t flow_n = opt.tiny ? 16 : 128;
  const std::uint32_t packet_n = opt.tiny ? 8 : 32;
  const std::uint32_t oracle_n = opt.tiny ? 8 : 32;
  const std::size_t oracle_elems = opt.tiny ? 64 : 256;
  const int kernel_events = opt.tiny ? 4096 : 65536;

  // Shared inputs, built once outside the timed regions.
  const core::WrhtPlan plan = core::plan_wrht(sched_n, sched_w);
  const coll::Schedule wrht_sched = core::wrht_allreduce(
      sched_n, 64, core::WrhtOptions{plan.group_size, sched_w});
  const topo::Ring sched_ring(sched_n);
  const coll::Schedule optical_sched =
      coll::ring_allreduce(optical_n, 4 * optical_n);
  // The torus engine rejects transfers that cross both dimensions, so it
  // gets the paper's dimension-aware torus WRHT schedule (§6.1), not the
  // plain ring.
  const std::uint32_t torus_side = opt.tiny ? 4 : 16;
  const coll::Schedule torus_sched = core::torus_wrht_allreduce(
      topo::Torus(torus_side, torus_side), 4 * optical_n,
      core::WrhtOptions{core::plan_wrht(torus_side, 16).group_size, 16});
  const coll::Schedule flow_sched = coll::ring_allreduce(flow_n, 4 * flow_n);
  const coll::Schedule packet_sched =
      coll::ring_allreduce(packet_n, 4 * packet_n);
  const coll::Schedule oracle_sched =
      coll::ring_allreduce(oracle_n, oracle_elems);

  // Transfer-level timeline for the blame_build micro, captured once
  // outside the timed region (the metric prices the DAG analysis, not the
  // engine run that feeds it).
  obs::TransferLog blame_log;
  {
    net::BackendConfig config;
    config.num_nodes = optical_n;
    config.wavelengths = 16;
    obs::Probe probe;
    probe.transfers = &blame_log;
    (void)net::BackendRegistry::instance()
        .create("optical-ring", config)
        ->execute(optical_sched, probe);
  }

  const auto backend_run = [](const std::string& name, std::uint32_t nodes,
                              std::uint32_t wavelengths,
                              const coll::Schedule& schedule) {
    net::BackendConfig config;
    config.num_nodes = nodes;
    config.wavelengths = wavelengths;
    const std::unique_ptr<net::Backend> backend =
        net::BackendRegistry::instance().create(name, config);
    const RunReport report = backend->execute(schedule, obs::Probe{});
    if (report.total_time.count() <= 0.0) {
      throw Error("wrht_perf: " + name + " priced zero time");
    }
  };

  // The micro-suite: name -> one repetition. Names are the metric schema;
  // changing them invalidates checked-in baselines (schema drift fails the
  // comparison by design).
  struct Micro {
    std::string name;
    std::function<void()> run;
  };
  const std::vector<Micro> suite = {
      {"schedule_build",
       [&] {
         (void)core::wrht_allreduce(sched_n, 64,
                                    core::WrhtOptions{plan.group_size,
                                                      sched_w});
       }},
      {"rwa_assign",
       [&] {
         optics::RwaOptions rwa;
         rwa.wavelengths = sched_w;
         (void)optics::assign_wavelengths(
             sched_ring, wrht_sched.steps().front().transfers, rwa);
       }},
      {"optical_ring_execute",
       [&] { backend_run("optical-ring", optical_n, 16, optical_sched); }},
      {"optical_torus_execute",
       [&] {
         backend_run("optical-torus", torus_side * torus_side, 16,
                     torus_sched);
       }},
      {"electrical_flow_execute",
       [&] { backend_run("electrical-flow", flow_n, 16, flow_sched); }},
      {"electrical_packet_execute",
       [&] { backend_run("electrical-packet", packet_n, 16, packet_sched); }},
      {"planner_plan",
       [&] {
         plan::PlannerOptions planner;
         planner.wavelengths = 16;
         planner.policy = net::ReconfigPolicy::kOverlapped;
         const plan::PlanResult planned =
             plan::plan_allreduce(optical_n, 4 * optical_n, planner);
         if (!planned.chosen.feasible) {
           throw Error("wrht_perf: planner found no feasible candidate");
         }
       }},
      {"verify_oracle",
       [&] {
         const verify::OracleReport report =
             verify::check_allreduce(oracle_sched, verify::OracleOptions{});
         if (!report.ok()) throw Error("wrht_perf: oracle failed");
       }},
      {"blame_build",
       [&] {
         const diag::BlameReport blame = diag::build_blame(blame_log);
         if (blame.attributed() <= 0.0) {
           throw Error("wrht_perf: blame_build attributed zero time");
         }
       }},
  };

  prof::ProfRegistry registry;
  prof::PerfReport report;
  report.name = "micro";
  report.repetitions = opt.reps;
  report.threads = exp::SweepRunner().threads();

  const auto suite_start = std::chrono::steady_clock::now();
  {
    const prof::ScopedProfiling profiling(registry);
    prof::set_thread_label("main");

    for (const Micro& micro : suite) {
      std::vector<double> samples;
      samples.reserve(opt.reps);
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite." + micro.name);
        samples.push_back(time_once(micro.run));
      }
      report.add_sample_metrics(micro.name + ".wall_s", samples, "s");
    }

    // Event kernel: wall time plus simulated-event throughput.
    {
      std::vector<double> walls, rates;
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.event_kernel");
        sim::Simulator simulator;
        const double wall = time_once([&] {
          for (int i = 0; i < kernel_events; ++i) {
            simulator.schedule_in(Seconds(static_cast<double>((i * 31) % 1000)),
                                  [] {});
          }
          simulator.run();
        });
        walls.push_back(wall);
        rates.push_back(static_cast<double>(simulator.events_fired()) /
                        (wall > 0.0 ? wall : 1e-12));
      }
      report.add_sample_metrics("event_kernel.wall_s", walls, "s");
      report.add_sample_metrics("event_kernel.events_per_s", rates, "/s");
    }

    // Service tick: one FabricService run end to end — workload arrival,
    // admission, lease allocation, closed-form pricing, completion — on a
    // long-lived simulator. Job throughput is the operator-facing rate.
    {
      svc::WorkloadConfig workload;
      workload.num_jobs = opt.tiny ? 24 : 96;
      workload.num_nodes = opt.tiny ? 16 : 64;
      workload.fabric_wavelengths = opt.tiny ? 16 : 64;
      workload.mean_interarrival = Seconds(0.01);
      workload.burstiness = 0.3;
      const std::vector<svc::Job> jobs = svc::generate_workload(workload);
      svc::ServiceConfig svc_config;
      svc_config.fabric_wavelengths = workload.fabric_wavelengths;
      svc_config.policy = svc::PolicyKind::kWeightedFair;
      svc::FabricService service(svc_config);

      std::vector<double> walls, rates;
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.svc_tick");
        std::size_t completed = 0;
        const double wall = time_once([&] {
          completed = service.run(jobs).records.size();
        });
        if (completed != jobs.size()) {
          throw Error("wrht_perf: svc_tick dropped jobs");
        }
        walls.push_back(wall);
        rates.push_back(static_cast<double>(completed) /
                        (wall > 0.0 ? wall : 1e-12));
      }
      report.add_sample_metrics("svc_tick.wall_s", walls, "s");
      report.add_sample_metrics("svc_tick.jobs_per_s", rates, "/s");
    }

    // Service tick with full telemetry (metrics + events + trace) on the
    // bench_svc_policies bursty-saturated load — the per-rep
    // enabled/disabled ratio, interleaved so frequency drift hits both
    // sides. The baselines pin the ratio so telemetry overhead cannot
    // silently creep past its budget (<5% is the target on this workload
    // at full scale).
    {
      svc::WorkloadConfig workload;
      workload.num_jobs = opt.tiny ? 32 : 128;
      workload.num_nodes = opt.tiny ? 16 : 64;
      workload.fabric_wavelengths = opt.tiny ? 16 : 64;
      workload.mean_interarrival = Seconds(opt.tiny ? 0.01 : 0.008);
      workload.burstiness = 0.5;
      const std::vector<svc::Job> jobs = svc::generate_workload(workload);
      svc::ServiceConfig svc_config;
      svc_config.fabric_wavelengths = workload.fabric_wavelengths;
      svc_config.policy = svc::PolicyKind::kWeightedFair;
      svc::FabricService off(svc_config);
      svc_config.telemetry.metrics = true;
      svc_config.telemetry.events = true;
      svc_config.telemetry.trace = true;
      svc::FabricService on(svc_config);

      std::vector<double> walls, ratios;
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        const prof::ScopedTimer timer("suite.svc_telemetry_tick");
        // Min-of-K per rep: a single 2-3 ms run is dominated by scheduler
        // and frequency noise, and a ratio of two noisy one-shots swings
        // by several percent. The min over interleaved pairs estimates
        // the undisturbed cost of each side.
        double wall_off = 1e9, wall_on = 1e9;
        for (int k = 0; k < 5; ++k) {
          std::size_t completed = 0;
          wall_off = std::min(wall_off, time_once([&] {
            completed = off.run(jobs).records.size();
          }));
          wall_on = std::min(wall_on, time_once([&] {
            completed += on.run(jobs).records.size();
          }));
          if (completed != 2 * jobs.size()) {
            throw Error("wrht_perf: svc_telemetry_tick dropped jobs");
          }
        }
        walls.push_back(wall_on);
        ratios.push_back(wall_on / (wall_off > 0.0 ? wall_off : 1e-12));
      }
      report.add_sample_metrics("svc_telemetry_tick.wall_s", walls, "s");
      report.add_sample_metrics("svc_telemetry_tick.overhead_ratio", ratios,
                                "x");
    }

    // Parallel sweep: grid-point throughput and worker-pool efficiency.
    {
      exp::SweepSpec spec;
      spec.workloads = {exp::Workload{"micro", opt.tiny ? 1024u : 8192u}};
      spec.nodes = opt.tiny ? std::vector<std::uint32_t>{8, 16}
                            : std::vector<std::uint32_t>{32, 64};
      spec.wavelengths = {8};
      spec.series.resize(3);
      spec.series[0].name = "wrht";
      spec.series[0].algorithm = "wrht";
      spec.series[1].name = "ring";
      spec.series[1].algorithm = "ring";
      spec.series[2].name = "flow";
      spec.series[2].algorithm = "ring";
      spec.series[2].backend = "electrical-flow";
      spec.config.validate_node_capacity = false;

      const exp::SweepRunner runner;
      std::vector<double> walls, rates;
      for (std::uint32_t r = 0; r < opt.reps; ++r) {
        std::size_t points = 0;
        const double wall = time_once([&] {
          points = runner.run(spec).size();
        });
        walls.push_back(wall);
        rates.push_back(static_cast<double>(points) /
                        (wall > 0.0 ? wall : 1e-12));
      }
      report.add_sample_metrics("sweep.wall_s", walls, "s");
      report.add_sample_metrics("sweep.grid_points_per_s", rates, "/s");
    }
  }
  const std::chrono::duration<double> suite_wall =
      std::chrono::steady_clock::now() - suite_start;

  return finalize_report(opt, registry, report, suite_wall.count());
}
