// Quickstart: plan, build, verify and simulate one WRHT All-reduce.
//
//   $ ./quickstart [nodes] [wavelengths]
//
// Walks through the full public API: the planner picks the group size m,
// the builder emits the schedule, the data-level executor proves it is an
// All-reduce, and the optical ring simulator prices it against the Ring
// and Binary-Tree baselines.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/ring_network.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::uint32_t wavelengths =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
  const std::size_t elements = 1'000'000;  // 4 MB of float32 gradients

  std::printf("WRHT quickstart: %u nodes, %u wavelengths, %zu gradients\n\n",
              nodes, wavelengths, elements);

  // 1. Plan: choose the group size m that minimises communication steps.
  const core::WrhtPlan plan = core::plan_wrht(nodes, wavelengths);
  std::printf("planner: m = %u -> %u steps (%u reduce + %u broadcast%s)\n",
              plan.group_size, plan.steps.total_steps, plan.steps.reduce_steps,
              plan.steps.broadcast_steps,
              plan.steps.final_all_to_all ? ", all-to-all ending" : "");
  std::printf("         wavelengths required: %llu, Lemma-1 step bound: %llu\n",
              static_cast<unsigned long long>(plan.steps.wavelengths_required),
              static_cast<unsigned long long>(
                  core::wrht_min_steps(nodes, wavelengths)));

  // 2. Build the schedule and narrate it.
  const coll::Schedule sched = core::wrht_allreduce(
      nodes, elements, core::WrhtOptions{plan.group_size, wavelengths});
  std::printf("\nschedule '%s': %zu steps\n", sched.algorithm().c_str(),
              sched.num_steps());
  for (std::size_t i = 0; i < sched.num_steps(); ++i) {
    std::printf("  step %zu: %-22s %4zu transfers\n", i,
                sched.steps()[i].label.c_str(),
                sched.steps()[i].transfers.size());
  }

  // 3. Verify All-reduce semantics on real data.
  Rng rng;
  const coll::Schedule small = core::wrht_allreduce(
      nodes, 256, core::WrhtOptions{plan.group_size, wavelengths});
  const double err = coll::Executor::verify_allreduce(small, rng);
  std::printf("\nexecutor: every node holds the exact global sum "
              "(max error %.2e)\n", err);

  // 4. Price it on the optical ring against the baselines. Every backend
  // result converts to the same RunReport shape, so the comparison table
  // is one loop.
  const optics::RingNetwork net(
      nodes, optics::OpticalConfig{}.with_wavelengths(wavelengths));

  const RunReport wrht = net.execute(sched).to_report();
  const RunReport ring =
      net.execute(coll::ring_allreduce(nodes, elements)).to_report();
  const RunReport bt =
      net.execute(coll::btree_allreduce(nodes, elements)).to_report();

  Table table({"Algorithm", "Steps", "Lambdas used", "Time"});
  const std::pair<const char*, const RunReport*> rows[] = {
      {"WRHT", &wrht}, {"Ring", &ring}, {"Binary tree", &bt}};
  for (const auto& [name, report] : rows) {
    table.add_row({name, std::to_string(report->steps),
                   std::to_string(report->max_wavelengths_used()),
                   to_string(report->total_time)});
  }
  std::printf("\n");
  std::cout << table;

  std::printf("\nWRHT is %.1fx faster than Ring and %.1fx faster than BT "
              "here.\n",
              ring.total_time / wrht.total_time,
              bt.total_time / wrht.total_time);
  return 0;
}
