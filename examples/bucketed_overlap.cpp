// Gradient bucketing with compute/communication overlap (DDP-style
// extension): splits each model's gradients into buckets, prices every
// bucket's WRHT All-reduce on the optical ring, and pipelines them against
// the backward pass — showing how much of WRHT's already-small
// communication time disappears behind compute.
//
//   $ ./bucketed_overlap [nodes] [bucket_MB]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/dnn/bucketing.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/optical/ring_network.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;
  const std::uint64_t bucket_mb =
      argc > 2 ? static_cast<std::uint64_t>(std::atoi(argv[2])) : 25;
  const std::uint64_t bucket_params = bucket_mb * 1'000'000 / 4;
  constexpr std::uint32_t kWavelengths = 64;

  std::printf(
      "Bucketed WRHT All-reduce with backward overlap: %u workers, "
      "%llu MB buckets\n\n", nodes,
      static_cast<unsigned long long>(bucket_mb));

  dnn::TrainingConfig cfg;
  cfg.num_workers = nodes;

  const optics::RingNetwork net(
      nodes, optics::OpticalConfig{}.with_wavelengths(kWavelengths));
  const std::uint32_t m = core::plan_wrht(nodes, kWavelengths).group_size;

  Table table({"Model", "buckets", "flat comm", "overlapped (exposed)",
               "hidden", "iter (flat)", "iter (overlap)"});

  for (const auto& model : dnn::paper_workloads()) {
    const dnn::BucketPlan plan = dnn::bucketize(model, bucket_params);

    std::vector<Seconds> bucket_times;
    Seconds flat_total(0.0);
    for (const std::uint64_t params : plan.bucket_params) {
      const auto sched = core::wrht_allreduce(
          nodes, params, core::WrhtOptions{m, kWavelengths});
      const Seconds t = net.execute(sched).total_time;
      bucket_times.push_back(t);
      flat_total += t;
    }

    const auto overlap =
        dnn::overlapped_iteration(model, cfg, plan, bucket_times);
    const auto flat_iter = dnn::iteration_breakdown(
        model, cfg,
        net.execute(core::wrht_allreduce(nodes, model.parameter_count(),
                                         core::WrhtOptions{m, kWavelengths}))
            .total_time);

    char hidden[16];
    std::snprintf(hidden, sizeof hidden, "%.0f%%",
                  overlap.overlap_efficiency() * 100.0);
    table.add_row({model.name(), std::to_string(plan.buckets()),
                   to_string(overlap.total_comm),
                   to_string(overlap.exposed_comm), hidden,
                   to_string(flat_iter.total()),
                   to_string(overlap.iteration)});
  }
  std::cout << table;

  std::printf(
      "\nBucketing pays extra per-step reconfigurations (more All-reduces\n"
      "of smaller payloads) but hides most of the remaining communication\n"
      "behind the backward pass — WRHT's low step count keeps the bucket\n"
      "pipeline efficient even at small bucket sizes.\n");
  return 0;
}
