// Schedule inspector: side-by-side anatomy of every registered All-reduce
// algorithm — steps, traffic, load balance, wavelength demand and the
// optical/electrical prices — for one configuration.
//
//   $ ./schedule_inspector [nodes] [elements] [wavelengths]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "wrht/collectives/registry.hpp"
#include "wrht/collectives/schedule_stats.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/optical/ring_network.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  const std::uint32_t nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1'000'000;
  const std::uint32_t wavelengths =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 64;

  core::register_wrht_algorithm();
  auto& registry = coll::Registry::instance();

  const optics::RingNetwork optical(
      nodes, optics::OpticalConfig{}.with_wavelengths(wavelengths));
  const elec::FatTreeNetwork electrical(nodes, elec::ElectricalConfig{});

  std::printf(
      "All-reduce anatomy: %u nodes, %zu float32 elements, %u wavelengths\n\n",
      nodes, elements, wavelengths);

  Table table({"Algorithm", "Steps", "Transfers", "Traffic (xd)",
               "TX imbal", "Max step fan", "Lambdas", "Optical", "Electrical"});

  for (const std::string& name : registry.names()) {
    coll::AllreduceParams p;
    p.num_nodes = nodes;
    p.elements = elements;
    p.wavelengths = wavelengths;
    p.group_size = name == "hring" ? 5u : 0u;
    const coll::Schedule sched = registry.build(name, p);
    const coll::ScheduleStats stats = coll::analyze(sched);
    const auto opt = optical.execute(sched);
    const auto ele = electrical.execute(sched);

    table.add_row(
        {name, std::to_string(stats.steps), std::to_string(stats.transfers),
         Table::num(static_cast<double>(stats.total_traffic_elements) /
                        (static_cast<double>(elements) * nodes),
                    2),
         Table::num(stats.tx_imbalance(), 2),
         std::to_string(stats.max_step_transfers),
         std::to_string(opt.max_wavelengths_used),
         to_string(opt.total_time), to_string(ele.total_time)});
  }
  std::cout << table;

  std::printf(
      "\n\"Traffic (xd)\" is total elements moved divided by N*d: 2(N-1)/N\n"
      "for the bandwidth-optimal ring algorithms, ~log2(N) for BT/RD, and\n"
      "~theta for WRHT (it trades traffic for steps — the winning trade\n"
      "when reconfigurations dominate).\n");
  return 0;
}
