// Ablation: reconfiguration-communication overlap and the schedule
// planner's frontier. For each (wavelength budget, payload) point the
// three planner candidates — WRHT, the flat all-to-all and the
// reconfig-free ring — run through the optical ring simulator under
// ReconfigPolicy::kOverlapped (WRHT additionally under serial kEveryRound
// as the ablation baseline), and wrht::plan picks a winner from its
// closed-form models. The CSV records the whole frontier plus whether the
// planner's choice simulates within tolerance of the true fastest; the
// bench exits non-zero if any point misses, so the smoke run enforces the
// planner's winner-match property end to end. The planner candidates are
// not all registered sweep algorithms, so this bench drives the engine
// directly instead of going through bench::run_sweep().
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/plan/schedule_planner.hpp"

namespace {

using namespace wrht;

/// A chosen candidate must simulate within this factor of the true
/// fastest (mirrors the tolerance pinned in test_plan.cpp).
constexpr double kWinnerTolerance = 0.05;

optics::OpticalConfig sim_config(std::uint32_t wavelengths,
                                 net::ReconfigPolicy policy) {
  optics::OpticalConfig cfg;
  cfg.wavelengths = wavelengths;
  cfg.reconfig_policy = policy;
  cfg.validate_node_capacity = false;  // the paper's sweep assumption
  return cfg;
}

struct SimResult {
  bool feasible = false;
  double time = std::numeric_limits<double>::infinity();
  double hidden = 0.0;
};

SimResult simulate(plan::CandidateKind kind, std::uint32_t n,
                   std::size_t elements, std::uint32_t wavelengths,
                   net::ReconfigPolicy policy,
                   const plan::PlannerOptions& options) {
  SimResult out;
  if (!plan::predict(kind, n, elements, options).feasible) return out;
  const coll::Schedule sched =
      plan::build_candidate(kind, n, elements, options);
  const optics::RingNetwork net(n, sim_config(wavelengths, policy));
  const auto run = net.execute(sched);
  out.feasible = true;
  out.time = run.total_time.count();
  out.hidden = run.overlap_hidden.count();
  return out;
}

std::string cell(const SimResult& r, double scale, int precision) {
  return r.feasible ? Table::num(r.time * scale, precision)
                    : std::string("inf");
}

}  // namespace

int main() {
  using namespace wrht;

  std::uint32_t n;
  std::vector<std::size_t> payloads;
  if (bench::tiny()) {
    n = 16;
    payloads = {64, 4096};
  } else {
    n = 64;
    payloads = {std::size_t{1} << 6,  std::size_t{1} << 10,
                std::size_t{1} << 14, std::size_t{1} << 18,
                std::size_t{1} << 22, std::size_t{1} << 25};
  }
  const std::uint32_t wavelength_budgets[] = {4, 64};

  std::printf(
      "=== Ablation: reconfiguration overlap + schedule planner frontier "
      "===\n(N = %u, kOverlapped pricing; serial WRHT = kEveryRound "
      "baseline)\n\n",
      n);

  Table table({"w", "elements", "WRHT serial (us)", "WRHT overlap (us)",
               "flat a2a (us)", "static ring (us)", "sim best", "planner",
               "ok"});
  CsvWriter csv(bench::csv_path("ablation_overlap"),
                {"wavelengths", "elements", "wrht_serial_s",
                 "wrht_overlap_s", "wrht_hidden_s", "flat_overlap_s",
                 "ring_overlap_s", "sim_best", "planner_choice",
                 "planner_predicted_s", "planner_ok"});

  int misses = 0;
  for (const std::uint32_t w : wavelength_budgets) {
    for (const std::size_t elements : payloads) {
      plan::PlannerOptions options;
      options.wavelengths = w;
      options.policy = net::ReconfigPolicy::kOverlapped;

      const SimResult wrht_serial =
          simulate(plan::CandidateKind::kWrht, n, elements, w,
                   net::ReconfigPolicy::kEveryRound, options);
      const SimResult wrht_overlap =
          simulate(plan::CandidateKind::kWrht, n, elements, w,
                   net::ReconfigPolicy::kOverlapped, options);
      const SimResult flat =
          simulate(plan::CandidateKind::kFlatAllToAll, n, elements, w,
                   net::ReconfigPolicy::kOverlapped, options);
      const SimResult ring =
          simulate(plan::CandidateKind::kStaticRing, n, elements, w,
                   net::ReconfigPolicy::kOverlapped, options);

      const std::pair<plan::CandidateKind, const SimResult*> entries[] = {
          {plan::CandidateKind::kWrht, &wrht_overlap},
          {plan::CandidateKind::kFlatAllToAll, &flat},
          {plan::CandidateKind::kStaticRing, &ring}};
      double fastest = std::numeric_limits<double>::infinity();
      plan::CandidateKind sim_best = plan::CandidateKind::kWrht;
      for (const auto& [kind, result] : entries) {
        if (result->feasible && result->time < fastest) {
          fastest = result->time;
          sim_best = kind;
        }
      }

      const plan::PlanResult planned =
          plan::plan_allreduce(n, elements, options);
      double chosen_sim = std::numeric_limits<double>::infinity();
      for (const auto& [kind, result] : entries) {
        if (kind == planned.chosen.kind) chosen_sim = result->time;
      }
      const bool ok = chosen_sim <= fastest * (1.0 + kWinnerTolerance);
      if (!ok) ++misses;

      table.add_row({std::to_string(w), std::to_string(elements),
                     cell(wrht_serial, 1e6, 1), cell(wrht_overlap, 1e6, 1),
                     cell(flat, 1e6, 1), cell(ring, 1e6, 1),
                     plan::to_string(sim_best),
                     plan::to_string(planned.chosen.kind),
                     ok ? "yes" : "NO"});
      csv.add_row({std::to_string(w), std::to_string(elements),
                   cell(wrht_serial, 1.0, 9), cell(wrht_overlap, 1.0, 9),
                   Table::num(wrht_overlap.hidden, 9), cell(flat, 1.0, 9),
                   cell(ring, 1.0, 9), plan::to_string(sim_best),
                   plan::to_string(planned.chosen.kind),
                   Table::num(planned.chosen.predicted_time.count(), 9),
                   ok ? "1" : "0"});
    }
  }
  std::cout << table << "\n";

  std::printf(
      "Overlap hides the 25 us retune behind the previous round's\n"
      "transmission: WRHT keeps its small-message win and stretches it\n"
      "upward, while bandwidth-bound payloads flip to the flat all-to-all\n"
      "(rich wavelengths) or the reconfig-free ring (scarce wavelengths).\n"
      "The planner's closed-form models pick the simulated-fastest\n"
      "candidate at every swept point.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_overlap").c_str());
  if (misses > 0) {
    std::printf("PLANNER MISMATCH at %d point(s): chosen candidate "
                "simulated >%.0f%% slower than the best\n",
                misses, kWinnerTolerance * 100.0);
    return 1;
  }
  return 0;
}
