// Ablation: MRR reconfiguration accounting. The paper's Eq. (6) charges
// the 25 us reconfiguration delay on every step; a control plane that
// keeps static circuits up would only pay when micro-rings actually
// retune. Ring All-reduce re-uses the identical neighbour circuits every
// step, so retune-aware accounting collapses its overhead — while WRHT
// retunes on almost every step by construction. This bench quantifies how
// the algorithm ranking responds (an explicit robustness check on the
// paper's core assumption that steps dominate cost).
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace {

using namespace wrht;

struct Priced {
  double every_round;
  double on_retune;
  std::uint64_t reconfigs_on_retune;
};

Priced price(const coll::Schedule& sched, std::uint32_t n,
             std::uint32_t wavelengths) {
  const auto cfg = optics::OpticalConfig{}.with_wavelengths(wavelengths);
  const optics::RingNetwork every(n, cfg);
  const optics::RingNetwork retune(
      n, optics::OpticalConfig{cfg}.with_reconfig_accounting(
             optics::OpticalConfig::ReconfigAccounting::kOnRetune));
  const obs::Probe probe{nullptr, &bench::metrics()};
  const auto a = every.execute(sched, probe);
  const auto b = retune.execute(sched, probe);
  return Priced{a.total_time.count(), b.total_time.count(),
                b.reconfigurations};
}

}  // namespace

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 1024;
  constexpr std::uint32_t kWavelengths = 64;

  std::printf(
      "=== Ablation: reconfiguration accounting (every-step vs on-retune) "
      "===\n(N = %u, w = %u, ResNet50 and AlexNet payloads)\n\n",
      kNodes, kWavelengths);

  Table table({"Workload", "Algorithm", "Eq.6 time (ms)", "retune-aware (ms)",
               "paid reconfigs", "speedup"});
  CsvWriter csv(bench::csv_path("ablation_reconfig"),
                {"workload", "algorithm", "every_round_s", "on_retune_s",
                 "reconfigs"});

  const std::uint32_t m = core::plan_wrht(kNodes, kWavelengths).group_size;
  const auto models = dnn::paper_workloads();
  for (const auto& model : {models[3], models[2]}) {  // ResNet50, AlexNet
    const std::size_t elements = model.parameter_count();
    struct Entry {
      const char* name;
      coll::Schedule sched;
    };
    const Entry entries[] = {
        {"Ring", coll::ring_allreduce(kNodes, elements)},
        {"BT", coll::btree_allreduce(kNodes, elements)},
        {"WRHT", core::wrht_allreduce(kNodes, elements,
                                      core::WrhtOptions{m, kWavelengths})}};
    for (const auto& e : entries) {
      const Priced p = price(e.sched, kNodes, kWavelengths);
      table.add_row({model.name(), e.name, Table::num(p.every_round * 1e3, 2),
                     Table::num(p.on_retune * 1e3, 2),
                     std::to_string(p.reconfigs_on_retune),
                     Table::num(p.every_round / p.on_retune, 2) + "x"});
      csv.add_row({model.name(), e.name, Table::num(p.every_round, 6),
                   Table::num(p.on_retune, 6),
                   std::to_string(p.reconfigs_on_retune)});
    }
  }
  std::cout << table << "\n";

  std::printf(
      "Ring pays the reconfiguration once (identical circuits every step),\n"
      "so retune-aware control removes ~2(N-1) reconfigurations and closes\n"
      "much of WRHT's latency advantage for small payloads — evidence that\n"
      "WRHT's win rests on the per-step reconfiguration cost the paper\n"
      "models, and a pointer to static-circuit control planes as future\n"
      "work.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_reconfig").c_str());
  bench::write_metrics_csv("ablation_reconfig");
  return 0;
}
