// Ablation: MRR reconfiguration accounting. The paper's Eq. (6) charges
// the 25 us reconfiguration delay on every step; a control plane that
// keeps static circuits up would only pay when micro-rings actually
// retune. Ring All-reduce re-uses the identical neighbour circuits every
// step, so retune-aware accounting collapses its overhead — while WRHT
// retunes on almost every step by construction. This bench quantifies how
// the algorithm ranking responds (an explicit robustness check on the
// paper's core assumption that steps dominate cost). The two accounting
// modes are per-series backend-config overrides; the paid-reconfiguration
// count comes from each run's optical.reconfig_charges counter.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace wrht;

exp::Series priced_series(const std::string& algorithm, bool on_retune) {
  exp::Series s;
  s.name = algorithm + (on_retune ? "_retune" : "_every");
  s.algorithm = algorithm;
  if (on_retune) {
    s.configure = [](const exp::SweepPoint&, net::BackendConfig& config) {
      config.reconfig_policy = net::ReconfigPolicy::kOnRetune;
    };
  }
  return s;
}

}  // namespace

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;

  exp::SweepSpec spec;
  if (bench::tiny()) {
    spec.workloads = {exp::Workload{"tiny", 4096}};
    spec.nodes = {16};
  } else {
    const auto models = dnn::paper_workloads();
    // ResNet50 and AlexNet, in the paper's discussion order.
    spec.workloads = {
        exp::Workload{models[3].name(), models[3].parameter_count()},
        exp::Workload{models[2].name(), models[2].parameter_count()}};
    spec.nodes = {1024};
  }
  spec.wavelengths = {kWavelengths};
  const std::pair<const char*, const char*> algorithms[] = {
      {"Ring", "ring"}, {"BT", "btree"}, {"WRHT", "wrht"}};
  for (const auto& [label, algorithm] : algorithms) {
    spec.series.push_back(priced_series(algorithm, false));
    spec.series.push_back(priced_series(algorithm, true));
  }
  const std::uint32_t nodes = spec.nodes.front();

  std::printf(
      "=== Ablation: reconfiguration accounting (every-step vs on-retune) "
      "===\n(N = %u, w = %u, ResNet50 and AlexNet payloads)\n\n",
      nodes, kWavelengths);

  const auto rows = bench::run_sweep(spec);

  Table table({"Workload", "Algorithm", "Eq.6 time (ms)", "retune-aware (ms)",
               "paid reconfigs", "speedup"});
  CsvWriter csv(bench::csv_path("ablation_reconfig"),
                {"workload", "algorithm", "every_round_s", "on_retune_s",
                 "reconfigs"});

  for (const exp::Workload& workload : spec.workloads) {
    for (const auto& [label, algorithm] : algorithms) {
      const RunReport& every =
          bench::find_row(rows, workload.name, nodes, kWavelengths,
                          std::string(algorithm) + "_every")
              .report;
      const RunReport& retune =
          bench::find_row(rows, workload.name, nodes, kWavelengths,
                          std::string(algorithm) + "_retune")
              .report;
      const double every_s = every.total_time.count();
      const double retune_s = retune.total_time.count();
      const std::uint64_t reconfigs =
          retune.counters.at("optical.reconfig_charges");
      table.add_row({workload.name, label, Table::num(every_s * 1e3, 2),
                     Table::num(retune_s * 1e3, 2), std::to_string(reconfigs),
                     Table::num(every_s / retune_s, 2) + "x"});
      csv.add_row({workload.name, label, Table::num(every_s, 6),
                   Table::num(retune_s, 6), std::to_string(reconfigs)});
    }
  }
  std::cout << table << "\n";

  std::printf(
      "Ring pays the reconfiguration once (identical circuits every step),\n"
      "so retune-aware control removes ~2(N-1) reconfigurations and closes\n"
      "much of WRHT's latency advantage for small payloads — evidence that\n"
      "WRHT's win rests on the per-step reconfiguration cost the paper\n"
      "models, and a pointer to static-circuit control planes as future\n"
      "work.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_reconfig").c_str());
  bench::write_metrics_csv("ablation_reconfig");
  return 0;
}
