// Reproduces Figure 2 (the motivating example of §3.3): a 15-node optical
// ring with 2 available wavelengths. Binary-tree All-reduce needs 8 steps;
// WRHT needs 3 (one group fold into the reps 2/7/12, one all-to-all
// exchange among them, one group broadcast). Prints both schedules
// step by step with their wavelength usage and timing.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/executor.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/timeline.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 15;
  constexpr std::uint32_t kWavelengths = 2;
  constexpr std::uint32_t kGroup = 5;
  constexpr std::size_t kElements = 1'000'000;  // "data of size d"

  std::printf(
      "=== Figure 2: motivating example — %u nodes, %u wavelengths ===\n\n",
      kNodes, kWavelengths);

  // Both schedules are semantically verified All-reduces.
  {
    Rng rng;
    const auto bt_small = coll::btree_allreduce(kNodes, 64);
    const auto wrht_small = core::wrht_allreduce(
        kNodes, 64, core::WrhtOptions{kGroup, kWavelengths});
    coll::Executor::verify_allreduce(bt_small, rng);
    coll::Executor::verify_allreduce(wrht_small, rng);
  }

  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"fig2", kElements}};
  spec.nodes = {kNodes};
  spec.wavelengths = {kWavelengths};
  spec.series = {exp::Series{.name = "btree", .algorithm = "btree"},
                 exp::Series{.name = "wrht", .algorithm = "wrht",
                             .group_size = kGroup}};
  const auto rows = bench::run_sweep(spec);
  const RunReport& bt_run = rows[0].report;
  const RunReport& wrht_run = rows[1].report;

  std::printf("Binary tree (paper Fig. 2a: 8 steps):\n");
  optics::print_timeline(bt_run, std::cout);
  std::printf("\nWRHT (paper Fig. 2b: 3 steps):\n");
  optics::print_timeline(wrht_run, std::cout);

  Table table({"Algorithm", "Steps", "Paper", "Lambdas used", "Time"});
  table.add_row({"Binary tree", std::to_string(bt_run.steps), "8",
                 std::to_string(bt_run.max_wavelengths_used()),
                 to_string(bt_run.total_time)});
  table.add_row({"WRHT (m=5)", std::to_string(wrht_run.steps), "3",
                 std::to_string(wrht_run.max_wavelengths_used()),
                 to_string(wrht_run.total_time)});
  std::printf("\n");
  std::cout << table;

  std::printf(
      "\nWRHT's representatives (nodes 2, 7, 12) collect both ring\n"
      "directions on the same 2 wavelengths, exchange among themselves,\n"
      "and broadcast back — %zu vs %zu steps, a %.1fx speedup.\n",
      wrht_run.steps, bt_run.steps,
      bt_run.total_time / wrht_run.total_time);

  CsvWriter csv(bench::csv_path("fig2_motivating"),
                {"algorithm", "steps", "time_s"});
  csv.add_row({"btree", std::to_string(bt_run.steps),
               Table::num(bt_run.total_time.count(), 6)});
  csv.add_row({"wrht", std::to_string(wrht_run.steps),
               Table::num(wrht_run.total_time.count(), 6)});
  std::printf("CSV written to %s\n",
              bench::csv_path("fig2_motivating").c_str());
  bench::write_metrics_csv("fig2_motivating");
  return 0;
}
