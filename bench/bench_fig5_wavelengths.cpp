// Reproduces Figure 5: communication time of Ring, H-Ring (m=5), BT and
// WRHT on a 1024-node optical ring under w in {4, 16, 64, 256} wavelengths,
// for the four DNN workloads. Values are normalized by WRHT on ResNet50
// with 256 wavelengths, as in the paper.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wrht;

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16}
                             : std::vector<std::uint32_t>{1024};
  spec.wavelengths = bench::tiny()
                         ? std::vector<std::uint32_t>{2, 4}
                         : std::vector<std::uint32_t>{4, 16, 64, 256};
  spec.series = {exp::Series{.name = "ring", .algorithm = "ring"},
                 exp::Series{.name = "hring", .algorithm = "hring",
                             .group_size = 5},
                 exp::Series{.name = "btree", .algorithm = "btree"},
                 exp::Series{.name = "wrht", .algorithm = "wrht"}};
  spec.config.validate_node_capacity = false;
  const std::uint32_t nodes = spec.nodes.front();

  std::printf(
      "=== Figure 5: impact of the number of wavelengths (N = %u) ===\n"
      "(normalized by WRHT @ ResNet50, w = 256; paper: WRHT improves with\n"
      " w then flattens; Ring/BT flat; WRHT loses to Ring/H-Ring at w=4 on\n"
      " BEiT and VGG16)\n\n",
      nodes);

  const auto rows = bench::run_sweep(spec);

  // Normalization base: WRHT on ResNet50 at w = 256.
  const double base = bench::row_time(rows, spec.workloads.back().name, nodes,
                                      spec.wavelengths.back(), "wrht");

  CsvWriter csv(bench::csv_path("fig5_wavelengths"),
                {"workload", "wavelengths", "algorithm", "time_s",
                 "normalized"});

  // Per-algorithm series across the whole sweep for the paper aggregates.
  std::map<std::string, std::vector<double>> series;

  for (const exp::Workload& workload : spec.workloads) {
    std::printf("--- %s (%.1fM parameters) ---\n", workload.name.c_str(),
                static_cast<double>(workload.elements) / 1e6);
    Table table({"w", "Ring", "H-Ring (m=5)", "BT", "WRHT (m=2w+1)"});
    for (const std::uint32_t w : spec.wavelengths) {
      std::vector<std::string> row{std::to_string(w)};
      for (const exp::Series& s : spec.series) {
        const double t = bench::row_time(rows, workload.name, nodes, w,
                                         s.name);
        row.push_back(Table::num(t / base, 3));
        csv.add_row({workload.name, std::to_string(w), s.name,
                     Table::num(t, 6), Table::num(t / base, 4)});
        series[s.name].push_back(t);
      }
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and wavelength counts\n"
      "(paper reports WRHT reductions of 13.74%% vs Ring, 9.29%% vs H-Ring,"
      "\n 75%% vs BT):\n");
  bench::print_reduction("wrht", series["wrht"], "ring", series["ring"]);
  bench::print_reduction("wrht", series["wrht"], "hring", series["hring"]);
  bench::print_reduction("wrht", series["wrht"], "btree", series["btree"]);
  std::printf("CSV written to %s\n",
              bench::csv_path("fig5_wavelengths").c_str());
  bench::write_metrics_csv("fig5_wavelengths");
  return 0;
}
