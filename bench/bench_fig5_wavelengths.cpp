// Reproduces Figure 5: communication time of Ring, H-Ring (m=5), BT and
// WRHT on a 1024-node optical ring under w in {4, 16, 64, 256} wavelengths,
// for the four DNN workloads. Values are normalized by WRHT on ResNet50
// with 256 wavelengths, as in the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/planner.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 1024;
  const std::uint32_t kWavelengths[] = {4, 16, 64, 256};
  const char* kAlgos[] = {"ring", "hring", "btree", "wrht"};

  std::printf(
      "=== Figure 5: impact of the number of wavelengths (N = %u) ===\n"
      "(normalized by WRHT @ ResNet50, w = 256; paper: WRHT improves with\n"
      " w then flattens; Ring/BT flat; WRHT loses to Ring/H-Ring at w=4 on\n"
      " BEiT and VGG16)\n\n",
      kNodes);

  const auto models = dnn::paper_workloads();

  // Normalization base: WRHT on ResNet50 at w = 256.
  const double base = bench::optical_time(
      "wrht", kNodes, models.back().parameter_count(), 256,
      core::plan_wrht(kNodes, 256).group_size);

  CsvWriter csv(bench::csv_path("fig5_wavelengths"),
                {"workload", "wavelengths", "algorithm", "time_s",
                 "normalized"});

  // Per-algorithm series across the whole sweep for the paper aggregates.
  std::map<std::string, std::vector<double>> series;

  for (const auto& model : models) {
    std::printf("--- %s (%.1fM parameters) ---\n", model.name().c_str(),
                model.parameter_count() / 1e6);
    Table table({"w", "Ring", "H-Ring (m=5)", "BT", "WRHT (m=2w+1)"});
    const std::size_t elements = model.parameter_count();
    for (const std::uint32_t w : kWavelengths) {
      std::vector<std::string> row{std::to_string(w)};
      for (const std::string algo : kAlgos) {
        const std::uint32_t group =
            algo == "hring" ? 5u
            : algo == "wrht" ? core::plan_wrht(kNodes, w).group_size
                             : 0u;
        const double t = bench::optical_time(algo, kNodes, elements, w, group);
        row.push_back(Table::num(t / base, 3));
        csv.add_row({model.name(), std::to_string(w), algo,
                     Table::num(t, 6), Table::num(t / base, 4)});
        series[algo].push_back(t);
      }
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and wavelength counts\n"
      "(paper reports WRHT reductions of 13.74%% vs Ring, 9.29%% vs H-Ring,"
      "\n 75%% vs BT):\n");
  bench::print_reduction("wrht", series["wrht"], "ring", series["ring"]);
  bench::print_reduction("wrht", series["wrht"], "hring", series["hring"]);
  bench::print_reduction("wrht", series["wrht"], "btree", series["btree"]);
  std::printf("CSV written to %s\n",
              bench::csv_path("fig5_wavelengths").c_str());
  bench::write_metrics_csv("fig5_wavelengths");
  return 0;
}
