// Reproduces Table 1: communication-step comparison of Ring, H-Ring, BT and
// WRHT on a 1024-node optical ring with 64 wavelengths — both from the
// closed-form expressions and from the actually generated schedules. The
// generated column runs the schedules through the "schedule-only" backend
// (step structure under the RunReport contract, no time model).
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/collectives/btree_allreduce.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/analysis.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 1024;
  constexpr std::uint32_t kWavelengths = 64;
  constexpr std::uint32_t kHringGroup = 5;
  constexpr std::uint32_t kWrhtGroup = 129;
  constexpr std::size_t kElements = 4096;  // payload-independent step counts

  std::printf(
      "=== Table 1: communication steps, N = %u, w = %u (paper values: "
      "Ring 2046, H-Ring 417, BT 20, WRHT 3) ===\n\n",
      kNodes, kWavelengths);

  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{"table1", kElements}};
  spec.nodes = {kNodes};
  spec.wavelengths = {kWavelengths};
  spec.series = {
      exp::Series{.name = "ring", .algorithm = "ring",
                  .backend = "schedule-only"},
      exp::Series{.name = "hring", .algorithm = "hring",
                  .backend = "schedule-only", .group_size = kHringGroup},
      exp::Series{.name = "btree", .algorithm = "btree",
                  .backend = "schedule-only"},
      exp::Series{.name = "wrht", .algorithm = "wrht",
                  .backend = "schedule-only", .group_size = kWrhtGroup},
      exp::Series{.name = "rd", .algorithm = "recursive_doubling",
                  .backend = "schedule-only"}};
  const auto rows = bench::run_sweep(spec);
  const auto generated = [&rows](const std::string& series) {
    return bench::find_row(rows, "table1", kNodes, kWavelengths, series)
        .report.steps;
  };

  const auto plan = core::wrht_plan(kNodes, kWrhtGroup, kWavelengths);

  Table table({"Algorithm", "Closed form", "Generated schedule", "Paper"});
  table.add_row({"Ring", std::to_string(coll::ring_allreduce_steps(kNodes)),
                 std::to_string(generated("ring")), "2046"});
  table.add_row(
      {"H-Ring (m=5)",
       std::to_string(coll::hring_steps(kNodes, kHringGroup, kWavelengths)),
       std::to_string(generated("hring")), "417"});
  table.add_row({"BT", std::to_string(coll::btree_allreduce_steps(kNodes)),
                 std::to_string(generated("btree")), "20"});
  table.add_row({"WRHT (m=129)", std::to_string(plan.total_steps),
                 std::to_string(generated("wrht")), "3"});

  // Context row the paper discusses alongside Table 1.
  table.add_row({"RD (electrical baseline)",
                 std::to_string(coll::recursive_doubling_steps(kNodes)),
                 std::to_string(generated("rd")), "-"});
  std::cout << table << "\n";

  std::printf("Lemma 1 lower bound 2*ceil(log_(2w+1) N) = %llu steps\n",
              static_cast<unsigned long long>(
                  core::wrht_min_steps(kNodes, kWavelengths)));
  std::printf("WRHT wavelengths required: %llu (floor(m/2) = %u)\n\n",
              static_cast<unsigned long long>(plan.wavelengths_required),
              kWrhtGroup / 2);

  CsvWriter csv(bench::csv_path("table1_steps"),
                {"algorithm", "closed_form", "generated", "paper"});
  csv.add_row({"ring", std::to_string(coll::ring_allreduce_steps(kNodes)),
               std::to_string(generated("ring")), "2046"});
  csv.add_row({"hring",
               std::to_string(coll::hring_steps(kNodes, kHringGroup,
                                                kWavelengths)),
               std::to_string(generated("hring")), "417"});
  csv.add_row({"btree", std::to_string(coll::btree_allreduce_steps(kNodes)),
               std::to_string(generated("btree")), "20"});
  csv.add_row({"wrht", std::to_string(plan.total_steps),
               std::to_string(generated("wrht")), "3"});
  std::printf("CSV written to %s\n", bench::csv_path("table1_steps").c_str());

  // Drift guard: the closed forms, the generated schedules and the paper's
  // Table 1 must all agree — a mismatch fails the bench (and CI) instead of
  // silently publishing a wrong table.
  int drift = 0;
  const auto check = [&drift](const char* name, std::uint64_t closed,
                              std::uint64_t generated_steps,
                              std::uint64_t paper) {
    if (closed != generated_steps || closed != paper) {
      std::fprintf(stderr,
                   "DRIFT in %s: closed form %llu, generated %llu, paper "
                   "%llu\n",
                   name, static_cast<unsigned long long>(closed),
                   static_cast<unsigned long long>(generated_steps),
                   static_cast<unsigned long long>(paper));
      drift = 1;
    }
  };
  check("ring", coll::ring_allreduce_steps(kNodes), generated("ring"), 2046);
  check("hring", coll::hring_steps(kNodes, kHringGroup, kWavelengths),
        generated("hring"), 417);
  check("btree", coll::btree_allreduce_steps(kNodes), generated("btree"), 20);
  check("wrht", plan.total_steps, generated("wrht"), 3);
  return drift;
}
