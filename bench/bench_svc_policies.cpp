// Policy bake-off for the shared-fabric service (wrht::svc): the same
// seeded workload trace is replayed against every admission policy at a
// sweep of offered loads, from a nearly idle fabric to a saturating
// heavy-tailed bursty one. The headline is the p99 job completion time —
// the SLO currency a multi-tenant fabric is operated on.
//
// The bench gates its own conclusion (exit 1 otherwise):
//   * at light load every policy admits immediately, so FIFO and
//     weighted-fair tie on p99 JCT;
//   * at the saturating bursty load, backfill or weighted-fair beats
//     FIFO's head-of-line blocking on p99 JCT;
//   * at least two distinct policies win somewhere across the sweep —
//     i.e. there is no single best admission policy.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"

namespace {

using namespace wrht;

struct Load {
  std::string name;
  Seconds mean_interarrival{0.0};
  double burstiness = 0.0;
};

}  // namespace

int main() {
  const bool tiny = bench::tiny();
  const std::uint32_t fabric = tiny ? 16 : 64;
  const std::uint32_t nodes = tiny ? 16 : 64;
  const std::uint32_t num_jobs = tiny ? 32 : 128;

  // Offered loads, light to saturating. Mean service time per job is on
  // the order of 0.1 s (dnn-zoo payloads, 1-3 iterations), so the light
  // load leaves the fabric idle almost always and the last one queues
  // deeply during bursts.
  std::vector<Load> loads;
  if (tiny) {
    loads = {{"light", Seconds(1.0), 0.0},
             {"heavy", Seconds(0.05), 0.3},
             {"bursty-saturated", Seconds(0.01), 0.5}};
  } else {
    loads = {{"light", Seconds(1.0), 0.0},
             {"medium", Seconds(0.1), 0.1},
             {"heavy", Seconds(0.02), 0.3},
             {"bursty-saturated", Seconds(0.008), 0.5}};
  }

  std::printf(
      "=== Shared-fabric admission-policy bake-off ===\n(fabric = %u "
      "wavelengths, %u jobs per load over %u-node all-reduces, identical "
      "seeded trace per load)\n\n",
      fabric, num_jobs, nodes);

  Table table({"Load", "Policy", "p50 JCT (ms)", "p99 JCT (ms)",
               "mean wait (ms)", "util (%)", "makespan (s)"});
  CsvWriter csv(bench::csv_path("ablation_svc_policies"),
                {"load", "mean_interarrival_s", "burstiness", "policy",
                 "jobs", "makespan_s", "utilization", "p50_jct_s",
                 "p99_jct_s", "mean_wait_s"});

  // load name -> policy name -> p99 JCT.
  std::map<std::string, std::map<std::string, double>> p99;
  std::set<std::string> winners;

  for (const Load& load : loads) {
    svc::WorkloadConfig workload;
    workload.num_jobs = num_jobs;
    workload.num_nodes = nodes;
    workload.fabric_wavelengths = fabric;
    workload.mean_interarrival = load.mean_interarrival;
    workload.burstiness = load.burstiness;
    const std::vector<svc::Job> jobs = svc::generate_workload(workload);

    std::string winner;
    double winner_p99 = 0.0;
    for (const svc::PolicyKind kind : svc::all_policies()) {
      svc::ServiceConfig config;
      config.fabric_wavelengths = fabric;
      config.policy = kind;
      config.counters = &bench::metrics();
      svc::FabricService service(config);
      const svc::ServiceReport report = service.run(jobs);

      const std::string policy = svc::to_string(kind);
      p99[load.name][policy] = report.p99_jct.count();
      if (winner.empty() || report.p99_jct.count() < winner_p99) {
        winner = policy;
        winner_p99 = report.p99_jct.count();
      }
      table.add_row({load.name, policy,
                     Table::num(report.p50_jct.count() * 1e3, 2),
                     Table::num(report.p99_jct.count() * 1e3, 2),
                     Table::num(report.mean_queue_wait.count() * 1e3, 2),
                     Table::num(report.utilization * 100.0, 1),
                     Table::num(report.makespan.count(), 3)});
      csv.add_row({load.name, Table::num(load.mean_interarrival.count(), 6),
                   Table::num(load.burstiness, 2), policy,
                   std::to_string(report.records.size()),
                   Table::num(report.makespan.count(), 6),
                   Table::num(report.utilization, 6),
                   Table::num(report.p50_jct.count(), 6),
                   Table::num(report.p99_jct.count(), 6),
                   Table::num(report.mean_queue_wait.count(), 6)});
    }
    winners.insert(winner);
    std::printf("load %-18s -> best p99 JCT: %s (%.2f ms)\n",
                load.name.c_str(), winner.c_str(), winner_p99 * 1e3);
  }
  std::cout << "\n" << table << "\n";

  // --- Gates: the bench fails if its own story does not hold. ---
  int failed = 0;

  // 1. Light load: admission is immediate for everyone, so FIFO and
  //    weighted-fair tie (0.1% tolerance).
  const double fifo_light = p99["light"]["fifo"];
  const double fair_light = p99["light"]["weighted-fair"];
  if (std::abs(fifo_light - fair_light) >
      1e-3 * std::max(fifo_light, fair_light)) {
    std::printf(
        "GATE FAIL: at light load fifo (%.6fs) and weighted-fair (%.6fs) "
        "should tie on p99 JCT\n",
        fifo_light, fair_light);
    failed = 1;
  }

  // 2. Saturating bursty load: head-of-line blocking must cost FIFO the
  //    tail — backfill or weighted-fair wins p99 by at least 2%.
  const std::string saturated = loads.back().name;
  const double fifo_sat = p99[saturated]["fifo"];
  const double best_sat = std::min(p99[saturated]["backfill"],
                                   p99[saturated]["weighted-fair"]);
  if (!(best_sat < 0.98 * fifo_sat)) {
    std::printf(
        "GATE FAIL: at %s load, backfill/weighted-fair (%.6fs) should beat "
        "fifo (%.6fs) on p99 JCT\n",
        saturated.c_str(), best_sat, fifo_sat);
    failed = 1;
  }

  // 3. No single policy wins the whole sweep.
  if (winners.size() < 2) {
    std::printf(
        "GATE FAIL: expected at least 2 distinct policy winners across the "
        "load sweep, got %zu\n",
        winners.size());
    failed = 1;
  }

  if (failed == 0) {
    std::printf(
        "gates passed: light-load tie, tail win over FIFO at saturation, "
        "%zu distinct winners\n",
        winners.size());
  }
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_svc_policies").c_str());
  bench::write_metrics_csv("ablation_svc_policies");
  return failed;
}
