// Ablation: resource-level utilization. Fig. 5 compares the algorithms by
// total communication time; this bench asks *where that time goes* on the
// optical ring. Every run is executed with occupancy collection enabled
// (BackendConfig::collect_utilization), so each SweepRow's RunReport
// carries the per-(wavelength, direction) time breakdown — payload
// transmission, MRR reconfiguration, O/E/O conversion, straggler wait —
// and the mean channel utilization. The per-row CSV exposes all of it;
// the printed tables give the per-algorithm utilization distribution
// (median / p90 across the grid) and the breakdown shares, which explain
// the Fig. 5 ranking: WRHT keeps more wavelengths busy per step but pays
// a larger reconfiguration share than Ring's static circuits.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wrht;

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16}
                             : std::vector<std::uint32_t>{512};
  spec.wavelengths = bench::tiny() ? std::vector<std::uint32_t>{2, 4}
                                   : std::vector<std::uint32_t>{4, 16, 64};
  spec.series = {exp::Series{.name = "ring", .algorithm = "ring"},
                 exp::Series{.name = "hring", .algorithm = "hring",
                             .group_size = 5},
                 exp::Series{.name = "btree", .algorithm = "btree"},
                 exp::Series{.name = "wrht", .algorithm = "wrht"}};
  spec.config.validate_node_capacity = false;
  spec.config.collect_utilization = true;
  const std::uint32_t nodes = spec.nodes.front();

  std::printf(
      "=== Ablation: channel utilization and time attribution (N = %u) ===\n"
      "(optical ring, w in {%u..%u}; every run sampled per wavelength x\n"
      " direction; utilization = mean fraction of the run a channel spends\n"
      " transmitting payload)\n\n",
      nodes, spec.wavelengths.front(), spec.wavelengths.back());

  const auto rows = bench::run_sweep(spec);

  CsvWriter csv(bench::csv_path("ablation_utilization"),
                {"workload", "wavelengths", "algorithm", "time_s",
                 "utilization", "resources", "transmission_s",
                 "reconfiguration_s", "conversion_s", "processing_s",
                 "straggler_wait_s", "idle_s"});

  // Per-algorithm samples across the whole grid for the quantile table.
  std::map<std::string, std::vector<double>> util_series;
  std::map<std::string, TimeBreakdown> breakdown_series;

  for (const exp::Workload& workload : spec.workloads) {
    std::printf("--- %s (%.1fM parameters) ---\n", workload.name.c_str(),
                static_cast<double>(workload.elements) / 1e6);
    Table table({"w", "algorithm", "time (ms)", "util %", "reconfig %",
                 "straggler %", "idle %"});
    for (const std::uint32_t w : spec.wavelengths) {
      for (const exp::Series& s : spec.series) {
        const RunReport& report =
            bench::find_row(rows, workload.name, nodes, w, s.name).report;
        const double total = report.total_time.count();
        const TimeBreakdown& b = report.breakdown;
        const auto share = [&](Seconds part) {
          return total > 0.0 ? 100.0 * part.count() / total : 0.0;
        };
        table.add_row({std::to_string(w), s.name, Table::num(total * 1e3, 3),
                       Table::num(100.0 * report.utilization, 1),
                       Table::num(share(b.reconfiguration), 1),
                       Table::num(share(b.straggler_wait), 1),
                       Table::num(share(b.idle), 1)});
        csv.add_row({workload.name, std::to_string(w), s.name,
                     Table::num(total, 6),
                     Table::num(report.utilization, 4),
                     std::to_string(report.resources_observed),
                     Table::num(b.transmission.count(), 6),
                     Table::num(b.reconfiguration.count(), 6),
                     Table::num(b.conversion.count(), 6),
                     Table::num(b.processing.count(), 6),
                     Table::num(b.straggler_wait.count(), 6),
                     Table::num(b.idle.count(), 6)});
        util_series[s.name].push_back(report.utilization);
        breakdown_series[s.name] += b;
      }
    }
    std::cout << table << "\n";
  }

  // Sweep-level utilization distribution per algorithm: median and tail
  // quantiles across every (workload, w) grid point.
  std::printf("Utilization distribution across the grid (%% of run spent\n"
              "transmitting, per algorithm):\n");
  Table quant({"algorithm", "min", "p25", "median", "p90", "max"});
  for (const exp::Series& s : spec.series) {
    const std::vector<double>& u = util_series[s.name];
    quant.add_row({s.name, Table::num(100.0 * percentile(u, 0.0), 1),
                   Table::num(100.0 * percentile(u, 0.25), 1),
                   Table::num(100.0 * percentile(u, 0.5), 1),
                   Table::num(100.0 * percentile(u, 0.9), 1),
                   Table::num(100.0 * percentile(u, 1.0), 1)});
  }
  std::cout << quant << "\n";

  std::printf("Aggregate time attribution (summed over the grid, %% of\n"
              "accumulated wall time per algorithm):\n");
  Table attr({"algorithm", "transmission", "reconfig", "o/e/o", "straggler",
              "idle"});
  for (const exp::Series& s : spec.series) {
    const TimeBreakdown& b = breakdown_series[s.name];
    const double total = b.total().count();
    const auto pct = [&](Seconds part) {
      return Table::num(total > 0.0 ? 100.0 * part.count() / total : 0.0, 1);
    };
    attr.add_row({s.name, pct(b.transmission), pct(b.reconfiguration),
                  pct(b.conversion), pct(b.straggler_wait), pct(b.idle)});
  }
  std::cout << attr << "\n";

  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_utilization").c_str());
  bench::write_metrics_csv("ablation_utilization");
  return 0;
}
