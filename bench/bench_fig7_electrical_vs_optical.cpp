// Reproduces Figure 7: Ring and Recursive Doubling on the electrical
// fat-tree (E-Ring, E-RD) versus Ring and WRHT on the optical ring (O-Ring,
// WRHT) for 128 / 256 / 512 / 1024 nodes across the four DNN workloads.
// Values are normalized by WRHT on ResNet50 (N = 128), as in the paper.
// Also prints the paper's headline aggregates: O-Ring reduces E-Ring by
// 48.74%; WRHT reduces E-Ring / E-RD by 61.23% / 55.51% on average.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/planner.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;
  const std::uint32_t kNodes[] = {128, 256, 512, 1024};

  std::printf(
      "=== Figure 7: electrical fat-tree vs optical ring (w = %u) ===\n"
      "(normalized by WRHT @ ResNet50, N = 128; paper: E-Ring highest,\n"
      " E-RD slightly lower, O-Ring well below both, WRHT lowest)\n\n",
      kWavelengths);

  const auto models = dnn::paper_workloads();
  const double base = bench::optical_time(
      "wrht", 128, models.back().parameter_count(), kWavelengths,
      core::plan_wrht(128, kWavelengths).group_size);

  CsvWriter csv(bench::csv_path("fig7_electrical_vs_optical"),
                {"workload", "nodes", "system", "time_s", "normalized"});
  std::map<std::string, std::vector<double>> series;

  for (const auto& model : models) {
    std::printf("--- %s (%.1fM parameters) ---\n", model.name().c_str(),
                model.parameter_count() / 1e6);
    Table table({"N", "E-Ring", "E-RD", "O-Ring", "WRHT"});
    const std::size_t elements = model.parameter_count();
    for (const std::uint32_t n : kNodes) {
      // All four systems report through the unified RunReport shape.
      const std::pair<const char*, RunReport> rows[] = {
          {"e_ring", bench::electrical_report("ring", n, elements)},
          {"e_rd", bench::electrical_report("recursive_doubling", n,
                                            elements)},
          {"o_ring", bench::optical_report("ring", n, elements,
                                           kWavelengths)},
          {"wrht", bench::optical_report(
                       "wrht", n, elements, kWavelengths,
                       core::plan_wrht(n, kWavelengths).group_size)}};

      std::vector<std::string> cells{std::to_string(n)};
      for (const auto& [name, report] : rows) {
        const double t = report.total_time.count();
        cells.push_back(Table::num(t / base, 3));
        csv.add_row({model.name(), std::to_string(n), name, Table::num(t, 6),
                     Table::num(t / base, 4)});
        series[name].push_back(t);
      }
      table.add_row(cells);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and scales (paper: O-Ring vs\n"
      "E-Ring 48.74%%; WRHT vs E-Ring 61.23%%; WRHT vs E-RD 55.51%%):\n");
  bench::print_reduction("o_ring", series["o_ring"], "e_ring",
                         series["e_ring"]);
  bench::print_reduction("wrht", series["wrht"], "e_ring", series["e_ring"]);
  bench::print_reduction("wrht", series["wrht"], "e_rd", series["e_rd"]);
  std::printf("CSV written to %s\n",
              bench::csv_path("fig7_electrical_vs_optical").c_str());
  bench::write_metrics_csv("fig7_electrical_vs_optical");
  return 0;
}
