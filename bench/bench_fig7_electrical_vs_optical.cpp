// Reproduces Figure 7: Ring and Recursive Doubling on the electrical
// fat-tree (E-Ring, E-RD) versus Ring and WRHT on the optical ring (O-Ring,
// WRHT) for 128 / 256 / 512 / 1024 nodes across the four DNN workloads.
// Values are normalized by WRHT on ResNet50 (N = 128), as in the paper.
// Also prints the paper's headline aggregates: O-Ring reduces E-Ring by
// 48.74%; WRHT reduces E-Ring / E-RD by 61.23% / 55.51% on average.
//
// The four "systems" are (backend, algorithm) series on one sweep: the
// electrical rows run through the fat-tree flow simulator and the optical
// rows through the WDM ring simulator, all via net::BackendRegistry.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16, 32}
                             : std::vector<std::uint32_t>{128, 256, 512,
                                                          1024};
  spec.wavelengths = {kWavelengths};
  spec.series = {
      exp::Series{.name = "e_ring", .algorithm = "ring",
                  .backend = "electrical-flow"},
      exp::Series{.name = "e_rd", .algorithm = "recursive_doubling",
                  .backend = "electrical-flow"},
      exp::Series{.name = "o_ring", .algorithm = "ring",
                  .backend = "optical-ring"},
      exp::Series{.name = "wrht", .algorithm = "wrht",
                  .backend = "optical-ring"}};
  spec.config.validate_node_capacity = false;

  std::printf(
      "=== Figure 7: electrical fat-tree vs optical ring (w = %u) ===\n"
      "(normalized by WRHT @ ResNet50, N = 128; paper: E-Ring highest,\n"
      " E-RD slightly lower, O-Ring well below both, WRHT lowest)\n\n",
      kWavelengths);

  const auto rows = bench::run_sweep(spec);
  const double base =
      bench::row_time(rows, spec.workloads.back().name, spec.nodes.front(),
                      kWavelengths, "wrht");

  CsvWriter csv(bench::csv_path("fig7_electrical_vs_optical"),
                {"workload", "nodes", "system", "time_s", "normalized"});
  std::map<std::string, std::vector<double>> series;

  for (const exp::Workload& workload : spec.workloads) {
    std::printf("--- %s (%.1fM parameters) ---\n", workload.name.c_str(),
                static_cast<double>(workload.elements) / 1e6);
    Table table({"N", "E-Ring", "E-RD", "O-Ring", "WRHT"});
    for (const std::uint32_t n : spec.nodes) {
      std::vector<std::string> cells{std::to_string(n)};
      for (const exp::Series& s : spec.series) {
        const double t =
            bench::row_time(rows, workload.name, n, kWavelengths, s.name);
        cells.push_back(Table::num(t / base, 3));
        csv.add_row({workload.name, std::to_string(n), s.name,
                     Table::num(t, 6), Table::num(t / base, 4)});
        series[s.name].push_back(t);
      }
      table.add_row(cells);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and scales (paper: O-Ring vs\n"
      "E-Ring 48.74%%; WRHT vs E-Ring 61.23%%; WRHT vs E-RD 55.51%%):\n");
  bench::print_reduction("o_ring", series["o_ring"], "e_ring",
                         series["e_ring"]);
  bench::print_reduction("wrht", series["wrht"], "e_ring", series["e_ring"]);
  bench::print_reduction("wrht", series["wrht"], "e_rd", series["e_rd"]);
  std::printf("CSV written to %s\n",
              bench::csv_path("fig7_electrical_vs_optical").c_str());
  bench::write_metrics_csv("fig7_electrical_vs_optical");
  return 0;
}
