// Ablation: First-Fit vs Random-Fit wavelength assignment (§4.1.2 cites
// both as options). Measures wavelengths consumed by WRHT's two hardest
// step patterns — the hierarchical grouping step and the final all-to-all
// exchange — under each policy, plus the resulting end-to-end time when a
// tight wavelength budget forces starved steps to split into extra rounds.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/grouping.hpp"
#include "wrht/optical/rwa.hpp"

namespace {

using namespace wrht;

struct PolicyResult {
  std::uint32_t wavelengths_used;
  std::uint32_t rounds;
};

PolicyResult run_policy(const topo::Ring& ring,
                        const std::vector<coll::Transfer>& transfers,
                        optics::RwaPolicy policy, std::uint32_t budget,
                        Rng& rng) {
  optics::RwaOptions opt;
  opt.wavelengths = budget;
  opt.policy = policy;
  const auto rounds = optics::assign_rounds(ring, transfers, opt, &rng);
  return PolicyResult{rounds.wavelengths_used,
                      static_cast<std::uint32_t>(rounds.rounds.size())};
}

}  // namespace

int main() {
  using namespace wrht;
  std::printf(
      "=== Ablation: First-Fit vs Random-Fit RWA ===\n"
      "(wavelengths used and rounds needed for WRHT step patterns;\n"
      " first-fit packs nested group paths tighter, random-fit models\n"
      " uncoordinated assignment)\n\n");

  Rng rng(2023);
  Table table({"Pattern", "Budget", "FirstFit lambdas", "FirstFit rounds",
               "RandomFit lambdas", "RandomFit rounds"});
  CsvWriter csv(bench::csv_path("ablation_rwa"),
                {"pattern", "budget", "policy", "lambdas", "rounds"});

  // Pattern A: one WRHT grouping step, N = 1024, m = 129 (8 groups).
  {
    const topo::Ring ring(1024);
    const auto sched =
        core::wrht_allreduce(1024, 4, core::WrhtOptions{129, 64});
    const auto& transfers = sched.steps()[0].transfers;
    for (const std::uint32_t budget : {64u, 96u}) {
      const auto ff = run_policy(ring, transfers,
                                 optics::RwaPolicy::kFirstFit, budget, rng);
      const auto rf = run_policy(ring, transfers,
                                 optics::RwaPolicy::kRandomFit, budget, rng);
      table.add_row({"group step m=129", std::to_string(budget),
                     std::to_string(ff.wavelengths_used),
                     std::to_string(ff.rounds),
                     std::to_string(rf.wavelengths_used),
                     std::to_string(rf.rounds)});
      csv.add_row({"group", std::to_string(budget), "first_fit",
                   std::to_string(ff.wavelengths_used),
                   std::to_string(ff.rounds)});
      csv.add_row({"group", std::to_string(budget), "random_fit",
                   std::to_string(rf.wavelengths_used),
                   std::to_string(rf.rounds)});
    }
  }

  // Pattern B: the final all-to-all among k representatives.
  for (const std::uint32_t k : {8u, 16u, 32u}) {
    const std::uint32_t n = 32 * k;
    const topo::Ring ring(n);
    const auto sched = core::wrht_allreduce(
        n, 4, core::WrhtOptions{n / k >= 2 ? n / k + 1 : 2, 4096});
    // Find the all-to-all step (label set by the builder).
    const coll::Step* a2a = nullptr;
    for (const auto& step : sched.steps()) {
      if (step.label == "all-to-all exchange") a2a = &step;
    }
    if (a2a == nullptr) continue;
    const std::uint32_t bound =
        static_cast<std::uint32_t>(core::all_to_all_wavelengths(k));
    for (const std::uint32_t budget : {bound, 2 * bound}) {
      const auto ff = run_policy(ring, a2a->transfers,
                                 optics::RwaPolicy::kFirstFit, budget, rng);
      const auto rf = run_policy(ring, a2a->transfers,
                                 optics::RwaPolicy::kRandomFit, budget, rng);
      table.add_row({"all-to-all k=" + std::to_string(k) +
                         " (bound " + std::to_string(bound) + ")",
                     std::to_string(budget),
                     std::to_string(ff.wavelengths_used),
                     std::to_string(ff.rounds),
                     std::to_string(rf.wavelengths_used),
                     std::to_string(rf.rounds)});
      csv.add_row({"a2a_k" + std::to_string(k), std::to_string(budget),
                   "first_fit", std::to_string(ff.wavelengths_used),
                   std::to_string(ff.rounds)});
      csv.add_row({"a2a_k" + std::to_string(k), std::to_string(budget),
                   "random_fit", std::to_string(rf.wavelengths_used),
                   std::to_string(rf.rounds)});
    }
  }
  std::cout << table << "\n";
  std::printf(
      "First-fit never needs more rounds than random-fit: packing nested\n"
      "group lightpaths from the longest inward reuses low wavelengths.\n");
  std::printf("CSV written to %s\n", bench::csv_path("ablation_rwa").c_str());
  return 0;
}
