// Ablation: First-Fit vs Random-Fit wavelength assignment (§4.1.2 cites
// both as options). Measures wavelengths consumed by WRHT's two hardest
// step patterns — the hierarchical grouping step and the final all-to-all
// exchange — under each policy, plus the resulting round splits when a
// tight wavelength budget forces starved steps into extra rounds. Each
// pattern runs as a single-step schedule through the optical-ring backend
// (one sweep per pattern, first-fit and random-fit as series; random-fit
// draws from the sweep's deterministic per-point seeds).
#include <cstdio>
#include <utility>

#include "bench_common.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace {

using namespace wrht;

/// Wraps one step of a WRHT schedule as a standalone schedule so the
/// backend prices exactly that pattern.
coll::Schedule single_step(const std::string& name, std::uint32_t n,
                           const coll::Step& step) {
  coll::Schedule out(name, n, 4);
  out.add_step(step.label).transfers = step.transfers;
  return out;
}

/// Runs `pattern` under both policies for every budget and appends the
/// table/CSV rows.
void run_pattern(const std::string& table_label,
                 const std::string& csv_pattern, std::uint32_t n,
                 std::vector<std::uint32_t> budgets,
                 const coll::Schedule& pattern, Table& table,
                 CsvWriter& csv) {
  exp::SweepSpec spec;
  spec.workloads = {exp::Workload{csv_pattern, 4}};
  spec.nodes = {n};
  spec.wavelengths = std::move(budgets);
  const auto builder = [pattern](const exp::SweepPoint&) { return pattern; };
  spec.series = {
      exp::Series{.name = "first_fit", .builder = builder},
      exp::Series{.name = "random_fit", .builder = builder,
                  .configure =
                      [](const exp::SweepPoint&, net::BackendConfig& c) {
                        c.random_fit_rwa = true;
                      }}};
  // Nested group lightpaths exceed the per-node MRR budget by design here;
  // the ablation measures RWA pressure, not hardware feasibility.
  spec.config.validate_node_capacity = false;
  const auto rows = bench::run_sweep(spec);

  for (const std::uint32_t budget : spec.wavelengths) {
    const StepReport& ff =
        bench::find_row(rows, csv_pattern, n, budget, "first_fit")
            .report.step_reports.front();
    const StepReport& rf =
        bench::find_row(rows, csv_pattern, n, budget, "random_fit")
            .report.step_reports.front();
    table.add_row({table_label, std::to_string(budget),
                   std::to_string(ff.wavelengths_used),
                   std::to_string(ff.rounds),
                   std::to_string(rf.wavelengths_used),
                   std::to_string(rf.rounds)});
    csv.add_row({csv_pattern, std::to_string(budget), "first_fit",
                 std::to_string(ff.wavelengths_used),
                 std::to_string(ff.rounds)});
    csv.add_row({csv_pattern, std::to_string(budget), "random_fit",
                 std::to_string(rf.wavelengths_used),
                 std::to_string(rf.rounds)});
  }
}

}  // namespace

int main() {
  using namespace wrht;
  std::printf(
      "=== Ablation: First-Fit vs Random-Fit RWA ===\n"
      "(wavelengths used and rounds needed for WRHT step patterns;\n"
      " first-fit packs nested group paths tighter, random-fit models\n"
      " uncoordinated assignment)\n\n");

  Table table({"Pattern", "Budget", "FirstFit lambdas", "FirstFit rounds",
               "RandomFit lambdas", "RandomFit rounds"});
  CsvWriter csv(bench::csv_path("ablation_rwa"),
                {"pattern", "budget", "policy", "lambdas", "rounds"});

  // Pattern A: one WRHT grouping step, N = 1024, m = 129 (8 groups).
  {
    const auto sched =
        core::wrht_allreduce(1024, 4, core::WrhtOptions{129, 64});
    run_pattern("group step m=129", "group", 1024, {64u, 96u},
                single_step("rwa-group", 1024, sched.steps()[0]), table, csv);
  }

  // Pattern B: the final all-to-all among k representatives.
  for (const std::uint32_t k : {8u, 16u, 32u}) {
    const std::uint32_t n = 32 * k;
    const auto sched = core::wrht_allreduce(
        n, 4, core::WrhtOptions{n / k >= 2 ? n / k + 1 : 2, 4096});
    // Find the all-to-all step (label set by the builder).
    const coll::Step* a2a = nullptr;
    for (const auto& step : sched.steps()) {
      if (step.label == "all-to-all exchange") a2a = &step;
    }
    if (a2a == nullptr) continue;
    const std::uint32_t bound =
        static_cast<std::uint32_t>(core::all_to_all_wavelengths(k));
    run_pattern("all-to-all k=" + std::to_string(k) + " (bound " +
                    std::to_string(bound) + ")",
                "a2a_k" + std::to_string(k), n, {bound, 2 * bound},
                single_step("rwa-a2a", n, *a2a), table, csv);
  }
  std::cout << table << "\n";
  std::printf(
      "First-fit never needs more rounds than random-fit: packing nested\n"
      "group lightpaths from the longest inward reuses low wavelengths.\n");
  std::printf("CSV written to %s\n", bench::csv_path("ablation_rwa").c_str());
  return 0;
}
