// Ablation: the Eq. (6) rate convention (DESIGN.md §5). The paper's
// numbers evaluate d/B with d in bytes against B = 40e9; physically strict
// serialization is 8x slower per transfer. This bench re-runs the Fig. 6
// comparison under both conventions and shows that the *byte* convention
// is the one that reproduces the paper's "WRHT lowest everywhere" claim —
// under strict bits, Ring overtakes WRHT for the largest model.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace {

using namespace wrht;

double timed(const coll::Schedule& sched, std::uint32_t n,
             optics::OpticalConfig::RateConvention convention) {
  const optics::RingNetwork net(
      n, optics::OpticalConfig{}.with_convention(convention));
  return net.execute(sched, obs::Probe{nullptr, &bench::metrics()})
      .total_time.count();
}

}  // namespace

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 1024;
  constexpr std::uint32_t kWavelengths = 64;

  std::printf(
      "=== Ablation: Eq.(6) rate convention (paper bytes vs strict bits) "
      "===\n(N = %u, w = %u; winner flips for the largest models under\n"
      " strict bit serialization — the calibration evidence of DESIGN.md)\n\n",
      kNodes, kWavelengths);

  Table table({"Workload", "conv", "Ring (s)", "WRHT (s)", "winner"});
  CsvWriter csv(bench::csv_path("ablation_convention"),
                {"workload", "convention", "ring_s", "wrht_s"});

  const std::uint32_t m = core::plan_wrht(kNodes, kWavelengths).group_size;
  for (const auto& model : dnn::paper_workloads()) {
    const std::size_t elements = model.parameter_count();
    const auto ring_sched = coll::ring_allreduce(kNodes, elements);
    const auto wrht_sched = core::wrht_allreduce(
        kNodes, elements, core::WrhtOptions{m, kWavelengths});
    const std::pair<optics::OpticalConfig::RateConvention, const char*>
        conventions[] = {
            {optics::OpticalConfig::RateConvention::kPaperConvention,
             "paper"},
            {optics::OpticalConfig::RateConvention::kStrictBits, "bits"}};
    for (const auto& [conv, name] : conventions) {
      const double t_ring = timed(ring_sched, kNodes, conv);
      const double t_wrht = timed(wrht_sched, kNodes, conv);
      table.add_row({model.name(), name, Table::num(t_ring, 4),
                     Table::num(t_wrht, 4),
                     t_wrht <= t_ring ? "WRHT" : "Ring"});
      csv.add_row({model.name(), name, Table::num(t_ring, 6),
                   Table::num(t_wrht, 6)});
    }
  }
  std::cout << table << "\n";
  std::printf(
      "Under the paper convention WRHT wins every workload (Fig. 6); under\n"
      "strict bits the d-per-step payload makes Ring faster for BEiT-L —\n"
      "the contradiction that pinned down the paper's numeric convention.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_convention").c_str());
  bench::write_metrics_csv("ablation_convention");
  return 0;
}
