// Ablation: the Eq. (6) rate convention (DESIGN.md §5). The paper's
// numbers evaluate d/B with d in bytes against B = 40e9; physically strict
// serialization is 8x slower per transfer. This bench re-runs the Fig. 6
// comparison under both conventions and shows that the *byte* convention
// is the one that reproduces the paper's "WRHT lowest everywhere" claim —
// under strict bits, Ring overtakes WRHT for the largest model. The
// conventions are per-series backend-config overrides on one sweep.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace wrht;

exp::Series conv_series(const std::string& algorithm,
                        net::RateConvention convention,
                        const char* conv_name) {
  exp::Series s;
  s.name = algorithm + "_" + conv_name;
  s.algorithm = algorithm;
  s.configure = [convention](const exp::SweepPoint&,
                             net::BackendConfig& config) {
    config.convention = convention;
  };
  return s;
}

}  // namespace

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16}
                             : std::vector<std::uint32_t>{1024};
  spec.wavelengths = {kWavelengths};
  const std::pair<net::RateConvention, const char*> conventions[] = {
      {net::RateConvention::kPaperConvention, "paper"},
      {net::RateConvention::kStrictBits, "bits"}};
  for (const auto& [conv, conv_name] : conventions) {
    spec.series.push_back(conv_series("ring", conv, conv_name));
    spec.series.push_back(conv_series("wrht", conv, conv_name));
  }
  const std::uint32_t nodes = spec.nodes.front();

  std::printf(
      "=== Ablation: Eq.(6) rate convention (paper bytes vs strict bits) "
      "===\n(N = %u, w = %u; winner flips for the largest models under\n"
      " strict bit serialization — the calibration evidence of DESIGN.md)\n\n",
      nodes, kWavelengths);

  const auto rows = bench::run_sweep(spec);

  Table table({"Workload", "conv", "Ring (s)", "WRHT (s)", "winner"});
  CsvWriter csv(bench::csv_path("ablation_convention"),
                {"workload", "convention", "ring_s", "wrht_s"});

  for (const exp::Workload& workload : spec.workloads) {
    for (const auto& [conv, conv_name] : conventions) {
      const double t_ring =
          bench::row_time(rows, workload.name, nodes, kWavelengths,
                          std::string("ring_") + conv_name);
      const double t_wrht =
          bench::row_time(rows, workload.name, nodes, kWavelengths,
                          std::string("wrht_") + conv_name);
      table.add_row({workload.name, conv_name, Table::num(t_ring, 4),
                     Table::num(t_wrht, 4),
                     t_wrht <= t_ring ? "WRHT" : "Ring"});
      csv.add_row({workload.name, conv_name, Table::num(t_ring, 6),
                   Table::num(t_wrht, 6)});
    }
  }
  std::cout << table << "\n";
  std::printf(
      "Under the paper convention WRHT wins every workload (Fig. 6); under\n"
      "strict bits the d-per-step payload makes Ring faster for BEiT-L —\n"
      "the contradiction that pinned down the paper's numeric convention.\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_convention").c_str());
  bench::write_metrics_csv("ablation_convention");
  return 0;
}
