// Microbenchmarks (google-benchmark) of the library's hot paths: schedule
// construction, RWA, the data-level executor, the max-min flow solver and
// the event kernel. These guard the simulator's own performance (the
// Fig. 6 sweeps execute thousands of steps).
#include <benchmark/benchmark.h>

#include "wrht/collectives/executor.hpp"
#include "wrht/collectives/hring_allreduce.hpp"
#include "wrht/collectives/recursive_doubling.hpp"
#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/rwa.hpp"
#include "wrht/prof/prof.hpp"
#include "wrht/sim/simulator.hpp"

namespace {

using namespace wrht;

void BM_BuildRingSchedule(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::ring_allreduce(n, 4 * n));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildRingSchedule)->Range(64, 1024)->Complexity();

void BM_BuildWrhtSchedule(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::WrhtPlan plan = core::plan_wrht(n, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::wrht_allreduce(n, 64, core::WrhtOptions{plan.group_size, 64}));
  }
}
BENCHMARK(BM_BuildWrhtSchedule)->Range(64, 4096);

void BM_PlanWrht(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_wrht(n, 64));
  }
}
BENCHMARK(BM_PlanWrht)->Range(64, 4096);

void BM_RwaGroupStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const topo::Ring ring(n);
  const auto sched = core::wrht_allreduce(
      n, 4, core::WrhtOptions{core::plan_wrht(n, 64).group_size, 64});
  const auto& transfers = sched.steps()[0].transfers;
  optics::RwaOptions opt;
  opt.wavelengths = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optics::assign_wavelengths(ring, transfers, opt));
  }
}
BENCHMARK(BM_RwaGroupStep)->Range(256, 4096);

void BM_OpticalExecuteRing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  optics::OpticalConfig cfg;
  const optics::RingNetwork net(n, cfg);
  const auto sched = coll::ring_allreduce(n, 4 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.execute(sched));
  }
}
BENCHMARK(BM_OpticalExecuteRing)->Range(64, 1024);

// The observability contract: an empty probe must cost nothing over the
// unobserved overload above (compare the two), while a fully attached
// probe shows the actual price of tracing + counting.
void BM_OpticalExecuteRingNoopProbe(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const optics::RingNetwork net(n, optics::OpticalConfig{});
  const auto sched = coll::ring_allreduce(n, 4 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.execute(sched, obs::Probe{}));
  }
}
BENCHMARK(BM_OpticalExecuteRingNoopProbe)->Range(64, 1024);

void BM_OpticalExecuteRingObserved(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const optics::RingNetwork net(n, optics::OpticalConfig{});
  const auto sched = coll::ring_allreduce(n, 4 * n);
  for (auto _ : state) {
    obs::MemoryTraceSink sink;
    obs::Counters counters;
    benchmark::DoNotOptimize(net.execute(sched, obs::Probe{&sink, &counters, 0}));
  }
}
BENCHMARK(BM_OpticalExecuteRingObserved)->Range(64, 1024);

void BM_ExecutorVerify(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto sched = coll::recursive_doubling_allreduce(n, 256);
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(coll::Executor::verify_allreduce(sched, rng));
  }
}
BENCHMARK(BM_ExecutorVerify)->Range(8, 64);

void BM_MaxMinFairShare(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  elec::FlowLevelSimulator sim(std::vector<double>(64, 40e9));
  std::vector<elec::FlowSpec> flows;
  for (std::size_t i = 0; i < flows_count; ++i) {
    flows.push_back(elec::FlowSpec{
        1e6, {static_cast<elec::LinkId>(i % 64),
              static_cast<elec::LinkId>((i * 7) % 64)}, 0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.max_min_rates(flows));
  }
}
BENCHMARK(BM_MaxMinFairShare)->Range(64, 1024);

void BM_ElectricalExecuteRing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const elec::FatTreeNetwork net(n, elec::ElectricalConfig{});
  const auto sched = coll::ring_allreduce(n, 4 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.execute(sched));
  }
}
BENCHMARK(BM_ElectricalExecuteRing)->Range(64, 512);

// The host-profiling contract mirrors the probe contract above: with no
// registry installed a ScopedTimer is a single relaxed pointer load
// (BM_ScopedTimerOff), while an installed registry pays two clock reads
// and two relaxed fetch_adds per timer (BM_ScopedTimerOn shows the
// price). Compare the two to audit the off-by-default overhead.
void BM_ScopedTimerOff(benchmark::State& state) {
  for (auto _ : state) {
    const prof::ScopedTimer timer("bench.phase");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedTimerOff);

void BM_ScopedTimerOn(benchmark::State& state) {
  prof::ProfRegistry registry;
  const prof::ScopedProfiling profiling(registry);
  for (auto _ : state) {
    const prof::ScopedTimer timer("bench.phase");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ScopedTimerOn);

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      simulator.schedule_in(Seconds(static_cast<double>((i * 31) % 1000)),
                            [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Range(1024, 65536);

}  // namespace

BENCHMARK_MAIN();
