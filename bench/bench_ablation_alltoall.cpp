// Ablation: the final all-to-all exchange (§4.1.1). WRHT may finish the
// reduce stage either with an all-to-all among the surviving
// representatives (theta = 2L-1) or by collapsing to a single root
// (theta = 2L). This bench quantifies the step and time saving of the
// all-to-all ending across node counts and wavelength budgets. The on/off
// variants are custom-builder series (the registry's "wrht" always keeps
// the all-to-all ending on).
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/wrht_schedule.hpp"

namespace {

using namespace wrht;

exp::Series wrht_series(std::uint32_t m, bool all_to_all) {
  exp::Series s;
  s.name = (all_to_all ? "on_m" : "off_m") + std::to_string(m);
  s.builder = [m, all_to_all](const exp::SweepPoint& p) {
    return core::wrht_allreduce(
        p.nodes, p.workload.elements,
        core::WrhtOptions{m, p.wavelengths, all_to_all});
  };
  return s;
}

}  // namespace

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;
  const std::vector<std::uint32_t> group_sizes =
      bench::tiny() ? std::vector<std::uint32_t>{3, 5}
                    : std::vector<std::uint32_t>{17u, 65u, 129u};

  std::printf(
      "=== Ablation: final all-to-all exchange on vs off ===\n"
      "(ResNet50 payload; \"off\" collapses the hierarchy to a single root\n"
      " and pays a full extra broadcast level)\n\n");

  exp::SweepSpec spec;
  spec.workloads = bench::tiny()
                       ? std::vector<exp::Workload>{{"tiny", 4096}}
                       : std::vector<exp::Workload>{
                             {"ResNet50",
                              dnn::resnet50().parameter_count()}};
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16}
                             : std::vector<std::uint32_t>{256, 1024, 4096};
  spec.wavelengths = {kWavelengths};
  for (const std::uint32_t m : group_sizes) {
    spec.series.push_back(wrht_series(m, true));
    spec.series.push_back(wrht_series(m, false));
  }
  const auto rows = bench::run_sweep(spec);
  const std::string workload = spec.workloads.front().name;

  Table table({"N", "m", "steps (a2a on)", "steps (a2a off)", "time on (ms)",
               "time off (ms)", "saving"});
  CsvWriter csv(bench::csv_path("ablation_alltoall"),
                {"nodes", "group_size", "steps_on", "steps_off", "time_on_s",
                 "time_off_s"});

  for (const std::uint32_t n : spec.nodes) {
    for (const std::uint32_t m : group_sizes) {
      const RunReport& on =
          bench::find_row(rows, workload, n, kWavelengths,
                          "on_m" + std::to_string(m))
              .report;
      const RunReport& off =
          bench::find_row(rows, workload, n, kWavelengths,
                          "off_m" + std::to_string(m))
              .report;

      const double saving =
          (1.0 - on.total_time.count() / off.total_time.count()) * 100.0;
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(on.steps), std::to_string(off.steps),
                     Table::num(on.total_time.millis(), 2),
                     Table::num(off.total_time.millis(), 2),
                     Table::num(saving, 1) + " %"});
      csv.add_row({std::to_string(n), std::to_string(m),
                   std::to_string(on.steps), std::to_string(off.steps),
                   Table::num(on.total_time.count(), 6),
                   Table::num(off.total_time.count(), 6)});
    }
  }
  std::cout << table << "\n";
  std::printf(
      "The all-to-all ending buys one fewer broadcast level whenever\n"
      "ceil(m*^2/8) wavelengths are available (Table 1's 3 vs 4 steps).\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_alltoall").c_str());
  bench::write_metrics_csv("ablation_alltoall");
  return 0;
}
