// Ablation: the final all-to-all exchange (§4.1.1). WRHT may finish the
// reduce stage either with an all-to-all among the surviving
// representatives (theta = 2L-1) or by collapsing to a single root
// (theta = 2L). This bench quantifies the step and time saving of the
// all-to-all ending across node counts and wavelength budgets.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/grouping.hpp"
#include "wrht/optical/ring_network.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;
  const std::size_t kElements = dnn::resnet50().parameter_count();

  std::printf(
      "=== Ablation: final all-to-all exchange on vs off ===\n"
      "(ResNet50 payload; \"off\" collapses the hierarchy to a single root\n"
      " and pays a full extra broadcast level)\n\n");

  Table table({"N", "m", "steps (a2a on)", "steps (a2a off)", "time on (ms)",
               "time off (ms)", "saving"});
  CsvWriter csv(bench::csv_path("ablation_alltoall"),
                {"nodes", "group_size", "steps_on", "steps_off", "time_on_s",
                 "time_off_s"});

  for (const std::uint32_t n : {256u, 1024u, 4096u}) {
    for (const std::uint32_t m : {17u, 65u, 129u}) {
      const optics::RingNetwork net(
          n, optics::OpticalConfig{}.with_wavelengths(kWavelengths));

      const auto on = core::wrht_allreduce(
          n, kElements, core::WrhtOptions{m, kWavelengths, true});
      const auto off = core::wrht_allreduce(
          n, kElements, core::WrhtOptions{m, kWavelengths, false});
      const obs::Probe probe{nullptr, &bench::metrics()};
      const auto res_on = net.execute(on, probe);
      const auto res_off = net.execute(off, probe);

      const double saving =
          (1.0 - res_on.total_time.count() / res_off.total_time.count()) *
          100.0;
      table.add_row({std::to_string(n), std::to_string(m),
                     std::to_string(on.num_steps()),
                     std::to_string(off.num_steps()),
                     Table::num(res_on.total_time.millis(), 2),
                     Table::num(res_off.total_time.millis(), 2),
                     Table::num(saving, 1) + " %"});
      csv.add_row({std::to_string(n), std::to_string(m),
                   std::to_string(on.num_steps()),
                   std::to_string(off.num_steps()),
                   Table::num(res_on.total_time.count(), 6),
                   Table::num(res_off.total_time.count(), 6)});
    }
  }
  std::cout << table << "\n";
  std::printf(
      "The all-to-all ending buys one fewer broadcast level whenever\n"
      "ceil(m*^2/8) wavelengths are available (Table 1's 3 vs 4 steps).\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_alltoall").c_str());
  bench::write_metrics_csv("ablation_alltoall");
  return 0;
}
