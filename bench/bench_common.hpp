// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the WRHT paper
// (ICPP 2023): it declares the paper's parameter grid as an
// exp::SweepSpec, runs it through exp::SweepRunner (parallel across grid
// points, WRHT_SWEEP_THREADS controls the pool), prints the series as an
// ASCII table (normalized exactly as the paper's figures are), writes a
// CSV next to the binary, and reports the headline "average reduction"
// aggregates the paper quotes in its text.
//
// WRHT_BENCH_TINY=1 shrinks every grid (small N, synthetic payload) so CI
// smoke jobs can validate the CSV schemas in seconds; the schema and the
// row structure are identical to the full run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/common/table.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"

namespace wrht::bench {

/// Process-wide counter registry. Every sweep launched through run_sweep()
/// merges its per-run counters here (rounds, reconfiguration charges,
/// fair-share bottlenecks, events fired, ...); write_metrics_csv() dumps
/// it next to the figure CSV at the end of the bench. Thread-safe, so the
/// parallel sweep workers feed it directly.
inline obs::Counters& metrics() {
  static obs::Counters counters;
  return counters;
}

/// True when WRHT_BENCH_TINY is set: benches swap the paper's grids for
/// seconds-scale ones with the same CSV schema.
inline bool tiny() {
  const char* env = std::getenv("WRHT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Runs `spec` through a SweepRunner with the process-wide metrics()
/// registry attached.
inline std::vector<exp::SweepRow> run_sweep(exp::SweepSpec spec) {
  spec.counters = &metrics();
  return exp::SweepRunner().run(spec);
}

/// The row at (workload, nodes, wavelengths, series); throws when the
/// sweep did not produce it.
inline const exp::SweepRow& find_row(const std::vector<exp::SweepRow>& rows,
                                     const std::string& workload,
                                     std::uint32_t nodes,
                                     std::uint32_t wavelengths,
                                     const std::string& series) {
  for (const exp::SweepRow& row : rows) {
    if (row.point.workload.name == workload && row.point.nodes == nodes &&
        row.point.wavelengths == wavelengths && row.point.series == series) {
      return row;
    }
  }
  throw InvalidArgument("bench: no sweep row for " + workload + "/N=" +
                        std::to_string(nodes) + "/w=" +
                        std::to_string(wavelengths) + "/" + series);
}

/// Communication time (s) of the row at (workload, nodes, wavelengths,
/// series).
inline double row_time(const std::vector<exp::SweepRow>& rows,
                       const std::string& workload, std::uint32_t nodes,
                       std::uint32_t wavelengths, const std::string& series) {
  return find_row(rows, workload, nodes, wavelengths, series)
      .report.total_time.count();
}

/// The paper's four DNN workloads (Table 3), or one synthetic payload in
/// tiny mode.
inline std::vector<exp::Workload> paper_or_tiny_workloads() {
  if (tiny()) return {exp::Workload{"tiny", 4096}};
  std::vector<exp::Workload> out;
  for (const auto& model : dnn::paper_workloads()) {
    out.push_back(exp::Workload{model.name(), model.parameter_count()});
  }
  return out;
}

/// Prints the paper-text aggregate: "X reduces communication time by P% on
/// average compared with Y".
inline void print_reduction(const std::string& ours_name,
                            const std::vector<double>& ours,
                            const std::string& baseline_name,
                            const std::vector<double>& baseline) {
  std::printf("  %s vs %-22s : %6.2f%% average communication-time reduction\n",
              ours_name.c_str(), baseline_name.c_str(),
              mean_reduction_percent(ours, baseline));
}

inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

/// Dumps the accumulated metrics() counters to `<bench>_metrics.csv`
/// alongside the figure CSV.
inline void write_metrics_csv(const std::string& bench_name) {
  const std::string path = bench_name + "_metrics.csv";
  metrics().write_csv(path);
  std::printf("metrics CSV written to %s\n", path.c_str());
}

}  // namespace wrht::bench
