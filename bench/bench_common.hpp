// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the WRHT paper
// (ICPP 2023): it sweeps the paper's parameters, runs the real simulators,
// prints the series as an ASCII table (normalized exactly as the paper's
// figures are), writes a CSV next to the binary, and reports the headline
// "average reduction" aggregates the paper quotes in its text.
#pragma once

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/csv.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht::bench {

/// Optical communication time of `algorithm` for a payload of `elements`
/// float32 gradients on an N-node ring with w wavelengths.
inline double optical_time(const std::string& algorithm, std::uint32_t n,
                           std::size_t elements, std::uint32_t wavelengths,
                           std::uint32_t group_size = 0) {
  core::register_wrht_algorithm();
  optics::OpticalConfig cfg;
  cfg.wavelengths = wavelengths;
  // The paper's sweeps "assume there is no constraint of optical
  // communication" (§5.4): WRHT with m = 2*256+1 legitimately exceeds the
  // per-node MRR budget, which the TeraRack hardware model would reject.
  cfg.validate_node_capacity = false;
  const optics::RingNetwork net(n, cfg);
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  p.group_size = group_size;
  p.wavelengths = wavelengths;
  const coll::Schedule sched =
      coll::Registry::instance().build(algorithm, p);
  return net.execute(sched).total_time.count();
}

/// Electrical (fat-tree) communication time under the same conventions.
inline double electrical_time(const std::string& algorithm, std::uint32_t n,
                              std::size_t elements) {
  elec::ElectricalConfig cfg;
  const elec::FatTreeNetwork net(n, cfg);
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  const coll::Schedule sched =
      coll::Registry::instance().build(algorithm, p);
  return net.execute(sched).total_time.count();
}

/// Prints the paper-text aggregate: "X reduces communication time by P% on
/// average compared with Y".
inline void print_reduction(const std::string& ours_name,
                            const std::vector<double>& ours,
                            const std::string& baseline_name,
                            const std::vector<double>& baseline) {
  std::printf("  %s vs %-22s : %6.2f%% average communication-time reduction\n",
              ours_name.c_str(), baseline_name.c_str(),
              mean_reduction_percent(ours, baseline));
}

inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

}  // namespace wrht::bench
