// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the WRHT paper
// (ICPP 2023): it sweeps the paper's parameters, runs the real simulators,
// prints the series as an ASCII table (normalized exactly as the paper's
// figures are), writes a CSV next to the binary, and reports the headline
// "average reduction" aggregates the paper quotes in its text.
#pragma once

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/csv.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/common/table.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/electrical/fat_tree_network.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht::bench {

/// Process-wide counter registry. Every simulator run launched through the
/// helpers below feeds it (rounds, reconfiguration charges, fair-share
/// bottlenecks, events fired, ...); write_metrics_csv() dumps it next to
/// the figure CSV at the end of the bench.
inline obs::Counters& metrics() {
  static obs::Counters counters;
  return counters;
}

/// Optical run of `algorithm` for a payload of `elements` float32
/// gradients on an N-node ring with w wavelengths, as a RunReport.
inline RunReport optical_report(const std::string& algorithm, std::uint32_t n,
                                std::size_t elements,
                                std::uint32_t wavelengths,
                                std::uint32_t group_size = 0) {
  core::register_wrht_algorithm();
  // The paper's sweeps "assume there is no constraint of optical
  // communication" (§5.4): WRHT with m = 2*256+1 legitimately exceeds the
  // per-node MRR budget, which the TeraRack hardware model would reject.
  const auto cfg = optics::OpticalConfig{}
                       .with_wavelengths(wavelengths)
                       .with_validate_node_capacity(false);
  const optics::RingNetwork net(n, cfg);
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  p.group_size = group_size;
  p.wavelengths = wavelengths;
  const coll::Schedule sched =
      coll::Registry::instance().build(algorithm, p);
  return net.execute(sched, obs::Probe{nullptr, &metrics()}).to_report();
}

/// Electrical (fat-tree) run under the same conventions, as a RunReport.
inline RunReport electrical_report(const std::string& algorithm,
                                   std::uint32_t n, std::size_t elements) {
  const elec::FatTreeNetwork net(n, elec::ElectricalConfig{});
  coll::AllreduceParams p;
  p.num_nodes = n;
  p.elements = elements;
  const coll::Schedule sched =
      coll::Registry::instance().build(algorithm, p);
  return net.execute(sched, obs::Probe{nullptr, &metrics()}).to_report();
}

/// Optical communication time in seconds (RunReport shortcut).
inline double optical_time(const std::string& algorithm, std::uint32_t n,
                           std::size_t elements, std::uint32_t wavelengths,
                           std::uint32_t group_size = 0) {
  return optical_report(algorithm, n, elements, wavelengths, group_size)
      .total_time.count();
}

/// Electrical communication time in seconds (RunReport shortcut).
inline double electrical_time(const std::string& algorithm, std::uint32_t n,
                              std::size_t elements) {
  return electrical_report(algorithm, n, elements).total_time.count();
}

/// Prints the paper-text aggregate: "X reduces communication time by P% on
/// average compared with Y".
inline void print_reduction(const std::string& ours_name,
                            const std::vector<double>& ours,
                            const std::string& baseline_name,
                            const std::vector<double>& baseline) {
  std::printf("  %s vs %-22s : %6.2f%% average communication-time reduction\n",
              ours_name.c_str(), baseline_name.c_str(),
              mean_reduction_percent(ours, baseline));
}

inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

/// Dumps the accumulated metrics() counters to `<bench>_metrics.csv`
/// alongside the figure CSV.
inline void write_metrics_csv(const std::string& bench_name) {
  const std::string path = bench_name + "_metrics.csv";
  metrics().write_csv(path);
  std::printf("metrics CSV written to %s\n", path.c_str());
}

}  // namespace wrht::bench
