// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the WRHT paper
// (ICPP 2023): it declares the paper's parameter grid as an
// exp::SweepSpec, runs it through exp::SweepRunner (parallel across grid
// points, WRHT_SWEEP_THREADS controls the pool), prints the series as an
// ASCII table (normalized exactly as the paper's figures are), writes a
// CSV next to the binary, and reports the headline "average reduction"
// aggregates the paper quotes in its text.
//
// WRHT_BENCH_TINY=1 shrinks every grid (small N, synthetic payload) so CI
// smoke jobs can validate the CSV schemas in seconds; the schema and the
// row structure are identical to the full run.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/stats.hpp"
#include "wrht/common/table.hpp"
#include "wrht/dnn/zoo.hpp"
#include "wrht/exp/sweep.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/prof/perf_report.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::bench {

/// Process-wide counter registry. Every sweep launched through run_sweep()
/// merges its per-run counters here (rounds, reconfiguration charges,
/// fair-share bottlenecks, events fired, ...); write_metrics_csv() dumps
/// it next to the figure CSV at the end of the bench. Thread-safe, so the
/// parallel sweep workers feed it directly.
inline obs::Counters& metrics() {
  static obs::Counters counters;
  return counters;
}

/// True when WRHT_BENCH_TINY is set: benches swap the paper's grids for
/// seconds-scale ones with the same CSV schema.
inline bool tiny() {
  const char* env = std::getenv("WRHT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// True when WRHT_BENCH_PERF is set: every sweep launched through
/// run_sweep() profiles itself (wall clock + wrht::prof phase accounting)
/// and write_metrics_csv() also emits BENCH_<name>.json — the
/// machine-readable perf result wrht_perf and the baseline tooling read.
inline bool perf_enabled() {
  const char* env = std::getenv("WRHT_BENCH_PERF");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The bench's process-wide profiling registry; installed around each
/// sweep (and the CSV writes) when perf_enabled().
inline prof::ProfRegistry& perf_registry() {
  static prof::ProfRegistry registry;
  return registry;
}

namespace detail {
/// Whole-sweep wall samples + total grid points, accumulated by
/// run_sweep() for the BENCH_<name>.json throughput metrics.
struct PerfSamples {
  std::vector<double> sweep_wall_s;
  std::size_t grid_points = 0;
};
inline PerfSamples& perf_samples() {
  static PerfSamples samples;
  return samples;
}
}  // namespace detail

/// Runs `spec` through a SweepRunner with the process-wide metrics()
/// registry attached. Under WRHT_BENCH_PERF the run executes with the
/// perf registry installed and records a whole-sweep wall sample.
inline std::vector<exp::SweepRow> run_sweep(exp::SweepSpec spec) {
  spec.counters = &metrics();
  if (!perf_enabled()) return exp::SweepRunner().run(spec);
  const prof::ScopedProfiling profiling(perf_registry());
  const auto start = std::chrono::steady_clock::now();
  std::vector<exp::SweepRow> rows = exp::SweepRunner().run(spec);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  detail::perf_samples().sweep_wall_s.push_back(wall.count());
  detail::perf_samples().grid_points += rows.size();
  return rows;
}

/// The row at (workload, nodes, wavelengths, series); throws when the
/// sweep did not produce it.
inline const exp::SweepRow& find_row(const std::vector<exp::SweepRow>& rows,
                                     const std::string& workload,
                                     std::uint32_t nodes,
                                     std::uint32_t wavelengths,
                                     const std::string& series) {
  for (const exp::SweepRow& row : rows) {
    if (row.point.workload.name == workload && row.point.nodes == nodes &&
        row.point.wavelengths == wavelengths && row.point.series == series) {
      return row;
    }
  }
  throw InvalidArgument("bench: no sweep row for " + workload + "/N=" +
                        std::to_string(nodes) + "/w=" +
                        std::to_string(wavelengths) + "/" + series);
}

/// Communication time (s) of the row at (workload, nodes, wavelengths,
/// series).
inline double row_time(const std::vector<exp::SweepRow>& rows,
                       const std::string& workload, std::uint32_t nodes,
                       std::uint32_t wavelengths, const std::string& series) {
  return find_row(rows, workload, nodes, wavelengths, series)
      .report.total_time.count();
}

/// The paper's four DNN workloads (Table 3), or one synthetic payload in
/// tiny mode.
inline std::vector<exp::Workload> paper_or_tiny_workloads() {
  if (tiny()) return {exp::Workload{"tiny", 4096}};
  std::vector<exp::Workload> out;
  for (const auto& model : dnn::paper_workloads()) {
    out.push_back(exp::Workload{model.name(), model.parameter_count()});
  }
  return out;
}

/// Prints the paper-text aggregate: "X reduces communication time by P% on
/// average compared with Y".
inline void print_reduction(const std::string& ours_name,
                            const std::vector<double>& ours,
                            const std::string& baseline_name,
                            const std::vector<double>& baseline) {
  std::printf("  %s vs %-22s : %6.2f%% average communication-time reduction\n",
              ours_name.c_str(), baseline_name.c_str(),
              mean_reduction_percent(ours, baseline));
}

inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

/// Dumps the accumulated metrics() counters to `<bench>_metrics.csv`
/// alongside the figure CSV, and — under WRHT_BENCH_PERF — also emits
/// BENCH_<bench>.json with the sweep wall samples (median/p90),
/// grid-point throughput, pool thread efficiency, merged phase table and
/// peak RSS.
inline void write_metrics_csv(const std::string& bench_name) {
  const std::string path = bench_name + "_metrics.csv";
  if (!perf_enabled()) {
    metrics().write_csv(path);
    std::printf("metrics CSV written to %s\n", path.c_str());
    return;
  }
  const prof::ScopedProfiling profiling(perf_registry());
  {
    const prof::ScopedTimer timer("io.csv.write");
    metrics().write_csv(path);
  }
  std::printf("metrics CSV written to %s\n", path.c_str());

  const detail::PerfSamples& samples = detail::perf_samples();
  prof::PerfReport report;
  report.name = bench_name;
  report.repetitions = static_cast<std::uint32_t>(samples.sweep_wall_s.size());
  report.threads = exp::SweepRunner().threads();
  report.wall_time_s = std::accumulate(samples.sweep_wall_s.begin(),
                                       samples.sweep_wall_s.end(), 0.0);
  report.peak_rss_bytes = prof::peak_rss_bytes();
  if (!samples.sweep_wall_s.empty()) {
    report.add_sample_metrics("sweep.wall_s", samples.sweep_wall_s, "s");
  }
  if (report.wall_time_s > 0.0 && samples.grid_points > 0) {
    report.add_metric(
        "grid_points_per_s",
        static_cast<double>(samples.grid_points) / report.wall_time_s, "/s");
  }
  report.capture(perf_registry());
  const std::string json_path = "BENCH_" + bench_name + ".json";
  report.write_json_file(json_path);
  std::printf("perf report written to %s\n", json_path.c_str());
}

}  // namespace wrht::bench
