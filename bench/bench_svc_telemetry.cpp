// Telemetry conformance for the shared-fabric service (wrht::svc +
// wrht::obs): the same seeded bursty workload runs with telemetry off and
// with every instrument on (metrics + events + trace), for every
// admission policy. The bench gates the accounting identities that make
// the telemetry trustworthy (exit 1 otherwise):
//
//   * off-by-default is free: the enabled run's ServiceReport equals the
//     disabled run's bit-for-bit — instruments observe, never perturb;
//   * the event log is deterministic: two enabled runs of the same
//     (config, seed) produce byte-identical svc-events-1 JSONL;
//   * busy-time identity: the sum of per-tenant wavelength-seconds equals
//     the fabric total to float re-association error (1e-12 relative);
//   * replay identity: parsing the JSONL back and replaying it through
//     summarize_records() reproduces the live report's job/consumption
//     counters exactly (timestamps round-trip via %.17g).
//
// Artifacts: ablation_svc_telemetry.csv (one row per policy),
// svc_events.jsonl + svc_telemetry_timeseries.csv + svc_trace.json from
// the fifo run (the bench-smoke harness pins their schemas).
#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "wrht/obs/event_log.hpp"
#include "wrht/obs/metrics.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/svc/replay.hpp"
#include "wrht/svc/service.hpp"
#include "wrht/svc/workload.hpp"

namespace {

using namespace wrht;

/// Exact (bitwise on doubles) equality of the aggregates and per-record
/// timelines two paths must agree on. `timeline_only` relaxes to the
/// fields an event-log replay can reconstruct (no planner/model echo, no
/// SLO targets).
bool reports_match(const svc::ServiceReport& a, const svc::ServiceReport& b,
                   bool timeline_only, const char* label) {
  const auto fail = [&](const std::string& what) {
    std::printf("GATE FAIL [%s]: %s\n", label, what.c_str());
    return false;
  };
  if (a.policy != b.policy) return fail("policy mismatch");
  if (a.fabric_wavelengths != b.fabric_wavelengths) {
    return fail("fabric mismatch");
  }
  if (a.records.size() != b.records.size()) {
    return fail("job count " + std::to_string(a.records.size()) + " vs " +
                std::to_string(b.records.size()));
  }
  if (a.makespan.count() != b.makespan.count()) return fail("makespan");
  if (a.utilization != b.utilization) return fail("utilization");
  if (a.p50_jct.count() != b.p50_jct.count()) return fail("p50_jct");
  if (a.p99_jct.count() != b.p99_jct.count()) return fail("p99_jct");
  if (a.mean_queue_wait.count() != b.mean_queue_wait.count()) {
    return fail("mean_queue_wait");
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const svc::JobRecord& ra = a.records[i];
    const svc::JobRecord& rb = b.records[i];
    if (ra.job.id != rb.job.id || ra.job.tenant != rb.job.tenant ||
        ra.job.width != rb.job.width ||
        ra.job.arrival.count() != rb.job.arrival.count() ||
        ra.lease.w_lo != rb.lease.w_lo || ra.lease.w_hi != rb.lease.w_hi ||
        ra.grant.count() != rb.grant.count() ||
        ra.completion.count() != rb.completion.count()) {
      return fail("record " + std::to_string(i) + " (job " +
                  std::to_string(ra.job.id) + ") timeline mismatch");
    }
    if (!timeline_only && ra.algorithm != rb.algorithm) {
      return fail("record " + std::to_string(i) + " algorithm mismatch");
    }
  }
  if (a.tenants.size() != b.tenants.size()) return fail("tenant count");
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const svc::TenantStats& ta = a.tenants[i];
    const svc::TenantStats& tb = b.tenants[i];
    if (ta.tenant != tb.tenant || ta.jobs != tb.jobs ||
        ta.p50_jct.count() != tb.p50_jct.count() ||
        ta.p99_jct.count() != tb.p99_jct.count() ||
        ta.mean_queue_wait.count() != tb.mean_queue_wait.count() ||
        ta.mean_service_time.count() != tb.mean_service_time.count() ||
        ta.wavelength_seconds != tb.wavelength_seconds) {
      return fail("tenant " + std::to_string(ta.tenant) + " stats mismatch");
    }
    if (!timeline_only &&
        (ta.slo_target.count() != tb.slo_target.count() ||
         ta.slo_violations != tb.slo_violations ||
         ta.slo_burn != tb.slo_burn)) {
      return fail("tenant " + std::to_string(ta.tenant) + " SLO mismatch");
    }
  }
  return true;
}

}  // namespace

int main() {
  const bool tiny = bench::tiny();
  const std::uint32_t fabric = tiny ? 16 : 64;
  const std::uint32_t nodes = tiny ? 16 : 64;
  const std::uint32_t num_jobs = tiny ? 32 : 96;

  svc::WorkloadConfig workload;
  workload.num_jobs = num_jobs;
  workload.num_nodes = nodes;
  workload.fabric_wavelengths = fabric;
  workload.mean_interarrival = Seconds(0.02);
  workload.burstiness = 0.3;
  const std::vector<svc::Job> jobs = svc::generate_workload(workload);

  std::printf(
      "=== Service telemetry conformance ===\n(fabric = %u wavelengths, %u "
      "jobs over %u-node all-reduces, bursty load, seed %llu)\n\n",
      fabric, num_jobs, nodes,
      static_cast<unsigned long long>(workload.seed));

  Table table({"Policy", "Jobs", "Events", "Retuned", "Samples",
               "p99 JCT (ms)", "util (%)", "Replay"});
  CsvWriter csv(bench::csv_path("ablation_svc_telemetry"),
                {"policy", "jobs", "makespan_s", "utilization", "p50_jct_s",
                 "p99_jct_s", "events", "retuned_lanes", "samples",
                 "replay_exact"});

  int failed = 0;
  for (const svc::PolicyKind kind : svc::all_policies()) {
    const std::string policy = svc::to_string(kind);

    svc::ServiceConfig config;
    config.fabric_wavelengths = fabric;
    config.policy = kind;
    config.counters = &bench::metrics();
    // Two tenants get JCT targets so the burn gauges exercise.
    config.slo_targets[0] = Seconds(0.5);
    config.slo_targets[1] = Seconds(1.0);

    // Baseline: telemetry off.
    svc::FabricService off(config);
    const svc::ServiceReport report_off = off.run(jobs);

    // Everything on.
    config.telemetry.metrics = true;
    config.telemetry.events = true;
    config.telemetry.trace = true;
    config.telemetry.seed = workload.seed;
    svc::FabricService on(config);
    const svc::ServiceReport report_on = on.run(jobs);

    // Gate 1: instruments observe, never perturb.
    if (!reports_match(report_off, report_on, /*timeline_only=*/false,
                       ("disabled==enabled " + policy).c_str())) {
      failed = 1;
    }

    // Gate 2: the event log is a deterministic function of (config, seed).
    const std::string jsonl = on.event_log()->to_jsonl();
    {
      svc::FabricService again(config);
      const svc::ServiceReport report_again = again.run(jobs);
      (void)report_again;
      if (again.event_log()->to_jsonl() != jsonl) {
        std::printf(
            "GATE FAIL [determinism %s]: two runs of the same (config, "
            "seed) produced different event logs\n",
            policy.c_str());
        failed = 1;
      }
    }

    // Gate 3: busy-time identity (tenant sums reassociate the fabric sum,
    // so allow float re-association error only).
    double fabric_busy = 0.0;
    for (const svc::JobRecord& r : report_on.records) {
      fabric_busy +=
          static_cast<double>(r.job.width) * r.service_time().count();
    }
    double tenant_busy = 0.0;
    for (const svc::TenantStats& t : report_on.tenants) {
      tenant_busy += t.wavelength_seconds;
    }
    if (std::abs(fabric_busy - tenant_busy) > 1e-12 * fabric_busy) {
      std::printf(
          "GATE FAIL [busy identity %s]: sum of per-tenant busy time "
          "(%.17g ws) != fabric busy time (%.17g ws)\n",
          policy.c_str(), tenant_busy, fabric_busy);
      failed = 1;
    }

    // Gate 4: replay through the serialized text reproduces the report.
    std::istringstream in(jsonl);
    const obs::EventLog parsed = obs::EventLog::read_jsonl(in);
    const svc::ReplaySummary replay = svc::replay_events(parsed);
    bool replay_ok = reports_match(report_on, replay.report,
                                   /*timeline_only=*/true,
                                   ("replay " + policy).c_str());
    if (replay.report.records.size() != report_on.records.size()) {
      replay_ok = false;
    }
    if (!replay_ok) failed = 1;

    const std::uint64_t retuned = static_cast<std::uint64_t>(
        on.metrics()->value(*on.metrics()->find("svc.retuned_lanes")));
    const std::size_t samples =
        on.metrics()->series(*on.metrics()->find("svc.queue_depth")).size();

    table.add_row({policy, std::to_string(report_on.records.size()),
                   std::to_string(on.event_log()->size()),
                   std::to_string(retuned), std::to_string(samples),
                   Table::num(report_on.p99_jct.count() * 1e3, 2),
                   Table::num(report_on.utilization * 100.0, 1),
                   replay_ok ? "exact" : "MISMATCH"});
    csv.add_row({policy, std::to_string(report_on.records.size()),
                 Table::num(report_on.makespan.count(), 6),
                 Table::num(report_on.utilization, 6),
                 Table::num(report_on.p50_jct.count(), 6),
                 Table::num(report_on.p99_jct.count(), 6),
                 std::to_string(on.event_log()->size()),
                 std::to_string(retuned), std::to_string(samples),
                 replay_ok ? "1" : "0"});

    // Fifo's artifacts feed the smoke harness and the analyze example.
    if (kind == svc::PolicyKind::kFifo) {
      on.event_log()->write_file("svc_events.jsonl");
      on.metrics()->write_series_csv("svc_telemetry_timeseries.csv");
      on.trace()->write_file("svc_trace.json");
      std::printf("%s", replay.to_string().c_str());
      print_slo_report(report_on);
      std::printf("\n");
    }
  }
  std::cout << "\n" << table << "\n";

  if (failed == 0) {
    std::printf(
        "gates passed: disabled==enabled, deterministic event logs, "
        "busy-time identity, exact replay (all %zu policies)\n",
        svc::all_policies().size());
  }
  std::printf("CSV written to %s\n",
              bench::csv_path("ablation_svc_telemetry").c_str());
  bench::write_metrics_csv("ablation_svc_telemetry");
  return failed;
}
