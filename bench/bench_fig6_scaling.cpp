// Reproduces Figure 6: communication time of Ring, H-Ring (m=5), BT and
// WRHT on optical rings of 1024 / 2048 / 3072 / 4096 nodes with 64
// wavelengths, for the four DNN workloads. Values are normalized by WRHT on
// ResNet50 at 1024 nodes, as in the paper. Also prints the paper's headline
// aggregate (WRHT reduces communication time by 65.23% / 43.81% / 82.22% vs
// Ring / H-Ring / BT on average).
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/planner.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;
  const std::uint32_t kNodes[] = {1024, 2048, 3072, 4096};
  const char* kAlgos[] = {"ring", "hring", "btree", "wrht"};

  std::printf(
      "=== Figure 6: scaling with node count (w = %u) ===\n"
      "(normalized by WRHT @ ResNet50, N = 1024; paper: WRHT lowest and\n"
      " ~flat; Ring linear in N; BT worst for BEiT/VGG16; H-Ring between)\n\n",
      kWavelengths);

  const auto models = dnn::paper_workloads();
  const double base = bench::optical_time(
      "wrht", 1024, models.back().parameter_count(), kWavelengths,
      core::plan_wrht(1024, kWavelengths).group_size);

  CsvWriter csv(bench::csv_path("fig6_scaling"),
                {"workload", "nodes", "algorithm", "time_s", "normalized"});
  std::map<std::string, std::vector<double>> series;

  for (const auto& model : models) {
    std::printf("--- %s (%.1fM parameters) ---\n", model.name().c_str(),
                model.parameter_count() / 1e6);
    Table table({"N", "Ring", "H-Ring (m=5)", "BT", "WRHT"});
    const std::size_t elements = model.parameter_count();
    for (const std::uint32_t n : kNodes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const std::string algo : kAlgos) {
        const std::uint32_t group =
            algo == "hring" ? 5u
            : algo == "wrht" ? core::plan_wrht(n, kWavelengths).group_size
                             : 0u;
        const double t =
            bench::optical_time(algo, n, elements, kWavelengths, group);
        row.push_back(Table::num(t / base, 3));
        csv.add_row({model.name(), std::to_string(n), algo, Table::num(t, 6),
                     Table::num(t / base, 4)});
        series[algo].push_back(t);
      }
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and scales (paper: WRHT\n"
      "reduces communication time by 65.23%% vs Ring, 43.81%% vs H-Ring,\n"
      "82.22%% vs BT):\n");
  bench::print_reduction("wrht", series["wrht"], "ring", series["ring"]);
  bench::print_reduction("wrht", series["wrht"], "hring", series["hring"]);
  bench::print_reduction("wrht", series["wrht"], "btree", series["btree"]);
  std::printf("CSV written to %s\n", bench::csv_path("fig6_scaling").c_str());
  bench::write_metrics_csv("fig6_scaling");
  return 0;
}
