// Reproduces Figure 6: communication time of Ring, H-Ring (m=5), BT and
// WRHT on optical rings of 1024 / 2048 / 3072 / 4096 nodes with 64
// wavelengths, for the four DNN workloads. Values are normalized by WRHT on
// ResNet50 at 1024 nodes, as in the paper. Also prints the paper's headline
// aggregate (WRHT reduces communication time by 65.23% / 43.81% / 82.22% vs
// Ring / H-Ring / BT on average).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16, 32}
                             : std::vector<std::uint32_t>{1024, 2048, 3072,
                                                          4096};
  spec.wavelengths = {kWavelengths};
  // WRHT's group size is auto-planned per (N, w) by the registry builder.
  spec.series = {exp::Series{.name = "ring", .algorithm = "ring"},
                 exp::Series{.name = "hring", .algorithm = "hring",
                             .group_size = 5},
                 exp::Series{.name = "btree", .algorithm = "btree"},
                 exp::Series{.name = "wrht", .algorithm = "wrht"}};
  // The paper's sweeps "assume there is no constraint of optical
  // communication" (§5.4): WRHT with m = 2*256+1 legitimately exceeds the
  // per-node MRR budget, which the TeraRack hardware model would reject.
  spec.config.validate_node_capacity = false;

  std::printf(
      "=== Figure 6: scaling with node count (w = %u) ===\n"
      "(normalized by WRHT @ ResNet50, N = 1024; paper: WRHT lowest and\n"
      " ~flat; Ring linear in N; BT worst for BEiT/VGG16; H-Ring between)\n\n",
      kWavelengths);

  const auto rows = bench::run_sweep(spec);
  const double base =
      bench::row_time(rows, spec.workloads.back().name, spec.nodes.front(),
                      kWavelengths, "wrht");

  CsvWriter csv(bench::csv_path("fig6_scaling"),
                {"workload", "nodes", "algorithm", "time_s", "normalized"});
  std::map<std::string, std::vector<double>> series;

  for (const exp::Workload& workload : spec.workloads) {
    std::printf("--- %s (%.1fM parameters) ---\n", workload.name.c_str(),
                static_cast<double>(workload.elements) / 1e6);
    Table table({"N", "Ring", "H-Ring (m=5)", "BT", "WRHT"});
    for (const std::uint32_t n : spec.nodes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const exp::Series& s : spec.series) {
        const double t =
            bench::row_time(rows, workload.name, n, kWavelengths, s.name);
        row.push_back(Table::num(t / base, 3));
        csv.add_row({workload.name, std::to_string(n), s.name,
                     Table::num(t, 6), Table::num(t / base, 4)});
        series[s.name].push_back(t);
      }
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::printf(
      "Headline aggregates over all workloads and scales (paper: WRHT\n"
      "reduces communication time by 65.23%% vs Ring, 43.81%% vs H-Ring,\n"
      "82.22%% vs BT):\n");
  bench::print_reduction("wrht", series["wrht"], "ring", series["ring"]);
  bench::print_reduction("wrht", series["wrht"], "hring", series["hring"]);
  bench::print_reduction("wrht", series["wrht"], "btree", series["btree"]);
  std::printf("CSV written to %s\n", bench::csv_path("fig6_scaling").c_str());
  bench::write_metrics_csv("fig6_scaling");
  return 0;
}
