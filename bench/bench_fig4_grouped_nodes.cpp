// Reproduces Figure 4: WRHT communication time on a 1024-node optical ring
// for grouped-node counts m in {17, 33, 65, 129} across the four DNN
// workloads; all values normalized by WRHT_3 (m = 129) per workload, as in
// the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/analysis.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kNodes = 1024;
  constexpr std::uint32_t kWavelengths = 64;
  const std::uint32_t kGroupSizes[] = {17, 33, 65, 129};

  std::printf(
      "=== Figure 4: WRHT vs number of grouped nodes (N = %u, w = %u) ===\n"
      "(normalized per workload by WRHT_3 (m=129); paper: time decreases\n"
      " with m then flattens, WRHT_2/WRHT_3 fastest)\n\n",
      kNodes, kWavelengths);

  const auto models = dnn::paper_workloads();

  Table table({"Workload", "WRHT_0 (m=17)", "WRHT_1 (m=33)", "WRHT_2 (m=65)",
               "WRHT_3 (m=129)"});
  CsvWriter csv(bench::csv_path("fig4_grouped_nodes"),
                {"workload", "group_size", "steps", "time_s", "normalized"});

  for (const auto& model : models) {
    const std::size_t elements = model.parameter_count();
    std::vector<double> times;
    std::vector<std::uint32_t> steps;
    for (const std::uint32_t m : kGroupSizes) {
      times.push_back(
          bench::optical_time("wrht", kNodes, elements, kWavelengths, m));
      steps.push_back(core::wrht_plan(kNodes, m, kWavelengths).total_steps);
    }
    const double base = times.back();
    std::vector<std::string> row{model.name()};
    for (std::size_t i = 0; i < times.size(); ++i) {
      row.push_back(Table::num(times[i] / base, 3) + " (" +
                    std::to_string(steps[i]) + " steps)");
      csv.add_row({model.name(), std::to_string(kGroupSizes[i]),
                   std::to_string(steps[i]), Table::num(times[i], 6),
                   Table::num(times[i] / base, 4)});
    }
    table.add_row(row);
  }
  std::cout << table << "\n";

  std::printf(
      "Step counts across m: 5 / 4 / 3 / 3 — communication time decreases\n"
      "with larger groups and then stays flat, matching the paper's Fig. 4\n"
      "(the paper's prose approximates the 5:3 ratio as \"half\").\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("fig4_grouped_nodes").c_str());
  bench::write_metrics_csv("fig4_grouped_nodes");
  return 0;
}
