// Reproduces Figure 4: WRHT communication time on a 1024-node optical ring
// for grouped-node counts m in {17, 33, 65, 129} across the four DNN
// workloads; all values normalized by WRHT_3 (m = 129) per workload, as in
// the paper. The group sizes are one sweep series each.
#include <cstdio>

#include "bench_common.hpp"
#include "wrht/core/analysis.hpp"

int main() {
  using namespace wrht;
  constexpr std::uint32_t kWavelengths = 64;
  const std::vector<std::uint32_t> group_sizes =
      bench::tiny() ? std::vector<std::uint32_t>{3, 5}
                    : std::vector<std::uint32_t>{17, 33, 65, 129};

  exp::SweepSpec spec;
  spec.workloads = bench::paper_or_tiny_workloads();
  spec.nodes = bench::tiny() ? std::vector<std::uint32_t>{16}
                             : std::vector<std::uint32_t>{1024};
  spec.wavelengths = {kWavelengths};
  for (const std::uint32_t m : group_sizes) {
    spec.series.push_back(exp::Series{.name = "m" + std::to_string(m),
                                      .algorithm = "wrht", .group_size = m});
  }
  spec.config.validate_node_capacity = false;
  const std::uint32_t nodes = spec.nodes.front();

  std::printf(
      "=== Figure 4: WRHT vs number of grouped nodes (N = %u, w = %u) ===\n"
      "(normalized per workload by WRHT_3 (m=129); paper: time decreases\n"
      " with m then flattens, WRHT_2/WRHT_3 fastest)\n\n",
      nodes, kWavelengths);

  const auto rows = bench::run_sweep(spec);

  // Header follows the swept group sizes (tiny mode uses a shorter list).
  std::vector<std::string> header{"Workload"};
  for (std::size_t i = 0; i < group_sizes.size(); ++i) {
    header.push_back("WRHT_" + std::to_string(i) + " (m=" +
                     std::to_string(group_sizes[i]) + ")");
  }
  Table table(header);
  CsvWriter csv(bench::csv_path("fig4_grouped_nodes"),
                {"workload", "group_size", "steps", "time_s", "normalized"});

  for (const exp::Workload& workload : spec.workloads) {
    std::vector<double> times;
    std::vector<std::uint32_t> steps;
    for (const std::uint32_t m : group_sizes) {
      times.push_back(bench::row_time(rows, workload.name, nodes,
                                      kWavelengths,
                                      "m" + std::to_string(m)));
      steps.push_back(core::wrht_plan(nodes, m, kWavelengths).total_steps);
    }
    const double base = times.back();
    std::vector<std::string> row{workload.name};
    for (std::size_t i = 0; i < times.size(); ++i) {
      row.push_back(Table::num(times[i] / base, 3) + " (" +
                    std::to_string(steps[i]) + " steps)");
      csv.add_row({workload.name, std::to_string(group_sizes[i]),
                   std::to_string(steps[i]), Table::num(times[i], 6),
                   Table::num(times[i] / base, 4)});
    }
    table.add_row(row);
  }
  std::cout << table << "\n";

  std::printf(
      "Step counts across m: 5 / 4 / 3 / 3 — communication time decreases\n"
      "with larger groups and then stays flat, matching the paper's Fig. 4\n"
      "(the paper's prose approximates the 5:3 ratio as \"half\").\n");
  std::printf("CSV written to %s\n",
              bench::csv_path("fig4_grouped_nodes").c_str());
  bench::write_metrics_csv("fig4_grouped_nodes");
  return 0;
}
