#include "wrht/dnn/training.hpp"

#include "wrht/common/error.hpp"

namespace wrht::dnn {

Seconds compute_time(const Model& model, const TrainingConfig& config) {
  require(config.batch_per_worker >= 1, "compute_time: empty batch");
  require(config.gpu.sustained_gflops > 0.0,
          "compute_time: GPU throughput must be positive");
  const double gflops_fwd =
      model.gflops_per_sample() * config.batch_per_worker;
  const double gflops_total =
      gflops_fwd * (1.0 + config.gpu.backward_multiplier);
  return Seconds(gflops_total / config.gpu.sustained_gflops);
}

IterationBreakdown iteration_breakdown(const Model& model,
                                       const TrainingConfig& config,
                                       Seconds allreduce_time) {
  require(allreduce_time.count() >= 0.0,
          "iteration_breakdown: negative communication time");
  return IterationBreakdown{compute_time(model, config), allreduce_time};
}

std::uint64_t iterations_per_epoch(const TrainingConfig& config) {
  require(config.num_workers >= 1 && config.batch_per_worker >= 1,
          "iterations_per_epoch: bad config");
  const std::uint64_t global_batch =
      static_cast<std::uint64_t>(config.num_workers) *
      config.batch_per_worker;
  return (config.dataset_samples + global_batch - 1) / global_batch;
}

Seconds epoch_time(const Model& model, const TrainingConfig& config,
                   Seconds allreduce_time) {
  const IterationBreakdown iter =
      iteration_breakdown(model, config, allreduce_time);
  return iter.total() * static_cast<double>(iterations_per_epoch(config));
}

}  // namespace wrht::dnn
