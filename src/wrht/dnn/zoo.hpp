// Model zoo: the four DNN workloads of the paper's evaluation —
// BEiT-L (~307M params), VGG16 (~138M), AlexNet (~62.3M), ResNet50 (~25.6M).
// Architectures are assembled layer by layer from their published shapes.
#pragma once

#include <vector>

#include "wrht/dnn/model.hpp"

namespace wrht::dnn {

[[nodiscard]] Model alexnet();
[[nodiscard]] Model vgg16();
[[nodiscard]] Model resnet50();
[[nodiscard]] Model beit_large();

/// BERT-Large (the paper's introduction motivates distributed training
/// with "large-scale DNNs, such as Bert"): 24 encoder blocks, hidden 1024,
/// WordPiece vocabulary 30522; ~335M parameters.
[[nodiscard]] Model bert_large();

/// The paper's evaluation set, in the order used by the figures
/// (BEiT, VGG16, AlexNet, ResNet50).
[[nodiscard]] std::vector<Model> paper_workloads();

}  // namespace wrht::dnn
