// Data-parallel training-iteration time model.
//
// Mirrors the paper's methodology: computation time comes from a profiled
// throughput model (the paper used TensorFlow profiles on TITAN XP GPUs; we
// use a FLOP/throughput estimate of the same class of GPU), while the
// All-reduce communication time comes from the interconnect simulators.
// The paper's key observation holds by construction: the All-reduce payload
// depends only on the model's parameter count, not on the dataset.
#pragma once

#include <cstdint>

#include "wrht/common/units.hpp"
#include "wrht/dnn/model.hpp"

namespace wrht::dnn {

struct GpuProfile {
  /// Sustained throughput of one worker GPU in GFLOP/s. The default is a
  /// TITAN XP-class card (~12.1 TFLOP/s peak) at 45% sustained efficiency.
  double sustained_gflops = 12100.0 * 0.45;
  /// Backward pass costs this multiple of the forward pass.
  double backward_multiplier = 2.0;
};

struct TrainingConfig {
  std::uint32_t batch_per_worker = 32;
  std::uint64_t dataset_samples = 1'281'167;  ///< ImageNet-1k train split
  std::uint32_t num_workers = 1;
  GpuProfile gpu{};
};

struct IterationBreakdown {
  Seconds compute{0.0};
  Seconds communication{0.0};
  [[nodiscard]] Seconds total() const { return compute + communication; }
  /// Fraction of the iteration spent in All-reduce (the paper's 50-90%
  /// motivation figure for electrical interconnects at scale).
  [[nodiscard]] double comm_fraction() const {
    const double t = total().count();
    return t > 0.0 ? communication.count() / t : 0.0;
  }
};

/// Compute time of one forward+backward pass over a worker's batch.
[[nodiscard]] Seconds compute_time(const Model& model,
                                   const TrainingConfig& config);

/// Combines compute with an All-reduce time obtained from a simulator.
[[nodiscard]] IterationBreakdown iteration_breakdown(
    const Model& model, const TrainingConfig& config, Seconds allreduce_time);

/// Iterations per epoch under data parallelism.
[[nodiscard]] std::uint64_t iterations_per_epoch(const TrainingConfig& config);

/// One-epoch training time (the granularity of the paper's evaluation).
[[nodiscard]] Seconds epoch_time(const Model& model,
                                 const TrainingConfig& config,
                                 Seconds allreduce_time);

}  // namespace wrht::dnn
