// Gradient bucketing and compute/communication overlap (DDP-style).
//
// Frameworks do not wait for the full backward pass before reducing: they
// pack gradients into buckets in reverse layer order and launch each
// bucket's All-reduce as soon as it is ready, overlapping communication
// with the remaining backward compute. This module models that pipeline on
// top of the schedule simulators: bucketize() splits a model's gradients,
// and overlapped_iteration() composes per-bucket All-reduce times with the
// backward-pass timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/dnn/model.hpp"
#include "wrht/dnn/training.hpp"

namespace wrht::dnn {

struct BucketPlan {
  /// Gradient element (parameter) count per bucket, in reduction order
  /// (reverse layer order — the order backprop produces gradients).
  std::vector<std::uint64_t> bucket_params;

  [[nodiscard]] std::size_t buckets() const { return bucket_params.size(); }
  [[nodiscard]] std::uint64_t total_params() const;
};

/// Greedily packs layers (reverse order) into buckets of at most
/// `max_params_per_bucket` parameters; a single layer larger than the cap
/// gets its own bucket. Every layer's parameters land in exactly one
/// bucket.
[[nodiscard]] BucketPlan bucketize(const Model& model,
                                   std::uint64_t max_params_per_bucket);

struct OverlapResult {
  Seconds iteration{0.0};       ///< forward + backward + exposed comm
  Seconds exposed_comm{0.0};    ///< communication not hidden by backward
  Seconds total_comm{0.0};      ///< sum of bucket All-reduce times
  /// 1 - exposed/total: fraction of communication hidden behind compute.
  [[nodiscard]] double overlap_efficiency() const {
    return total_comm.count() > 0.0
               ? 1.0 - exposed_comm.count() / total_comm.count()
               : 1.0;
  }
};

/// Pipelines the buckets against the backward pass: bucket i becomes ready
/// when its share of backward compute finishes (proportional to cumulative
/// parameters); the network serializes bucket All-reduces
/// (`bucket_comm_times`, one entry per bucket in plan order). The
/// iteration ends when both backward compute and the last bucket's
/// All-reduce are done, after the forward pass.
[[nodiscard]] OverlapResult overlapped_iteration(
    const Model& model, const TrainingConfig& config, const BucketPlan& plan,
    const std::vector<Seconds>& bucket_comm_times);

}  // namespace wrht::dnn
