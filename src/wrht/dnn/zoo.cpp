#include "wrht/dnn/zoo.hpp"

#include <string>

namespace wrht::dnn {

Model alexnet() {
  // Krizhevsky et al. 2012, single-tower ImageNet variant; 62.38M params.
  Model m("AlexNet", 0.7);  // ~0.7 GFLOPs forward per 224x224 image
  m.add_conv("conv1", 11, 3, 96);
  m.add_conv("conv2", 5, 96, 256);
  m.add_conv("conv3", 3, 256, 384);
  m.add_conv("conv4", 3, 384, 384);
  m.add_conv("conv5", 3, 384, 256);
  m.add_fc("fc6", 9216, 4096);
  m.add_fc("fc7", 4096, 4096);
  m.add_fc("fc8", 4096, 1000);
  return m;
}

Model vgg16() {
  // Simonyan & Zisserman 2014; 138.36M parameters.
  Model m("VGG16", 15.5);  // ~15.5 GFLOPs forward per image
  const std::uint32_t cfg[][2] = {
      {3, 64},    {64, 64},   {64, 128},  {128, 128}, {128, 256},
      {256, 256}, {256, 256}, {256, 512}, {512, 512}, {512, 512},
      {512, 512}, {512, 512}, {512, 512}};
  int idx = 1;
  for (const auto& c : cfg) {
    m.add_conv("conv" + std::to_string(idx++), 3, c[0], c[1]);
  }
  m.add_fc("fc1", 25088, 4096);
  m.add_fc("fc2", 4096, 4096);
  m.add_fc("fc3", 4096, 1000);
  return m;
}

namespace {

/// ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand, each followed by BN;
/// optional 1x1 downsample projection on the skip path.
void add_bottleneck(Model& m, const std::string& name, std::uint32_t in_ch,
                    std::uint32_t mid_ch, std::uint32_t out_ch,
                    bool downsample) {
  m.add_conv(name + ".conv1", 1, in_ch, mid_ch, /*bias=*/false);
  m.add_norm(name + ".bn1", mid_ch);
  m.add_conv(name + ".conv2", 3, mid_ch, mid_ch, /*bias=*/false);
  m.add_norm(name + ".bn2", mid_ch);
  m.add_conv(name + ".conv3", 1, mid_ch, out_ch, /*bias=*/false);
  m.add_norm(name + ".bn3", out_ch);
  if (downsample) {
    m.add_conv(name + ".downsample", 1, in_ch, out_ch, /*bias=*/false);
    m.add_norm(name + ".downsample.bn", out_ch);
  }
}

void add_stage(Model& m, const std::string& name, std::uint32_t blocks,
               std::uint32_t in_ch, std::uint32_t mid_ch,
               std::uint32_t out_ch) {
  add_bottleneck(m, name + ".0", in_ch, mid_ch, out_ch, /*downsample=*/true);
  for (std::uint32_t b = 1; b < blocks; ++b) {
    add_bottleneck(m, name + "." + std::to_string(b), out_ch, mid_ch, out_ch,
                   /*downsample=*/false);
  }
}

}  // namespace

Model resnet50() {
  // He et al. 2015; 25.56M parameters (conv bias-free, 2-param BN).
  Model m("ResNet50", 4.1);  // ~4.1 GFLOPs forward per image
  m.add_conv("conv1", 7, 3, 64, /*bias=*/false);
  m.add_norm("bn1", 64);
  add_stage(m, "layer1", 3, 64, 64, 256);
  add_stage(m, "layer2", 4, 256, 128, 512);
  add_stage(m, "layer3", 6, 512, 256, 1024);
  add_stage(m, "layer4", 3, 1024, 512, 2048);
  m.add_fc("fc", 2048, 1000);
  return m;
}

namespace {

/// One transformer encoder block (pre-norm ViT/BEiT style) with hidden
/// size h and MLP expansion 4h, including BEiT's per-block layer-scale
/// parameters and relative-position bias table.
void add_transformer_block(Model& m, const std::string& name, std::uint32_t h,
                           std::uint32_t heads, std::uint32_t rel_pos_table) {
  m.add_norm(name + ".ln1", h / 2);  // LayerNorm has 2h params total
  m.add_fc(name + ".attn.qkv", h, 3ull * h);
  m.add_fc(name + ".attn.proj", h, h);
  m.add_layer(Layer{name + ".attn.rel_pos", LayerKind::kAttention,
                    static_cast<std::uint64_t>(rel_pos_table) * heads});
  m.add_norm(name + ".ln2", h / 2);
  m.add_fc(name + ".mlp.fc1", h, 4ull * h);
  m.add_fc(name + ".mlp.fc2", 4ull * h, h);
  m.add_layer(Layer{name + ".layerscale", LayerKind::kOther, 2ull * h});
}

}  // namespace

Model beit_large() {
  // Bao et al. 2022, BEiT-Large: 24 blocks, hidden 1024, 16 heads,
  // 16x16 patches on 224x224 inputs; ~307M parameters.
  Model m("BEiT-L", 61.3);  // ~61 GFLOPs forward per image (ViT-L/16 class)
  const std::uint32_t h = 1024;
  const std::uint32_t heads = 16;
  const std::uint32_t patches = 14 * 14;
  // (2*14-1)^2 relative distances + 3 special positions.
  const std::uint32_t rel_pos_table = 27 * 27 + 3;

  m.add_layer(Layer{"patch_embed", LayerKind::kEmbedding,
                    16ull * 16 * 3 * h + h});
  m.add_layer(Layer{"cls_mask_tokens", LayerKind::kEmbedding, 2ull * h});
  m.add_layer(Layer{"pos_embed", LayerKind::kEmbedding,
                    static_cast<std::uint64_t>(patches + 1) * h});
  for (std::uint32_t b = 0; b < 24; ++b) {
    add_transformer_block(m, "block" + std::to_string(b), h, heads,
                          rel_pos_table);
  }
  m.add_norm("ln_final", h / 2);
  m.add_fc("head", h, 8192);  // BEiT pre-training visual-token head
  return m;
}

Model bert_large() {
  // Devlin et al. 2018, BERT-Large (whole-word uncased): ~335M params.
  Model m("BERT-L", 80.0);  // ~80 GFLOPs forward per 512-token sequence
  const std::uint32_t h = 1024;
  m.add_layer(Layer{"embeddings.word", LayerKind::kEmbedding, 30522ull * h});
  m.add_layer(Layer{"embeddings.position", LayerKind::kEmbedding, 512ull * h});
  m.add_layer(Layer{"embeddings.token_type", LayerKind::kEmbedding, 2ull * h});
  m.add_norm("embeddings.ln", h / 2);
  for (std::uint32_t b = 0; b < 24; ++b) {
    const std::string name = "encoder" + std::to_string(b);
    m.add_fc(name + ".attn.qkv", h, 3ull * h);
    m.add_fc(name + ".attn.proj", h, h);
    m.add_norm(name + ".ln1", h / 2);
    m.add_fc(name + ".mlp.fc1", h, 4ull * h);
    m.add_fc(name + ".mlp.fc2", 4ull * h, h);
    m.add_norm(name + ".ln2", h / 2);
  }
  m.add_fc("pooler", h, h);
  return m;
}

std::vector<Model> paper_workloads() {
  std::vector<Model> models;
  models.push_back(beit_large());
  models.push_back(vgg16());
  models.push_back(alexnet());
  models.push_back(resnet50());
  return models;
}

}  // namespace wrht::dnn
