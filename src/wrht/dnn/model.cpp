#include "wrht/dnn/model.hpp"

#include "wrht/common/error.hpp"

namespace wrht::dnn {

Model::Model(std::string name, double gflops_per_sample)
    : name_(std::move(name)), gflops_(gflops_per_sample) {
  require(gflops_ > 0.0, "Model: gflops_per_sample must be positive");
}

void Model::add_layer(Layer layer) {
  require(!layer.name.empty(), "Model: layer needs a name");
  layers_.push_back(std::move(layer));
}

std::uint64_t Model::add_conv(const std::string& name, std::uint32_t kernel,
                              std::uint32_t in_ch, std::uint32_t out_ch,
                              bool bias) {
  const std::uint64_t params =
      static_cast<std::uint64_t>(kernel) * kernel * in_ch * out_ch +
      (bias ? out_ch : 0);
  add_layer(Layer{name, LayerKind::kConv, params});
  return params;
}

std::uint64_t Model::add_fc(const std::string& name, std::uint64_t in_features,
                            std::uint64_t out_features, bool bias) {
  const std::uint64_t params =
      in_features * out_features + (bias ? out_features : 0);
  add_layer(Layer{name, LayerKind::kFullyConnected, params});
  return params;
}

std::uint64_t Model::add_norm(const std::string& name,
                              std::uint32_t channels) {
  const std::uint64_t params = 2ull * channels;  // scale + shift
  add_layer(Layer{name, LayerKind::kNorm, params});
  return params;
}

std::uint64_t Model::parameter_count() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) total += l.parameters;
  return total;
}

Bytes Model::gradient_bytes(std::uint32_t bytes_per_param) const {
  require(bytes_per_param >= 1, "Model: bytes_per_param must be >= 1");
  return Bytes(parameter_count() * bytes_per_param);
}

}  // namespace wrht::dnn
