#include "wrht/dnn/bucketing.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"

namespace wrht::dnn {

std::uint64_t BucketPlan::total_params() const {
  std::uint64_t total = 0;
  for (const auto p : bucket_params) total += p;
  return total;
}

BucketPlan bucketize(const Model& model,
                     std::uint64_t max_params_per_bucket) {
  require(max_params_per_bucket >= 1, "bucketize: bucket cap must be >= 1");
  require(!model.layers().empty(), "bucketize: model has no layers");

  BucketPlan plan;
  std::uint64_t current = 0;
  // Reverse layer order: backprop computes the last layer's gradient first.
  for (auto it = model.layers().rbegin(); it != model.layers().rend(); ++it) {
    if (it->parameters == 0) continue;
    if (current > 0 && current + it->parameters > max_params_per_bucket) {
      plan.bucket_params.push_back(current);
      current = 0;
    }
    current += it->parameters;
    if (current >= max_params_per_bucket) {
      plan.bucket_params.push_back(current);
      current = 0;
    }
  }
  if (current > 0) plan.bucket_params.push_back(current);
  return plan;
}

OverlapResult overlapped_iteration(
    const Model& model, const TrainingConfig& config, const BucketPlan& plan,
    const std::vector<Seconds>& bucket_comm_times) {
  require(bucket_comm_times.size() == plan.buckets(),
          "overlapped_iteration: one comm time per bucket required");
  require(plan.total_params() == model.parameter_count(),
          "overlapped_iteration: bucket plan does not cover the model");

  // Split compute into forward (1 share) and backward (backward_multiplier
  // shares) of the profiled total.
  const double total_compute = compute_time(model, config).count();
  const double bwd_fraction = config.gpu.backward_multiplier /
                              (1.0 + config.gpu.backward_multiplier);
  const double t_forward = total_compute * (1.0 - bwd_fraction);
  const double t_backward = total_compute * bwd_fraction;

  // Bucket i is ready when its cumulative parameter share of backward is
  // produced; All-reduces serialize on the interconnect.
  OverlapResult result;
  const double total_params = static_cast<double>(plan.total_params());
  double produced = 0.0;
  double network_free = 0.0;
  double last_finish = 0.0;
  for (std::size_t i = 0; i < plan.buckets(); ++i) {
    produced += static_cast<double>(plan.bucket_params[i]);
    const double ready = t_backward * (produced / total_params);
    const double start = std::max(ready, network_free);
    const double comm = bucket_comm_times[i].count();
    require(comm >= 0.0, "overlapped_iteration: negative comm time");
    network_free = start + comm;
    last_finish = network_free;
    result.total_comm += bucket_comm_times[i];
  }

  result.exposed_comm = Seconds(std::max(0.0, last_finish - t_backward));
  result.iteration = Seconds(t_forward + t_backward) + result.exposed_comm;
  return result;
}

}  // namespace wrht::dnn
