// DNN model descriptions for the paper's workloads.
//
// Distributed data-parallel All-reduce traffic is governed by the gradient
// payload: 4 bytes per trainable parameter per iteration. Models are built
// layer by layer so parameter totals come from real architecture shapes,
// not hard-coded constants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::dnn {

enum class LayerKind {
  kConv,
  kFullyConnected,
  kNorm,       ///< batch/layer norm
  kEmbedding,  ///< patch/positional embeddings
  kAttention,  ///< fused attention block bookkeeping
  kOther,
};

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kOther;
  std::uint64_t parameters = 0;
};

class Model {
 public:
  Model(std::string name, double gflops_per_sample);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  /// Forward-pass compute per sample (used by the training-time model);
  /// the backward pass is costed at 2x forward.
  [[nodiscard]] double gflops_per_sample() const { return gflops_; }

  void add_layer(Layer layer);

  /// Helpers that append common layer shapes and return the added params.
  std::uint64_t add_conv(const std::string& name, std::uint32_t kernel,
                         std::uint32_t in_ch, std::uint32_t out_ch,
                         bool bias = true);
  std::uint64_t add_fc(const std::string& name, std::uint64_t in_features,
                       std::uint64_t out_features, bool bias = true);
  std::uint64_t add_norm(const std::string& name, std::uint32_t channels);

  [[nodiscard]] std::uint64_t parameter_count() const;

  /// All-reduce payload for one gradient synchronization (float32).
  [[nodiscard]] Bytes gradient_bytes(std::uint32_t bytes_per_param = 4) const;

 private:
  std::string name_;
  double gflops_;
  std::vector<Layer> layers_;
};

}  // namespace wrht::dnn
