// Discrete-event simulation kernel shared by the optical and electrical
// network models. Single-threaded, deterministic.
#pragma once

#include <cstdint>

#include "wrht/common/units.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/sim/event_queue.hpp"

namespace wrht::sim {

class Simulator {
 public:
  Simulator() = default;
  /// Starts the clock at `start` instead of zero — a job entering a
  /// long-lived fabric simulation mid-stream prices against absolute time.
  explicit Simulator(Seconds start) : now_(start) {}

  /// Current simulation time.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Drops every pending event and rewinds the clock to `start`. The
  /// lifetime events_fired() counter survives — it tracks the simulator,
  /// not one run. Makes an engine-owned simulator reusable across
  /// execute() calls without reconstructing captured state.
  void reset(Seconds start = Seconds(0.0));

  /// Schedules `fn` to fire `delay` after the current time.
  EventId schedule_in(Seconds delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (must be >= now).
  EventId schedule_at(Seconds when, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Pre-sizes the event queue for `n` total scheduled events. Purely an
  /// allocation hint — callers that can bound their event count (e.g. the
  /// packet simulator's initial injection burst) avoid heap regrowth.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Runs until no events remain. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue is empty or time would exceed `deadline`;
  /// events at exactly `deadline` still fire.
  std::uint64_t run_until(Seconds deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Attaches a counter registry: each run()/run_until() adds the events it
  /// fired to "sim.events_fired". Null (the default) costs nothing.
  void set_counters(obs::Counters* counters) { counters_ = counters; }

 private:
  EventQueue queue_;
  Seconds now_{0.0};
  std::uint64_t fired_ = 0;
  obs::Counters* counters_ = nullptr;
};

}  // namespace wrht::sim
