#include "wrht/sim/simulator.hpp"

#include "wrht/common/error.hpp"

namespace wrht::sim {

void Simulator::reset(Seconds start) {
  queue_.clear();
  now_ = start;
}

EventId Simulator::schedule_in(Seconds delay, EventFn fn) {
  require(delay.count() >= 0.0, "Simulator: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Seconds when, EventFn fn) {
  require(when >= now_, "Simulator: schedule_at in the past");
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run() {
  std::uint64_t fired_now = 0;
  while (!queue_.empty()) {
    auto [time, fn] = queue_.pop();
    // Monotonicity is the contract the timing verifiers build on: an event
    // firing before the current time would silently corrupt every price
    // derived from now(). Cheap to enforce on every pop, so enforce it.
    require(time >= now_, "Simulator: event fired before current time");
    now_ = time;
    fn();
    ++fired_;
    ++fired_now;
  }
  if (counters_ != nullptr) counters_->add("sim.events_fired", fired_now);
  return fired_now;
}

std::uint64_t Simulator::run_until(Seconds deadline) {
  std::uint64_t fired_now = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [time, fn] = queue_.pop();
    require(time >= now_, "Simulator: event fired before current time");
    now_ = time;
    fn();
    ++fired_;
    ++fired_now;
  }
  if (now_ < deadline) now_ = deadline;
  if (counters_ != nullptr) counters_->add("sim.events_fired", fired_now);
  return fired_now;
}

}  // namespace wrht::sim
