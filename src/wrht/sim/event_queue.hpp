// Priority event queue for the discrete-event kernel.
//
// Events are (time, sequence, callback); the sequence number breaks ties so
// same-time events fire in insertion order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`; returns a cancellable id.
  EventId schedule(Seconds when, EventFn fn);

  /// Marks the event cancelled; it is skipped when popped. O(1).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Seconds next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  struct Fired {
    Seconds time;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    double time;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<EventFn> callbacks_;   // indexed by EventId
  std::vector<bool> cancelled_;      // indexed by EventId
  std::size_t live_count_ = 0;
};

}  // namespace wrht::sim
