// Priority event queue for the discrete-event kernel.
//
// Events are (time, sequence, callback); the sequence number breaks ties so
// same-time events fire in insertion order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "wrht/common/units.hpp"

namespace wrht::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`; returns a cancellable id.
  EventId schedule(Seconds when, EventFn fn);

  /// Marks the event cancelled; it is skipped when popped. O(1).
  /// Cancelling an id that already fired (or was already cancelled) is a
  /// no-op — long-lived service loops cancel completion events without
  /// tracking whether they raced the firing.
  void cancel(EventId id);

  /// Drops every event (fired, live and cancelled) and releases their
  /// storage; ids from before the clear are no longer valid.
  void clear();

  /// Pre-sizes heap and callback storage for `n` total scheduled events
  /// (not just concurrently-live ones — ids index into callback storage).
  void reserve(std::size_t n);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Seconds next_time() const;

  /// Pops and returns the earliest live event. Requires !empty().
  /// The popped callback's slot is released, so captured state does not
  /// accumulate for the lifetime of the queue.
  struct Fired {
    Seconds time;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    double time;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void drop_cancelled() const;

  // Min-heap maintained with std::push_heap/pop_heap over a plain vector
  // (instead of std::priority_queue) so reserve() can pre-size it.
  mutable std::vector<Entry> heap_;
  std::vector<EventFn> callbacks_;   // indexed by EventId
  std::vector<bool> cancelled_;      // indexed by EventId
  std::size_t live_count_ = 0;
};

}  // namespace wrht::sim
