#include "wrht/sim/event_queue.hpp"

#include <algorithm>
#include <functional>

#include "wrht/common/error.hpp"

namespace wrht::sim {

EventId EventQueue::schedule(Seconds when, EventFn fn) {
  require(static_cast<bool>(fn), "EventQueue: null callback");
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push_back(Entry{when.count(), id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  require(id < cancelled_.size(), "EventQueue: unknown event id");
  // cancelled_ doubles as a fired marker (pop() sets it), so cancelling an
  // already-fired id neither double-decrements live_count_ nor resurrects
  // the slot.
  if (!cancelled_[id]) {
    cancelled_[id] = true;
    --live_count_;
  }
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  callbacks_.reserve(n);
  cancelled_.reserve(n);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.front().id]) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Seconds EventQueue::next_time() const {
  drop_cancelled();
  require(!heap_.empty(), "EventQueue: next_time on empty queue");
  return Seconds(heap_.front().time);
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  require(!heap_.empty(), "EventQueue: pop on empty queue");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  heap_.pop_back();
  --live_count_;
  EventFn fn = std::move(callbacks_[top.id]);
  callbacks_[top.id] = nullptr;   // release captured state eagerly
  cancelled_[top.id] = true;      // a late cancel() of this id is a no-op
  return Fired{Seconds(top.time), std::move(fn)};
}

}  // namespace wrht::sim
