#include "wrht/sim/event_queue.hpp"

#include "wrht/common/error.hpp"

namespace wrht::sim {

EventId EventQueue::schedule(Seconds when, EventFn fn) {
  require(static_cast<bool>(fn), "EventQueue: null callback");
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push(Entry{when.count(), id});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  require(id < cancelled_.size(), "EventQueue: unknown event id");
  if (!cancelled_[id]) {
    cancelled_[id] = true;
    --live_count_;
  }
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Seconds EventQueue::next_time() const {
  require(!empty(), "EventQueue: next_time on empty queue");
  return Seconds(heap_.top().time);
}

EventQueue::Fired EventQueue::pop() {
  require(!empty(), "EventQueue: pop on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  --live_count_;
  return Fired{Seconds(top.time), std::move(callbacks_[top.id])};
}

}  // namespace wrht::sim
