// Per-tenant JCT blame for shared-fabric service runs.
//
// Each completed job's JCT decomposes exactly:
//
//   jct = queueing + fragmentation            (the wait on the queue)
//       + reconfiguration + conversion + transmission   (the service time)
//
// The wait split replays the wavelength allocator over the run's
// grant/release history: an interval of a job's wait counts as
// *fragmentation* when the fabric had enough total free width but no
// contiguous slice wide enough (the allocator's free_width/largest_free
// signal), and as *queueing* otherwise (genuinely full fabric or
// policy-ordered head-of-line blocking). The service split re-prices the
// granted algorithm with the same wrht::plan closed forms the service
// billed, so the identity holds by construction — and is still asserted
// by verify::check_blame_identity, which gates accounting drift between
// the service and this module.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wrht/diag/blame.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/svc/service.hpp"

namespace wrht::diag {

/// One tenant's aggregated JCT attribution.
struct TenantBlame {
  std::uint32_t tenant = 0;
  std::uint64_t jobs = 0;
  Seconds jct{0.0};  ///< summed JCT of the tenant's jobs
  BlameTotals totals;
};

struct ServiceBlame {
  std::string policy;  ///< admission policy name
  std::uint32_t fabric_wavelengths = 0;
  std::uint64_t jobs = 0;
  /// Sum of all completed jobs' JCTs — the identity's right-hand side.
  Seconds total_jct{0.0};
  BlameTotals categories;
  std::vector<TenantBlame> tenants;  ///< sorted by tenant id

  [[nodiscard]] double attributed() const { return categories.total(); }
  /// Human-readable per-tenant blame table.
  [[nodiscard]] std::string to_string() const;
};

/// Attributes every completed job's JCT. `planner` must be the cost model
/// the service ran with (ServiceConfig::planner); the per-job granted
/// width overrides its wavelength count, exactly as the service priced.
[[nodiscard]] ServiceBlame build_service_blame(
    const svc::ServiceReport& report, const plan::PlannerOptions& planner,
    std::uint32_t fabric_wavelengths);

/// Serializes as a "service"-kind wrht-blame-1 document (byte
/// deterministic; diffable against any other blame report).
void write_service_blame_json(const ServiceBlame& blame, std::ostream& out);
void write_service_blame_file(const ServiceBlame& blame,
                              const std::string& path);

}  // namespace wrht::diag
