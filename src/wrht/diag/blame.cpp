#include "wrht/diag/blame.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "wrht/common/error.hpp"
#include "wrht/obs/trace_json.hpp"

namespace wrht::diag {

std::string to_string(BlameCategory category) {
  switch (category) {
    case BlameCategory::kQueueing:
      return "queueing";
    case BlameCategory::kFragmentation:
      return "fragmentation";
    case BlameCategory::kReconfiguration:
      return "reconfiguration";
    case BlameCategory::kConversion:
      return "conversion";
    case BlameCategory::kTransmission:
      return "transmission";
    case BlameCategory::kProcessing:
      return "processing";
    case BlameCategory::kStragglerWait:
      return "straggler_wait";
  }
  return "unknown";
}

const std::array<BlameCategory, kNumBlameCategories>& all_blame_categories() {
  static const std::array<BlameCategory, kNumBlameCategories> kAll = {
      BlameCategory::kQueueing,        BlameCategory::kFragmentation,
      BlameCategory::kReconfiguration, BlameCategory::kConversion,
      BlameCategory::kTransmission,    BlameCategory::kProcessing,
      BlameCategory::kStragglerWait};
  return kAll;
}

double BlameTotals::total() const {
  double sum = 0.0;
  for (const double s : seconds) sum += s;
  return sum;
}

BlameTotals& BlameTotals::operator+=(const BlameTotals& other) {
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    seconds[i] += other.seconds[i];
  }
  return *this;
}

namespace {

/// One lane's round chain within one step. std::map keys keep lanes in
/// lexicographic order, which is also the deterministic tie-break when two
/// lanes bound a step equally.
struct LaneChain {
  std::vector<const obs::RoundTrace*> rounds;
  double total = 0.0;
};

using StepLanes = std::map<std::string, LaneChain>;

/// rounds grouped by step id, then lane, preserving emission order (the
/// engines emit each lane's rounds in time order).
std::map<std::uint32_t, StepLanes> group_rounds(const obs::TransferLog& log) {
  std::map<std::uint32_t, StepLanes> steps;
  for (const obs::RoundTrace& round : log.rounds()) {
    LaneChain& chain = steps[round.step][round.lane];
    chain.rounds.push_back(&round);
    chain.total += round.duration.count();
  }
  return steps;
}

/// The step's bounding lane: largest round-duration sum, ties to the
/// lexicographically smallest lane name (map order + strict >).
const LaneChain* bounding_lane(const StepLanes& lanes,
                               const std::string** name_out) {
  const LaneChain* best = nullptr;
  for (const auto& [name, chain] : lanes) {
    if (best == nullptr || chain.total > best->total) {
      best = &chain;
      if (name_out != nullptr) *name_out = &name;
    }
  }
  return best;
}

/// Generic what-if re-pricing: recompute every round's cost with
/// `round_cost`, re-chain each lane, re-max the lanes per step, and re-sum
/// the steps — the longest path of the DAG with the edit applied.
template <typename RoundCost>
double recompute_makespan(const obs::TransferLog& log, RoundCost round_cost) {
  double total = 0.0;
  for (const auto& [step, lanes] : group_rounds(log)) {
    double slowest = 0.0;
    for (const auto& [name, chain] : lanes) {
      double lane_total = 0.0;
      for (const obs::RoundTrace* round : chain.rounds) {
        lane_total += std::max(0.0, round_cost(*round));
      }
      slowest = std::max(slowest, lane_total);
    }
    total += slowest;
  }
  return total;
}

}  // namespace

BlameReport build_blame(const obs::TransferLog& log) {
  require(!log.steps().empty(),
          "build_blame: the transfer log records no steps — was the engine "
          "run with probe.transfers attached?");

  BlameReport report;
  report.backend = log.context().backend;
  report.reconfig_policy = log.context().reconfig_policy;
  report.mrr_reconfig_delay = log.context().mrr_reconfig_delay;
  report.oeo_delay = log.context().oeo_delay;
  report.steps = log.steps().size();
  report.rounds = log.rounds().size();
  report.transfers = log.transfers().size();

  // The measured makespan: observed step durations, summed in step order
  // (steps are barriers, so this is the run's longest path by
  // construction).
  Seconds total(0.0);
  for (const obs::StepTrace& step : log.steps()) total += step.duration;
  report.total_time = total;

  std::map<std::string, LaneBlame> lanes;
  for (const auto& [step, step_lanes] : group_rounds(log)) {
    const std::string* bound_name = nullptr;
    const LaneChain* bound = bounding_lane(step_lanes, &bound_name);
    if (bound == nullptr) continue;

    // Attribute the bounding lane's chain — the step's critical path.
    for (const obs::RoundTrace* round : bound->rounds) {
      const double components =
          round->reconfig.count() + round->conversion.count() +
          round->serialization.count() + round->processing.count();
      const double residual = round->duration.count() - components;
      report.categories[BlameCategory::kReconfiguration] +=
          round->reconfig.count();
      report.categories[BlameCategory::kConversion] +=
          round->conversion.count();
      report.categories[BlameCategory::kTransmission] +=
          round->serialization.count();
      report.categories[BlameCategory::kProcessing] +=
          round->processing.count();
      report.categories[BlameCategory::kStragglerWait] += residual;

      CriticalRound critical;
      critical.step = round->step;
      critical.lane = *bound_name;
      critical.round = round->round;
      critical.start = round->start;
      critical.duration = round->duration;
      critical.reconfig = round->reconfig;
      critical.conversion = round->conversion;
      critical.serialization = round->serialization;
      critical.processing = round->processing;
      critical.retune = round->retune;
      report.critical_path.push_back(std::move(critical));
    }

    // Per-lane resource attribution: own components plus the shortfall
    // against the bounding lane as straggler wait.
    for (const auto& [name, chain] : step_lanes) {
      LaneBlame& lane = lanes[name];
      lane.lane = name;
      lane.busy += Seconds(chain.total);
      for (const obs::RoundTrace* round : chain.rounds) {
        lane.totals[BlameCategory::kReconfiguration] +=
            round->reconfig.count();
        lane.totals[BlameCategory::kConversion] += round->conversion.count();
        lane.totals[BlameCategory::kTransmission] +=
            round->serialization.count();
        lane.totals[BlameCategory::kProcessing] += round->processing.count();
        lane.totals[BlameCategory::kStragglerWait] +=
            round->duration.count() -
            (round->reconfig.count() + round->conversion.count() +
             round->serialization.count() + round->processing.count());
      }
      lane.totals[BlameCategory::kStragglerWait] +=
          bound->total - chain.total;
    }
  }

  report.lanes.reserve(lanes.size());
  for (auto& [name, lane] : lanes) report.lanes.push_back(std::move(lane));
  return report;
}

Seconds what_if_zero(const obs::TransferLog& log, BlameCategory category) {
  return Seconds(recompute_makespan(log, [&](const obs::RoundTrace& r) {
    switch (category) {
      case BlameCategory::kReconfiguration:
        return r.duration.count() - r.reconfig.count();
      case BlameCategory::kConversion:
        return r.duration.count() - r.conversion.count();
      case BlameCategory::kTransmission:
        return r.duration.count() - r.serialization.count();
      case BlameCategory::kProcessing:
        return r.duration.count() - r.processing.count();
      case BlameCategory::kStragglerWait:
        // Drop the in-round residual; the cross-lane straggler component
        // disappears on its own when the lanes are re-maxed.
        return r.reconfig.count() + r.conversion.count() +
               r.serialization.count() + r.processing.count();
      case BlameCategory::kQueueing:
      case BlameCategory::kFragmentation:
        return r.duration.count();  // service-level; not on engine rounds
    }
    return r.duration.count();
  }));
}

Seconds what_if_on_retune(const obs::TransferLog& log) {
  return Seconds(recompute_makespan(log, [](const obs::RoundTrace& r) {
    const double reconfig = r.retune ? r.full_reconfig.count() : 0.0;
    return r.duration.count() - r.reconfig.count() + reconfig;
  }));
}

std::string BlameReport::to_string() const {
  std::string out = "blame [" + backend + ", policy " + reconfig_policy +
                    "]\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-16s %12.6e s\n", "total",
                total_time.count());
  out += line;
  const double denom = total_time.count() > 0.0 ? total_time.count() : 1.0;
  for (const BlameCategory category : all_blame_categories()) {
    const double s = categories[category];
    if (s == 0.0) continue;
    std::snprintf(line, sizeof(line), "  %-16s %12.6e s  (%5.1f%%)\n",
                  diag::to_string(category).c_str(), s, 100.0 * s / denom);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  critical path: %zu rounds over %zu steps, %zu lanes\n",
                critical_path.size(), steps, lanes.size());
  out += line;
  return out;
}

void export_critical_path(const BlameReport& report,
                          obs::ChromeTraceSink& sink) {
  constexpr std::uint32_t kTrack = 0;
  sink.set_track_name(kTrack, "critical path");
  const CriticalRound* previous = nullptr;
  for (const CriticalRound& round : report.critical_path) {
    obs::TraceSpan span;
    span.name = "s" + std::to_string(round.step) + "/" + round.lane + "/r" +
                std::to_string(round.round);
    span.category = "blame";
    span.start = round.start;
    span.duration = round.duration;
    span.track = kTrack;
    span.num_args = {
        {"reconfiguration_us", round.reconfig.micros()},
        {"conversion_us", round.conversion.micros()},
        {"transmission_us", round.serialization.micros()},
        {"processing_us", round.processing.micros()},
        {"retune", round.retune ? 1.0 : 0.0}};
    sink.span(std::move(span));
    if (previous != nullptr) {
      obs::FlowArrow arrow;
      arrow.name = "critical path";
      arrow.category = "blame";
      arrow.start = previous->start + previous->duration;
      arrow.start_track = kTrack;
      arrow.finish = round.start;
      arrow.finish_track = kTrack;
      sink.add_flow(std::move(arrow));
    }
    previous = &round;
  }
}

}  // namespace wrht::diag
