#include "wrht/diag/blame_json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "wrht/common/error.hpp"

namespace wrht::diag {

namespace blame_detail {

std::string num17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace blame_detail

namespace {

using blame_detail::num17;

void write_categories(const BlameTotals& totals, const char* indent,
                      std::ostream& out) {
  bool first = true;
  for (const BlameCategory category : all_blame_categories()) {
    if (!first) out << ",\n";
    first = false;
    out << indent << "\"" << to_string(category)
        << "\": " << num17(totals[category]);
  }
  out << "\n";
}

/// Extracts the value of `"key": "..."` on `line`, empty when absent.
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return {};
  return line.substr(begin, end - begin);
}

/// Extracts the numeric value of `"key": <number>` on `line`.
bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* begin = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

/// The `"name":` token starting a section, if this line opens one.
std::string section_of(const std::string& line) {
  if (line.find(": {") == std::string::npos &&
      line.find(": [") == std::string::npos) {
    return {};
  }
  const std::size_t open = line.find('"');
  if (open == std::string::npos) return {};
  const std::size_t close = line.find('"', open + 1);
  if (close == std::string::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

void add_movers(const std::map<std::string, double>& base,
                const std::map<std::string, double>& other,
                double abs_threshold, std::vector<BlameMover>* out) {
  std::map<std::string, BlameMover> merged;
  for (const auto& [name, v] : base) {
    merged[name].name = name;
    merged[name].base = v;
  }
  for (const auto& [name, v] : other) {
    merged[name].name = name;
    merged[name].other = v;
  }
  for (const auto& [name, mover] : merged) {
    if (std::abs(mover.delta()) > abs_threshold) out->push_back(mover);
  }
  std::sort(out->begin(), out->end(),
            [](const BlameMover& a, const BlameMover& b) {
              if (std::abs(a.delta()) != std::abs(b.delta())) {
                return std::abs(a.delta()) > std::abs(b.delta());
              }
              return a.name < b.name;
            });
}

}  // namespace

void write_blame_json(
    const BlameReport& report,
    const std::vector<std::pair<std::string, double>>& what_if,
    std::ostream& out) {
  out << "{\n";
  out << "  \"schema\": \"" << kBlameSchema << "\",\n";
  out << "  \"kind\": \"run\",\n";
  out << "  \"backend\": \"" << report.backend << "\",\n";
  out << "  \"reconfig_policy\": \"" << report.reconfig_policy << "\",\n";
  out << "  \"mrr_reconfig_delay\": "
      << num17(report.mrr_reconfig_delay.count()) << ",\n";
  out << "  \"oeo_delay\": " << num17(report.oeo_delay.count()) << ",\n";
  out << "  \"steps\": " << report.steps << ",\n";
  out << "  \"rounds\": " << report.rounds << ",\n";
  out << "  \"transfers\": " << report.transfers << ",\n";
  out << "  \"total_time\": " << num17(report.total_time.count()) << ",\n";
  out << "  \"attributed_time\": " << num17(report.attributed()) << ",\n";
  out << "  \"categories\": {\n";
  write_categories(report.categories, "    ", out);
  out << "  },\n";
  out << "  \"what_if\": {\n";
  for (std::size_t i = 0; i < what_if.size(); ++i) {
    out << "    \"" << what_if[i].first << "\": " << num17(what_if[i].second)
        << (i + 1 < what_if.size() ? ",\n" : "\n");
  }
  out << "  },\n";
  out << "  \"lanes\": [\n";
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LaneBlame& lane = report.lanes[i];
    out << "    {\"lane\": \"" << lane.lane
        << "\", \"busy\": " << num17(lane.busy.count());
    for (const BlameCategory category : all_blame_categories()) {
      out << ", \"" << to_string(category)
          << "\": " << num17(lane.totals[category]);
    }
    out << "}" << (i + 1 < report.lanes.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  out << "  \"critical_path\": [\n";
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    const CriticalRound& r = report.critical_path[i];
    out << "    {\"step\": " << r.step << ", \"lane\": \"" << r.lane
        << "\", \"round\": " << r.round
        << ", \"start\": " << num17(r.start.count())
        << ", \"duration\": " << num17(r.duration.count())
        << ", \"reconfiguration\": " << num17(r.reconfig.count())
        << ", \"conversion\": " << num17(r.conversion.count())
        << ", \"transmission\": " << num17(r.serialization.count())
        << ", \"processing\": " << num17(r.processing.count())
        << ", \"retune\": " << (r.retune ? "true" : "false") << "}"
        << (i + 1 < report.critical_path.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
}

void write_blame_file(
    const BlameReport& report,
    const std::vector<std::pair<std::string, double>>& what_if,
    const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("write_blame_file: cannot open '" + path + "'");
  write_blame_json(report, what_if, out);
}

ParsedBlame read_blame_json(std::istream& in) {
  ParsedBlame parsed;
  std::string line;
  std::size_t line_number = 0;
  bool saw_schema = false;
  std::string section;  // "", "categories", "what_if", "lanes", ...
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    if (!section.empty()) {
      // A section closes on its bare `}` / `]` terminator line.
      const std::size_t first = line.find_first_not_of(" \t");
      if (line[first] == '}' || line[first] == ']') {
        section.clear();
        continue;
      }
      double value = 0.0;
      if (section == "categories" || section == "what_if") {
        const std::size_t open = line.find('"');
        const std::size_t close =
            open == std::string::npos ? std::string::npos
                                      : line.find('"', open + 1);
        if (close == std::string::npos) {
          throw Error("wrht-blame-1: line " + std::to_string(line_number) +
                      ": expected \"name\": value inside \"" + section +
                      "\"");
        }
        const std::string name = line.substr(open + 1, close - open - 1);
        if (!extract_number(line, name, &value)) {
          throw Error("wrht-blame-1: line " + std::to_string(line_number) +
                      ": no numeric value for \"" + name + "\"");
        }
        (section == "categories" ? parsed.categories
                                 : parsed.what_if)[name] = value;
      } else if (section == "lanes") {
        const std::string name = extract_string(line, "lane");
        if (name.empty() || !extract_number(line, "busy", &value)) {
          throw Error("wrht-blame-1: line " + std::to_string(line_number) +
                      ": malformed lane entry");
        }
        parsed.lanes[name] = value;
      } else if (section == "tenants") {
        double tenant = 0.0;
        if (!extract_number(line, "tenant", &tenant) ||
            !extract_number(line, "jct", &value)) {
          throw Error("wrht-blame-1: line " + std::to_string(line_number) +
                      ": malformed tenant entry");
        }
        parsed.tenants["tenant" +
                       std::to_string(static_cast<long long>(tenant))] =
            value;
      }
      // critical_path entries are not part of the diff surface; skipped.
      continue;
    }

    const std::string opened = section_of(line);
    if (!opened.empty()) {
      section = opened;
      continue;
    }
    if (line.find("\"schema\"") != std::string::npos) {
      const std::string schema = extract_string(line, "schema");
      if (schema != kBlameSchema) {
        throw Error("wrht-blame-1: line " + std::to_string(line_number) +
                    ": unsupported schema '" + schema + "'");
      }
      saw_schema = true;
      continue;
    }
    if (const std::string kind = extract_string(line, "kind"); !kind.empty())
      parsed.kind = kind;
    if (const std::string b = extract_string(line, "backend"); !b.empty())
      parsed.source = b;
    if (const std::string p = extract_string(line, "policy");
        !p.empty() && parsed.kind == "service") {
      parsed.source = p;
    }
    double value = 0.0;
    if (extract_number(line, "total_time", &value)) {
      parsed.total_time = value;
    }
    if (extract_number(line, "attributed_time", &value)) {
      parsed.attributed_time = value;
    }
  }
  if (!saw_schema) {
    throw Error("wrht-blame-1: no \"schema\": \"" + std::string(kBlameSchema) +
                "\" marker found (read " + std::to_string(line_number) +
                " lines)");
  }
  return parsed;
}

ParsedBlame read_blame_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("read_blame_file: cannot open '" + path + "'");
  return read_blame_json(in);
}

BlameDiff diff_blame(const ParsedBlame& base, const ParsedBlame& other,
                     double rel_threshold) {
  BlameDiff diff;
  diff.base_total = base.total_time;
  diff.other_total = other.total_time;
  const double scale = std::max(std::abs(base.total_time),
                                std::abs(other.total_time));
  const double abs_threshold = rel_threshold * scale;
  add_movers(base.categories, other.categories, abs_threshold,
             &diff.categories);
  add_movers(base.lanes, other.lanes, abs_threshold, &diff.lanes);
  add_movers(base.tenants, other.tenants, abs_threshold, &diff.tenants);
  diff.regressed =
      other.total_time > base.total_time + rel_threshold * scale;
  return diff;
}

std::string BlameDiff::to_string() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "blame diff: %s (total %.6e -> %.6e, %+.2f%%)\n",
                clean() ? "clean" : (regressed ? "REGRESSED" : "shifted"),
                base_total, other_total,
                base_total != 0.0
                    ? 100.0 * (other_total - base_total) / base_total
                    : 0.0);
  out += line;
  const auto table = [&](const char* title,
                         const std::vector<BlameMover>& movers) {
    if (movers.empty()) return;
    out += std::string("  ") + title + ":\n";
    for (const BlameMover& m : movers) {
      std::snprintf(line, sizeof(line),
                    "    %-20s %.6e -> %.6e (%+.6e s)\n", m.name.c_str(),
                    m.base, m.other, m.delta());
      out += line;
    }
  };
  table("categories", categories);
  table("lanes", lanes);
  table("tenants", tenants);
  return out;
}

}  // namespace wrht::diag
