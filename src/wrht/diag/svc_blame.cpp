#include "wrht/diag/svc_blame.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "wrht/common/error.hpp"
#include "wrht/diag/blame_json.hpp"
#include "wrht/svc/policy.hpp"

namespace wrht::diag {

namespace {

using blame_detail::num17;

/// One allocation-state change on the fabric timeline. Releases sort
/// before grants at the same instant, matching the service's
/// release-then-readmit event ordering.
struct AllocEvent {
  double time = 0.0;
  bool grant = false;  ///< false = release
  std::uint32_t w_lo = 0;
  std::uint32_t width = 0;
};

/// Fabric allocation state over one constant interval [t0, t1).
struct Segment {
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint32_t free_width = 0;
  std::uint32_t largest_free = 0;
};

/// Replays the run's grant/release history into a piecewise-constant
/// timeline of (free width, largest contiguous free slice).
std::vector<Segment> replay_allocator(const svc::ServiceReport& report,
                                      std::uint32_t fabric) {
  std::vector<AllocEvent> events;
  events.reserve(report.records.size() * 2);
  for (const svc::JobRecord& r : report.records) {
    events.push_back(AllocEvent{r.grant.count(), true, r.lease.w_lo,
                                r.job.width});
    events.push_back(AllocEvent{r.completion.count(), false, r.lease.w_lo,
                                r.job.width});
  }
  std::sort(events.begin(), events.end(),
            [](const AllocEvent& a, const AllocEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.grant < b.grant;  // releases first
            });

  std::vector<bool> occupied(fabric, false);
  const auto measure = [&](Segment* segment) {
    std::uint32_t free = 0;
    std::uint32_t largest = 0;
    std::uint32_t run = 0;
    for (std::uint32_t w = 0; w < fabric; ++w) {
      if (occupied[w]) {
        run = 0;
        continue;
      }
      ++free;
      ++run;
      largest = std::max(largest, run);
    }
    segment->free_width = free;
    segment->largest_free = largest;
  };

  std::vector<Segment> segments;
  double cursor = 0.0;
  std::size_t i = 0;
  while (i < events.size()) {
    const double t = events[i].time;
    if (t > cursor) {
      Segment segment;
      segment.t0 = cursor;
      segment.t1 = t;
      measure(&segment);
      segments.push_back(segment);
    }
    while (i < events.size() && events[i].time == t) {
      const AllocEvent& e = events[i];
      for (std::uint32_t w = e.w_lo; w < e.w_lo + e.width; ++w) {
        occupied[w] = e.grant;
      }
      ++i;
    }
    cursor = t;
  }
  return segments;
}

/// Seconds of [t0, t1) during which the fabric was fragmented for a job of
/// `width`: enough free width in total, no contiguous slice wide enough.
double fragmented_wait(const std::vector<Segment>& segments, double t0,
                       double t1, std::uint32_t width) {
  double fragmented = 0.0;
  for (const Segment& segment : segments) {
    const double lo = std::max(t0, segment.t0);
    const double hi = std::min(t1, segment.t1);
    if (hi <= lo) continue;
    if (segment.free_width >= width && segment.largest_free < width) {
      fragmented += hi - lo;
    }
  }
  return fragmented;
}

}  // namespace

ServiceBlame build_service_blame(const svc::ServiceReport& report,
                                 const plan::PlannerOptions& planner,
                                 std::uint32_t fabric_wavelengths) {
  require(fabric_wavelengths >= 1,
          "build_service_blame: fabric_wavelengths must be >= 1");
  ServiceBlame blame;
  blame.policy = svc::to_string(report.policy);
  blame.fabric_wavelengths = fabric_wavelengths;
  blame.jobs = report.records.size();

  const std::vector<Segment> segments =
      replay_allocator(report, fabric_wavelengths);

  std::map<std::uint32_t, TenantBlame> tenants;
  for (const svc::JobRecord& record : report.records) {
    const svc::Job& job = record.job;

    // Wait split: fragmentation vs queueing.
    const double wait = record.queue_wait().count();
    const double fragmented = fragmented_wait(
        segments, job.arrival.count(), record.grant.count(), job.width);
    const double queueing = wait - fragmented;

    // Service split: re-price the granted algorithm at the granted width
    // (exactly what the service billed — service_time == predicted x
    // iterations) and pull out the closed-form reconfiguration and
    // conversion shares; the remainder is transmission. Records rebuilt
    // from an event log (svc::replay_events) carry no job sizing, so when
    // the closed forms cannot reproduce the billed time the whole service
    // span stays transmission — the identity never bends.
    const double service = record.service_time().count();
    double reconfig = 0.0;
    double conversion = 0.0;
    if (job.num_nodes >= 2 && job.elements > 0) {
      plan::PlannerOptions options = planner;
      options.wavelengths = job.width;
      const plan::Candidate candidate = plan::predict(
          record.algorithm, job.num_nodes, job.elements, options);
      if (candidate.feasible) {
        const double iterations = static_cast<double>(job.iterations);
        reconfig =
            (options.policy == net::ReconfigPolicy::kOverlapped
                 ? static_cast<double>(candidate.rounds) *
                           options.mrr_reconfig_delay.count() -
                       candidate.overlap_hidden.count()
                 : static_cast<double>(candidate.reconfig_charges) *
                       options.mrr_reconfig_delay.count()) *
            iterations;
        conversion = static_cast<double>(candidate.rounds) *
                     options.oeo_delay.count() * iterations;
        if (reconfig + conversion > service) {
          // The log's timings disagree with this cost model (different
          // planner knobs at record time); don't fabricate a negative
          // transmission share.
          reconfig = 0.0;
          conversion = 0.0;
        }
      }
    }
    const double transmission = service - reconfig - conversion;

    BlameTotals job_totals;
    job_totals[BlameCategory::kQueueing] = queueing;
    job_totals[BlameCategory::kFragmentation] = fragmented;
    job_totals[BlameCategory::kReconfiguration] = reconfig;
    job_totals[BlameCategory::kConversion] = conversion;
    job_totals[BlameCategory::kTransmission] = transmission;

    blame.categories += job_totals;
    blame.total_jct += record.jct();

    TenantBlame& tenant = tenants[job.tenant];
    tenant.tenant = job.tenant;
    ++tenant.jobs;
    tenant.jct += record.jct();
    tenant.totals += job_totals;
  }

  blame.tenants.reserve(tenants.size());
  for (auto& [id, tenant] : tenants) {
    blame.tenants.push_back(std::move(tenant));
  }
  return blame;
}

std::string ServiceBlame::to_string() const {
  std::string out = "service blame [policy " + policy + ", " +
                    std::to_string(fabric_wavelengths) + " lambdas, " +
                    std::to_string(jobs) + " jobs]\n";
  char line[192];
  std::snprintf(line, sizeof(line), "  %-16s %12.6e s\n", "total JCT",
                total_jct.count());
  out += line;
  const double denom = total_jct.count() > 0.0 ? total_jct.count() : 1.0;
  for (const BlameCategory category : all_blame_categories()) {
    const double s = categories[category];
    if (s == 0.0) continue;
    std::snprintf(line, sizeof(line), "  %-16s %12.6e s  (%5.1f%%)\n",
                  diag::to_string(category).c_str(), s, 100.0 * s / denom);
    out += line;
  }
  for (const TenantBlame& tenant : tenants) {
    const double tdenom = tenant.jct.count() > 0.0 ? tenant.jct.count() : 1.0;
    std::snprintf(line, sizeof(line),
                  "  tenant %-3u %4llu jobs  jct %10.4e s  queue %5.1f%%  "
                  "frag %5.1f%%  service %5.1f%%\n",
                  tenant.tenant,
                  static_cast<unsigned long long>(tenant.jobs),
                  tenant.jct.count(),
                  100.0 * tenant.totals[BlameCategory::kQueueing] / tdenom,
                  100.0 * tenant.totals[BlameCategory::kFragmentation] /
                      tdenom,
                  100.0 *
                      (tenant.totals[BlameCategory::kReconfiguration] +
                       tenant.totals[BlameCategory::kConversion] +
                       tenant.totals[BlameCategory::kTransmission]) /
                      tdenom);
    out += line;
  }
  return out;
}

void write_service_blame_json(const ServiceBlame& blame, std::ostream& out) {
  out << "{\n";
  out << "  \"schema\": \"" << kBlameSchema << "\",\n";
  out << "  \"kind\": \"service\",\n";
  out << "  \"policy\": \"" << blame.policy << "\",\n";
  out << "  \"fabric_wavelengths\": " << blame.fabric_wavelengths << ",\n";
  out << "  \"jobs\": " << blame.jobs << ",\n";
  out << "  \"total_time\": " << num17(blame.total_jct.count()) << ",\n";
  out << "  \"attributed_time\": " << num17(blame.attributed()) << ",\n";
  out << "  \"categories\": {\n";
  bool first = true;
  for (const BlameCategory category : all_blame_categories()) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << to_string(category)
        << "\": " << num17(blame.categories[category]);
  }
  out << "\n  },\n";
  out << "  \"tenants\": [\n";
  for (std::size_t i = 0; i < blame.tenants.size(); ++i) {
    const TenantBlame& tenant = blame.tenants[i];
    out << "    {\"tenant\": " << tenant.tenant
        << ", \"jobs\": " << tenant.jobs
        << ", \"jct\": " << num17(tenant.jct.count());
    for (const BlameCategory category : all_blame_categories()) {
      out << ", \"" << to_string(category)
          << "\": " << num17(tenant.totals[category]);
    }
    out << "}" << (i + 1 < blame.tenants.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
}

void write_service_blame_file(const ServiceBlame& blame,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("write_service_blame_file: cannot open '" + path + "'");
  }
  write_service_blame_json(blame, out);
}

}  // namespace wrht::diag
