// Causal blame attribution over a transfer-level run timeline.
//
// An engine observed with obs::TransferLog emits the full dependency
// structure of a run: steps are barriers, each step runs one or more lanes
// (independently progressing resource chains — the flat ring, each torus
// row/column, the electrical fabric), each lane serializes its rounds, and
// each round decomposes into the exact cost components the engine charged.
// build_blame() rebuilds that DAG, extracts the critical path (per step:
// the bounding lane's round chain), and attributes the makespan to blame
// categories with an accounting identity — the category attributions sum
// to the measured total, asserted by verify::check_blame_identity and the
// wrht_analyze --blame gate.
//
// what_if_zero() / what_if_on_retune() re-longest-path the DAG with one
// cost component removed, yielding a sound predicted-speedup upper bound
// (removing cost from every round can only shorten each lane chain, and
// the recomputation re-maxes the lanes per step, so no serialization the
// real engine would face is dropped). The kOnRetune variant replicates the
// retune-aware pricing exactly, so its prediction matches an actual
// re-simulation under net::ReconfigPolicy::kOnRetune.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "wrht/common/units.hpp"
#include "wrht/obs/transfer_log.hpp"

namespace wrht::obs {
class ChromeTraceSink;
}  // namespace wrht::obs

namespace wrht::diag {

/// Where a second of (make)span went. The first two only occur in service
/// (per-job JCT) blame; the rest decompose engine rounds.
enum class BlameCategory : std::uint8_t {
  kQueueing = 0,        ///< waiting although the fabric could not fit us
  kFragmentation,       ///< enough free width existed, but not contiguous
  kReconfiguration,     ///< MRR retune delay charged on the critical path
  kConversion,          ///< O/E/O conversion
  kTransmission,        ///< payload serialization
  kProcessing,          ///< electrical router store-and-forward
  kStragglerWait,       ///< waiting for a slower lane / residual slack
};

inline constexpr std::size_t kNumBlameCategories = 7;

/// Stable lower-case name ("queueing", "fragmentation", ...), used as the
/// wrht-blame-1 JSON keys.
[[nodiscard]] std::string to_string(BlameCategory category);

/// All categories in enum order (iteration helper).
[[nodiscard]] const std::array<BlameCategory, kNumBlameCategories>&
all_blame_categories();

/// Per-category seconds; the workhorse accumulator of the module.
struct BlameTotals {
  std::array<double, kNumBlameCategories> seconds{};

  [[nodiscard]] double& operator[](BlameCategory c) {
    return seconds[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double operator[](BlameCategory c) const {
    return seconds[static_cast<std::size_t>(c)];
  }
  /// Sum over categories in enum order.
  [[nodiscard]] double total() const;
  BlameTotals& operator+=(const BlameTotals& other);
};

/// One round on the critical path.
struct CriticalRound {
  std::uint32_t step = 0;
  std::string lane;
  std::uint32_t round = 0;
  Seconds start{0.0};
  Seconds duration{0.0};
  Seconds reconfig{0.0};
  Seconds conversion{0.0};
  Seconds serialization{0.0};
  Seconds processing{0.0};
  bool retune = true;
};

/// One lane's run-wide resource attribution. `straggler` accumulates the
/// lane's shortfall against each step's bounding lane — the diff currency
/// that localizes "row3 got slower" even when the category mix is stable.
struct LaneBlame {
  std::string lane;
  BlameTotals totals;  ///< own components + straggler shortfall
  Seconds busy{0.0};   ///< sum of the lane's round durations
};

struct BlameReport {
  // Provenance (TransferLog::Context).
  std::string backend;
  std::string reconfig_policy;
  Seconds mrr_reconfig_delay{0.0};
  Seconds oeo_delay{0.0};

  /// Measured makespan: the sum of the observed step durations.
  Seconds total_time{0.0};
  /// Critical-path attribution; total() matches total_time (the identity).
  BlameTotals categories;
  std::vector<CriticalRound> critical_path;
  /// Per-lane attribution, sorted by lane name.
  std::vector<LaneBlame> lanes;

  std::size_t steps = 0;
  std::size_t rounds = 0;
  std::size_t transfers = 0;

  /// Sum of the category attributions (the identity's left-hand side).
  [[nodiscard]] double attributed() const { return categories.total(); }

  /// Human-readable category table with percentages.
  [[nodiscard]] std::string to_string() const;
};

/// Rebuilds the dependency DAG from the log, extracts the critical path
/// and attributes the makespan. Throws InvalidArgument on a log with no
/// steps.
[[nodiscard]] BlameReport build_blame(const obs::TransferLog& log);

/// Re-longest-paths the DAG with `category`'s cost removed from every
/// round; the returned time is a lower bound on any real run that still
/// serializes the remaining components, so total/what_if is a sound
/// speedup upper bound.
[[nodiscard]] Seconds what_if_zero(const obs::TransferLog& log,
                                   BlameCategory category);

/// Predicted makespan under net::ReconfigPolicy::kOnRetune: every round's
/// charged reconfiguration is replaced by the full delay when the round
/// retunes and zero when it does not — exactly the retune-aware pricing,
/// so this matches an actual kOnRetune re-simulation of the same schedule.
[[nodiscard]] Seconds what_if_on_retune(const obs::TransferLog& log);

/// Exports the critical path into a Chrome trace: one "blame" track with a
/// span per critical round and flow arrows chaining them, so the path
/// renders as a connected arrow sequence in the viewer.
void export_critical_path(const BlameReport& report,
                          obs::ChromeTraceSink& sink);

}  // namespace wrht::diag
