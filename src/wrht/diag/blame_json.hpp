// wrht-blame-1: the deterministic JSON interchange format of blame
// reports, and the cross-run differ built on it.
//
// The writer emits one key (or one array element) per line, doubles with
// %.17g (round-trip exact), fixed key order, no locale dependence — the
// same recipe as the svc-events-1 event log — so a report is
// byte-deterministic per (config, seed) and two reports can be diffed
// structurally. The reader is deliberately line-based: it parses exactly
// what the writer emits and fails with a diagnostic naming the line on
// anything else.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "wrht/diag/blame.hpp"

namespace wrht::diag {

/// Schema marker every wrht-blame-1 file carries.
inline constexpr const char* kBlameSchema = "wrht-blame-1";

/// Serializes a run-level blame report. `what_if` entries (label ->
/// predicted seconds) are emitted in the given order.
void write_blame_json(
    const BlameReport& report,
    const std::vector<std::pair<std::string, double>>& what_if,
    std::ostream& out);

/// write_blame_json to `path`; throws wrht::Error when the file cannot be
/// opened.
void write_blame_file(
    const BlameReport& report,
    const std::vector<std::pair<std::string, double>>& what_if,
    const std::string& path);

/// A parsed wrht-blame-1 file, run- or service-kind; the diffable surface
/// (categories, per-lane busy seconds, per-tenant JCT seconds).
struct ParsedBlame {
  std::string kind;     ///< "run" or "service"
  std::string source;   ///< backend (run) or admission policy (service)
  double total_time = 0.0;
  double attributed_time = 0.0;
  std::map<std::string, double> categories;
  std::map<std::string, double> lanes;    ///< lane name -> busy seconds
  std::map<std::string, double> tenants;  ///< "tenant<id>" -> JCT seconds
  std::map<std::string, double> what_if;  ///< label -> predicted seconds
};

/// Parses a wrht-blame-1 stream; throws wrht::Error naming the offending
/// line on schema or structure violations.
[[nodiscard]] ParsedBlame read_blame_json(std::istream& in);
[[nodiscard]] ParsedBlame read_blame_file(const std::string& path);

/// One diffed quantity.
struct BlameMover {
  std::string name;
  double base = 0.0;
  double other = 0.0;
  [[nodiscard]] double delta() const { return other - base; }
};

struct BlameDiff {
  double base_total = 0.0;
  double other_total = 0.0;
  /// Movers exceeding the threshold, sorted by |delta| descending.
  std::vector<BlameMover> categories;
  std::vector<BlameMover> lanes;
  std::vector<BlameMover> tenants;
  /// other_total grew beyond the relative threshold.
  bool regressed = false;
  /// No movers and totals within threshold.
  [[nodiscard]] bool clean() const {
    return !regressed && categories.empty() && lanes.empty() &&
           tenants.empty();
  }
  /// Human-readable verdict + mover table.
  [[nodiscard]] std::string to_string() const;
};

/// Compares two parsed reports. A category/lane/tenant moves when its
/// |delta| exceeds `rel_threshold` of the larger total; the run regresses
/// when other_total > base_total * (1 + rel_threshold).
[[nodiscard]] BlameDiff diff_blame(const ParsedBlame& base,
                                   const ParsedBlame& other,
                                   double rel_threshold = 0.05);

namespace blame_detail {
/// %.17g: shortest round-trip-exact double, the byte-determinism
/// workhorse shared with the service blame writer.
[[nodiscard]] std::string num17(double v);
}  // namespace blame_detail

}  // namespace wrht::diag
