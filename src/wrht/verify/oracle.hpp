// Data-level schedule oracle.
//
// Executes any coll::Schedule against concrete per-node payloads and proves
// that every node ends holding the element-wise global sum. The interpreter
// here is an INDEPENDENT implementation of the step/transfer semantics
// (snapshot-per-step concurrent sends) — it deliberately does not call
// coll::Executor, so the two interpreters cross-check each other: a bug in
// either shows up as a disagreement in the fuzz driver.
//
// Two proofs run side by side:
//   * numeric  — random real inputs; the final buffers must equal the
//     reference sum within a tolerance. Catches any wrong linear
//     combination with overwhelming probability.
//   * provenance — each node starts owning exactly one unit of its own
//     contribution; transfers move exact integer contribution counts. The
//     final state must be exactly one contribution from every node at
//     every element of every node. This is an exact proof that the
//     schedule computes sum(x_0..x_{N-1}) — no tolerance involved.
//     Tracked only while num_nodes^2 * elements stays under a memory cap
//     (the numeric check still runs above it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "wrht/collectives/schedule.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct OracleOptions {
  double tolerance = 1e-9;
  std::uint64_t seed = 0x0c0ffee5eed;
  /// Provenance tracking is skipped when num_nodes^2 * elements exceeds
  /// this cap (counts grow quadratically in N).
  std::uint64_t provenance_cell_limit = 1u << 22;
};

struct OracleReport {
  CheckResult result;
  /// Largest |final - expected| over all nodes and elements.
  double max_abs_error = 0.0;
  /// Where the numeric error peaked (valid when max_abs_error > 0).
  std::uint32_t worst_node = 0;
  std::size_t worst_element = 0;
  /// True when the exact provenance proof ran (and is reflected in
  /// `result`); false when the configuration exceeded the cell cap.
  bool provenance_checked = false;

  [[nodiscard]] bool ok() const { return result.ok(); }
};

/// Proves `schedule` implements All-reduce. Throws only on structurally
/// invalid schedules (wrht::InvalidArgument via Schedule::validate()).
[[nodiscard]] OracleReport check_allreduce(const coll::Schedule& schedule,
                                           const OracleOptions& options = {});

/// Same interpreter, Reduce semantics: only node `root` must end with the
/// global sum.
[[nodiscard]] OracleReport check_reduce(const coll::Schedule& schedule,
                                        std::uint32_t root,
                                        const OracleOptions& options = {});

/// Same interpreter, Broadcast semantics: every node must end with node
/// `root`'s initial vector.
[[nodiscard]] OracleReport check_broadcast(const coll::Schedule& schedule,
                                           std::uint32_t root,
                                           const OracleOptions& options = {});

}  // namespace wrht::verify
