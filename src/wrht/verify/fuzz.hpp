// Differential fuzzing over the collective registry.
//
// Draws random (algorithm, N, elements, m, w) configurations from a seeded
// Rng, builds the schedule through coll::Registry, and subjects it to every
// applicable oracle: the data-level correctness proof, the structural and
// RWA invariants, the WRHT-specific hierarchy/step/wavelength checks, and
// the simulator-vs-Eq.(6) differential. Failures are collected (never
// thrown) and the first failing configuration is greedily shrunk toward a
// minimal reproducer so the report names the smallest broken case, not a
// 96-node haystack.
//
// Everything is deterministic in the seed: the same FuzzOptions always
// explores the same configurations in the same order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct FuzzOptions {
  std::uint64_t seed = 0xf1ed'f055'0001ull;
  std::size_t iterations = 500;
  std::uint32_t max_nodes = 96;
  std::size_t max_elements = 512;
  /// Algorithms to draw from; empty means every registered algorithm
  /// (WRHT is registered before sampling).
  std::vector<std::string> algorithms;
  /// Greedily shrink the first failure toward a minimal reproducer.
  bool shrink = true;
};

/// One sampled configuration.
struct FuzzCase {
  std::string algorithm;
  std::uint32_t num_nodes = 2;
  std::size_t elements = 1;
  std::uint32_t group_size = 2;
  std::uint32_t wavelengths = 64;

  [[nodiscard]] std::string to_string() const;
};

struct FuzzFailure {
  FuzzCase config;
  CheckResult result;
};

struct FuzzReport {
  std::size_t iterations_run = 0;
  std::map<std::string, std::size_t> cases_per_algorithm;
  std::vector<FuzzFailure> failures;
  /// The first failure shrunk to the smallest configuration that still
  /// fails (present only when shrinking was enabled and something failed).
  std::optional<FuzzFailure> minimal_failure;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs every applicable checker against one configuration.
[[nodiscard]] CheckResult check_case(const FuzzCase& c);

/// Samples and checks `options.iterations` configurations.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options = {});

}  // namespace wrht::verify
