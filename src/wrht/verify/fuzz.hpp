// Differential fuzzing over the collective registry.
//
// Draws random (algorithm, N, elements, m, w, reconfig-policy,
// wavelength-lease) configurations from a seeded Rng, builds the schedule
// through
// coll::Registry — or through plan::build_candidate for the planner
// pseudo-algorithms "plan:wrht" / "plan:flat_a2a" / "plan:static_ring" —
// and subjects it to every applicable oracle: the data-level correctness
// proof, the structural and RWA invariants, the WRHT-specific
// hierarchy/step/wavelength checks, the simulator-vs-Eq.(6) differential,
// (for non-default policies) the reconfiguration-accounting monotonicity
// and overlap-consistency checks, and (for leased draws) the
// slice-equivalence invariant — a run confined to [w_lo, w_hi) of a
// shared fabric prices exactly like a full run on a dedicated
// (w_hi - w_lo)-wavelength one. Failures are collected
// (never thrown) and the first failing configuration is greedily shrunk
// toward a minimal reproducer so the report names the smallest broken
// case, not a 96-node haystack.
//
// Everything is deterministic in the seed: the same FuzzOptions always
// explores the same configurations in the same order. Shrunk reproducers
// serialize to one-line strings (FuzzCase::serialize/parse) so they can be
// checked into tests/corpus/fuzz_regressions.txt and replayed in tier-1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wrht/net/reconfig_policy.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct FuzzOptions {
  std::uint64_t seed = 0xf1ed'f055'0001ull;
  std::size_t iterations = 500;
  std::uint32_t max_nodes = 96;
  std::size_t max_elements = 512;
  /// Algorithms to draw from; empty means every registered algorithm
  /// (WRHT is registered before sampling) plus — see below — the planner
  /// pseudo-algorithms.
  std::vector<std::string> algorithms;
  /// Mix the planner candidates ("plan:wrht", "plan:flat_a2a",
  /// "plan:static_ring", built via plan::build_candidate and cross-checked
  /// against plan::predict feasibility) into an empty `algorithms` draw.
  bool draw_planner_candidates = true;
  /// Draw a net::ReconfigPolicy per case instead of pinning kEveryRound.
  bool draw_reconfig_policy = true;
  /// Draw leased wavelength slices (about a third of cases): the run is
  /// confined to [w_lo, w_hi) of a w_hi-wavelength fabric and must price
  /// identically to a full run on a (w_hi - w_lo)-wavelength fabric.
  bool draw_leases = true;
  /// Greedily shrink the first failure toward a minimal reproducer.
  bool shrink = true;
};

/// One sampled configuration.
struct FuzzCase {
  /// coll::Registry name, or a "plan:<candidate>" pseudo-algorithm.
  std::string algorithm;
  std::uint32_t num_nodes = 2;
  std::size_t elements = 1;
  std::uint32_t group_size = 2;
  std::uint32_t wavelengths = 64;
  /// Reconfiguration accounting the pricing checks run under. The Eq. (6)
  /// differential always prices kEveryRound (its analytical side assumes
  /// it); non-default policies add monotonicity and, for kOverlapped, the
  /// overlap-consistency invariants on top.
  net::ReconfigPolicy reconfig_policy = net::ReconfigPolicy::kEveryRound;
  /// Leased wavelength slice [w_lo, w_hi) on a w_hi-wavelength fabric;
  /// w_lo == w_hi == 0 (the ResourceLease sentinel) means no lease draw.
  /// When set, check_case adds the slice-equivalence invariant: the leased
  /// run must match a full-fabric run on a (w_hi - w_lo)-wavelength fiber
  /// exactly (time, steps, rounds; wavelengths_used offset by w_lo).
  std::uint32_t w_lo = 0;
  std::uint32_t w_hi = 0;

  [[nodiscard]] bool leased() const { return w_lo != 0 || w_hi != 0; }

  [[nodiscard]] std::string to_string() const;

  /// One-line corpus form: "algorithm N elements m w policy" for unleased
  /// cases, with " w_lo w_hi" appended for leased ones. Round-trips
  /// through parse(); used by tests/corpus/fuzz_regressions.txt.
  [[nodiscard]] std::string serialize() const;
  /// Parses serialize() output (leading/trailing spaces tolerated). Throws
  /// InvalidArgument on malformed lines.
  static FuzzCase parse(const std::string& line);
};

struct FuzzFailure {
  FuzzCase config;
  CheckResult result;
};

struct FuzzReport {
  std::size_t iterations_run = 0;
  std::map<std::string, std::size_t> cases_per_algorithm;
  std::vector<FuzzFailure> failures;
  /// The first failure shrunk to the smallest configuration that still
  /// fails (present only when shrinking was enabled and something failed).
  std::optional<FuzzFailure> minimal_failure;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs every applicable checker against one configuration.
[[nodiscard]] CheckResult check_case(const FuzzCase& c);

/// Samples and checks `options.iterations` configurations.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options = {});

}  // namespace wrht::verify
