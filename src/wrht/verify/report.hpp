// Result vocabulary of the verification subsystem.
//
// Every checker in wrht::verify returns a CheckResult: a list of Findings,
// each naming the violated property (dotted check id) and carrying enough
// context to reproduce the violation. Checkers never throw on a *failed
// property* — they reserve exceptions for misuse (bad arguments) — so a
// fuzz driver can collect every violation of a configuration instead of
// stopping at the first.
#pragma once

#include <string>
#include <vector>

namespace wrht::verify {

/// One violated property.
struct Finding {
  /// Dotted id of the check, e.g. "oracle.allreduce.sum",
  /// "invariant.rwa.conflict", "differential.rel_error".
  std::string check;
  /// Human-readable description with the concrete values that failed.
  std::string detail;
};

class CheckResult {
 public:
  [[nodiscard]] bool ok() const { return findings_.empty(); }
  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }

  void add(std::string check, std::string detail);
  void merge(const CheckResult& other);

  /// "ok" or one line per finding ("check: detail").
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace wrht::verify
