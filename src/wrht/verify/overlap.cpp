#include "wrht/verify/overlap.hpp"

#include <cmath>
#include <string>

#include "wrht/obs/analysis.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/verify/invariants.hpp"

namespace wrht::verify {

namespace {

std::string secs(Seconds v) { return std::to_string(v.count()) + "s"; }

}  // namespace

CheckResult check_overlap_consistency(const coll::Schedule& schedule,
                                      std::uint32_t ring_size,
                                      const OverlapOptions& options) {
  CheckResult result;

  optics::OpticalConfig base;
  base.wavelengths = options.wavelengths;
  base.fibers_per_direction = options.fibers_per_direction;
  base.validate_node_capacity = false;  // capacity is a separate checker

  optics::OpticalConfig overlapped_cfg = base;
  overlapped_cfg.reconfig_policy = net::ReconfigPolicy::kOverlapped;

  const optics::RingNetwork serial_net(ring_size, base);
  const optics::RingNetwork overlapped_net(ring_size, overlapped_cfg);

  const optics::OpticalRunResult serial = serial_net.execute(schedule);

  obs::OccupancySampler sampler;
  obs::Probe probe;
  probe.occupancy = &sampler;
  const optics::OpticalRunResult overlapped =
      overlapped_net.execute(schedule, probe);

  const double scale = std::max(serial.total_time.count(), 1e-30);
  const double tol = options.tolerance * scale;

  // Structure: the overlap re-pricing must leave the RWA untouched.
  if (overlapped.steps != serial.steps ||
      overlapped.total_rounds != serial.total_rounds ||
      overlapped.max_wavelengths_used != serial.max_wavelengths_used) {
    result.add("overlap.structure",
               "overlapped run changed steps/rounds/wavelengths: " +
                   std::to_string(overlapped.steps) + "/" +
                   std::to_string(overlapped.total_rounds) + "/" +
                   std::to_string(overlapped.max_wavelengths_used) +
                   " vs serial " + std::to_string(serial.steps) + "/" +
                   std::to_string(serial.total_rounds) + "/" +
                   std::to_string(serial.max_wavelengths_used));
  }

  // Monotonic per step and in total: hiding delay can only help.
  for (std::size_t s = 0; s < overlapped.step_costs.size() &&
                          s < serial.step_costs.size();
       ++s) {
    const Seconds o = overlapped.step_costs[s].duration;
    const Seconds e = serial.step_costs[s].duration;
    if (o.count() > e.count() + tol) {
      result.add("overlap.step_monotonic",
                 "step " + std::to_string(s) + " overlapped " + secs(o) +
                     " > serial " + secs(e));
    }
    if (overlapped.step_costs[s].rounds != serial.step_costs[s].rounds) {
      result.add("overlap.structure",
                 "step " + std::to_string(s) + " round count changed");
    }
  }
  if (overlapped.total_time.count() > serial.total_time.count() + tol) {
    result.add("overlap.monotonic",
               "overlapped total " + secs(overlapped.total_time) +
                   " > serial " + secs(serial.total_time));
  }

  // Identity: every hidden second is accounted for.
  const double identity_gap =
      std::abs(overlapped.total_time.count() +
               overlapped.overlap_hidden.count() -
               serial.total_time.count());
  if (identity_gap > tol) {
    result.add("overlap.hidden_identity",
               "total " + secs(overlapped.total_time) + " + hidden " +
                   secs(overlapped.overlap_hidden) + " != serial " +
                   secs(serial.total_time) + " (gap " +
                   std::to_string(identity_gap) + "s)");
  }

  // Accounting: the occupancy breakdown still tiles the overlapped run.
  RunReport report = overlapped.to_report();
  const obs::UtilizationAnalysis analysis =
      obs::analyze_utilization(report, sampler);
  if (std::abs(analysis.breakdown.total().count() -
               overlapped.total_time.count()) > tol) {
    result.add("overlap.accounting",
               "run breakdown total " + secs(analysis.breakdown.total()) +
                   " != total_time " + secs(overlapped.total_time));
  }
  for (std::size_t s = 0; s < analysis.step_breakdowns.size(); ++s) {
    const double gap =
        std::abs(analysis.step_breakdowns[s].total().count() -
                 overlapped.step_costs[s].duration.count());
    if (gap > tol) {
      result.add("overlap.accounting",
                 "step " + std::to_string(s) + " breakdown total != step "
                     "duration (gap " + std::to_string(gap) + "s)");
    }
  }

  // Conflict freedom: re-verify every RWA round independently, exactly as
  // for serial schedules — overlapping must not have relaxed it.
  InvariantOptions inv;
  inv.wavelengths = options.wavelengths;
  inv.fibers_per_direction = options.fibers_per_direction;
  result.merge(check_conflict_freedom(schedule, ring_size, inv));

  return result;
}

}  // namespace wrht::verify
