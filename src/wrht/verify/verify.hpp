// Umbrella header for the schedule verification subsystem (wrht::verify):
//   * oracle.hpp       — data-level proof that a schedule computes the
//                        collective it claims (numeric + exact provenance);
//   * invariants.hpp   — structural, RWA and WRHT closed-form invariants;
//   * differential.hpp — event-driven simulator vs Eq. (6) pricing;
//   * fuzz.hpp         — seeded random sweeps with failure shrinking;
//   * blame.hpp        — blame-accounting identity checks (wrht::diag).
#pragma once

#include "wrht/verify/blame.hpp"
#include "wrht/verify/differential.hpp"
#include "wrht/verify/fuzz.hpp"
#include "wrht/verify/invariants.hpp"
#include "wrht/verify/oracle.hpp"
#include "wrht/verify/report.hpp"
