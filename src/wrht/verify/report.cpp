#include "wrht/verify/report.hpp"

#include <utility>

namespace wrht::verify {

void CheckResult::add(std::string check, std::string detail) {
  findings_.push_back(Finding{std::move(check), std::move(detail)});
}

void CheckResult::merge(const CheckResult& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
}

std::string CheckResult::summary() const {
  if (findings_.empty()) return "ok";
  std::string out;
  for (const Finding& f : findings_) {
    if (!out.empty()) out += '\n';
    out += f.check + ": " + f.detail;
  }
  return out;
}

}  // namespace wrht::verify
