// Differential oracle: discrete-event simulator vs the analytical model.
//
// The optical ring simulator (optics::RingNetwork) prices a schedule by
// driving every step through RWA and the event kernel. The paper's Eq. (6)
// model prices the same schedule as theta * (a + d/B). These are two
// independent implementations of the same quantity, so they cross-check:
//   * when every step fits in a single RWA round, the simulated time must
//     match the analytical time within a relative tolerance (default 1%);
//   * when steps split into multiple rounds the analytical model is a
//     strict lower bound — extra rounds only add reconfiguration and
//     serialization time, never remove it.
// The analytical side is computed here from core::comm_time, NOT from
// RingNetwork::single_round_estimate, so a pricing bug in either module
// surfaces as a disagreement.
#pragma once

#include "wrht/collectives/schedule.hpp"
#include "wrht/net/backend.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct DifferentialOptions {
  optics::OpticalConfig config{};
  /// Maximum |simulated - analytical| / analytical when single-round.
  double rel_tolerance = 0.01;
  /// Backend to price the simulated side with; nullptr builds an
  /// optics::RingBackend from `config`. Any net::Backend works — the
  /// Eq. (6) bound applies to every engine that prices the paper's
  /// convention — but `config` must then describe the same pricing
  /// (rates, overheads) for the analytical side to be comparable.
  const net::Backend* backend = nullptr;
};

struct DifferentialReport {
  CheckResult result;
  double simulated_seconds = 0.0;
  double analytical_seconds = 0.0;
  /// |simulated - analytical| / analytical (0 when analytical is 0).
  double rel_error = 0.0;
  /// True when no step needed more than one RWA round, i.e. the Eq. (6)
  /// regime where the two models must agree tightly.
  bool single_round = false;

  [[nodiscard]] bool ok() const { return result.ok(); }
};

/// Prices `schedule` with both models and reports any disagreement.
[[nodiscard]] DifferentialReport check_differential(
    const coll::Schedule& schedule, const DifferentialOptions& options = {});

}  // namespace wrht::verify
