#include "wrht/verify/fuzz.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/optical_backend.hpp"
#include "wrht/plan/schedule_planner.hpp"
#include "wrht/verify/differential.hpp"
#include "wrht/verify/invariants.hpp"
#include "wrht/verify/oracle.hpp"
#include "wrht/verify/overlap.hpp"

namespace wrht::verify {

namespace {

constexpr const char* kPlannerPrefix = "plan:";

std::optional<plan::CandidateKind> planner_kind(const std::string& algorithm) {
  if (algorithm == "plan:wrht") return plan::CandidateKind::kWrht;
  if (algorithm == "plan:flat_a2a") return plan::CandidateKind::kFlatAllToAll;
  if (algorithm == "plan:static_ring") return plan::CandidateKind::kStaticRing;
  return std::nullopt;
}

/// Builder-specific preconditions: clamp a raw sample into the domain the
/// algorithm accepts so the fuzzer explores valid configurations only.
void legalize(FuzzCase& c) {
  c.num_nodes = std::max<std::uint32_t>(c.num_nodes, 2);
  c.elements = std::max<std::size_t>(c.elements, 1);
  c.group_size = std::max<std::uint32_t>(c.group_size, 2);
  c.wavelengths = std::max<std::uint32_t>(c.wavelengths, 1);
  if (c.leased()) c.w_hi = std::max(c.w_hi, c.w_lo + 1);
  if (c.algorithm == "ring" || c.algorithm == "hring" ||
      c.algorithm == "halving_doubling" ||
      c.algorithm == "plan:static_ring" || c.algorithm == "plan:flat_a2a") {
    // Reduce-scatter-based builders need at least one element per node.
    c.elements = std::max<std::size_t>(c.elements, c.num_nodes);
  }
}

FuzzCase sample(Rng& rng, const std::vector<std::string>& algorithms,
                const FuzzOptions& options) {
  FuzzCase c;
  c.algorithm =
      algorithms[rng.uniform_int(0, algorithms.size() - 1)];
  c.num_nodes = static_cast<std::uint32_t>(
      rng.uniform_int(2, options.max_nodes));
  c.elements = static_cast<std::size_t>(
      rng.uniform_int(1, options.max_elements));
  c.group_size = static_cast<std::uint32_t>(
      rng.uniform_int(2, std::max<std::uint32_t>(2, std::min<std::uint32_t>(
                                                        c.num_nodes, 16))));
  c.wavelengths = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
  if (options.draw_reconfig_policy) {
    switch (rng.uniform_int(0, 2)) {
      case 0: c.reconfig_policy = net::ReconfigPolicy::kEveryRound; break;
      case 1: c.reconfig_policy = net::ReconfigPolicy::kOnRetune; break;
      default: c.reconfig_policy = net::ReconfigPolicy::kOverlapped; break;
    }
  }
  if (options.draw_leases && rng.uniform_int(0, 2) == 0) {
    // Slice width up to the schedule's wavelength budget, so the draw
    // covers both comfortable slices and multi-round starvation inside
    // one; a nonzero w_lo makes the offset part of the invariant real.
    const std::uint32_t width = static_cast<std::uint32_t>(
        rng.uniform_int(1, c.wavelengths));
    c.w_lo = static_cast<std::uint32_t>(rng.uniform_int(0, 12));
    c.w_hi = c.w_lo + width;
  }
  legalize(c);
  return c;
}

net::ReconfigPolicy parse_policy(const std::string& token) {
  if (token == "every_round") return net::ReconfigPolicy::kEveryRound;
  if (token == "on_retune") return net::ReconfigPolicy::kOnRetune;
  if (token == "overlapped") return net::ReconfigPolicy::kOverlapped;
  throw InvalidArgument("FuzzCase::parse: unknown reconfig policy '" + token +
                        "'");
}

/// Prices `schedule` on the optical ring engine under `policy`.
double priced_seconds(const coll::Schedule& schedule, std::uint32_t ring_size,
                      std::uint32_t wavelengths, net::ReconfigPolicy policy) {
  optics::OpticalConfig config;
  config.wavelengths = wavelengths;
  config.reconfig_policy = policy;
  config.validate_node_capacity = false;
  const optics::RingBackend backend(ring_size, config, /*rng_seed=*/2023,
                                    /*collect_utilization=*/false);
  return backend.execute(schedule).total_time.count();
}

/// Greedy shrink: repeatedly try to move each dimension toward its
/// minimum (halving first, then decrementing) while the case still fails.
FuzzFailure shrink_failure(const FuzzCase& first, const CheckResult& found) {
  FuzzFailure best{first, found};
  const auto try_case = [&best](FuzzCase candidate) {
    legalize(candidate);
    if (candidate.algorithm == best.config.algorithm &&
        candidate.num_nodes == best.config.num_nodes &&
        candidate.elements == best.config.elements &&
        candidate.group_size == best.config.group_size &&
        candidate.wavelengths == best.config.wavelengths &&
        candidate.reconfig_policy == best.config.reconfig_policy &&
        candidate.w_lo == best.config.w_lo &&
        candidate.w_hi == best.config.w_hi) {
      return false;
    }
    const CheckResult r = check_case(candidate);
    if (r.ok()) return false;
    best = FuzzFailure{candidate, r};
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    FuzzCase c = best.config;
    // Nodes first — the dominant cost dimension.
    { FuzzCase t = c; t.num_nodes = (t.num_nodes + 2) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.num_nodes -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.elements = (t.elements + 1) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.elements -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.group_size = (t.group_size + 2) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.group_size -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.wavelengths = (t.wavelengths + 1) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.wavelengths -= 1; progress |= try_case(t); }
    // Lease: drop it entirely first, else narrow the slice and slide it
    // down toward wavelength 0.
    if (best.config.leased()) {
      { FuzzCase t = best.config; t.w_lo = 0; t.w_hi = 0;
        progress |= try_case(t); }
      { FuzzCase t = best.config;
        t.w_hi = t.w_lo + std::max<std::uint32_t>(1, (t.w_hi - t.w_lo) / 2);
        progress |= try_case(t); }
      { FuzzCase t = best.config;
        if (t.w_lo > 0) { t.w_lo -= 1; t.w_hi -= 1; progress |= try_case(t); }
      }
    }
    // Policy last: a failure that survives under the serial default is the
    // simplest reproducer.
    { FuzzCase t = best.config;
      t.reconfig_policy = net::ReconfigPolicy::kEveryRound;
      progress |= try_case(t); }
  }
  return best;
}

}  // namespace

std::string FuzzCase::to_string() const {
  std::string s = algorithm + "(N=" + std::to_string(num_nodes) +
                  ", elements=" + std::to_string(elements) +
                  ", m=" + std::to_string(group_size) +
                  ", w=" + std::to_string(wavelengths) +
                  ", policy=" + net::to_string(reconfig_policy);
  if (leased()) {
    s += ", lease=[" + std::to_string(w_lo) + ", " + std::to_string(w_hi) +
         ")";
  }
  return s + ")";
}

std::string FuzzCase::serialize() const {
  std::string s = algorithm + " " + std::to_string(num_nodes) + " " +
                  std::to_string(elements) + " " +
                  std::to_string(group_size) + " " +
                  std::to_string(wavelengths) + " " +
                  net::to_string(reconfig_policy);
  if (leased()) {
    s += " " + std::to_string(w_lo) + " " + std::to_string(w_hi);
  }
  return s;
}

FuzzCase FuzzCase::parse(const std::string& line) {
  std::istringstream in(line);
  FuzzCase c;
  std::string policy;
  in >> c.algorithm >> c.num_nodes >> c.elements >> c.group_size >>
      c.wavelengths >> policy;
  require(!in.fail(),
          "FuzzCase::parse: malformed line '" + line +
              "' (want: algorithm N elements m w policy [w_lo w_hi])");
  // Optional lease slice: exactly two more integer tokens.
  std::string lo_token;
  if (in >> lo_token) {
    std::istringstream lease(lo_token);
    lease >> c.w_lo;
    const bool lo_ok = !lease.fail() && lease.eof();
    in >> c.w_hi;
    require(lo_ok && !in.fail(),
            "FuzzCase::parse: malformed lease tokens in '" + line +
                "' (want: w_lo w_hi)");
    require(c.w_lo < c.w_hi, "FuzzCase::parse: empty lease slice in '" +
                                 line + "'");
    std::string rest;
    in >> rest;
    require(rest.empty(),
            "FuzzCase::parse: trailing tokens in '" + line + "'");
  }
  c.reconfig_policy = parse_policy(policy);
  require(c.num_nodes >= 2 && c.elements >= 1 && c.group_size >= 2 &&
              c.wavelengths >= 1,
          "FuzzCase::parse: out-of-domain values in '" + line + "'");
  return c;
}

CheckResult check_case(const FuzzCase& c) {
  core::register_wrht_algorithm();
  CheckResult result;

  std::optional<coll::Schedule> schedule;
  if (const auto kind = planner_kind(c.algorithm)) {
    // Planner candidate: feasibility prediction and builder must agree,
    // and the built schedule is subjected to the same oracles below.
    plan::PlannerOptions popts;
    popts.wavelengths = c.wavelengths;
    popts.policy = c.reconfig_policy;
    const plan::Candidate prediction =
        plan::predict(*kind, c.num_nodes, c.elements, popts);
    try {
      schedule.emplace(
          plan::build_candidate(*kind, c.num_nodes, c.elements, popts));
      if (!prediction.feasible) {
        result.add("fuzz.plan.feasibility",
                   c.to_string() + " built although predict() said '" +
                       prediction.note + "'");
        return result;
      }
    } catch (const Error& e) {
      if (prediction.feasible) {
        result.add("fuzz.plan.feasibility",
                   c.to_string() +
                       " was predicted feasible but failed to build: " +
                       e.what());
      }
      return result;
    }
  } else {
    coll::AllreduceParams params;
    params.num_nodes = c.num_nodes;
    params.elements = c.elements;
    params.group_size = c.group_size;
    params.wavelengths = c.wavelengths;
    try {
      schedule.emplace(coll::Registry::instance().build(c.algorithm, params));
    } catch (const Error& e) {
      result.add("fuzz.build",
                 c.to_string() + " failed to build: " + e.what());
      return result;
    }
  }

  // Data-level proof: the schedule must compute the global sum.
  const OracleReport oracle = check_allreduce(*schedule);
  result.merge(oracle.result);

  // Structural and RWA invariants hold for every algorithm.
  result.merge(check_schedule_structure(*schedule));
  InvariantOptions inv;
  inv.wavelengths = c.wavelengths;
  result.merge(check_conflict_freedom(*schedule, c.num_nodes, inv));

  // WRHT-specific closed-form and hierarchy checks.
  if (c.algorithm == "wrht") {
    result.merge(check_wrht_hierarchy(c.num_nodes, c.group_size,
                                      c.wavelengths));
    result.merge(check_wrht_step_count(*schedule, c.num_nodes, c.group_size,
                                       c.wavelengths));
    result.merge(check_wrht_wavelength_discipline(
        *schedule, c.num_nodes, c.group_size, c.wavelengths));
  }

  // Slice equivalence: confining the run to the leased [w_lo, w_hi) of a
  // w_hi-wavelength fabric must price EXACTLY like owning a dedicated
  // (w_hi - w_lo)-wavelength fabric — same time, steps and rounds, every
  // step's wavelengths_used offset by w_lo. This is the contract that lets
  // the svc layer slice one fabric across tenants without re-deriving any
  // engine behaviour.
  if (c.leased()) {
    const std::uint32_t slice = c.w_hi - c.w_lo;
    optics::OpticalConfig base;
    base.reconfig_policy = c.reconfig_policy;
    base.validate_node_capacity = false;
    optics::OpticalConfig leased = base;
    leased.wavelengths = c.w_hi;
    leased.lease = net::ResourceLease{c.w_lo, c.w_hi, /*tenant=*/0};
    optics::OpticalConfig narrow = base;
    narrow.wavelengths = slice;
    const optics::RingBackend leased_backend(c.num_nodes, leased,
                                             /*rng_seed=*/2023,
                                             /*collect_utilization=*/false);
    const optics::RingBackend narrow_backend(c.num_nodes, narrow,
                                             /*rng_seed=*/2023,
                                             /*collect_utilization=*/false);
    try {
      const RunReport a = leased_backend.execute(*schedule, obs::Probe{});
      const RunReport b = narrow_backend.execute(*schedule, obs::Probe{});
      if (a.total_time != b.total_time || a.steps != b.steps ||
          a.step_reports.size() != b.step_reports.size()) {
        result.add("fuzz.lease.equivalence",
                   c.to_string() + ": leased run (" +
                       std::to_string(a.total_time.count()) + "s, " +
                       std::to_string(a.steps) + " steps) != full run on a " +
                       std::to_string(slice) + "-wavelength fabric (" +
                       std::to_string(b.total_time.count()) + "s, " +
                       std::to_string(b.steps) + " steps)");
      } else {
        for (std::size_t s = 0; s < a.step_reports.size(); ++s) {
          const StepReport& sa = a.step_reports[s];
          const StepReport& sb = b.step_reports[s];
          const std::uint32_t expect_used =
              sb.wavelengths_used == 0 ? 0 : sb.wavelengths_used + c.w_lo;
          if (sa.duration != sb.duration || sa.rounds != sb.rounds ||
              sa.wavelengths_used != expect_used) {
            result.add(
                "fuzz.lease.equivalence",
                c.to_string() + ": step " + std::to_string(s) +
                    " diverges under the lease (duration " +
                    std::to_string(sa.duration.count()) + "s vs " +
                    std::to_string(sb.duration.count()) + "s, rounds " +
                    std::to_string(sa.rounds) + " vs " +
                    std::to_string(sb.rounds) + ", wavelengths_used " +
                    std::to_string(sa.wavelengths_used) + " vs expected " +
                    std::to_string(expect_used) + ")");
            break;
          }
        }
      }
    } catch (const Error& e) {
      result.add("fuzz.lease.equivalence",
                 c.to_string() + ": leased/narrow execution failed: " +
                     e.what());
    }
  }

  // Differential pricing: event-driven simulator vs Eq. (6). The
  // analytical side charges reconfiguration on every round, so the
  // differential always prices kEveryRound regardless of the drawn policy.
  DifferentialOptions diff;
  diff.config.wavelengths = c.wavelengths;
  result.merge(check_differential(*schedule, diff).result);

  // Reconfiguration-accounting draws: relaxed policies must never price
  // slower than the paper's serial default, and overlapped runs must pass
  // the full overlap-consistency invariant set.
  if (c.reconfig_policy != net::ReconfigPolicy::kEveryRound) {
    const double serial = priced_seconds(*schedule, c.num_nodes,
                                         c.wavelengths,
                                         net::ReconfigPolicy::kEveryRound);
    const double relaxed = priced_seconds(*schedule, c.num_nodes,
                                          c.wavelengths, c.reconfig_policy);
    if (relaxed > serial * (1.0 + 1e-9)) {
      result.add("fuzz.reconfig.monotonic",
                 c.to_string() + ": " + net::to_string(c.reconfig_policy) +
                     " priced " + std::to_string(relaxed) + "s > " +
                     std::to_string(serial) + "s under every_round");
    }
  }
  if (c.reconfig_policy == net::ReconfigPolicy::kOverlapped) {
    OverlapOptions overlap;
    overlap.wavelengths = c.wavelengths;
    result.merge(check_overlap_consistency(*schedule, c.num_nodes, overlap));
  }

  return result;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  core::register_wrht_algorithm();
  std::vector<std::string> algorithms =
      options.algorithms.empty() ? coll::Registry::instance().names()
                                 : options.algorithms;
  if (options.algorithms.empty() && options.draw_planner_candidates) {
    for (const char* kind : {"wrht", "flat_a2a", "static_ring"}) {
      algorithms.push_back(std::string(kPlannerPrefix) + kind);
    }
  }
  require(!algorithms.empty(), "run_fuzz: no algorithms to fuzz");

  Rng rng(options.seed);
  FuzzReport report;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    const FuzzCase c = sample(rng, algorithms, options);
    ++report.cases_per_algorithm[c.algorithm];
    const CheckResult result = check_case(c);
    ++report.iterations_run;
    if (!result.ok()) {
      report.failures.push_back(FuzzFailure{c, result});
    }
  }
  if (!report.failures.empty() && options.shrink) {
    report.minimal_failure = shrink_failure(report.failures.front().config,
                                            report.failures.front().result);
  }
  return report;
}

}  // namespace wrht::verify
