#include "wrht/verify/fuzz.hpp"

#include <algorithm>
#include <optional>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/verify/differential.hpp"
#include "wrht/verify/invariants.hpp"
#include "wrht/verify/oracle.hpp"

namespace wrht::verify {

namespace {

/// Builder-specific preconditions: clamp a raw sample into the domain the
/// algorithm accepts so the fuzzer explores valid configurations only.
void legalize(FuzzCase& c) {
  c.num_nodes = std::max<std::uint32_t>(c.num_nodes, 2);
  c.elements = std::max<std::size_t>(c.elements, 1);
  c.group_size = std::max<std::uint32_t>(c.group_size, 2);
  c.wavelengths = std::max<std::uint32_t>(c.wavelengths, 1);
  if (c.algorithm == "ring" || c.algorithm == "hring" ||
      c.algorithm == "halving_doubling") {
    // Reduce-scatter-based builders need at least one element per node.
    c.elements = std::max<std::size_t>(c.elements, c.num_nodes);
  }
}

FuzzCase sample(Rng& rng, const std::vector<std::string>& algorithms,
                const FuzzOptions& options) {
  FuzzCase c;
  c.algorithm =
      algorithms[rng.uniform_int(0, algorithms.size() - 1)];
  c.num_nodes = static_cast<std::uint32_t>(
      rng.uniform_int(2, options.max_nodes));
  c.elements = static_cast<std::size_t>(
      rng.uniform_int(1, options.max_elements));
  c.group_size = static_cast<std::uint32_t>(
      rng.uniform_int(2, std::max<std::uint32_t>(2, std::min<std::uint32_t>(
                                                        c.num_nodes, 16))));
  c.wavelengths = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
  legalize(c);
  return c;
}

/// Greedy shrink: repeatedly try to move each dimension toward its
/// minimum (halving first, then decrementing) while the case still fails.
FuzzFailure shrink_failure(const FuzzCase& first, const CheckResult& found) {
  FuzzFailure best{first, found};
  const auto try_case = [&best](FuzzCase candidate) {
    legalize(candidate);
    if (candidate.algorithm == best.config.algorithm &&
        candidate.num_nodes == best.config.num_nodes &&
        candidate.elements == best.config.elements &&
        candidate.group_size == best.config.group_size &&
        candidate.wavelengths == best.config.wavelengths) {
      return false;
    }
    const CheckResult r = check_case(candidate);
    if (r.ok()) return false;
    best = FuzzFailure{candidate, r};
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    FuzzCase c = best.config;
    // Nodes first — the dominant cost dimension.
    { FuzzCase t = c; t.num_nodes = (t.num_nodes + 2) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.num_nodes -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.elements = (t.elements + 1) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.elements -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.group_size = (t.group_size + 2) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.group_size -= 1; progress |= try_case(t); }
    { FuzzCase t = best.config; t.wavelengths = (t.wavelengths + 1) / 2; progress |= try_case(t); }
    { FuzzCase t = best.config; t.wavelengths -= 1; progress |= try_case(t); }
  }
  return best;
}

}  // namespace

std::string FuzzCase::to_string() const {
  return algorithm + "(N=" + std::to_string(num_nodes) +
         ", elements=" + std::to_string(elements) +
         ", m=" + std::to_string(group_size) +
         ", w=" + std::to_string(wavelengths) + ")";
}

CheckResult check_case(const FuzzCase& c) {
  core::register_wrht_algorithm();
  CheckResult result;

  coll::AllreduceParams params;
  params.num_nodes = c.num_nodes;
  params.elements = c.elements;
  params.group_size = c.group_size;
  params.wavelengths = c.wavelengths;
  std::optional<coll::Schedule> schedule;
  try {
    schedule.emplace(coll::Registry::instance().build(c.algorithm, params));
  } catch (const Error& e) {
    result.add("fuzz.build",
               c.to_string() + " failed to build: " + e.what());
    return result;
  }

  // Data-level proof: the schedule must compute the global sum.
  const OracleReport oracle = check_allreduce(*schedule);
  result.merge(oracle.result);

  // Structural and RWA invariants hold for every algorithm.
  result.merge(check_schedule_structure(*schedule));
  InvariantOptions inv;
  inv.wavelengths = c.wavelengths;
  result.merge(check_conflict_freedom(*schedule, c.num_nodes, inv));

  // WRHT-specific closed-form and hierarchy checks.
  if (c.algorithm == "wrht") {
    result.merge(check_wrht_hierarchy(c.num_nodes, c.group_size,
                                      c.wavelengths));
    result.merge(check_wrht_step_count(*schedule, c.num_nodes, c.group_size,
                                       c.wavelengths));
    result.merge(check_wrht_wavelength_discipline(
        *schedule, c.num_nodes, c.group_size, c.wavelengths));
  }

  // Differential pricing: event-driven simulator vs Eq. (6).
  DifferentialOptions diff;
  diff.config.wavelengths = c.wavelengths;
  result.merge(check_differential(*schedule, diff).result);

  return result;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  core::register_wrht_algorithm();
  const std::vector<std::string> algorithms =
      options.algorithms.empty() ? coll::Registry::instance().names()
                                 : options.algorithms;
  require(!algorithms.empty(), "run_fuzz: no algorithms to fuzz");

  Rng rng(options.seed);
  FuzzReport report;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    const FuzzCase c = sample(rng, algorithms, options);
    ++report.cases_per_algorithm[c.algorithm];
    const CheckResult result = check_case(c);
    ++report.iterations_run;
    if (!result.ok()) {
      report.failures.push_back(FuzzFailure{c, result});
    }
  }
  if (!report.failures.empty() && options.shrink) {
    report.minimal_failure = shrink_failure(report.failures.front().config,
                                            report.failures.front().result);
  }
  return report;
}

}  // namespace wrht::verify
