#include "wrht/verify/invariants.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/optical/lightpath.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::verify {

namespace {

std::string at_step(std::size_t s) { return " in step " + std::to_string(s); }

/// ceil(1.5 * x): the operational first-fit colouring budget (DESIGN.md).
std::uint64_t operational_budget(std::uint64_t analytic) {
  return (3 * analytic + 1) / 2;
}

}  // namespace

CheckResult check_schedule_structure(const coll::Schedule& schedule) {
  CheckResult result;
  const std::uint32_t n = schedule.num_nodes();
  const std::size_t elements = schedule.elements();
  const auto& steps = schedule.steps();
  for (std::size_t s = 0; s < steps.size(); ++s) {
    if (steps[s].transfers.empty()) {
      result.add("invariant.structure.empty_step",
                 "step " + std::to_string(s) + " moves nothing");
      continue;
    }
    for (const coll::Transfer& t : steps[s].transfers) {
      if (t.src >= n || t.dst >= n) {
        result.add("invariant.structure.node_range",
                   "transfer " + std::to_string(t.src) + "->" +
                       std::to_string(t.dst) + " exceeds " +
                       std::to_string(n) + " nodes" + at_step(s));
      }
      if (t.src == t.dst) {
        result.add("invariant.structure.self_transfer",
                   "node " + std::to_string(t.src) + " sends to itself" +
                       at_step(s));
      }
      if (t.count == 0 || t.offset + t.count > elements) {
        result.add("invariant.structure.element_range",
                   "range [" + std::to_string(t.offset) + ", " +
                       std::to_string(t.offset + t.count) + ") outside " +
                       std::to_string(elements) + " elements" + at_step(s));
      }
    }
  }
  return result;
}

CheckResult check_conflict_freedom(const coll::Schedule& schedule,
                                   std::uint32_t ring_size,
                                   const InvariantOptions& options) {
  CheckResult result;
  const topo::Ring ring(ring_size);
  optics::RwaOptions rwa;
  rwa.wavelengths = options.wavelengths;
  rwa.fibers_per_direction = options.fibers_per_direction;
  rwa.policy = options.rwa_policy;
  // Random-fit draws wavelengths; seed deterministically so the check is
  // reproducible.
  Rng rng;
  Rng* rng_ptr = rwa.policy == optics::RwaPolicy::kRandomFit ? &rng : nullptr;

  const auto& steps = schedule.steps();
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const auto& transfers = steps[s].transfers;
    if (transfers.empty()) continue;
    optics::RoundsResult rounds;
    try {
      rounds = optics::assign_rounds(ring, transfers, rwa, rng_ptr);
    } catch (const Error& e) {
      result.add("invariant.rwa.infeasible", std::string(e.what()) + at_step(s));
      continue;
    }

    // Rounds must partition the step's transfers.
    std::vector<std::uint32_t> seen(transfers.size(), 0);
    for (const auto& round : rounds.rounds) {
      for (const std::size_t idx : round) {
        if (idx >= transfers.size()) {
          result.add("invariant.rwa.partition",
                     "round references transfer " + std::to_string(idx) +
                         " of " + std::to_string(transfers.size()) +
                         at_step(s));
        } else {
          ++seen[idx];
        }
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] != 1) {
        result.add("invariant.rwa.partition",
                   "transfer " + std::to_string(i) + " scheduled " +
                       std::to_string(seen[i]) + " times" + at_step(s));
      }
    }

    // Every round independently re-verified: endpoints match, budget
    // respected, and zero conflicting lightpath pairs.
    for (std::size_t r = 0; r < rounds.paths.size(); ++r) {
      const auto& paths = rounds.paths[r];
      const auto& members = rounds.rounds[r];
      for (std::size_t i = 0; i < paths.size() && i < members.size(); ++i) {
        const coll::Transfer& t = transfers[members[i]];
        if (paths[i].src != t.src || paths[i].dst != t.dst) {
          result.add("invariant.rwa.endpoints",
                     "lightpath " + std::to_string(paths[i].src) + "->" +
                         std::to_string(paths[i].dst) +
                         " does not carry transfer " +
                         std::to_string(t.src) + "->" +
                         std::to_string(t.dst) + at_step(s));
        }
        if (t.direction && paths[i].direction != *t.direction) {
          result.add("invariant.rwa.direction_hint",
                     "transfer " + std::to_string(t.src) + "->" +
                         std::to_string(t.dst) +
                         " routed against its direction hint" + at_step(s));
        }
        if (paths[i].wavelength >= options.wavelengths) {
          result.add("invariant.rwa.budget",
                     "wavelength " + std::to_string(paths[i].wavelength) +
                         " exceeds budget " +
                         std::to_string(options.wavelengths) + at_step(s));
        }
      }
      const std::size_t conflicts = optics::count_conflicts(paths, ring_size);
      if (conflicts != 0) {
        result.add("invariant.rwa.conflict",
                   std::to_string(conflicts) + " conflicting lightpath " +
                       "pair(s) in round " + std::to_string(r) + at_step(s));
      }
    }
  }
  return result;
}

CheckResult check_wrht_hierarchy(std::uint32_t num_nodes,
                                 std::uint32_t group_size,
                                 std::uint32_t wavelengths) {
  CheckResult result;
  const core::Hierarchy h =
      core::build_hierarchy(num_nodes, group_size, wavelengths);

  std::vector<core::NodeId> expected(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) expected[i] = i;

  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const auto& groups = h.levels[l].groups;
    const std::string at_level = " at level " + std::to_string(l);

    // The all-to-all cutoff must not have been available when this level
    // was built, or the hierarchy stopped one level too late.
    if (core::all_to_all_wavelengths(expected.size()) <= wavelengths) {
      result.add("invariant.hierarchy.missed_cutoff",
                 std::to_string(expected.size()) +
                     " nodes already fit the all-to-all budget" + at_level);
    }

    const std::size_t want_groups =
        (expected.size() + group_size - 1) / group_size;
    if (groups.size() != want_groups) {
      result.add("invariant.hierarchy.group_count",
                 std::to_string(groups.size()) + " groups, want ceil(" +
                     std::to_string(expected.size()) + "/" +
                     std::to_string(group_size) + ") = " +
                     std::to_string(want_groups) + at_level);
    }

    // Groups must partition the level's input in ring order, with balanced
    // sizes (differ by at most one) and middle representatives.
    std::size_t cursor = 0;
    std::size_t min_size = num_nodes + 1;
    std::size_t max_size = 0;
    std::vector<core::NodeId> reps;
    for (const core::Group& g : groups) {
      min_size = std::min(min_size, g.members.size());
      max_size = std::max(max_size, g.members.size());
      if (g.members.size() > group_size) {
        result.add("invariant.hierarchy.group_size",
                   "group of " + std::to_string(g.members.size()) +
                       " exceeds m = " + std::to_string(group_size) +
                       at_level);
      }
      if (g.rep_index != g.members.size() / 2) {
        result.add("invariant.hierarchy.rep_middle",
                   "rep index " + std::to_string(g.rep_index) +
                       " is not the middle of " +
                       std::to_string(g.members.size()) + " members" +
                       at_level);
      }
      for (const core::NodeId member : g.members) {
        if (cursor >= expected.size() || expected[cursor] != member) {
          result.add("invariant.hierarchy.partition",
                     "node " + std::to_string(member) +
                         " breaks the ring-order partition" + at_level);
          return result;  // cascading mismatches would repeat this finding
        }
        ++cursor;
      }
      reps.push_back(g.rep());
    }
    if (cursor != expected.size()) {
      result.add("invariant.hierarchy.partition",
                 std::to_string(expected.size() - cursor) +
                     " node(s) missing from the partition" + at_level);
    }
    if (max_size > min_size + 1) {
      result.add("invariant.hierarchy.balance",
                 "group sizes span [" + std::to_string(min_size) + ", " +
                     std::to_string(max_size) +
                     "], want a spread of at most one" + at_level);
    }
    expected = std::move(reps);
  }

  if (expected != h.final_reps) {
    result.add("invariant.hierarchy.final_reps",
               "final representatives are not the last level's survivors");
  }
  if (h.final_all_to_all) {
    if (h.final_reps.size() < 2) {
      result.add("invariant.hierarchy.a2a_degenerate",
                 "all-to-all among " + std::to_string(h.final_reps.size()) +
                     " representative(s)");
    }
    if (core::all_to_all_wavelengths(h.final_reps.size()) > wavelengths) {
      result.add("invariant.hierarchy.a2a_budget",
                 "ceil(" + std::to_string(h.final_reps.size()) + "^2/8) = " +
                     std::to_string(core::all_to_all_wavelengths(
                         h.final_reps.size())) +
                     " exceeds w = " + std::to_string(wavelengths));
    }
  } else if (h.final_reps.size() != 1) {
    result.add("invariant.hierarchy.root",
               "reduce stage ended with " +
                   std::to_string(h.final_reps.size()) +
                   " representatives and no all-to-all");
  }
  return result;
}

CheckResult check_wrht_step_count(const coll::Schedule& schedule,
                                  std::uint32_t num_nodes,
                                  std::uint32_t group_size,
                                  std::uint32_t wavelengths) {
  CheckResult result;
  const core::WrhtStepPlan plan =
      core::wrht_plan(num_nodes, group_size, wavelengths);
  if (schedule.num_steps() != plan.total_steps) {
    result.add("invariant.steps.plan",
               "schedule has " + std::to_string(schedule.num_steps()) +
                   " steps, closed form says " +
                   std::to_string(plan.total_steps));
  }
  const std::uint64_t upper = core::wrht_steps_upper(num_nodes, group_size);
  if (plan.total_steps > upper) {
    result.add("invariant.steps.upper_bound",
               std::to_string(plan.total_steps) + " steps exceed 2*ceil(log_" +
                   std::to_string(group_size) + " " +
                   std::to_string(num_nodes) + ") = " + std::to_string(upper));
  }
  // Lemma 1 applies to plans whose group size respects the budget.
  if (group_size <= 2 * wavelengths + 1) {
    const std::uint64_t lower = core::wrht_min_steps(num_nodes, wavelengths);
    if (plan.total_steps + 1 < lower) {
      result.add("invariant.steps.lemma1",
                 std::to_string(plan.total_steps) +
                     " steps beat the Lemma 1 bound " + std::to_string(lower) +
                     " by more than the all-to-all saving");
    }
  }
  return result;
}

CheckResult check_wrht_wavelength_discipline(const coll::Schedule& schedule,
                                             std::uint32_t num_nodes,
                                             std::uint32_t group_size,
                                             std::uint32_t wavelengths) {
  CheckResult result;
  const core::WrhtStepPlan plan =
      core::wrht_plan(num_nodes, group_size, wavelengths);
  const std::uint64_t analytic = std::max<std::uint64_t>(
      plan.wavelengths_required, 1);

  // Single rounds within the operational (first-fit) budget.
  optics::OpticalConfig strict;
  strict.wavelengths = static_cast<std::uint32_t>(operational_budget(analytic));
  strict.allow_multi_round_steps = false;
  try {
    const optics::RingNetwork net(num_nodes, strict);
    const optics::OpticalRunResult res = net.execute(schedule);
    if (res.total_rounds != res.steps) {
      result.add("invariant.wavelengths.single_round",
                 std::to_string(res.total_rounds) + " rounds for " +
                     std::to_string(res.steps) + " steps at 1.5x budget");
    }
  } catch (const Error& e) {
    result.add("invariant.wavelengths.operational",
               "not single-round within ceil(1.5 * " +
                   std::to_string(analytic) + ") lambdas: " + e.what());
  }

  // Still carriable (splitting allowed) at the analytic requirement.
  optics::OpticalConfig lax;
  lax.wavelengths = static_cast<std::uint32_t>(analytic);
  try {
    const optics::RingNetwork net(num_nodes, lax);
    const optics::OpticalRunResult res = net.execute(schedule);
    if (res.max_wavelengths_used > analytic) {
      result.add("invariant.wavelengths.analytic",
                 std::to_string(res.max_wavelengths_used) +
                     " lambdas used against requirement " +
                     std::to_string(analytic));
    }
  } catch (const Error& e) {
    result.add("invariant.wavelengths.carriable",
               std::string("schedule cannot be carried at the analytic "
                           "requirement: ") +
                   e.what());
  }
  return result;
}

CheckResult check_wrht_configuration(std::uint32_t num_nodes,
                                     std::uint32_t group_size,
                                     std::uint32_t wavelengths,
                                     std::size_t elements) {
  core::WrhtOptions options;
  options.group_size = group_size;
  options.wavelengths = wavelengths;
  const coll::Schedule schedule =
      core::wrht_allreduce(num_nodes, elements, options);

  CheckResult result;
  result.merge(check_schedule_structure(schedule));
  InvariantOptions inv;
  inv.wavelengths = wavelengths;
  result.merge(check_conflict_freedom(schedule, num_nodes, inv));
  result.merge(check_wrht_hierarchy(num_nodes, group_size, wavelengths));
  result.merge(
      check_wrht_step_count(schedule, num_nodes, group_size, wavelengths));
  result.merge(check_wrht_wavelength_discipline(schedule, num_nodes,
                                                group_size, wavelengths));
  return result;
}

}  // namespace wrht::verify
