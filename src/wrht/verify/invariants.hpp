// Invariant checkers for schedules, hierarchies and wavelength assignments.
//
// Each checker re-derives a property the construction code claims by
// design and reports every violation as a Finding:
//   * schedule structure  — node ids, element ranges, non-empty steps;
//   * conflict freedom    — every RWA round is independently re-verified
//     with optics::count_conflicts, rounds partition the step's transfers,
//     and the wavelength high-water mark respects the fiber budget;
//   * WRHT hierarchy      — groups partition each level, representatives
//     are group middles, balanced group sizes (differ by at most one),
//     levels chain through surviving representatives, and the final
//     all-to-all is only chosen when ceil(k^2/8) <= w;
//   * step counts         — generated schedule length equals the closed
//     form (wrht_plan), never exceeds the paper's 2*ceil(log_m N) upper
//     bound, and never beats the Lemma 1 lower bound by more than the
//     all-to-all saving of one step;
//   * wavelength discipline — the whole WRHT schedule executes in
//     single rounds within the documented operational budget of 1.5x the
//     analytic requirement (first-fit colouring slack, DESIGN.md).
#pragma once

#include <cstdint>

#include "wrht/collectives/schedule.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/grouping.hpp"
#include "wrht/optical/rwa.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct InvariantOptions {
  /// Fiber wavelength budget w the schedule must respect.
  std::uint32_t wavelengths = 64;
  std::uint32_t fibers_per_direction = 1;
  optics::RwaPolicy rwa_policy = optics::RwaPolicy::kFirstFit;
};

/// Structural soundness: ids in range, ranges in bounds, no self
/// transfers, no empty steps. Mirrors Schedule::validate() but reports
/// findings instead of throwing, and adds the non-empty-step check.
[[nodiscard]] CheckResult check_schedule_structure(
    const coll::Schedule& schedule);

/// Runs RWA on every step (multi-round splitting allowed) and
/// independently re-verifies the result: each round must be conflict-free
/// under optics::count_conflicts, the rounds of a step must partition its
/// transfers, and no round may exceed the wavelength budget.
[[nodiscard]] CheckResult check_conflict_freedom(
    const coll::Schedule& schedule, std::uint32_t ring_size,
    const InvariantOptions& options);

/// Re-derives every structural property of the WRHT hierarchy for
/// (num_nodes, group_size, wavelengths).
[[nodiscard]] CheckResult check_wrht_hierarchy(std::uint32_t num_nodes,
                                               std::uint32_t group_size,
                                               std::uint32_t wavelengths);

/// Generated-schedule step count vs the closed form and the paper bounds.
[[nodiscard]] CheckResult check_wrht_step_count(const coll::Schedule& schedule,
                                                std::uint32_t num_nodes,
                                                std::uint32_t group_size,
                                                std::uint32_t wavelengths);

/// The generated WRHT schedule must execute in one round per step on a
/// double ring carrying ceil(1.5 * wavelengths_required) lambdas (the
/// operational first-fit bound); with the analytic requirement alone the
/// steps must still be carriable (multi-round splitting permitted).
[[nodiscard]] CheckResult check_wrht_wavelength_discipline(
    const coll::Schedule& schedule, std::uint32_t num_nodes,
    std::uint32_t group_size, std::uint32_t wavelengths);

/// All WRHT invariants for one configuration (hierarchy + step count +
/// wavelength discipline + structure + conflict freedom).
[[nodiscard]] CheckResult check_wrht_configuration(std::uint32_t num_nodes,
                                                   std::uint32_t group_size,
                                                   std::uint32_t wavelengths,
                                                   std::size_t elements);

}  // namespace wrht::verify
