// Blame-accounting invariants: every diag report must attribute exactly
// the time it claims to explain. The identity
//
//   sum over categories == total_time   (run makespan or summed JCT)
//
// is the contract that makes blame percentages trustworthy; a report that
// leaks or double-counts time is worse than no report. Checked to the
// repo-wide 1e-9 relative tolerance (fp summation order, nothing else).
#pragma once

#include "wrht/diag/blame.hpp"
#include "wrht/diag/svc_blame.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

/// Run-level report: Σ categories == total_time, no materially negative
/// category, and a non-empty critical path whenever time was observed.
[[nodiscard]] CheckResult check_blame_identity(const diag::BlameReport& report);

/// Service-level report: the global identity plus per-tenant identities
/// (each tenant's categories must sum to that tenant's JCT).
[[nodiscard]] CheckResult check_blame_identity(const diag::ServiceBlame& blame);

}  // namespace wrht::verify
