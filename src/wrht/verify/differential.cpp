#include "wrht/verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "wrht/common/error.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/optical/optical_backend.hpp"

namespace wrht::verify {

DifferentialReport check_differential(const coll::Schedule& schedule,
                                      const DifferentialOptions& options) {
  DifferentialReport report;
  const optics::OpticalConfig& cfg = options.config;

  RunReport run;
  try {
    if (options.backend != nullptr) {
      run = options.backend->execute(schedule);
    } else {
      const optics::RingBackend backend(schedule.num_nodes(), cfg);
      run = backend.execute(schedule);
    }
  } catch (const Error& e) {
    report.result.add("differential.infeasible",
                      std::string("simulator rejected the schedule: ") +
                          e.what());
    return report;
  }
  report.simulated_seconds = run.total_time.count();
  report.single_round = run.rounds == run.steps;

  // Eq. (6) from the analysis module: per step, overhead a plus the
  // serialization of the step's widest transfer.
  core::TimeModel model;
  model.per_step_overhead =
      Seconds{cfg.mrr_reconfig_delay.count() + cfg.oeo_delay.count()};
  model.bytes_per_second = cfg.bytes_per_second();
  double analytical = 0.0;
  for (const coll::Step& step : schedule.steps()) {
    std::size_t widest = 0;
    for (const coll::Transfer& t : step.transfers) {
      widest = std::max(widest, t.count);
    }
    const Bytes payload{static_cast<std::uint64_t>(widest) *
                        cfg.bytes_per_element};
    analytical += core::comm_time(1, payload, model).count();
  }
  report.analytical_seconds = analytical;

  const double diff = std::abs(report.simulated_seconds - analytical);
  report.rel_error = analytical > 0.0 ? diff / analytical : 0.0;

  if (report.single_round) {
    if (report.rel_error > options.rel_tolerance) {
      report.result.add(
          "differential.tolerance",
          "simulated " + std::to_string(report.simulated_seconds) +
              " s vs analytical " + std::to_string(analytical) + " s (" +
              std::to_string(report.rel_error * 100.0) +
              "% relative error, single-round)");
    }
  } else if (report.simulated_seconds + 1e-12 < analytical) {
    report.result.add(
        "differential.lower_bound",
        "multi-round run finished in " +
            std::to_string(report.simulated_seconds) +
            " s, beating the Eq. (6) lower bound " +
            std::to_string(analytical) + " s");
  }
  return report;
}

}  // namespace wrht::verify
