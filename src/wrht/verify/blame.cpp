#include "wrht/verify/blame.hpp"

#include <cmath>
#include <string>

namespace wrht::verify {

namespace {

/// fp-summation slack only: the attribution is exact by construction.
bool identity_holds(double attributed, double total) {
  const double tolerance = std::max(1e-12, 1e-9 * std::abs(total));
  return std::abs(attributed - total) <= tolerance;
}

void check_totals(const diag::BlameTotals& totals, double total,
                  const std::string& scope, CheckResult* result) {
  if (!identity_holds(totals.total(), total)) {
    result->add("blame_identity",
                scope + ": attributed " + std::to_string(totals.total()) +
                    " s != total " + std::to_string(total) + " s");
  }
  for (const diag::BlameCategory category : diag::all_blame_categories()) {
    if (totals[category] < -1e-12) {
      result->add("blame_nonnegative",
                  scope + ": category '" + diag::to_string(category) +
                      "' is negative (" + std::to_string(totals[category]) +
                      " s)");
    }
  }
}

}  // namespace

CheckResult check_blame_identity(const diag::BlameReport& report) {
  CheckResult result;
  check_totals(report.categories, report.total_time.count(),
               "run[" + report.backend + "]", &result);
  if (report.total_time.count() > 0.0 && report.critical_path.empty()) {
    result.add("blame_critical_path",
               "run[" + report.backend +
                   "]: nonzero makespan but empty critical path");
  }
  for (const diag::LaneBlame& lane : report.lanes) {
    // Each lane's attribution covers the full run span it participated
    // in (busy + straggler wait); checked against the per-step maxima it
    // was measured under, i.e. the lane totals must also balance.
    const double lane_total =
        lane.totals.total() - lane.totals[diag::BlameCategory::kQueueing] -
        lane.totals[diag::BlameCategory::kFragmentation];
    if (lane_total < -1e-12) {
      result.add("blame_lane",
                 "lane '" + lane.lane + "': negative attribution (" +
                     std::to_string(lane_total) + " s)");
    }
  }
  return result;
}

CheckResult check_blame_identity(const diag::ServiceBlame& blame) {
  CheckResult result;
  check_totals(blame.categories, blame.total_jct.count(),
               "service[" + blame.policy + "]", &result);
  double tenant_jct = 0.0;
  for (const diag::TenantBlame& tenant : blame.tenants) {
    check_totals(tenant.totals, tenant.jct.count(),
                 "tenant " + std::to_string(tenant.tenant), &result);
    tenant_jct += tenant.jct.count();
  }
  if (!blame.tenants.empty() &&
      !identity_holds(tenant_jct, blame.total_jct.count())) {
    result.add("blame_tenant_partition",
               "service[" + blame.policy + "]: per-tenant JCTs sum to " +
                   std::to_string(tenant_jct) + " s, not the total " +
                   std::to_string(blame.total_jct.count()) + " s");
  }
  return result;
}

}  // namespace wrht::verify
