// Invariants of overlapped reconfiguration (ReconfigPolicy::kOverlapped).
//
// Overlapping the retune for round k+1 with round k's transmission is a
// pure re-pricing: it must not change WHAT the schedule does, only WHEN
// the reconfiguration delay lands. check_overlap_consistency re-derives
// that claim on the optical ring engine:
//   * structure   — same steps, rounds and wavelength high-water marks as
//     the serial (kEveryRound) run, so the RWA was untouched;
//   * conflicts   — every round of the schedule is independently
//     re-verified conflict-free (the serial invariant still holds);
//   * monotonic   — the overlapped run is never slower, per step and in
//     total;
//   * identity    — overlapped total_time + overlap_hidden equals the
//     serial total exactly (every hidden second is accounted for);
//   * accounting  — with occupancy sampling on, the per-step breakdown
//     (reconfiguration residual + conversion + transmission + straggler
//     wait + idle) still tiles every step and the run.
#pragma once

#include <cstdint>

#include "wrht/collectives/schedule.hpp"
#include "wrht/verify/report.hpp"

namespace wrht::verify {

struct OverlapOptions {
  std::uint32_t wavelengths = 64;
  std::uint32_t fibers_per_direction = 1;
  /// Relative tolerance for the time identities (floating-point sums).
  double tolerance = 1e-9;
};

/// Runs `schedule` on a `ring_size`-node optical ring under kEveryRound and
/// kOverlapped and re-derives every overlap invariant above.
[[nodiscard]] CheckResult check_overlap_consistency(
    const coll::Schedule& schedule, std::uint32_t ring_size,
    const OverlapOptions& options = {});

}  // namespace wrht::verify
