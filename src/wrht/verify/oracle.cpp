#include "wrht/verify/oracle.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::verify {

namespace {

using coll::Schedule;
using coll::Transfer;
using coll::TransferKind;

/// Interpreter state: numeric buffers always, contribution counts when
/// provenance is on. counts[node] is a row-major [elements][num_nodes]
/// matrix: counts[node][e * n + src] = how many copies of src's initial
/// element e node currently holds.
struct Machine {
  std::uint32_t n = 0;
  std::size_t elements = 0;
  bool provenance = false;
  std::vector<std::vector<double>> values;
  std::vector<std::vector<std::uint32_t>> counts;
};

Machine boot(const Schedule& schedule, const OracleOptions& options) {
  Machine m;
  m.n = schedule.num_nodes();
  m.elements = schedule.elements();
  const std::uint64_t cells = static_cast<std::uint64_t>(m.n) * m.n *
                              static_cast<std::uint64_t>(m.elements);
  m.provenance = cells <= options.provenance_cell_limit;

  Rng rng(options.seed);
  m.values.resize(m.n);
  if (m.provenance) m.counts.resize(m.n);
  for (std::uint32_t i = 0; i < m.n; ++i) {
    m.values[i] = rng.uniform_vector(m.elements, -1.0, 1.0);
    if (m.provenance) {
      m.counts[i].assign(m.elements * m.n, 0);
      for (std::size_t e = 0; e < m.elements; ++e) m.counts[i][e * m.n + i] = 1;
    }
  }
  return m;
}

/// Runs the schedule with snapshot-per-step semantics. Senders are read
/// from a beginning-of-step copy, so the transfer order inside a step
/// cannot matter — exactly the concurrency model the lightpath hardware
/// implements.
void interpret(const Schedule& schedule, Machine& m) {
  for (const auto& step : schedule.steps()) {
    std::unordered_map<std::uint32_t, std::vector<double>> value_snap;
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> count_snap;
    for (const Transfer& t : step.transfers) {
      value_snap.try_emplace(t.src, m.values[t.src]);
      if (m.provenance) count_snap.try_emplace(t.src, m.counts[t.src]);
    }
    for (const Transfer& t : step.transfers) {
      const auto& src_v = value_snap.at(t.src);
      auto& dst_v = m.values[t.dst];
      if (t.kind == TransferKind::kReduce) {
        for (std::size_t e = t.offset; e < t.offset + t.count; ++e) {
          dst_v[e] += src_v[e];
        }
      } else {
        for (std::size_t e = t.offset; e < t.offset + t.count; ++e) {
          dst_v[e] = src_v[e];
        }
      }
      if (m.provenance) {
        const auto& src_c = count_snap.at(t.src);
        auto& dst_c = m.counts[t.dst];
        const std::size_t lo = t.offset * m.n;
        const std::size_t hi = (t.offset + t.count) * m.n;
        if (t.kind == TransferKind::kReduce) {
          for (std::size_t c = lo; c < hi; ++c) dst_c[c] += src_c[c];
        } else {
          std::memcpy(dst_c.data() + lo, src_c.data() + lo,
                      (hi - lo) * sizeof(std::uint32_t));
        }
      }
    }
  }
}

/// Numeric comparison of node `i`'s buffer against `expected`.
void compare_numeric(const Machine& m, std::uint32_t i,
                     const std::vector<double>& expected, double tolerance,
                     const char* what, OracleReport& report) {
  for (std::size_t e = 0; e < m.elements; ++e) {
    const double err = std::abs(m.values[i][e] - expected[e]);
    if (err > report.max_abs_error) {
      report.max_abs_error = err;
      report.worst_node = i;
      report.worst_element = e;
    }
    if (err > tolerance) {
      report.result.add(
          std::string("oracle.") + what + ".numeric",
          "node " + std::to_string(i) + " element " + std::to_string(e) +
              " off by " + std::to_string(err));
      return;  // one numeric finding per node is enough
    }
  }
}

/// Exact provenance comparison: node `i` must hold `want[src]` copies of
/// every source's contribution at every element.
void compare_provenance(const Machine& m, std::uint32_t i,
                        const std::vector<std::uint32_t>& want,
                        const char* what, OracleReport& report) {
  for (std::size_t e = 0; e < m.elements; ++e) {
    for (std::uint32_t src = 0; src < m.n; ++src) {
      const std::uint32_t got = m.counts[i][e * m.n + src];
      if (got != want[src]) {
        report.result.add(
            std::string("oracle.") + what + ".provenance",
            "node " + std::to_string(i) + " element " + std::to_string(e) +
                " holds " + std::to_string(got) + " contribution(s) of node " +
                std::to_string(src) + ", want " + std::to_string(want[src]));
        return;  // one provenance finding per node is enough
      }
    }
  }
}

}  // namespace

OracleReport check_allreduce(const coll::Schedule& schedule,
                             const OracleOptions& options) {
  const prof::ScopedTimer timer("verify.oracle.check");
  schedule.validate();
  Machine m = boot(schedule, options);
  std::vector<double> expected(m.elements, 0.0);
  for (std::uint32_t i = 0; i < m.n; ++i) {
    for (std::size_t e = 0; e < m.elements; ++e) expected[e] += m.values[i][e];
  }
  interpret(schedule, m);

  OracleReport report;
  report.provenance_checked = m.provenance;
  const std::vector<std::uint32_t> one_of_each(m.n, 1);
  for (std::uint32_t i = 0; i < m.n; ++i) {
    compare_numeric(m, i, expected, options.tolerance, "allreduce", report);
    if (m.provenance) {
      compare_provenance(m, i, one_of_each, "allreduce", report);
    }
  }
  return report;
}

OracleReport check_reduce(const coll::Schedule& schedule, std::uint32_t root,
                          const OracleOptions& options) {
  schedule.validate();
  require(root < schedule.num_nodes(), "check_reduce: root out of range");
  Machine m = boot(schedule, options);
  std::vector<double> expected(m.elements, 0.0);
  for (std::uint32_t i = 0; i < m.n; ++i) {
    for (std::size_t e = 0; e < m.elements; ++e) expected[e] += m.values[i][e];
  }
  interpret(schedule, m);

  OracleReport report;
  report.provenance_checked = m.provenance;
  compare_numeric(m, root, expected, options.tolerance, "reduce", report);
  if (m.provenance) {
    const std::vector<std::uint32_t> one_of_each(m.n, 1);
    compare_provenance(m, root, one_of_each, "reduce", report);
  }
  return report;
}

OracleReport check_broadcast(const coll::Schedule& schedule,
                             std::uint32_t root,
                             const OracleOptions& options) {
  schedule.validate();
  require(root < schedule.num_nodes(), "check_broadcast: root out of range");
  Machine m = boot(schedule, options);
  const std::vector<double> expected = m.values[root];
  interpret(schedule, m);

  OracleReport report;
  report.provenance_checked = m.provenance;
  std::vector<std::uint32_t> roots_only(m.n, 0);
  roots_only[root] = 1;
  for (std::uint32_t i = 0; i < m.n; ++i) {
    compare_numeric(m, i, expected, options.tolerance, "broadcast", report);
    if (m.provenance) {
      compare_provenance(m, i, roots_only, "broadcast", report);
    }
  }
  return report;
}

}  // namespace wrht::verify
