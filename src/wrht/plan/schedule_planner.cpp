#include "wrht/plan/schedule_planner.hpp"

#include <algorithm>

#include "wrht/collectives/ring_allreduce.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/planner.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::plan {

namespace {

/// One modelled round: its serialization time and whether its micro-ring
/// tuning differs from the previous round's.
struct RoundModel {
  double serialization = 0.0;
  bool retunes = true;
};

struct PricedRounds {
  double time = 0.0;
  std::uint64_t charges = 0;
  double hidden = 0.0;
};

/// The exact per-round arithmetic RingNetwork performs, over modelled
/// rounds instead of RWA output: every round costs reconfiguration (as the
/// policy dictates) + O/E/O + serialization, and under kOverlapped the
/// retune hides inside the previous round's O/E/O + serialization window.
PricedRounds price_rounds(const std::vector<RoundModel>& rounds,
                          const PlannerOptions& options) {
  const double a = options.mrr_reconfig_delay.count();
  const double oeo = options.oeo_delay.count();
  PricedRounds out;
  double window = 0.0;  // kOverlapped: zero before round 0
  for (const RoundModel& round : rounds) {
    double reconfig = 0.0;
    switch (options.policy) {
      case net::ReconfigPolicy::kEveryRound:
        reconfig = a;
        break;
      case net::ReconfigPolicy::kOnRetune:
        reconfig = round.retunes ? a : 0.0;
        break;
      case net::ReconfigPolicy::kOverlapped:
        reconfig = std::max(0.0, a - window);
        out.hidden += a - reconfig;
        break;
    }
    if (reconfig > 0.0) ++out.charges;
    out.time += reconfig + oeo + round.serialization;
    window = oeo + round.serialization;
  }
  return out;
}

/// ceil(d/N) elements — the largest chunk, which governs every
/// reduce-scatter / all-gather round's serialization.
std::size_t max_chunk(std::size_t elements, std::uint32_t num_nodes) {
  return (elements + num_nodes - 1) / num_nodes;
}

/// Exact per-direction segment load of the flat all-to-all under
/// shortest-direction routing with antipodal ties alternating: odd N gives
/// (N^2-1)/8, even N gives ceil(N^2/8) (the paper's §4.1.2 bound).
std::uint64_t alltoall_wavelengths(std::uint32_t n) {
  const std::uint64_t nn = static_cast<std::uint64_t>(n) * n;
  return n % 2 == 0 ? (nn + 7) / 8 : (nn - 1) / 8;
}

Candidate predict_wrht(std::uint32_t num_nodes, std::size_t elements,
                       const PlannerOptions& options) {
  Candidate c;
  c.kind = CandidateKind::kWrht;
  core::WrhtPlan wrht;
  try {
    wrht = core::plan_wrht(num_nodes, options.wavelengths);
  } catch (const Error& e) {
    c.note = e.what();
    return c;
  }
  // Every WRHT step serializes the full vector in one round (the planner
  // keeps wavelengths_required <= w) and lights a fresh circuit set.
  const double ser = static_cast<double>(elements) *
                     options.bytes_per_element / options.bytes_per_second();
  const std::vector<RoundModel> rounds(wrht.steps.total_steps,
                                       RoundModel{ser, true});
  const PricedRounds priced = price_rounds(rounds, options);
  c.feasible = true;
  c.predicted_time = Seconds(priced.time);
  c.steps = wrht.steps.total_steps;
  c.rounds = wrht.steps.total_steps;
  c.reconfig_charges = priced.charges;
  c.overlap_hidden = Seconds(priced.hidden);
  return c;
}

Candidate predict_static_ring(std::uint32_t num_nodes, std::size_t elements,
                              const PlannerOptions& options) {
  Candidate c;
  c.kind = CandidateKind::kStaticRing;
  if (elements < num_nodes) {
    c.note = "ring needs at least one element per chunk";
    return c;
  }
  // 2(N-1) steps of one round each (neighbour circuits use one wavelength);
  // every step reuses the identical clockwise circuits, so only round 0
  // retunes.
  const double ser = static_cast<double>(max_chunk(elements, num_nodes)) *
                     options.bytes_per_element / options.bytes_per_second();
  std::vector<RoundModel> rounds(2ull * (num_nodes - 1),
                                 RoundModel{ser, false});
  rounds.front().retunes = true;
  const PricedRounds priced = price_rounds(rounds, options);
  c.feasible = true;
  c.predicted_time = Seconds(priced.time);
  c.steps = rounds.size();
  c.rounds = rounds.size();
  c.reconfig_charges = priced.charges;
  c.overlap_hidden = Seconds(priced.hidden);
  return c;
}

Candidate predict_flat_a2a(std::uint32_t num_nodes, std::size_t elements,
                           const PlannerOptions& options) {
  Candidate c;
  c.kind = CandidateKind::kFlatAllToAll;
  // Two steps, each split into R = ceil(load / w) RWA rounds. Both steps
  // light the identical circuit sets in the identical round partition, so
  // under retune-aware accounting the single-round case reuses step 1's
  // circuits for step 2 while the multi-round case retunes every round.
  const std::uint64_t rounds_per_step =
      (alltoall_wavelengths(num_nodes) + options.wavelengths - 1) /
      options.wavelengths;
  const double ser = static_cast<double>(max_chunk(elements, num_nodes)) *
                     options.bytes_per_element / options.bytes_per_second();
  std::vector<RoundModel> rounds(2 * rounds_per_step, RoundModel{ser, true});
  if (rounds_per_step == 1) rounds.back().retunes = false;
  const PricedRounds priced = price_rounds(rounds, options);
  c.feasible = true;
  c.predicted_time = Seconds(priced.time);
  c.steps = 2;
  c.rounds = rounds.size();
  c.reconfig_charges = priced.charges;
  c.overlap_hidden = Seconds(priced.hidden);
  return c;
}

}  // namespace

std::string to_string(CandidateKind kind) {
  switch (kind) {
    case CandidateKind::kWrht:
      return "wrht";
    case CandidateKind::kFlatAllToAll:
      return "flat_a2a";
    case CandidateKind::kStaticRing:
      return "static_ring";
  }
  return "unknown";
}

Candidate predict(CandidateKind kind, std::uint32_t num_nodes,
                  std::size_t elements, const PlannerOptions& options) {
  require(num_nodes >= 2, "plan::predict: need at least 2 nodes");
  require(elements >= 1, "plan::predict: need at least 1 element");
  require(options.wavelengths >= 1, "plan::predict: need >= 1 wavelength");
  switch (kind) {
    case CandidateKind::kWrht:
      return predict_wrht(num_nodes, elements, options);
    case CandidateKind::kFlatAllToAll:
      return predict_flat_a2a(num_nodes, elements, options);
    case CandidateKind::kStaticRing:
      return predict_static_ring(num_nodes, elements, options);
  }
  throw InvalidArgument("plan::predict: unknown candidate kind");
}

coll::Schedule build_candidate(CandidateKind kind, std::uint32_t num_nodes,
                               std::size_t elements,
                               const PlannerOptions& options) {
  switch (kind) {
    case CandidateKind::kWrht: {
      const core::WrhtPlan wrht =
          core::plan_wrht(num_nodes, options.wavelengths);
      core::WrhtOptions wrht_options;
      wrht_options.group_size = wrht.group_size;
      wrht_options.wavelengths = options.wavelengths;
      return core::wrht_allreduce(num_nodes, elements, wrht_options);
    }
    case CandidateKind::kFlatAllToAll:
      return flat_alltoall_allreduce(num_nodes, elements);
    case CandidateKind::kStaticRing:
      return coll::ring_allreduce(num_nodes, elements);
  }
  throw InvalidArgument("plan::build_candidate: unknown candidate kind");
}

PlanResult plan_allreduce(std::uint32_t num_nodes, std::size_t elements,
                          const PlannerOptions& options) {
  require(num_nodes >= 2, "plan_allreduce: need at least 2 nodes");
  PlanResult result{
      Candidate{}, {},
      coll::Schedule("unplanned", std::max(num_nodes, 1u), elements)};
  const CandidateKind kinds[] = {CandidateKind::kWrht,
                                 CandidateKind::kFlatAllToAll,
                                 CandidateKind::kStaticRing};
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t best = kNone;
  for (const CandidateKind kind : kinds) {
    result.candidates.push_back(predict(kind, num_nodes, elements, options));
    const Candidate& c = result.candidates.back();
    if (c.feasible &&
        (best == kNone ||
         c.predicted_time < result.candidates[best].predicted_time)) {
      best = result.candidates.size() - 1;
    }
  }
  require(best != kNone, "plan_allreduce: no feasible candidate");
  result.chosen = result.candidates[best];
  result.schedule =
      build_candidate(result.chosen.kind, num_nodes, elements, options);
  return result;
}

coll::Schedule flat_alltoall_allreduce(std::uint32_t num_nodes,
                                       std::size_t elements) {
  require(num_nodes >= 2, "flat_alltoall_allreduce: need at least 2 nodes");
  require(elements >= 1, "flat_alltoall_allreduce: need >= 1 element");
  coll::Schedule sched("flat-a2a", num_nodes, elements);
  const topo::Ring ring(num_nodes);

  // Shortest-direction hint per ordered pair, antipodal ties alternating —
  // the same assignment as WRHT's final all-to-all exchange, which keeps
  // the per-segment load within the ceil(N^2/8) bound. Both steps walk the
  // pairs in the identical order so they light identical circuits and the
  // RWA partitions them into identical rounds.
  std::vector<std::pair<coll::Transfer, coll::Transfer>> pairs;
  bool tie_clockwise = true;
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    for (std::uint32_t j = i + 1; j < num_nodes; ++j) {
      const std::uint32_t cw = ring.cw_distance(i, j);
      const std::uint32_t ccw = ring.ccw_distance(i, j);
      topo::Direction forward;   // direction of i -> j
      topo::Direction backward;  // direction of j -> i
      if (cw < ccw) {
        forward = topo::Direction::kClockwise;
        backward = topo::Direction::kCounterClockwise;
      } else if (ccw < cw) {
        forward = topo::Direction::kCounterClockwise;
        backward = topo::Direction::kClockwise;
      } else {
        forward = backward = tie_clockwise
                                 ? topo::Direction::kClockwise
                                 : topo::Direction::kCounterClockwise;
        tie_clockwise = !tie_clockwise;
      }
      coll::Transfer fwd{i, j, 0, 0, coll::TransferKind::kReduce, forward};
      coll::Transfer bwd{j, i, 0, 0, coll::TransferKind::kReduce, backward};
      pairs.emplace_back(fwd, bwd);
    }
  }

  // Reduce-scatter: every node sends its partial of chunk `dst` straight to
  // node `dst`, which accumulates; after the step node j owns the fully
  // reduced chunk j.
  coll::Step& scatter = sched.add_step("a2a reduce-scatter");
  for (const auto& [fwd, bwd] : pairs) {
    for (const coll::Transfer& proto : {fwd, bwd}) {
      const coll::ChunkRange r =
          coll::chunk_range(elements, num_nodes, proto.dst);
      if (r.count == 0) continue;
      coll::Transfer t = proto;
      t.offset = r.offset;
      t.count = r.count;
      scatter.transfers.push_back(t);
    }
  }

  // All-gather: node `src` returns its reduced chunk to everyone.
  coll::Step& gather = sched.add_step("a2a all-gather");
  for (const auto& [fwd, bwd] : pairs) {
    for (const coll::Transfer& proto : {fwd, bwd}) {
      const coll::ChunkRange r =
          coll::chunk_range(elements, num_nodes, proto.src);
      if (r.count == 0) continue;
      coll::Transfer t = proto;
      t.kind = coll::TransferKind::kCopy;
      t.offset = r.offset;
      t.count = r.count;
      gather.transfers.push_back(t);
    }
  }
  return sched;
}

}  // namespace wrht::plan
