// "Reconfigure or not" schedule planner.
//
// WRHT wins by trading bandwidth for rounds: theta = O(log N) steps, each
// serializing the FULL vector and retuning the micro-rings. A reconfig-free
// Ring All-reduce is the opposite corner: 2(N-1) steps of d/N-sized chunks
// over circuits that never change. A flat all-to-all is the "pay once,
// blast everything" corner: two steps whose wavelength demand (~N^2/8)
// splits into many rounds. Which corner wins depends on (message size, N,
// w) AND on how reconfiguration is charged (net::ReconfigPolicy).
//
// plan_allreduce() prices all three candidates with closed-form models —
// the same per-round arithmetic the optical ring engine performs, O(steps)
// instead of a simulation — picks the fastest, and builds its schedule.
// bench_ablation_overlap sweeps the frontier; test_plan checks the
// predictions against the simulator differentially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/units.hpp"
#include "wrht/net/rate_convention.hpp"
#include "wrht/net/reconfig_policy.hpp"

namespace wrht::plan {

/// The candidate schedules the planner chooses between.
enum class CandidateKind {
  kWrht,          ///< core::wrht_allreduce with the planned group size
  kFlatAllToAll,  ///< flat_alltoall_allreduce (2 steps, many rounds)
  kStaticRing,    ///< coll::ring_allreduce (reconfig-free circuits)
};

/// Stable lower-case name ("wrht", "flat_a2a", "static_ring") for CSV
/// columns and logs.
[[nodiscard]] std::string to_string(CandidateKind kind);

/// The optical cost parameters the closed-form models price against —
/// deliberately the same knobs (and defaults) as optics::OpticalConfig, so
/// a prediction can be checked against a RingNetwork run.
struct PlannerOptions {
  std::uint32_t wavelengths = 64;
  net::ReconfigPolicy policy = net::ReconfigPolicy::kEveryRound;
  Seconds mrr_reconfig_delay{25e-6};
  Seconds oeo_delay{497e-15};
  BitsPerSecond wavelength_rate{40e9};
  net::RateConvention convention = net::RateConvention::kPaperConvention;
  std::uint32_t bytes_per_element = 4;

  [[nodiscard]] double bytes_per_second() const {
    return net::effective_bytes_per_second(wavelength_rate.count(),
                                           convention);
  }

  PlannerOptions& with_wavelengths(std::uint32_t v) {
    wavelengths = v;
    return *this;
  }
  PlannerOptions& with_policy(net::ReconfigPolicy v) {
    policy = v;
    return *this;
  }
  PlannerOptions& with_convention(net::RateConvention v) {
    convention = v;
    return *this;
  }
};

/// One candidate's closed-form prediction.
struct Candidate {
  CandidateKind kind = CandidateKind::kWrht;
  bool feasible = false;
  std::string note;  ///< why infeasible ("" when feasible)
  Seconds predicted_time{0.0};
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;
  /// Rounds whose reconfiguration delay (or overlap residual) lands on the
  /// critical path under the options' policy.
  std::uint64_t reconfig_charges = 0;
  /// Reconfiguration time hidden behind transmissions (kOverlapped only).
  Seconds overlap_hidden{0.0};
};

struct PlanResult {
  Candidate chosen;
  /// All candidates in enum order, feasible or not.
  std::vector<Candidate> candidates;
  /// The winning schedule, built and ready to execute.
  coll::Schedule schedule;
};

/// Closed-form prediction for one candidate; `feasible == false` (with a
/// note) when the candidate cannot be built for this configuration.
[[nodiscard]] Candidate predict(CandidateKind kind, std::uint32_t num_nodes,
                                std::size_t elements,
                                const PlannerOptions& options);

/// Builds the candidate's schedule (throws InvalidArgument when predict()
/// would have reported it infeasible).
[[nodiscard]] coll::Schedule build_candidate(CandidateKind kind,
                                             std::uint32_t num_nodes,
                                             std::size_t elements,
                                             const PlannerOptions& options);

/// Prices every candidate, picks the fastest feasible one (ties go to the
/// earlier enum value) and builds its schedule. Throws InvalidArgument when
/// num_nodes < 2 or no candidate is feasible.
[[nodiscard]] PlanResult plan_allreduce(std::uint32_t num_nodes,
                                        std::size_t elements,
                                        const PlannerOptions& options = {});

/// Flat all-to-all All-reduce: one reduce-scatter step in which every node
/// sends chunk j straight to node j, then one all-gather step in which node
/// j returns the reduced chunk j to everyone. Transfers carry the same
/// shortest-direction hints (antipodal ties alternating) as WRHT's final
/// all-to-all exchange, so the per-segment load stays within the
/// ceil(N^2/8) wavelength bound.
[[nodiscard]] coll::Schedule flat_alltoall_allreduce(std::uint32_t num_nodes,
                                                     std::size_t elements);

}  // namespace wrht::plan
