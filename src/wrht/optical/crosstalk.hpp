// Crosstalk / SNR / BER model (paper Section 4.4.2, Eqs. 11-13).
//
// Worst-case crosstalk noise accumulates one receiver-side contribution per
// traversed interface plus one transmitter-side contribution:
//   P_Nw = L_max * P_Rx + P_Tx          (Eq. 12, summed in linear mW)
// Signal quality:
//   SNR  = P_S / (P_N + P_O)            (Eq. 11, linear ratio)
//   BER  = 1/2 * exp(-SNR/4)            (Eq. 13)
// Reliable optical communication requires BER < 1e-9, i.e. SNR >= ~80.
#pragma once

#include <cstdint>

#include "wrht/common/units.hpp"

namespace wrht::optics {

/// Defaults use MRR crosstalk figures around -40 dB of a 0 dBm signal per
/// pass and a -45 dBm receiver noise floor.
struct CrosstalkParams {
  PowerDbm signal_power{0.0};        ///< P_S arriving at the photodetector
  PowerDbm per_hop_crosstalk{-40.0}; ///< P_Rx picked up per passed interface
  PowerDbm tx_crosstalk{-42.0};      ///< P_Tx modulator-side leakage
  PowerDbm other_noise{-45.0};       ///< P_O thermal/shot floor
};

/// Eq. 12: worst-case crosstalk noise after `hops` interfaces, in dBm.
[[nodiscard]] PowerDbm worst_case_crosstalk(std::uint64_t hops,
                                            const CrosstalkParams& params);

/// Eq. 11 as a linear power ratio P_S / (P_N + P_O).
[[nodiscard]] double snr_linear(std::uint64_t hops,
                                const CrosstalkParams& params);

/// Eq. 11 in dB: 10 log10(snr_linear).
[[nodiscard]] double snr_db(std::uint64_t hops, const CrosstalkParams& params);

/// Eq. 13.
[[nodiscard]] double ber_from_snr(double snr_linear_ratio);

/// BER of the worst-case lightpath crossing `hops` interfaces.
[[nodiscard]] double ber(std::uint64_t hops, const CrosstalkParams& params);

/// Largest hop count with ber(hops) < target (default 1e-9); 0 if none.
[[nodiscard]] std::uint64_t max_hops_for_ber(const CrosstalkParams& params,
                                             double target_ber = 1e-9);

/// Largest first-level group size m' whose WRHT longest path (Eq. 7)
/// satisfies the BER constraint on a ring of `num_nodes`; 0 when none does.
[[nodiscard]] std::uint32_t max_group_size_by_crosstalk(
    std::uint32_t num_nodes, const CrosstalkParams& params,
    double target_ber = 1e-9);

}  // namespace wrht::optics
