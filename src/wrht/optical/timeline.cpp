#include "wrht/optical/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "wrht/common/csv.hpp"
#include "wrht/common/error.hpp"

namespace wrht::optics {

void write_timeline_csv(const OpticalRunResult& result,
                        const std::string& path) {
  CsvWriter csv(path, {"step", "start_s", "duration_s", "rounds",
                       "wavelengths", "max_transfer_elements"});
  for (std::size_t i = 0; i < result.step_costs.size(); ++i) {
    const StepCost& c = result.step_costs[i];
    char start[32], duration[32];
    std::snprintf(start, sizeof start, "%.9f", c.start.count());
    std::snprintf(duration, sizeof duration, "%.9f", c.duration.count());
    csv.add_row({std::to_string(i), start, duration,
                 std::to_string(c.rounds), std::to_string(c.wavelengths_used),
                 std::to_string(c.max_transfer_elements)});
  }
}

namespace {

/// One timeline row shared by both public overloads.
void print_bar(std::ostream& os, std::size_t index, Seconds start,
               Seconds duration, std::uint32_t rounds,
               std::uint32_t wavelengths_used, double total,
               std::size_t width) {
  const auto offset = static_cast<std::size_t>(
      start.count() / total * static_cast<double>(width));
  auto len = static_cast<std::size_t>(
      duration.count() / total * static_cast<double>(width));
  len = std::max<std::size_t>(len, 1);
  char line[32];
  std::snprintf(line, sizeof line, "%4zu ", index);
  os << line << std::string(std::min(offset, width), ' ')
     << std::string(std::min(len, width - std::min(offset, width)), '#')
     << "  " << to_string(duration) << " x" << rounds << " rounds, "
     << wavelengths_used << " lambdas\n";
}

}  // namespace

void print_timeline(const OpticalRunResult& result, std::ostream& os,
                    std::size_t width) {
  require(width >= 10, "print_timeline: width too small");
  const double total = result.total_time.count();
  if (total <= 0.0 || result.step_costs.empty()) {
    os << "(empty timeline)\n";
    return;
  }
  for (std::size_t i = 0; i < result.step_costs.size(); ++i) {
    const StepCost& c = result.step_costs[i];
    print_bar(os, i, c.start, c.duration, c.rounds, c.wavelengths_used, total,
              width);
  }
}

void print_timeline(const RunReport& report, std::ostream& os,
                    std::size_t width) {
  require(width >= 10, "print_timeline: width too small");
  const double total = report.total_time.count();
  if (total <= 0.0 || report.step_reports.empty()) {
    os << "(empty timeline)\n";
    return;
  }
  for (std::size_t i = 0; i < report.step_reports.size(); ++i) {
    const StepReport& s = report.step_reports[i];
    print_bar(os, i, s.start, s.duration, s.rounds, s.wavelengths_used, total,
              width);
  }
}

}  // namespace wrht::optics
