// Optical ring interconnect simulator (the paper's "in-house optical
// interconnect system simulator").
//
// Executes a coll::Schedule step by step on a WDM double ring:
//   * every step's transfers are routed and wavelength-assigned (RWA);
//   * a step that needs more wavelengths than the fiber carries is split
//     into sequential conflict-free rounds;
//   * each round costs the MRR reconfiguration delay + O/E/O conversion +
//     serialization of its largest transfer (circuit switching: all
//     lightpaths of a round progress concurrently at full lane rate).
// Steps are driven through the discrete-event kernel; identical step
// patterns (e.g. the 2(N-1) structurally equal Ring All-reduce steps) hit a
// pattern cache so large runs stay fast.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/common/units.hpp"
#include "wrht/net/rate_convention.hpp"
#include "wrht/net/reconfig_policy.hpp"
#include "wrht/net/resource_lease.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/optical/node.hpp"
#include "wrht/optical/rwa.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::optics {

struct OpticalConfig {
  std::uint32_t wavelengths = 64;          ///< per fiber (Table 2)
  std::uint32_t fibers_per_direction = 1;  ///< wavelength-planning default
  BitsPerSecond wavelength_rate{40e9};     ///< nominal line rate per lambda
  Seconds mrr_reconfig_delay{25e-6};       ///< per communication step
  Seconds oeo_delay{497e-15};              ///< O/E/O conversion per packet
  Bytes packet_size{72};
  std::uint32_t bytes_per_element = 4;     ///< float32 gradients

  /// The Eq. (6) rate convention (see net/rate_convention.hpp); the alias
  /// keeps the historical OpticalConfig::RateConvention spelling working.
  using RateConvention = net::RateConvention;
  RateConvention convention = RateConvention::kPaperConvention;

  RwaPolicy rwa_policy = RwaPolicy::kFirstFit;
  /// Split wavelength-starved steps into sequential rounds instead of
  /// failing; each extra round pays the reconfiguration delay again.
  bool allow_multi_round_steps = true;

  /// Wavelength slice this job may touch (multi-tenant fabrics; see
  /// net/resource_lease.hpp). The default full lease is the historical
  /// exclusive-fabric behaviour, byte-identical to pre-lease runs. RWA is
  /// constrained to [lease.w_lo, lease.w_hi) on every fiber; a leased run
  /// prices exactly like a full run on a lease-width fiber.
  net::ResourceLease lease{};

  /// Workers for the batch RWA pre-pass over a schedule's distinct step
  /// patterns (0 = WRHT_RWA_THREADS / hardware concurrency; see
  /// optics::resolve_rwa_threads). First-fit only — random-fit always runs
  /// sequentially — and byte-identical results at any worker count.
  unsigned rwa_threads = 0;

  /// Per-node MRR hardware; every round's lightpaths are checked against
  /// the transmit/receive MRR capacity per direction.
  NodeHardware node_hardware{};
  bool validate_node_capacity = true;

  /// How the MRR reconfiguration delay is charged (see
  /// net/reconfig_policy.hpp):
  ///   kEveryRound - every round pays it (the paper's Eq. 6 model);
  ///   kOnRetune   - only rounds whose tuning differs from the previous
  ///                 round's pay it (static circuits stay up for free —
  ///                 quantified by bench_ablation_reconfig);
  ///   kOverlapped - round k+1's retune proceeds during round k's
  ///                 transmission; only the residual delay is charged
  ///                 (bench_ablation_overlap).
  /// The alias keeps the historical OpticalConfig::ReconfigAccounting
  /// spelling working, mirroring the RateConvention unification.
  using ReconfigAccounting = net::ReconfigPolicy;
  net::ReconfigPolicy reconfig_policy = net::ReconfigPolicy::kEveryRound;

  /// Effective serialization rate in bytes per second.
  [[nodiscard]] double bytes_per_second() const {
    return net::effective_bytes_per_second(wavelength_rate.count(),
                                           convention);
  }

  // Fluent builders so call sites can assemble a config in one expression
  // (`OpticalConfig{}.with_wavelengths(8).with_rwa_policy(...)`).
  // Aggregate initialization keeps working — these are plain members.
  OpticalConfig& with_wavelengths(std::uint32_t v) {
    wavelengths = v;
    return *this;
  }
  OpticalConfig& with_fibers_per_direction(std::uint32_t v) {
    fibers_per_direction = v;
    return *this;
  }
  OpticalConfig& with_wavelength_rate(BitsPerSecond v) {
    wavelength_rate = v;
    return *this;
  }
  OpticalConfig& with_mrr_reconfig_delay(Seconds v) {
    mrr_reconfig_delay = v;
    return *this;
  }
  OpticalConfig& with_oeo_delay(Seconds v) {
    oeo_delay = v;
    return *this;
  }
  OpticalConfig& with_packet_size(Bytes v) {
    packet_size = v;
    return *this;
  }
  OpticalConfig& with_bytes_per_element(std::uint32_t v) {
    bytes_per_element = v;
    return *this;
  }
  OpticalConfig& with_convention(RateConvention v) {
    convention = v;
    return *this;
  }
  OpticalConfig& with_rwa_policy(RwaPolicy v) {
    rwa_policy = v;
    return *this;
  }
  OpticalConfig& with_rwa_threads(unsigned v) {
    rwa_threads = v;
    return *this;
  }
  OpticalConfig& with_multi_round_steps(bool v) {
    allow_multi_round_steps = v;
    return *this;
  }
  OpticalConfig& with_lease(net::ResourceLease v) {
    lease = v;
    return *this;
  }

  /// RWA options for this config: the scan window is the leased slice.
  [[nodiscard]] RwaOptions rwa_options() const {
    RwaOptions options;
    options.wavelengths = lease.clamp_hi(wavelengths);
    options.fibers_per_direction = fibers_per_direction;
    options.policy = rwa_policy;
    options.wavelength_lo = lease.full() ? 0 : lease.w_lo;
    return options;
  }
  OpticalConfig& with_node_hardware(NodeHardware v) {
    node_hardware = v;
    return *this;
  }
  OpticalConfig& with_validate_node_capacity(bool v) {
    validate_node_capacity = v;
    return *this;
  }
  OpticalConfig& with_reconfig_policy(net::ReconfigPolicy v) {
    reconfig_policy = v;
    return *this;
  }
  /// Deprecated alias of with_reconfig_policy(), kept for one release so
  /// pre-unification call sites compile (ReconfigAccounting is now an
  /// alias of net::ReconfigPolicy, so the old enumerators still resolve).
  [[deprecated("use with_reconfig_policy")]] OpticalConfig&
  with_reconfig_accounting(ReconfigAccounting v) {
    reconfig_policy = v;
    return *this;
  }
};

struct StepCost {
  std::string label;   ///< the schedule step's label
  Seconds start{0.0};  ///< simulation time at which the step began
  Seconds duration{0.0};
  std::uint32_t rounds = 0;
  std::uint32_t wavelengths_used = 0;
  std::size_t max_transfer_elements = 0;
};

struct OpticalRunResult {
  Seconds total_time{0.0};
  std::size_t steps = 0;
  std::uint64_t total_rounds = 0;
  std::uint32_t max_wavelengths_used = 0;
  std::uint32_t longest_lightpath_hops = 0;
  std::uint64_t events_fired = 0;
  /// Rounds that paid the reconfiguration delay (== total_rounds under
  /// kEveryRound accounting).
  std::uint64_t reconfigurations = 0;
  /// Micro-rings retuned across the whole run (kOnRetune accounting only;
  /// 0 otherwise).
  std::uint64_t retuned_mrrs = 0;
  /// Reconfiguration time hidden behind prior transmissions (kOverlapped
  /// accounting only; 0 otherwise). Serial time == total_time +
  /// overlap_hidden whenever every round retunes.
  Seconds overlap_hidden{0.0};
  std::vector<StepCost> step_costs;

  /// Backend-neutral view (RunReport) of this run.
  [[nodiscard]] RunReport to_report() const;
};

class RingNetwork {
 public:
  RingNetwork(std::uint32_t num_nodes, OpticalConfig config);

  [[nodiscard]] const topo::Ring& ring() const { return ring_; }
  [[nodiscard]] const OpticalConfig& config() const { return config_; }

  /// Simulates the schedule; throws InfeasibleSchedule when a transfer
  /// cannot be carried at all (and multi-round splitting is disabled or
  /// cannot help). `rng` is required only for random-fit RWA.
  [[nodiscard]] OpticalRunResult execute(const coll::Schedule& schedule,
                                         Rng* rng = nullptr) const;

  /// Observed variant: emits one trace span per step with child spans per
  /// RWA round, and accumulates "optical.*" counters. An empty probe makes
  /// this identical to the unobserved overload.
  ///
  /// `start` offsets the internal clock: step starts (and trace spans) are
  /// absolute times >= start, while total_time stays the run's duration.
  /// The engine is time-invariant, so a shifted run prices identically —
  /// the offset exists so a long-lived fabric simulation (wrht::svc) can
  /// place a job's timeline at its admission time.
  [[nodiscard]] OpticalRunResult execute(const coll::Schedule& schedule,
                                         const obs::Probe& probe,
                                         Rng* rng = nullptr,
                                         Seconds start = Seconds(0.0)) const;

  /// Cost of one round carrying a largest transfer of `elements` elements:
  /// reconfiguration + O/E/O + serialization (Eq. 6 per-step term).
  [[nodiscard]] Seconds round_time(std::size_t elements) const;

  /// Serialization-only time of a round's largest transfer.
  [[nodiscard]] Seconds serialization_time(std::size_t elements) const;

  /// Closed-form Eq. (6) estimate assuming every step fits in one round:
  /// sum over steps of (a + max_payload/B). execute() returns exactly this
  /// whenever no step splits (asserted by the consistency tests).
  [[nodiscard]] Seconds single_round_estimate(
      const coll::Schedule& schedule) const;

 private:
  /// One (direction, fiber, wavelength) channel's use within a round,
  /// aggregated over the lightpaths sharing it on disjoint ring segments.
  struct RoundUse {
    std::uint8_t direction = 0;  ///< 0 = clockwise, 1 = counter-clockwise
    std::uint32_t fiber = 0;
    std::uint32_t wavelength = 0;
    /// Longest serialization among the sharers (the channel transmits
    /// until its slowest lightpath finishes).
    Seconds serialization{0.0};
    std::uint32_t concurrency = 0;  ///< lightpaths sharing the channel
  };

  /// One transfer's routing assignment within a round, for the blame
  /// TransferLog. `index` points into the step's transfers (the pattern
  /// cache is keyed by the full transfer list, so indices stay valid
  /// across cache hits).
  struct TransferRoute {
    std::uint32_t index = 0;
    std::uint8_t direction = 0;
    std::uint32_t wavelength = 0;
  };

  struct PatternCost {
    StepCost cost;
    std::uint32_t longest_hops = 0;
    /// Per-round serialization and tuning, for retune-aware accounting.
    std::vector<Seconds> round_serialization;
    std::vector<TuningState> round_tunings;
    /// Per-round wavelength high-water marks, for round trace spans.
    std::vector<std::uint32_t> round_wavelengths;
    /// Per-round channel uses (sorted by direction/fiber/wavelength), for
    /// occupancy sampling and the wavelengths-in-use counter track.
    std::vector<std::vector<RoundUse>> round_uses;
    /// Per-round transfer routes; filled only for blame-observed runs
    /// (probe.transfers attached), empty otherwise.
    std::vector<std::vector<TransferRoute>> round_transfers;
  };

  [[nodiscard]] PatternCost evaluate_step(const coll::Step& step,
                                          Rng* rng) const;

  /// Pure pricing arithmetic turning one step's RWA rounds into a
  /// PatternCost; shared by the sequential path and the parallel pre-pass.
  [[nodiscard]] PatternCost price_rounds(
      const coll::Step& step, std::uint32_t wavelengths_used,
      const std::vector<std::vector<Lightpath>>& round_paths,
      const std::vector<std::vector<std::size_t>>& round_members) const;

  /// First-fit only: batch-solves the schedule's distinct uncached step
  /// patterns with assign_rounds_batch and fills pattern_cache_, so the
  /// DES loop below runs entirely on cache hits. No-op when the resolved
  /// worker count is 1 (the sequential path already does the same work
  /// lazily) or under random-fit.
  void warm_pattern_cache(const coll::Schedule& schedule) const;

  topo::Ring ring_;
  OpticalConfig config_;
  mutable std::unordered_map<std::uint64_t, PatternCost> pattern_cache_;
  /// Set while a blame-observed execute() runs: price_rounds then also
  /// fills round_tunings (for the retune-flag walk under any policy) and
  /// round_transfers. Cache entries priced without enrichment are
  /// re-evaluated on hit — first-fit RWA is deterministic, so the enriched
  /// entry prices identically and simply replaces the lean one.
  mutable bool enrich_blame_ = false;
};

}  // namespace wrht::optics
