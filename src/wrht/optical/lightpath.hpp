// Lightpaths on the WDM double ring.
//
// A lightpath is the circuit carrying one Transfer: a direction, a fiber
// index within that direction, a wavelength, and the contiguous run of
// fiber segments between source and destination. Two lightpaths conflict
// when they share (direction, fiber, wavelength) and at least one segment.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/topo/ring.hpp"

namespace wrht::optics {

struct Lightpath {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  topo::Direction direction = topo::Direction::kClockwise;
  std::uint32_t fiber = 0;
  std::uint32_t wavelength = 0;
  /// First segment index occupied (see topo::Ring for segment numbering).
  std::uint32_t first_segment = 0;
  /// Number of consecutive segments occupied (the hop count).
  std::uint32_t hops = 0;
};

/// Computes the segment interval of a prospective lightpath from `src` to
/// `dst` travelling `dir` on a ring of `ring.size()` nodes.
struct SegmentSpan {
  std::uint32_t first = 0;  ///< first occupied segment
  std::uint32_t hops = 0;   ///< consecutive segments, wrapping mod N
};
[[nodiscard]] SegmentSpan segment_span(const topo::Ring& ring,
                                       topo::NodeId src, topo::NodeId dst,
                                       topo::Direction dir);

/// True when the two spans share at least one segment on a ring of n nodes.
[[nodiscard]] bool spans_overlap(const SegmentSpan& a, const SegmentSpan& b,
                                 std::uint32_t n);

/// True when lightpaths a and b conflict: same (direction, fiber,
/// wavelength) and overlapping segments.
[[nodiscard]] bool lightpaths_conflict(const Lightpath& a, const Lightpath& b,
                                       std::uint32_t ring_size);

/// Number of conflicting pairs in an assignment (0 = valid). Used to
/// double-check RWA output and by the fault-injection tests.
[[nodiscard]] std::size_t count_conflicts(const std::vector<Lightpath>& paths,
                                          std::uint32_t ring_size);

}  // namespace wrht::optics
