// Optical torus interconnect simulator (§6.1 extension substrate).
//
// Every row and every column of the torus is a WDM optical ring with its
// own fibers and wavelength budget (the natural generalisation of the
// TeraRack ring). A communication step may use many rows/columns at once;
// each ring prices its share exactly like RingNetwork (RWA + rounds) and
// the step lasts as long as the slowest ring. Transfers that are neither
// row-local nor column-local are rejected — torus schedules route
// dimension by dimension, as the paper's §6.1 sketch does.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/topo/torus.hpp"

namespace wrht::optics {

class TorusNetwork {
 public:
  TorusNetwork(const topo::Torus& torus, OpticalConfig config);

  [[nodiscard]] const topo::Torus& torus() const { return torus_; }
  [[nodiscard]] const OpticalConfig& config() const { return config_; }

  /// Simulates the schedule. Throws InfeasibleSchedule for transfers that
  /// do not stay within one row or one column.
  [[nodiscard]] OpticalRunResult execute(const coll::Schedule& schedule,
                                         Rng* rng = nullptr) const;

  /// Observed variant, mirroring RingNetwork: one "torus-step" trace span
  /// per step plus "optical.*" counters. An empty probe makes this
  /// identical to the unobserved overload.
  [[nodiscard]] OpticalRunResult execute(const coll::Schedule& schedule,
                                         const obs::Probe& probe,
                                         Rng* rng = nullptr) const;

 private:
  struct RingShare {
    /// Transfers remapped to ring-local node positions.
    std::vector<coll::Transfer> transfers;
    /// Index of each remapped transfer in the step's original transfer
    /// list, so blame TransferTraces can report global node ids.
    std::vector<std::size_t> source;
  };

  topo::Torus torus_;
  OpticalConfig config_;
  topo::Ring row_ring_;
  topo::Ring col_ring_;
};

}  // namespace wrht::optics
