// net::Backend adapters for the optical engines.
//
// RingBackend and TorusBackend wrap one RingNetwork / TorusNetwork
// instance behind the polymorphic Backend seam; the engines' native APIs
// stay intact for callers that need round_time(), single_round_estimate()
// or explicit Rng control. register_optical_backends() publishes the
// "optical-ring" and "optical-torus" factories.
#pragma once

#include <cstdint>

#include "wrht/net/backend.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/optical/ring_network.hpp"
#include "wrht/optical/torus_network.hpp"

namespace wrht::optics {

class RingBackend final : public net::Backend {
 public:
  /// `rng_seed` feeds random-fit RWA only; first-fit runs never draw.
  /// `collect_utilization` makes every execute() sample occupancy into a
  /// backend-owned sampler and fill the report's utilization fields.
  RingBackend(std::uint32_t num_nodes, OpticalConfig config,
              std::uint64_t rng_seed = 2023,
              bool collect_utilization = false);

  [[nodiscard]] std::string name() const override { return "optical-ring"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] net::BackendCapabilities capabilities() const override;
  using net::Backend::execute;
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule,
                                  const obs::Probe& probe) const override;
  /// Native clock offset: runs the engine's simulator starting at `start`
  /// instead of shifting the report afterwards. Same output either way.
  [[nodiscard]] RunReport execute_at(const coll::Schedule& schedule,
                                     const obs::Probe& probe,
                                     Seconds start) const override;

  [[nodiscard]] const RingNetwork& network() const { return network_; }

 private:
  RingNetwork network_;
  std::uint64_t rng_seed_;
  bool collect_utilization_;
};

class TorusBackend final : public net::Backend {
 public:
  TorusBackend(const topo::Torus& torus, OpticalConfig config,
               std::uint64_t rng_seed = 2023,
               bool collect_utilization = false);

  [[nodiscard]] std::string name() const override { return "optical-torus"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] net::BackendCapabilities capabilities() const override;
  using net::Backend::execute;
  [[nodiscard]] RunReport execute(const coll::Schedule& schedule,
                                  const obs::Probe& probe) const override;

  [[nodiscard]] const TorusNetwork& network() const { return network_; }

 private:
  TorusNetwork network_;
  std::uint64_t rng_seed_;
  bool collect_utilization_;
};

/// Maps the portable config onto an OpticalConfig (wavelengths, rate
/// convention, node-capacity validation, reconfiguration accounting,
/// random-fit policy); everything else keeps Table 2 defaults.
[[nodiscard]] OpticalConfig optical_config_from(
    const net::BackendConfig& config);

/// Registers "optical-ring" and "optical-torus" in `registry`.
void register_optical_backends(net::BackendRegistry& registry);

}  // namespace wrht::optics
