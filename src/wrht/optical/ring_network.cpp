#include "wrht/optical/ring_network.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_set>

#include "wrht/common/error.hpp"
#include "wrht/net/pattern_key.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/prof/prof.hpp"
#include "wrht/sim/simulator.hpp"

namespace wrht::optics {

namespace {

/// Occupancy resource name for one WDM channel; the fiber index only
/// appears in multi-fiber configurations to keep the common case short.
std::string channel_name(std::uint8_t direction, std::uint32_t fiber,
                         std::uint32_t wavelength, std::uint32_t num_fibers) {
  std::string name = direction == 0 ? "cw" : "ccw";
  if (num_fibers > 1) name += "/f" + std::to_string(fiber);
  name += "/w" + std::to_string(wavelength);
  return name;
}

}  // namespace

RingNetwork::RingNetwork(std::uint32_t num_nodes, OpticalConfig config)
    : ring_(num_nodes), config_(config) {
  require(config.wavelengths >= 1, "RingNetwork: need >= 1 wavelength");
  require(config.bytes_per_element >= 1,
          "RingNetwork: bytes_per_element must be >= 1");
  require(config.wavelength_rate.count() > 0.0,
          "RingNetwork: wavelength rate must be positive");
  config.lease.validate(config.wavelengths);
}

Seconds RingNetwork::serialization_time(std::size_t elements) const {
  const double bytes =
      static_cast<double>(elements) * config_.bytes_per_element;
  return Seconds(bytes / config_.bytes_per_second());
}

Seconds RingNetwork::round_time(std::size_t elements) const {
  return config_.mrr_reconfig_delay + config_.oeo_delay +
         serialization_time(elements);
}

Seconds RingNetwork::single_round_estimate(
    const coll::Schedule& schedule) const {
  Seconds total(0.0);
  for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
    if (schedule.steps()[s].transfers.empty()) continue;
    total += round_time(schedule.max_transfer_elements(s));
  }
  return total;
}

RingNetwork::PatternCost RingNetwork::evaluate_step(const coll::Step& step,
                                                    Rng* rng) const {
  PatternCost out{};
  if (step.transfers.empty()) return out;

  const RwaOptions options = config_.rwa_options();

  std::vector<std::vector<Lightpath>> round_paths;
  std::vector<std::vector<std::size_t>> round_members;
  std::uint32_t wavelengths_used = 0;
  if (config_.allow_multi_round_steps) {
    RoundsResult rounds = assign_rounds(ring_, step.transfers, options, rng);
    wavelengths_used = rounds.wavelengths_used;
    round_paths = std::move(rounds.paths);
    round_members = std::move(rounds.rounds);
  } else {
    RwaResult rwa = assign_wavelengths(ring_, step.transfers, options, rng);
    if (!rwa.ok) {
      throw InfeasibleSchedule(
          "RingNetwork: step '" + step.label + "' needs more than " +
          std::to_string(config_.lease.width(config_.wavelengths)) +
          " wavelengths (lease " + config_.lease.to_string() +
          ") and multi-round splitting is disabled");
    }
    wavelengths_used = rwa.wavelengths_used;
    round_paths.push_back(std::move(rwa.paths));
    round_members.emplace_back();
    for (std::size_t i = 0; i < step.transfers.size(); ++i) {
      round_members.back().push_back(i);
    }
  }
  return price_rounds(step, wavelengths_used, round_paths, round_members);
}

RingNetwork::PatternCost RingNetwork::price_rounds(
    const coll::Step& step, std::uint32_t wavelengths_used,
    const std::vector<std::vector<Lightpath>>& round_paths,
    const std::vector<std::vector<std::size_t>>& round_members) const {
  PatternCost out{};
  out.cost.wavelengths_used = wavelengths_used;
  out.cost.rounds = static_cast<std::uint32_t>(round_paths.size());
  for (std::size_t r = 0; r < round_paths.size(); ++r) {
    std::size_t max_elements = 0;
    for (const std::size_t idx : round_members[r]) {
      max_elements = std::max(max_elements, step.transfers[idx].count);
    }
    std::uint32_t round_lambda = 0;
    // Aggregate the round's lightpaths per WDM channel: spatial reuse puts
    // several paths on one (direction, fiber, wavelength) over disjoint
    // segments, and occupancy accounting needs the channel, not the path.
    // std::map keys keep the resulting use list deterministically ordered.
    std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>, RoundUse>
        uses;
    for (std::size_t j = 0; j < round_paths[r].size(); ++j) {
      const Lightpath& path = round_paths[r][j];
      out.longest_hops = std::max(out.longest_hops, path.hops);
      round_lambda = std::max(round_lambda, path.wavelength + 1);
      const auto dir = static_cast<std::uint8_t>(
          path.direction == topo::Direction::kClockwise ? 0 : 1);
      RoundUse& use = uses[{dir, path.fiber, path.wavelength}];
      use.direction = dir;
      use.fiber = path.fiber;
      use.wavelength = path.wavelength;
      use.serialization = std::max(
          use.serialization,
          serialization_time(step.transfers[round_members[r][j]].count));
      ++use.concurrency;
    }
    out.round_uses.emplace_back();
    out.round_uses.back().reserve(uses.size());
    for (auto& [key, use] : uses) out.round_uses.back().push_back(use);
    out.round_wavelengths.push_back(round_lambda);
    out.cost.max_transfer_elements =
        std::max(out.cost.max_transfer_elements, max_elements);
    out.cost.duration += round_time(max_elements);
    out.round_serialization.push_back(serialization_time(max_elements));
    if (config_.validate_node_capacity ||
        config_.reconfig_policy == net::ReconfigPolicy::kOnRetune ||
        enrich_blame_) {
      out.round_tunings.push_back(TuningState::from_lightpaths(
          round_paths[r], config_.node_hardware));
    }
    if (enrich_blame_) {
      out.round_transfers.emplace_back();
      out.round_transfers.back().reserve(round_paths[r].size());
      for (std::size_t j = 0; j < round_paths[r].size(); ++j) {
        const Lightpath& path = round_paths[r][j];
        TransferRoute route;
        route.index = static_cast<std::uint32_t>(round_members[r][j]);
        route.direction = static_cast<std::uint8_t>(
            path.direction == topo::Direction::kClockwise ? 0 : 1);
        route.wavelength = path.wavelength;
        out.round_transfers.back().push_back(route);
      }
    }
  }
  return out;
}

OpticalRunResult RingNetwork::execute(const coll::Schedule& schedule,
                                      Rng* rng) const {
  return execute(schedule, obs::Probe{}, rng);
}

void RingNetwork::warm_pattern_cache(const coll::Schedule& schedule) const {
  if (config_.rwa_policy != RwaPolicy::kFirstFit) return;
  if (!config_.allow_multi_round_steps) return;
  const unsigned workers = resolve_rwa_threads(config_.rwa_threads);
  if (workers <= 1) return;

  // Distinct uncached patterns in first-occurrence order, so the batch's
  // lowest-index-failure rethrow matches what the sequential DES loop
  // would have thrown first.
  std::vector<const coll::Step*> steps;
  std::vector<std::uint64_t> signatures;
  std::unordered_set<std::uint64_t> seen;
  for (const coll::Step& step : schedule.steps()) {
    if (step.transfers.empty()) continue;
    const std::uint64_t sig = net::step_signature(step, true);
    if (pattern_cache_.contains(sig) || !seen.insert(sig).second) continue;
    steps.push_back(&step);
    signatures.push_back(sig);
  }
  if (steps.size() <= 1) return;

  const RwaOptions options = config_.rwa_options();
  std::vector<std::span<const coll::Transfer>> spans;
  spans.reserve(steps.size());
  for (const coll::Step* step : steps) spans.emplace_back(step->transfers);
  const std::vector<RoundsResult> rounds =
      assign_rounds_batch(ring_, spans, options, workers);
  for (std::size_t s = 0; s < steps.size(); ++s) {
    pattern_cache_.emplace(
        signatures[s],
        price_rounds(*steps[s], rounds[s].wavelengths_used, rounds[s].paths,
                     rounds[s].rounds));
  }
}

OpticalRunResult RingNetwork::execute(const coll::Schedule& schedule,
                                      const obs::Probe& probe, Rng* rng,
                                      Seconds start) const {
  require(schedule.num_nodes() <= ring_.size(),
          "RingNetwork: schedule spans more nodes than the ring");
  schedule.validate();
  const bool blame = probe.transfers != nullptr;
  enrich_blame_ = blame;
  if (blame) {
    obs::TransferLog::Context context;
    context.backend = "optical-ring";
    context.reconfig_policy = net::to_string(config_.reconfig_policy);
    context.mrr_reconfig_delay = config_.mrr_reconfig_delay;
    context.oeo_delay = config_.oeo_delay;
    probe.transfers->set_context(std::move(context));
  }
  warm_pattern_cache(schedule);

  OpticalRunResult result;
  result.steps = schedule.num_steps();
  result.step_costs.reserve(schedule.num_steps());

  // Drive the steps through the event kernel: each step-completion event
  // evaluates (or cache-hits) the next step and schedules its completion.
  sim::Simulator simulator(start);
  simulator.set_counters(probe.counters);
  std::size_t next_step = 0;
  const net::ReconfigPolicy policy = config_.reconfig_policy;
  TuningState previous_tuning;  // kOnRetune: last round's MRR state
  // Blame retune walk: replicates the kOnRetune previous-tuning carry
  // (including across steps) under ANY policy, so every RoundTrace can say
  // whether a retune-aware control plane would have charged it.
  TuningState blame_tuning;
  // kOverlapped: the window the next round's retune can hide inside — the
  // previous round's O/E/O + transmission time (zero before round 0, which
  // has nothing to overlap with).
  Seconds overlap_window(0.0);

  std::function<void()> launch = [&]() {
    if (next_step >= schedule.num_steps()) return;
    const coll::Step& step = schedule.steps()[next_step];
    const std::size_t step_index = next_step;
    ++next_step;

    PatternCost pattern;
    if (!step.transfers.empty()) {
      // Direction hints participate in the key: pinned-direction variants
      // of the same (src, dst) pattern route differently.
      const std::uint64_t sig = net::step_signature(step, true);
      // Random-fit assignments differ run to run; never cache them.
      const bool cacheable = config_.rwa_policy == RwaPolicy::kFirstFit;
      const auto it =
          cacheable ? pattern_cache_.find(sig) : pattern_cache_.end();
      if (it != pattern_cache_.end()) {
        pattern = it->second;
        if (blame && pattern.round_transfers.size() != pattern.cost.rounds) {
          // The cached entry was priced before blame observation was on and
          // lacks the enriched routing/tuning detail. First-fit RWA is
          // deterministic, so re-evaluating prices identically; replace the
          // lean entry with the enriched one.
          pattern = evaluate_step(step, rng);
          pattern_cache_[sig] = pattern;
        }
      } else {
        pattern = evaluate_step(step, rng);
        if (cacheable) pattern_cache_.emplace(sig, pattern);
      }
    }

    // Per-round durations and charged reconfiguration time; filled only
    // when someone will look at them (retune and overlap re-pricing always
    // need the walk; tracing and occupancy sampling need the per-round
    // timeline).
    std::vector<Seconds> round_durations;
    std::vector<Seconds> round_reconfig;  // MRR delay the round paid
    if (policy == net::ReconfigPolicy::kOnRetune) {
      // Re-price the step: a round pays the reconfiguration delay only if
      // some micro-ring has to change state relative to the previous round.
      Seconds duration(0.0);
      for (std::size_t r = 0; r < pattern.round_serialization.size(); ++r) {
        Seconds round(0.0);
        const std::size_t retuned =
            previous_tuning.retune_count(pattern.round_tunings[r]);
        if (retuned > 0) {
          round += config_.mrr_reconfig_delay;
          ++result.reconfigurations;
          result.retuned_mrrs += retuned;
          probe.count("optical.reconfig_charges");
          probe.count("optical.retuned_mrrs", retuned);
        }
        round += config_.oeo_delay + pattern.round_serialization[r];
        round_durations.push_back(round);
        round_reconfig.push_back(retuned > 0 ? config_.mrr_reconfig_delay
                                             : Seconds(0.0));
        duration += round;
        previous_tuning = pattern.round_tunings[r];
      }
      pattern.cost.duration = duration;
    } else if (policy == net::ReconfigPolicy::kOverlapped) {
      // Re-price the step: every round still retunes, but the retune for
      // round k overlaps round k-1's O/E/O + transmission (the lookahead
      // pipeline of SWOT); only the residual beyond that window lands on
      // the critical path. Round 0 of the run pays in full.
      Seconds duration(0.0);
      for (std::size_t r = 0; r < pattern.round_serialization.size(); ++r) {
        const Seconds residual =
            std::max(Seconds(0.0), config_.mrr_reconfig_delay - overlap_window);
        if (residual.count() > 0.0) {
          ++result.reconfigurations;
          probe.count("optical.reconfig_charges");
        }
        result.overlap_hidden += config_.mrr_reconfig_delay - residual;
        const Seconds round =
            residual + config_.oeo_delay + pattern.round_serialization[r];
        round_durations.push_back(round);
        round_reconfig.push_back(residual);
        duration += round;
        overlap_window = config_.oeo_delay + pattern.round_serialization[r];
      }
      pattern.cost.duration = duration;
    } else {
      result.reconfigurations += pattern.cost.rounds;
      probe.count("optical.reconfig_charges", pattern.cost.rounds);
      if (probe.trace != nullptr || probe.occupancy != nullptr || blame) {
        for (const Seconds ser : pattern.round_serialization) {
          round_durations.push_back(config_.mrr_reconfig_delay +
                                    config_.oeo_delay + ser);
          round_reconfig.push_back(config_.mrr_reconfig_delay);
        }
      }
    }

    pattern.cost.label = step.label;
    pattern.cost.start = simulator.now();
    result.step_costs.push_back(pattern.cost);
    result.total_rounds += pattern.cost.rounds;
    result.max_wavelengths_used =
        std::max(result.max_wavelengths_used, pattern.cost.wavelengths_used);
    result.longest_lightpath_hops =
        std::max(result.longest_lightpath_hops, pattern.longest_hops);

    probe.count("optical.steps");
    probe.count("optical.rounds", pattern.cost.rounds);
    if (pattern.cost.rounds > 1) probe.count("optical.multi_round_steps");
    probe.count_max("optical.max_wavelengths_used",
                    pattern.cost.wavelengths_used);
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "step";
      span.start = pattern.cost.start;
      span.duration = pattern.cost.duration;
      span.args = {
          {"rounds", std::to_string(pattern.cost.rounds)},
          {"wavelengths", std::to_string(pattern.cost.wavelengths_used)},
          {"max_transfer_elements",
           std::to_string(pattern.cost.max_transfer_elements)}};
      probe.span(span);
      Seconds cursor = pattern.cost.start;
      for (std::size_t r = 0; r < round_durations.size(); ++r) {
        obs::TraceSpan round;
        round.name = "round " + std::to_string(r);
        round.category = "round";
        round.start = cursor;
        round.duration = round_durations[r];
        round.args = {
            {"serialization_us",
             std::to_string(pattern.round_serialization[r].micros())},
            {"wavelengths",
             std::to_string(r < pattern.round_wavelengths.size()
                                ? pattern.round_wavelengths[r]
                                : 0)}};
        probe.span(round);
        // Counter track: distinct wavelengths carrying traffic this round
        // (holds until the next round's sample).
        std::set<std::uint32_t> lambdas;
        for (const auto& use : pattern.round_uses[r]) {
          lambdas.insert(use.wavelength);
        }
        probe.counter_sample("wavelengths in use", cursor,
                             static_cast<double>(lambdas.size()));
        cursor += round_durations[r];
      }
    }

    // Occupancy: per WDM channel, each round decomposes into MRR
    // reconfiguration (when charged), O/E/O conversion, payload
    // transmission, then straggler wait until the round's slowest channel
    // finishes. Unused channels simply stay unaccounted (idle).
    if (probe.occupancy != nullptr) {
      Seconds cursor = pattern.cost.start;
      for (std::size_t r = 0; r < round_durations.size(); ++r) {
        const Seconds round_end = cursor + round_durations[r];
        // Under kOverlapped only the residual is charged here; the hidden
        // portion happened during the previous round's transmission and
        // never occupies this round's interval.
        const Seconds reconfig = round_reconfig[r];
        for (const auto& use : pattern.round_uses[r]) {
          const auto ref = probe.occupancy->resource(
              channel_name(use.direction, use.fiber, use.wavelength,
                           config_.fibers_per_direction));
          Seconds at = cursor;
          probe.occupancy->record(ref, static_cast<std::uint32_t>(step_index),
                                  at, reconfig,
                                  obs::OccCategory::kReconfiguration);
          at += reconfig;
          probe.occupancy->record(ref, static_cast<std::uint32_t>(step_index),
                                  at, config_.oeo_delay,
                                  obs::OccCategory::kConversion);
          at += config_.oeo_delay;
          probe.occupancy->record(ref, static_cast<std::uint32_t>(step_index),
                                  at, use.serialization,
                                  obs::OccCategory::kTransmission,
                                  use.concurrency);
          at += use.serialization;
          probe.occupancy->record(ref, static_cast<std::uint32_t>(step_index),
                                  at, round_end - at,
                                  obs::OccCategory::kStragglerWait);
        }
        cursor = round_end;
      }
    }

    // Blame timeline: one StepTrace, one RoundTrace per round with the
    // exact charged decomposition, one TransferTrace per routed transfer.
    if (blame && !step.transfers.empty()) {
      obs::StepTrace step_trace;
      step_trace.step = static_cast<std::uint32_t>(step_index);
      step_trace.label = step.label.empty()
                             ? "step " + std::to_string(step_index)
                             : step.label;
      step_trace.start = pattern.cost.start;
      step_trace.duration = pattern.cost.duration;
      probe.transfers->step(std::move(step_trace));

      Seconds cursor = pattern.cost.start;
      for (std::size_t r = 0; r < round_durations.size(); ++r) {
        bool retune = true;
        if (r < pattern.round_tunings.size()) {
          retune = blame_tuning.retune_count(pattern.round_tunings[r]) > 0;
          blame_tuning = pattern.round_tunings[r];
        }
        obs::RoundTrace round;
        round.step = static_cast<std::uint32_t>(step_index);
        round.lane = "ring";
        round.round = static_cast<std::uint32_t>(r);
        round.start = cursor;
        round.reconfig = round_reconfig[r];
        round.full_reconfig = config_.mrr_reconfig_delay;
        round.conversion = config_.oeo_delay;
        round.serialization = pattern.round_serialization[r];
        round.duration = round_durations[r];
        round.retune = retune;
        probe.transfers->round(std::move(round));

        const Seconds payload_start =
            cursor + round_reconfig[r] + config_.oeo_delay;
        if (r < pattern.round_transfers.size()) {
          for (const TransferRoute& route : pattern.round_transfers[r]) {
            const coll::Transfer& t = step.transfers[route.index];
            obs::TransferTrace trace;
            trace.step = static_cast<std::uint32_t>(step_index);
            trace.lane = "ring";
            trace.round = static_cast<std::uint32_t>(r);
            trace.src = t.src;
            trace.dst = t.dst;
            trace.elements = t.count;
            trace.wavelength = route.wavelength;
            trace.direction = route.direction;
            trace.start = payload_start;
            trace.duration = serialization_time(t.count);
            probe.transfers->transfer(std::move(trace));
          }
        }
        cursor += round_durations[r];
      }
    }
    simulator.schedule_in(pattern.cost.duration, launch);
  };

  simulator.schedule_in(Seconds(0.0), launch);
  {
    // Host-side phase accounting: the DES drain is where the optical model
    // spends its wall time (step evaluation runs inside launch callbacks).
    const prof::ScopedTimer timer("optical.des.run");
    simulator.run();
  }

  // total_time is a duration, not an end timestamp — a job admitted at
  // start != 0 still reports how long it ran.
  result.total_time = simulator.now() - start;
  result.events_fired = simulator.events_fired();
  // Close the counter track so the last round's value does not hold past
  // the end of the run in the viewer.
  if (probe.trace != nullptr && result.total_rounds > 0) {
    probe.counter_sample("wavelengths in use", simulator.now(), 0.0);
  }
  return result;
}

RunReport OpticalRunResult::to_report() const {
  RunReport report;
  report.backend = "optical-ring";
  report.total_time = total_time;
  report.steps = steps;
  report.rounds = total_rounds;
  report.events_fired = events_fired;
  report.step_reports.reserve(step_costs.size());
  for (const StepCost& cost : step_costs) {
    StepReport step;
    step.label = cost.label;
    step.start = cost.start;
    step.duration = cost.duration;
    step.rounds = cost.rounds;
    step.wavelengths_used = cost.wavelengths_used;
    report.step_reports.push_back(std::move(step));
  }
  return report;
}

}  // namespace wrht::optics
