#include "wrht/optical/rwa.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <numeric>
#include <thread>

#include "wrht/common/env.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/log.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::optics {

namespace {

/// Occupancy bookkeeping: one lazily-allocated per-segment bitmap per
/// (direction, fiber, wavelength), so a conflict check costs O(hops) no
/// matter how many lightpaths are already placed.
class OccupancyMap {
 public:
  OccupancyMap(std::uint32_t n, const RwaOptions& opt)
      : n_(n),
        wavelengths_(opt.wavelengths),
        fibers_(opt.fibers_per_direction),
        bitmaps_(2 * opt.fibers_per_direction * opt.wavelengths) {}

  [[nodiscard]] bool fits(topo::Direction dir, std::uint32_t fiber,
                          std::uint32_t lambda, const SegmentSpan& span) const {
    const auto& bitmap = bitmaps_[index(dir, fiber, lambda)];
    if (bitmap.empty()) return true;
    for (std::uint32_t h = 0; h < span.hops; ++h) {
      if (bitmap[(span.first + h) % n_]) return false;
    }
    return true;
  }

  void place(topo::Direction dir, std::uint32_t fiber, std::uint32_t lambda,
             const SegmentSpan& span) {
    auto& bitmap = bitmaps_[index(dir, fiber, lambda)];
    if (bitmap.empty()) bitmap.assign(n_, 0);
    for (std::uint32_t h = 0; h < span.hops; ++h) {
      bitmap[(span.first + h) % n_] = 1;
    }
  }

 private:
  [[nodiscard]] std::size_t index(topo::Direction dir, std::uint32_t fiber,
                                  std::uint32_t lambda) const {
    const std::size_t d = dir == topo::Direction::kClockwise ? 0 : 1;
    return (d * fibers_ + fiber) * wavelengths_ + lambda;
  }

  std::uint32_t n_;
  std::uint32_t wavelengths_;
  std::uint32_t fibers_;
  std::vector<std::vector<std::uint8_t>> bitmaps_;
};

/// Longest lightpaths first: first-fit packs nested WRHT group paths and
/// all-to-all exchanges tightly when the most constrained path goes first.
std::vector<std::size_t> order_by_hops(
    const topo::Ring& ring, std::span<const coll::Transfer> transfers) {
  std::vector<std::size_t> order(transfers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return ring.distance(transfers[a].src, transfers[a].dst) >
           ring.distance(transfers[b].src, transfers[b].dst);
  });
  return order;
}

topo::Direction pick_direction(const topo::Ring& ring,
                               const coll::Transfer& t) {
  return t.direction ? *t.direction : ring.shortest_direction(t.src, t.dst);
}

bool place_if_fits(OccupancyMap& occupancy, topo::Direction dir,
                   std::uint32_t fiber, std::uint32_t lambda,
                   const SegmentSpan& span, const coll::Transfer& t,
                   Lightpath& out) {
  if (!occupancy.fits(dir, fiber, lambda, span)) return false;
  occupancy.place(dir, fiber, lambda, span);
  out = Lightpath{t.src, t.dst, dir, fiber, lambda, span.first, span.hops};
  return true;
}

/// Tries to place one transfer; returns true and fills `out` on success.
/// First-fit scans wavelengths in index order with no scratch allocation;
/// random-fit shuffles a wavelength permutation through `rng` exactly as
/// the paper's Random-Fit does (one Fisher-Yates pass per transfer).
bool try_assign(const topo::Ring& ring, const coll::Transfer& t,
                const RwaOptions& opt, OccupancyMap& occupancy, Rng* rng,
                Lightpath& out) {
  const topo::Direction dir = pick_direction(ring, t);
  const SegmentSpan span = segment_span(ring, t.src, t.dst, dir);

  if (opt.policy == RwaPolicy::kFirstFit) {
    for (std::uint32_t fiber = 0; fiber < opt.fibers_per_direction; ++fiber) {
      for (std::uint32_t lambda = opt.wavelength_lo; lambda < opt.wavelengths;
           ++lambda) {
        if (place_if_fits(occupancy, dir, fiber, lambda, span, t, out)) {
          return true;
        }
      }
    }
    return false;
  }

  require(rng != nullptr, "RWA: random-fit needs an Rng");
  // The permutation covers the leased slice only, and the Fisher-Yates
  // draw sequence depends on the slice WIDTH alone — a leased random-fit
  // run consumes the Rng exactly like a full run on a narrower fiber, so
  // the slice-equivalence invariant holds for random-fit too.
  const std::uint32_t slice = opt.wavelengths - opt.wavelength_lo;
  std::vector<std::uint32_t> lambda_order(slice);
  std::iota(lambda_order.begin(), lambda_order.end(), opt.wavelength_lo);
  for (std::uint32_t i = slice; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng->uniform_int(0, i - 1));
    std::swap(lambda_order[i - 1], lambda_order[j]);
  }
  for (std::uint32_t fiber = 0; fiber < opt.fibers_per_direction; ++fiber) {
    for (const std::uint32_t lambda : lambda_order) {
      if (place_if_fits(occupancy, dir, fiber, lambda, span, t, out)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

RwaResult assign_wavelengths(const topo::Ring& ring,
                             std::span<const coll::Transfer> transfers,
                             const RwaOptions& options, Rng* rng) {
  const prof::ScopedTimer timer("optical.rwa.assign");
  require(options.wavelengths >= 1 && options.fibers_per_direction >= 1,
          "RWA: need at least one wavelength and fiber");
  require(options.wavelength_lo < options.wavelengths,
          "RWA: leased slice [" + std::to_string(options.wavelength_lo) +
              ", " + std::to_string(options.wavelengths) + ") is empty");
  RwaResult result;
  result.paths.resize(transfers.size());
  OccupancyMap occupancy(ring.size(), options);

  for (const std::size_t idx : order_by_hops(ring, transfers)) {
    Lightpath path;
    if (!try_assign(ring, transfers[idx], options, occupancy, rng, path)) {
      return RwaResult{};  // ok = false
    }
    result.paths[idx] = path;
    result.wavelengths_used =
        std::max(result.wavelengths_used, path.wavelength + 1);
  }
  result.ok = true;
  return result;
}

RoundsResult assign_rounds(const topo::Ring& ring,
                           std::span<const coll::Transfer> transfers,
                           const RwaOptions& options, Rng* rng) {
  require(options.wavelength_lo < options.wavelengths,
          "RWA: leased slice [" + std::to_string(options.wavelength_lo) +
              ", " + std::to_string(options.wavelengths) + ") is empty");
  RoundsResult result;
  std::vector<std::size_t> remaining = order_by_hops(ring, transfers);

  while (!remaining.empty()) {
    OccupancyMap occupancy(ring.size(), options);
    std::vector<std::size_t> round;
    std::vector<Lightpath> paths;
    std::vector<std::size_t> deferred;

    for (const std::size_t idx : remaining) {
      Lightpath path;
      if (try_assign(ring, transfers[idx], options, occupancy, rng, path)) {
        round.push_back(idx);
        paths.push_back(path);
        result.wavelengths_used =
            std::max(result.wavelengths_used, path.wavelength + 1);
      } else {
        deferred.push_back(idx);
      }
    }

    if (round.empty()) {
      throw InfeasibleSchedule(
          "RWA: a transfer cannot be routed even in an empty round "
          "(wavelength budget " +
          std::to_string(options.wavelengths - options.wavelength_lo) + ")");
    }
    result.rounds.push_back(std::move(round));
    result.paths.push_back(std::move(paths));
    remaining = std::move(deferred);
  }
  return result;
}

unsigned resolve_rwa_threads(unsigned threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return thread_count_from_env("WRHT_RWA_THREADS", hw);
}

std::vector<RoundsResult> assign_rounds_batch(const std::vector<RwaStep>& steps,
                                              const RwaOptions& options,
                                              unsigned threads) {
  const prof::ScopedTimer timer("optical.rwa.batch");
  require(options.policy == RwaPolicy::kFirstFit,
          "RWA: assign_rounds_batch is first-fit only — random-fit draws "
          "from a sequential Rng and cannot be partitioned");
  for (const RwaStep& step : steps) {
    require(step.ring != nullptr, "RWA: batch step needs a ring");
  }

  std::vector<RoundsResult> results(steps.size());
  std::vector<std::exception_ptr> errors(steps.size());
  const auto solve = [&](std::size_t s) {
    try {
      results[s] =
          assign_rounds(*steps[s].ring, steps[s].transfers, options, nullptr);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  };

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_rwa_threads(threads), std::max<std::size_t>(steps.size(), 1)));
  if (workers <= 1) {
    for (std::size_t s = 0; s < steps.size(); ++s) solve(s);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
             s < steps.size();
             s = next.fetch_add(1, std::memory_order_relaxed)) {
          solve(s);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Rethrow the lowest-indexed failure: the same exception a sequential
  // in-order loop would have surfaced first.
  for (std::size_t s = 0; s < steps.size(); ++s) {
    if (errors[s]) std::rethrow_exception(errors[s]);
  }
  return results;
}

std::vector<RoundsResult> assign_rounds_batch(
    const topo::Ring& ring,
    const std::vector<std::span<const coll::Transfer>>& steps,
    const RwaOptions& options, unsigned threads) {
  std::vector<RwaStep> problems;
  problems.reserve(steps.size());
  for (const auto& transfers : steps) {
    problems.push_back(RwaStep{&ring, transfers});
  }
  return assign_rounds_batch(problems, options, threads);
}

}  // namespace wrht::optics
