// Timeline export: per-step start/duration/rounds/wavelengths of an
// optical run, as CSV (for plotting) or an ASCII Gantt sketch (for the
// terminal).
#pragma once

#include <ostream>
#include <string>

#include "wrht/obs/run_report.hpp"
#include "wrht/optical/ring_network.hpp"

namespace wrht::optics {

/// Writes step_costs as CSV: step,start_s,duration_s,rounds,wavelengths,
/// max_transfer_elements.
void write_timeline_csv(const OpticalRunResult& result,
                        const std::string& path);

/// Renders a proportional ASCII timeline (one row per step, bar length
/// proportional to duration), at most `width` columns.
void print_timeline(const OpticalRunResult& result, std::ostream& os,
                    std::size_t width = 60);

/// Same ASCII timeline from the backend-neutral report shape (StepReport
/// carries start/duration/rounds/wavelengths), so net::Backend callers
/// need not keep the engine-specific result around.
void print_timeline(const RunReport& report, std::ostream& os,
                    std::size_t width = 60);

}  // namespace wrht::optics
