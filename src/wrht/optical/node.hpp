// TeraRack node model: per-node micro-ring resonator (MRR) tuning.
//
// Each TeraRack node drives four optical interfaces with 64 MRRs each
// (paper §3.2): per ring direction it has transmit MRRs that modulate onto
// selected wavelengths and receive MRRs that drop selected wavelengths.
// This module derives, from a round's lightpaths, the exact tuning state
// of every node, enforces the per-interface MRR capacity, and diffs
// consecutive rounds so the simulator can charge the 25 us reconfiguration
// delay only when rings actually have to retune (the delta-based
// accounting explored by bench_ablation_reconfig).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "wrht/optical/lightpath.hpp"

namespace wrht::optics {

struct NodeHardware {
  /// Optical interfaces per node per direction (TeraRack: 2 of the 4 total
  /// face each direction).
  std::uint32_t interfaces_per_direction = 2;
  /// MRRs (tunable wavelength ports) per interface.
  std::uint32_t mrrs_per_interface = 64;

  [[nodiscard]] std::uint64_t tx_capacity() const {
    return static_cast<std::uint64_t>(interfaces_per_direction) *
           mrrs_per_interface;
  }
  [[nodiscard]] std::uint64_t rx_capacity() const { return tx_capacity(); }
};

/// One tuned micro-ring: node `node` couples wavelength `wavelength` on
/// (direction, fiber) as transmitter (`tx` true) or receiver.
struct Tuning {
  topo::NodeId node = 0;
  topo::Direction direction = topo::Direction::kClockwise;
  std::uint32_t fiber = 0;
  std::uint32_t wavelength = 0;
  bool tx = false;

  auto operator<=>(const Tuning&) const = default;
};

/// The complete MRR state of the network for one round.
class TuningState {
 public:
  TuningState() = default;

  /// Derives the tuning set of a round's lightpaths. Throws
  /// InfeasibleSchedule when any node exceeds its MRR capacity.
  static TuningState from_lightpaths(const std::vector<Lightpath>& paths,
                                     const NodeHardware& hardware);

  [[nodiscard]] const std::set<Tuning>& tunings() const { return tunings_; }
  [[nodiscard]] std::size_t size() const { return tunings_.size(); }

  /// Number of micro-rings that must change state to go from `this` round
  /// to `next` (symmetric difference size): 0 means the circuits can stay
  /// up and no reconfiguration delay is needed.
  [[nodiscard]] std::size_t retune_count(const TuningState& next) const;

 private:
  std::set<Tuning> tunings_;
};

}  // namespace wrht::optics
