#include "wrht/optical/lightpath.hpp"

#include "wrht/common/error.hpp"

namespace wrht::optics {

SegmentSpan segment_span(const topo::Ring& ring, topo::NodeId src,
                         topo::NodeId dst, topo::Direction dir) {
  require(src != dst, "segment_span: zero-length lightpath");
  const std::uint32_t hops = ring.distance_along(src, dst, dir);
  // Clockwise: segments src, src+1, ..., dst-1.
  // Counterclockwise: segments src-1, src-2, ..., dst; as an ascending
  // wrapped interval that is [dst, dst+hops).
  const std::uint32_t first =
      dir == topo::Direction::kClockwise ? src : dst;
  return SegmentSpan{first, hops};
}

bool spans_overlap(const SegmentSpan& a, const SegmentSpan& b,
                   std::uint32_t n) {
  require(a.hops <= n && b.hops <= n, "spans_overlap: span longer than ring");
  if (a.hops == 0 || b.hops == 0) return false;
  // Segment s is inside span x iff (s - x.first) mod n < x.hops.
  // Check whether b.first lies in a, or a.first lies in b.
  const std::uint32_t b_off = (b.first + n - a.first) % n;
  if (b_off < a.hops) return true;
  const std::uint32_t a_off = (a.first + n - b.first) % n;
  return a_off < b.hops;
}

bool lightpaths_conflict(const Lightpath& a, const Lightpath& b,
                         std::uint32_t ring_size) {
  if (a.direction != b.direction || a.fiber != b.fiber ||
      a.wavelength != b.wavelength) {
    return false;
  }
  return spans_overlap(SegmentSpan{a.first_segment, a.hops},
                       SegmentSpan{b.first_segment, b.hops}, ring_size);
}

std::size_t count_conflicts(const std::vector<Lightpath>& paths,
                            std::uint32_t ring_size) {
  std::size_t conflicts = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      if (lightpaths_conflict(paths[i], paths[j], ring_size)) ++conflicts;
    }
  }
  return conflicts;
}

}  // namespace wrht::optics
