#include "wrht/optical/optical_backend.hpp"

#include <utility>

#include "wrht/common/error.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::optics {

namespace {

/// Most even rows x cols factorization of `n` (rows <= cols).
std::pair<std::uint32_t, std::uint32_t> near_square(std::uint32_t n) {
  std::uint32_t rows = 1;
  for (std::uint32_t r = 1; static_cast<std::uint64_t>(r) * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  return {rows, n / rows};
}

}  // namespace

RingBackend::RingBackend(std::uint32_t num_nodes, OpticalConfig config,
                         std::uint64_t rng_seed, bool collect_utilization)
    : network_(num_nodes, config),
      rng_seed_(rng_seed),
      collect_utilization_(collect_utilization) {}

std::string RingBackend::describe() const {
  return "WDM double-ring discrete-event simulator (RWA + multi-round "
         "splitting, Eq. 6 pricing)";
}

net::BackendCapabilities RingBackend::capabilities() const {
  net::BackendCapabilities caps;
  caps.supports_direction_hints = true;
  caps.validates_rwa = true;
  caps.reports_wavelengths = true;
  caps.reports_utilization = true;
  caps.supports_reconfig_overlap = true;
  return caps;
}

RunReport RingBackend::execute(const coll::Schedule& schedule,
                               const obs::Probe& probe) const {
  return execute_at(schedule, probe, Seconds(0.0));
}

RunReport RingBackend::execute_at(const coll::Schedule& schedule,
                                  const obs::Probe& probe,
                                  Seconds start) const {
  const prof::ScopedTimer timer("backend.optical-ring.execute");
  net::count_schedule(probe, schedule);
  const net::ScopedUtilization util(probe, collect_utilization_);
  OpticalRunResult run;
  if (network_.config().rwa_policy == RwaPolicy::kRandomFit) {
    Rng rng(rng_seed_);
    run = network_.execute(schedule, util.probe(), &rng, start);
  } else {
    run = network_.execute(schedule, util.probe(), nullptr, start);
  }
  RunReport report = run.to_report();
  util.finish(report);
  return report;
}

TorusBackend::TorusBackend(const topo::Torus& torus, OpticalConfig config,
                           std::uint64_t rng_seed, bool collect_utilization)
    : network_(torus, config),
      rng_seed_(rng_seed),
      collect_utilization_(collect_utilization) {}

std::string TorusBackend::describe() const {
  return "optical torus: every row/column is a WDM ring; steps last as "
         "long as their slowest ring";
}

net::BackendCapabilities TorusBackend::capabilities() const {
  net::BackendCapabilities caps;
  caps.supports_direction_hints = false;  // hints are flat-ring specific
  caps.validates_rwa = true;
  caps.reports_wavelengths = true;
  caps.dimension_local_transfers_only = true;
  caps.reports_utilization = true;
  caps.supports_reconfig_overlap = true;
  return caps;
}

RunReport TorusBackend::execute(const coll::Schedule& schedule,
                                const obs::Probe& probe) const {
  const prof::ScopedTimer timer("backend.optical-torus.execute");
  net::count_schedule(probe, schedule);
  const net::ScopedUtilization util(probe, collect_utilization_);
  OpticalRunResult run;
  if (network_.config().rwa_policy == RwaPolicy::kRandomFit) {
    Rng rng(rng_seed_);
    run = network_.execute(schedule, util.probe(), &rng);
  } else {
    run = network_.execute(schedule, util.probe());
  }
  RunReport report = run.to_report();
  report.backend = name();
  util.finish(report);
  return report;
}

OpticalConfig optical_config_from(const net::BackendConfig& config) {
  OpticalConfig out;
  out.wavelengths = config.wavelengths;
  out.convention = config.convention;
  out.validate_node_capacity = config.validate_node_capacity;
  out.reconfig_policy = config.reconfig_policy;
  out.rwa_policy =
      config.random_fit_rwa ? RwaPolicy::kRandomFit : RwaPolicy::kFirstFit;
  out.rwa_threads = config.rwa_threads;
  out.lease = config.lease;
  return out;
}

void register_optical_backends(net::BackendRegistry& registry) {
  registry.register_backend(
      "optical-ring",
      "WDM double-ring simulator (RWA, multi-round splitting, Eq. 6)",
      [](const net::BackendConfig& config) -> std::unique_ptr<net::Backend> {
        return std::make_unique<RingBackend>(
            config.num_nodes, optical_config_from(config), config.rng_seed,
            config.collect_utilization);
      });
  registry.register_backend(
      "optical-torus",
      "optical torus of WDM row/column rings (dimension-local transfers)",
      [](const net::BackendConfig& config) -> std::unique_ptr<net::Backend> {
        std::uint32_t rows = config.torus_rows;
        std::uint32_t cols = config.torus_cols;
        if (rows == 0 && cols == 0) {
          std::tie(rows, cols) = near_square(config.num_nodes);
        }
        require(rows >= 1 && cols >= 1 &&
                    static_cast<std::uint64_t>(rows) * cols ==
                        config.num_nodes,
                "optical-torus factory: torus_rows * torus_cols must equal "
                "num_nodes");
        return std::make_unique<TorusBackend>(
            topo::Torus(rows, cols), optical_config_from(config),
            config.rng_seed, config.collect_utilization);
      });
}

}  // namespace wrht::optics
