#include "wrht/optical/crosstalk.hpp"

#include <cmath>

#include "wrht/common/error.hpp"
#include "wrht/optical/power.hpp"

namespace wrht::optics {

PowerDbm worst_case_crosstalk(std::uint64_t hops,
                              const CrosstalkParams& params) {
  const double rx_mw =
      params.per_hop_crosstalk.milliwatts() * static_cast<double>(hops);
  const double tx_mw = params.tx_crosstalk.milliwatts();
  return PowerDbm::from_milliwatts(rx_mw + tx_mw);
}

double snr_linear(std::uint64_t hops, const CrosstalkParams& params) {
  const double noise_mw = worst_case_crosstalk(hops, params).milliwatts() +
                          params.other_noise.milliwatts();
  require(noise_mw > 0.0, "snr_linear: zero noise power");
  return params.signal_power.milliwatts() / noise_mw;
}

double snr_db(std::uint64_t hops, const CrosstalkParams& params) {
  return 10.0 * std::log10(snr_linear(hops, params));
}

double ber_from_snr(double snr_linear_ratio) {
  require(snr_linear_ratio >= 0.0, "ber_from_snr: negative SNR");
  return 0.5 * std::exp(-snr_linear_ratio / 4.0);
}

double ber(std::uint64_t hops, const CrosstalkParams& params) {
  return ber_from_snr(snr_linear(hops, params));
}

std::uint64_t max_hops_for_ber(const CrosstalkParams& params,
                               double target_ber) {
  require(target_ber > 0.0 && target_ber < 0.5,
          "max_hops_for_ber: target must be in (0, 0.5)");
  // BER is monotone increasing in hops (noise accumulates), so solve the
  // SNR threshold analytically: SNR_min = -4 ln(2 * target).
  const double snr_min = -4.0 * std::log(2.0 * target_ber);
  const double signal_mw = params.signal_power.milliwatts();
  const double budget_mw = signal_mw / snr_min;  // max tolerable noise
  const double fixed_mw =
      params.tx_crosstalk.milliwatts() + params.other_noise.milliwatts();
  if (budget_mw <= fixed_mw) return 0;
  const double per_hop_mw = params.per_hop_crosstalk.milliwatts();
  if (per_hop_mw <= 0.0) return UINT64_MAX;
  return static_cast<std::uint64_t>(
      std::floor((budget_mw - fixed_mw) / per_hop_mw));
}

std::uint32_t max_group_size_by_crosstalk(std::uint32_t num_nodes,
                                          const CrosstalkParams& params,
                                          double target_ber) {
  const std::uint64_t reach = max_hops_for_ber(params, target_ber);
  for (std::uint32_t m = num_nodes; m >= 2; --m) {
    if (wrht_max_comm_length(num_nodes, m) <= reach) return m;
  }
  return 0;
}

}  // namespace wrht::optics
