// Insertion-loss power budget (paper Section 4.4.1, Eqs. 7-9).
//
// An optical signal traversing L_max node interfaces loses
//   L_l = P_m + L_max * P_pass                               (Eq. 8)
// and the laser must cover the loss plus the extinction-ratio penalty:
//   P_laser >= L_l + P_p                                     (Eq. 9)
// The longest lightpath of a WRHT run with first-level group size m' is
//   L_max = floor(m'/2)            when ceil(log_m' N) == 1
//   L_max = m'^(ceil(log_m' N)-1)  otherwise                 (Eq. 7)
// which bounds the usable group size m <= m'.
#pragma once

#include <cstdint>

#include "wrht/common/units.hpp"

namespace wrht::optics {

/// Device parameters; defaults follow published silicon-photonics numbers
/// (TeraPHY-class links: ~1.3 dB modulator loss, ~0.01 dB/MRR pass-through,
/// ~4.8 dB extinction-ratio penalty, comb laser line of 10 dBm).
struct PowerParams {
  PowerDbm laser_power{10.0};       ///< P_laser per wavelength line
  Decibels modulator_loss{1.3};     ///< P_m
  Decibels pass_loss{0.01};         ///< P_pass per traversed interface
  Decibels extinction_penalty{4.8}; ///< P_p
};

/// Eq. 8: total insertion loss for a lightpath passing `hops` interfaces.
[[nodiscard]] Decibels insertion_loss(std::uint64_t hops,
                                      const PowerParams& params);

/// Eq. 9: can the laser budget sustain a lightpath of `hops` interfaces?
[[nodiscard]] bool power_feasible(std::uint64_t hops,
                                  const PowerParams& params);

/// Largest hop count satisfying Eq. 9 (0 when even hop-free paths fail).
[[nodiscard]] std::uint64_t max_reach_hops(const PowerParams& params);

/// Eq. 7: longest lightpath length (in hops) of a WRHT run on N nodes with
/// first-level group size m.
[[nodiscard]] std::uint64_t wrht_max_comm_length(std::uint32_t num_nodes,
                                                 std::uint32_t group_size);

/// Largest first-level group size m' (2..min(N, cap)) whose Eq.-7 longest
/// path fits the power budget; returns 0 when none does.
[[nodiscard]] std::uint32_t max_group_size_by_power(std::uint32_t num_nodes,
                                                    const PowerParams& params);

}  // namespace wrht::optics
