#include "wrht/optical/power.hpp"

#include <cmath>

#include "wrht/common/error.hpp"

namespace wrht::optics {

namespace {

/// ceil(log_m n) computed with integer arithmetic: smallest L with m^L >= n.
std::uint32_t ceil_log(std::uint32_t base, std::uint32_t n) {
  require(base >= 2, "ceil_log: base must be >= 2");
  std::uint32_t levels = 0;
  std::uint64_t reach = 1;
  while (reach < n) {
    reach *= base;
    ++levels;
  }
  return levels == 0 ? 1 : levels;  // log_m(1) counts as one level
}

}  // namespace

Decibels insertion_loss(std::uint64_t hops, const PowerParams& params) {
  return params.modulator_loss +
         params.pass_loss * static_cast<double>(hops);
}

bool power_feasible(std::uint64_t hops, const PowerParams& params) {
  const Decibels budget =
      params.laser_power - PowerDbm(0.0);  // dBm relative to 0 dBm floor
  const Decibels needed =
      insertion_loss(hops, params) + params.extinction_penalty;
  return budget.count() >= needed.count();
}

std::uint64_t max_reach_hops(const PowerParams& params) {
  // Eq. 9 is linear in hops; solve directly.
  const double headroom = params.laser_power.count() -
                          params.modulator_loss.count() -
                          params.extinction_penalty.count();
  if (headroom < 0.0) return 0;
  if (params.pass_loss.count() <= 0.0) return UINT64_MAX;
  // The 1e-9 guard keeps exact-ratio budgets (e.g. 3.9 dB / 0.02 dB) from
  // rounding down through floating-point representation error.
  return static_cast<std::uint64_t>(std::floor(
      headroom / params.pass_loss.count() + 1e-9));
}

std::uint64_t wrht_max_comm_length(std::uint32_t num_nodes,
                                   std::uint32_t group_size) {
  require(num_nodes >= 2, "wrht_max_comm_length: need >= 2 nodes");
  require(group_size >= 2, "wrht_max_comm_length: group size must be >= 2");
  const std::uint32_t levels = ceil_log(group_size, num_nodes);
  if (levels == 1) return group_size / 2;
  std::uint64_t length = 1;
  for (std::uint32_t i = 0; i + 1 < levels; ++i) length *= group_size;
  return length;  // m^(L-1)
}

std::uint32_t max_group_size_by_power(std::uint32_t num_nodes,
                                      const PowerParams& params) {
  const std::uint64_t reach = max_reach_hops(params);
  // Eq. 7 is not monotone in m (the level count jumps), so scan from the
  // largest candidate downwards.
  for (std::uint32_t m = num_nodes; m >= 2; --m) {
    if (wrht_max_comm_length(num_nodes, m) <= reach) return m;
  }
  return 0;
}

}  // namespace wrht::optics
