#include "wrht/optical/node.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "wrht/common/error.hpp"

namespace wrht::optics {

TuningState TuningState::from_lightpaths(const std::vector<Lightpath>& paths,
                                         const NodeHardware& hardware) {
  TuningState state;
  // Per (node, direction) MRR usage for the capacity check.
  std::map<std::pair<topo::NodeId, topo::Direction>, std::uint64_t> tx_load;
  std::map<std::pair<topo::NodeId, topo::Direction>, std::uint64_t> rx_load;

  for (const Lightpath& p : paths) {
    const bool tx_inserted =
        state.tunings_
            .insert(Tuning{p.src, p.direction, p.fiber, p.wavelength, true})
            .second;
    const bool rx_inserted =
        state.tunings_
            .insert(Tuning{p.dst, p.direction, p.fiber, p.wavelength, false})
            .second;
    if (tx_inserted) ++tx_load[{p.src, p.direction}];
    if (rx_inserted) ++rx_load[{p.dst, p.direction}];
  }

  for (const auto& [key, load] : tx_load) {
    if (load > hardware.tx_capacity()) {
      throw InfeasibleSchedule(
          "TuningState: node " + std::to_string(key.first) + " needs " +
          std::to_string(load) + " transmit MRRs per direction but has " +
          std::to_string(hardware.tx_capacity()));
    }
  }
  for (const auto& [key, load] : rx_load) {
    if (load > hardware.rx_capacity()) {
      throw InfeasibleSchedule(
          "TuningState: node " + std::to_string(key.first) + " needs " +
          std::to_string(load) + " receive MRRs per direction but has " +
          std::to_string(hardware.rx_capacity()));
    }
  }
  return state;
}

std::size_t TuningState::retune_count(const TuningState& next) const {
  std::size_t differing = 0;
  auto it_a = tunings_.begin();
  auto it_b = next.tunings_.begin();
  while (it_a != tunings_.end() && it_b != next.tunings_.end()) {
    if (*it_a < *it_b) {
      ++differing;
      ++it_a;
    } else if (*it_b < *it_a) {
      ++differing;
      ++it_b;
    } else {
      ++it_a;
      ++it_b;
    }
  }
  differing += std::distance(it_a, tunings_.end());
  differing += std::distance(it_b, next.tunings_.end());
  return differing;
}

}  // namespace wrht::optics
