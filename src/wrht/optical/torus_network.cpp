#include "wrht/optical/torus_network.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/obs/occupancy.hpp"
#include "wrht/obs/transfer_log.hpp"
#include "wrht/optical/rwa.hpp"

namespace wrht::optics {

namespace {

/// One WDM channel's aggregated use within a round of one embedded ring.
struct ChannelUse {
  std::uint8_t direction = 0;
  std::uint32_t fiber = 0;
  std::uint32_t wavelength = 0;
  Seconds serialization{0.0};
  std::uint32_t concurrency = 0;
};

/// Occupancy timeline of one embedded ring within one step, buffered until
/// the step's slowest ring (and hence the straggler horizon) is known.
struct RingTimeline {
  std::string prefix;  ///< "row3" / "col0"
  std::vector<Seconds> round_durations;
  /// MRR delay each round actually paid (== the full delay except under
  /// kOverlapped, where only the residual lands on the timeline).
  std::vector<Seconds> round_reconfig;
  std::vector<std::vector<ChannelUse>> round_uses;
};

std::string torus_channel_name(const std::string& prefix,
                               const ChannelUse& use,
                               std::uint32_t num_fibers) {
  std::string name = prefix;
  name += use.direction == 0 ? "/cw" : "/ccw";
  if (num_fibers > 1) name += "/f" + std::to_string(use.fiber);
  name += "/w" + std::to_string(use.wavelength);
  return name;
}

}  // namespace

TorusNetwork::TorusNetwork(const topo::Torus& torus, OpticalConfig config)
    : torus_(torus),
      config_(config),
      row_ring_(torus.cols()),
      col_ring_(torus.rows()) {
  require(config.wavelengths >= 1, "TorusNetwork: need >= 1 wavelength");
  config.lease.validate(config.wavelengths);
}

OpticalRunResult TorusNetwork::execute(const coll::Schedule& schedule,
                                       Rng* rng) const {
  return execute(schedule, obs::Probe{}, rng);
}

OpticalRunResult TorusNetwork::execute(const coll::Schedule& schedule,
                                       const obs::Probe& probe,
                                       Rng* rng) const {
  require(schedule.num_nodes() <= torus_.size(),
          "TorusNetwork: schedule spans more nodes than the torus");
  schedule.validate();

  const RwaOptions options = config_.rwa_options();

  OpticalRunResult result;
  result.steps = schedule.num_steps();
  result.step_costs.reserve(schedule.num_steps());

  const bool overlapped =
      config_.reconfig_policy == net::ReconfigPolicy::kOverlapped;
  const bool blame = probe.transfers != nullptr;
  if (blame) {
    obs::TransferLog::Context context;
    context.backend = "optical-torus";
    context.reconfig_policy = net::to_string(config_.reconfig_policy);
    context.mrr_reconfig_delay = config_.mrr_reconfig_delay;
    context.oeo_delay = config_.oeo_delay;
    probe.transfers->set_context(std::move(context));
  }
  double now = 0.0;
  std::size_t step_index = 0;
  // kOverlapped: window the first round of a step can hide its retune in.
  // Steps are barriers, so every ring's retune for step k proceeds during
  // step k-1's transmissions; later rounds of a ring overlap their own
  // previous round. Step 0 has nothing to overlap with.
  double step_window = 0.0;
  for (const auto& step : schedule.steps()) {
    // Partition the step's transfers onto their row/column rings,
    // remapping node ids to ring-local positions.
    // Key: (true, row index) for rows, (false, column index) for columns.
    std::map<std::pair<bool, std::uint32_t>, RingShare> shares;
    for (std::size_t t_index = 0; t_index < step.transfers.size();
         ++t_index) {
      const coll::Transfer& t = step.transfers[t_index];
      coll::Transfer local = t;
      local.direction = std::nullopt;  // hints are flat-ring specific
      if (torus_.row_of(t.src) == torus_.row_of(t.dst)) {
        local.src = torus_.col_of(t.src);
        local.dst = torus_.col_of(t.dst);
        RingShare& share = shares[{true, torus_.row_of(t.src)}];
        share.transfers.push_back(local);
        share.source.push_back(t_index);
      } else if (torus_.col_of(t.src) == torus_.col_of(t.dst)) {
        local.src = torus_.row_of(t.src);
        local.dst = torus_.row_of(t.dst);
        RingShare& share = shares[{false, torus_.col_of(t.src)}];
        share.transfers.push_back(local);
        share.source.push_back(t_index);
      } else {
        throw InfeasibleSchedule(
            "TorusNetwork: transfer " + std::to_string(t.src) + "->" +
            std::to_string(t.dst) + " crosses both torus dimensions");
      }
    }

    // Per-ring RWA. The rings of a step are independent problems, so the
    // first-fit path batch-solves them (parallel when rwa_threads resolves
    // past 1) and the fold below consumes the results in the shares map's
    // deterministic key order; random-fit keeps the sequential Rng walk.
    std::vector<RoundsResult> ring_rounds;
    if (config_.rwa_policy == RwaPolicy::kFirstFit) {
      std::vector<RwaStep> problems;
      problems.reserve(shares.size());
      for (const auto& [key, share] : shares) {
        problems.push_back(RwaStep{key.first ? &row_ring_ : &col_ring_,
                                   share.transfers});
      }
      ring_rounds =
          assign_rounds_batch(problems, options, config_.rwa_threads);
    } else {
      ring_rounds.reserve(shares.size());
      for (const auto& [key, share] : shares) {
        const topo::Ring& ring = key.first ? row_ring_ : col_ring_;
        ring_rounds.push_back(
            assign_rounds(ring, share.transfers, options, rng));
      }
    }

    StepCost cost;
    cost.start = Seconds(now);
    std::uint32_t max_rounds = 0;
    std::uint32_t max_paid_rounds = 0;
    double slowest = 0.0;
    double slowest_serial = 0.0;  // every-round pricing, for overlap_hidden
    std::vector<RingTimeline> timelines;  // filled only when sampling
    std::size_t share_index = 0;
    for (const auto& [key, share] : shares) {
      const RoundsResult& rounds = ring_rounds[share_index++];
      RingTimeline timeline;
      std::string lane;
      if (probe.occupancy != nullptr || blame) {
        lane = (key.first ? "row" : "col") + std::to_string(key.second);
      }
      if (probe.occupancy != nullptr) timeline.prefix = lane;
      double ring_time = 0.0;
      double ring_time_serial = 0.0;
      double window = step_window;  // per-ring overlap window (kOverlapped)
      std::uint32_t paid_rounds = 0;
      for (std::size_t r = 0; r < rounds.rounds.size(); ++r) {
        std::size_t max_elements = 0;
        for (const std::size_t idx : rounds.rounds[r]) {
          max_elements =
              std::max(max_elements, share.transfers[idx].count);
        }
        const double busy = config_.oeo_delay.count() +
                            static_cast<double>(max_elements) *
                                config_.bytes_per_element /
                                config_.bytes_per_second();
        const double full = config_.mrr_reconfig_delay.count();
        const double reconfig =
            overlapped ? std::max(0.0, full - window) : full;
        const double round_time = reconfig + busy;
        if (reconfig > 0.0) ++paid_rounds;
        window = busy;
        if (blame) {
          const Seconds round_start = cost.start + Seconds(ring_time);
          const double ser_max = static_cast<double>(max_elements) *
                                 config_.bytes_per_element /
                                 config_.bytes_per_second();
          obs::RoundTrace round;
          round.step = static_cast<std::uint32_t>(step_index);
          round.lane = lane;
          round.round = static_cast<std::uint32_t>(r);
          round.start = round_start;
          round.reconfig = Seconds(reconfig);
          round.full_reconfig = config_.mrr_reconfig_delay;
          round.conversion = config_.oeo_delay;
          round.serialization = Seconds(ser_max);
          round.duration = Seconds(round_time);
          // The torus control plane retunes every round (it prices
          // kOnRetune like kEveryRound), so every round reports retune.
          round.retune = true;
          probe.transfers->round(std::move(round));

          const Seconds payload_start =
              round_start + Seconds(reconfig) + config_.oeo_delay;
          for (std::size_t j = 0; j < rounds.paths[r].size(); ++j) {
            const Lightpath& p = rounds.paths[r][j];
            const std::size_t local_idx = rounds.rounds[r][j];
            const coll::Transfer& original =
                step.transfers[share.source[local_idx]];
            obs::TransferTrace trace;
            trace.step = static_cast<std::uint32_t>(step_index);
            trace.lane = lane;
            trace.round = static_cast<std::uint32_t>(r);
            trace.src = original.src;
            trace.dst = original.dst;
            trace.elements = original.count;
            trace.wavelength = p.wavelength;
            trace.direction = static_cast<std::uint8_t>(
                p.direction == topo::Direction::kClockwise ? 0 : 1);
            trace.start = payload_start;
            trace.duration =
                Seconds(static_cast<double>(original.count) *
                        config_.bytes_per_element /
                        config_.bytes_per_second());
            probe.transfers->transfer(std::move(trace));
          }
        }
        ring_time += round_time;
        ring_time_serial += full + busy;
        cost.max_transfer_elements =
            std::max(cost.max_transfer_elements, max_elements);
        if (probe.occupancy != nullptr) {
          // Aggregate the round's lightpaths per channel (spatial reuse
          // shares one wavelength over disjoint segments); std::map keys
          // keep the use list deterministically ordered.
          std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>,
                   ChannelUse>
              uses;
          for (std::size_t j = 0; j < rounds.paths[r].size(); ++j) {
            const Lightpath& p = rounds.paths[r][j];
            const auto dir = static_cast<std::uint8_t>(
                p.direction == topo::Direction::kClockwise ? 0 : 1);
            ChannelUse& use = uses[{dir, p.fiber, p.wavelength}];
            use.direction = dir;
            use.fiber = p.fiber;
            use.wavelength = p.wavelength;
            const double ser =
                static_cast<double>(
                    share.transfers[rounds.rounds[r][j]].count) *
                config_.bytes_per_element / config_.bytes_per_second();
            use.serialization = std::max(use.serialization, Seconds(ser));
            ++use.concurrency;
          }
          timeline.round_durations.emplace_back(round_time);
          timeline.round_reconfig.emplace_back(reconfig);
          timeline.round_uses.emplace_back();
          for (auto& [k, use] : uses) {
            timeline.round_uses.back().push_back(use);
          }
        }
      }
      for (const auto& round : rounds.paths) {
        for (const Lightpath& p : round) {
          result.longest_lightpath_hops =
              std::max(result.longest_lightpath_hops, p.hops);
        }
      }
      cost.wavelengths_used =
          std::max(cost.wavelengths_used, rounds.wavelengths_used);
      max_rounds = std::max(
          max_rounds, static_cast<std::uint32_t>(rounds.rounds.size()));
      max_paid_rounds = std::max(max_paid_rounds, paid_rounds);
      slowest = std::max(slowest, ring_time);
      slowest_serial = std::max(slowest_serial, ring_time_serial);
      if (probe.occupancy != nullptr) {
        timelines.push_back(std::move(timeline));
      }
    }

    // Replay each ring's buffered timeline now that the step's end (the
    // slowest ring) is known: rounds decompose into reconfiguration,
    // O/E/O, transmission and in-round straggler wait; a ring finishing
    // early holds its channels in straggler-wait until the step ends.
    if (probe.occupancy != nullptr) {
      const Seconds step_end = cost.start + Seconds(slowest);
      const auto step_id = static_cast<std::uint32_t>(step_index);
      for (const RingTimeline& timeline : timelines) {
        Seconds cursor = cost.start;
        std::vector<obs::OccupancySampler::ResourceRef> used;
        for (std::size_t r = 0; r < timeline.round_durations.size(); ++r) {
          const Seconds round_end = cursor + timeline.round_durations[r];
          for (const ChannelUse& use : timeline.round_uses[r]) {
            const auto ref = probe.occupancy->resource(torus_channel_name(
                timeline.prefix, use, config_.fibers_per_direction));
            Seconds at = cursor;
            // Under kOverlapped only the residual is charged here; the
            // hidden portion happened during the previous round's (or
            // step's) transmissions.
            probe.occupancy->record(ref, step_id, at,
                                    timeline.round_reconfig[r],
                                    obs::OccCategory::kReconfiguration);
            at += timeline.round_reconfig[r];
            probe.occupancy->record(ref, step_id, at, config_.oeo_delay,
                                    obs::OccCategory::kConversion);
            at += config_.oeo_delay;
            probe.occupancy->record(ref, step_id, at, use.serialization,
                                    obs::OccCategory::kTransmission,
                                    use.concurrency);
            at += use.serialization;
            probe.occupancy->record(ref, step_id, at, round_end - at,
                                    obs::OccCategory::kStragglerWait);
            if (std::find(used.begin(), used.end(), ref) == used.end()) {
              used.push_back(ref);
            }
          }
          cursor = round_end;
        }
        for (const auto ref : used) {
          probe.occupancy->record(ref, step_id, cursor, step_end - cursor,
                                  obs::OccCategory::kStragglerWait);
        }
      }
    }

    cost.label = step.label;
    cost.rounds = max_rounds;
    cost.duration = Seconds(slowest);
    if (blame && !step.transfers.empty()) {
      obs::StepTrace step_trace;
      step_trace.step = static_cast<std::uint32_t>(step_index);
      step_trace.label = step.label.empty()
                             ? "step " + std::to_string(step_index)
                             : step.label;
      step_trace.start = cost.start;
      step_trace.duration = cost.duration;
      probe.transfers->step(std::move(step_trace));
    }
    result.total_rounds += max_rounds;
    // Critical-path reconfiguration charges: under kOverlapped only rounds
    // whose residual survived the overlap window count, and the hidden
    // time is the step's serial-vs-overlapped delta on the slowest ring.
    result.reconfigurations += overlapped ? max_paid_rounds : max_rounds;
    result.overlap_hidden += Seconds(slowest_serial - slowest);
    result.max_wavelengths_used =
        std::max(result.max_wavelengths_used, cost.wavelengths_used);
    result.step_costs.push_back(cost);

    probe.count("optical.steps");
    probe.count("optical.rounds", max_rounds);
    probe.count("optical.reconfig_charges",
                overlapped ? max_paid_rounds : max_rounds);
    if (max_rounds > 1) probe.count("optical.multi_round_steps");
    probe.count_max("optical.max_wavelengths_used", cost.wavelengths_used);
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "torus-step";
      span.start = cost.start;
      span.duration = cost.duration;
      span.args = {{"rounds", std::to_string(cost.rounds)},
                   {"wavelengths", std::to_string(cost.wavelengths_used)},
                   {"rings", std::to_string(shares.size())}};
      probe.span(span);
      probe.counter_sample("wavelengths in use", cost.start,
                           static_cast<double>(cost.wavelengths_used));
    }
    now += slowest;
    step_window = slowest;
    ++step_index;
  }
  result.total_time = Seconds(now);
  if (probe.trace != nullptr && result.total_rounds > 0) {
    probe.counter_sample("wavelengths in use", result.total_time, 0.0);
  }
  return result;
}

}  // namespace wrht::optics
