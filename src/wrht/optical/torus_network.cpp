#include "wrht/optical/torus_network.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "wrht/common/error.hpp"
#include "wrht/optical/rwa.hpp"

namespace wrht::optics {

TorusNetwork::TorusNetwork(const topo::Torus& torus, OpticalConfig config)
    : torus_(torus),
      config_(config),
      row_ring_(torus.cols()),
      col_ring_(torus.rows()) {
  require(config.wavelengths >= 1, "TorusNetwork: need >= 1 wavelength");
}

OpticalRunResult TorusNetwork::execute(const coll::Schedule& schedule,
                                       Rng* rng) const {
  return execute(schedule, obs::Probe{}, rng);
}

OpticalRunResult TorusNetwork::execute(const coll::Schedule& schedule,
                                       const obs::Probe& probe,
                                       Rng* rng) const {
  require(schedule.num_nodes() <= torus_.size(),
          "TorusNetwork: schedule spans more nodes than the torus");
  schedule.validate();

  const RwaOptions options{config_.wavelengths, config_.fibers_per_direction,
                           config_.rwa_policy};

  OpticalRunResult result;
  result.steps = schedule.num_steps();
  result.step_costs.reserve(schedule.num_steps());

  double now = 0.0;
  std::size_t step_index = 0;
  for (const auto& step : schedule.steps()) {
    // Partition the step's transfers onto their row/column rings,
    // remapping node ids to ring-local positions.
    // Key: (true, row index) for rows, (false, column index) for columns.
    std::map<std::pair<bool, std::uint32_t>, RingShare> shares;
    for (const coll::Transfer& t : step.transfers) {
      coll::Transfer local = t;
      local.direction = std::nullopt;  // hints are flat-ring specific
      if (torus_.row_of(t.src) == torus_.row_of(t.dst)) {
        local.src = torus_.col_of(t.src);
        local.dst = torus_.col_of(t.dst);
        shares[{true, torus_.row_of(t.src)}].transfers.push_back(local);
      } else if (torus_.col_of(t.src) == torus_.col_of(t.dst)) {
        local.src = torus_.row_of(t.src);
        local.dst = torus_.row_of(t.dst);
        shares[{false, torus_.col_of(t.src)}].transfers.push_back(local);
      } else {
        throw InfeasibleSchedule(
            "TorusNetwork: transfer " + std::to_string(t.src) + "->" +
            std::to_string(t.dst) + " crosses both torus dimensions");
      }
    }

    StepCost cost;
    cost.start = Seconds(now);
    std::uint32_t max_rounds = 0;
    double slowest = 0.0;
    for (const auto& [key, share] : shares) {
      const topo::Ring& ring = key.first ? row_ring_ : col_ring_;
      const RoundsResult rounds =
          assign_rounds(ring, share.transfers, options, rng);
      double ring_time = 0.0;
      for (std::size_t r = 0; r < rounds.rounds.size(); ++r) {
        std::size_t max_elements = 0;
        for (const std::size_t idx : rounds.rounds[r]) {
          max_elements =
              std::max(max_elements, share.transfers[idx].count);
        }
        ring_time += config_.mrr_reconfig_delay.count() +
                     config_.oeo_delay.count() +
                     static_cast<double>(max_elements) *
                         config_.bytes_per_element /
                         config_.bytes_per_second();
        cost.max_transfer_elements =
            std::max(cost.max_transfer_elements, max_elements);
      }
      for (const auto& round : rounds.paths) {
        for (const Lightpath& p : round) {
          result.longest_lightpath_hops =
              std::max(result.longest_lightpath_hops, p.hops);
        }
      }
      cost.wavelengths_used =
          std::max(cost.wavelengths_used, rounds.wavelengths_used);
      max_rounds = std::max(
          max_rounds, static_cast<std::uint32_t>(rounds.rounds.size()));
      slowest = std::max(slowest, ring_time);
    }

    cost.label = step.label;
    cost.rounds = max_rounds;
    cost.duration = Seconds(slowest);
    result.total_rounds += max_rounds;
    result.reconfigurations += max_rounds;
    result.max_wavelengths_used =
        std::max(result.max_wavelengths_used, cost.wavelengths_used);
    result.step_costs.push_back(cost);

    probe.count("optical.steps");
    probe.count("optical.rounds", max_rounds);
    probe.count("optical.reconfig_charges", max_rounds);
    if (max_rounds > 1) probe.count("optical.multi_round_steps");
    probe.count_max("optical.max_wavelengths_used", cost.wavelengths_used);
    if (probe.trace != nullptr) {
      obs::TraceSpan span;
      span.name = step.label.empty() ? "step " + std::to_string(step_index)
                                     : step.label;
      span.category = "torus-step";
      span.start = cost.start;
      span.duration = cost.duration;
      span.args = {{"rounds", std::to_string(cost.rounds)},
                   {"wavelengths", std::to_string(cost.wavelengths_used)},
                   {"rings", std::to_string(shares.size())}};
      probe.span(span);
    }
    now += slowest;
    ++step_index;
  }
  result.total_time = Seconds(now);
  return result;
}

}  // namespace wrht::optics
