// Routing and Wavelength Assignment (RWA) for one communication step.
//
// Given the concurrent transfers of a step, assign each a direction (honour
// the schedule's hint, else shortest path) and a (fiber, wavelength) pair
// such that no two lightpaths share a wavelength on an overlapping segment
// of the same fiber. Supports the paper's First-Fit and Random-Fit policies
// and, when a step needs more wavelengths than the fiber carries, a greedy
// split of the step into sequential conflict-free rounds.
//
// Steps are independent RWA problems (occupancy never carries across
// steps), so assign_rounds_batch() solves many steps in parallel. The
// parallel path is first-fit only — first-fit is a pure function of the
// transfer list, so partitioning cannot change any result — and merges
// per-step results back in input order; see DESIGN.md "Determinism
// contract". Random-fit consumes a caller Rng sequentially and must stay
// on the single-threaded entry points.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/optical/lightpath.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::optics {

enum class RwaPolicy {
  kFirstFit,  ///< lowest-index free wavelength (Ozdaglar & Bertsekas)
  kRandomFit  ///< random free wavelength (Wason & Kaler)
};

struct RwaOptions {
  std::uint32_t wavelengths = 64;
  std::uint32_t fibers_per_direction = 1;
  RwaPolicy policy = RwaPolicy::kFirstFit;
  /// First wavelength index the assignment may use: both policies scan
  /// [wavelength_lo, wavelengths) only, so a tenant holding a
  /// net::ResourceLease on that slice never collides with its neighbours.
  /// The default 0 (with `wavelengths` = fiber width) is the historical
  /// exclusive-fabric behaviour. Assigned Lightpath::wavelength indices
  /// stay absolute (fiber-relative, not slice-relative).
  std::uint32_t wavelength_lo = 0;
};

struct RwaResult {
  bool ok = false;
  /// Parallel to the input transfers; valid only when ok.
  std::vector<Lightpath> paths;
  /// Highest wavelength index used + 1 (0 when no transfers).
  std::uint32_t wavelengths_used = 0;
};

/// Assigns all transfers in one round. When the wavelength budget does not
/// suffice, returns ok=false (paths empty).
[[nodiscard]] RwaResult assign_wavelengths(
    const topo::Ring& ring, std::span<const coll::Transfer> transfers,
    const RwaOptions& options, Rng* rng = nullptr);

struct RoundsResult {
  /// rounds[r] lists indices into the input transfer vector.
  std::vector<std::vector<std::size_t>> rounds;
  /// Per-round assignments, parallel to `rounds`.
  std::vector<std::vector<Lightpath>> paths;
  std::uint32_t wavelengths_used = 0;
};

/// Greedily packs the transfers into as few sequential rounds as possible,
/// each conflict-free within the wavelength budget. Throws
/// InfeasibleSchedule if some transfer cannot be routed even alone.
[[nodiscard]] RoundsResult assign_rounds(
    const topo::Ring& ring, std::span<const coll::Transfer> transfers,
    const RwaOptions& options, Rng* rng = nullptr);

/// Worker count for assign_rounds_batch: `threads` if >= 1, else
/// WRHT_RWA_THREADS when set to a valid positive integer (bad values warn
/// and fall through), else std::thread::hardware_concurrency().
[[nodiscard]] unsigned resolve_rwa_threads(unsigned threads = 0);

/// One independent RWA problem in a batch: a step's (or embedded ring
/// share's) transfers on the ring that carries them. The ring pointer must
/// outlive the batch call.
struct RwaStep {
  const topo::Ring* ring = nullptr;
  std::span<const coll::Transfer> transfers;
};

/// Solves one assign_rounds problem per entry of `steps`, partitioned
/// across up to `threads` workers (0 = resolve_rwa_threads()).
///
/// Determinism contract: first-fit only (throws on random-fit). Results
/// are returned in input order and each step is solved with its own
/// occupancy state, so the output is byte-identical for every thread
/// count, including 1. If several steps throw, the exception of the
/// lowest-indexed failing step is rethrown — exactly what a sequential
/// loop would have surfaced.
[[nodiscard]] std::vector<RoundsResult> assign_rounds_batch(
    const std::vector<RwaStep>& steps, const RwaOptions& options,
    unsigned threads = 0);

/// Single-ring convenience overload of the batch above.
[[nodiscard]] std::vector<RoundsResult> assign_rounds_batch(
    const topo::Ring& ring,
    const std::vector<std::span<const coll::Transfer>>& steps,
    const RwaOptions& options, unsigned threads = 0);

}  // namespace wrht::optics
