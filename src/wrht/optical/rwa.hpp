// Routing and Wavelength Assignment (RWA) for one communication step.
//
// Given the concurrent transfers of a step, assign each a direction (honour
// the schedule's hint, else shortest path) and a (fiber, wavelength) pair
// such that no two lightpaths share a wavelength on an overlapping segment
// of the same fiber. Supports the paper's First-Fit and Random-Fit policies
// and, when a step needs more wavelengths than the fiber carries, a greedy
// split of the step into sequential conflict-free rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/common/rng.hpp"
#include "wrht/optical/lightpath.hpp"
#include "wrht/topo/ring.hpp"

namespace wrht::optics {

enum class RwaPolicy {
  kFirstFit,  ///< lowest-index free wavelength (Ozdaglar & Bertsekas)
  kRandomFit  ///< random free wavelength (Wason & Kaler)
};

struct RwaOptions {
  std::uint32_t wavelengths = 64;
  std::uint32_t fibers_per_direction = 1;
  RwaPolicy policy = RwaPolicy::kFirstFit;
};

struct RwaResult {
  bool ok = false;
  /// Parallel to the input transfers; valid only when ok.
  std::vector<Lightpath> paths;
  /// Highest wavelength index used + 1 (0 when no transfers).
  std::uint32_t wavelengths_used = 0;
};

/// Assigns all transfers in one round. When the wavelength budget does not
/// suffice, returns ok=false (paths empty).
[[nodiscard]] RwaResult assign_wavelengths(
    const topo::Ring& ring, const std::vector<coll::Transfer>& transfers,
    const RwaOptions& options, Rng* rng = nullptr);

struct RoundsResult {
  /// rounds[r] lists indices into the input transfer vector.
  std::vector<std::vector<std::size_t>> rounds;
  /// Per-round assignments, parallel to `rounds`.
  std::vector<std::vector<Lightpath>> paths;
  std::uint32_t wavelengths_used = 0;
};

/// Greedily packs the transfers into as few sequential rounds as possible,
/// each conflict-free within the wavelength budget. Throws
/// InfeasibleSchedule if some transfer cannot be routed even alone.
[[nodiscard]] RoundsResult assign_rounds(
    const topo::Ring& ring, const std::vector<coll::Transfer>& transfers,
    const RwaOptions& options, Rng* rng = nullptr);

}  // namespace wrht::optics
