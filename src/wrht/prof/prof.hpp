// Host-side (wall-clock) profiling of the simulator itself.
//
// wrht::obs observes *simulated* time — where the modelled network spends
// its seconds. wrht::prof observes *wall-clock* time — where this process
// spends its seconds while computing those models: schedule construction,
// RWA solves, engine execution, verification, analysis, CSV/JSON writes,
// and the sweep worker pool's busy/idle split.
//
// The design discipline mirrors obs: null by default. No ProfRegistry is
// installed unless a tool opts in, every instrumentation site is a
// ScopedTimer whose constructor performs exactly one relaxed pointer load
// when profiling is off, and nothing else happens — no string copies, no
// clock reads, no allocation (bench_micro's BM_ScopedTimerOff guards
// this). When a registry is installed, each thread accumulates into its
// own lock-free cells (relaxed atomics on pre-resolved pointers; the only
// lock is taken once per (thread, phase) on first use) and the registry
// merges the per-thread totals at report time.
//
// Typical use:
//
//     prof::ProfRegistry registry;
//     {
//       const prof::ScopedProfiling on(registry);   // install as current
//       run_benchmark();                            // timers now record
//     }
//     for (const auto& [phase, t] : registry.phase_totals())
//       std::printf("%-24s %8llu calls  %.3f s\n", phase.c_str(),
//                   (unsigned long long)t.calls, t.seconds);
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wrht::prof {

/// Aggregated wall-clock account of one phase: how often it ran and the
/// inclusive time spent inside it. Nested timers are inclusive, so a child
/// phase's seconds never exceed its enclosing phase's seconds (the
/// nesting invariant test_prof pins).
struct PhaseTotals {
  std::uint64_t calls = 0;
  double seconds = 0.0;

  PhaseTotals& operator+=(const PhaseTotals& o) {
    calls += o.calls;
    seconds += o.seconds;
    return *this;
  }
};

/// Collects phase timings across every thread that runs a ScopedTimer
/// while this registry is installed (ScopedProfiling). Thread-safe:
/// workers accumulate concurrently; snapshots may be taken at any time
/// and see each cell's latest published value.
class ProfRegistry {
 public:
  ProfRegistry();
  ~ProfRegistry();
  ProfRegistry(const ProfRegistry&) = delete;
  ProfRegistry& operator=(const ProfRegistry&) = delete;

  /// The process-current registry, or nullptr when profiling is off (the
  /// default). This is the one pointer every instrumentation site tests.
  [[nodiscard]] static ProfRegistry* current();

  /// Phase totals merged across all threads, name-ordered. Deterministic
  /// for a deterministic workload: totals are independent of how the work
  /// was spread over threads.
  [[nodiscard]] std::map<std::string, PhaseTotals> phase_totals() const;

  /// Per-thread totals, in thread registration order. `label` is
  /// "thread-<k>" unless the thread called set_thread_label (the sweep
  /// pool labels its workers "sweep-worker-<k>").
  struct ThreadTotals {
    std::string label;
    std::map<std::string, PhaseTotals> phases;
  };
  [[nodiscard]] std::vector<ThreadTotals> thread_totals() const;

  /// Optional allocation accounting. The library deliberately ships no
  /// global operator new replacement (it would perturb every benchmark it
  /// is meant to measure); arena-style allocators and tools call this
  /// hook directly.
  void note_allocation(std::size_t bytes);
  [[nodiscard]] std::uint64_t allocation_count() const;
  [[nodiscard]] std::uint64_t allocated_bytes() const;

  /// Labels the calling thread's totals in this registry.
  void label_this_thread(const std::string& label);

 private:
  friend class ScopedTimer;
  friend class ScopedProfiling;

  /// One phase's accumulator. Stable address (deque storage) so threads
  /// cache the pointer and accumulate without any lock.
  struct PhaseCell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  struct ThreadRecord;
  struct Tls;  ///< per-thread (registry, phase) -> cell cache; prof.cpp

  /// The calling thread's cell for `phase`, registering the thread and/or
  /// the phase on first use (the only locked path).
  PhaseCell* cell(std::string_view phase);
  ThreadRecord* this_thread_record();

  const std::uint64_t epoch_;  ///< disambiguates reused addresses in TLS
  mutable std::mutex mutex_;   ///< guards records_ and each record's map
  std::vector<std::unique_ptr<ThreadRecord>> records_;
  std::atomic<std::uint64_t> alloc_count_{0};
  std::atomic<std::uint64_t> alloc_bytes_{0};
};

/// Installs a registry as ProfRegistry::current() for its scope and
/// restores the previous one (usually nullptr) on destruction.
class ScopedProfiling {
 public:
  explicit ScopedProfiling(ProfRegistry& registry);
  ~ScopedProfiling();
  ScopedProfiling(const ScopedProfiling&) = delete;
  ScopedProfiling& operator=(const ScopedProfiling&) = delete;

 private:
  ProfRegistry* previous_;
};

/// Labels the calling thread in the current registry; no-op when
/// profiling is off.
void set_thread_label(const std::string& label);

/// Times one phase from construction to destruction. When no registry is
/// installed the constructor is a single pointer test and the destructor
/// a null check — the off-by-default zero-overhead contract.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view phase) {
    ProfRegistry* registry = ProfRegistry::current();
    if (registry == nullptr) return;
    cell_ = registry->cell(phase);
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (cell_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    cell_->nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    cell_->calls.fetch_add(1, std::memory_order_relaxed);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfRegistry::PhaseCell* cell_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size of this process in bytes (Linux VmHWM, falling
/// back to getrusage); 0 when the platform exposes neither.
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace wrht::prof
