// Machine-readable performance results (BENCH_<name>.json).
//
// PerfReport is the schema every perf-emitting tool shares: run metadata
// (repetitions, worker threads), wall time, thread-pool efficiency, peak
// RSS, a set of named metrics (each a scalar with a unit — medians and
// p90s of repeated measurements via wrht::percentile), and the merged
// wrht::prof phase table. write_json() is deterministic — fixed key
// order, name-sorted metric/phase maps, %.9g numbers — so goldens and
// baseline diffs are byte-stable for a given measurement.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wrht/prof/prof.hpp"

namespace wrht::prof {

/// One scalar result, e.g. {"sweep.wall_s.median", 0.41, "s"} or
/// {"events_per_s.median", 2.1e6, "/s"}.
struct PerfMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct PerfReport {
  std::string name;             ///< suite name; file becomes BENCH_<name>.json
  std::uint32_t repetitions = 0;
  std::uint32_t threads = 0;    ///< sweep worker-pool size used
  double wall_time_s = 0.0;     ///< whole-suite wall clock
  /// Worker busy time / (workers x worker wall time), in [0, 1]; how much
  /// of the pool WRHT_SWEEP_THREADS actually bought.
  double thread_efficiency = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::vector<PerfMetric> metrics;
  std::map<std::string, PhaseTotals> phases;

  void add_metric(const std::string& metric_name, double value,
                  const std::string& unit);
  /// Adds `<base>.median` and `<base>.p90` over `samples` (non-empty).
  void add_sample_metrics(const std::string& base,
                          const std::vector<double>& samples,
                          const std::string& unit);
  /// The metric named `metric_name`, or nullptr.
  [[nodiscard]] const PerfMetric* find_metric(
      const std::string& metric_name) const;

  /// Copies the registry's merged phase table and thread-efficiency
  /// figures (from the "sweep.worker.busy" / "sweep.worker.wall" phases,
  /// when present) into this report.
  void capture(const ProfRegistry& registry);

  void write_json(std::ostream& out) const;
  /// write_json() to `path`; throws wrht::Error if the file cannot open.
  void write_json_file(const std::string& path) const;
};

}  // namespace wrht::prof
