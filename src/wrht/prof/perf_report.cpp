#include "wrht/prof/perf_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "wrht/common/error.hpp"
#include "wrht/common/stats.hpp"

namespace wrht::prof {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Metric and phase names are library-chosen identifiers (no quotes or
/// control characters), but escape the JSON specials anyway so a stray
/// name cannot corrupt the document.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += (static_cast<unsigned char>(c) < 0x20) ? '?' : c;
  }
  return out;
}

}  // namespace

void PerfReport::add_metric(const std::string& metric_name, double value,
                            const std::string& unit) {
  metrics.push_back(PerfMetric{metric_name, value, unit});
}

void PerfReport::add_sample_metrics(const std::string& base,
                                    const std::vector<double>& samples,
                                    const std::string& unit) {
  require(!samples.empty(), "PerfReport: no samples for " + base);
  add_metric(base + ".median", percentile(samples, 0.5), unit);
  add_metric(base + ".p90", percentile(samples, 0.9), unit);
}

const PerfMetric* PerfReport::find_metric(
    const std::string& metric_name) const {
  for (const PerfMetric& m : metrics) {
    if (m.name == metric_name) return &m;
  }
  return nullptr;
}

void PerfReport::capture(const ProfRegistry& registry) {
  phases = registry.phase_totals();
  // Pool efficiency: what fraction of the workers' wall time was spent
  // inside run_point. Both phases are recorded by exp::SweepRunner.
  const auto busy = phases.find("sweep.worker.busy");
  const auto wall = phases.find("sweep.worker.wall");
  if (busy != phases.end() && wall != phases.end() &&
      wall->second.seconds > 0.0) {
    thread_efficiency =
        std::min(1.0, busy->second.seconds / wall->second.seconds);
  }
}

void PerfReport::write_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"schema\": \"wrht-perf-1\",\n";
  out << "  \"name\": \"" << escape(name) << "\",\n";
  out << "  \"repetitions\": " << repetitions << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"wall_time_s\": " << format_double(wall_time_s) << ",\n";
  out << "  \"thread_efficiency\": " << format_double(thread_efficiency)
      << ",\n";
  out << "  \"peak_rss_bytes\": " << peak_rss_bytes << ",\n";

  std::vector<const PerfMetric*> sorted;
  sorted.reserve(metrics.size());
  for (const PerfMetric& m : metrics) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const PerfMetric* a, const PerfMetric* b) {
              return a->name < b->name;
            });
  out << "  \"metrics\": {";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \"" << escape(sorted[i]->name)
        << "\": {\"value\": " << format_double(sorted[i]->value)
        << ", \"unit\": \"" << escape(sorted[i]->unit) << "\"}";
  }
  out << (sorted.empty() ? "" : "\n  ") << "},\n";

  out << "  \"phases\": {";
  bool first = true;
  for (const auto& [phase, totals] : phases) {
    out << (first ? "" : ",") << "\n    \"" << escape(phase)
        << "\": {\"calls\": " << totals.calls
        << ", \"seconds\": " << format_double(totals.seconds) << "}";
    first = false;
  }
  out << (phases.empty() ? "" : "\n  ") << "}\n";
  out << "}\n";
}

void PerfReport::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("PerfReport: cannot open '" + path + "'");
  write_json(out);
}

}  // namespace wrht::prof
