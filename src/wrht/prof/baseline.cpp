#include "wrht/prof/baseline.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "wrht/common/error.hpp"

namespace wrht::prof {

namespace {

constexpr const char* kHeader = "metric,value,max_rel_drift,direction";

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double parse_double(const std::string& field, const std::string& context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    require(consumed == field.size(), context);
    return value;
  } catch (const std::logic_error&) {
    throw Error(context + ": '" + field + "' is not a number");
  }
}

}  // namespace

Direction infer_direction(const std::string& metric_name,
                          const std::string& unit) {
  if (unit == "/s") return Direction::kHigherIsBetter;
  if (metric_name.find("efficiency") != std::string::npos ||
      metric_name.find("per_s") != std::string::npos) {
    return Direction::kHigherIsBetter;
  }
  return Direction::kLowerIsBetter;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("Baseline: cannot open '" + path + "'");
  Baseline out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (line == kHeader) continue;
    std::vector<std::string> fields;
    std::stringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    require(fields.size() == 4, "Baseline: '" + path + "' line " +
                                    std::to_string(line_no) +
                                    ": expected 4 fields, got " +
                                    std::to_string(fields.size()));
    BaselineEntry entry;
    entry.metric = fields[0];
    entry.value = parse_double(fields[1], "Baseline: '" + path + "' line " +
                                              std::to_string(line_no) +
                                              " value");
    entry.max_rel_drift =
        parse_double(fields[2], "Baseline: '" + path + "' line " +
                                    std::to_string(line_no) + " drift");
    require(entry.max_rel_drift >= 0.0,
            "Baseline: '" + path + "' line " + std::to_string(line_no) +
                ": max_rel_drift must be >= 0");
    if (fields[3] == "lower") {
      entry.direction = Direction::kLowerIsBetter;
    } else if (fields[3] == "higher") {
      entry.direction = Direction::kHigherIsBetter;
    } else {
      throw Error("Baseline: '" + path + "' line " + std::to_string(line_no) +
                  ": direction must be 'lower' or 'higher', got '" +
                  fields[3] + "'");
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

Baseline Baseline::from_report(const PerfReport& report,
                               double max_rel_drift) {
  Baseline out;
  for (const PerfMetric& m : report.metrics) {
    BaselineEntry entry;
    entry.metric = m.name;
    entry.value = m.value;
    entry.direction = infer_direction(m.name, m.unit);
    // Same allowed slowdown factor F = 1 + drift both ways: a lower-is-
    // better metric may grow to value * F, a higher-is-better one may fall
    // to value / F (relative drift of drift / (1 + drift) < 1).
    entry.max_rel_drift = entry.direction == Direction::kLowerIsBetter
                              ? max_rel_drift
                              : max_rel_drift / (1.0 + max_rel_drift);
    out.entries.push_back(std::move(entry));
  }
  return out;
}

void Baseline::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("Baseline: cannot open '" + path + "' for writing");
  out << "# wrht perf baseline — refresh with `wrht_perf --write-baseline` "
         "(see EXPERIMENTS.md)\n";
  out << kHeader << "\n";
  for (const BaselineEntry& entry : entries) {
    out << entry.metric << "," << format_double(entry.value) << ","
        << format_double(entry.max_rel_drift) << ","
        << (entry.direction == Direction::kLowerIsBetter ? "lower" : "higher")
        << "\n";
  }
}

bool CompareReport::ok() const {
  for (const DriftResult& r : results) {
    if (r.regressed) return false;
  }
  return true;
}

void CompareReport::print(std::ostream& out) const {
  char buf[256];
  for (const DriftResult& r : results) {
    if (r.missing) {
      std::snprintf(buf, sizeof(buf),
                    "  REGRESSED %-28s missing from report (baseline %s)\n",
                    r.metric.c_str(), format_double(r.baseline).c_str());
      out << buf;
      continue;
    }
    std::snprintf(
        buf, sizeof(buf), "  %-9s %-28s %12s vs %12s  drift %+7.2f%% (max %s%.0f%%)\n",
        r.regressed ? "REGRESSED" : "ok", r.metric.c_str(),
        format_double(r.value).c_str(), format_double(r.baseline).c_str(),
        r.rel_drift * 100.0,
        r.direction == Direction::kLowerIsBetter ? "+" : "-",
        r.threshold * 100.0);
    out << buf;
  }
}

CompareReport compare(const PerfReport& report, const Baseline& baseline) {
  CompareReport out;
  for (const BaselineEntry& entry : baseline.entries) {
    DriftResult result;
    result.metric = entry.metric;
    result.baseline = entry.value;
    result.threshold = entry.max_rel_drift;
    result.direction = entry.direction;
    const PerfMetric* metric = report.find_metric(entry.metric);
    if (metric == nullptr) {
      result.missing = true;
      result.regressed = true;
      out.results.push_back(std::move(result));
      continue;
    }
    result.value = metric->value;
    if (entry.value != 0.0) {
      result.rel_drift = (metric->value - entry.value) / entry.value;
    } else {
      // A zero baseline cannot express relative drift; any nonzero value
      // in the regressing direction counts as infinite drift.
      result.rel_drift = metric->value == 0.0
                             ? 0.0
                             : std::copysign(HUGE_VAL, metric->value);
    }
    result.regressed = entry.direction == Direction::kLowerIsBetter
                           ? result.rel_drift > entry.max_rel_drift
                           : -result.rel_drift > entry.max_rel_drift;
    out.results.push_back(std::move(result));
  }
  return out;
}

}  // namespace wrht::prof
