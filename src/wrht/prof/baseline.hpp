// Perf baselines and regression comparison.
//
// A baseline is a checked-in table of expected metric values with
// per-metric relative-drift thresholds (bench/baselines/*.baseline, a
// plain CSV so diffs review cleanly):
//
//     metric,value,max_rel_drift,direction
//     sweep.wall_s.median,0.012,4,lower
//     events_per_s.median,2.1e6,0.8,higher
//
// `direction` says which way is a regression: "lower" metrics (wall
// times, RSS) regress when the measured value exceeds value * (1 +
// max_rel_drift); "higher" metrics (throughput, efficiency) regress when
// it falls below value * (1 - max_rel_drift). Wall-clock baselines are
// machine-specific, so checked-in thresholds are generous enough for
// noisy CI runners; refresh with `wrht_perf --write-baseline` (workflow
// in EXPERIMENTS.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "wrht/prof/perf_report.hpp"

namespace wrht::prof {

enum class Direction {
  kLowerIsBetter,   ///< wall times, memory
  kHigherIsBetter,  ///< throughput, efficiency
};

/// The regression-direction convention wrht_perf uses for its metric
/// names: rates ("/s" units) and efficiency fractions are
/// higher-is-better, everything else lower-is-better.
[[nodiscard]] Direction infer_direction(const std::string& metric_name,
                                        const std::string& unit);

struct BaselineEntry {
  std::string metric;
  double value = 0.0;
  /// Allowed relative drift in the regressing direction (0.5 = 50%).
  double max_rel_drift = 0.5;
  Direction direction = Direction::kLowerIsBetter;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  /// Parses the CSV format above. Throws wrht::Error on unreadable files
  /// or malformed rows.
  [[nodiscard]] static Baseline load(const std::string& path);

  /// Baseline snapshot of a report: one entry per metric, directions via
  /// infer_direction. Lower-is-better metrics get `max_rel_drift` verbatim
  /// (a wall time regresses past value * (1 + drift)); higher-is-better
  /// metrics get the reciprocal bound drift / (1 + drift), so the same
  /// slowdown factor trips both — a throughput can only ever fall 100%,
  /// which a drift >= 1 would never flag.
  [[nodiscard]] static Baseline from_report(const PerfReport& report,
                                            double max_rel_drift);

  void save(const std::string& path) const;
};

/// One metric's comparison outcome. `rel_drift` is (value - baseline) /
/// baseline, sign preserved, so +0.30 reads "30% higher than baseline".
struct DriftResult {
  std::string metric;
  double baseline = 0.0;
  double value = 0.0;
  double rel_drift = 0.0;
  double threshold = 0.0;
  Direction direction = Direction::kLowerIsBetter;
  bool missing = false;  ///< baseline metric absent from the report
  bool regressed = false;
};

struct CompareReport {
  std::vector<DriftResult> results;

  /// True when every baseline metric was present and within threshold.
  [[nodiscard]] bool ok() const;
  /// Human-readable table, one line per metric, regressions flagged.
  void print(std::ostream& out) const;
};

/// Checks `report` against `baseline`. Metrics in the report but not the
/// baseline are ignored (additions are not regressions); metrics in the
/// baseline but not the report fail (schema drift is a regression).
[[nodiscard]] CompareReport compare(const PerfReport& report,
                                    const Baseline& baseline);

}  // namespace wrht::prof
