#include "wrht/prof/prof.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <unordered_map>

namespace wrht::prof {

namespace {

std::atomic<ProfRegistry*> g_current{nullptr};
std::atomic<std::uint64_t> g_epoch{0};

}  // namespace

/// One thread's view of the registry: phase name -> stable cell. The map
/// itself is guarded by the registry mutex (snapshots walk it from other
/// threads); the cells are accumulated into lock-free.
struct ProfRegistry::ThreadRecord {
  std::string label;
  std::map<std::string, PhaseCell*> cells;
  std::deque<PhaseCell> storage;
};

/// Thread-local fast path: once a (registry, phase) pair has been
/// resolved, later lookups touch only this thread's own cache — no lock,
/// no shared state. The epoch guards against a destroyed registry's
/// address being reused by a new one.
struct ProfRegistry::Tls {
  std::uint64_t epoch = 0;
  ThreadRecord* record = nullptr;
  std::unordered_map<std::string, PhaseCell*> cells;

  static Tls& cache() {
    thread_local Tls instance;
    return instance;
  }
};

ProfRegistry::ProfRegistry()
    : epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1) {}

ProfRegistry::~ProfRegistry() {
  // Safety net for registries destroyed while still installed; the normal
  // path is ScopedProfiling restoring the previous registry first.
  ProfRegistry* self = this;
  g_current.compare_exchange_strong(self, nullptr);
}

ProfRegistry* ProfRegistry::current() {
  return g_current.load(std::memory_order_acquire);
}

ProfRegistry::ThreadRecord* ProfRegistry::this_thread_record() {
  Tls& cache = Tls::cache();
  if (cache.epoch != epoch_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::make_unique<ThreadRecord>());
    records_.back()->label = "thread-" + std::to_string(records_.size() - 1);
    cache.epoch = epoch_;
    cache.record = records_.back().get();
    cache.cells.clear();
  }
  return cache.record;
}

ProfRegistry::PhaseCell* ProfRegistry::cell(std::string_view phase) {
  ThreadRecord* record = this_thread_record();
  Tls& cache = Tls::cache();
  const std::string name(phase);
  const auto it = cache.cells.find(name);
  if (it != cache.cells.end()) return it->second;
  PhaseCell* resolved = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto found = record->cells.find(name);
    if (found != record->cells.end()) {
      resolved = found->second;
    } else {
      record->storage.emplace_back();
      resolved = &record->storage.back();
      record->cells.emplace(name, resolved);
    }
  }
  cache.cells.emplace(name, resolved);
  return resolved;
}

void ProfRegistry::label_this_thread(const std::string& label) {
  ThreadRecord* record = this_thread_record();
  const std::lock_guard<std::mutex> lock(mutex_);
  record->label = label;
}

std::map<std::string, PhaseTotals> ProfRegistry::phase_totals() const {
  std::map<std::string, PhaseTotals> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : records_) {
    for (const auto& [name, cell] : record->cells) {
      PhaseTotals& totals = out[name];
      totals.calls += cell->calls.load(std::memory_order_relaxed);
      totals.seconds +=
          static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) *
          1e-9;
    }
  }
  return out;
}

std::vector<ProfRegistry::ThreadTotals> ProfRegistry::thread_totals() const {
  std::vector<ThreadTotals> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(records_.size());
  for (const auto& record : records_) {
    ThreadTotals totals;
    totals.label = record->label;
    for (const auto& [name, cell] : record->cells) {
      totals.phases[name] = PhaseTotals{
          cell->calls.load(std::memory_order_relaxed),
          static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) *
              1e-9};
    }
    out.push_back(std::move(totals));
  }
  return out;
}

void ProfRegistry::note_allocation(std::size_t bytes) {
  alloc_count_.fetch_add(1, std::memory_order_relaxed);
  alloc_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t ProfRegistry::allocation_count() const {
  return alloc_count_.load(std::memory_order_relaxed);
}

std::uint64_t ProfRegistry::allocated_bytes() const {
  return alloc_bytes_.load(std::memory_order_relaxed);
}

ScopedProfiling::ScopedProfiling(ProfRegistry& registry)
    : previous_(g_current.exchange(&registry, std::memory_order_acq_rel)) {}

ScopedProfiling::~ScopedProfiling() {
  g_current.store(previous_, std::memory_order_release);
}

void set_thread_label(const std::string& label) {
  ProfRegistry* registry = ProfRegistry::current();
  if (registry != nullptr) registry->label_this_thread(label);
}

std::size_t peak_rss_bytes() {
  // VmHWM is the kernel's high-watermark of the resident set; parse it
  // directly so the figure reflects this process alone.
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
    }
    std::fclose(status);
    if (kb > 0) return kb * 1024;
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // Linux: kB
  }
  return 0;
}

}  // namespace wrht::prof
