// Hierarchical grouping of ring nodes — the heart of WRHT (paper §4.1).
//
// Starting from all N nodes in ring order, nodes are partitioned into
// consecutive groups of (up to) m; the middle node of each group becomes its
// representative. The surviving representatives are regrouped level by
// level until either a single root remains or the representatives are few
// enough that one all-to-all exchange fits the wavelength budget
// (ceil(k^2/8) <= w, Liang & Shen's ring all-to-all bound).
#pragma once

#include <cstdint>
#include <vector>

#include "wrht/topo/ring.hpp"

namespace wrht::core {

using NodeId = topo::NodeId;

/// One group at one level: `members` are node ids in ring order (arcs never
/// wrap past node 0); `rep_index` selects the middle member.
struct Group {
  std::vector<NodeId> members;
  std::uint32_t rep_index = 0;
  [[nodiscard]] NodeId rep() const { return members[rep_index]; }
};

struct Level {
  std::vector<Group> groups;
};

/// The full reduce-stage plan.
struct Hierarchy {
  /// Grouping levels, bottom (all nodes) to top. Level l partitions the
  /// representatives surviving level l-1.
  std::vector<Level> levels;
  /// Representatives left after the last grouping level, in ring order.
  std::vector<NodeId> final_reps;
  /// True when the reduce stage finishes with an all-to-all exchange among
  /// final_reps; false when it collapsed to the single root final_reps[0].
  bool final_all_to_all = false;
};

/// Wavelengths needed for a single-step all-to-all among k equally spaced
/// ring nodes: ceil(k^2 / 8).
[[nodiscard]] std::uint64_t all_to_all_wavelengths(std::uint64_t k);

/// Wavelengths needed for one WRHT grouping step with group size m:
/// floor(m/2) — both ring directions reuse the same set.
[[nodiscard]] std::uint64_t group_wavelengths(std::uint64_t m);

/// Builds the hierarchy for the given node list (ring order) with group
/// size m >= 2 under a budget of `wavelengths` per fiber. With
/// `allow_all_to_all` false the reduce stage always collapses to a single
/// root (used by the torus extension, whose row phase needs one rep per
/// row).
[[nodiscard]] Hierarchy build_hierarchy(const std::vector<NodeId>& nodes,
                                        std::uint32_t group_size,
                                        std::uint32_t wavelengths,
                                        bool allow_all_to_all = true);

/// Convenience overload over nodes 0..num_nodes-1.
[[nodiscard]] Hierarchy build_hierarchy(std::uint32_t num_nodes,
                                        std::uint32_t group_size,
                                        std::uint32_t wavelengths,
                                        bool allow_all_to_all = true);

}  // namespace wrht::core
