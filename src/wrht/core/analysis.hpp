// Closed-form analysis of WRHT (paper §4.2-4.3): step counts, wavelength
// requirements, the Lemma 1 lower bound on steps, the Theorem 1 lower bound
// on communication time, and the Eq. (6) communication-time model.
#pragma once

#include <cstdint>

#include "wrht/common/units.hpp"
#include "wrht/core/grouping.hpp"

namespace wrht::core {

/// ceil(log_base n): smallest L >= 1 with base^L >= n.
[[nodiscard]] std::uint32_t ceil_log(std::uint32_t base, std::uint64_t n);

/// Exact per-configuration plan, derived with the same rules the schedule
/// builder uses, so `total_steps` always equals the built schedule length.
struct WrhtStepPlan {
  std::uint32_t grouping_levels = 0;   ///< hierarchy depth
  std::uint32_t reduce_steps = 0;      ///< grouping_levels (+1 if all-to-all)
  std::uint32_t broadcast_steps = 0;   ///< grouping_levels
  std::uint32_t total_steps = 0;       ///< theta in Eq. (6)
  bool final_all_to_all = false;
  std::uint32_t final_reps = 0;        ///< m* of §4.1.2
  /// Wavelengths the schedule needs: max(floor(m/2), ceil(m*^2/8) if
  /// all-to-all).
  std::uint64_t wavelengths_required = 0;
};

[[nodiscard]] WrhtStepPlan wrht_plan(std::uint32_t num_nodes,
                                     std::uint32_t group_size,
                                     std::uint32_t wavelengths);

/// Paper's closed form: theta = 2*ceil(log_m N) (no final all-to-all) or
/// 2*ceil(log_m N) - 1 (with it). This helper returns the *upper* variant;
/// use wrht_plan() for the exact per-configuration count.
[[nodiscard]] std::uint64_t wrht_steps_upper(std::uint32_t num_nodes,
                                             std::uint32_t group_size);

/// Lemma 1: the lower bound on WRHT steps with w wavelengths is
/// 2*ceil(log_{2w+1} N).
[[nodiscard]] std::uint64_t wrht_min_steps(std::uint32_t num_nodes,
                                           std::uint32_t wavelengths);

/// Cost parameters of the Eq. (6) time model: per-step overhead a and the
/// serialization rate for d bytes.
struct TimeModel {
  Seconds per_step_overhead{25e-6 + 497e-15};  ///< a = MRR reconfig + O/E/O
  /// Bytes drained per second per transfer; defaults to the paper's
  /// numeric convention (see optics::OpticalConfig::RateConvention).
  double bytes_per_second = 40e9;
};

/// Eq. (6): T = theta * d / B + theta * a for a payload of `payload` bytes
/// per step and `steps` steps.
[[nodiscard]] Seconds comm_time(std::uint64_t steps, Bytes payload,
                                const TimeModel& model);

/// Theorem 1: lower bound on WRHT communication time for N nodes and w
/// wavelengths with per-node payload d.
[[nodiscard]] Seconds wrht_optimal_time(std::uint32_t num_nodes,
                                        std::uint32_t wavelengths,
                                        Bytes payload, const TimeModel& model);

}  // namespace wrht::core
