#include "wrht/core/analysis.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"

namespace wrht::core {

std::uint32_t ceil_log(std::uint32_t base, std::uint64_t n) {
  require(base >= 2, "ceil_log: base must be >= 2");
  require(n >= 1, "ceil_log: n must be >= 1");
  std::uint32_t levels = 0;
  std::uint64_t reach = 1;
  while (reach < n) {
    reach *= base;
    ++levels;
  }
  return std::max(levels, 1u);
}

WrhtStepPlan wrht_plan(std::uint32_t num_nodes, std::uint32_t group_size,
                       std::uint32_t wavelengths) {
  const Hierarchy h = build_hierarchy(num_nodes, group_size, wavelengths);
  WrhtStepPlan plan;
  plan.grouping_levels = static_cast<std::uint32_t>(h.levels.size());
  plan.final_all_to_all = h.final_all_to_all;
  plan.final_reps = static_cast<std::uint32_t>(h.final_reps.size());
  plan.reduce_steps = plan.grouping_levels + (h.final_all_to_all ? 1 : 0);
  plan.broadcast_steps = plan.grouping_levels;
  plan.total_steps = plan.reduce_steps + plan.broadcast_steps;

  std::uint64_t lambda = 0;
  for (const Level& level : h.levels) {
    for (const Group& g : level.groups) {
      lambda = std::max(lambda, group_wavelengths(g.members.size()));
    }
  }
  if (h.final_all_to_all) {
    lambda = std::max(lambda, all_to_all_wavelengths(h.final_reps.size()));
  }
  plan.wavelengths_required = std::max<std::uint64_t>(lambda, 1);
  return plan;
}

std::uint64_t wrht_steps_upper(std::uint32_t num_nodes,
                               std::uint32_t group_size) {
  return 2ull * ceil_log(group_size, num_nodes);
}

std::uint64_t wrht_min_steps(std::uint32_t num_nodes,
                             std::uint32_t wavelengths) {
  require(wavelengths >= 1, "wrht_min_steps: need >= 1 wavelength");
  return 2ull * ceil_log(2 * wavelengths + 1, num_nodes);
}

Seconds comm_time(std::uint64_t steps, Bytes payload, const TimeModel& model) {
  require(model.bytes_per_second > 0.0, "comm_time: rate must be positive");
  const double data_term = static_cast<double>(steps) *
                           static_cast<double>(payload.count()) /
                           model.bytes_per_second;
  return Seconds(data_term) +
         model.per_step_overhead * static_cast<double>(steps);
}

Seconds wrht_optimal_time(std::uint32_t num_nodes, std::uint32_t wavelengths,
                          Bytes payload, const TimeModel& model) {
  return comm_time(wrht_min_steps(num_nodes, wavelengths), payload, model);
}

}  // namespace wrht::core
