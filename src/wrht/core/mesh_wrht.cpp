#include "wrht/core/mesh_wrht.hpp"

#include <string>
#include <vector>

#include "wrht/common/error.hpp"
#include "wrht/core/grouping.hpp"

namespace wrht::core {

namespace {

using coll::Schedule;
using coll::Step;
using coll::Transfer;
using coll::TransferKind;

Hierarchy row_hierarchy(const topo::Mesh& mesh, const WrhtOptions& options) {
  std::vector<NodeId> cols(mesh.cols());
  for (std::uint32_t c = 0; c < mesh.cols(); ++c) cols[c] = c;
  return build_hierarchy(cols, options.group_size, options.wavelengths,
                         /*allow_all_to_all=*/false);
}

/// Emits hierarchy reduce levels for every row concurrently (mesh variant:
/// no direction hints, lines have a unique route anyway).
void emit_row_levels(Schedule& sched, const topo::Mesh& mesh,
                     const Hierarchy& rows, std::size_t elements,
                     bool broadcast) {
  const std::size_t levels = rows.levels.size();
  for (std::size_t idx = 0; idx < levels; ++idx) {
    const std::size_t l = broadcast ? levels - 1 - idx : idx;
    Step& step = sched.add_step(
        std::string(broadcast ? "row broadcast level " : "row reduce level ") +
        std::to_string(l));
    for (std::uint32_t r = 0; r < mesh.rows(); ++r) {
      for (const Group& group : rows.levels[l].groups) {
        const std::uint32_t rep_col = group.rep();
        for (const std::uint32_t member_col : group.members) {
          if (member_col == rep_col) continue;
          const NodeId rep = mesh.node_at(r, rep_col);
          const NodeId member = mesh.node_at(r, member_col);
          if (broadcast) {
            step.transfers.push_back(Transfer{rep, member, 0, elements,
                                              TransferKind::kCopy,
                                              std::nullopt});
          } else {
            step.transfers.push_back(Transfer{member, rep, 0, elements,
                                              TransferKind::kReduce,
                                              std::nullopt});
          }
        }
      }
    }
  }
}

}  // namespace

coll::Schedule mesh_wrht_allreduce(const topo::Mesh& mesh,
                                   std::size_t elements,
                                   const WrhtOptions& row_options) {
  require(row_options.group_size >= 2, "mesh_wrht: group_size must be >= 2");
  const Hierarchy rows = row_hierarchy(mesh, row_options);
  require(rows.final_reps.size() == 1,
          "mesh_wrht: row hierarchy must end in a single root");
  const std::uint32_t root_col = rows.final_reps[0];

  Schedule sched("mesh_wrht", mesh.size(), elements);
  emit_row_levels(sched, mesh, rows, elements, /*broadcast=*/false);

  // Column phase along the root column (a line of `rows` nodes).
  const std::uint32_t k = mesh.rows();
  if (topo::line_all_to_all_wavelengths(k) <= row_options.wavelengths) {
    // One-stage line model: every row root exchanges with every other.
    Step& step = sched.add_step("column line all-to-all");
    for (std::uint32_t a = 0; a < k; ++a) {
      for (std::uint32_t b = 0; b < k; ++b) {
        if (a == b) continue;
        step.transfers.push_back(Transfer{mesh.node_at(a, root_col),
                                          mesh.node_at(b, root_col), 0,
                                          elements, TransferKind::kReduce,
                                          std::nullopt});
      }
    }
  } else {
    // Budget too small: hierarchical column reduce to a single root and
    // broadcast back, reusing the line-safe (wrap-free) grouping.
    std::vector<NodeId> column(k);
    for (std::uint32_t r = 0; r < k; ++r) column[r] = mesh.node_at(r, root_col);
    const std::uint32_t col_m = std::min(row_options.group_size, k);
    const Hierarchy col = build_hierarchy(
        column, col_m < 2 ? 2 : col_m, row_options.wavelengths,
        /*allow_all_to_all=*/false);
    for (std::size_t l = 0; l < col.levels.size(); ++l) {
      Step& step = sched.add_step("column reduce level " + std::to_string(l));
      for (const Group& g : col.levels[l].groups) {
        for (const NodeId member : g.members) {
          if (member == g.rep()) continue;
          step.transfers.push_back(Transfer{member, g.rep(), 0, elements,
                                            TransferKind::kReduce,
                                            std::nullopt});
        }
      }
    }
    for (std::size_t l = col.levels.size(); l-- > 0;) {
      Step& step = sched.add_step("column broadcast level " +
                                  std::to_string(l));
      for (const Group& g : col.levels[l].groups) {
        for (const NodeId member : g.members) {
          if (member == g.rep()) continue;
          step.transfers.push_back(Transfer{g.rep(), member, 0, elements,
                                            TransferKind::kCopy,
                                            std::nullopt});
        }
      }
    }
  }

  emit_row_levels(sched, mesh, rows, elements, /*broadcast=*/true);
  return sched;
}

MeshWrhtPlan mesh_wrht_plan(const topo::Mesh& mesh,
                            const WrhtOptions& row_options) {
  const Hierarchy rows = row_hierarchy(mesh, row_options);
  MeshWrhtPlan plan;
  plan.row_reduce_steps = static_cast<std::uint32_t>(rows.levels.size());
  plan.row_broadcast_steps = plan.row_reduce_steps;

  const std::uint32_t k = mesh.rows();
  if (topo::line_all_to_all_wavelengths(k) <= row_options.wavelengths) {
    plan.column_all_to_all = true;
    plan.column_steps = 1;
  } else {
    std::vector<NodeId> column(k);
    for (std::uint32_t r = 0; r < k; ++r) column[r] = r;
    const std::uint32_t col_m =
        std::max(2u, std::min(row_options.group_size, k));
    const Hierarchy col = build_hierarchy(column, col_m,
                                          row_options.wavelengths,
                                          /*allow_all_to_all=*/false);
    plan.column_steps = 2 * static_cast<std::uint32_t>(col.levels.size());
  }
  return plan;
}

}  // namespace wrht::core
