// WRHT on a 2-D mesh (second half of paper §6.1).
//
// Identical phase structure to the torus extension — per-row reduce,
// root-column synchronization, per-row broadcast — but rows and columns
// are lines, so the column phase uses the one-stage *line* model: the
// all-to-all among the row roots needs ceil(k/2)*floor(k/2) wavelengths
// (line load bound) instead of the ring's ceil(k^2/8), and falls back to a
// rooted reduce+broadcast when the budget is short.
#pragma once

#include <cstddef>

#include "wrht/collectives/schedule.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/topo/mesh.hpp"

namespace wrht::core {

[[nodiscard]] coll::Schedule mesh_wrht_allreduce(const topo::Mesh& mesh,
                                                 std::size_t elements,
                                                 const WrhtOptions& row_options);

struct MeshWrhtPlan {
  std::uint32_t row_reduce_steps = 0;
  std::uint32_t column_steps = 0;
  std::uint32_t row_broadcast_steps = 0;
  /// True when the column phase ends with the single-step line all-to-all.
  bool column_all_to_all = false;
  [[nodiscard]] std::uint32_t total() const {
    return row_reduce_steps + column_steps + row_broadcast_steps;
  }
};
[[nodiscard]] MeshWrhtPlan mesh_wrht_plan(const topo::Mesh& mesh,
                                          const WrhtOptions& row_options);

}  // namespace wrht::core
