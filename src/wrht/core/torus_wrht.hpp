// WRHT on a 2-D torus (paper §6.1 extension).
//
// Phase 1: every row runs the WRHT reduce hierarchy to a single row root
//          (all rows share the same root column by symmetry).
// Phase 2: the root column — itself a ring — runs a full WRHT All-reduce.
// Phase 3: every row replays its reduce hierarchy in reverse (broadcast).
//
// The resulting schedule is verified by the same data-level executor as the
// ring schedules; timing uses the step-count analysis (a torus-specific
// optical device model is out of scope, as in the paper).
#pragma once

#include <cstddef>

#include "wrht/collectives/schedule.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/topo/torus.hpp"

namespace wrht::core {

/// Builds the torus WRHT All-reduce schedule. `row_options.group_size` is
/// the per-row m; the column phase plans its own m from the same wavelength
/// budget.
[[nodiscard]] coll::Schedule torus_wrht_allreduce(const topo::Torus& torus,
                                                  std::size_t elements,
                                                  const WrhtOptions& row_options);

/// Step count of the schedule the builder emits.
struct TorusWrhtPlan {
  std::uint32_t row_reduce_steps = 0;
  std::uint32_t column_steps = 0;
  std::uint32_t row_broadcast_steps = 0;
  [[nodiscard]] std::uint32_t total() const {
    return row_reduce_steps + column_steps + row_broadcast_steps;
  }
};
[[nodiscard]] TorusWrhtPlan torus_wrht_plan(const topo::Torus& torus,
                                            const WrhtOptions& row_options);

}  // namespace wrht::core
