#include "wrht/core/torus_wrht.hpp"

#include <algorithm>
#include <string>

#include "wrht/common/error.hpp"
#include "wrht/core/analysis.hpp"
#include "wrht/core/grouping.hpp"

namespace wrht::core {

namespace {

using coll::Schedule;
using coll::Step;
using coll::Transfer;
using coll::TransferKind;

/// Hierarchy over the column indices of one row; identical for every row.
Hierarchy row_hierarchy(const topo::Torus& torus,
                        const WrhtOptions& options) {
  std::vector<NodeId> cols(torus.cols());
  for (std::uint32_t c = 0; c < torus.cols(); ++c) cols[c] = c;
  return build_hierarchy(cols, options.group_size, options.wavelengths,
                         /*allow_all_to_all=*/false);
}

}  // namespace

coll::Schedule torus_wrht_allreduce(const topo::Torus& torus,
                                    std::size_t elements,
                                    const WrhtOptions& row_options) {
  require(row_options.group_size >= 2,
          "torus_wrht: group_size must be >= 2");
  const Hierarchy rows = row_hierarchy(torus, row_options);
  require(rows.final_reps.size() == 1,
          "torus_wrht: row hierarchy must end in a single root");
  const std::uint32_t root_col = rows.final_reps[0];

  Schedule sched("torus_wrht", torus.size(), elements);

  // Phase 1: per-row reduce; all rows execute each level concurrently.
  for (std::size_t l = 0; l < rows.levels.size(); ++l) {
    Step& step = sched.add_step("row reduce level " + std::to_string(l));
    for (std::uint32_t r = 0; r < torus.rows(); ++r) {
      for (const Group& group : rows.levels[l].groups) {
        const std::uint32_t rep_col = group.rep();
        for (const std::uint32_t member_col : group.members) {
          if (member_col == rep_col) continue;
          step.transfers.push_back(
              Transfer{torus.node_at(r, member_col),
                       torus.node_at(r, rep_col), 0, elements,
                       TransferKind::kReduce, std::nullopt});
        }
      }
    }
  }

  // Phase 2: full WRHT All-reduce along the root column's ring.
  {
    std::vector<NodeId> column(torus.rows());
    for (std::uint32_t r = 0; r < torus.rows(); ++r) {
      column[r] = torus.node_at(r, root_col);
    }
    WrhtOptions col_options = row_options;
    col_options.group_size =
        std::min<std::uint32_t>(row_options.group_size, torus.rows());
    if (col_options.group_size < 2) col_options.group_size = 2;
    const Schedule column_sched = wrht_allreduce(
        column, torus.size(), elements, col_options);
    for (const Step& s : column_sched.steps()) {
      Step& step = sched.add_step("column " + s.label);
      for (Transfer t : s.transfers) {
        // Direction hints are ring-specific; drop them on the torus.
        t.direction = std::nullopt;
        step.transfers.push_back(t);
      }
    }
  }

  // Phase 3: per-row broadcast, reverse of phase 1.
  for (std::size_t l = rows.levels.size(); l-- > 0;) {
    Step& step = sched.add_step("row broadcast level " + std::to_string(l));
    for (std::uint32_t r = 0; r < torus.rows(); ++r) {
      for (const Group& group : rows.levels[l].groups) {
        const std::uint32_t rep_col = group.rep();
        for (const std::uint32_t member_col : group.members) {
          if (member_col == rep_col) continue;
          step.transfers.push_back(
              Transfer{torus.node_at(r, rep_col),
                       torus.node_at(r, member_col), 0, elements,
                       TransferKind::kCopy, std::nullopt});
        }
      }
    }
  }
  return sched;
}

TorusWrhtPlan torus_wrht_plan(const topo::Torus& torus,
                              const WrhtOptions& row_options) {
  const Hierarchy rows = row_hierarchy(torus, row_options);
  TorusWrhtPlan plan;
  plan.row_reduce_steps = static_cast<std::uint32_t>(rows.levels.size());
  plan.row_broadcast_steps = plan.row_reduce_steps;

  WrhtOptions col_options = row_options;
  col_options.group_size =
      std::max<std::uint32_t>(2, std::min<std::uint32_t>(
                                     row_options.group_size, torus.rows()));
  const WrhtStepPlan col =
      wrht_plan(torus.rows(), col_options.group_size, col_options.wavelengths);
  plan.column_steps = col.total_steps;
  return plan;
}

}  // namespace wrht::core
