#include "wrht/core/grouping.hpp"

#include <numeric>

#include "wrht/common/error.hpp"

namespace wrht::core {

std::uint64_t all_to_all_wavelengths(std::uint64_t k) {
  return (k * k + 7) / 8;
}

std::uint64_t group_wavelengths(std::uint64_t m) { return m / 2; }

Hierarchy build_hierarchy(const std::vector<NodeId>& nodes,
                          std::uint32_t group_size, std::uint32_t wavelengths,
                          bool allow_all_to_all) {
  require(nodes.size() >= 2, "build_hierarchy: need at least 2 nodes");
  require(group_size >= 2, "build_hierarchy: group size must be >= 2");
  require(wavelengths >= 1, "build_hierarchy: need at least 1 wavelength");

  Hierarchy hierarchy;
  std::vector<NodeId> current = nodes;

  while (current.size() > 1) {
    // Stop grouping as soon as one all-to-all step can finish the reduce
    // stage within the wavelength budget (paper §4.1.1).
    if (allow_all_to_all &&
        all_to_all_wavelengths(current.size()) <= wavelengths) {
      hierarchy.final_all_to_all = true;
      break;
    }
    Level level;
    std::vector<NodeId> reps;
    for (std::size_t start = 0; start < current.size();
         start += group_size) {
      Group group;
      const std::size_t end =
          std::min(current.size(), start + group_size);
      group.members.assign(current.begin() + start, current.begin() + end);
      group.rep_index = static_cast<std::uint32_t>(group.members.size() / 2);
      reps.push_back(group.rep());
      level.groups.push_back(std::move(group));
    }
    hierarchy.levels.push_back(std::move(level));
    current = std::move(reps);
  }

  hierarchy.final_reps = std::move(current);
  return hierarchy;
}

Hierarchy build_hierarchy(std::uint32_t num_nodes, std::uint32_t group_size,
                          std::uint32_t wavelengths, bool allow_all_to_all) {
  std::vector<NodeId> nodes(num_nodes);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return build_hierarchy(nodes, group_size, wavelengths, allow_all_to_all);
}

}  // namespace wrht::core
