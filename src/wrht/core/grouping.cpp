#include "wrht/core/grouping.hpp"

#include <numeric>

#include "wrht/common/error.hpp"

namespace wrht::core {

std::uint64_t all_to_all_wavelengths(std::uint64_t k) {
  return (k * k + 7) / 8;
}

std::uint64_t group_wavelengths(std::uint64_t m) { return m / 2; }

Hierarchy build_hierarchy(const std::vector<NodeId>& nodes,
                          std::uint32_t group_size, std::uint32_t wavelengths,
                          bool allow_all_to_all) {
  require(nodes.size() >= 2, "build_hierarchy: need at least 2 nodes");
  require(group_size >= 2, "build_hierarchy: group size must be >= 2");
  require(wavelengths >= 1, "build_hierarchy: need at least 1 wavelength");

  Hierarchy hierarchy;
  std::vector<NodeId> current = nodes;

  while (current.size() > 1) {
    // Stop grouping as soon as one all-to-all step can finish the reduce
    // stage within the wavelength budget (paper §4.1.1).
    if (allow_all_to_all &&
        all_to_all_wavelengths(current.size()) <= wavelengths) {
      hierarchy.final_all_to_all = true;
      break;
    }
    Level level;
    std::vector<NodeId> reps;
    // Partition into ceil(k/m) balanced groups (sizes differ by at most
    // one, larger groups first) rather than fixed-stride groups with one
    // ragged remainder. When m does not divide k this keeps the surviving
    // representatives near-equally spaced along the ring, which is what
    // the ceil(m*^2/8) all-to-all wavelength bound assumes; it also never
    // increases the level's group count (still ceil(k/m)) or its
    // wavelength need (group sizes only shrink).
    const std::size_t k = current.size();
    const std::size_t num_groups = (k + group_size - 1) / group_size;
    const std::size_t base = k / num_groups;
    const std::size_t extra = k % num_groups;
    std::size_t start = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      Group group;
      const std::size_t size = base + (g < extra ? 1 : 0);
      group.members.assign(current.begin() + start,
                           current.begin() + start + size);
      group.rep_index = static_cast<std::uint32_t>(group.members.size() / 2);
      reps.push_back(group.rep());
      level.groups.push_back(std::move(group));
      start += size;
    }
    hierarchy.levels.push_back(std::move(level));
    current = std::move(reps);
  }

  hierarchy.final_reps = std::move(current);
  return hierarchy;
}

Hierarchy build_hierarchy(std::uint32_t num_nodes, std::uint32_t group_size,
                          std::uint32_t wavelengths, bool allow_all_to_all) {
  std::vector<NodeId> nodes(num_nodes);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return build_hierarchy(nodes, group_size, wavelengths, allow_all_to_all);
}

}  // namespace wrht::core
