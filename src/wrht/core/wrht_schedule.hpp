// WRHT schedule generation (paper §4.1): reduce stage over the hierarchy,
// optional all-to-all among the final representatives, broadcast stage in
// reverse. Every grouping step pins its transfers to the ring direction
// that stays inside the group's arc, so wavelengths are reused across
// groups exactly as the paper describes (floor(m/2) per step).
#pragma once

#include <cstddef>
#include <cstdint>

#include "wrht/collectives/schedule.hpp"
#include "wrht/core/grouping.hpp"

namespace wrht::core {

struct WrhtOptions {
  /// First-level group size m (>= 2). The planner picks min(2w+1, m', N)
  /// by default; callers may override for sweeps (paper Fig. 4).
  std::uint32_t group_size = 0;
  /// Wavelength budget w per fiber, used for the all-to-all cutoff.
  std::uint32_t wavelengths = 64;
  /// When false the reduce stage always collapses to a single root and the
  /// broadcast replays every level (theta = 2L); used by the torus row
  /// phase and the all-to-all ablation bench.
  bool allow_all_to_all = true;
};

/// Builds the WRHT All-reduce schedule for nodes 0..num_nodes-1.
[[nodiscard]] coll::Schedule wrht_allreduce(std::uint32_t num_nodes,
                                            std::size_t elements,
                                            const WrhtOptions& options);

/// Same, over an explicit node list in ring order (used by the torus
/// extension to run WRHT inside one row or column).
[[nodiscard]] coll::Schedule wrht_allreduce(
    const std::vector<NodeId>& nodes, std::uint32_t ring_size,
    std::size_t elements, const WrhtOptions& options);

/// A rooted collective: the schedule plus the hierarchy root it reduces
/// into / broadcasts from (always the recursive middle of the ring).
struct WrhtRootedSchedule {
  coll::Schedule schedule;
  NodeId root;
};

/// Standalone WRHT Reduce: ceil(log_m N) steps folding every node's vector
/// into the hierarchy root (verified by Executor::verify_reduce).
[[nodiscard]] WrhtRootedSchedule wrht_reduce(std::uint32_t num_nodes,
                                             std::size_t elements,
                                             const WrhtOptions& options);

/// Standalone WRHT Broadcast: ceil(log_m N) steps fanning the root's
/// vector out to every node (verified by Executor::verify_broadcast).
[[nodiscard]] WrhtRootedSchedule wrht_broadcast(std::uint32_t num_nodes,
                                                std::size_t elements,
                                                const WrhtOptions& options);

/// Registers "wrht" in coll::Registry::instance() so table-driven sweeps
/// can build it by name (group_size <- params.group_size or auto-planned,
/// wavelengths <- params.wavelengths). Idempotent.
void register_wrht_algorithm();

}  // namespace wrht::core
