// Combined optical-communication constraints (paper §4.4): the usable WRHT
// group size m is capped by both the insertion-loss power budget (Eqs. 7-9)
// and the crosstalk BER requirement (Eqs. 11-13).
#pragma once

#include <cstdint>

#include "wrht/optical/crosstalk.hpp"
#include "wrht/optical/power.hpp"

namespace wrht::core {

struct OpticalConstraints {
  optics::PowerParams power{};
  optics::CrosstalkParams crosstalk{};
  double target_ber = 1e-9;
};

/// True when a WRHT run on `num_nodes` nodes with first-level group size
/// `group_size` keeps its longest lightpath (Eq. 7) within both the power
/// budget and the BER target.
[[nodiscard]] bool group_size_feasible(std::uint32_t num_nodes,
                                       std::uint32_t group_size,
                                       const OpticalConstraints& constraints);

/// Largest feasible group size m' (paper's Eq. 10 cap), or 0 when even
/// m = 2 violates the constraints.
[[nodiscard]] std::uint32_t max_feasible_group_size(
    std::uint32_t num_nodes, const OpticalConstraints& constraints);

/// Diagnostic bundle for one candidate group size.
struct ConstraintReport {
  std::uint64_t longest_path_hops = 0;
  Decibels insertion_loss{0.0};
  bool power_ok = false;
  double snr_db = 0.0;
  double ber = 1.0;
  bool ber_ok = false;
};
[[nodiscard]] ConstraintReport evaluate_constraints(
    std::uint32_t num_nodes, std::uint32_t group_size,
    const OpticalConstraints& constraints);

}  // namespace wrht::core
