#include "wrht/core/constraints.hpp"

#include "wrht/common/error.hpp"

namespace wrht::core {

ConstraintReport evaluate_constraints(std::uint32_t num_nodes,
                                      std::uint32_t group_size,
                                      const OpticalConstraints& constraints) {
  ConstraintReport report;
  report.longest_path_hops =
      optics::wrht_max_comm_length(num_nodes, group_size);
  report.insertion_loss =
      optics::insertion_loss(report.longest_path_hops, constraints.power);
  report.power_ok =
      optics::power_feasible(report.longest_path_hops, constraints.power);
  report.snr_db =
      optics::snr_db(report.longest_path_hops, constraints.crosstalk);
  report.ber = optics::ber(report.longest_path_hops, constraints.crosstalk);
  report.ber_ok = report.ber < constraints.target_ber;
  return report;
}

bool group_size_feasible(std::uint32_t num_nodes, std::uint32_t group_size,
                         const OpticalConstraints& constraints) {
  const ConstraintReport r =
      evaluate_constraints(num_nodes, group_size, constraints);
  return r.power_ok && r.ber_ok;
}

std::uint32_t max_feasible_group_size(std::uint32_t num_nodes,
                                      const OpticalConstraints& constraints) {
  require(num_nodes >= 2, "max_feasible_group_size: need >= 2 nodes");
  // Eq. 7 is non-monotone in m (the level count jumps), so scan downwards.
  for (std::uint32_t m = num_nodes; m >= 2; --m) {
    if (group_size_feasible(num_nodes, m, constraints)) return m;
  }
  return 0;
}

}  // namespace wrht::core
