#include "wrht/core/wrht_schedule.hpp"

#include <mutex>
#include <numeric>
#include <string>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/error.hpp"
#include "wrht/core/planner.hpp"

namespace wrht::core {

namespace {

using coll::Schedule;
using coll::Step;
using coll::Transfer;
using coll::TransferKind;

/// Direction that keeps a member->rep lightpath inside the group's arc:
/// group arcs ascend in node id, so lower ids reach the rep clockwise.
topo::Direction toward(NodeId from, NodeId to) {
  return from < to ? topo::Direction::kClockwise
                   : topo::Direction::kCounterClockwise;
}

void append_reduce_steps(Schedule& sched, const Hierarchy& hierarchy,
                         std::size_t elements, const topo::Ring& ring) {
  for (std::size_t l = 0; l < hierarchy.levels.size(); ++l) {
    Step& step = sched.add_step("reduce level " + std::to_string(l));
    for (const Group& group : hierarchy.levels[l].groups) {
      const NodeId rep = group.rep();
      for (const NodeId member : group.members) {
        if (member == rep) continue;
        step.transfers.push_back(Transfer{member, rep, 0, elements,
                                          TransferKind::kReduce,
                                          toward(member, rep)});
      }
    }
  }
  if (hierarchy.final_all_to_all) {
    Step& step = sched.add_step("all-to-all exchange");
    // Shortest-direction routing per unordered pair. An antipodal pair
    // (cw == ccw) sends BOTH of its directed transfers in the SAME
    // direction: the two arcs a->b and b->a then tile the ring without
    // overlapping, so they can even share a wavelength, whereas mirroring
    // them onto opposite fibers stacks each on top of that fiber's
    // shortest-path traffic and pushes the per-segment load past the
    // ceil(k^2/8) bound (e.g. 4 equally spaced reps need 3 lambdas instead
    // of 2). Successive antipodal pairs alternate fibers for balance.
    bool tie_clockwise = true;
    const auto& reps = hierarchy.final_reps;
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        const NodeId a = reps[i];
        const NodeId b = reps[j];
        const std::uint32_t cw = ring.cw_distance(a, b);
        const std::uint32_t ccw = ring.ccw_distance(a, b);
        topo::Direction forward;   // direction of a -> b
        topo::Direction backward;  // direction of b -> a
        if (cw < ccw) {
          forward = topo::Direction::kClockwise;
          backward = topo::Direction::kCounterClockwise;
        } else if (ccw < cw) {
          forward = topo::Direction::kCounterClockwise;
          backward = topo::Direction::kClockwise;
        } else {
          forward = backward = tie_clockwise
                                   ? topo::Direction::kClockwise
                                   : topo::Direction::kCounterClockwise;
          tie_clockwise = !tie_clockwise;
        }
        step.transfers.push_back(
            Transfer{a, b, 0, elements, TransferKind::kReduce, forward});
        step.transfers.push_back(
            Transfer{b, a, 0, elements, TransferKind::kReduce, backward});
      }
    }
  }
}

void append_broadcast_steps(Schedule& sched, const Hierarchy& hierarchy,
                            std::size_t elements) {
  for (std::size_t l = hierarchy.levels.size(); l-- > 0;) {
    Step& step = sched.add_step("broadcast level " + std::to_string(l));
    for (const Group& group : hierarchy.levels[l].groups) {
      const NodeId rep = group.rep();
      for (const NodeId member : group.members) {
        if (member == rep) continue;
        step.transfers.push_back(Transfer{rep, member, 0, elements,
                                          TransferKind::kCopy,
                                          toward(rep, member)});
      }
    }
  }
}

}  // namespace

coll::Schedule wrht_allreduce(const std::vector<NodeId>& nodes,
                              std::uint32_t ring_size, std::size_t elements,
                              const WrhtOptions& options) {
  require(options.group_size >= 2, "wrht_allreduce: group_size must be >= 2");
  require(nodes.size() >= 2, "wrht_allreduce: need at least 2 nodes");
  for (const NodeId n : nodes) {
    require(n < ring_size, "wrht_allreduce: node id exceeds ring size");
  }

  const Hierarchy hierarchy =
      build_hierarchy(nodes, options.group_size, options.wavelengths,
                      options.allow_all_to_all);

  Schedule sched("wrht", ring_size, elements);
  const topo::Ring ring(ring_size);
  append_reduce_steps(sched, hierarchy, elements, ring);
  append_broadcast_steps(sched, hierarchy, elements);
  return sched;
}

coll::Schedule wrht_allreduce(std::uint32_t num_nodes, std::size_t elements,
                              const WrhtOptions& options) {
  std::vector<NodeId> nodes(num_nodes);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return wrht_allreduce(nodes, num_nodes, elements, options);
}

namespace {

Hierarchy rooted_hierarchy(std::uint32_t num_nodes,
                           const WrhtOptions& options) {
  require(options.group_size >= 2, "wrht rooted: group_size must be >= 2");
  require(num_nodes >= 2, "wrht rooted: need at least 2 nodes");
  std::vector<NodeId> nodes(num_nodes);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return build_hierarchy(nodes, options.group_size, options.wavelengths,
                         /*allow_all_to_all=*/false);
}

}  // namespace

WrhtRootedSchedule wrht_reduce(std::uint32_t num_nodes, std::size_t elements,
                               const WrhtOptions& options) {
  const Hierarchy hierarchy = rooted_hierarchy(num_nodes, options);
  Schedule sched("wrht_reduce", num_nodes, elements);
  const topo::Ring ring(num_nodes);
  append_reduce_steps(sched, hierarchy, elements, ring);
  return WrhtRootedSchedule{std::move(sched), hierarchy.final_reps[0]};
}

WrhtRootedSchedule wrht_broadcast(std::uint32_t num_nodes,
                                  std::size_t elements,
                                  const WrhtOptions& options) {
  const Hierarchy hierarchy = rooted_hierarchy(num_nodes, options);
  Schedule sched("wrht_broadcast", num_nodes, elements);
  append_broadcast_steps(sched, hierarchy, elements);
  return WrhtRootedSchedule{std::move(sched), hierarchy.final_reps[0]};
}

void register_wrht_algorithm() {
  static std::once_flag once;
  std::call_once(once, [] {
    coll::Registry::instance().register_algorithm(
        "wrht", [](const coll::AllreduceParams& p) {
          WrhtOptions options;
          options.wavelengths = p.wavelengths;
          options.group_size = p.group_size >= 2
                                   ? p.group_size
                                   : plan_wrht(p.num_nodes, p.wavelengths)
                                         .group_size;
          return wrht_allreduce(p.num_nodes, p.elements, options);
        });
  });
}

}  // namespace wrht::core
