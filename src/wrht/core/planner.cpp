#include "wrht/core/planner.hpp"

#include <algorithm>

#include "wrht/common/error.hpp"

namespace wrht::core {

WrhtPlan plan_wrht(std::uint32_t num_nodes, std::uint32_t wavelengths,
                   const std::optional<OpticalConstraints>& constraints) {
  require(num_nodes >= 2, "plan_wrht: need at least 2 nodes");
  require(wavelengths >= 1, "plan_wrht: need at least 1 wavelength");

  std::uint32_t cap = std::min(num_nodes, 2 * wavelengths + 1);
  if (constraints) {
    const std::uint32_t m_prime =
        max_feasible_group_size(num_nodes, *constraints);
    if (m_prime < 2) {
      throw ConstraintViolation(
          "plan_wrht: no group size satisfies the optical constraints");
    }
    cap = std::min(cap, m_prime);
  }
  require(cap >= 2, "plan_wrht: wavelength budget admits no group size");

  WrhtPlan best;
  for (std::uint32_t m = 2; m <= cap; ++m) {
    if (constraints && !group_size_feasible(num_nodes, m, *constraints)) {
      continue;
    }
    const WrhtStepPlan plan = wrht_plan(num_nodes, m, wavelengths);
    if (best.group_size == 0 || plan.total_steps <= best.steps.total_steps) {
      best = WrhtPlan{m, plan};
    }
  }
  if (best.group_size == 0) {
    throw ConstraintViolation("plan_wrht: no feasible group size in range");
  }
  return best;
}

}  // namespace wrht::core
