// Group-size planner: picks the first-level group size m that minimises the
// WRHT step count subject to the wavelength budget (m <= 2w+1, Lemma 1) and,
// optionally, the optical-communication constraints of §4.4 (m <= m').
#pragma once

#include <cstdint>
#include <optional>

#include "wrht/core/analysis.hpp"
#include "wrht/core/constraints.hpp"

namespace wrht::core {

struct WrhtPlan {
  std::uint32_t group_size = 0;
  WrhtStepPlan steps;
};

/// Chooses m in [2, min(2w+1, N, m')] minimising total steps; ties go to the
/// largest m (fewest, flatter groups — matching the paper's m = 2w+1 choice).
/// Throws ConstraintViolation when no feasible group size exists.
[[nodiscard]] WrhtPlan plan_wrht(
    std::uint32_t num_nodes, std::uint32_t wavelengths,
    const std::optional<OpticalConstraints>& constraints = std::nullopt);

}  // namespace wrht::core
