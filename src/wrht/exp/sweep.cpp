#include "wrht/exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/env.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/log.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::exp {

namespace {

using SchedulePtr = std::shared_ptr<const coll::Schedule>;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffU;
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t fnv_mix(std::uint64_t hash, const std::string& value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (const char c : value) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

/// Deterministic per-point seed: a pure function of the point's
/// coordinates and the spec's base seed, so random-fit RWA draws the same
/// wavelengths no matter which worker runs the point or in what order.
std::uint64_t point_seed(std::uint64_t base, const SweepPoint& point) {
  std::uint64_t hash = fnv_mix(14695981039346656037ULL, base);
  hash = fnv_mix(hash, point.workload.name);
  hash = fnv_mix(hash, point.workload.elements);
  hash = fnv_mix(hash, point.nodes);
  hash = fnv_mix(hash, point.wavelengths);
  hash = fnv_mix(hash, point.series);
  hash = fnv_mix(hash, point.series_index);
  return hash;
}

/// Flat memo key: every input that can change the built schedule, hashed
/// and compared as plain integers (the former concatenated-string keys
/// showed up in sweep profiles once grids reached 10^3+ points). Custom
/// builders fold the series and workload names into `ident` (they are
/// required to be pure functions of the point); registry algorithms fold
/// only the algorithm name — the workload's display name cannot change
/// the schedule, so workloads aliasing one element count share a build.
struct ScheduleKey {
  std::uint64_t ident = 0;
  std::uint64_t elements = 0;
  std::uint32_t nodes = 0;
  std::uint32_t group_size = 0;
  std::uint32_t wavelengths = 0;
  bool operator==(const ScheduleKey&) const = default;
};

struct ScheduleKeyHash {
  std::size_t operator()(const ScheduleKey& key) const {
    std::uint64_t hash = fnv_mix(14695981039346656037ULL, key.ident);
    hash = fnv_mix(hash, key.elements);
    hash = fnv_mix(hash, key.nodes);
    hash = fnv_mix(hash, key.group_size);
    hash = fnv_mix(hash, key.wavelengths);
    return static_cast<std::size_t>(hash);
  }
};

ScheduleKey schedule_key(const Series& series, const SweepPoint& point) {
  ScheduleKey key;
  std::uint64_t ident = 14695981039346656037ULL;
  if (series.builder) {
    ident = fnv_mix(ident, std::uint64_t{1});
    ident = fnv_mix(ident, series.name);
    ident = fnv_mix(ident, point.workload.name);
  } else {
    ident = fnv_mix(ident, std::uint64_t{2});
    ident = fnv_mix(ident, series.algorithm);
  }
  key.ident = ident;
  key.elements = point.workload.elements;
  key.nodes = point.nodes;
  key.group_size = point.group_size;
  key.wavelengths = point.wavelengths;
  return key;
}

coll::Schedule build_schedule(const Series& series, const SweepPoint& point) {
  if (series.builder) return series.builder(point);
  coll::AllreduceParams params;
  params.num_nodes = point.nodes;
  params.elements = point.workload.elements;
  params.group_size = point.group_size;
  params.wavelengths = point.wavelengths;
  return coll::Registry::instance().build(series.algorithm, params);
}

/// Schedule reuse across grid points (see ScheduleCacheMode).
///
/// kExact tier: points sharing (series, elements, N, m, w) — e.g. one
/// curve swept over wavelengths it does not depend on — build once;
/// concurrent requesters wait on the first builder's future, and build
/// failures propagate to every waiter.
///
/// kIncremental tier: the first registry build of a (series, N, m, w)
/// structure is additionally remembered under an elements-agnostic key.
/// A later point differing only in elements copies that build and
/// rescales the transfer counts (coll::Schedule::rescale_elements) when
/// the base is full-vector; chunked bases and failed pioneer builds fall
/// back to a full build, so patching can only save work, never change
/// results or surface different errors.
class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheMode mode) : mode_(mode) {}

  SchedulePtr get_or_build(const Series& series, const SweepPoint& point) {
    if (mode_ == ScheduleCacheMode::kOff) {
      builds_.fetch_add(1, std::memory_order_relaxed);
      const prof::ScopedTimer timer("sweep.schedule.build");
      return std::make_shared<const coll::Schedule>(
          build_schedule(series, point));
    }

    std::promise<SchedulePtr> promise;
    std::shared_future<SchedulePtr> future;
    std::shared_future<SchedulePtr> sibling;  // same structure, other elements
    bool build_here = false;
    {
      const ScheduleKey key = schedule_key(series, point);
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = memo_.find(key);
      if (it == memo_.end()) {
        future = promise.get_future().share();
        memo_.emplace(key, future);
        build_here = true;
        if (mode_ == ScheduleCacheMode::kIncremental && !series.builder) {
          ScheduleKey structural = key;
          structural.elements = 0;
          const auto [sit, inserted] =
              structural_.try_emplace(structural, future);
          if (!inserted) sibling = sit->second;
        }
      } else {
        future = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (build_here) {
      try {
        promise.set_value(materialize(series, point, sibling));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

  /// Adds this run's build/patch/hit totals to `counters` (when set).
  void flush_counters(obs::Counters* counters) const {
    if (counters == nullptr) return;
    counters->add("sweep.schedule.builds",
                  builds_.load(std::memory_order_relaxed));
    counters->add("sweep.schedule.patches",
                  patches_.load(std::memory_order_relaxed));
    counters->add("sweep.schedule.hits",
                  hits_.load(std::memory_order_relaxed));
  }

 private:
  SchedulePtr materialize(const Series& series, const SweepPoint& point,
                          const std::shared_future<SchedulePtr>& sibling) {
    if (sibling.valid()) {
      SchedulePtr base;
      try {
        base = sibling.get();
      } catch (...) {
        // The pioneer build of this structure failed at its element count;
        // ours might still be feasible — rebuild from scratch below.
        base = nullptr;
      }
      if (base != nullptr && base->full_vector()) {
        patches_.fetch_add(1, std::memory_order_relaxed);
        const prof::ScopedTimer timer("sweep.schedule.patch");
        auto patched = std::make_shared<coll::Schedule>(*base);
        patched->rescale_elements(point.workload.elements);
        return patched;
      }
    }
    builds_.fetch_add(1, std::memory_order_relaxed);
    const prof::ScopedTimer timer("sweep.schedule.build");
    return std::make_shared<const coll::Schedule>(
        build_schedule(series, point));
  }

  ScheduleCacheMode mode_;
  std::mutex mutex_;
  std::unordered_map<ScheduleKey, std::shared_future<SchedulePtr>,
                     ScheduleKeyHash>
      memo_;
  std::unordered_map<ScheduleKey, std::shared_future<SchedulePtr>,
                     ScheduleKeyHash>
      structural_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> patches_{0};
  std::atomic<std::uint64_t> hits_{0};
};

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return thread_count_from_env("WRHT_SWEEP_THREADS", hw);
}

std::vector<SweepPoint> expand_grid(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.workloads.size() * spec.nodes.size() *
                 spec.wavelengths.size() * spec.series.size());
  for (const Workload& workload : spec.workloads) {
    for (const std::uint32_t nodes : spec.nodes) {
      for (const std::uint32_t wavelengths : spec.wavelengths) {
        for (std::size_t s = 0; s < spec.series.size(); ++s) {
          const Series& series = spec.series[s];
          SweepPoint point;
          point.workload = workload;
          point.nodes = nodes;
          point.wavelengths = wavelengths;
          point.series_index = s;
          point.series = series.name;
          point.group_size = series.group_size_fn ? series.group_size_fn(point)
                                                  : series.group_size;
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

/// Serializes concurrent workers' span/counter emission into one shared
/// downstream sink (TraceSink implementations are single-threaded).
class LockedTraceSink final : public obs::TraceSink {
 public:
  explicit LockedTraceSink(obs::TraceSink& sink) : sink_(sink) {}
  void span(const obs::TraceSpan& s) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_.span(s);
  }
  void counter(const obs::CounterSample& s) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_.counter(s);
  }

 private:
  std::mutex mutex_;
  obs::TraceSink& sink_;
};

SweepRow run_point(const SweepSpec& spec, const SweepPoint& point,
                   ScheduleCache& cache, obs::TraceSink* trace,
                   std::uint32_t track) {
  const Series& series = spec.series[point.series_index];
  const SchedulePtr schedule = cache.get_or_build(series, point);

  net::BackendConfig config = spec.config;
  config.num_nodes = point.nodes;
  config.wavelengths = point.wavelengths;
  config.rng_seed = point_seed(spec.config.rng_seed, point);
  if (series.configure) series.configure(point, config);

  const std::unique_ptr<net::Backend> backend =
      net::BackendRegistry::instance().create(series.backend, config);

  obs::Counters local;
  obs::Probe probe;
  probe.counters = &local;
  probe.trace = trace;
  probe.track = track;
  SweepRow row;
  row.point = point;
  row.report = backend->execute(*schedule, probe);
  row.report.add_counters(local);
  if (spec.counters != nullptr) spec.counters->merge(local);
  return row;
}

/// Labels the worker tracks 0..count-1 "sweep-worker-<k>" when the
/// spec's sink is a ChromeTraceSink, so the exported trace names its
/// lanes after the pool instead of raw tids.
void name_worker_tracks(obs::TraceSink* sink, unsigned count) {
  auto* chrome = dynamic_cast<obs::ChromeTraceSink*>(sink);
  if (chrome == nullptr) return;
  for (unsigned k = 0; k < count; ++k) {
    chrome->set_track_name(k, "sweep-worker-" + std::to_string(k));
  }
}

}  // namespace

void ensure_initialized() {
  static std::once_flag once;
  std::call_once(once, [] {
    core::register_wrht_algorithm();
    net::register_builtin_backends();
  });
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(resolve_threads(threads)) {}

std::vector<SweepRow> SweepRunner::run(const SweepSpec& spec) const {
  ensure_initialized();
  require(!spec.workloads.empty(), "SweepRunner: no workloads");
  require(!spec.nodes.empty(), "SweepRunner: no node counts");
  require(!spec.wavelengths.empty(), "SweepRunner: no wavelength budgets");
  require(!spec.series.empty(), "SweepRunner: no series");

  const std::vector<SweepPoint> points = expand_grid(spec);
  std::vector<SweepRow> rows(points.size());
  ScheduleCache cache(spec.schedule_cache);

  std::optional<LockedTraceSink> locked;
  if (spec.trace != nullptr) locked.emplace(*spec.trace);
  obs::TraceSink* trace = locked ? &*locked : nullptr;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, points.size()));
  if (workers <= 1) {
    // Same phase accounting as the pooled path so thread-efficiency
    // figures exist (and read ~1) for single-threaded runs.
    const prof::ScopedTimer wall("sweep.worker.wall");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const prof::ScopedTimer busy("sweep.worker.busy");
      rows[i] = run_point(spec, points[i], cache, trace, 0);
    }
    cache.flush_counters(spec.counters);
    name_worker_tracks(spec.trace, 1);
    return rows;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](unsigned id) {
    // wall covers the worker's whole life, busy only run_point: the merged
    // busy/wall ratio is the pool efficiency WRHT_SWEEP_THREADS bought.
    prof::set_thread_label("sweep-worker-" + std::to_string(id));
    const prof::ScopedTimer wall("sweep.worker.wall");
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      try {
        const prof::ScopedTimer busy("sweep.worker.busy");
        rows[i] = run_point(spec, points[i], cache, trace, id);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  cache.flush_counters(spec.counters);
  name_worker_tracks(spec.trace, workers);
  return rows;
}

}  // namespace wrht::exp
