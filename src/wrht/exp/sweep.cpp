#include "wrht/exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "wrht/collectives/registry.hpp"
#include "wrht/common/error.hpp"
#include "wrht/common/log.hpp"
#include "wrht/core/wrht_schedule.hpp"
#include "wrht/obs/trace.hpp"
#include "wrht/obs/trace_json.hpp"
#include "wrht/prof/prof.hpp"

namespace wrht::exp {

namespace {

using SchedulePtr = std::shared_ptr<const coll::Schedule>;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffU;
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t fnv_mix(std::uint64_t hash, const std::string& value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (const char c : value) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

/// Deterministic per-point seed: a pure function of the point's
/// coordinates and the spec's base seed, so random-fit RWA draws the same
/// wavelengths no matter which worker runs the point or in what order.
std::uint64_t point_seed(std::uint64_t base, const SweepPoint& point) {
  std::uint64_t hash = fnv_mix(14695981039346656037ULL, base);
  hash = fnv_mix(hash, point.workload.name);
  hash = fnv_mix(hash, point.workload.elements);
  hash = fnv_mix(hash, point.nodes);
  hash = fnv_mix(hash, point.wavelengths);
  hash = fnv_mix(hash, point.series);
  hash = fnv_mix(hash, point.series_index);
  return hash;
}

/// Memo key: every input that can change the built schedule. Custom
/// builders key on the series name (they are required to be pure
/// functions of the point).
std::string schedule_key(const Series& series, const SweepPoint& point) {
  std::string key = series.builder ? "builder:" + series.name
                                   : "alg:" + series.algorithm;
  key += "|wl=" + point.workload.name;
  key += "|e=" + std::to_string(point.workload.elements);
  key += "|n=" + std::to_string(point.nodes);
  key += "|m=" + std::to_string(point.group_size);
  key += "|w=" + std::to_string(point.wavelengths);
  return key;
}

coll::Schedule build_schedule(const Series& series, const SweepPoint& point) {
  if (series.builder) return series.builder(point);
  coll::AllreduceParams params;
  params.num_nodes = point.nodes;
  params.elements = point.workload.elements;
  params.group_size = point.group_size;
  params.wavelengths = point.wavelengths;
  return coll::Registry::instance().build(series.algorithm, params);
}

/// Schedules shared by several grid points (same algorithm, N, elements,
/// m, w — e.g. one curve swept over wavelengths it does not depend on)
/// are built once; concurrent requesters wait on the first builder's
/// future, and build failures propagate to every waiter.
class ScheduleMemo {
 public:
  SchedulePtr get_or_build(const std::string& key, const Series& series,
                           const SweepPoint& point) {
    std::promise<SchedulePtr> promise;
    std::shared_future<SchedulePtr> future;
    bool build_here = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = memo_.find(key);
      if (it == memo_.end()) {
        future = promise.get_future().share();
        memo_.emplace(key, future);
        build_here = true;
      } else {
        future = it->second;
      }
    }
    if (build_here) {
      try {
        SchedulePtr built;
        {
          const prof::ScopedTimer timer("sweep.schedule.build");
          built = std::make_shared<const coll::Schedule>(
              build_schedule(series, point));
        }
        promise.set_value(std::move(built));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_future<SchedulePtr>> memo_;
};

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (const char* env = std::getenv("WRHT_SWEEP_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    // Accept only a fully-consumed positive integer that fits; "0", "-3",
    // "abc", "8x" and overflows all fall back to hardware concurrency with
    // a warning instead of silently misbehaving (0 workers would deadlock
    // the pool, a negative cast to unsigned would spawn billions).
    if (end != env && *end == '\0' && errno == 0 && parsed > 0 &&
        parsed <= 65536) {
      return static_cast<unsigned>(parsed);
    }
    WRHT_LOG_WARN << "WRHT_SWEEP_THREADS='" << env
                  << "' is not a positive integer (max 65536); "
                     "falling back to hardware concurrency ("
                  << hw << ")";
  }
  return hw;
}

std::vector<SweepPoint> expand_grid(const SweepSpec& spec) {
  std::vector<SweepPoint> points;
  points.reserve(spec.workloads.size() * spec.nodes.size() *
                 spec.wavelengths.size() * spec.series.size());
  for (const Workload& workload : spec.workloads) {
    for (const std::uint32_t nodes : spec.nodes) {
      for (const std::uint32_t wavelengths : spec.wavelengths) {
        for (std::size_t s = 0; s < spec.series.size(); ++s) {
          const Series& series = spec.series[s];
          SweepPoint point;
          point.workload = workload;
          point.nodes = nodes;
          point.wavelengths = wavelengths;
          point.series_index = s;
          point.series = series.name;
          point.group_size = series.group_size_fn ? series.group_size_fn(point)
                                                  : series.group_size;
          points.push_back(std::move(point));
        }
      }
    }
  }
  return points;
}

/// Serializes concurrent workers' span/counter emission into one shared
/// downstream sink (TraceSink implementations are single-threaded).
class LockedTraceSink final : public obs::TraceSink {
 public:
  explicit LockedTraceSink(obs::TraceSink& sink) : sink_(sink) {}
  void span(const obs::TraceSpan& s) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_.span(s);
  }
  void counter(const obs::CounterSample& s) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_.counter(s);
  }

 private:
  std::mutex mutex_;
  obs::TraceSink& sink_;
};

SweepRow run_point(const SweepSpec& spec, const SweepPoint& point,
                   ScheduleMemo& memo, obs::TraceSink* trace,
                   std::uint32_t track) {
  const Series& series = spec.series[point.series_index];
  const SchedulePtr schedule =
      memo.get_or_build(schedule_key(series, point), series, point);

  net::BackendConfig config = spec.config;
  config.num_nodes = point.nodes;
  config.wavelengths = point.wavelengths;
  config.rng_seed = point_seed(spec.config.rng_seed, point);
  if (series.configure) series.configure(point, config);

  const std::unique_ptr<net::Backend> backend =
      net::BackendRegistry::instance().create(series.backend, config);

  obs::Counters local;
  obs::Probe probe;
  probe.counters = &local;
  probe.trace = trace;
  probe.track = track;
  SweepRow row;
  row.point = point;
  row.report = backend->execute(*schedule, probe);
  row.report.add_counters(local);
  if (spec.counters != nullptr) spec.counters->merge(local);
  return row;
}

/// Labels the worker tracks 0..count-1 "sweep-worker-<k>" when the
/// spec's sink is a ChromeTraceSink, so the exported trace names its
/// lanes after the pool instead of raw tids.
void name_worker_tracks(obs::TraceSink* sink, unsigned count) {
  auto* chrome = dynamic_cast<obs::ChromeTraceSink*>(sink);
  if (chrome == nullptr) return;
  for (unsigned k = 0; k < count; ++k) {
    chrome->set_track_name(k, "sweep-worker-" + std::to_string(k));
  }
}

}  // namespace

void ensure_initialized() {
  static std::once_flag once;
  std::call_once(once, [] {
    core::register_wrht_algorithm();
    net::register_builtin_backends();
  });
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(resolve_threads(threads)) {}

std::vector<SweepRow> SweepRunner::run(const SweepSpec& spec) const {
  ensure_initialized();
  require(!spec.workloads.empty(), "SweepRunner: no workloads");
  require(!spec.nodes.empty(), "SweepRunner: no node counts");
  require(!spec.wavelengths.empty(), "SweepRunner: no wavelength budgets");
  require(!spec.series.empty(), "SweepRunner: no series");

  const std::vector<SweepPoint> points = expand_grid(spec);
  std::vector<SweepRow> rows(points.size());
  ScheduleMemo memo;

  std::optional<LockedTraceSink> locked;
  if (spec.trace != nullptr) locked.emplace(*spec.trace);
  obs::TraceSink* trace = locked ? &*locked : nullptr;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, points.size()));
  if (workers <= 1) {
    // Same phase accounting as the pooled path so thread-efficiency
    // figures exist (and read ~1) for single-threaded runs.
    const prof::ScopedTimer wall("sweep.worker.wall");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const prof::ScopedTimer busy("sweep.worker.busy");
      rows[i] = run_point(spec, points[i], memo, trace, 0);
    }
    name_worker_tracks(spec.trace, 1);
    return rows;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](unsigned id) {
    // wall covers the worker's whole life, busy only run_point: the merged
    // busy/wall ratio is the pool efficiency WRHT_SWEEP_THREADS bought.
    prof::set_thread_label("sweep-worker-" + std::to_string(id));
    const prof::ScopedTimer wall("sweep.worker.wall");
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      try {
        const prof::ScopedTimer busy("sweep.worker.busy");
        rows[i] = run_point(spec, points[i], memo, trace, id);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  name_worker_tracks(spec.trace, workers);
  return rows;
}

}  // namespace wrht::exp
