// Declarative experiment sweeps over the backend registry.
//
// Every figure bench in the paper is the same experiment shape: a cross
// product of workloads x node counts x wavelength budgets, with a few
// named series (algorithm + backend + per-series knobs) evaluated at each
// grid point. SweepSpec declares that shape; SweepRunner expands the
// grid, builds each distinct schedule once (memoized across grid points
// that share one), executes every point through net::BackendRegistry on a
// worker-thread pool, and returns rows in deterministic grid order —
// identical regardless of thread count.
//
// Determinism contract: each point gets its own backend instance and a
// deterministic rng seed derived from the point's coordinates, so
// random-fit RWA results do not depend on scheduling order. Per-run
// counters are attached to each row's RunReport and merged (kind-aware)
// into SweepSpec::counters when set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wrht/collectives/schedule.hpp"
#include "wrht/net/registry.hpp"
#include "wrht/obs/counters.hpp"
#include "wrht/obs/run_report.hpp"
#include "wrht/obs/trace.hpp"

namespace wrht::exp {

/// One model/message size from Table 3 (or any synthetic size).
struct Workload {
  std::string name;
  std::size_t elements = 0;
};

struct SweepPoint;

/// One curve in a figure: an algorithm on a backend, plus the knobs that
/// distinguish it from its sibling curves.
struct Series {
  /// Label carried into every SweepRow (e.g. "wrht", "o_ring", "m=4").
  std::string name;
  /// coll::Registry algorithm name; ignored when `builder` is set.
  std::string algorithm;
  /// net::BackendRegistry backend name.
  std::string backend = "optical-ring";
  /// Group size m forwarded to the schedule builder (0 = algorithm
  /// default / WRHT auto-plan).
  std::uint32_t group_size = 0;
  /// Overrides `group_size` per point when set (e.g. m = f(N, w)).
  std::function<std::uint32_t(const SweepPoint&)> group_size_fn;
  /// Bypasses the algorithm registry with a custom schedule per point
  /// (single-step RWA patterns, WRHT with all-to-all disabled, ...).
  /// Must be a pure function of the point: results are memoized by
  /// (series, workload, N, m, w).
  std::function<coll::Schedule(const SweepPoint&)> builder;
  /// Last-mile tweak of the backend config for this series (rate
  /// convention, reconfiguration accounting, RWA policy, torus shape).
  std::function<void(const SweepPoint&, net::BackendConfig&)> configure;
};

/// How the runner reuses schedule builds across grid points.
enum class ScheduleCacheMode {
  /// Build every point from scratch — the pre-memoization reference path
  /// for differential tests.
  kOff,
  /// Memoize exact (series, elements, N, m, w) repeats behind flat hashed
  /// keys (the pre-incremental behavior).
  kExact,
  /// kExact plus delta construction: registry-built full-vector schedules
  /// (WRHT, trees, recursive doubling) have a step/circuit structure that
  /// depends only on (N, m, w), so a sibling point differing only in
  /// elements is served by copying the cached build and rescaling its
  /// transfer counts instead of re-running the builder. Chunked schedules
  /// (ring, hring, halving-doubling) and custom builders always rebuild.
  kIncremental,
};

/// One cell of the expanded grid, handed to Series callbacks and carried
/// into the result row.
struct SweepPoint {
  Workload workload;
  std::uint32_t nodes = 0;
  std::uint32_t wavelengths = 0;
  std::size_t series_index = 0;
  std::string series;
  /// Effective group size after group_size / group_size_fn resolution.
  std::uint32_t group_size = 0;
};

struct SweepRow {
  SweepPoint point;
  RunReport report;
};

/// The declarative experiment: grid axes, series, and shared config.
/// Expansion order is workloads (outer) x nodes x wavelengths x series
/// (inner), matching the row order of the paper's figure CSVs.
struct SweepSpec {
  std::vector<Workload> workloads;
  std::vector<std::uint32_t> nodes;
  std::vector<std::uint32_t> wavelengths;
  std::vector<Series> series;
  /// Base backend config; num_nodes, wavelengths and rng_seed are
  /// overwritten per point (rng_seed becomes a deterministic per-point
  /// hash seeded by the value here).
  net::BackendConfig config;
  /// Schedule-build reuse across grid points (see ScheduleCacheMode).
  /// Cache modes never change results — only how often builders run; the
  /// equivalence is pinned by test_scale_equivalence.
  ScheduleCacheMode schedule_cache = ScheduleCacheMode::kIncremental;
  /// When set, every run's counters merge here (thread-safe, kind-aware),
  /// plus the runner's own "sweep.schedule.{builds,patches,hits}" totals.
  obs::Counters* counters = nullptr;
  /// When set, every run's trace spans and counter samples funnel here.
  /// Each worker emits on its own track (0 .. workers-1); when the sink is
  /// a ChromeTraceSink the tracks are labelled "sweep-worker-<k>" via
  /// thread_name metadata, so Perfetto shows worker lanes instead of raw
  /// track ids. Emission is serialized by the runner, so any TraceSink
  /// implementation works unmodified.
  obs::TraceSink* trace = nullptr;
};

/// Registers the WRHT algorithm and the built-in backends exactly once;
/// safe to call from any thread. SweepRunner calls it for you.
void ensure_initialized();

class SweepRunner {
 public:
  /// `threads` = 0 resolves WRHT_SWEEP_THREADS from the environment,
  /// falling back to std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Expands the grid and executes every point. Rows come back in grid
  /// order; the first worker exception is rethrown after all workers
  /// join.
  [[nodiscard]] std::vector<SweepRow> run(const SweepSpec& spec) const;

 private:
  unsigned threads_;
};

}  // namespace wrht::exp
