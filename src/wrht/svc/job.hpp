// One all-reduce training job offered to the shared fabric.
//
// A job names a DNN workload (gradient payload + iteration count), the
// number of ranks it spans, and the contiguous wavelength slice width it
// needs. The service grants exactly the requested width as a
// net::ResourceLease and prices each gradient synchronization with the
// wrht::plan closed forms at that width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "wrht/common/units.hpp"
#include "wrht/net/resource_lease.hpp"
#include "wrht/plan/schedule_planner.hpp"

namespace wrht::svc {

struct Job {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  /// Model the gradient payload came from ("" for synthetic payloads).
  std::string model;
  /// Ranks participating in the all-reduce (>= 2).
  std::uint32_t num_nodes = 0;
  /// Gradient elements per synchronization (float32).
  std::size_t elements = 0;
  /// Gradient synchronizations before the job completes (>= 1).
  std::uint32_t iterations = 1;
  /// Contiguous wavelengths requested; granted exactly, never partially.
  std::uint32_t width = 1;
  /// Larger runs first under the priority policy; ignored elsewhere.
  std::uint32_t priority = 0;
  /// Absolute offered time on the fabric clock.
  Seconds arrival{0.0};
};

/// A completed job with its placement and timeline on the fabric clock.
struct JobRecord {
  Job job;
  /// Slice the job ran on ([w_lo, w_lo + width) at the job's tenant).
  net::ResourceLease lease;
  /// All-reduce algorithm the planner picked at the granted width.
  plan::CandidateKind algorithm = plan::CandidateKind::kWrht;
  Seconds grant{0.0};
  Seconds completion{0.0};

  [[nodiscard]] Seconds queue_wait() const { return grant - job.arrival; }
  [[nodiscard]] Seconds service_time() const { return completion - grant; }
  /// Job completion time, the SLO currency: queueing + service.
  [[nodiscard]] Seconds jct() const { return completion - job.arrival; }
};

}  // namespace wrht::svc
